package lcg

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/serve"
	"github.com/lightning-creation-games/lcg/internal/wal"
)

// networkJSON is the stable on-disk representation of a Network: a user
// count plus one record per channel with both directional balances.
// Channels are listed in creation order, so a round-trip reproduces the
// topology (and therefore every experiment that consumes it) exactly.
type networkJSON struct {
	// Users is the number of users.
	Users int `json:"users"`
	// Channels lists every channel.
	Channels []channelJSON `json:"channels"`
}

type channelJSON struct {
	// A and B are the channel's endpoints.
	A int `json:"a"`
	B int `json:"b"`
	// BalanceA and BalanceB are the spendable balances on each side.
	BalanceA float64 `json:"balanceA"`
	BalanceB float64 `json:"balanceB"`
}

// MarshalJSON encodes the network topology with balances.
func (n *Network) MarshalJSON() ([]byte, error) {
	pairs, unpaired := n.g.ChannelPairs()
	if len(unpaired) > 0 {
		return nil, fmt.Errorf("%w: %d directed edges without a reverse partner", ErrBadInput, len(unpaired))
	}
	out := networkJSON{
		Users:    n.NumUsers(),
		Channels: make([]channelJSON, len(pairs)),
	}
	for i, pair := range pairs {
		fwd, rev := pair[0], pair[1]
		out.Channels[i] = channelJSON{
			A:        int(fwd.From),
			B:        int(fwd.To),
			BalanceA: fwd.Capacity,
			BalanceB: rev.Capacity,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a network previously produced by MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if in.Users < 0 {
		return fmt.Errorf("%w: negative user count", ErrBadInput)
	}
	rebuilt := graph.New(in.Users)
	for i, ch := range in.Channels {
		if _, _, err := rebuilt.AddChannel(graph.NodeID(ch.A), graph.NodeID(ch.B), ch.BalanceA, ch.BalanceB); err != nil {
			return fmt.Errorf("%w: channel %d: %v", ErrBadInput, i, err)
		}
	}
	n.g = rebuilt
	return nil
}

// WriteJSON writes the network to w as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// SaveCheckpoint streams the session's full substrate state — channel
// topology, demand and λ̂ snapshots, departure mask and the all-pairs
// planes — to w as one versioned, CRC-guarded binary snapshot. Unlike
// the JSON topology codec above, a checkpoint captures everything a
// restart needs: LoadCheckpoint restores a 10k-node session in seconds
// with no all-pairs rebuild, bit-identical to the saved planes. The
// snapshot is epoch-frozen: concurrent commits wait while it streams.
func (ls *LiveSession) SaveCheckpoint(w io.Writer) error {
	if err := ls.s.Checkpoint(w); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// SaveCheckpointFile writes a checkpoint to path crash-safely: the
// snapshot streams to path+".tmp", is fsynced, and only then atomically
// renamed over path — a crash mid-write leaves the previous file (or
// nothing) instead of a torn snapshot.
func (ls *LiveSession) SaveCheckpointFile(path string) error {
	if err := wal.AtomicWrite(wal.OS{}, path, ls.s.Checkpoint); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// LoadCheckpoint restores a serving session from a checkpoint stream
// written by SaveCheckpoint. Economic parameters are not serialized
// (Params carries function-valued hooks); pass the same LiveConfig the
// saved session ran with to reproduce its pricing exactly.
func LoadCheckpoint(r io.Reader, cfg LiveConfig) (*LiveSession, error) {
	cfg, params := cfg.normalized()
	s, err := serve.Restore(r, serve.Config{
		Params:        params,
		RemoteBalance: cfg.RemoteBalance,
		Dist:          cfg.dist(),
		Workers:       cfg.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &LiveSession{s: s, cfg: cfg}, nil
}

// ReadNetworkJSON reads a network from r.
func ReadNetworkJSON(r io.Reader) (*Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	n := NewNetwork()
	if err := n.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return n, nil
}
