package lcg

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func TestLiveSessionFacade(t *testing.T) {
	ls, err := NewLiveSession(BarabasiAlbert(30, 2, 10, 1), LiveConfig{ZipfS: 1})
	if err != nil {
		t.Fatalf("NewLiveSession: %v", err)
	}
	start := ls.Epoch()
	if start == 0 {
		t.Fatal("epoch must start at 1")
	}
	committed, err := ls.Tick(2, 9)
	if err != nil || committed != 2 {
		t.Fatalf("Tick = (%d, %v), want 2 commits", committed, err)
	}
	if ls.Epoch() <= start {
		t.Fatalf("epoch %d did not advance past %d after Tick", ls.Epoch(), start)
	}

	srv := httptest.NewServer(ls.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/price-join", "application/json",
		strings.NewReader(`{"budget":6,"lock":1}`))
	if err != nil {
		t.Fatalf("POST price-join: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price-join status %d: %s", resp.StatusCode, body)
	}

	// Checkpoint through the facade and restore: the restored session
	// answers the same query with the same price, with no plane rebuild.
	var buf bytes.Buffer
	if err := ls.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), LiveConfig{ZipfS: 1})
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if restored.Session().RebuildCount() != 0 {
		t.Fatal("restore paid an all-pairs rebuild")
	}
	if restored.Session().NumNodes() != ls.Session().NumNodes() {
		t.Fatalf("restored %d nodes, want %d", restored.Session().NumNodes(), ls.Session().NumNodes())
	}
}

func TestLiveSessionFacadeErrors(t *testing.T) {
	if _, err := NewLiveSession(nil, LiveConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil network: err = %v, want ErrBadInput", err)
	}
	if _, err := NewLiveSession(NewNetwork(), LiveConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty network: err = %v, want ErrBadInput", err)
	}
	if _, err := LoadCheckpoint(strings.NewReader("not a checkpoint"), LiveConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("garbage checkpoint: err = %v, want ErrBadInput", err)
	}
}

func TestLiveSessionServeLifecycle(t *testing.T) {
	ls, err := NewLiveSession(BarabasiAlbert(16, 2, 10, 1), LiveConfig{TickArrivals: 1})
	if err != nil {
		t.Fatalf("NewLiveSession: %v", err)
	}
	start := ls.Epoch()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- ls.Serve(ctx, "127.0.0.1:0", 10*time.Millisecond) }()
	// Give the background ticker time to commit at least one arrival,
	// then shut down cleanly.
	deadline := time.Now().Add(5 * time.Second)
	for ls.Epoch() == start && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if ls.Epoch() <= start {
		t.Fatalf("background ticker never committed (epoch still %d)", ls.Epoch())
	}
	if err := ls.Serve(context.Background(), "256.256.256.256:bad", 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad addr: err = %v, want ErrBadInput", err)
	}
}

func TestOpenDurableSessionLifecycle(t *testing.T) {
	dir := t.TempDir() + "/state"
	cfg := LiveConfig{ZipfS: 1}
	dur := DurabilityConfig{Dir: dir, CheckpointMutations: 4}

	ls, err := OpenDurableSession(BarabasiAlbert(20, 2, 10, 1), cfg, dur)
	if err != nil {
		t.Fatalf("OpenDurableSession: %v", err)
	}
	if ce, wr := ls.Recovered(); ce != 0 || wr != 0 {
		t.Fatalf("fresh open claims recovery: checkpoint epoch %d, %d records", ce, wr)
	}
	for i := 0; i < 6; i++ {
		if _, err := ls.Tick(1, int64(i)); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	wantEpoch := ls.Epoch()
	var before bytes.Buffer
	if err := ls.SaveCheckpoint(&before); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if err := ls.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ls.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Reopen recovers the exact epoch with zero plane rebuilds; the
	// seed network is ignored once the directory carries state.
	rec, err := OpenDurableSession(BarabasiAlbert(99, 2, 10, 7), cfg, dur)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close() //nolint:errcheck
	if rec.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), wantEpoch)
	}
	if ce, _ := rec.Recovered(); ce == 0 {
		t.Fatal("reopen did not report the recovered checkpoint epoch")
	}
	if rec.Session().RebuildCount() != 0 {
		t.Fatal("recovery paid an all-pairs rebuild")
	}
	var after bytes.Buffer
	if err := rec.SaveCheckpoint(&after); err != nil {
		t.Fatalf("SaveCheckpoint after recovery: %v", err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("recovered checkpoint differs from pre-shutdown one (%d vs %d bytes)",
			before.Len(), after.Len())
	}

	if _, err := OpenDurableSession(nil, cfg, DurabilityConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty dir: err = %v, want ErrBadInput", err)
	}
	if _, err := OpenDurableSession(nil, cfg, DurabilityConfig{Dir: t.TempDir() + "/empty"}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no seed and no state: err = %v, want ErrBadInput", err)
	}
}

func TestSaveCheckpointFileAtomic(t *testing.T) {
	ls, err := NewLiveSession(BarabasiAlbert(16, 2, 10, 1), LiveConfig{})
	if err != nil {
		t.Fatalf("NewLiveSession: %v", err)
	}
	path := t.TempDir() + "/session.ckpt"
	if err := ls.SaveCheckpointFile(path); err != nil {
		t.Fatalf("SaveCheckpointFile: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer f.Close()
	restored, err := LoadCheckpoint(f, LiveConfig{})
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if restored.Session().NumNodes() != ls.Session().NumNodes() {
		t.Fatalf("restored %d nodes, want %d", restored.Session().NumNodes(), ls.Session().NumNodes())
	}
	// A write into a missing directory fails without touching path.
	if err := ls.SaveCheckpointFile(t.TempDir() + "/missing/x.ckpt"); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
