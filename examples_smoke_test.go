package lcg

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndVet compiles and vets every program under
// examples/ so the walkthroughs cannot drift from the library API. The
// table is discovered from the directory listing: adding an example
// automatically puts it under test.
func TestExamplesBuildAndVet(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("read examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			pkg := "./" + filepath.ToSlash(filepath.Join("examples", dir))
			for _, sub := range [][]string{
				{"build", "-o", os.DevNull, pkg},
				{"vet", pkg},
			} {
				cmd := exec.Command(goBin, sub...)
				cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
				if out, err := cmd.CombinedOutput(); err != nil {
					t.Fatalf("go %v: %v\n%s", sub, err, out)
				}
			}
		})
	}
}
