// Command lcg reproduces the paper's artifacts and exposes the library's
// planners from the command line.
//
// Usage:
//
//	lcg list                                               list experiment ids and titles
//	lcg experiments [-seed N] [-csv] [-parallel P] [id ...] regenerate paper tables (default: all)
//	lcg join        [flags]                                price and optimise a join
//	lcg stability   [flags]                                audit star/path/circle equilibria
//	lcg simulate    [flags]                                replay a Poisson workload
//	lcg grow        [flags]                                grow a network by sequential arrivals
//	lcg market      [flags]                                run a batch channel-market auction
//	lcg serve       [flags]                                serve pricing queries over HTTP
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/lightning-creation-games/lcg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lcg:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return nil
	}
	switch args[0] {
	case "experiments", "run":
		return runExperiments(args[1:], w)
	case "list":
		return runList(w)
	case "join":
		return runJoin(args[1:], w)
	case "stability":
		return runStability(args[1:], w)
	case "simulate":
		return runSimulate(args[1:], w)
	case "dynamics":
		return runDynamics(args[1:], w)
	case "grow":
		return runGrow(args[1:], w)
	case "market":
		return runMarket(args[1:], w)
	case "serve":
		return runServe(args[1:], w)
	case "network":
		return runNetwork(args[1:], w)
	case "help", "-h", "--help":
		usage(w)
		return nil
	default:
		usage(w)
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `lcg — Lightning Creation Games (ICDCS 2023) reproduction

commands:
  list                                   list experiment ids and titles
  experiments [-seed N] [-csv] [-parallel P] [id ...]
                                         regenerate paper tables (default: all);
                                         'run' is an alias
  join        [flags]                    price and optimise joining a network
  stability   [flags]                    audit star/path/circle equilibria
  simulate    [flags]                    replay a Poisson workload over live channels
  dynamics    [flags]                    run best-response dynamics to an equilibrium
  grow        [flags]                    grow a network through sequential selfish arrivals
  market      [flags]                    run a batch channel-market auction over join bids
  serve       [flags]                    serve pricing queries over HTTP with checkpoint/restore
  network     [flags]                    generate a topology and write it as JSON

run 'lcg <command> -h' for command flags`)
}

// flagCheck is one validated integer flag: its name, the parsed value,
// whether it passed, and what a valid value looks like.
type flagCheck struct {
	name  string
	value int
	ok    bool
	want  string
}

// positive requires v > 0; zero and negative values are usage errors.
func positive(name string, v int) flagCheck {
	return flagCheck{name, v, v > 0, "a positive integer"}
}

// nonNegative requires v >= 0 — the convention for worker-count flags,
// where 0 means "all cores".
func nonNegative(name string, v int) flagCheck {
	return flagCheck{name, v, v >= 0, "zero (auto) or a positive integer"}
}

// checkFlags validates parsed count/worker flags in one place: every
// subcommand routes its integer flags through it, so a zero or negative
// value fails with a usage error naming the flag instead of panicking
// or silently misbehaving deep inside an engine.
func checkFlags(checks ...flagCheck) error {
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("flag -%s: %d is invalid, want %s", c.name, c.value, c.want)
		}
	}
	return nil
}

func runExperiments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for the experiment corpus")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = all cores, 1 = serial); output is identical at any setting")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(nonNegative("parallel", *parallel)); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = lcg.ExperimentIDs()
	}
	return lcg.RunExperiments(ids, lcg.ExperimentOptions{
		Seed:        *seed,
		Parallelism: *parallel,
		CSV:         *asCSV,
	}, w)
}

func runList(w io.Writer) error {
	for _, info := range lcg.Experiments() {
		if _, err := fmt.Fprintf(w, "%-4s %s\n", info.ID, info.Title); err != nil {
			return err
		}
	}
	return nil
}

// buildNetwork creates a topology by name, or loads one from a JSON file
// when the name has the form "file:<path>".
func buildNetwork(topology string, n int, seed int64) (*lcg.Network, error) {
	if path, ok := strings.CutPrefix(topology, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return lcg.ReadNetworkJSON(f)
	}
	switch topology {
	case "star":
		return lcg.Star(n, 10), nil
	case "path":
		return lcg.PathNetwork(n, 10), nil
	case "circle":
		return lcg.Circle(n, 10), nil
	case "complete":
		return lcg.Complete(n, 10), nil
	case "ba":
		return lcg.BarabasiAlbert(n, 2, 10, seed), nil
	case "er":
		return lcg.ErdosRenyi(n, 0.3, 10, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (star|path|circle|complete|ba|er)", topology)
	}
}

func runJoin(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("join", flag.ContinueOnError)
	var (
		topology  = fs.String("topology", "ba", "existing network: star|path|circle|complete|ba|er")
		n         = fs.Int("n", 20, "network size")
		seed      = fs.Int64("seed", 1, "seed for random topologies")
		s         = fs.Float64("s", 1, "modified-Zipf scale parameter")
		budget    = fs.Float64("budget", 6, "joining budget B_u")
		lock      = fs.Float64("lock", 1, "fixed lock per channel (greedy)")
		unit      = fs.Float64("unit", 1, "lock granularity m (discrete)")
		algorithm = fs.String("algorithm", "greedy", "greedy|discrete|continuous")
		onChain   = fs.Float64("C", 1, "on-chain cost per channel")
		favg      = fs.Float64("favg", 0.5, "routing fee earned per forwarded tx")
		hopFee    = fs.Float64("hopfee", 0.5, "fee paid per hop for own txs")
		ownRate   = fs.Float64("rate", 1, "joining user's tx rate N_u")
		oppRate   = fs.Float64("r", 0.05, "opportunity cost rate")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(positive("n", *n)); err != nil {
		return err
	}
	network, err := buildNetwork(*topology, *n, *seed)
	if err != nil {
		return err
	}
	planner, err := lcg.NewJoinPlanner(network,
		lcg.WithZipf(*s),
		lcg.WithParams(lcg.Params{
			OnChainCost: *onChain,
			OppCostRate: *oppRate,
			FAvg:        *favg,
			FeePerHop:   *hopFee,
			OwnRate:     *ownRate,
		}))
	if err != nil {
		return err
	}
	var plan lcg.Plan
	switch *algorithm {
	case "greedy":
		plan, err = planner.Greedy(*budget, *lock)
	case "discrete":
		plan, err = planner.DiscreteSearch(*budget, *unit)
	case "continuous":
		plan, err = planner.ContinuousSearch(*budget)
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "network: %s n=%d channels=%d\n", *topology, network.NumUsers(), network.NumChannels())
	fmt.Fprintf(w, "algorithm: %s  budget: %g\n", *algorithm, *budget)
	if len(plan.Strategy) == 0 {
		fmt.Fprintln(w, "plan: no affordable channel")
		return nil
	}
	fmt.Fprintln(w, "plan:")
	for _, a := range plan.Strategy {
		fmt.Fprintf(w, "  open channel to user %d, lock %.4g\n", a.Peer, a.Lock)
	}
	fmt.Fprintf(w, "objective: %.6g\n", plan.Objective)
	fmt.Fprintf(w, "utility U: %.6g\n", plan.Utility)
	fmt.Fprintf(w, "revenue: %.6g  fees: %.6g  cost: %.6g\n",
		planner.Revenue(plan.Strategy), planner.Fees(plan.Strategy), planner.Cost(plan.Strategy))
	fmt.Fprintf(w, "evaluations: %d\n", plan.Evaluations)
	return nil
}

func runStability(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stability", flag.ContinueOnError)
	var (
		topology = fs.String("topology", "star", "star|path|circle")
		n        = fs.Int("n", 5, "leaves (star) or nodes (path/circle)")
		s        = fs.Float64("s", 2, "modified-Zipf scale parameter")
		link     = fs.Float64("l", 1, "per-party channel cost l")
		favg     = fs.Float64("favg", 0.5, "routing fee earned per forwarded tx")
		hopFee   = fs.Float64("hopfee", 0.5, "fee paid per hop")
		rate     = fs.Float64("rate", 1, "per-node tx rate")
		maxN     = fs.Int("maxn", 64, "largest circle size to scan")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(positive("n", *n), positive("maxn", *maxN)); err != nil {
		return err
	}
	params := lcg.GameParams{
		ZipfS:      *s,
		SenderRate: *rate,
		FAvg:       *favg,
		FeePerHop:  *hopFee,
		LinkCost:   *link,
	}
	switch *topology {
	case "star":
		closed, exhaustive, err := lcg.StarStable(*n, params)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "star with %d leaves, s=%g l=%g\n", *n, *s, *link)
		fmt.Fprintf(w, "Theorem 8 closed form: NE = %v\n", closed)
		fmt.Fprintf(w, "Theorem 9 regime: %v\n", lcg.Theorem9Regime(*n, params))
		fmt.Fprintf(w, "exhaustive deviation search: NE = %v\n", exhaustive)
	case "path":
		dev, found, err := lcg.PathInstabilityWitness(*n, params)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "path with %d nodes, s=%g l=%g\n", *n, *s, *link)
		if found {
			fmt.Fprintf(w, "improving endpoint deviation (Theorem 10): re-attach to %v, gain %.6g\n",
				dev.Neighbors, dev.Gain)
		} else {
			fmt.Fprintln(w, "no improving endpoint deviation found at this size")
		}
	case "circle":
		n0, found, err := lcg.CircleCrossover(params, *maxN)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "circle, s=%g l=%g\n", *s, *link)
		if found {
			fmt.Fprintf(w, "unstable from n0 = %d (Theorem 11 connect-to-opposite deviation pays)\n", n0)
		} else {
			fmt.Fprintf(w, "stable against the opposite-node deviation up to n = %d\n", *maxN)
		}
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	return nil
}

func runSimulate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		topology  = fs.String("topology", "ba", "star|path|circle|complete|ba|er")
		n         = fs.Int("n", 16, "network size")
		seed      = fs.Int64("seed", 1, "seed")
		s         = fs.Float64("s", 1, "modified-Zipf scale parameter")
		txdist    = fs.String("txdist", "modified-zipf", "fast engine: recipient distribution — modified-zipf (dense) | uniform | degree | distance (sparse, scale to n=10000)")
		distparam = fs.Float64("distparam", 0, "fast engine: sparse-family parameter — degree exponent (0 = 1) or distance decay (0 = 0.5)")
		events    = fs.Int("events", 20000, "transactions to replay")
		txSize    = fs.Float64("txsize", 1, "transaction size")
		hopFee    = fs.Float64("hopfee", 0.01, "fee per forwarded tx")
		steady    = fs.Bool("steady", true, "rebalance periodically (steady state)")
		top       = fs.Int("top", 5, "nodes to report")
		engine    = fs.String("engine", "reference", "reference (live payment network) | fast (sharded traffic engine)")
		shards    = fs.Int("shards", 8, "fast engine: independent measurement windows (part of the result's identity)")
		parallel  = fs.Int("parallel", 0, "fast engine: worker goroutines (0 = all cores); never changes the result")
		rebalance = fs.Int("rebalance", 1000, "fast engine: rebalance a window to deposits every that many events (0 = never)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(
		positive("n", *n),
		positive("events", *events),
		positive("shards", *shards),
		nonNegative("parallel", *parallel),
		nonNegative("rebalance", *rebalance),
		nonNegative("top", *top),
	); err != nil {
		return err
	}
	network, err := buildNetwork(*topology, *n, *seed)
	if err != nil {
		return err
	}
	switch *engine {
	case "fast":
		reb := *rebalance
		if !*steady {
			reb = 0
		}
		report, err := lcg.ReplayTraffic(network, lcg.TrafficConfig{
			Events:         *events,
			TxDist:         *txdist,
			DistParam:      *distparam,
			ZipfS:          *s,
			TxSize:         *txSize,
			FeePerHop:      *hopFee,
			Seed:           *seed,
			Shards:         *shards,
			Parallelism:    *parallel,
			RebalanceEvery: reb,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "network: %s n=%d channels=%d  engine: fast (%d shards)\n",
			*topology, network.NumUsers(), network.NumChannels(), *shards)
		fmt.Fprintf(w, "events: %d  success rate: %.3f  retried: %d  depleted arcs: %d\n",
			report.Events, report.SuccessRate, report.Retried, report.DepletedArcs)
		fmt.Fprintf(w, "volume: %.4g  fees paid: %.4g  routed/time: %.1f\n",
			report.Volume, report.FeesPaid, float64(report.Successes)/report.Elapsed)
		// The sparse planes skip the O(n²) analytic prediction, leaving
		// PredictedTransit all zeros — rank by what was measured instead.
		ranking := report.PredictedTransit
		if allZero(ranking) {
			ranking = report.MeasuredTransit
			fmt.Fprintln(w, "busiest forwarders (by measured transit rate; no analytic prediction for sparse txdist):")
		} else {
			fmt.Fprintln(w, "busiest forwarders (measured vs predicted transit rate, realized revenue rate):")
		}
		order := busiest(ranking, *top)
		for _, v := range order {
			fmt.Fprintf(w, "  user %-3d measured %-8.4f predicted %-8.4f revenue/time %-8.4f\n",
				v, report.MeasuredTransit[v], report.PredictedTransit[v], report.RevenueRate[v])
		}
		return nil
	case "reference":
	default:
		return fmt.Errorf("unknown engine %q (want reference or fast)", *engine)
	}
	report, err := lcg.Simulate(network, lcg.SimConfig{
		Events:      *events,
		ZipfS:       *s,
		TxSize:      *txSize,
		FeePerHop:   *hopFee,
		OnChainFee:  1,
		Seed:        *seed,
		SteadyState: *steady,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "network: %s n=%d channels=%d\n", *topology, network.NumUsers(), network.NumChannels())
	fmt.Fprintf(w, "events: %d  success rate: %.3f  volume: %.4g  fees paid: %.4g\n",
		report.Events, report.SuccessRate, report.Volume, report.FeesPaid)
	fmt.Fprintln(w, "busiest forwarders (measured vs predicted transit rate):")
	order := busiest(report.PredictedTransit, *top)
	for _, v := range order {
		fmt.Fprintf(w, "  user %-3d measured %-8.4f predicted %-8.4f\n",
			v, report.MeasuredTransit[v], report.PredictedTransit[v])
	}
	return nil
}

// allZero reports whether every value is exactly zero.
func allZero(values []float64) bool {
	for _, v := range values {
		if v != 0 {
			return false
		}
	}
	return true
}

// busiest returns the indices of the k largest values, descending.
func busiest(values []float64, k int) []int {
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && values[order[j]] > values[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

func runDynamics(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dynamics", flag.ContinueOnError)
	var (
		topology = fs.String("topology", "path", "starting topology: star|path|circle|complete|ba|er")
		n        = fs.Int("n", 6, "network size (keep ≤ 10: best responses are exhaustive)")
		seed     = fs.Int64("seed", 1, "seed for random topologies")
		s        = fs.Float64("s", 2, "modified-Zipf scale parameter")
		link     = fs.Float64("l", 1, "per-party channel cost l")
		favg     = fs.Float64("favg", 0.5, "routing fee earned per forwarded tx")
		hopFee   = fs.Float64("hopfee", 0.5, "fee paid per hop")
		rate     = fs.Float64("rate", 1, "per-node tx rate")
		rounds   = fs.Int("rounds", 30, "maximum best-response rounds")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(positive("n", *n), positive("rounds", *rounds)); err != nil {
		return err
	}
	start, err := buildNetwork(*topology, *n, *seed)
	if err != nil {
		return err
	}
	params := lcg.GameParams{
		ZipfS:      *s,
		SenderRate: *rate,
		FAvg:       *favg,
		FeePerHop:  *hopFee,
		LinkCost:   *link,
	}
	report, err := lcg.BestResponseDynamics(start, params, *rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "start: %s n=%d channels=%d\n", *topology, start.NumUsers(), start.NumChannels())
	fmt.Fprintf(w, "rounds: %d  moves: %d  converged: %v\n", report.Rounds, report.Moves, report.Converged)
	fmt.Fprintf(w, "final topology: %s (%d channels), welfare %.4g\n",
		report.FinalClass, report.Final.NumChannels(), report.Welfare)
	return nil
}

func runGrow(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("grow", flag.ContinueOnError)
	var (
		topology    = fs.String("topology", "ba", "seed topology: empty|star|er|ba")
		seedSize    = fs.Int("n", 12, "seed topology size")
		arrivals    = fs.Int("arrivals", 500, "joiners to process")
		candidates  = fs.Int("candidates", 16, "candidate peers per joiner (0 = all)")
		attach      = fs.String("attach", "preferential", "candidate process: uniform|preferential")
		churn       = fs.Float64("churn", 0, "per-arrival departure probability")
		rewireEvery = fs.Int("rewire-every", 0, "best-response rewiring cadence in arrivals (0 = never)")
		rewireCount = fs.Int("rewire-count", 2, "nodes rewired per round")
		epochEvery  = fs.Int("epoch", 0, "metrics cadence in arrivals (0 = arrivals/8)")
		uniform     = fs.Bool("uniform", false, "uniform transaction model instead of modified Zipf")
		s           = fs.Float64("s", 1, "modified-Zipf scale parameter")
		seed        = fs.Int64("seed", 1, "random seed; runs are bit-reproducible per seed")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attach != "uniform" && *attach != "preferential" {
		return fmt.Errorf("unknown attach process %q (uniform|preferential)", *attach)
	}
	if err := checkFlags(
		positive("n", *seedSize),
		positive("arrivals", *arrivals),
		nonNegative("candidates", *candidates),
		nonNegative("rewire-every", *rewireEvery),
		nonNegative("rewire-count", *rewireCount),
		nonNegative("epoch", *epochEvery),
	); err != nil {
		return err
	}
	report, err := lcg.Grow(lcg.GrowConfig{
		Topology:     *topology,
		SeedSize:     *seedSize,
		Arrivals:     *arrivals,
		Candidates:   *candidates,
		Preferential: *attach == "preferential",
		ChurnRate:    *churn,
		RewireEvery:  *rewireEvery,
		RewireCount:  *rewireCount,
		EpochEvery:   *epochEvery,
		Uniform:      *uniform,
		ZipfS:        *s,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "grow: %s seed n=%d, %d arrivals (%s candidates), churn %g\n",
		*topology, *seedSize, *arrivals, *attach, *churn)
	fmt.Fprintln(w, "arrival  nodes  channels  maxdeg  gini   central  diam  meandist  routable  eff    evals/join  class")
	for _, ep := range report.Epochs {
		fmt.Fprintf(w, "%-8d %-6d %-9d %-7d %-6.3f %-8.3f %-5d %-9.3f %-9.3f %-6.3f %-11.1f %s\n",
			ep.Arrival, ep.Nodes, ep.Channels, ep.MaxDegree, ep.DegreeGini, ep.Centralization,
			ep.Diameter, ep.MeanDistance, ep.Routable, ep.Efficiency, ep.EvalsPerJoin, ep.Class)
	}
	last := report.Epochs[len(report.Epochs)-1]
	fmt.Fprintf(w, "final: %s — %d nodes, %d channels, %d departures, %d rewires\n",
		last.Class, last.Nodes, last.Channels, report.Departures, report.Rewires)
	fmt.Fprintf(w, "pricing: %d evaluations over %d joins; wall %.0f ms (%.2f ms/join)\n",
		report.Evaluations, report.Joins, report.WallMS, report.WallMS/float64(max(report.Joins, 1)))
	return nil
}

func runMarket(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("market", flag.ContinueOnError)
	var (
		topology   = fs.String("topology", "ba", "seed topology: empty|star|er|ba")
		seedSize   = fs.Int("n", 12, "seed topology size")
		ticks      = fs.Int("ticks", 8, "auction ticks to run")
		batch      = fs.Int("batch", 64, "join bids per tick")
		rounds     = fs.Int("rounds", 3, "re-price rounds per tick (1 = one-shot auction)")
		candidates = fs.Int("candidates", 16, "candidate peers per bid (0 = all)")
		attach     = fs.String("attach", "preferential", "candidate process: uniform|preferential")
		reserve    = fs.Float64("reserve", 0, "reserve utility; bids priced below it withdraw (0 = off)")
		refresh    = fs.Int("refresh", 1, "quote (demand/λ̂) refresh cadence in ticks")
		uniform    = fs.Bool("uniform", false, "uniform transaction model instead of modified Zipf")
		s          = fs.Float64("s", 1, "modified-Zipf scale parameter")
		parallel   = fs.Int("parallel", 0, "pricing workers (0 = all cores); output is identical at any setting")
		seed       = fs.Int64("seed", 1, "random seed; runs are bit-reproducible per seed")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attach != "uniform" && *attach != "preferential" {
		return fmt.Errorf("unknown attach process %q (uniform|preferential)", *attach)
	}
	if err := checkFlags(
		positive("n", *seedSize),
		positive("ticks", *ticks),
		positive("batch", *batch),
		positive("rounds", *rounds),
		nonNegative("candidates", *candidates),
		positive("refresh", *refresh),
		nonNegative("parallel", *parallel),
	); err != nil {
		return err
	}
	cfg := lcg.MarketConfig{
		Topology:     *topology,
		SeedSize:     *seedSize,
		Ticks:        *ticks,
		Batch:        *batch,
		MaxRounds:    *rounds,
		Candidates:   *candidates,
		Preferential: *attach == "preferential",
		RefreshTicks: *refresh,
		Uniform:      *uniform,
		ZipfS:        *s,
		Parallelism:  *parallel,
		Seed:         *seed,
	}
	if *reserve != 0 {
		cfg.Reserve = true
		cfg.ReserveMin, cfg.ReserveMax = *reserve, *reserve
	}
	report, err := lcg.Market(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "market: %s seed n=%d, %d ticks × %d bids (%s candidates), %d re-price rounds\n",
		*topology, *seedSize, *ticks, *batch, *attach, *rounds)
	fmt.Fprintln(w, "tick  nodes  channels  admit  wdraw  defer  reprice  meanregret  maxregret  gini   central  diam  eff    class")
	for _, ts := range report.Ticks {
		fmt.Fprintf(w, "%-5d %-6d %-9d %-6d %-6d %-6d %-8d %-11.4f %-10.4f %-6.3f %-8.3f %-5d %-6.3f %s\n",
			ts.Tick, ts.Nodes, ts.Channels, ts.Admitted, ts.Withdrawn, ts.Deferrals, ts.Repricings,
			ts.MeanRegret, ts.MaxRegret, ts.DegreeGini, ts.Centralization, ts.Diameter, ts.Efficiency, ts.Class)
	}
	last := report.Ticks[len(report.Ticks)-1]
	fmt.Fprintf(w, "final: %s — %d nodes, %d channels; %d admitted, %d withdrawn, %d deferrals, %d repricings\n",
		last.Class, last.Nodes, last.Channels, report.Admitted, report.Withdrawn, report.Deferrals, report.Repricings)
	bids := report.Admitted + report.Withdrawn
	fmt.Fprintf(w, "pricing: %d evaluations over %d bids; wall %.0f ms (%.2f ms/bid)\n",
		report.Evaluations, bids, report.WallMS, report.WallMS/float64(max(bids, 1)))
	return nil
}

func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address for the HTTP API")
		topology     = fs.String("topology", "ba", "seed network: star|path|circle|complete|ba|er (or file:<path>)")
		n            = fs.Int("n", 50, "seed network size")
		seed         = fs.Int64("seed", 1, "seed for random topologies")
		s            = fs.Float64("s", 1, "modified-Zipf scale parameter")
		uniform      = fs.Bool("uniform", false, "uniform transaction model instead of modified Zipf")
		balance      = fs.Float64("balance", 1, "remote balance granted per committed channel")
		parallel     = fs.Int("parallel", 0, "query/fold workers (0 = all cores)")
		tick         = fs.Duration("tick", 0, "background synthetic-commit cadence (0 = no background load)")
		tickArrivals = fs.Int("tick-arrivals", 1, "synthetic arrivals committed per background tick")
		restore      = fs.String("restore", "", "restore the session from this checkpoint instead of building planes")
		checkpoint   = fs.String("checkpoint", "", "write a checkpoint here on clean shutdown (atomic: temp file + rename)")
		duration     = fs.Duration("duration", 0, "serve for this long, then exit cleanly (0 = until interrupted)")
		walDir       = fs.String("wal", "", "durable state directory: every mutation is write-ahead logged and the session recovers from a crash exactly")
		ckptEvery    = fs.Duration("checkpoint-every", 0, "with -wal: background checkpoint cadence (0 = no timer trigger)")
		ckptMuts     = fs.Int("checkpoint-mutations", 256, "with -wal: background checkpoint after this many mutations (0 = no count trigger)")
		walSync      = fs.Int("wal-sync", 1, "with -wal: fsync every N records (1 = every record, the no-loss setting)")
		walSyncEvery = fs.Duration("wal-sync-interval", 0, "with -wal: timer-driven fsync instead of per-record (bounds the loss window by the interval)")
		retain       = fs.Int("retain", 2, "with -wal: checkpoint generations to keep")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(
		positive("n", *n),
		nonNegative("parallel", *parallel),
		positive("tick-arrivals", *tickArrivals),
		positive("wal-sync", *walSync),
		nonNegative("checkpoint-mutations", *ckptMuts),
		positive("retain", *retain),
	); err != nil {
		return err
	}
	cfg := lcg.LiveConfig{
		RemoteBalance: *balance,
		Uniform:       *uniform,
		ZipfS:         *s,
		Parallelism:   *parallel,
		TickArrivals:  *tickArrivals,
	}
	var ls *lcg.LiveSession
	switch {
	case *walDir != "":
		if *restore != "" {
			return fmt.Errorf("-restore and -wal are exclusive: the state directory already carries the session")
		}
		network, err := buildNetwork(*topology, *n, *seed)
		if err != nil {
			return err
		}
		ls, err = lcg.OpenDurableSession(network, cfg, lcg.DurabilityConfig{
			Dir:                 *walDir,
			SyncEvery:           *walSync,
			SyncInterval:        *walSyncEvery,
			CheckpointInterval:  *ckptEvery,
			CheckpointMutations: *ckptMuts,
			Retain:              *retain,
		})
		if err != nil {
			return err
		}
		defer ls.Close() //nolint:errcheck — the explicit Close below reports errors
		if ckptEpoch, walRecords := ls.Recovered(); ckptEpoch > 0 {
			fmt.Fprintf(w, "restored session from %s: %d nodes, epoch %d (checkpoint epoch %d + %d WAL records), %d plane rebuilds\n",
				*walDir, ls.Session().NumNodes(), ls.Epoch(), ckptEpoch, walRecords, ls.Session().RebuildCount())
		}
	case *restore != "":
		f, err := os.Open(*restore)
		if err != nil {
			return err
		}
		ls, err = lcg.LoadCheckpoint(f, cfg)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "restored session from %s: %d nodes, epoch %d, %d plane rebuilds\n",
			*restore, ls.Session().NumNodes(), ls.Epoch(), ls.Session().RebuildCount())
	default:
		network, err := buildNetwork(*topology, *n, *seed)
		if err != nil {
			return err
		}
		ls, err = lcg.NewLiveSession(network, cfg)
		if err != nil {
			return err
		}
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
	} else {
		ctx, cancel = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	}
	defer cancel()
	fmt.Fprintf(w, "serving %d nodes on %s (tick %v)\n", ls.Session().NumNodes(), *addr, *tick)
	if err := ls.Serve(ctx, *addr, *tick); err != nil {
		return err
	}
	if *walDir != "" {
		// Close writes the final checkpoint into the state directory.
		if err := ls.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "durable state in %s (epoch %d)\n", *walDir, ls.Epoch())
	}
	if *checkpoint != "" {
		if err := ls.SaveCheckpointFile(*checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s (epoch %d)\n", *checkpoint, ls.Epoch())
	}
	return nil
}

func runNetwork(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("network", flag.ContinueOnError)
	var (
		topology = fs.String("topology", "ba", "star|path|circle|complete|ba|er")
		n        = fs.Int("n", 20, "network size")
		seed     = fs.Int64("seed", 1, "seed for random topologies")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(positive("n", *n)); err != nil {
		return err
	}
	network, err := buildNetwork(*topology, *n, *seed)
	if err != nil {
		return err
	}
	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return network.WriteJSON(dst)
}
