package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestNoArgsShowsUsage(t *testing.T) {
	out, err := runCLI(t)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "commands:") {
		t.Fatalf("usage missing: %s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := runCLI(t, "bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestExperimentsSubsetAndCSV(t *testing.T) {
	out, err := runCLI(t, "experiments", "F1")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("missing table: %s", out)
	}
	out, err = runCLI(t, "experiments", "-csv", "E9")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "deviation found") {
		t.Fatalf("missing CSV header: %s", out)
	}
	if _, err := runCLI(t, "experiments", "E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestListCommand(t *testing.T) {
	out, err := runCLI(t, "list")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"F1", "F2", "E1", "E18"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("list output missing titles:\n%s", out)
	}
}

func TestExperimentsParallelFlagMatchesSerial(t *testing.T) {
	// E4 has randomised parallel inner trials, so this exercises the
	// full Parallelism plumbing, not just outer table ordering.
	serial, err := runCLI(t, "experiments", "-parallel", "1", "F2", "E4")
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := runCLI(t, "experiments", "-parallel", "4", "F2", "E4")
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial != parallel {
		t.Fatalf("-parallel 4 output diverges from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestRunAliasForExperiments(t *testing.T) {
	out, err := runCLI(t, "run", "F1")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("run alias output: %s", out)
	}
}

func TestJoinCommand(t *testing.T) {
	for _, algo := range []string{"greedy", "discrete", "continuous"} {
		out, err := runCLI(t, "join", "-topology", "star", "-n", "6", "-algorithm", algo, "-budget", "4")
		if err != nil {
			t.Fatalf("join %s: %v", algo, err)
		}
		if !strings.Contains(out, "plan") {
			t.Fatalf("join %s output: %s", algo, out)
		}
	}
	if _, err := runCLI(t, "join", "-algorithm", "magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := runCLI(t, "join", "-topology", "hypercube"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestStabilityCommand(t *testing.T) {
	out, err := runCLI(t, "stability", "-topology", "star", "-n", "4", "-s", "2.5", "-l", "1")
	if err != nil {
		t.Fatalf("stability star: %v", err)
	}
	if !strings.Contains(out, "Theorem 8") {
		t.Fatalf("star output: %s", out)
	}
	out, err = runCLI(t, "stability", "-topology", "path", "-n", "6")
	if err != nil {
		t.Fatalf("stability path: %v", err)
	}
	if !strings.Contains(out, "Theorem 10") {
		t.Fatalf("path output: %s", out)
	}
	out, err = runCLI(t, "stability", "-topology", "circle", "-l", "0.5")
	if err != nil {
		t.Fatalf("stability circle: %v", err)
	}
	if !strings.Contains(out, "n0") && !strings.Contains(out, "stable") {
		t.Fatalf("circle output: %s", out)
	}
	if _, err := runCLI(t, "stability", "-topology", "torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSimulateCommand(t *testing.T) {
	out, err := runCLI(t, "simulate", "-topology", "star", "-n", "5", "-events", "2000")
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !strings.Contains(out, "success rate") || !strings.Contains(out, "busiest forwarders") {
		t.Fatalf("simulate output: %s", out)
	}
}

func TestSimulateFastEngine(t *testing.T) {
	out, err := runCLI(t, "simulate", "-engine", "fast", "-topology", "ba", "-n", "64",
		"-events", "5000", "-txsize", "2", "-shards", "4", "-rebalance", "500")
	if err != nil {
		t.Fatalf("simulate -engine fast: %v", err)
	}
	for _, want := range []string{"engine: fast (4 shards)", "success rate", "depleted arcs", "revenue/time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fast engine output missing %q:\n%s", want, out)
		}
	}
	// The result is a pure function of the config: worker count must not
	// change a byte of the report.
	serial, err := runCLI(t, "simulate", "-engine", "fast", "-topology", "ba", "-n", "64",
		"-events", "5000", "-txsize", "2", "-shards", "4", "-rebalance", "500", "-parallel", "1")
	if err != nil {
		t.Fatalf("simulate -parallel 1: %v", err)
	}
	if serial != out {
		t.Fatalf("fast engine output depends on parallelism:\n--- parallel ---\n%s--- serial ---\n%s", out, serial)
	}
	if _, err := runCLI(t, "simulate", "-engine", "warp"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestHelpCommand(t *testing.T) {
	out, err := runCLI(t, "help")
	if err != nil {
		t.Fatalf("help: %v", err)
	}
	if !strings.Contains(out, "experiments") {
		t.Fatalf("help output: %s", out)
	}
}

func TestDynamicsCommand(t *testing.T) {
	out, err := runCLI(t, "dynamics", "-topology", "circle", "-n", "6", "-s", "2", "-l", "1")
	if err != nil {
		t.Fatalf("dynamics: %v", err)
	}
	if !strings.Contains(out, "final topology: star") {
		t.Fatalf("dynamics output: %s", out)
	}
	if _, err := runCLI(t, "dynamics", "-topology", "moebius"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestGrowCommand(t *testing.T) {
	out, err := runCLI(t, "grow", "-topology", "ba", "-n", "10", "-arrivals", "40", "-candidates", "6")
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if !strings.Contains(out, "final:") || !strings.Contains(out, "pricing:") {
		t.Fatalf("grow output: %s", out)
	}
	if _, err := runCLI(t, "grow", "-topology", "torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := runCLI(t, "grow", "-attach", "magnetic"); err == nil {
		t.Fatal("unknown attach process accepted")
	}
}

func TestMarketCommand(t *testing.T) {
	out, err := runCLI(t, "market", "-topology", "ba", "-n", "10", "-ticks", "2", "-batch", "12", "-candidates", "6")
	if err != nil {
		t.Fatalf("market: %v", err)
	}
	for _, want := range []string{"market: ba seed", "tick", "final:", "pricing:", "admitted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("market output missing %q:\n%s", want, out)
		}
	}
	// The same seed replays byte-identically at a different worker
	// count, wall-time lines aside.
	a, err := runCLI(t, "market", "-ticks", "2", "-batch", "8", "-parallel", "1")
	if err != nil {
		t.Fatalf("market serial: %v", err)
	}
	b, err := runCLI(t, "market", "-ticks", "2", "-batch", "8", "-parallel", "4")
	if err != nil {
		t.Fatalf("market parallel: %v", err)
	}
	if cut := func(s string) string { return s[:strings.Index(s, "pricing:")] }; cut(a) != cut(b) {
		t.Fatalf("-parallel 4 market output diverges from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	// An unmeetable reserve withdraws everything.
	out, err = runCLI(t, "market", "-ticks", "1", "-batch", "6", "-reserve", "1000000")
	if err != nil {
		t.Fatalf("market reserve: %v", err)
	}
	if !strings.Contains(out, "6 withdrawn") {
		t.Fatalf("reserve output: %s", out)
	}
	if _, err := runCLI(t, "market", "-topology", "torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := runCLI(t, "market", "-attach", "magnetic"); err == nil {
		t.Fatal("unknown attach process accepted")
	}
	if _, err := runCLI(t, "market", "-ticks", "-1"); err == nil {
		t.Fatal("negative tick count accepted")
	}
}

func TestNetworkCommandAndFileLoading(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	if _, err := runCLI(t, "network", "-topology", "circle", "-n", "5", "-o", path); err != nil {
		t.Fatalf("network: %v", err)
	}
	out, err := runCLI(t, "simulate", "-topology", "file:"+path, "-events", "500")
	if err != nil {
		t.Fatalf("simulate from file: %v", err)
	}
	if !strings.Contains(out, "channels=5") {
		t.Fatalf("loaded network shape wrong: %s", out)
	}
	if _, err := runCLI(t, "join", "-topology", "file:/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFlagValidationRejectsBadCounts(t *testing.T) {
	cases := [][]string{
		{"simulate", "-events", "0"},
		{"simulate", "-events", "-5"},
		{"simulate", "-shards", "0"},
		{"simulate", "-shards", "-2"},
		{"simulate", "-parallel", "-1"},
		{"simulate", "-n", "0"},
		{"experiments", "-parallel", "-2", "F1"},
		{"join", "-n", "0"},
		{"stability", "-n", "-1"},
		{"stability", "-maxn", "0"},
		{"dynamics", "-rounds", "0"},
		{"grow", "-arrivals", "0"},
		{"grow", "-n", "-3"},
		{"grow", "-candidates", "-1"},
		{"market", "-ticks", "0"},
		{"market", "-batch", "-4"},
		{"market", "-rounds", "0"},
		{"market", "-refresh", "0"},
		{"market", "-parallel", "-1"},
		{"serve", "-n", "0"},
		{"serve", "-parallel", "-1"},
		{"serve", "-tick-arrivals", "0"},
		{"network", "-n", "-1"},
	}
	for _, args := range cases {
		_, err := runCLI(t, args...)
		if err == nil || !strings.Contains(err.Error(), "flag -") {
			t.Fatalf("%v: err = %v, want a usage error naming the flag", args, err)
		}
	}
}

func TestServeCommandLifecycleAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := dir + "/session.ckpt"
	// A bounded serve run with background commit load, checkpointing on
	// the way out.
	out, err := runCLI(t, "serve", "-addr", "127.0.0.1:0", "-topology", "ba", "-n", "16",
		"-tick", "20ms", "-duration", "250ms", "-checkpoint", ckpt)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !strings.Contains(out, "serving 16 nodes") || !strings.Contains(out, "checkpoint written") {
		t.Fatalf("serve output: %s", out)
	}
	// The checkpoint restores into a fresh serving session with no
	// all-pairs rebuild.
	out, err = runCLI(t, "serve", "-addr", "127.0.0.1:0", "-restore", ckpt, "-duration", "50ms")
	if err != nil {
		t.Fatalf("serve -restore: %v", err)
	}
	if !strings.Contains(out, "restored session from") || !strings.Contains(out, "0 plane rebuilds") {
		t.Fatalf("restore output: %s", out)
	}
	if _, err := runCLI(t, "serve", "-restore", dir+"/missing.ckpt", "-duration", "10ms"); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestNetworkCommandStdout(t *testing.T) {
	out, err := runCLI(t, "network", "-topology", "star", "-n", "3")
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if !strings.Contains(out, `"users": 4`) {
		t.Fatalf("JSON output: %s", out)
	}
}

func TestServeCommandDurableStateDir(t *testing.T) {
	state := t.TempDir() + "/state"
	// First life: durable serving with background commit load; the
	// final checkpoint lands in the state directory on clean shutdown.
	out, err := runCLI(t, "serve", "-addr", "127.0.0.1:0", "-topology", "ba", "-n", "16",
		"-tick", "20ms", "-duration", "250ms", "-wal", state, "-checkpoint-mutations", "4")
	if err != nil {
		t.Fatalf("serve -wal: %v", err)
	}
	if !strings.Contains(out, "serving 16 nodes") || !strings.Contains(out, "durable state in") {
		t.Fatalf("serve -wal output: %s", out)
	}
	// Second life: the directory carries the session; the seed topology
	// is ignored and recovery reports its provenance with no rebuilds.
	out, err = runCLI(t, "serve", "-addr", "127.0.0.1:0", "-n", "99",
		"-duration", "50ms", "-wal", state)
	if err != nil {
		t.Fatalf("serve -wal restart: %v", err)
	}
	if !strings.Contains(out, "restored session from "+state) ||
		!strings.Contains(out, "0 plane rebuilds") ||
		!strings.Contains(out, "checkpoint epoch") {
		t.Fatalf("restart output: %s", out)
	}
	if _, err := runCLI(t, "serve", "-wal", state, "-restore", "x", "-duration", "10ms"); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Fatalf("-wal with -restore: err = %v, want exclusivity error", err)
	}
	if _, err := runCLI(t, "serve", "-wal", state, "-wal-sync", "0", "-duration", "10ms"); err == nil {
		t.Fatal("-wal-sync 0 accepted")
	}
}
