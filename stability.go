package lcg

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// GameParams fixes the creation-game parameters of §IV: symmetric sender
// rates, a global fee pair, a shared per-party channel cost, and the
// modified-Zipf scale of the transaction distribution.
type GameParams struct {
	// ZipfS is the scale parameter s of the degree-ranked distribution.
	ZipfS float64
	// SenderRate is N_v, every node's transaction rate.
	SenderRate float64
	// FAvg is favg (b = SenderRate·FAvg in the paper's shorthand).
	FAvg float64
	// FeePerHop is f^T_avg (a = SenderRate·FeePerHop).
	FeePerHop float64
	// LinkCost is l, each party's cost per channel.
	LinkCost float64
}

// DefaultGameParams returns the baseline configuration used by the
// stability experiments.
func DefaultGameParams() GameParams {
	return GameParams{ZipfS: 1, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 1}
}

func (p GameParams) toGame() game.Config {
	return game.Config{
		Dist:       txdist.ModifiedZipf{S: p.ZipfS},
		SenderRate: p.SenderRate,
		FAvg:       p.FAvg,
		FeePerHop:  p.FeePerHop,
		LinkCost:   p.LinkCost,
	}
}

// Deviation describes an improving unilateral strategy change.
type Deviation struct {
	// Node is the deviating user.
	Node int
	// Neighbors is the replacement channel-peer set.
	Neighbors []int
	// Gain is the utility improvement.
	Gain float64
}

// Utilities returns every user's utility in the creation game: routing
// revenue minus expected fees minus channel costs (−Inf for users cut off
// from recipients they transact with).
func Utilities(n *Network, p GameParams) ([]float64, error) {
	utils, err := game.Utilities(n.graphView(), p.toGame())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return utils, nil
}

// IsNashEquilibrium exhaustively checks whether any user can improve by
// rewiring its channels (2^(n−1) deviations per user: keep n small).
func IsNashEquilibrium(n *Network, p GameParams) (bool, *Deviation, error) {
	report, err := game.IsNashEquilibrium(n.graphView(), p.toGame())
	if err != nil {
		return false, nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if report.IsEquilibrium {
		return true, nil, nil
	}
	return false, deviationFrom(report.Witness), nil
}

// BestResponse returns user u's utility-maximising rewiring.
func BestResponse(n *Network, p GameParams, u int) (Deviation, error) {
	dev, err := game.BestResponse(n.graphView(), p.toGame(), graph.NodeID(u))
	if err != nil {
		return Deviation{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return *deviationFrom(&dev), nil
}

// StarStable evaluates the star topology with the given number of leaves
// both ways: the paper's closed-form Theorem 8 condition system and the
// exhaustive deviation search.
func StarStable(leaves int, p GameParams) (closedForm, exhaustive bool, err error) {
	cfg := p.toGame()
	closedForm = game.StarClosedFormNEConfig(leaves, p.ZipfS, cfg)
	report, err := game.IsNashEquilibrium(graph.Star(leaves, 1), cfg)
	if err != nil {
		return false, false, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return closedForm, report.IsEquilibrium, nil
}

// Theorem9Regime reports whether the parameters fall in Theorem 9's
// sufficient star-stability regime (s ≥ 2, a/H ≤ l, b/H ≤ l).
func Theorem9Regime(leaves int, p GameParams) bool {
	cfg := p.toGame()
	return game.Theorem9Applies(leaves, p.ZipfS, cfg.A(), cfg.B(), cfg.LinkCost)
}

// PathInstabilityWitness returns the improving endpoint deviation of an
// n-user path (Theorem 10 asserts one always exists).
func PathInstabilityWitness(n int, p GameParams) (Deviation, bool, error) {
	dev, found, err := game.PathUnstableWitness(n, p.toGame())
	if err != nil {
		return Deviation{}, false, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return *deviationFrom(&dev), found, nil
}

// CircleCrossover returns the smallest circle size in [4, maxN] at which
// connecting to the opposite node becomes profitable (Theorem 11's n0).
func CircleCrossover(p GameParams, maxN int) (n0 int, found bool, err error) {
	n0, found, err = game.CircleCrossover(p.toGame(), 4, maxN)
	if err != nil {
		return 0, false, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return n0, found, nil
}

// HubBound audits Theorem 6 for the given hub: the measured longest
// shortest path through the hub, the closed-form bound, and whether the
// bound holds.
func HubBound(n *Network, p GameParams, hub int) (pathLen int, bound float64, holds bool, err error) {
	report, err := game.AuditHubBound(n.graphView(), p.toGame(), graph.NodeID(hub))
	if err != nil {
		return 0, 0, false, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return report.PathLen, report.Bound, report.Holds(), nil
}

func deviationFrom(d *game.Deviation) *Deviation {
	if d == nil {
		return nil
	}
	neighbors := make([]int, len(d.Neighbors))
	for i, v := range d.Neighbors {
		neighbors[i] = int(v)
	}
	return &Deviation{Node: int(d.Node), Neighbors: neighbors, Gain: d.Gain}
}
