package lcg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/serve"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// LiveConfig shapes a live serving session (see NewLiveSession).
type LiveConfig struct {
	// Params are the economic parameters of committed channels and
	// priced queries (default DefaultParams).
	Params *Params
	// RemoteBalance is granted on the peer side of every committed
	// channel (default 1).
	RemoteBalance float64
	// Uniform switches the transaction model to the uniform baseline;
	// otherwise the modified Zipf distribution with scale ZipfS
	// (default 1) is used.
	Uniform bool
	ZipfS   float64
	// Parallelism bounds batch-query fan-out and substrate folds: 0 or
	// negative uses all cores.
	Parallelism int
	// TickArrivals is the number of synthetic arrivals committed per
	// background tick when Serve runs with a tick interval (default 1).
	TickArrivals int
}

func (c LiveConfig) normalized() (LiveConfig, core.Params) {
	if c.RemoteBalance == 0 {
		c.RemoteBalance = 1
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1
	}
	if c.TickArrivals <= 0 {
		c.TickArrivals = 1
	}
	params := DefaultParams()
	if c.Params != nil {
		params = *c.Params
	}
	return c, params.toCore()
}

func (c LiveConfig) dist() txdist.Distribution {
	if c.Uniform {
		return txdist.Uniform{}
	}
	return txdist.ModifiedZipf{S: c.ZipfS}
}

// LiveSession is a serving session over a live network: it owns the
// substrate, prices join and best-response queries against frozen
// snapshot epochs while commits proceed, and checkpoints itself to a
// binary stream restorable in seconds (see LoadCheckpoint).
type LiveSession struct {
	s   *serve.Session
	cfg LiveConfig
}

// NewLiveSession opens a serving session over a copy of n. The network
// must be non-empty; the session pays one all-pairs build up front
// (use LoadCheckpoint to skip it on restart).
func NewLiveSession(n *Network, cfg LiveConfig) (*LiveSession, error) {
	cfg, params := cfg.normalized()
	if n == nil || n.NumUsers() == 0 {
		return nil, fmt.Errorf("%w: live session needs a non-empty network", ErrBadInput)
	}
	gs, err := core.NewGrowSession(n.graphView().Clone(), params, 0, cfg.RemoteBalance)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s, err := serve.NewSession(gs, serve.Config{
		Params:        params,
		RemoteBalance: cfg.RemoteBalance,
		Dist:          cfg.dist(),
		Workers:       cfg.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &LiveSession{s: s, cfg: cfg}, nil
}

// Session exposes the underlying epoch-disciplined session for direct
// (non-HTTP) queries.
func (ls *LiveSession) Session() *serve.Session { return ls.s }

// Epoch reports the current snapshot epoch.
func (ls *LiveSession) Epoch() uint64 { return ls.s.Epoch() }

// Handler returns the session's HTTP API (see DESIGN.md for routes).
func (ls *LiveSession) Handler() http.Handler { return serve.NewHandler(ls.s) }

// Tick commits a batch of synthetic arrivals — the sustained commit
// load a serving deployment sees. Deterministic per seed.
func (ls *LiveSession) Tick(arrivals int, seed int64) (int, error) {
	committed, _, err := ls.s.Tick(arrivals, seed)
	return committed, err
}

// Serve listens on addr and serves the session's HTTP API until ctx is
// cancelled. A positive tickEvery starts a background ticker committing
// TickArrivals synthetic arrivals per interval — live commit load under
// the queries. Returns nil on clean shutdown.
func (ls *LiveSession) Serve(ctx context.Context, addr string, tickEvery time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("%w: listen %s: %v", ErrBadInput, addr, err)
	}
	srv := &http.Server{Handler: ls.Handler()}
	tickCtx, stopTicks := context.WithCancel(ctx)
	defer stopTicks()
	if tickEvery > 0 {
		go func() {
			ticker := time.NewTicker(tickEvery)
			defer ticker.Stop()
			seed := int64(1)
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-ticker.C:
					// Tick errors are not fatal to the server: the
					// substrate stays coherent (failed ticks roll no
					// state forward) and queries keep serving.
					ls.s.Tick(ls.cfg.TickArrivals, seed) //nolint:errcheck
					seed++
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
