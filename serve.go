package lcg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/serve"
	"github.com/lightning-creation-games/lcg/internal/txdist"
	"github.com/lightning-creation-games/lcg/internal/wal"
)

// LiveConfig shapes a live serving session (see NewLiveSession).
type LiveConfig struct {
	// Params are the economic parameters of committed channels and
	// priced queries (default DefaultParams).
	Params *Params
	// RemoteBalance is granted on the peer side of every committed
	// channel (default 1).
	RemoteBalance float64
	// Uniform switches the transaction model to the uniform baseline;
	// otherwise the modified Zipf distribution with scale ZipfS
	// (default 1) is used.
	Uniform bool
	ZipfS   float64
	// Parallelism bounds batch-query fan-out and substrate folds: 0 or
	// negative uses all cores.
	Parallelism int
	// TickArrivals is the number of synthetic arrivals committed per
	// background tick when Serve runs with a tick interval (default 1).
	TickArrivals int
}

func (c LiveConfig) normalized() (LiveConfig, core.Params) {
	if c.RemoteBalance == 0 {
		c.RemoteBalance = 1
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1
	}
	if c.TickArrivals <= 0 {
		c.TickArrivals = 1
	}
	params := DefaultParams()
	if c.Params != nil {
		params = *c.Params
	}
	return c, params.toCore()
}

func (c LiveConfig) dist() txdist.Distribution {
	if c.Uniform {
		return txdist.Uniform{}
	}
	return txdist.ModifiedZipf{S: c.ZipfS}
}

// DurabilityConfig shapes a crash-safe serving session (see
// OpenDurableSession): where state lives on disk, how eagerly the
// write-ahead log fsyncs, and when the background checkpointer
// compacts it.
type DurabilityConfig struct {
	// Dir holds the session's durable state: wal-<gen>.log segments and
	// ckpt-<epoch>.bin snapshots side by side. Required.
	Dir string
	// SyncEvery batches WAL fsyncs: 0 or 1 fsyncs after every record
	// (no acknowledged mutation is ever lost); N > 1 fsyncs every N
	// records, trading up to N-1 acknowledged mutations for throughput.
	SyncEvery int
	// SyncInterval switches the WAL to timer-driven fsync instead:
	// appends never fsync inline and the loss window is the interval.
	SyncInterval time.Duration
	// CheckpointInterval and CheckpointMutations trigger the background
	// checkpointer on a timer and/or a mutation count (0 disables a
	// trigger; with both zero the WAL alone carries durability until
	// Close).
	CheckpointInterval  time.Duration
	CheckpointMutations int
	// Retain is how many checkpoint generations survive pruning
	// (default 2).
	Retain int
}

// LiveSession is a serving session over a live network: it owns the
// substrate, prices join and best-response queries against frozen
// snapshot epochs while commits proceed, and checkpoints itself to a
// binary stream restorable in seconds (see LoadCheckpoint).
type LiveSession struct {
	s   *serve.Session
	cfg LiveConfig
	d   *serve.Durable // nil unless opened via OpenDurableSession
}

// OpenDurableSession opens a crash-safe serving session over dur.Dir.
// If the directory holds durable state from a previous run, the session
// recovers from it — newest checkpoint plus write-ahead-log replay,
// landing on the exact pre-crash epoch with zero plane rebuilds — and n
// is ignored. Otherwise n seeds a fresh session (exactly like
// NewLiveSession) and an initial checkpoint is written before serving
// starts. Close the session to stop the background checkpointer and
// write a final snapshot.
func OpenDurableSession(n *Network, cfg LiveConfig, dur DurabilityConfig) (*LiveSession, error) {
	cfg, params := cfg.normalized()
	if dur.Dir == "" {
		return nil, fmt.Errorf("%w: durable session needs a state directory", ErrBadInput)
	}
	scfg := serve.Config{
		Params:        params,
		RemoteBalance: cfg.RemoteBalance,
		Dist:          cfg.dist(),
		Workers:       cfg.Parallelism,
	}
	var seed func() (*serve.Session, error)
	if n != nil && n.NumUsers() > 0 {
		seed = func() (*serve.Session, error) {
			gs, err := core.NewGrowSession(n.graphView().Clone(), params, 0, cfg.RemoteBalance)
			if err != nil {
				return nil, err
			}
			return serve.NewSession(gs, scfg)
		}
	}
	d, err := serve.Open(serve.DurableConfig{
		Dir:                 dur.Dir,
		Sync:                wal.SyncPolicy{Every: dur.SyncEvery, Interval: dur.SyncInterval},
		CheckpointInterval:  dur.CheckpointInterval,
		CheckpointMutations: dur.CheckpointMutations,
		Retain:              dur.Retain,
	}, scfg, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &LiveSession{s: d.S, cfg: cfg, d: d}, nil
}

// Recovered reports what a durable open found on disk: the epoch of the
// checkpoint it restored and how many WAL records it replayed on top.
// Both zero for fresh or non-durable sessions.
func (ls *LiveSession) Recovered() (checkpointEpoch uint64, walRecords int) {
	if ls.d == nil {
		return 0, 0
	}
	return ls.d.RecoveredCheckpointEpoch, ls.d.RecoveredWALRecords
}

// Close shuts the durability layer down: the background checkpointer
// stops, a final checkpoint is written if mutations are pending, and
// the WAL closes. A no-op for sessions without one; the session itself
// keeps answering in-memory queries either way.
func (ls *LiveSession) Close() error {
	if ls.d == nil {
		return nil
	}
	return ls.d.Close()
}

// NewLiveSession opens a serving session over a copy of n. The network
// must be non-empty; the session pays one all-pairs build up front
// (use LoadCheckpoint to skip it on restart).
func NewLiveSession(n *Network, cfg LiveConfig) (*LiveSession, error) {
	cfg, params := cfg.normalized()
	if n == nil || n.NumUsers() == 0 {
		return nil, fmt.Errorf("%w: live session needs a non-empty network", ErrBadInput)
	}
	gs, err := core.NewGrowSession(n.graphView().Clone(), params, 0, cfg.RemoteBalance)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s, err := serve.NewSession(gs, serve.Config{
		Params:        params,
		RemoteBalance: cfg.RemoteBalance,
		Dist:          cfg.dist(),
		Workers:       cfg.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &LiveSession{s: s, cfg: cfg}, nil
}

// Session exposes the underlying epoch-disciplined session for direct
// (non-HTTP) queries.
func (ls *LiveSession) Session() *serve.Session { return ls.s }

// Epoch reports the current snapshot epoch.
func (ls *LiveSession) Epoch() uint64 { return ls.s.Epoch() }

// Handler returns the session's HTTP API (see DESIGN.md for routes).
func (ls *LiveSession) Handler() http.Handler { return serve.NewHandler(ls.s) }

// Tick commits a batch of synthetic arrivals — the sustained commit
// load a serving deployment sees. Deterministic per seed.
func (ls *LiveSession) Tick(arrivals int, seed int64) (int, error) {
	committed, _, err := ls.s.Tick(arrivals, seed)
	return committed, err
}

// Serve listens on addr and serves the session's HTTP API until ctx is
// cancelled. A positive tickEvery starts a background ticker committing
// TickArrivals synthetic arrivals per interval — live commit load under
// the queries. Returns nil on clean shutdown.
func (ls *LiveSession) Serve(ctx context.Context, addr string, tickEvery time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("%w: listen %s: %v", ErrBadInput, addr, err)
	}
	// Server-level timeouts bound slow or dead clients: a header that
	// never finishes, a body that trickles, an idle keep-alive hoard.
	// WriteTimeout stays unset — the checkpoint stream legitimately runs
	// for minutes and carries its own write deadline; per-query deadlines
	// come from the handler's timeout wrapper instead.
	srv := &http.Server{
		Handler:           ls.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	tickCtx, stopTicks := context.WithCancel(ctx)
	defer stopTicks()
	if tickEvery > 0 {
		go func() {
			ticker := time.NewTicker(tickEvery)
			defer ticker.Stop()
			seed := int64(1)
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-ticker.C:
					// Tick errors are not fatal to the server: the
					// substrate stays coherent (failed ticks roll no
					// state forward) and queries keep serving.
					ls.s.Tick(ls.cfg.TickArrivals, seed) //nolint:errcheck
					seed++
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
