package lcg

import (
	"errors"
	"testing"
)

func TestMarketFacade(t *testing.T) {
	cfg := MarketConfig{
		Topology:     "ba",
		SeedSize:     10,
		Ticks:        3,
		Batch:        16,
		MaxRounds:    3,
		Candidates:   8,
		Preferential: true,
		Seed:         1,
	}
	report, err := Market(cfg)
	if err != nil {
		t.Fatalf("Market: %v", err)
	}
	if report.Admitted != 48 {
		t.Fatalf("Admitted = %d, want 48 (reserves off)", report.Admitted)
	}
	if report.Final.NumUsers() != 58 {
		t.Fatalf("final users = %d, want 58", report.Final.NumUsers())
	}
	if len(report.Ticks) != 3 {
		t.Fatalf("ticks = %d, want 3", len(report.Ticks))
	}
	last := report.Ticks[len(report.Ticks)-1]
	if last.Class == "" || last.Nodes != 58 {
		t.Fatalf("empty final tick: %+v", last)
	}
	if report.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

// TestMarketFacadeDeterministicAcrossParallelism: the report is
// bit-identical in everything but wall time at any worker count.
func TestMarketFacadeDeterministicAcrossParallelism(t *testing.T) {
	var want *MarketReport
	for _, workers := range []int{1, 4} {
		cfg := MarketConfig{Ticks: 2, Batch: 12, Seed: 7, Parallelism: workers}
		report, err := Market(cfg)
		if err != nil {
			t.Fatalf("Market: %v", err)
		}
		if want == nil {
			want = report
			continue
		}
		if len(report.Ticks) != len(want.Ticks) {
			t.Fatalf("tick counts differ: %d vs %d", len(report.Ticks), len(want.Ticks))
		}
		for i := range report.Ticks {
			if report.Ticks[i] != want.Ticks[i] {
				t.Fatalf("tick %d differs across parallelism:\n%+v\n%+v", i, report.Ticks[i], want.Ticks[i])
			}
		}
		if report.Admitted != want.Admitted || report.Evaluations != want.Evaluations ||
			report.Deferrals != want.Deferrals || report.Repricings != want.Repricings {
			t.Fatal("run totals differ across parallelism")
		}
	}
}

// TestMarketFacadeReserve: an unmeetable pinned reserve withdraws every
// bid and leaves the seed untouched.
func TestMarketFacadeReserve(t *testing.T) {
	report, err := Market(MarketConfig{
		Ticks: 2, Batch: 8, Seed: 3,
		Reserve: true, ReserveMin: 1e9, ReserveMax: 1e9,
	})
	if err != nil {
		t.Fatalf("Market: %v", err)
	}
	if report.Admitted != 0 || report.Withdrawn != 16 {
		t.Fatalf("admitted/withdrawn = %d/%d, want 0/16", report.Admitted, report.Withdrawn)
	}
	if report.Final.NumUsers() != 12 {
		t.Fatalf("final users = %d, want the untouched 12-node seed", report.Final.NumUsers())
	}
}

func TestMarketFacadeRejectsBadInput(t *testing.T) {
	cases := []MarketConfig{
		{Topology: "torus"},
		{Ticks: -1},
		{Ticks: 2, Batch: -4},
		{Ticks: 2, MaxRounds: -1},
		{Ticks: 2, BudgetMin: -1, BudgetMax: 5},
		{Ticks: 2, Params: &Params{}}, // zero OnChainCost is invalid
	}
	for i, cfg := range cases {
		if _, err := Market(cfg); !errors.Is(err, ErrBadInput) {
			t.Fatalf("case %d: error = %v, want ErrBadInput", i, err)
		}
	}
}
