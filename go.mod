module github.com/lightning-creation-games/lcg

go 1.22
