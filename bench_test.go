package lcg

// One benchmark per experiment id from DESIGN.md's index (regenerating
// the paper artifact end to end), plus scaling series for the two
// approximation algorithms and micro-benchmarks for the substrates the
// library is built on.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/market"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/serve"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/traffic2"
	"github.com/lightning-creation-games/lcg/internal/txdist"
	"github.com/lightning-creation-games/lcg/internal/wal"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(id, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExperimentParallel regenerates the same artifact over the
// all-cores worker pool; paired with the serial benchmark of the same id
// it measures the parallel engine's wall-clock speedup (the output is
// byte-identical by construction).
func benchExperimentParallel(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		err := RunExperiments([]string{id}, ExperimentOptions{Seed: 1, Parallelism: 0}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The serial/parallel pairs below measure the engine on the heaviest
// trial-loop experiments. On a ≥ 4-core machine the parallel variants
// should run ≥ 1.5× faster; on one core they cost a few percent of
// goroutine overhead.
func BenchmarkE1SubmodularityParallel(b *testing.B) { benchExperimentParallel(b, "E1") }
func BenchmarkE4GreedyRatioParallel(b *testing.B)   { benchExperimentParallel(b, "E4") }
func BenchmarkE6ContinuousRatioParallel(b *testing.B) {
	benchExperimentParallel(b, "E6")
}
func BenchmarkE18BoundaryParallel(b *testing.B) { benchExperimentParallel(b, "E18") }

// BenchmarkSuite regenerates the full F1-F2 + E1-E18 corpus end to end,
// serial vs parallel — the headline number of the parallel engine.
func BenchmarkSuite(b *testing.B) {
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{name: "serial", parallelism: 1},
		{name: "parallel", parallelism: 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := RunExperiments(nil, ExperimentOptions{Seed: 1, Parallelism: bc.parallelism}, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkF1ChannelSemantics(b *testing.B)   { benchExperiment(b, "F1") }
func BenchmarkF2JoiningExample(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkE1Submodularity(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Monotonicity(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3NegativeUtility(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4GreedyRatio(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5DiscreteRatio(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6ContinuousRatio(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7HubDiameter(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8StarStability(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9PathInstability(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10CircleInstability(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11SimVsAnalytic(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Tradeoff(b *testing.B)          { benchExperiment(b, "E12") }

// newBenchEvaluator builds a core evaluator over a BA topology of size n.
func newBenchEvaluator(b *testing.B, n int) *core.JoinEvaluator {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(n, 2, 10, rng)
	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(g, dist, float64(n))
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewJoinEvaluator(g, dist, demand, core.Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        1,
		FeePerHop:   0.2,
		OwnRate:     2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkAlg1Scaling measures Algorithm 1 end to end (rate estimation
// amortised by the evaluator) across network sizes — the Theorem 4
// runtime series.
func BenchmarkAlg1Scaling(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ev := newBenchEvaluator(b, n)
			// Force the one-time λ̂ estimation outside the timed loop.
			ev.FixedRate(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Greedy(ev, core.GreedyConfig{Budget: 8, Lock: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyLargeN prices Algorithm 1 on production-scale
// topologies — the channel-market workload (thousands of candidate
// channels per tick) the incremental evaluation engine unlocks. Allocs
// are reported: probes run as Push/measure/Pop deltas and must stay
// allocation-free in steady state.
func BenchmarkGreedyLargeN(b *testing.B) {
	for _, n := range []int{512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ev := newBenchEvaluator(b, n)
			ev.FixedRate(0) // one-time λ̂ estimation outside the timed loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Greedy(ev, core.GreedyConfig{Budget: 16, Lock: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarginalProbe isolates one marginal-gain evaluation — the
// unit Theorems 4-5 count — on a held strategy of 4 channels:
// "incremental" is the Push/measure/Pop delta the optimisers use,
// "strategy" the Strategy-valued one-shot API that reloads the session
// per call. The gap between the two is the per-probe win of the
// incremental engine.
func BenchmarkMarginalProbe(b *testing.B) {
	for _, n := range []int{128, 512} {
		ev := newBenchEvaluator(b, n)
		ev.FixedRate(0)
		base := core.Strategy{{Peer: 1, Lock: 1}, {Peer: 2, Lock: 1}, {Peer: 5, Lock: 1}, {Peer: 9, Lock: 1}}
		probe := core.Action{Peer: 17, Lock: 1}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			st := ev.NewState()
			st.Load(base)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Push(probe)
				_ = st.Simplified(core.RevenueFixedRate)
				st.Pop()
			}
		})
		b.Run(fmt.Sprintf("strategy/n=%d", n), func(b *testing.B) {
			s := base.With(probe)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.Simplified(s, core.RevenueFixedRate)
			}
		})
	}
}

// BenchmarkAlg2Granularity measures Algorithm 2 as the lock granularity m
// shrinks — the Theorem 5 trade-off series.
func BenchmarkAlg2Granularity(b *testing.B) {
	for _, unit := range []float64{4, 2, 1, 0.5} {
		b.Run(fmt.Sprintf("m=%g", unit), func(b *testing.B) {
			ev := newBenchEvaluator(b, 24)
			ev.FixedRate(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.DiscreteSearch(ev, core.DiscreteConfig{Budget: 6, Unit: unit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRateEstimation isolates the λ̂ oracle (the paper's "estimation
// of the λ_uv parameter").
func BenchmarkRateEstimation(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ev := newBenchEvaluator(b, n)
			all := make([]graph.NodeID, n)
			for i := range all {
				all[i] = graph.NodeID(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.EstimateRates(all)
			}
		})
	}
}

// BenchmarkWeightedBetweenness measures the Brandes substrate, the inner
// loop of every rate estimate and revenue computation.
func BenchmarkWeightedBetweenness(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := graph.BarabasiAlbert(n, 2, 1, rng)
			dist := txdist.ModifiedZipf{S: 1}
			demand, err := traffic.NewUniformDemand(g, dist, float64(n))
			if err != nil {
				b.Fatal(err)
			}
			w := demand.PairWeight()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.EdgeBetweenness(w)
			}
		})
	}
}

// BenchmarkAllPairsBFS measures the evaluator's one-time precomputation.
func BenchmarkAllPairsBFS(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := graph.BarabasiAlbert(n, 2, 1, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.AllPairsBFS()
			}
		})
	}
}

// BenchmarkPaymentThroughput measures multi-hop payment execution over
// live channels.
func BenchmarkPaymentThroughput(b *testing.B) {
	g := graph.Circle(32, 1e12)
	ledger, err := chain.NewLedger(1)
	if err != nil {
		b.Fatal(err)
	}
	network, err := payment.FromGraph(ledger, fee.Constant{F: 0.01}, g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := graph.NodeID(i % 32)
		to := graph.NodeID((i + 7) % 32)
		if _, err := network.Pay(from, to, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNashCheck measures the exhaustive equilibrium verification on
// the §IV star.
func BenchmarkNashCheck(b *testing.B) {
	for _, leaves := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			g := graph.Star(leaves, 1)
			cfg := game.Config{
				Dist:       txdist.ModifiedZipf{S: 2},
				SenderRate: 1,
				FAvg:       0.5,
				FeePerHop:  0.5,
				LinkCost:   1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := game.IsNashEquilibrium(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulation measures the discrete-event replay loop.
func BenchmarkSimulation(b *testing.B) {
	network := Star(8, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(network, SimConfig{
			Events:      2000,
			ZipfS:       1,
			TxSize:      1,
			FeePerHop:   0.01,
			OnChainFee:  1,
			Seed:        int64(i),
			SteadyState: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13Dynamics(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14Estimation(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15Distribution(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16CostModel(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17Anarchy(b *testing.B)      { benchExperiment(b, "E17") }

// BenchmarkBestResponseDynamics isolates one dynamics run on the §IV
// benchmark topology.
func BenchmarkBestResponseDynamics(b *testing.B) {
	cfg := game.Config{
		Dist:       txdist.ModifiedZipf{S: 2},
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   1,
	}
	g := graph.Circle(6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.BestResponseDynamics(g, cfg, game.DynamicsConfig{MaxRounds: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDemandEstimation isolates the empirical demand estimator.
func BenchmarkDemandEstimation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(16, 2, 10, rng)
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, 16)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := traffic.NewGenerator(demand, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	txs := gen.Take(10000)
	duration := gen.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.EstimateDemand(16, txs, duration, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18Boundary(b *testing.B) { benchExperiment(b, "E18") }

// growBenchConfig is the growth-benchmark base: empty seed (the n=0→N
// acceptance run), preferential candidates, fixed-rate pricing, uniform
// demand snapshots. The demand/λ̂ re-quote cadence scales with n past the
// n=2000 flagship (staleness proportional to network size), so the large
// sizes measure the substrate rather than repeated O(n²) re-quoting; the
// substrate passes fan out over all cores.
func growBenchConfig(arrivals int) growth.Config {
	cfg := growth.DefaultConfig()
	cfg.Seed = growth.SeedEmpty
	cfg.SeedSize = 0
	cfg.Arrivals = arrivals
	cfg.Candidates = 16
	cfg.Attach = growth.AttachPreferential
	cfg.BudgetMin, cfg.BudgetMax = 3, 8
	cfg.RateMin, cfg.RateMax = 0.5, 1.5
	cfg.RefreshEvery = 64
	if arrivals > 2000 {
		cfg.RefreshEvery = arrivals / 32
		cfg.Parallelism = -1
	}
	cfg.EpochEvery = arrivals
	cfg.Uniform = true
	return cfg
}

// BenchmarkGrowArrivals measures the sequential-arrival engine end to
// end on the incremental commit path: ns/op is the whole n=0→N run, and
// the derived metric reports mean µs per join. The n=2000 size is the
// flagship; n=5000 and n=10000 are the CSR-substrate scale runs (the
// n=10000 acceptance bound is <60s) and are skipped in -short mode so
// the CI bench smoke stays fast.
func BenchmarkGrowArrivals(b *testing.B) {
	for _, arrivals := range []int{512, 1024, 2000, 5000, 10000} {
		b.Run(fmt.Sprintf("n=%d", arrivals), func(b *testing.B) {
			if testing.Short() && arrivals > 2000 {
				b.Skip("scale rows in -short mode")
			}
			cfg := growBenchConfig(arrivals)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := growth.Run(cfg, rand.New(rand.NewSource(1)))
				if err != nil {
					b.Fatal(err)
				}
				if res.Final.NumNodes() != arrivals {
					b.Fatalf("grew %d nodes, want %d", res.Final.NumNodes(), arrivals)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(arrivals), "µs/join")
		})
	}
}

// benchMarketConfig is the market-benchmark base: a BA(512,2) substrate
// (the n=512 acceptance size), preferential candidates, fixed-rate
// pricing, uniform demand snapshots, quotes refreshed every tick.
func benchMarketConfig(batch, ticks int) market.Config {
	cfg := market.DefaultConfig()
	cfg.SeedSize = 512
	cfg.SeedParam = 2
	cfg.Batch = batch
	cfg.Ticks = ticks
	cfg.Candidates = 16
	cfg.BudgetMin, cfg.BudgetMax = 3, 8
	cfg.RateMin, cfg.RateMax = 0.5, 1.5
	cfg.RefreshTicks = 1
	cfg.Uniform = true
	return cfg
}

// BenchmarkMarketTick measures the batch channel-market engine end to
// end at n=512: one tick pricing `batch` concurrent join bids against a
// shared frozen quote, resolved in up to 3 re-price rounds and folded
// in through the incremental commit path. The derived metric is mean µs
// per bid — compare against BenchmarkMarketPerBid, the per-bid
// sequential baseline that re-quotes (demand + λ̂ refresh) before every
// single bid exactly as a sequential arrival process must. Batching
// amortizes the O(n²) quote maintenance across the whole tick and lets
// the pricing fan out across cores; batch=256 must clear ≥3× the
// sequential baseline's throughput.
func BenchmarkMarketTick(b *testing.B) {
	for _, batch := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			if testing.Short() && batch > 1024 {
				b.Skip("scale rows in -short mode")
			}
			cfg := benchMarketConfig(batch, 1)
			if batch > 1024 {
				// The wide-tick scale row runs the fused commit fold (the
				// throughput configuration); regret telemetry is off by
				// construction there.
				cfg.BatchCommit = true
				cfg.Parallelism = -1
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := market.Run(cfg, rand.New(rand.NewSource(1)))
				if err != nil {
					b.Fatal(err)
				}
				if res.Admitted != batch {
					b.Fatalf("admitted %d bids, want %d", res.Admitted, batch)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(batch), "µs/bid")
		})
	}
}

// BenchmarkMarketPerBid is the sequential baseline BenchmarkMarketTick
// is measured against: the same 256 bids priced one at a time — ticks
// of batch 1, each paying its own demand/λ̂ re-quote against the live
// substrate, the way a sequential arrival stream prices joins.
func BenchmarkMarketPerBid(b *testing.B) {
	const bids = 256
	cfg := benchMarketConfig(1, bids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := market.Run(cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Admitted != bids {
			b.Fatalf("admitted %d bids, want %d", res.Admitted, bids)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(bids), "µs/bid")
}

// BenchmarkGrowArrivalsRebuild is the baseline the commit path is
// measured against: the differential oracle, which rebuilds a full
// JoinEvaluator (all-pairs BFS + transpose) from scratch for every
// arrival and prices through the scratch stats path. Compare µs/join
// against BenchmarkGrowArrivals/n=512 — the incremental engine's
// per-join cost is sublinear in n relative to this.
func BenchmarkGrowArrivalsRebuild(b *testing.B) {
	const arrivals = 512
	cfg := growBenchConfig(arrivals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := growth.ReferenceRun(cfg, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(arrivals), "µs/join")
}

// BenchmarkAllPairsRebuild measures the deletion slow path (and the
// cold start): the row-sharded parallel rebuild against the serial one
// at the growth flagship size. On a single-core runner the parallel
// variant degenerates to the serial loop; on k cores the rows shard
// evenly, and the acceptance bar is ≥4× at n=2000 on 8 cores.
func BenchmarkAllPairsRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(2000, 2, 1, rng)
	g.AllPairsBFS() // warm the CSR cache outside the timed loops
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.AllPairsBFSParallel(1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.AllPairsBFSParallel(0)
		}
	})
}

// BenchmarkCloseFold measures the decremental departure fold against the
// full rebuild it replaces: per iteration one node departs ({CloseNode +
// FoldClose} is the timed region) and is reattached untimed, so every
// departure folds against a full-size live plane on the same n=2000 BA
// substrate as BenchmarkAllPairsRebuild. Compare ns/op against
// BenchmarkAllPairsRebuild/serial — the fold only re-runs BFS for rows
// whose shortest paths crossed the departed node, and the acceptance bar
// is ≥5× per departure.
func BenchmarkCloseFold(b *testing.B) {
	params := core.Params{OnChainCost: 1, OppCostRate: 0.05, FAvg: 0.5, FeePerHop: 0.5, OwnRate: 1}
	seed := graph.BarabasiAlbert(2000, 2, 1, rand.New(rand.NewSource(1)))
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			gs, err := core.NewGrowSession(seed.Clone(), params, 2000, 1)
			if err != nil {
				b.Fatal(err)
			}
			gs.SetParallelism(workers)
			order := rand.New(rand.NewSource(2)).Perm(2000)
			repaired := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v := graph.NodeID(order[i%len(order)])
				var s core.Strategy
				for _, w := range gs.Graph().Neighbors(v) {
					for range gs.Graph().EdgesBetween(v, w) {
						s = append(s, core.Action{Peer: w, Lock: 1})
					}
				}
				b.StartTimer()
				if _, err := gs.CloseNode(v); err != nil {
					b.Fatal(err)
				}
				repaired += gs.FoldClose()
				b.StopTimer()
				if err := gs.Reattach(v, s); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(repaired)/float64(b.N), "rows/fold")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkExtendBatch measures the batched commit fold against k
// sequential commits at batch=256 over an n=512 seed — the market
// cohort shape. The batched variant must clear ≥3× the sequential
// fold's throughput.
func BenchmarkExtendBatch(b *testing.B) {
	const batch = 256
	rng := rand.New(rand.NewSource(1))
	seed := graph.BarabasiAlbert(512, 2, 1, rng)
	strategies := make([]core.Strategy, batch)
	for j := range strategies {
		strategies[j] = core.Strategy{
			{Peer: graph.NodeID(rng.Intn(512)), Lock: 1},
			{Peer: graph.NodeID(rng.Intn(512)), Lock: 1},
			{Peer: graph.NodeID(rng.Intn(512)), Lock: 1},
		}
	}
	params := core.Params{OnChainCost: 1, OppCostRate: 0.05, FAvg: 0.5, FeePerHop: 0.5, OwnRate: 1}
	newSession := func(b *testing.B) *core.GrowSession {
		gs, err := core.NewGrowSession(seed.Clone(), params, 512+batch, 1)
		if err != nil {
			b.Fatal(err)
		}
		return gs
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gs := newSession(b)
			b.StartTimer()
			for _, s := range strategies {
				if _, err := gs.Commit(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gs := newSession(b)
			b.StartTimer()
			if _, err := gs.CommitBatch(strategies); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrafficReplay measures the production-rate traffic engine on
// its acceptance workload: n=2000 BA substrate, 8 shard windows replayed
// on a single worker (so the derived metrics are per-core), sizes well
// under the balance so nearly every payment routes. The acceptance bound
// is ≥ 1M routed payments per minute single-core; the derived metrics
// report µs/payment and payments/min. The full 1M-event row is skipped
// in -short mode so the CI bench smoke stays fast.
func BenchmarkTrafficReplay(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 2, 10, rand.New(rand.NewSource(1)))
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(g.NumNodes()))
	if err != nil {
		b.Fatal(err)
	}
	for _, events := range []int{100000, 1000000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			if testing.Short() && events > 100000 {
				b.Skip("full-scale row in -short mode")
			}
			b.ReportAllocs()
			b.ResetTimer()
			var routed int
			for i := 0; i < b.N; i++ {
				res, err := traffic2.Replay(g, traffic2.Config{
					Demand:         demand,
					Sizes:          fee.UniformSize{T: 2},
					Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
					Events:         events,
					Seed:           1,
					Shards:         8,
					Parallelism:    1,
					RebalanceEvery: 500,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Successes == 0 {
					b.Fatal("replay routed nothing")
				}
				routed = res.Successes
			}
			perPayment := float64(b.Elapsed().Microseconds()) / float64(b.N) / float64(events)
			b.ReportMetric(perPayment, "µs/payment")
			b.ReportMetric(float64(routed)*60e6/(float64(b.Elapsed().Microseconds())/float64(b.N)), "routed/min")
		})
	}
}

// BenchmarkTrafficReplay10k measures the engine at the n=10000 scale the
// shared sparse sampler plane unlocks: the dense demand matrix would
// cost ~800 MB per shard here, the sparse planes O(n) — plus, for the
// distance family, one shared int32 row per distinct sender, built once
// per replay. Every row replays on a single worker so the derived
// metrics are per-core; B/event is total allocation per replayed event,
// the number that must stay flat for the 2 GB acceptance envelope. The
// uniform and degree rows draw recipients globally, so routing explores
// Θ(n) per payment; the distance row (decay 0.1) is the local-demand
// production shape — recipients one or two hops out — and is the
// acceptance workload: ≥ 1M routed payments per minute single-core. Its
// full 1M-event form is skipped in -short mode so the CI bench smoke
// stays fast.
func BenchmarkTrafficReplay10k(b *testing.B) {
	g := graph.BarabasiAlbert(10000, 2, 10, rand.New(rand.NewSource(1)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	cases := []struct {
		name   string
		dist   txdist.Distribution
		events int
	}{
		{"uniform/events=50000", txdist.Uniform{}, 50000},
		{"degree/events=50000", txdist.DegreeProportional{Alpha: 1}, 50000},
		{"distance/events=50000", txdist.DistanceDecay{Decay: 0.1}, 50000},
		{"distance/events=1000000", txdist.DistanceDecay{Decay: 0.1}, 1000000},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			if testing.Short() && c.events > 50000 {
				b.Skip("full-scale row in -short mode")
			}
			sampler, err := traffic.NewSampler(g, c.dist, rates)
			if err != nil {
				b.Fatal(err)
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			var routed int
			for i := 0; i < b.N; i++ {
				res, err := traffic2.Replay(g, traffic2.Config{
					Sampler:        sampler,
					Sizes:          fee.UniformSize{T: 2},
					Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
					Events:         c.events,
					Seed:           1,
					Shards:         8,
					Parallelism:    1,
					RebalanceEvery: 500,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Successes == 0 {
					b.Fatal("replay routed nothing")
				}
				routed = res.Successes
			}
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N)/float64(c.events), "B/event")
			perPayment := float64(b.Elapsed().Microseconds()) / float64(b.N) / float64(c.events)
			b.ReportMetric(perPayment, "µs/payment")
			b.ReportMetric(float64(routed)*60e6/(float64(b.Elapsed().Microseconds())/float64(b.N)), "routed/min")
		})
	}
}

// BenchmarkServeQueries measures the serving session's price-join
// throughput on an n=2000 BA substrate: once idle (the epoch never
// moves) and once under deterministic commit load (every 16th query a
// synthetic arrival commits and the epoch advances, so queries keep
// re-reading a substrate that changes underneath them — the serving
// deployment's steady state). Both variants quote against a fixed
// 64-peer candidate list, the bounded-query shape a gateway sends.
func BenchmarkServeQueries(b *testing.B) {
	newLive := func(b *testing.B) *LiveSession {
		ls, err := NewLiveSession(BarabasiAlbert(2000, 2, 10, 1), LiveConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return ls
	}
	candidates := make([]graph.NodeID, 64)
	for i := range candidates {
		candidates[i] = graph.NodeID(i * 31 % 2000)
	}
	query := serve.PriceQuery{Budget: 6, Lock: 1, Candidates: candidates}
	b.Run("idle", func(b *testing.B) {
		s := newLive(b).Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.PriceJoin(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("commit-load", func(b *testing.B) {
		s := newLive(b).Session()
		seed := int64(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%16 == 15 {
				if _, _, err := s.Tick(1, seed); err != nil {
					b.Fatal(err)
				}
				seed++
			}
			if _, err := s.PriceJoin(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		if s.RebuildCount() != 0 {
			b.Fatalf("commit load paid %d plane rebuilds", s.RebuildCount())
		}
	})
}

// BenchmarkCheckpointRestore measures the substrate checkpoint codec at
// n=2000: streaming a session out and restoring it. Restore must never
// pay an all-pairs rebuild — that is the entire point of shipping the
// planes in the checkpoint — so the benchmark asserts RebuildCount
// stays 0. Throughput is reported against the checkpoint's wire size.
func BenchmarkCheckpointRestore(b *testing.B) {
	ls, err := NewLiveSession(BarabasiAlbert(2000, 2, 10, 1), LiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ls.SaveCheckpoint(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := ls.SaveCheckpoint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			restored, err := LoadCheckpoint(bytes.NewReader(data), LiveConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if restored.Session().RebuildCount() != 0 {
				b.Fatal("restore paid an all-pairs rebuild")
			}
		}
	})
}

// BenchmarkWALAppend measures the write-ahead log's append path under
// each fsync policy: per-record (the no-acknowledged-loss setting every
// durable mutation pays), batched every 16, and timer-driven. The
// record is a tick — the dominant kind under sustained serving load.
func BenchmarkWALAppend(b *testing.B) {
	policies := []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"sync-every-record", wal.SyncPolicy{Every: 1}},
		// No trailing -<int> in sub-bench names: the benchjson parser
		// would strip it as a GOMAXPROCS suffix and the gate's names
		// would diverge between machines that print the suffix and
		// machines (GOMAXPROCS=1) that omit it.
		{"sync-batch16", wal.SyncPolicy{Every: 16}},
		{"sync-timer-10ms", wal.SyncPolicy{Interval: 10 * time.Millisecond}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			w, err := wal.Create(wal.OS{}, b.TempDir(), pc.policy)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close() //nolint:errcheck
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := wal.Record{Epoch: uint64(i) + 1, Kind: wal.KindTick, Arrivals: 2, Seed: int64(i)}
				if err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkCrashRecovery measures a full crash recovery at n=2000: load
// the newest checkpoint, replay the WAL suffix, land on the exact
// pre-crash epoch. The durable state is built once on an in-memory
// filesystem and cloned per iteration, so every recovery starts from
// identical pristine bytes. Recovery must never pay an all-pairs
// rebuild.
func BenchmarkCrashRecovery(b *testing.B) {
	const walRecords = 8
	params := DefaultParams().toCore()
	scfg := serve.Config{Params: params, RemoteBalance: 1}
	mem := wal.NewMemFS()
	d, err := serve.Open(serve.DurableConfig{Dir: "/state", FS: mem, Sync: wal.SyncPolicy{Every: 1}},
		scfg, func() (*serve.Session, error) {
			gs, err := core.NewGrowSession(BarabasiAlbert(2000, 2, 10, 1).graphView().Clone(), params, 0, 1)
			if err != nil {
				return nil, err
			}
			return serve.NewSession(gs, scfg)
		})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < walRecords; i++ {
		if _, _, err := d.S.Tick(1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	wantEpoch := d.S.Epoch()
	// No Close: the state on "disk" is exactly what a crash leaves —
	// the seed checkpoint plus a fsynced WAL suffix.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := serve.Open(serve.DurableConfig{Dir: "/state", FS: mem.Clone(), Sync: wal.SyncPolicy{Every: 1}}, scfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rec.S.Epoch() != wantEpoch || rec.RecoveredWALRecords != walRecords {
			b.Fatalf("recovered epoch %d (%d records), want %d (%d)",
				rec.S.Epoch(), rec.RecoveredWALRecords, wantEpoch, walRecords)
		}
		if rec.S.RebuildCount() != 0 {
			b.Fatal("recovery paid an all-pairs rebuild")
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
