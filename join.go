package lcg

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// Params are the economic parameters of the joining user's utility
// function (§II-C).
type Params struct {
	// OnChainCost is C, the expected on-chain cost per channel per party.
	OnChainCost float64
	// OppCostRate is r: opportunity cost per locked coin per time unit.
	OppCostRate float64
	// FAvg is favg: the routing fee earned per forwarded transaction.
	FAvg float64
	// FeePerHop is f^T_avg: the fee paid per hop for own transactions.
	FeePerHop float64
	// OwnRate is N_u: the joining user's transaction rate.
	OwnRate float64
	// CapacityFactor optionally gates a channel's forwarding revenue by
	// its lock (e.g. the transaction-size CDF); nil reproduces the
	// paper's base model.
	CapacityFactor func(lock float64) float64
	// ChannelCostFn optionally replaces the linear per-channel cost
	// C + r·lock with a richer model such as GuasoniCost; nil keeps the
	// paper's base model.
	ChannelCostFn func(lock float64) float64
}

// GuasoniCost returns a ChannelCostFn in the spirit of Guasoni et al.
// [17]: C + lock·(1 − e^{−rho·lifetime}), the present-value cost of
// locking capital at interest rate rho over the channel's expected
// lifetime.
func GuasoniCost(onChain, rho, lifetime float64) func(lock float64) float64 {
	return core.GuasoniCost(onChain, rho, lifetime)
}

// DefaultParams returns a reasonable starting parameter set: unit on-chain
// cost, 5% opportunity rate, and symmetric fee expectations.
func DefaultParams() Params {
	return Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.5,
		FeePerHop:   0.5,
		OwnRate:     1,
	}
}

func (p Params) toCore() core.Params {
	return core.Params{
		OnChainCost:    p.OnChainCost,
		OppCostRate:    p.OppCostRate,
		FAvg:           p.FAvg,
		FeePerHop:      p.FeePerHop,
		OwnRate:        p.OwnRate,
		CapacityFactor: p.CapacityFactor,
		ChannelCostFn:  p.ChannelCostFn,
	}
}

// Action opens one channel to Peer with Lock coins on the joining user's
// side.
type Action struct {
	Peer int
	Lock float64
}

// Strategy is the set of channels a joining user opens.
type Strategy []Action

func (s Strategy) toCore() core.Strategy {
	out := make(core.Strategy, len(s))
	for i, a := range s {
		out[i] = core.Action{Peer: graph.NodeID(a.Peer), Lock: a.Lock}
	}
	return out
}

func fromCore(s core.Strategy) Strategy {
	out := make(Strategy, len(s))
	for i, a := range s {
		out[i] = Action{Peer: int(a.Peer), Lock: a.Lock}
	}
	return out
}

// Plan is the outcome of an attachment optimisation.
type Plan struct {
	// Strategy is the recommended channel set.
	Strategy Strategy
	// Objective is the optimised objective value (U' for Greedy and
	// DiscreteSearch, U^b for ContinuousSearch).
	Objective float64
	// Utility is the full utility U of the strategy.
	Utility float64
	// Evaluations counts objective evaluations spent.
	Evaluations int
}

// JoinOption customises a JoinPlanner.
type JoinOption func(*joinConfig)

type joinConfig struct {
	params      Params
	zipfS       float64
	uniformDist bool
	totalRate   float64
	rates       []float64
	probs       [][]float64
	joinTargets map[int]float64
	paymentSize float64
	perUser     map[int]float64
}

// WithParams sets the economic parameters (default DefaultParams).
func WithParams(p Params) JoinOption {
	return func(c *joinConfig) { c.params = p }
}

// WithZipf sets the modified-Zipf scale parameter s of the transaction
// distribution (§II-B, default 1).
func WithZipf(s float64) JoinOption {
	return func(c *joinConfig) { c.zipfS = s; c.uniformDist = false }
}

// WithUniformTransactions switches to the uniform transaction model used
// by the baseline works [18]–[20].
func WithUniformTransactions() JoinOption {
	return func(c *joinConfig) { c.uniformDist = true }
}

// WithTotalRate sets the aggregate transaction rate N of the existing
// users, split evenly (default: one transaction per user per time unit).
func WithTotalRate(n float64) JoinOption {
	return func(c *joinConfig) { c.totalRate = n; c.rates = nil; c.probs = nil }
}

// WithDemand overrides the existing users' demand entirely: rates[s] is
// user s's transaction rate and probs[s][r] the probability a transaction
// of s targets r. Both must cover every user of the network.
func WithDemand(rates []float64, probs [][]float64) JoinOption {
	return func(c *joinConfig) { c.rates = rates; c.probs = probs }
}

// WithJoinTargets fixes the joining user's recipient distribution
// explicitly (weights are normalised); by default the joining user
// follows the same degree-ranked distribution as everyone else.
func WithJoinTargets(weights map[int]float64) JoinOption {
	return func(c *joinConfig) { c.joinTargets = weights }
}

// WithPaymentSize restricts the analysis to the reduced subgraph G' of
// §II-B: only channel directions whose balance can forward a payment of
// the given size are considered when computing distances and transit.
func WithPaymentSize(size float64) JoinOption {
	return func(c *joinConfig) { c.paymentSize = size }
}

// WithPerUserZipf assigns user-specific Zipf scale parameters (the
// paper's s_u, §II-B): users listed in scales use their own parameter,
// everyone else (and the joining user) uses the planner's default.
func WithPerUserZipf(scales map[int]float64) JoinOption {
	return func(c *joinConfig) {
		c.perUser = scales
		c.uniformDist = false
	}
}

// JoinPlanner prices and optimises the attachment of a new user to an
// existing network (§II-C, §III). Build one per (network, parameters)
// pair; it precomputes the shortest-path structure once.
type JoinPlanner struct {
	ev *core.JoinEvaluator
}

// NewJoinPlanner creates a planner for a user joining n.
func NewJoinPlanner(n *Network, opts ...JoinOption) (*JoinPlanner, error) {
	cfg := joinConfig{params: DefaultParams(), zipfS: 1, totalRate: float64(n.NumUsers())}
	for _, opt := range opts {
		opt(&cfg)
	}
	var dist txdist.Distribution = txdist.ModifiedZipf{S: cfg.zipfS}
	if cfg.uniformDist {
		dist = txdist.Uniform{}
	}
	if len(cfg.perUser) > 0 {
		overrides := make(map[graph.NodeID]txdist.Distribution, len(cfg.perUser))
		for user, s := range cfg.perUser {
			overrides[graph.NodeID(user)] = txdist.ModifiedZipf{S: s}
		}
		dist = txdist.PerSender{Default: dist, Overrides: overrides}
	}
	g := n.graphView()
	if cfg.paymentSize > 0 {
		g = g.Reduce(cfg.paymentSize)
	}
	var (
		demand *traffic.Demand
		err    error
	)
	if cfg.rates != nil {
		if len(cfg.probs) != len(cfg.rates) {
			return nil, fmt.Errorf("%w: demand shape mismatch", ErrBadInput)
		}
		demand = &traffic.Demand{P: cfg.probs, Rates: cfg.rates}
		if len(demand.Rates) != g.NumNodes() {
			return nil, fmt.Errorf("%w: demand covers %d users, network has %d",
				ErrBadInput, len(demand.Rates), g.NumNodes())
		}
	} else {
		demand, err = traffic.NewUniformDemand(g, dist, cfg.totalRate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	joinDist := dist
	if cfg.joinTargets != nil {
		joinDist = weightedTargets{weights: cfg.joinTargets}
	}
	ev, err := core.NewJoinEvaluator(g, joinDist, demand, cfg.params.toCore())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &JoinPlanner{ev: ev}, nil
}

// weightedTargets adapts an explicit recipient weighting to the
// distribution interface.
type weightedTargets struct {
	weights map[int]float64
}

func (w weightedTargets) Name() string { return fmt.Sprintf("weighted(%d targets)", len(w.weights)) }

func (w weightedTargets) Probs(g *graph.Graph, _ graph.NodeID) []float64 {
	probs := make([]float64, g.NumNodes())
	var total float64
	for v, weight := range w.weights {
		if g.HasNode(graph.NodeID(v)) && weight > 0 {
			probs[v] = weight
			total += weight
		}
	}
	if total > 0 {
		for i := range probs {
			probs[i] /= total
		}
	}
	return probs
}

// Revenue returns the expected routing revenue E^rev of the strategy
// (eq. 3), computed exactly from the through-node transit rate.
func (p *JoinPlanner) Revenue(s Strategy) float64 {
	return p.ev.Revenue(s.toCore(), core.RevenueExact)
}

// Fees returns the expected fees E^fees the joining user pays for its own
// transactions under the strategy (+Inf when a recipient is unreachable).
func (p *JoinPlanner) Fees(s Strategy) float64 {
	return p.ev.Fees(s.toCore())
}

// Cost returns the channel costs Σ(C + r·lock) of the strategy.
func (p *JoinPlanner) Cost(s Strategy) float64 {
	return p.ev.Cost(s.toCore())
}

// Utility returns the full utility U = E^rev − E^fees − cost (−Inf when
// the strategy leaves the user disconnected).
func (p *JoinPlanner) Utility(s Strategy) float64 {
	return p.ev.Utility(s.toCore(), core.RevenueExact)
}

// Greedy runs Algorithm 1: fixed lock per channel, (1−1/e)-approximate in
// O(M·n) evaluations (Theorem 4).
func (p *JoinPlanner) Greedy(budget, lock float64) (Plan, error) {
	res, err := core.Greedy(p.ev, core.GreedyConfig{Budget: budget, Lock: lock})
	if err != nil {
		return Plan{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return planFrom(res), nil
}

// DiscreteSearch runs Algorithm 2: locks are multiples of unit,
// exhaustive over budget divisions, (1−1/e)-approximate per division
// (Theorem 5).
func (p *JoinPlanner) DiscreteSearch(budget, unit float64) (Plan, error) {
	res, err := core.DiscreteSearch(p.ev, core.DiscreteConfig{Budget: budget, Unit: unit})
	if err != nil {
		return Plan{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return planFrom(res), nil
}

// ContinuousSearch runs the §III-D local search on the benefit function
// with continuous lock amounts.
func (p *JoinPlanner) ContinuousSearch(budget float64) (Plan, error) {
	res, err := core.ContinuousSearch(p.ev, core.ContinuousConfig{Budget: budget})
	if err != nil {
		return Plan{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return planFrom(res), nil
}

func planFrom(res core.Result) Plan {
	return Plan{
		Strategy:    fromCore(res.Strategy),
		Objective:   res.Objective,
		Utility:     res.Utility,
		Evaluations: res.Evaluations,
	}
}

// Session is an incremental pricing session over a planner: Push opens a
// candidate channel, Pop retracts the latest one, and every metric reads
// off the live state in O(n) per change instead of re-pricing the whole
// strategy. Use it to explore candidate attachments interactively ("what
// does one more channel to v buy me?") or to build custom optimisers on
// the same delta-evaluation engine the built-in algorithms use.
//
// A Session is not safe for concurrent use; open one per goroutine.
type Session struct {
	st *core.EvalState
}

// NewSession opens an incremental session on the planner's evaluator.
func (p *JoinPlanner) NewSession() *Session {
	return &Session{st: p.ev.NewState()}
}

// Push opens a candidate channel to a.Peer locking a.Lock coins.
func (s *Session) Push(a Action) {
	s.st.Push(core.Action{Peer: graph.NodeID(a.Peer), Lock: a.Lock})
}

// Pop retracts the most recently pushed channel, restoring the previous
// pricing state exactly.
func (s *Session) Pop() { s.st.Pop() }

// Reset retracts every pushed channel.
func (s *Session) Reset() { s.st.Reset() }

// Depth reports the number of currently pushed channels.
func (s *Session) Depth() int { return s.st.Depth() }

// Strategy returns the pushed channels as a Strategy, oldest first.
func (s *Session) Strategy() Strategy { return fromCore(s.st.Strategy()) }

// Utility returns the full utility U = E^rev − E^fees − cost of the
// pushed strategy (−Inf when it leaves the user disconnected).
func (s *Session) Utility() float64 { return s.st.Utility(core.RevenueExact) }

// Revenue returns the expected routing revenue E^rev (exact model).
func (s *Session) Revenue() float64 { return s.st.Revenue(core.RevenueExact) }

// Fees returns the expected fees E^fees of the pushed strategy.
func (s *Session) Fees() float64 { return s.st.Fees() }

// Cost returns the channel costs Σ(C + r·lock) of the pushed strategy.
func (s *Session) Cost() float64 { return s.st.Cost() }

// Disconnected reports whether the pushed strategy leaves the joining
// user disconnected from a recipient it transacts with.
func (s *Session) Disconnected() bool { return s.st.Disconnected() }
