package lcg_test

import (
	"fmt"

	"github.com/lightning-creation-games/lcg"
)

// Build a small network by hand and price a candidate join strategy.
func ExampleNewJoinPlanner() {
	// The Figure 2 network: a path A-B-C-D.
	network := lcg.PathNetwork(4, 100)

	planner, err := lcg.NewJoinPlanner(network,
		lcg.WithDemand(
			[]float64{9, 0, 0, 0}, // A sends 9 tx/month…
			[][]float64{
				{0, 0, 0, 1}, // …all to D
				{0, 0, 0, 0},
				{0, 0, 0, 0},
				{0, 0, 0, 0},
			}),
		lcg.WithJoinTargets(map[int]float64{1: 1}), // E pays only B
		lcg.WithParams(lcg.Params{
			OnChainCost: 20,
			FAvg:        1,
			FeePerHop:   1,
			OwnRate:     1,
		}),
	)
	if err != nil {
		panic(err)
	}
	// The paper's recommended strategy: channels to A and D.
	s := lcg.Strategy{{Peer: 0, Lock: 10}, {Peer: 3, Lock: 9}}
	fmt.Printf("revenue %.0f fees %.0f\n", planner.Revenue(s), planner.Fees(s))
	// Output:
	// revenue 9 fees 2
}

// Check the closed-form star stability conditions of Theorem 8 against
// the exhaustive deviation search.
func ExampleStarStable() {
	params := lcg.GameParams{
		ZipfS:      2.5,
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   1,
	}
	closed, exhaustive, err := lcg.StarStable(4, params)
	if err != nil {
		panic(err)
	}
	fmt.Println("closed-form NE:", closed)
	fmt.Println("exhaustive NE:", exhaustive)
	fmt.Println("Theorem 9 regime:", lcg.Theorem9Regime(4, params))
	// Output:
	// closed-form NE: true
	// exhaustive NE: true
	// Theorem 9 regime: true
}

// Find where the circle topology stops being stable (Theorem 11).
func ExampleCircleCrossover() {
	params := lcg.GameParams{
		ZipfS:      0.5,
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   0.5,
	}
	n0, found, err := lcg.CircleCrossover(params, 64)
	if err != nil {
		panic(err)
	}
	fmt.Println(found, n0)
	// Output:
	// true 7
}

// Run best-response dynamics and observe the star emerging.
func ExampleBestResponseDynamics() {
	params := lcg.GameParams{
		ZipfS:      2,
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   1,
	}
	report, err := lcg.BestResponseDynamics(lcg.Circle(6, 1), params, 30)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Converged, report.FinalClass)
	// Output:
	// true star
}

// Price candidate channels incrementally: push a channel, read the
// running utility, pop to retract — each step costs O(n) on the live
// evaluation state instead of re-pricing the whole strategy.
func ExampleJoinPlanner_NewSession() {
	network := lcg.Star(6, 10)
	planner, err := lcg.NewJoinPlanner(network)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	session := planner.NewSession()
	session.Push(lcg.Action{Peer: 0, Lock: 2}) // connect to the hub
	base := session.Utility()

	session.Push(lcg.Action{Peer: 3, Lock: 1}) // probe a second channel
	delta := session.Utility() - base
	session.Pop() // retract the probe; the state is restored exactly

	fmt.Printf("channels=%d second channel worth it: %v\n",
		session.Depth(), delta > 0)
	// Output: channels=1 second channel worth it: false
}
