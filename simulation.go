package lcg

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/simulate"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// SimConfig parametrises a workload replay over a network.
type SimConfig struct {
	// Events is the number of transactions to replay (required).
	Events int
	// ZipfS is the transaction distribution's scale parameter.
	ZipfS float64
	// TotalRate is the aggregate sender rate N; 0 means one transaction
	// per user per time unit.
	TotalRate float64
	// TxSize is the fixed transaction size; 0 sends tiny probes.
	TxSize float64
	// FeePerHop is the fee an intermediary charges per forwarded
	// transaction.
	FeePerHop float64
	// OnChainFee is the miner fee per on-chain transaction.
	OnChainFee float64
	// Seed makes the run deterministic.
	Seed int64
	// SteadyState, when true, rebalances channels periodically so
	// measured rates match the analytic stationary model.
	SteadyState bool
}

// SimReport aggregates a simulation run.
type SimReport struct {
	// Events, Successes, Failures count replayed transactions.
	Events, Successes, Failures int
	// SuccessRate is Successes/Events.
	SuccessRate float64
	// Volume is the total value delivered.
	Volume float64
	// FeesPaid is the total routing fees paid by senders.
	FeesPaid float64
	// MeasuredTransit[v] is user v's observed forwarding rate.
	MeasuredTransit []float64
	// PredictedTransit[v] is the analytic rate from §II-B's weighted
	// betweenness.
	PredictedTransit []float64
}

// Simulate replays a Poisson workload over a live copy of the network
// (balances, multi-hop fees, atomic failures) and reports measured
// against analytic transit rates.
func Simulate(n *Network, cfg SimConfig) (SimReport, error) {
	if cfg.Events <= 0 {
		return SimReport{}, fmt.Errorf("%w: events %d", ErrBadInput, cfg.Events)
	}
	total := cfg.TotalRate
	if total == 0 {
		total = float64(n.NumUsers())
	}
	g := n.graphView()
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: cfg.ZipfS}, total)
	if err != nil {
		return SimReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	ledger, err := chain.NewLedger(cfg.OnChainFee)
	if err != nil {
		return SimReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	network, err := payment.FromGraph(ledger, fee.Constant{F: cfg.FeePerHop}, g)
	if err != nil {
		return SimReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	var sizes traffic.SizeSampler
	if cfg.TxSize > 0 {
		sizes = fee.FixedSize{T: cfg.TxSize}
	}
	rebalance := 0
	if cfg.SteadyState {
		rebalance = 500
	}
	res, err := simulate.Run(network, simulate.Config{
		Demand:         demand,
		Sizes:          sizes,
		Events:         cfg.Events,
		Seed:           cfg.Seed,
		RebalanceEvery: rebalance,
	})
	if err != nil {
		return SimReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	report := SimReport{
		Events:           res.Events,
		Successes:        res.Successes,
		Failures:         res.Failures,
		SuccessRate:      res.SuccessRate(),
		Volume:           res.Volume,
		FeesPaid:         res.FeesPaid,
		MeasuredTransit:  make([]float64, n.NumUsers()),
		PredictedTransit: simulate.PredictedTransit(g, demand),
	}
	for v := 0; v < n.NumUsers(); v++ {
		report.MeasuredTransit[v] = res.TransitRate(graph.NodeID(v))
	}
	return report, nil
}
