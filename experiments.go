package lcg

import (
	"fmt"
	"io"

	"github.com/lightning-creation-games/lcg/internal/experiments"
)

// ExperimentIDs lists the reproducible paper artifacts: F1-F2 (figures),
// E1-E12 (theorem and algorithm experiments) and E13-E18 (extension
// studies). See DESIGN.md for the index and EXPERIMENTS.md for
// paper-vs-measured notes.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentInfo describes one experiment for listings.
type ExperimentInfo struct {
	// ID is the stable identifier (F1, E4, ...).
	ID string
	// Title is the one-line description.
	Title string
}

// Experiments returns every experiment in display order.
func Experiments() []ExperimentInfo {
	specs := experiments.All()
	infos := make([]ExperimentInfo, len(specs))
	for i, s := range specs {
		infos[i] = ExperimentInfo{ID: s.ID, Title: s.Title}
	}
	return infos
}

// ExperimentOptions configure how experiment tables are regenerated.
type ExperimentOptions struct {
	// Seed drives the corpus; every experiment is a deterministic
	// function of it.
	Seed int64

	// Parallelism bounds the worker goroutines used across experiments
	// and inside each experiment's trial loops. 1 runs everything
	// serially; values ≤ 0 use all cores (runtime.GOMAXPROCS). The
	// rendered tables are byte-identical at every setting — only
	// wall-clock measurement columns (E5, E12) vary, as they do between
	// any two runs.
	Parallelism int

	// CSV selects CSV output instead of aligned text.
	CSV bool
}

// RunExperiment regenerates one experiment table deterministically from
// the seed and renders it to w as aligned text, single-threaded. Use
// RunExperiments to control parallelism and output format.
func RunExperiment(id string, seed int64, w io.Writer) error {
	return RunExperiments([]string{id}, ExperimentOptions{Seed: seed, Parallelism: 1}, w)
}

// RunExperimentCSV regenerates one experiment table as CSV,
// single-threaded.
func RunExperimentCSV(id string, seed int64, w io.Writer) error {
	return RunExperiments([]string{id}, ExperimentOptions{Seed: seed, Parallelism: 1, CSV: true}, w)
}

// RunExperiments regenerates the given experiment tables (all of them
// when ids is empty) and renders them to w in request order, separated by
// blank lines. The experiments and their inner trial loops execute on a
// bounded worker pool of opts.Parallelism goroutines; each table is
// rendered as soon as it and its predecessors finish, so output streams
// progressively while remaining byte-identical at any parallelism.
func RunExperiments(ids []string, opts ExperimentOptions, w io.Writer) error {
	runner := experiments.NewRunner(experiments.Options{
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
	})
	var renderErr error
	err := runner.RunEach(ids, func(i int, tbl *experiments.Table) error {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				renderErr = err
				return err
			}
		}
		var err error
		if opts.CSV {
			err = tbl.CSV(w)
		} else {
			err = tbl.Render(w)
		}
		renderErr = err
		return err
	})
	if err != nil {
		if renderErr != nil {
			return renderErr // I/O failure, not a bad experiment request
		}
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}
