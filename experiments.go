package lcg

import (
	"fmt"
	"io"

	"github.com/lightning-creation-games/lcg/internal/experiments"
)

// ExperimentIDs lists the reproducible paper artifacts: F1-F2 (figures)
// and E1-E12 (theorem and algorithm experiments). See DESIGN.md for the
// index and EXPERIMENTS.md for paper-vs-measured notes.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one experiment table deterministically from
// the seed and renders it to w as aligned text.
func RunExperiment(id string, seed int64, w io.Writer) error {
	tbl, err := experiments.Run(id, seed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return tbl.Render(w)
}

// RunExperimentCSV regenerates one experiment table as CSV.
func RunExperimentCSV(id string, seed int64, w io.Writer) error {
	tbl, err := experiments.Run(id, seed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return tbl.CSV(w)
}
