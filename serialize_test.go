package lcg

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	original := BarabasiAlbert(15, 2, 7, 13)
	var buf bytes.Buffer
	if err := original.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	restored, err := ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatalf("ReadNetworkJSON: %v", err)
	}
	if restored.NumUsers() != original.NumUsers() || restored.NumChannels() != original.NumChannels() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			restored.NumUsers(), restored.NumChannels(), original.NumUsers(), original.NumChannels())
	}
	// The restored network must be byte-identical on re-marshal (stable
	// representation), and must price joins identically.
	a, err := json.Marshal(original)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	b, err := json.Marshal(restored)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-marshal not stable")
	}
	p1, err := NewJoinPlanner(original, WithZipf(1))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	p2, err := NewJoinPlanner(restored, WithZipf(1))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	s := Strategy{{Peer: 0, Lock: 1}, {Peer: 5, Lock: 2}}
	if p1.Utility(s) != p2.Utility(s) {
		t.Fatalf("round trip changed pricing: %v vs %v", p1.Utility(s), p2.Utility(s))
	}
}

func TestNetworkJSONRoundTripProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%16) + 3
		m := int(mRaw%2) + 1
		original := BarabasiAlbert(n, m, 5, seed)
		data, err := json.Marshal(original)
		if err != nil {
			return false
		}
		restored := NewNetwork()
		if err := restored.UnmarshalJSON(data); err != nil {
			return false
		}
		if restored.NumUsers() != original.NumUsers() || restored.NumChannels() != original.NumChannels() {
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if original.HasChannel(a, b) != restored.HasChannel(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkJSONContent(t *testing.T) {
	n := NewNetwork()
	n.AddUsers(2)
	if err := n.AddChannel(0, 1, 10, 7); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"users":2,"channels":[{"a":0,"b":1,"balanceA":10,"balanceB":7}]}`
	if string(data) != want {
		t.Fatalf("JSON = %s, want %s", data, want)
	}
}

func TestNetworkJSONErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.UnmarshalJSON([]byte(`{"users":-1}`)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative users error = %v", err)
	}
	if err := n.UnmarshalJSON([]byte(`not json`)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("garbage error = %v", err)
	}
	if err := n.UnmarshalJSON([]byte(`{"users":2,"channels":[{"a":0,"b":9}]}`)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad endpoint error = %v", err)
	}
	if _, err := ReadNetworkJSON(strings.NewReader(`{"users":1,"channels":[{"a":0,"b":0}]}`)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("self channel error = %v", err)
	}
}

// TestNetworkJSONRejectsNonFinite pins that no encoding of NaN or ±Inf
// balances can poison the routing plane through UnmarshalJSON: JSON
// literals are rejected by the decoder, out-of-range numbers (1e999
// parses to ±Inf) by the graph's non-finite capacity guard — either
// way a hard ErrBadInput, never a silently poisoned network.
func TestNetworkJSONRejectsNonFinite(t *testing.T) {
	for _, payload := range []string{
		`{"users":2,"channels":[{"a":0,"b":1,"balanceA":NaN,"balanceB":1}]}`,
		`{"users":2,"channels":[{"a":0,"b":1,"balanceA":Infinity,"balanceB":1}]}`,
		`{"users":2,"channels":[{"a":0,"b":1,"balanceA":1e999,"balanceB":1}]}`,
		`{"users":2,"channels":[{"a":0,"b":1,"balanceA":1,"balanceB":-1e999}]}`,
	} {
		n := NewNetwork()
		if err := n.UnmarshalJSON([]byte(payload)); !errors.Is(err, ErrBadInput) {
			t.Fatalf("UnmarshalJSON(%s) error = %v, want ErrBadInput", payload, err)
		}
	}
}

func TestUnmarshalFailureLeavesNetworkIntact(t *testing.T) {
	n := Star(3, 1)
	if err := n.UnmarshalJSON([]byte(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if n.NumChannels() != 3 {
		t.Fatal("failed unmarshal corrupted the network")
	}
}
