package lcg

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/market"
)

// MarketConfig parametrises a batch channel-market run (see
// internal/market): a tick-based auction where each tick collects a
// batch of join bids, prices them concurrently against a shared frozen
// snapshot with Algorithm 1, and resolves conflicts by utility-ranked
// commits with bounded re-pricing rounds.
type MarketConfig struct {
	// Topology seeds the market: "empty", "star", "er" or "ba" (default).
	Topology string
	// SeedSize is the seed topology's node count (default 12; ignored
	// for "empty").
	SeedSize int
	// SeedParam is the ER edge probability or the BA attachment count
	// (0 picks the topology's default).
	SeedParam float64
	// Ticks is the number of auction ticks to run; Batch the number of
	// join bids collected per tick (default 64).
	Ticks, Batch int
	// MaxRounds bounds the per-tick price → rank → commit/defer rounds
	// (default 3). 1 is the one-shot auction: every conflict commits
	// against a stale quote.
	MaxRounds int
	// Candidates bounds the peers each bid prices; 0 (or negative)
	// offers every node.
	Candidates int
	// Preferential samples candidates proportionally to degree+1
	// instead of uniformly.
	Preferential bool
	// BudgetMin/Max, LockMin/Max and RateMin/Max draw each bid's
	// budget, per-channel lock and transaction rate uniformly; Min ==
	// Max pins the value. Zero maxima fall back to the defaults
	// (budget 3–8, lock 1, rate 0.5–1.5).
	BudgetMin, BudgetMax float64
	LockMin, LockMax     float64
	RateMin, RateMax     float64
	// Reserve enables reserve utilities drawn from
	// [ReserveMin, ReserveMax]: a bid whose priced objective falls below
	// its reserve withdraws from the auction.
	Reserve                bool
	ReserveMin, ReserveMax float64
	// RefreshTicks sets the demand/λ̂ quote cadence in ticks (default 1:
	// re-quote every tick).
	RefreshTicks int
	// Uniform switches the transaction model to the uniform baseline;
	// otherwise the modified Zipf distribution with scale ZipfS
	// (default 1) is used.
	Uniform bool
	ZipfS   float64
	// Balance is the channel balance of seed channels and the peer-side
	// balance of committed channels (default 1).
	Balance float64
	// Params are the economic parameters (default DefaultParams);
	// OwnRate is overridden by each bid's drawn rate.
	Params *Params
	// Parallelism bounds the workers pricing a tick's bids; ≤ 0 uses
	// all cores. The report is bit-identical at every setting.
	Parallelism int
	// BatchCommit folds each round's admitted cohort into the substrate
	// in one fused pass instead of one O(n²) fold per winner. Every
	// auction decision is bit-identical to the per-winner path; admitted
	// bids report regret 0, since the pre-commit snapshots regret is
	// measured against are never materialized.
	BatchCommit bool
	// Seed drives the run's random stream; runs are bit-reproducible
	// per seed.
	Seed int64
}

// MarketTick is one tick's deterministic summary. All fields are
// byte-reproducible per seed at any parallelism.
type MarketTick struct {
	// Tick counts processed ticks (1-based).
	Tick int
	// Nodes and Channels describe the post-tick network.
	Nodes, Channels int
	// MaxDegree, DegreeGini and Centralization summarise the degree
	// distribution; Diameter, MeanDistance and Efficiency the routing
	// structure (Efficiency is the welfare proxy).
	MaxDegree      int
	DegreeGini     float64
	Centralization float64
	Diameter       int
	MeanDistance   float64
	Efficiency     float64
	// Class labels the emergent topology.
	Class string
	// Admitted and Withdrawn count the tick's resolved bids; Deferrals
	// counts conflict deferrals; Repricings the extra pricing runs they
	// triggered.
	Admitted, Withdrawn, Deferrals, Repricings int
	// MeanRegret and MaxRegret summarise the tick's admitted-bid regret
	// (the staleness cost of committing against a superseded quote).
	MeanRegret, MaxRegret float64
}

// MarketReport is the outcome of a market run.
type MarketReport struct {
	// Ticks are the per-tick summaries, oldest first.
	Ticks []MarketTick
	// Final is the grown network.
	Final *Network
	// Admitted, Withdrawn, Deferrals and Repricings total the run.
	Admitted, Withdrawn, Deferrals int
	Repricings                     int64
	// Evaluations totals objective evaluations spent pricing.
	Evaluations int64
	// WallMS is the run's wall-clock time — the only non-deterministic
	// field, excluded from every reproducible table.
	WallMS float64
}

// Market runs a batch channel-market auction and returns its per-tick
// summaries and final network. The result (wall time aside) is a pure
// function of the configuration, bit-identical across machines and at
// any Parallelism: every admitted bid's strategy matches what a
// sequential from-scratch replay of the same auction would commit,
// while the engine prices whole batches concurrently over the
// incremental evaluation engine.
func Market(cfg MarketConfig) (*MarketReport, error) {
	mc := market.DefaultConfig()
	switch cfg.Topology {
	case "", "ba":
		mc.Seed = growth.SeedBA
	case "empty":
		mc.Seed = growth.SeedEmpty
		mc.SeedSize = 0
	case "star":
		mc.Seed = growth.SeedStar
	case "er":
		mc.Seed = growth.SeedER
	default:
		return nil, fmt.Errorf("%w: unknown seed topology %q (empty|star|er|ba)", ErrBadInput, cfg.Topology)
	}
	if cfg.SeedSize > 0 {
		mc.SeedSize = cfg.SeedSize
	}
	if cfg.SeedParam > 0 {
		mc.SeedParam = cfg.SeedParam
	} else if mc.Seed == growth.SeedER {
		mc.SeedParam = 0.3
	}
	mc.Ticks = cfg.Ticks
	if cfg.Batch != 0 { // negatives pass through so validation reports them
		mc.Batch = cfg.Batch
	}
	if cfg.MaxRounds != 0 {
		mc.MaxRounds = cfg.MaxRounds
	}
	mc.Candidates = cfg.Candidates // ≤ 0 offers every node
	mc.Preferential = cfg.Preferential
	mc.BudgetMin, mc.BudgetMax = 3, 8
	if cfg.BudgetMax > 0 {
		mc.BudgetMin, mc.BudgetMax = cfg.BudgetMin, cfg.BudgetMax
	}
	mc.LockMin, mc.LockMax = 1, 1
	if cfg.LockMax > 0 {
		mc.LockMin, mc.LockMax = cfg.LockMin, cfg.LockMax
	}
	mc.RateMin, mc.RateMax = 0.5, 1.5
	if cfg.RateMax > 0 {
		mc.RateMin, mc.RateMax = cfg.RateMin, cfg.RateMax
	}
	mc.Reserve = cfg.Reserve
	mc.ReserveMin, mc.ReserveMax = cfg.ReserveMin, cfg.ReserveMax
	if cfg.RefreshTicks > 0 {
		mc.RefreshTicks = cfg.RefreshTicks
	}
	mc.Uniform = cfg.Uniform
	if cfg.ZipfS > 0 {
		mc.ZipfS = cfg.ZipfS
	}
	if cfg.Balance > 0 {
		mc.Balance = cfg.Balance
	}
	if cfg.Params != nil {
		mc.Params = cfg.Params.toCore()
	}
	mc.Parallelism = cfg.Parallelism
	mc.BatchCommit = cfg.BatchCommit

	start := time.Now()
	res, err := market.Run(mc, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	report := &MarketReport{
		Final:       &Network{g: res.Final},
		Admitted:    res.Admitted,
		Withdrawn:   res.Withdrawn,
		Deferrals:   res.Deferrals,
		Repricings:  res.Repricings,
		Evaluations: res.Evaluations,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, ts := range res.Ticks {
		report.Ticks = append(report.Ticks, MarketTick{
			Tick:           ts.Tick,
			Nodes:          ts.Epoch.Nodes,
			Channels:       ts.Epoch.Channels,
			MaxDegree:      ts.Epoch.MaxDegree,
			DegreeGini:     ts.Epoch.DegreeGini,
			Centralization: ts.Epoch.Centralization,
			Diameter:       ts.Epoch.Diameter,
			MeanDistance:   ts.Epoch.MeanDistance,
			Efficiency:     ts.Epoch.Efficiency,
			Class:          ts.Epoch.Class,
			Admitted:       ts.Admitted,
			Withdrawn:      ts.Withdrawn,
			Deferrals:      ts.Deferrals,
			Repricings:     ts.Repricings,
			MeanRegret:     ts.MeanRegret,
			MaxRegret:      ts.MaxRegret,
		})
	}
	return report, nil
}
