// Package lcg is a Go implementation of "Lightning Creation Games"
// (Avarikioti, Lizurej, Michalak, Yeo — ICDCS 2023): the economics of
// joining a payment channel network (PCN) and the stability of the
// topologies that creation games produce.
//
// The package offers four entry points:
//
//   - Network: build or generate PCN topologies (stars, paths, circles,
//     Barabási–Albert graphs, or hand-wired channel sets).
//   - JoinPlanner: price a prospective join — expected routing revenue,
//     expected fees, channel costs — and optimise the attachment strategy
//     with the paper's algorithms (greedy, discretised exhaustive,
//     continuous local search).
//   - Stability: audit Nash equilibria of concrete topologies and
//     evaluate the paper's closed-form star/path/circle results.
//   - Simulate: replay Poisson transaction workloads over live channels
//     to validate the analytic model end to end.
//
// Everything is deterministic per seed and built exclusively on the Go
// standard library. The paper's artifacts (see DESIGN.md) regenerate
// through RunExperiments on a bounded worker pool whose output is
// byte-identical at any parallelism setting.
package lcg

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// ErrBadInput reports invalid façade-level arguments.
var ErrBadInput = errors.New("lcg: bad input")

// Network is a PCN topology: users (nodes) connected by bidirectional
// payment channels carrying a balance on each side.
type Network struct {
	g *graph.Graph
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{g: graph.New(0)} }

// AddUser adds a user and returns its identifier (dense, starting at 0).
func (n *Network) AddUser() int { return int(n.g.AddNode()) }

// AddUsers adds k users.
func (n *Network) AddUsers(k int) {
	for i := 0; i < k; i++ {
		n.g.AddNode()
	}
}

// AddChannel opens a channel between a and b with the given balance on
// each side.
func (n *Network) AddChannel(a, b int, balanceA, balanceB float64) error {
	if _, _, err := n.g.AddChannel(graph.NodeID(a), graph.NodeID(b), balanceA, balanceB); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// RemoveChannel closes the most recently opened channel between a and b.
func (n *Network) RemoveChannel(a, b int) error {
	if err := n.g.RemoveChannel(graph.NodeID(a), graph.NodeID(b)); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// NumUsers returns the number of users.
func (n *Network) NumUsers() int { return n.g.NumNodes() }

// NumChannels returns the number of channels.
func (n *Network) NumChannels() int { return n.g.NumChannels() }

// HasChannel reports whether at least one channel connects a and b.
func (n *Network) HasChannel(a, b int) bool {
	return n.g.HasEdgeBetween(graph.NodeID(a), graph.NodeID(b))
}

// Degree returns the number of channel endpoints at user v (the
// in-degree the paper's distribution ranks by).
func (n *Network) Degree(v int) int { return n.g.InDegree(graph.NodeID(v)) }

// Diameter returns the longest shortest hop distance and whether the
// network is strongly connected.
func (n *Network) Diameter() (int, bool) { return n.g.Diameter() }

// Clone returns an independent copy.
func (n *Network) Clone() *Network { return &Network{g: n.g.Clone()} }

// graphView exposes the underlying graph to sibling façade files.
func (n *Network) graphView() *graph.Graph { return n.g }

// Star returns a star network with the given number of leaves; user 0 is
// the centre (§IV-B, Theorems 7-9).
func Star(leaves int, balance float64) *Network {
	return &Network{g: graph.Star(leaves, balance)}
}

// PathNetwork returns a path network on n users (Theorem 10).
func PathNetwork(n int, balance float64) *Network {
	return &Network{g: graph.Path(n, balance)}
}

// Circle returns a cycle network on n users (Theorem 11).
func Circle(n int, balance float64) *Network {
	return &Network{g: graph.Circle(n, balance)}
}

// Complete returns the complete network on n users.
func Complete(n int, balance float64) *Network {
	return &Network{g: graph.Complete(n, balance)}
}

// BarabasiAlbert returns a preferential-attachment network of n users
// with m channels per arriving user — the generative model behind the
// paper's transaction distribution (§I).
func BarabasiAlbert(n, m int, balance float64, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{g: graph.BarabasiAlbert(n, m, balance, rng)}
}

// ErdosRenyi returns a G(n, p) random network, re-drawn until strongly
// connected.
func ErdosRenyi(n int, p float64, balance float64, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{g: graph.ConnectedErdosRenyi(n, p, balance, rng, 100)}
}
