package lcg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunExperimentsParallelMatchesSerial(t *testing.T) {
	ids := []string{"F2", "E4"}
	var serial, parallel bytes.Buffer
	if err := RunExperiments(ids, ExperimentOptions{Seed: 1, Parallelism: 1}, &serial); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := RunExperiments(ids, ExperimentOptions{Seed: 1, Parallelism: 4}, &parallel); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel façade output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "== F2:") || !strings.Contains(serial.String(), "== E4:") {
		t.Fatalf("missing tables in output:\n%s", serial.String())
	}
}

func TestRunExperimentsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments([]string{"E9"}, ExperimentOptions{Seed: 1, Parallelism: 2, CSV: true}, &buf); err != nil {
		t.Fatalf("RunExperiments: %v", err)
	}
	if !strings.Contains(buf.String(), "deviation found") {
		t.Fatalf("CSV header missing:\n%s", buf.String())
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	err := RunExperiments([]string{"E99"}, ExperimentOptions{Seed: 1}, &buf)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("error = %v, want ErrBadInput", err)
	}
}

func TestExperimentsListingMatchesIDs(t *testing.T) {
	infos := Experiments()
	ids := ExperimentIDs()
	if len(infos) != len(ids) {
		t.Fatalf("Experiments() lists %d entries, ExperimentIDs() %d", len(infos), len(ids))
	}
	sorted := make(map[string]bool, len(ids))
	for _, id := range ids {
		sorted[id] = true
	}
	for _, info := range infos {
		if !sorted[info.ID] {
			t.Fatalf("listing id %s missing from ExperimentIDs()", info.ID)
		}
		if info.Title == "" {
			t.Fatalf("experiment %s has no title", info.ID)
		}
	}
}
