// Package fee implements the fee model of §II-A: a global fee function
// F : [0, T] → R+ charged by intermediaries per forwarded transaction, a
// distribution of transaction sizes, and the publicly-known average fee
//
//	favg = ∫₀ᵀ p(t)·F(t) dt,
//
// the single number the paper's utility function consumes.
package fee

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadParam reports an invalid fee-model parameter.
var ErrBadParam = errors.New("fee: invalid parameter")

// Func is the global fee function F of §II-A: the fee charged by an
// intermediary for forwarding a transaction of the given size.
type Func interface {
	// Fee returns F(amount). Implementations must be non-negative on
	// [0, T].
	Fee(amount float64) float64
	// Name identifies the function in experiment output.
	Name() string
}

// Constant charges the same fee for every transaction size, the model the
// paper's baseline works [18]–[20] use.
type Constant struct {
	F float64
}

var _ Func = Constant{}

// Fee implements Func.
func (c Constant) Fee(float64) float64 { return c.F }

// Name implements Func.
func (c Constant) Name() string { return fmt.Sprintf("constant(%g)", c.F) }

// Linear is the Lightning-style fee: a base fee plus a proportional rate,
// F(t) = Base + Rate·t.
type Linear struct {
	Base float64
	Rate float64
}

var _ Func = Linear{}

// Fee implements Func.
func (l Linear) Fee(amount float64) float64 { return l.Base + l.Rate*amount }

// Name implements Func.
func (l Linear) Name() string { return fmt.Sprintf("linear(base=%g,rate=%g)", l.Base, l.Rate) }

// Capped wraps another fee function and caps the charge, as real routing
// nodes do to stay competitive on large payments.
type Capped struct {
	Inner Func
	Cap   float64
}

var _ Func = Capped{}

// Fee implements Func.
func (c Capped) Fee(amount float64) float64 {
	return math.Min(c.Inner.Fee(amount), c.Cap)
}

// Name implements Func.
func (c Capped) Name() string { return fmt.Sprintf("capped(%s,cap=%g)", c.Inner.Name(), c.Cap) }

// SizeDist is the distribution of transaction sizes on [0, T] (§II-A:
// transactions are of size at most T > 0).
type SizeDist interface {
	// Mean returns E[t].
	Mean() float64
	// Max returns T, the largest possible transaction.
	Max() float64
	// Sample draws a transaction size.
	Sample(rng *rand.Rand) float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// FixedSize sends every transaction with the same size, as in the worked
// example of Figure 2 ("we assume the transactions are of equal size").
type FixedSize struct {
	T float64
}

var _ SizeDist = FixedSize{}

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return f.T }

// Max implements SizeDist.
func (f FixedSize) Max() float64 { return f.T }

// Sample implements SizeDist.
func (f FixedSize) Sample(*rand.Rand) float64 { return f.T }

// Name implements SizeDist.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed(%g)", f.T) }

// UniformSize draws sizes uniformly from [0, T].
type UniformSize struct {
	T float64
}

var _ SizeDist = UniformSize{}

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return u.T / 2 }

// Max implements SizeDist.
func (u UniformSize) Max() float64 { return u.T }

// Sample implements SizeDist.
func (u UniformSize) Sample(rng *rand.Rand) float64 { return rng.Float64() * u.T }

// Name implements SizeDist.
func (u UniformSize) Name() string { return fmt.Sprintf("uniform(0,%g)", u.T) }

// ExpSize draws sizes from an exponential distribution with the given mean,
// truncated to [0, T] by rejection. Payment-size data in deployed PCNs is
// heavily skewed towards small amounts, which this models.
type ExpSize struct {
	MeanSize float64
	T        float64
}

var _ SizeDist = ExpSize{}

// Mean implements SizeDist. It returns the mean of the truncated
// distribution.
func (e ExpSize) Mean() float64 {
	if e.MeanSize <= 0 || e.T <= 0 {
		return 0
	}
	// Mean of Exp(λ) truncated to [0,T]: 1/λ − T·e^{−λT}/(1−e^{−λT}).
	lambda := 1 / e.MeanSize
	z := math.Exp(-lambda * e.T)
	return 1/lambda - e.T*z/(1-z)
}

// Max implements SizeDist.
func (e ExpSize) Max() float64 { return e.T }

// Sample implements SizeDist.
func (e ExpSize) Sample(rng *rand.Rand) float64 {
	if e.MeanSize <= 0 || e.T <= 0 {
		return 0
	}
	for {
		v := rng.ExpFloat64() * e.MeanSize
		if v <= e.T {
			return v
		}
	}
}

// Name implements SizeDist.
func (e ExpSize) Name() string { return fmt.Sprintf("exp(mean=%g,T=%g)", e.MeanSize, e.T) }

// Average computes favg = E[F(t)] for the given fee function and size
// distribution. Closed forms are used where available (constant and linear
// fees); other combinations are integrated by fixed-seed Monte Carlo with
// enough samples for experiment-grade accuracy.
func Average(f Func, d SizeDist) float64 {
	switch fn := f.(type) {
	case Constant:
		return fn.F
	case Linear:
		return fn.Base + fn.Rate*d.Mean()
	}
	return MonteCarloAverage(f, d, 200000, rand.New(rand.NewSource(1)))
}

// MonteCarloAverage estimates E[F(t)] by sampling.
func MonteCarloAverage(f Func, d SizeDist, samples int, rng *rand.Rand) float64 {
	if samples <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < samples; i++ {
		sum += f.Fee(d.Sample(rng))
	}
	return sum / float64(samples)
}

// Validate checks that a fee function is non-negative across the size
// distribution's support, probing a fixed grid.
func Validate(f Func, d SizeDist) error {
	const probes = 64
	maxT := d.Max()
	for i := 0; i <= probes; i++ {
		t := maxT * float64(i) / probes
		if fee := f.Fee(t); fee < 0 || math.IsNaN(fee) {
			return fmt.Errorf("%s at size %g yields %g: %w", f.Name(), t, fee, ErrBadParam)
		}
	}
	return nil
}
