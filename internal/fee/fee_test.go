package fee

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantFee(t *testing.T) {
	f := Constant{F: 0.3}
	for _, amt := range []float64{0, 1, 100} {
		if got := f.Fee(amt); got != 0.3 {
			t.Fatalf("Fee(%v) = %v, want 0.3", amt, got)
		}
	}
}

func TestLinearFee(t *testing.T) {
	f := Linear{Base: 1, Rate: 0.01}
	if got := f.Fee(100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Fee(100) = %v, want 2", got)
	}
	if got := f.Fee(0); got != 1 {
		t.Fatalf("Fee(0) = %v, want 1", got)
	}
}

func TestCappedFee(t *testing.T) {
	f := Capped{Inner: Linear{Base: 0, Rate: 0.1}, Cap: 5}
	if got := f.Fee(10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("below cap: Fee(10) = %v, want 1", got)
	}
	if got := f.Fee(1000); got != 5 {
		t.Fatalf("above cap: Fee(1000) = %v, want 5", got)
	}
}

func TestFixedSize(t *testing.T) {
	d := FixedSize{T: 7}
	if d.Mean() != 7 || d.Max() != 7 {
		t.Fatalf("FixedSize mean/max = %v/%v, want 7/7", d.Mean(), d.Max())
	}
	if got := d.Sample(nil); got != 7 {
		t.Fatalf("Sample = %v, want 7", got)
	}
}

func TestUniformSizeMoments(t *testing.T) {
	d := UniformSize{T: 10}
	if d.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", d.Mean())
	}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 || v > 10 {
			t.Fatalf("sample %v outside [0,10]", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-5) > 0.05 {
		t.Fatalf("empirical mean = %v, want ≈5", got)
	}
}

func TestExpSizeTruncation(t *testing.T) {
	d := ExpSize{MeanSize: 3, T: 10}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 || v > 10 {
			t.Fatalf("sample %v outside [0,10]", v)
		}
		sum += v
	}
	if got, want := sum/n, d.Mean(); math.Abs(got-want) > 0.05 {
		t.Fatalf("empirical mean = %v, analytic = %v", got, want)
	}
}

func TestExpSizeDegenerate(t *testing.T) {
	d := ExpSize{MeanSize: 0, T: 0}
	if d.Mean() != 0 {
		t.Fatalf("degenerate Mean = %v, want 0", d.Mean())
	}
	if got := d.Sample(rand.New(rand.NewSource(1))); got != 0 {
		t.Fatalf("degenerate Sample = %v, want 0", got)
	}
}

func TestAverageClosedForms(t *testing.T) {
	tests := []struct {
		name string
		f    Func
		d    SizeDist
		want float64
	}{
		{name: "constant", f: Constant{F: 0.4}, d: UniformSize{T: 50}, want: 0.4},
		{name: "linear uniform", f: Linear{Base: 1, Rate: 0.1}, d: UniformSize{T: 10}, want: 1.5},
		{name: "linear fixed", f: Linear{Base: 2, Rate: 1}, d: FixedSize{T: 3}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Average(tt.f, tt.d); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Average = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAverageMonteCarloAgreesWithClosedForm(t *testing.T) {
	// A capped linear function has no closed form in Average; check the
	// Monte Carlo path against the analytic value for uniform sizes.
	f := Capped{Inner: Linear{Base: 0, Rate: 1}, Cap: 5}
	d := UniformSize{T: 10}
	// E[min(t,5)] for t~U(0,10) = ∫₀⁵ t/10 + ∫₅¹⁰ 5/10 = 1.25 + 2.5 = 3.75.
	got := Average(f, d)
	if math.Abs(got-3.75) > 0.05 {
		t.Fatalf("Average = %v, want ≈3.75", got)
	}
}

func TestMonteCarloAverageZeroSamples(t *testing.T) {
	if got := MonteCarloAverage(Constant{F: 1}, FixedSize{T: 1}, 0, rand.New(rand.NewSource(1))); got != 0 {
		t.Fatalf("zero samples = %v, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Linear{Base: 1, Rate: 0.1}, UniformSize{T: 10}); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
	if err := Validate(Linear{Base: -10, Rate: 0.1}, UniformSize{T: 10}); err == nil {
		t.Fatal("negative fee function accepted")
	}
}

func TestFeeNonNegativityProperty(t *testing.T) {
	check := func(base, rate, amtRaw uint16) bool {
		f := Linear{Base: float64(base) / 100, Rate: float64(rate) / 1000}
		amt := float64(amtRaw) / 10
		return f.Fee(amt) >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	for _, n := range []string{
		Constant{F: 1}.Name(),
		Linear{Base: 1, Rate: 2}.Name(),
		Capped{Inner: Constant{F: 1}, Cap: 2}.Name(),
		FixedSize{T: 1}.Name(),
		UniformSize{T: 1}.Name(),
		ExpSize{MeanSize: 1, T: 2}.Name(),
	} {
		if n == "" {
			t.Fatal("empty name")
		}
	}
}
