package market

import (
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/par"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// This file is the differential-testing oracle of the market engine: the
// same auction loop, with every piece of concurrent and incremental
// machinery replaced by its sequential from-scratch counterpart. Each
// pricing builds a fresh core.NewJoinEvaluator (a full BFS of the
// current substrate) and runs core.ScratchGreedy (a full stats rebuild
// per probe); each regret measurement goes through ScratchSimplified;
// commits mutate a plain graph with no incremental all-pairs extension;
// and the whole replay is strictly sequential — one bid at a time on a
// one-worker pool. The determinism contract says a ReferenceMarket must
// reproduce Run's trace bit for bit — outcomes, strategies, objectives,
// utilities, regrets — which pins down, in one test, the concurrent
// round pricing, the zero-cost evaluator sharing, the incremental
// commit path and the conflict resolver against their oracle
// definitions.
//
// The oracle is O(n²·(n+m)) per tick where the engine is ~O(n) per probe
// and O(n²) per commit; use it at differential-test sizes only.

// ReferenceMarket replays cfg through the from-scratch sequential
// backend. The rng stream must be seeded identically to the Run being
// checked; cfg.Parallelism is ignored — the oracle prices one bid at a
// time by construction.
func ReferenceMarket(cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g, err := growth.BuildSeed(cfg.Seed, cfg.SeedSize, cfg.SeedParam, cfg.Balance, rng)
	if err != nil {
		return nil, err
	}
	return runAuction(cfg, rng, &oracleBackend{
		g:       g,
		params:  cfg.Params,
		balance: cfg.Balance,
		demand:  &traffic.Demand{},
		rates:   map[graph.NodeID]float64{},
	}, par.NewPool(1))
}

// oracleBackend holds a plain graph plus the demand and λ̂ snapshots;
// nothing is carried between pricings except what the contract says is
// carried (the snapshots).
type oracleBackend struct {
	g       *graph.Graph
	params  core.Params
	balance float64
	demand  *traffic.Demand
	rates   map[graph.NodeID]float64
}

func (b *oracleBackend) Graph() *graph.Graph { return b.g }

// freshEvaluator builds a from-scratch evaluator for the current
// substrate: full BFS, padded demand (the snapshot may lag the graph),
// explicit pu.
func (b *oracleBackend) freshEvaluator(pu []float64, params core.Params) (*core.JoinEvaluator, error) {
	n := b.g.NumNodes()
	if pu == nil {
		pu = make([]float64, n)
	}
	ev, err := core.NewJoinEvaluator(b.g, growth.FixedProbs(pu), growth.PadDemand(b.demand, n), params)
	if err != nil {
		return nil, err
	}
	ev.SetFixedRates(b.rates)
	return ev, nil
}

func (b *oracleBackend) Refresh(d *traffic.Demand, candidates []graph.NodeID) {
	b.demand = d
	ev, err := b.freshEvaluator(nil, b.params)
	if err != nil {
		// Refresh cannot fail on a coherent substrate; surface loudly.
		panic(fmt.Sprintf("market oracle: refresh evaluator: %v", err))
	}
	b.rates = ev.EstimateRates(candidates)
}

func (b *oracleBackend) Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error) {
	ev, err := b.freshEvaluator(pu, params)
	if err != nil {
		return core.Result{}, err
	}
	return core.ScratchGreedy(ev, cfg)
}

func (b *oracleBackend) Realized(pu []float64, params core.Params, s core.Strategy, model core.RevenueModel) (float64, error) {
	ev, err := b.freshEvaluator(pu, params)
	if err != nil {
		return 0, err
	}
	return ev.ScratchSimplified(s, model), nil
}

func (b *oracleBackend) Commit(s core.Strategy) (graph.NodeID, error) {
	u := b.g.AddNode()
	for _, a := range s {
		if _, _, err := b.g.AddChannel(u, a.Peer, a.Lock, b.balance); err != nil {
			return graph.InvalidNode, err
		}
	}
	return u, nil
}

// CommitBatch is the oracle's spelling of the fused fold: plain
// sequential commits, one node at a time, no incremental structure.
func (b *oracleBackend) CommitBatch(ss []core.Strategy) ([]graph.NodeID, error) {
	ids := make([]graph.NodeID, 0, len(ss))
	for _, s := range ss {
		u, err := b.Commit(s)
		if err != nil {
			return nil, err
		}
		ids = append(ids, u)
	}
	return ids, nil
}

// AllPairs returns nil: the oracle maintains no incremental structure
// and skips tick stats.
func (b *oracleBackend) AllPairs() *graph.AllPairs { return nil }
