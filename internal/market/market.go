// Package market is the batch channel-market engine: a tick-based
// auction that prices many concurrent join bids per tick, the
// heavy-traffic shape of a production channel marketplace (Lightning
// Pool matches and prices batches of channel leases per epoch) layered
// over the paper's Algorithm 1.
//
// Each tick collects a batch of bids — profile-drawn joiners with
// budgets, locks, transaction rates and optional reserve utilities —
// and resolves them in bounded re-pricing rounds:
//
//  1. Price. Every pending bid runs Algorithm 1 against the *same
//     frozen snapshot* (the substrate, demand and λ̂ tables at round
//     start). Pricings are independent, so the engine fans them out
//     over a bounded worker pool of zero-cost evaluators sharing the
//     session's live all-pairs structure (core.GrowSession.Evaluator);
//     results land in bid-indexed slots, keeping the outcome
//     bit-identical at any parallelism.
//  2. Withdraw. A bid whose priced objective falls below its drawn
//     reserve utility leaves the auction.
//  3. Resolve. Surviving bids are ranked by priced objective
//     (descending, bid index breaking ties) and committed in rank
//     order. A bid whose strategy shares a peer with a strategy already
//     committed this round is deferred to the next round for
//     re-pricing — its quote is stale where it matters most. The final
//     round commits everything, stale or not.
//
// Commits fold winners into the live substrate through the incremental
// commit path (core.GrowSession.Commit → graph.ExtendWithNode, one
// O(n²) pass per winner). At each commit the engine also measures the
// bid's *realized* objective against the pre-commit substrate; the
// difference to the as-priced objective is the bid's regret — the price
// of snapshot staleness, which the M2 experiment trades off against
// re-pricing rounds.
//
// Determinism contract: a Run is a pure function of (Config, rng
// stream), byte-identical across machines and at any Parallelism. Every
// decision — strategies, objectives, utilities, regrets, outcomes — is
// bit-identical to ReferenceMarket, the from-scratch sequential oracle
// that replays the identical rng stream one bid at a time (fresh
// core.NewJoinEvaluator + core.ScratchGreedy per pricing); enforced by
// TestMarketMatchesReference and FuzzMarketMatchesReference.
package market

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/par"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// ErrBadConfig reports an invalid market configuration.
var ErrBadConfig = errors.New("market: invalid config")

// Config parametrises one market run. The zero value is not runnable;
// use DefaultConfig as the base.
type Config struct {
	Seed      growth.SeedKind // seed topology the market opens over
	SeedSize  int             // nodes in the seed topology (ignored for empty)
	SeedParam float64         // ER edge probability, or BA attachment count
	Balance   float64         // seed channel balance; also the peer-side balance of committed channels

	Ticks     int // auction ticks to run
	Batch     int // join bids collected per tick
	MaxRounds int // pricing/conflict-resolution rounds per tick (default 3)

	// Bid profiles are drawn uniformly from [Min, Max] per bid: budget
	// B_u, per-channel lock l, and the bidder's own transaction rate.
	// Min == Max pins the value without consuming randomness.
	BudgetMin, BudgetMax float64
	LockMin, LockMax     float64
	RateMin, RateMax     float64

	// Reserve enables reserve utilities: each bid draws a reserve from
	// [ReserveMin, ReserveMax] and withdraws from the auction when its
	// priced objective falls below it. Off, every bid is admitted.
	Reserve                bool
	ReserveMin, ReserveMax float64

	Candidates   int  // candidate peers offered per bid (0 = every node)
	Preferential bool // sample candidates ∝ degree+1 instead of uniformly

	RefreshTicks int // ticks between demand + λ̂ snapshot refreshes (default 1: re-quote every tick)

	Uniform bool    // uniform transaction distribution instead of modified Zipf
	ZipfS   float64 // modified-Zipf scale when !Uniform (default 1)

	Params core.Params       // base economics; OwnRate is overridden by each bid's drawn rate
	Model  core.RevenueModel // pricing model (zero = fixed-rate, Algorithm 1's setting)

	// Parallelism bounds the workers pricing a round's bids — and, in the
	// engine, the row shards of the substrate's fold passes; values ≤ 0
	// select all cores. The result is bit-identical at every setting —
	// pricing happens against a frozen snapshot into bid-indexed slots,
	// and the fold rows are independent pure functions.
	Parallelism int

	// BatchCommit folds each round's admitted cohort into the substrate
	// in one fused pass (core.GrowSession.CommitBatch →
	// graph.ExtendWithNodes) instead of one O(n²) fold per winner. Every
	// auction decision — outcomes, strategies, objectives, deferrals,
	// node identifiers — is bit-identical to the sequential commit path;
	// what batching gives up is regret observability: regret is defined
	// against the live pre-commit substrate, which a fused fold never
	// materializes, so admitted bids report regret 0 and the per-tick
	// regret summaries are zero. Use it for throughput workloads (wide
	// ticks at scale) where the regret telemetry is not the point; M2's
	// regret-vs-rounds trade-off keeps the default per-winner path.
	BatchCommit bool
}

// DefaultConfig returns a runnable base configuration: a BA-seeded
// market, preferential candidate sampling, fixed-rate pricing, 64-bid
// ticks resolved in up to 3 rounds, quotes refreshed every tick.
func DefaultConfig() Config {
	return Config{
		Seed:         growth.SeedBA,
		SeedSize:     12,
		SeedParam:    2,
		Balance:      1,
		Ticks:        4,
		Batch:        64,
		MaxRounds:    3,
		BudgetMin:    4,
		BudgetMax:    8,
		LockMin:      1,
		LockMax:      1,
		RateMin:      1,
		RateMax:      1,
		Candidates:   16,
		Preferential: true,
		RefreshTicks: 1,
		ZipfS:        1,
		Params: core.Params{
			OnChainCost: 1,
			OppCostRate: 0.05,
			FAvg:        0.5,
			FeePerHop:   0.5,
			OwnRate:     1,
		},
	}
}

func (cfg *Config) normalize() error {
	if cfg.Ticks < 0 {
		return fmt.Errorf("%w: %d ticks", ErrBadConfig, cfg.Ticks)
	}
	if cfg.Batch < 0 {
		return fmt.Errorf("%w: batch %d", ErrBadConfig, cfg.Batch)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.MaxRounds < 0 {
		return fmt.Errorf("%w: %d re-price rounds", ErrBadConfig, cfg.MaxRounds)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 3
	}
	if cfg.RefreshTicks <= 0 {
		cfg.RefreshTicks = 1
	}
	if cfg.Seed == "" {
		cfg.Seed = growth.SeedEmpty
	}
	switch cfg.Seed {
	case growth.SeedEmpty, growth.SeedStar, growth.SeedER, growth.SeedBA:
	default:
		return fmt.Errorf("%w: seed topology %q", ErrBadConfig, cfg.Seed)
	}
	for _, r := range [][2]float64{
		{cfg.BudgetMin, cfg.BudgetMax},
		{cfg.LockMin, cfg.LockMax},
		{cfg.RateMin, cfg.RateMax},
	} {
		if r[0] < 0 || math.IsNaN(r[0]) {
			return fmt.Errorf("%w: negative bid profile bound %v", ErrBadConfig, r[0])
		}
		if r[1] < r[0] {
			return fmt.Errorf("%w: inverted bid profile range [%v, %v]", ErrBadConfig, r[0], r[1])
		}
	}
	if cfg.Reserve && cfg.ReserveMax < cfg.ReserveMin {
		return fmt.Errorf("%w: inverted reserve range [%v, %v]", ErrBadConfig, cfg.ReserveMin, cfg.ReserveMax)
	}
	if err := cfg.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

// distribution returns the transaction distribution of the run.
func (cfg *Config) distribution() txdist.Distribution {
	if cfg.Uniform {
		return txdist.Uniform{}
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1
	}
	return txdist.ModifiedZipf{S: s}
}

// Outcome labels a bid's fate.
type Outcome uint8

// Bid outcomes.
const (
	// Admitted bids joined the network with their priced strategy.
	Admitted Outcome = iota + 1
	// Withdrawn bids left the auction: their priced objective fell below
	// their reserve utility.
	Withdrawn
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Withdrawn:
		return "withdrawn"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Bid is one resolved join bid — a trace entry. The differential oracle
// replays against these bit for bit.
type Bid struct {
	// Tick and Index locate the bid: batch position Index of tick Tick
	// (both 0-based).
	Tick, Index int
	// Outcome is the bid's fate; Round the 1-based round that decided it.
	Outcome Outcome
	Round   int
	// Node is the admitted bidder's node identifier (graph.InvalidNode
	// when withdrawn).
	Node graph.NodeID
	// Strategy is the priced channel set (committed when admitted).
	Strategy core.Strategy
	// Objective is the as-priced objective of the deciding round;
	// Utility the reported plan utility (fixed-rate model).
	Objective float64
	Utility   float64
	// Reserve is the drawn reserve utility (−Inf when reserves are off).
	Reserve float64
	// Regret is the staleness cost of an admitted bid: as-priced
	// objective minus the realized objective measured against the
	// substrate at commit time (0 when either side is −Inf, and always 0
	// for the first commit of a round — its quote is fresh by
	// construction).
	Regret float64
}

// TickStats is one tick's deterministic summary: the auction counters
// plus a growth.Epoch metric snapshot of the post-tick substrate.
type TickStats struct {
	// Tick counts processed ticks at snapshot time (1-based).
	Tick int
	// Epoch is the substrate metric snapshot (Epoch.Arrival = Tick).
	Epoch growth.Epoch
	// Admitted and Withdrawn count the tick's resolved bids; Deferrals
	// counts bid-round deferral events; Repricings counts greedy runs
	// beyond each bid's first.
	Admitted, Withdrawn, Deferrals, Repricings int
	// MeanRegret and MaxRegret summarise the tick's admitted-bid regret
	// (MaxRegret clamps at 0: only staleness losses count).
	MeanRegret, MaxRegret float64
}

// Result is the outcome of one market run.
type Result struct {
	// Ticks are the per-tick summaries, oldest first (empty for the
	// metric-free oracle).
	Ticks []TickStats
	// Trace records every bid's resolution, tick by tick and round by
	// round: each round's withdrawals first (in the order the round
	// priced them — bid order in round 1, the previous round's rank
	// order after), then its commits in commit order.
	Trace []Bid
	// Final is the grown substrate.
	Final *graph.Graph
	// Admitted, Withdrawn, Deferrals and Repricings total the trace.
	Admitted, Withdrawn, Deferrals int
	Repricings                     int64
	// Evaluations totals the objective evaluations spent pricing.
	Evaluations int64
}

// backend abstracts the network+pricing substrate of the auction loop,
// so the production engine (incremental GrowSession, concurrent
// pricing) and the differential oracle (from-scratch evaluator per
// pricing, strictly sequential) replay the *identical* decision
// sequence — same rng draws, same frozen-round snapshots, same ranking —
// through different machinery.
type backend interface {
	Graph() *graph.Graph
	// Refresh installs a new demand snapshot and re-estimates λ̂ over the
	// candidates.
	Refresh(d *traffic.Demand, candidates []graph.NodeID)
	// Price runs Algorithm 1 for one bid. The engine calls it
	// concurrently between commits; implementations must not share
	// mutable state across calls.
	Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error)
	// Realized evaluates a strategy's objective against the current
	// substrate — the regret measurement at commit time.
	Realized(pu []float64, params core.Params, s core.Strategy, model core.RevenueModel) (float64, error)
	// Commit folds an admitted bid in and returns its node identifier.
	Commit(s core.Strategy) (graph.NodeID, error)
	// CommitBatch folds a whole round's admitted cohort in commit order,
	// returning the node identifiers — the engine fuses the folds, the
	// oracle loops; identifiers and substrate must match Commit-by-Commit
	// exactly.
	CommitBatch(ss []core.Strategy) ([]graph.NodeID, error)
	// AllPairs exposes the live structure for metric scans; the oracle
	// returns nil and skips tick stats.
	AllPairs() *graph.AllPairs
}

// Run executes a batch channel-market auction per cfg, driven by rng.
// The result is a pure function of (cfg, rng stream) — byte-identical
// across machines and at any cfg.Parallelism.
func Run(cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g, err := growth.BuildSeed(cfg.Seed, cfg.SeedSize, cfg.SeedParam, cfg.Balance, rng)
	if err != nil {
		return nil, err
	}
	gs, err := core.NewGrowSession(g, cfg.Params, g.NumNodes()+cfg.Ticks*cfg.Batch, cfg.Balance)
	if err != nil {
		return nil, err
	}
	gs.SetParallelism(cfg.Parallelism)
	return runAuction(cfg, rng, &sessionBackend{gs: gs}, par.NewPool(cfg.Parallelism))
}

// sessionBackend is the production substrate: one persistent GrowSession
// whose zero-cost evaluators price concurrent bids against the live
// immutable snapshot.
type sessionBackend struct {
	gs *core.GrowSession
}

func (b *sessionBackend) Graph() *graph.Graph { return b.gs.Graph() }

func (b *sessionBackend) Refresh(d *traffic.Demand, candidates []graph.NodeID) {
	b.gs.SetDemand(d)
	if _, err := b.gs.RefreshRates(candidates); err != nil {
		// Refresh cannot fail on a coherent substrate; surface loudly.
		panic(fmt.Sprintf("market session: refresh rates: %v", err))
	}
}

func (b *sessionBackend) Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error) {
	ev, err := b.gs.Evaluator(pu, params)
	if err != nil {
		return core.Result{}, err
	}
	return core.Greedy(ev, cfg)
}

func (b *sessionBackend) Realized(pu []float64, params core.Params, s core.Strategy, model core.RevenueModel) (float64, error) {
	ev, err := b.gs.Evaluator(pu, params)
	if err != nil {
		return 0, err
	}
	return ev.Simplified(s, model), nil
}

func (b *sessionBackend) Commit(s core.Strategy) (graph.NodeID, error) { return b.gs.Commit(s) }

func (b *sessionBackend) CommitBatch(ss []core.Strategy) ([]graph.NodeID, error) {
	return b.gs.CommitBatch(ss)
}

func (b *sessionBackend) AllPairs() *graph.AllPairs { return b.gs.AllPairs() }

// bid is one drawn join bid and its latest pricing.
type bid struct {
	budget, lock, rate, reserve float64
	cands                       []graph.NodeID
	plan                        core.Result
}

func (bd *bid) params(cfg Config) core.Params {
	params := cfg.Params
	params.OwnRate = bd.rate
	return params
}

func (bd *bid) greedy(cfg Config) core.GreedyConfig {
	return core.GreedyConfig{
		Budget:       bd.budget,
		Lock:         bd.lock,
		Candidates:   bd.cands,
		Model:        cfg.Model,
		UtilityModel: core.RevenueFixedRate,
	}
}

// runAuction is the shared tick loop. Per tick, in this exact order:
// snapshot refresh (on cadence), batch draw (profile then candidates per
// bid, in bid order), then up to MaxRounds resolution rounds of
// price → withdraw → rank → commit/defer. Every rng consumption is
// identical across backends; pricing and committing consume none.
func runAuction(cfg Config, rng *rand.Rand, b backend, pool *par.Pool) (*Result, error) {
	g := b.Graph()
	dist := cfg.distribution()
	model := cfg.Model
	if model == 0 {
		model = core.RevenueFixedRate
	}
	res := &Result{}

	refresh := func() {
		all := make([]graph.NodeID, g.NumNodes())
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		b.Refresh(growth.BuildDemand(g, dist, nil), all)
	}

	for tick := 0; tick < cfg.Ticks; tick++ {
		// 0. Snapshot refresh: re-quote demand and λ̂ on cadence.
		if tick%cfg.RefreshTicks == 0 {
			refresh()
		}

		// 1. Batch draw. Candidates come from the tick-start substrate:
		// bidders of one tick cannot see each other, only prior ticks.
		bids := make([]bid, cfg.Batch)
		for i := range bids {
			bd := &bids[i]
			bd.budget = growth.DrawUniform(rng, cfg.BudgetMin, cfg.BudgetMax)
			bd.lock = growth.DrawUniform(rng, cfg.LockMin, cfg.LockMax)
			bd.rate = growth.DrawUniform(rng, cfg.RateMin, cfg.RateMax)
			bd.reserve = math.Inf(-1)
			if cfg.Reserve {
				bd.reserve = growth.DrawUniform(rng, cfg.ReserveMin, cfg.ReserveMax)
			}
			nodes := make([]graph.NodeID, g.NumNodes())
			for v := range nodes {
				nodes[v] = graph.NodeID(v)
			}
			bd.cands = growth.SampleCandidates(rng, g, nodes, cfg.Candidates, cfg.Preferential)
		}

		// 2. Resolution rounds.
		pending := make([]int, cfg.Batch)
		for i := range pending {
			pending[i] = i
		}
		var (
			tickAdmitted, tickWithdrawn, tickDeferrals, tickRepricings int
			regretSum, regretMax                                       float64
		)
		for round := 1; round <= cfg.MaxRounds && len(pending) > 0; round++ {
			// 2a. Price every pending bid against the frozen round-start
			// snapshot. The engine fans out here; bid-indexed slots keep
			// the outcome independent of scheduling.
			pu := growth.JoinProbs(g, graph.InvalidNode, dist, nil)
			plans, err := par.Collect(pool, len(pending), func(k int) (core.Result, error) {
				bd := &bids[pending[k]]
				return b.Price(pu, bd.params(cfg), bd.greedy(cfg))
			})
			if err != nil {
				return nil, err
			}
			ranked := pending[:0]
			for k, bi := range pending {
				bd := &bids[bi]
				bd.plan = plans[k]
				res.Evaluations += int64(plans[k].Evaluations)
				if round > 1 {
					tickRepricings++
					res.Repricings++
				}
				// 2b. Withdrawals, in bid order.
				if bd.plan.Objective < bd.reserve {
					res.Trace = append(res.Trace, Bid{
						Tick: tick, Index: bi, Outcome: Withdrawn, Round: round,
						Node: graph.InvalidNode, Strategy: bd.plan.Strategy,
						Objective: bd.plan.Objective, Utility: bd.plan.Utility,
						Reserve: bd.reserve,
					})
					tickWithdrawn++
					res.Withdrawn++
					continue
				}
				ranked = append(ranked, bi)
			}

			// 2c. Rank by priced objective, bid index breaking ties.
			sort.Slice(ranked, func(i, j int) bool {
				oi, oj := bids[ranked[i]].plan.Objective, bids[ranked[j]].plan.Objective
				if oi != oj {
					return oi > oj
				}
				return ranked[i] < ranked[j]
			})

			// 2d. Commit in rank order; defer peer-conflicting bids to the
			// next round (the final round commits everything, stale or not).
			final := round == cfg.MaxRounds
			committedPeers := make(map[graph.NodeID]bool)
			var next []int
			if cfg.BatchCommit {
				// Batched resolution: identical commit decisions (the
				// conflict test reads only strategies), one fused fold
				// per round, no regret measurements (their substrate
				// snapshots are never materialized).
				var cohort []int
				var batch []core.Strategy
				for _, bi := range ranked {
					bd := &bids[bi]
					if !final && conflicts(bd.plan.Strategy, committedPeers) {
						next = append(next, bi)
						tickDeferrals++
						res.Deferrals++
						continue
					}
					for _, p := range bd.plan.Strategy.Peers() {
						committedPeers[p] = true
					}
					cohort = append(cohort, bi)
					batch = append(batch, bd.plan.Strategy)
				}
				nodes, err := b.CommitBatch(batch)
				if err != nil {
					return nil, err
				}
				for k, bi := range cohort {
					bd := &bids[bi]
					res.Trace = append(res.Trace, Bid{
						Tick: tick, Index: bi, Outcome: Admitted, Round: round,
						Node: nodes[k], Strategy: bd.plan.Strategy,
						Objective: bd.plan.Objective, Utility: bd.plan.Utility,
						Reserve: bd.reserve,
					})
					tickAdmitted++
					res.Admitted++
				}
				pending = next
				continue
			}
			fresh := true // no commit since this round's pricing yet
			for _, bi := range ranked {
				bd := &bids[bi]
				if !final && conflicts(bd.plan.Strategy, committedPeers) {
					next = append(next, bi)
					tickDeferrals++
					res.Deferrals++
					continue
				}
				// Regret: re-measure the strategy on the live pre-commit
				// substrate. The first commit of a round sees the pricing
				// snapshot unchanged, so its regret is exactly 0 (the
				// EvalState ≡ buildStats contract makes the re-measurement
				// bit-equal to the priced objective) and the measurement
				// is skipped.
				regret := 0.0
				if !fresh {
					realized, err := b.Realized(growth.JoinProbs(g, graph.InvalidNode, dist, nil),
						bd.params(cfg), bd.plan.Strategy, model)
					if err != nil {
						return nil, err
					}
					regret = bd.plan.Objective - realized
					if math.IsInf(bd.plan.Objective, -1) || math.IsInf(realized, -1) {
						regret = 0
					}
				}
				node, err := b.Commit(bd.plan.Strategy)
				if err != nil {
					return nil, err
				}
				fresh = false
				for _, p := range bd.plan.Strategy.Peers() {
					committedPeers[p] = true
				}
				res.Trace = append(res.Trace, Bid{
					Tick: tick, Index: bi, Outcome: Admitted, Round: round,
					Node: node, Strategy: bd.plan.Strategy,
					Objective: bd.plan.Objective, Utility: bd.plan.Utility,
					Reserve: bd.reserve, Regret: regret,
				})
				tickAdmitted++
				res.Admitted++
				regretSum += regret
				if regret > regretMax {
					regretMax = regret
				}
			}
			pending = next
		}

		// 3. Tick stats (engine only; the oracle carries no live
		// all-pairs structure and skips metrics).
		if ap := b.AllPairs(); ap != nil {
			res.Ticks = append(res.Ticks, tickStats(g, ap, tick+1, tickAdmitted,
				tickWithdrawn, tickDeferrals, tickRepricings, regretSum, regretMax))
		}
	}
	if cfg.Ticks == 0 {
		if ap := b.AllPairs(); ap != nil {
			res.Ticks = append(res.Ticks, tickStats(g, ap, 0, 0, 0, 0, 0, 0, 0))
		}
	}
	res.Final = g
	return res, nil
}

// conflicts reports whether a strategy shares a peer with the set of
// peers already committed this round.
func conflicts(s core.Strategy, committed map[graph.NodeID]bool) bool {
	for _, a := range s {
		if committed[a.Peer] {
			return true
		}
	}
	return false
}

// tickStats assembles one tick's summary with a metric snapshot of the
// post-tick substrate.
func tickStats(g *graph.Graph, ap *graph.AllPairs, tick, admitted, withdrawn, deferrals, repricings int, regretSum, regretMax float64) TickStats {
	alive := make([]graph.NodeID, g.NumNodes())
	for v := range alive {
		alive[v] = graph.NodeID(v)
	}
	ts := TickStats{
		Tick:       tick,
		Epoch:      growth.ComputeEpoch(g, ap, alive, tick),
		Admitted:   admitted,
		Withdrawn:  withdrawn,
		Deferrals:  deferrals,
		Repricings: repricings,
		MaxRegret:  regretMax,
	}
	if admitted > 0 {
		ts.MeanRegret = regretSum / float64(admitted)
	}
	return ts
}
