package market

import (
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/growth"
)

// FuzzMarketMatchesReference fuzzes the differential contract: an
// arbitrary (seed, config-bytes) pair must produce bit-identical bid
// traces from the concurrent batch engine and the sequential
// from-scratch oracle. The config bytes steer every discrete knob —
// seed topology, batch size, re-price budget, reserves, candidate
// process, refresh cadence, revenue model — so the fuzzer explores
// interaction corners the table-driven tests do not enumerate. The
// engine side runs at parallelism 4, so a fuzz session under -race also
// hunts pricing races.
func FuzzMarketMatchesReference(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint8(1), uint8(0), false)
	f.Add(int64(2), uint8(1), uint8(7), uint8(3), uint8(5), false)
	f.Add(int64(3), uint8(2), uint8(1), uint8(2), uint8(9), true)
	f.Add(int64(4), uint8(3), uint8(12), uint8(5), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, topo, batch, rounds, knobs uint8, exact bool) {
		cfg := DefaultConfig()
		cfg.Seed = []growth.SeedKind{growth.SeedEmpty, growth.SeedStar, growth.SeedER, growth.SeedBA}[int(topo)%4]
		cfg.SeedSize = 4 + int(topo)%5
		cfg.SeedParam = 0.35
		if cfg.Seed == growth.SeedBA {
			cfg.SeedParam = 1 + float64(int(topo)%2)
		}
		cfg.Ticks = 1 + int(knobs)%3
		cfg.Batch = 1 + int(batch)%12
		cfg.MaxRounds = 1 + int(rounds)%5
		cfg.Candidates = 2 + int(knobs)%6
		cfg.Preferential = knobs%3 == 0
		cfg.BudgetMin, cfg.BudgetMax = 2, 2+float64(knobs%5)
		cfg.LockMin, cfg.LockMax = 0.5, 0.5+float64(knobs%3)
		cfg.RateMin, cfg.RateMax = 1, 1+float64(knobs%2)
		cfg.Reserve = knobs%2 == 1
		cfg.ReserveMin, cfg.ReserveMax = -2, float64(knobs%4)-1
		cfg.RefreshTicks = 1 + int(knobs)%3
		cfg.Uniform = rounds%2 == 0
		cfg.Parallelism = 4
		if exact {
			cfg.Model = core.RevenueExact
			if cfg.Batch > 6 {
				cfg.Batch = 6 // exact-model oracle is O(n³) per pricing
			}
		}
		got, err := Run(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skipf("config rejected: %v", err)
		}
		want, err := ReferenceMarket(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("oracle rejected a config the engine accepted: %v", err)
		}
		requireSameTrace(t, "fuzz", got, want)
		requireSameGraph(t, "fuzz", got.Final, want.Final)
	})
}
