package market

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
)

// diffConfig is the differential-test base: every subsystem on — varied
// profiles, reserves, multi-round conflict resolution, refresh cadence —
// at oracle-affordable size.
func diffConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = growth.SeedBA
	cfg.SeedSize = 8
	cfg.Ticks = 3
	cfg.Batch = 8
	cfg.MaxRounds = 3
	cfg.BudgetMin, cfg.BudgetMax = 3, 7
	cfg.LockMin, cfg.LockMax = 0.5, 2
	cfg.RateMin, cfg.RateMax = 0.5, 2
	cfg.Reserve = true
	cfg.ReserveMin, cfg.ReserveMax = -3, 0
	cfg.Candidates = 5
	cfg.RefreshTicks = 2
	return cfg
}

// requireSameTrace takes testing.TB so the fuzz target shares the one
// field-by-field comparison; adding a Bid field updates the whole
// differential contract in one place.
func requireSameTrace(t testing.TB, tag string, got, want *Result) {
	t.Helper()
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d vs %d", tag, len(got.Trace), len(want.Trace))
	}
	for i, g := range got.Trace {
		w := want.Trace[i]
		if g.Tick != w.Tick || g.Index != w.Index || g.Outcome != w.Outcome ||
			g.Round != w.Round || g.Node != w.Node || !g.Strategy.Equal(w.Strategy) ||
			g.Objective != w.Objective || g.Utility != w.Utility ||
			g.Reserve != w.Reserve || g.Regret != w.Regret {
			t.Fatalf("%s: bid %d diverges:\n engine %+v\n oracle %+v", tag, i, g, w)
		}
	}
	if got.Admitted != want.Admitted || got.Withdrawn != want.Withdrawn ||
		got.Deferrals != want.Deferrals || got.Repricings != want.Repricings {
		t.Fatalf("%s: counters diverge: %d/%d/%d/%d vs %d/%d/%d/%d", tag,
			got.Admitted, got.Withdrawn, got.Deferrals, got.Repricings,
			want.Admitted, want.Withdrawn, want.Deferrals, want.Repricings)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: evaluations %d vs %d", tag, got.Evaluations, want.Evaluations)
	}
}

func requireSameGraph(t testing.TB, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: shape %d nodes/%d edges vs %d/%d",
			tag, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := 0; v < got.NumNodes(); v++ {
		a := got.OutEdges(graph.NodeID(v))
		b := want.OutEdges(graph.NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("%s: node %d out-degree %d vs %d", tag, v, len(a), len(b))
		}
		for i := range a {
			ea, _ := got.Edge(a[i])
			eb, _ := want.Edge(b[i])
			if ea.To != eb.To || ea.Capacity != eb.Capacity {
				t.Fatalf("%s: node %d edge %d: (%d,%v) vs (%d,%v)",
					tag, v, i, ea.To, ea.Capacity, eb.To, eb.Capacity)
			}
		}
	}
}

// TestMarketMatchesReference is the engine's keystone differential test:
// the concurrent batch engine and the sequential from-scratch oracle
// must produce bit-identical bid traces — outcomes, strategies,
// objectives, utilities, regrets — and identical final substrates,
// across seed topologies, batch sizes, re-price budgets and seeds. The
// engine side runs at parallelism 4, so under -race this is also the
// concurrent-pricing race regression.
func TestMarketMatchesReference(t *testing.T) {
	for _, seedKind := range []growth.SeedKind{growth.SeedEmpty, growth.SeedStar, growth.SeedER, growth.SeedBA} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := diffConfig()
			cfg.Seed = seedKind
			if seedKind == growth.SeedER {
				cfg.SeedParam = 0.3
			}
			cfg.Parallelism = 4
			got, err := Run(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s/%d: Run: %v", seedKind, seed, err)
			}
			want, err := ReferenceMarket(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s/%d: ReferenceMarket: %v", seedKind, seed, err)
			}
			tag := string(seedKind)
			requireSameTrace(t, tag, got, want)
			requireSameGraph(t, tag, got.Final, want.Final)
		}
	}
}

// TestMarketMatchesReferenceAcrossShapes varies the auction shape: batch
// sizes from per-bid sequential (1) to wide, re-price budgets from
// one-shot to deep, with and without reserves.
func TestMarketMatchesReferenceAcrossShapes(t *testing.T) {
	shapes := []struct {
		batch, rounds int
		reserve       bool
	}{
		{1, 1, false},
		{4, 1, true},
		{12, 2, false},
		{16, 5, true},
	}
	for _, sh := range shapes {
		cfg := diffConfig()
		cfg.Ticks = 2
		cfg.Batch = sh.batch
		cfg.MaxRounds = sh.rounds
		cfg.Reserve = sh.reserve
		cfg.Parallelism = 3
		got, err := Run(cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("batch=%d: Run: %v", sh.batch, err)
		}
		want, err := ReferenceMarket(cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("batch=%d: ReferenceMarket: %v", sh.batch, err)
		}
		tag := "shape"
		requireSameTrace(t, tag, got, want)
		requireSameGraph(t, tag, got.Final, want.Final)
	}
}

// TestMarketExactModelMatchesReference re-runs the differential check
// under exact-revenue pricing, where every probe walks the O(n²)
// transit scan.
func TestMarketExactModelMatchesReference(t *testing.T) {
	cfg := diffConfig()
	cfg.Ticks = 2
	cfg.Batch = 5
	cfg.Model = core.RevenueExact
	cfg.Parallelism = 4
	got, err := Run(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := ReferenceMarket(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("ReferenceMarket: %v", err)
	}
	requireSameTrace(t, "exact", got, want)
	requireSameGraph(t, "exact", got.Final, want.Final)
}

// TestMarketParallelismInvariance locks the engine-side contract the
// experiments rely on: the full result — trace, counters and per-tick
// stats — is bit-identical at any worker count.
func TestMarketParallelismInvariance(t *testing.T) {
	cfg := diffConfig()
	cfg.Batch = 12
	var want *Result
	for _, workers := range []int{1, 4, 8} {
		cfg.Parallelism = workers
		res, err := Run(cfg, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		requireSameTrace(t, "parallelism", res, want)
		if len(res.Ticks) != len(want.Ticks) {
			t.Fatalf("workers=%d: tick counts %d vs %d", workers, len(res.Ticks), len(want.Ticks))
		}
		for i := range res.Ticks {
			if res.Ticks[i] != want.Ticks[i] {
				t.Fatalf("workers=%d: tick %d diverges:\n%+v\n%+v",
					workers, i, res.Ticks[i], want.Ticks[i])
			}
		}
	}
}

// TestMarketInvariants checks the structural promises of a run: every
// bid resolved exactly once, node accounting, fresh-quote regret,
// round bounds, and tick bookkeeping.
func TestMarketInvariants(t *testing.T) {
	cfg := diffConfig()
	cfg.Ticks = 4
	cfg.Batch = 10
	res, err := Run(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Trace) != cfg.Ticks*cfg.Batch {
		t.Fatalf("trace has %d bids, want %d", len(res.Trace), cfg.Ticks*cfg.Batch)
	}
	seen := make(map[[2]int]bool)
	admitted, withdrawn := 0, 0
	firstCommitOfRound := make(map[[2]int]bool)
	for _, bd := range res.Trace {
		key := [2]int{bd.Tick, bd.Index}
		if seen[key] {
			t.Fatalf("bid %v resolved twice", key)
		}
		seen[key] = true
		if bd.Round < 1 || bd.Round > cfg.MaxRounds {
			t.Fatalf("bid %v decided in round %d (max %d)", key, bd.Round, cfg.MaxRounds)
		}
		switch bd.Outcome {
		case Admitted:
			admitted++
			if bd.Node == graph.InvalidNode {
				t.Fatalf("admitted bid %v has no node", key)
			}
			rk := [2]int{bd.Tick, bd.Round}
			if !firstCommitOfRound[rk] {
				firstCommitOfRound[rk] = true
				if bd.Regret != 0 {
					t.Fatalf("first commit of tick %d round %d has regret %v (quote was fresh)",
						bd.Tick, bd.Round, bd.Regret)
				}
			}
			if bd.Objective < bd.Reserve {
				t.Fatalf("admitted bid %v priced below reserve: %v < %v", key, bd.Objective, bd.Reserve)
			}
		case Withdrawn:
			withdrawn++
			if bd.Node != graph.InvalidNode {
				t.Fatalf("withdrawn bid %v has node %d", key, bd.Node)
			}
			if !(bd.Objective < bd.Reserve) {
				t.Fatalf("withdrawn bid %v priced at/above reserve: %v ≥ %v", key, bd.Objective, bd.Reserve)
			}
		default:
			t.Fatalf("bid %v has outcome %v", key, bd.Outcome)
		}
	}
	if admitted != res.Admitted || withdrawn != res.Withdrawn {
		t.Fatalf("counters %d/%d, trace says %d/%d", res.Admitted, res.Withdrawn, admitted, withdrawn)
	}
	if res.Final.NumNodes() != cfg.SeedSize+admitted {
		t.Fatalf("final nodes = %d, want %d seed + %d admitted",
			res.Final.NumNodes(), cfg.SeedSize, admitted)
	}
	if len(res.Ticks) != cfg.Ticks {
		t.Fatalf("tick stats = %d, want %d", len(res.Ticks), cfg.Ticks)
	}
	for i, ts := range res.Ticks {
		if ts.Tick != i+1 {
			t.Fatalf("tick %d labelled %d", i, ts.Tick)
		}
		if ts.MaxRegret < 0 || ts.MaxRegret < ts.MeanRegret && ts.MeanRegret > 0 {
			t.Fatalf("tick %d regret stats inconsistent: mean %v max %v", i, ts.MeanRegret, ts.MaxRegret)
		}
	}
}

// TestMarketDeterministicPerSeed re-runs the engine on the same stream
// and requires identical results, including tick metrics.
func TestMarketDeterministicPerSeed(t *testing.T) {
	cfg := diffConfig()
	a, err := Run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSameTrace(t, "replay", a, b)
	for i := range a.Ticks {
		if a.Ticks[i] != b.Ticks[i] {
			t.Fatalf("tick %d diverges:\n%+v\n%+v", i, a.Ticks[i], b.Ticks[i])
		}
	}
}

// TestMarketEmptySeedStaysFragmented pins a real — and intended —
// difference from the sequential growth engine: a batch market opened
// over nothing never wires up. Tick 0's bids join unconnected (there is
// nothing to price), and every later bid faces an all-isolated cohort
// where no single channel reaches every recipient, so each greedy probe
// prices at −∞ (§II-C, d = +∞) and the empty strategy wins. Sequential
// arrival bootstraps connectivity one joiner at a time; a batch market
// needs a connected seed.
func TestMarketEmptySeedStaysFragmented(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = growth.SeedEmpty
	cfg.SeedSize = 0
	cfg.Ticks = 3
	cfg.Batch = 6
	cfg.Candidates = 0 // every node visible
	cfg.BudgetMin, cfg.BudgetMax = 20, 20
	res, err := Run(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Final.NumNodes() != 18 {
		t.Fatalf("final nodes = %d, want 18", res.Final.NumNodes())
	}
	if res.Final.NumChannels() != 0 {
		t.Fatalf("%d channels emerged: unreachable recipients should price every attachment at −∞",
			res.Final.NumChannels())
	}
}

// TestMarketTickStartVisibility checks the intra-tick information rule
// on a connected seed: bidders of one tick can only attach to nodes
// that existed when the tick opened, never to each other.
func TestMarketTickStartVisibility(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = growth.SeedStar
	cfg.SeedSize = 6
	cfg.Ticks = 3
	cfg.Batch = 5
	cfg.Candidates = 3
	res, err := Run(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Final.NumChannels() <= 5 {
		t.Fatalf("only %d channels over a connected seed", res.Final.NumChannels())
	}
	for _, bd := range res.Trace {
		tickStart := cfg.SeedSize + cfg.Batch*bd.Tick // reserves off: every bid admitted
		for _, a := range bd.Strategy {
			if int(a.Peer) >= tickStart {
				t.Fatalf("tick-%d bid attached to same-tick node %d (tick opened with %d nodes)",
					bd.Tick, a.Peer, tickStart)
			}
		}
	}
}

// TestMarketReserveWithdrawals drives reserves high enough that every
// bid withdraws, and checks the market stays empty-handed but coherent.
func TestMarketReserveWithdrawals(t *testing.T) {
	cfg := diffConfig()
	cfg.Ticks = 2
	cfg.Reserve = true
	cfg.ReserveMin, cfg.ReserveMax = 1e9, 1e9
	res, err := Run(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Admitted != 0 {
		t.Fatalf("admitted %d bids against an unmeetable reserve", res.Admitted)
	}
	if res.Withdrawn != cfg.Ticks*cfg.Batch {
		t.Fatalf("withdrawn %d, want %d", res.Withdrawn, cfg.Ticks*cfg.Batch)
	}
	if res.Final.NumNodes() != cfg.SeedSize {
		t.Fatalf("substrate grew to %d nodes despite full withdrawal", res.Final.NumNodes())
	}
	for _, bd := range res.Trace {
		if bd.Round != 1 {
			t.Fatalf("withdrawal deferred to round %d", bd.Round)
		}
	}
}

// TestMarketSingleRoundNeverReprices pins the MaxRounds=1 degenerate
// case: one-shot batch pricing, everything committed stale, no
// deferrals.
func TestMarketSingleRoundNeverReprices(t *testing.T) {
	cfg := diffConfig()
	cfg.Reserve = false
	cfg.MaxRounds = 1
	res, err := Run(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Repricings != 0 || res.Deferrals != 0 {
		t.Fatalf("one-round market re-priced %d / deferred %d", res.Repricings, res.Deferrals)
	}
	if res.Admitted != cfg.Ticks*cfg.Batch {
		t.Fatalf("admitted %d, want %d", res.Admitted, cfg.Ticks*cfg.Batch)
	}
}

// TestMarketTicksZero emits a single snapshot of the untouched seed.
func TestMarketTicksZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ticks = 0
	res, err := Run(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Ticks) != 1 || res.Ticks[0].Tick != 0 {
		t.Fatalf("tick stats %+v, want one tick-0 snapshot", res.Ticks)
	}
	if len(res.Trace) != 0 || res.Final.NumNodes() != cfg.SeedSize {
		t.Fatalf("empty run mutated state: %d bids, %d nodes", len(res.Trace), res.Final.NumNodes())
	}
}

func TestMarketConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ticks = -1 },
		func(c *Config) { c.Batch = -2 },
		func(c *Config) { c.MaxRounds = -1 },
		func(c *Config) { c.Seed = "torus" },
		func(c *Config) { c.BudgetMin = -1 },
		func(c *Config) { c.LockMin = math.NaN() },
		func(c *Config) { c.BudgetMin, c.BudgetMax = 10, 5 },
		func(c *Config) { c.RateMin, c.RateMax = 2, 1 },
		func(c *Config) { c.Reserve = true; c.ReserveMin, c.ReserveMax = 1, -1 },
		func(c *Config) { c.Params.OnChainCost = 0 },
		func(c *Config) { c.Seed = growth.SeedStar; c.SeedSize = 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestMarketBatchCommitMatchesSequential pins the fused commit path: a
// BatchCommit run must reproduce the sequential engine's every decision —
// outcomes, strategies, objectives, node identifiers, deferrals — and
// the identical final substrate. Only the regret fields differ (the
// fused fold never materializes the pre-commit snapshots regret is
// defined against, so batched bids report 0).
func TestMarketBatchCommitMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := diffConfig()
		seq, err := Run(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("sequential Run: %v", err)
		}
		cfg.BatchCommit = true
		bat, err := Run(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("batched Run: %v", err)
		}
		if len(bat.Trace) != len(seq.Trace) {
			t.Fatalf("trace length %d vs %d", len(bat.Trace), len(seq.Trace))
		}
		for i, g := range bat.Trace {
			w := seq.Trace[i]
			if g.Tick != w.Tick || g.Index != w.Index || g.Outcome != w.Outcome ||
				g.Round != w.Round || g.Node != w.Node || !g.Strategy.Equal(w.Strategy) ||
				g.Objective != w.Objective || g.Utility != w.Utility || g.Reserve != w.Reserve {
				t.Fatalf("bid %d diverges:\n batched    %+v\n sequential %+v", i, g, w)
			}
			if g.Regret != 0 {
				t.Fatalf("bid %d: batched regret %v, want 0", i, g.Regret)
			}
		}
		if bat.Admitted != seq.Admitted || bat.Withdrawn != seq.Withdrawn || bat.Deferrals != seq.Deferrals {
			t.Fatalf("counters diverge: %d/%d/%d vs %d/%d/%d",
				bat.Admitted, bat.Withdrawn, bat.Deferrals,
				seq.Admitted, seq.Withdrawn, seq.Deferrals)
		}
		requireSameGraph(t, "batch-commit", bat.Final, seq.Final)
	}
}

// TestMarketBatchCommitMatchesReference runs the full differential in
// batch mode: the fused engine against the from-scratch oracle replaying
// the identical stream with looped plain-graph commits — bit for bit,
// regrets included (both zero).
func TestMarketBatchCommitMatchesReference(t *testing.T) {
	for _, seedKind := range []growth.SeedKind{growth.SeedEmpty, growth.SeedBA} {
		cfg := diffConfig()
		cfg.Seed = seedKind
		cfg.Batch = 16 // wide enough that rounds commit real cohorts
		cfg.BatchCommit = true
		cfg.Parallelism = 4
		got, err := Run(cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: Run: %v", seedKind, err)
		}
		want, err := ReferenceMarket(cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: ReferenceMarket: %v", seedKind, err)
		}
		requireSameTrace(t, string(seedKind), got, want)
		requireSameGraph(t, string(seedKind), got.Final, want.Final)
	}
}

// TestMarketBatchCommitSubstrate checks the fused fold leaves the live
// all-pairs structure bit-identical to a from-scratch BFS of the final
// substrate (the engine's structure backs the per-tick metric scans).
func TestMarketBatchCommitSubstrate(t *testing.T) {
	cfg := diffConfig()
	cfg.BatchCommit = true
	cfg.Ticks = 2
	cfg.Batch = 12
	res, err := Run(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := res.Final.AllPairsBFS()
	// The final tick stats were computed from the live structure; since
	// the engine's structure is internal, re-derive the check through
	// the epoch scan: recompute from the fresh structure and compare.
	alive := make([]graph.NodeID, res.Final.NumNodes())
	for v := range alive {
		alive[v] = graph.NodeID(v)
	}
	ep := growth.ComputeEpoch(res.Final, want, alive, len(res.Ticks))
	last := res.Ticks[len(res.Ticks)-1].Epoch
	if ep.Diameter != last.Diameter || ep.MeanDistance != last.MeanDistance ||
		ep.Routable != last.Routable || ep.Efficiency != last.Efficiency {
		t.Fatalf("live metrics diverge from rebuild: %+v vs %+v", last, ep)
	}
}
