package traffic

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// TestEstimateDemandMoreRejections covers the rejection branches the
// base validation test leaves out: negative node counts, negative
// durations, and senders below the index range.
func TestEstimateDemandMoreRejections(t *testing.T) {
	good := []Tx{{From: 0, To: 1, Amount: 1}}
	if _, err := EstimateDemand(-3, good, 1, 0); !errors.Is(err, ErrBadDemand) {
		t.Errorf("negative nodes = %v, want ErrBadDemand", err)
	}
	if _, err := EstimateDemand(2, good, -1, 0); !errors.Is(err, ErrBadDemand) {
		t.Errorf("negative duration = %v, want ErrBadDemand", err)
	}
	if _, err := EstimateDemand(2, []Tx{{From: -1, To: 1}}, 1, 0); !errors.Is(err, ErrBadDemand) {
		t.Errorf("negative sender = %v, want ErrBadDemand", err)
	}
}

// TestEstimateDemandEmptyLog pins the no-observations case: rates are
// zero and rows carry no mass, but the structure is well formed.
func TestEstimateDemandEmptyLog(t *testing.T) {
	d, err := EstimateDemand(3, nil, 10, 0)
	if err != nil {
		t.Fatalf("EstimateDemand: %v", err)
	}
	if d.TotalRate() != 0 {
		t.Errorf("TotalRate = %v, want 0", d.TotalRate())
	}
	if len(d.P) != 3 || len(d.Rates) != 3 {
		t.Errorf("shape = (%d,%d), want (3,3)", len(d.P), len(d.Rates))
	}
}

// TestNewUniformDemandEmptyGraph rejects a demand over zero nodes.
func TestNewUniformDemandEmptyGraph(t *testing.T) {
	if _, err := NewUniformDemand(graph.New(0), txdist.Uniform{}, 1); !errors.Is(err, ErrBadDemand) {
		t.Errorf("NewUniformDemand on empty graph = %v, want ErrBadDemand", err)
	}
}

// TestGeneratorSkipsDeadSenders drives a demand where one sender has an
// all-zero recipient row: Next must keep the stream well-formed by
// resampling, never emitting a self-payment or a dead pair.
func TestGeneratorSkipsDeadSenders(t *testing.T) {
	g := graph.Star(3, 1) // hub + 3 leaves
	d, err := NewDemand(g, txdist.Uniform{}, []float64{1, 0, 1, 1})
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	// Zero out sender 2's row by hand: it still has positive rate, so the
	// generator will draw it and must skip to a live sender.
	for r := range d.P[2] {
		d.P[2][r] = 0
	}
	gen, err := NewGenerator(d, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 200; i++ {
		tx := gen.Next()
		if tx.From == tx.To {
			t.Fatalf("self payment emitted: %+v", tx)
		}
		if tx.From == 2 {
			t.Fatalf("dead sender emitted: %+v", tx)
		}
	}
}

// TestPoissonCountEdges covers the non-positive-λ guard and the
// normal-approximation branch used for large λ.
func TestPoissonCountEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if got := PoissonCount(0, rng); got != 0 {
		t.Errorf("PoissonCount(0) = %d, want 0", got)
	}
	if got := PoissonCount(-3, rng); got != 0 {
		t.Errorf("PoissonCount(-3) = %d, want 0", got)
	}
	// Large λ takes the normal branch; the sample must stay non-negative
	// and land within a loose ±6σ window.
	for i := 0; i < 100; i++ {
		got := PoissonCount(1e4, rng)
		if got < 0 {
			t.Fatalf("negative count %d", got)
		}
		if got < 9000 || got > 11000 {
			t.Fatalf("PoissonCount(1e4) = %d, far outside ±6σ", got)
		}
	}
}
