package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// Sampler is the shared demand plane of a replay: an immutable object,
// built once per run, that every shard draws (sender, receiver) pairs
// from concurrently. All per-draw mutable state lives in the Scratch a
// shard obtains from NewScratch, so a single Sampler is safe for any
// number of readers and per-shard memory is O(1)–O(n) workspace instead
// of the O(n²) dense CDF matrix the pre-sampler generator materialised
// per shard (~800 MB at n=10k).
//
// Determinism contract: the Kind is part of a replay's result identity.
// Two samplers over the same distribution but of different kinds (say
// dense-cdf and sparse-degree) draw the same marginals yet consume the
// random stream differently, so they produce different — each internally
// deterministic — event sequences. Within one kind, draws are a pure
// function of (sampler inputs, rng stream); scratch caching never
// changes a drawn value.
type Sampler interface {
	// Kind names the sampling algorithm — part of the result identity.
	Kind() string
	// Nodes reports the number of users the plane covers.
	Nodes() int
	// TotalRate is Σ_s N_s, the merged Poisson intensity.
	TotalRate() float64
	// NewScratch allocates one shard's private mutable state (may be nil
	// for stateless samplers).
	NewScratch() Scratch
	// SampleSender draws a sender proportionally to the rates, or -1
	// when the plane carries no mass.
	SampleSender(rng *rand.Rand, sc Scratch) int
	// SampleReceiver draws a recipient for sender s, or -1 when s's row
	// carries no mass. Implementations may return s itself only if the
	// underlying row does; callers skip such events.
	SampleReceiver(rng *rand.Rand, sc Scratch, s int) int
}

// Scratch is a sampler's per-shard mutable state; its concrete type is
// private to the Sampler that allocated it.
type Scratch any

// RowProber is implemented by samplers that can report the exact
// conditional probability they draw receivers from — the differential
// surface the sparse planes are fuzzed against the dense txdist rows on.
type RowProber interface {
	// RowProb returns P(receiver = r | sender = s) under this sampler.
	RowProb(sc Scratch, s, r int) float64
}

// NewSampler builds the cheapest exact sampler for the given recipient
// distribution over g: structure-aware sparse planes (O(n) memory, O(1)
// or O(log n) draws) for the families that admit them, and the dense CDF
// plane — materialised once, not per shard — for everything else.
func NewSampler(g *graph.Graph, dist txdist.Distribution, rates []float64) (Sampler, error) {
	if len(rates) != g.NumNodes() {
		return nil, fmt.Errorf("%w: %d rates for %d nodes", ErrBadDemand, len(rates), g.NumNodes())
	}
	switch d := dist.(type) {
	case txdist.Uniform:
		return NewUniformSampler(rates)
	case txdist.DegreeProportional:
		return NewWeightedSampler("sparse-degree", rates, d.Weights(g))
	case txdist.DistanceDecay:
		return NewDistanceDecaySampler(g, d.Decay, rates)
	default:
		demand, err := NewDemand(g, dist, rates)
		if err != nil {
			return nil, err
		}
		return NewCDFSampler(demand)
	}
}

// aliasTable is a Walker/Vose alias structure: O(n) construction, O(1)
// draws, two rng consumptions (Intn, Float64) per draw. A zero-mass
// table draws -1 without consuming the stream.
type aliasTable struct {
	prob  []float64
	alias []int32
	total float64
}

// newAliasTable validates the weights (finite, non-negative) and builds
// the table with Vose's stack pairing, which is deterministic in the
// weight order.
func newAliasTable(w []float64) (aliasTable, error) {
	var t aliasTable
	var total float64
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return t, fmt.Errorf("%w: weight[%d] = %v", ErrBadDemand, i, x)
		}
		total += x
	}
	t.total = total
	n := len(w)
	if n == 0 || !(total > 0) {
		t.total = 0
		return t, nil
	}
	t.prob = make([]float64, n)
	t.alias = make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers on either stack carry probability 1.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

func (t *aliasTable) sample(rng *rand.Rand) int {
	if !(t.total > 0) {
		return -1
	}
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// CDFSampler is the dense plane: per-sender cumulative rows drawn by
// binary search. It consumes the random stream exactly as the original
// per-shard generator did — one Float64 per CDF draw — so replays over
// it are bit-identical to the pre-sampler engine, which is why it is
// both the default for arbitrary distributions and the differential
// oracle the sparse planes are tested against. Memory is O(n²), paid
// once per replay instead of once per shard.
type CDFSampler struct {
	senderCDF  []float64
	receiveCDF [][]float64
}

var _ Sampler = (*CDFSampler)(nil)
var _ RowProber = (*CDFSampler)(nil)

// NewCDFSampler builds the dense plane from a demand matrix, rejecting
// NaN, negative or infinite weights anywhere in it.
func NewCDFSampler(d *Demand) (*CDFSampler, error) {
	if len(d.P) != len(d.Rates) {
		return nil, fmt.Errorf("%w: %d rows for %d rates", ErrBadDemand, len(d.P), len(d.Rates))
	}
	senderCDF, err := cumulative(d.Rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	receiveCDF := make([][]float64, len(d.P))
	for s := range d.P {
		if receiveCDF[s], err = cumulative(d.P[s]); err != nil {
			return nil, fmt.Errorf("row %d: %w", s, err)
		}
	}
	return &CDFSampler{senderCDF: senderCDF, receiveCDF: receiveCDF}, nil
}

// Kind implements Sampler.
func (c *CDFSampler) Kind() string { return "dense-cdf" }

// Nodes implements Sampler.
func (c *CDFSampler) Nodes() int { return len(c.senderCDF) }

// TotalRate implements Sampler.
func (c *CDFSampler) TotalRate() float64 {
	if len(c.senderCDF) == 0 {
		return 0
	}
	return c.senderCDF[len(c.senderCDF)-1]
}

// NewScratch implements Sampler; the dense plane keeps no mutable state.
func (c *CDFSampler) NewScratch() Scratch { return nil }

// SampleSender implements Sampler.
func (c *CDFSampler) SampleSender(rng *rand.Rand, _ Scratch) int {
	return sampleCDF(c.senderCDF, rng)
}

// SampleReceiver implements Sampler.
func (c *CDFSampler) SampleReceiver(rng *rand.Rand, _ Scratch, s int) int {
	if s < 0 || s >= len(c.receiveCDF) {
		return -1
	}
	return sampleCDF(c.receiveCDF[s], rng)
}

// RowProb implements RowProber.
func (c *CDFSampler) RowProb(_ Scratch, s, r int) float64 {
	if s < 0 || s >= len(c.receiveCDF) {
		return 0
	}
	row := c.receiveCDF[s]
	if r < 0 || r >= len(row) {
		return 0
	}
	total := row[len(row)-1]
	if !(total > 0) {
		return 0
	}
	mass := row[r]
	if r > 0 {
		mass -= row[r-1]
	}
	return mass / total
}

// AliasSampler is the dense O(1) plane: one alias table per sender row
// plus one over the rates. Same O(n²) memory class as CDFSampler — built
// once per replay, shared by all shards — but constant-time draws
// replace the O(log n) binary searches, which matters at millions of
// events. Kind "dense-alias": it consumes two rng values per draw where
// the CDF plane consumes one, so it is a distinct result identity.
type AliasSampler struct {
	send aliasTable
	rows []aliasTable
}

var _ Sampler = (*AliasSampler)(nil)

// NewAliasSampler builds the dense alias plane from a demand matrix.
func NewAliasSampler(d *Demand) (*AliasSampler, error) {
	if len(d.P) != len(d.Rates) {
		return nil, fmt.Errorf("%w: %d rows for %d rates", ErrBadDemand, len(d.P), len(d.Rates))
	}
	send, err := newAliasTable(d.Rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	rows := make([]aliasTable, len(d.P))
	for s := range d.P {
		if rows[s], err = newAliasTable(d.P[s]); err != nil {
			return nil, fmt.Errorf("row %d: %w", s, err)
		}
	}
	return &AliasSampler{send: send, rows: rows}, nil
}

// Kind implements Sampler.
func (a *AliasSampler) Kind() string { return "dense-alias" }

// Nodes implements Sampler.
func (a *AliasSampler) Nodes() int { return len(a.rows) }

// TotalRate implements Sampler.
func (a *AliasSampler) TotalRate() float64 { return a.send.total }

// NewScratch implements Sampler.
func (a *AliasSampler) NewScratch() Scratch { return nil }

// SampleSender implements Sampler.
func (a *AliasSampler) SampleSender(rng *rand.Rand, _ Scratch) int {
	return a.send.sample(rng)
}

// SampleReceiver implements Sampler.
func (a *AliasSampler) SampleReceiver(rng *rand.Rand, _ Scratch, s int) int {
	if s < 0 || s >= len(a.rows) {
		return -1
	}
	return a.rows[s].sample(rng)
}

// UniformSampler is the sparse plane for txdist.Uniform: every other
// node is an equally likely recipient, drawn in O(1) from O(n) memory
// (the sender alias table is the only allocation).
type UniformSampler struct {
	send aliasTable
	n    int
}

var _ Sampler = (*UniformSampler)(nil)
var _ RowProber = (*UniformSampler)(nil)

// NewUniformSampler builds the sparse uniform plane over the sender
// rates.
func NewUniformSampler(rates []float64) (*UniformSampler, error) {
	send, err := newAliasTable(rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	return &UniformSampler{send: send, n: len(rates)}, nil
}

// Kind implements Sampler.
func (u *UniformSampler) Kind() string { return "sparse-uniform" }

// Nodes implements Sampler.
func (u *UniformSampler) Nodes() int { return u.n }

// TotalRate implements Sampler.
func (u *UniformSampler) TotalRate() float64 { return u.send.total }

// NewScratch implements Sampler.
func (u *UniformSampler) NewScratch() Scratch { return nil }

// SampleSender implements Sampler.
func (u *UniformSampler) SampleSender(rng *rand.Rand, _ Scratch) int {
	return u.send.sample(rng)
}

// SampleReceiver implements Sampler: a single Intn over the n−1 nodes
// other than s, shifted past the excluded sender — the exact conditional
// distribution, no rejection.
func (u *UniformSampler) SampleReceiver(rng *rand.Rand, _ Scratch, s int) int {
	if s < 0 || s >= u.n || u.n < 2 {
		return -1
	}
	r := rng.Intn(u.n - 1)
	if r >= s {
		r++
	}
	return r
}

// RowProb implements RowProber.
func (u *UniformSampler) RowProb(_ Scratch, s, r int) float64 {
	if s < 0 || s >= u.n || r < 0 || r >= u.n || r == s || u.n < 2 {
		return 0
	}
	return 1 / float64(u.n-1)
}

// WeightedSampler is the sparse plane for sender-independent recipient
// weights (txdist.DegreeProportional): one global alias table over the
// weights, with the excluded sender handled by rejection. A draw costs
// O(1) expected — the retry probability is w[s]/Σw, vanishing for any
// non-degenerate row — from O(n) memory.
type WeightedSampler struct {
	kind string
	send aliasTable
	recv aliasTable
	w    []float64
}

var _ Sampler = (*WeightedSampler)(nil)
var _ RowProber = (*WeightedSampler)(nil)

// NewWeightedSampler builds a sparse weighted plane: rates drive the
// sender alias, weights the shared recipient alias.
func NewWeightedSampler(kind string, rates, weights []float64) (*WeightedSampler, error) {
	if len(weights) != len(rates) {
		return nil, fmt.Errorf("%w: %d weights for %d rates", ErrBadDemand, len(weights), len(rates))
	}
	send, err := newAliasTable(rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	recv, err := newAliasTable(weights)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	return &WeightedSampler{
		kind: kind,
		send: send,
		recv: recv,
		w:    append([]float64(nil), weights...),
	}, nil
}

// Kind implements Sampler.
func (w *WeightedSampler) Kind() string { return w.kind }

// Nodes implements Sampler.
func (w *WeightedSampler) Nodes() int { return len(w.w) }

// TotalRate implements Sampler.
func (w *WeightedSampler) TotalRate() float64 { return w.send.total }

// NewScratch implements Sampler.
func (w *WeightedSampler) NewScratch() Scratch { return nil }

// SampleSender implements Sampler.
func (w *WeightedSampler) SampleSender(rng *rand.Rand, _ Scratch) int {
	return w.send.sample(rng)
}

// SampleReceiver implements Sampler. The degenerate all-mass-on-sender
// row returns -1 rather than looping forever.
func (w *WeightedSampler) SampleReceiver(rng *rand.Rand, _ Scratch, s int) int {
	if s < 0 || s >= len(w.w) {
		return -1
	}
	if !(w.recv.total-w.w[s] > 0) {
		return -1
	}
	for {
		if r := w.recv.sample(rng); r != s {
			return r
		}
	}
}

// RowProb implements RowProber.
func (w *WeightedSampler) RowProb(_ Scratch, s, r int) float64 {
	if s < 0 || s >= len(w.w) || r < 0 || r >= len(w.w) || r == s {
		return 0
	}
	rest := w.recv.total - w.w[s]
	if !(rest > 0) {
		return 0
	}
	return w.w[r] / rest
}

// DistanceDecaySampler is the sparse plane for txdist.DistanceDecay:
// recipients weighted decay^d(s,·). It stores its own CSR copy of the
// topology (O(n+m)); per-sender rows — BFS visit order bucketed by
// distance plus a per-distance cumulative mass — are built lazily on a
// sender's first draw and published into the plane itself with an
// atomic pointer, so every shard shares one copy and each row's BFS
// runs at most once per replay (two shards racing on the same row both
// build identical content; one publishes). Worst-case row memory is
// ~4·n bytes per distinct sender — an int32 plane an order denser than
// the float64 CDF matrix, and paid once, not per shard. A draw is a
// binary search over the ≤ diameter buckets plus one Intn within the
// bucket (uniform within a distance class is exact, since every member
// carries the same weight decay^d). Draws consume exactly two rng
// values regardless of cache state, so row sharing never perturbs the
// stream.
type DistanceDecaySampler struct {
	send  aliasTable
	decay float64
	n     int
	offs  []int32
	adj   []int32
	rows  []atomic.Pointer[decayRow]
}

var _ Sampler = (*DistanceDecaySampler)(nil)
var _ RowProber = (*DistanceDecaySampler)(nil)

// decayRow is one sender's cached distance structure: nodes in BFS visit
// order (grouped by distance 1..D, source excluded), bucket offsets per
// distance, and the cumulative mass decay^d·|bucket d|.
type decayRow struct {
	order     []int32
	bucketOff []int32
	bucketCDF []float64
}

// decayScratch is one shard's BFS workspace for building rows the plane
// has not published yet.
type decayScratch struct {
	seen  []int32
	queue []int32
	epoch int32
}

// NewDistanceDecaySampler builds the sparse distance plane for g. decay
// must be positive and finite.
func NewDistanceDecaySampler(g *graph.Graph, decay float64, rates []float64) (*DistanceDecaySampler, error) {
	if !(decay > 0) || math.IsInf(decay, 0) {
		return nil, fmt.Errorf("%w: distance decay %v", ErrBadDemand, decay)
	}
	n := g.NumNodes()
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d nodes", ErrBadDemand, len(rates), n)
	}
	send, err := newAliasTable(rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	deg := make([]int32, n)
	g.ForEachEdge(func(e graph.Edge) bool {
		deg[e.From]++
		return true
	})
	offs := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + deg[v]
	}
	adj := make([]int32, offs[n])
	fill := append([]int32(nil), offs[:n]...)
	g.ForEachEdge(func(e graph.Edge) bool {
		adj[fill[e.From]] = int32(e.To)
		fill[e.From]++
		return true
	})
	return &DistanceDecaySampler{
		send:  send,
		decay: decay,
		n:     n,
		offs:  offs,
		adj:   adj,
		rows:  make([]atomic.Pointer[decayRow], n),
	}, nil
}

// Kind implements Sampler.
func (d *DistanceDecaySampler) Kind() string { return "sparse-distance" }

// Nodes implements Sampler.
func (d *DistanceDecaySampler) Nodes() int { return d.n }

// TotalRate implements Sampler.
func (d *DistanceDecaySampler) TotalRate() float64 { return d.send.total }

// NewScratch implements Sampler.
func (d *DistanceDecaySampler) NewScratch() Scratch {
	return &decayScratch{
		seen:  make([]int32, d.n),
		queue: make([]int32, d.n),
	}
}

// SampleSender implements Sampler.
func (d *DistanceDecaySampler) SampleSender(rng *rand.Rand, _ Scratch) int {
	return d.send.sample(rng)
}

// SampleReceiver implements Sampler: bucket by CDF inversion over the
// distance classes, then uniform within the bucket.
func (d *DistanceDecaySampler) SampleReceiver(rng *rand.Rand, sc Scratch, s int) int {
	row := d.row(sc, s)
	if row == nil || len(row.order) == 0 {
		return -1
	}
	mass := row.bucketCDF[len(row.bucketCDF)-1]
	if !(mass > 0) {
		return -1
	}
	x := rng.Float64() * mass
	lo, hi := 0, len(row.bucketCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if row.bucketCDF[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	span := int(row.bucketOff[lo+1] - row.bucketOff[lo])
	return int(row.order[int(row.bucketOff[lo])+rng.Intn(span)])
}

// RowProb implements RowProber. Test-path only: it scans the row for r.
func (d *DistanceDecaySampler) RowProb(sc Scratch, s, r int) float64 {
	row := d.row(sc, s)
	if row == nil || len(row.order) == 0 || r == s {
		return 0
	}
	mass := row.bucketCDF[len(row.bucketCDF)-1]
	if !(mass > 0) {
		return 0
	}
	for b := 0; b+1 < len(row.bucketOff); b++ {
		for _, v := range row.order[row.bucketOff[b]:row.bucketOff[b+1]] {
			if int(v) == r {
				// Bucket b holds the nodes at distance b+1 (BFS levels
				// are contiguous).
				return math.Pow(d.decay, float64(b+1)) / mass
			}
		}
	}
	return 0
}

// row returns s's distance structure, building it with a BFS over the
// sampler's CSR and publishing it into the shared plane on first use.
// Row content is a pure function of (graph, s), so which shard builds
// it — or whether two build it at once — never affects drawn values.
func (d *DistanceDecaySampler) row(scr Scratch, s int) *decayRow {
	if s < 0 || s >= d.n {
		return nil
	}
	if row := d.rows[s].Load(); row != nil {
		return row
	}
	sc := scr.(*decayScratch)
	sc.epoch++
	epoch := sc.epoch
	sc.seen[s] = epoch
	sc.queue[0] = int32(s)
	head, tail := 0, 1
	row := &decayRow{bucketOff: []int32{0}}
	var mass float64
	for depth := 1; head < tail; depth++ {
		// Expand the whole current level; everything discovered is the
		// next one, i.e. the nodes at exactly distance depth from s.
		for levelEnd := tail; head < levelEnd; {
			v := sc.queue[head]
			head++
			for _, w := range d.adj[d.offs[v]:d.offs[v+1]] {
				if sc.seen[w] != epoch {
					sc.seen[w] = epoch
					sc.queue[tail] = w
					tail++
				}
			}
		}
		if found := tail - int(row.bucketOff[len(row.bucketOff)-1]) - 1; found > 0 {
			mass += math.Pow(d.decay, float64(depth)) * float64(found)
			row.bucketOff = append(row.bucketOff, int32(tail-1))
			row.bucketCDF = append(row.bucketCDF, mass)
		}
	}
	row.order = make([]int32, tail-1)
	copy(row.order, sc.queue[1:tail])
	if !d.rows[s].CompareAndSwap(nil, row) {
		return d.rows[s].Load()
	}
	return row
}
