// Package traffic models PCN transaction workloads (§II-B): per-sender
// Poisson transaction processes, demand matrices built from a transaction
// distribution, and the edge-rate estimator λe = N·pe computed through
// pair-probability-weighted edge betweenness (eq. 2).
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// ErrBadDemand reports an inconsistent demand specification.
var ErrBadDemand = errors.New("traffic: invalid demand")

// Demand couples the transaction distribution p_trans with per-sender
// transaction rates N_s. The paper's N is TotalRate(); the per-pair rate
// is Rates[s]·P[s][r].
type Demand struct {
	// P[s][r] is the probability that a transaction from s targets r.
	P [][]float64
	// Rates[s] is N_s, the expected number of transactions s emits per
	// unit of time.
	Rates []float64
}

// NewDemand builds a demand matrix for g from a transaction distribution
// and per-sender rates. rates must have one entry per node.
func NewDemand(g *graph.Graph, d txdist.Distribution, rates []float64) (*Demand, error) {
	n := g.NumNodes()
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d nodes", ErrBadDemand, len(rates), n)
	}
	for s, r := range rates {
		if r < 0 || math.IsNaN(r) {
			return nil, fmt.Errorf("%w: rate[%d] = %v", ErrBadDemand, s, r)
		}
	}
	return &Demand{
		P:     txdist.Matrix(g, d),
		Rates: append([]float64(nil), rates...),
	}, nil
}

// NewUniformDemand builds a demand matrix where every node emits the same
// rate totalRate/n, the symmetric setting of §IV.
func NewUniformDemand(g *graph.Graph, d txdist.Distribution, totalRate float64) (*Demand, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadDemand)
	}
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = totalRate / float64(n)
	}
	return NewDemand(g, d, rates)
}

// TotalRate returns N = Σ_s N_s.
func (d *Demand) TotalRate() float64 {
	var total float64
	for _, r := range d.Rates {
		total += r
	}
	return total
}

// PairRate returns the expected number of s→r transactions per unit time.
func (d *Demand) PairRate(s, r graph.NodeID) float64 {
	if s < 0 || r < 0 || int(s) >= len(d.Rates) || int(r) >= len(d.P[s]) {
		return 0
	}
	return d.Rates[s] * d.P[s][r]
}

// PairWeight adapts the demand to the betweenness pair-weight interface:
// w(s,r) = N_s·p_trans(s,r), so that weighted edge betweenness equals the
// edge transaction rate λe of §II-B.
func (d *Demand) PairWeight() graph.PairWeight {
	return func(s, r graph.NodeID) float64 { return d.PairRate(s, r) }
}

// EdgeRates estimates λe for every live directed edge of g (eq. 2 scaled
// by sender rates): λe = Σ_{s,r} N_s·p_trans(s,r)·me(s,r)/m(s,r).
func (d *Demand) EdgeRates(g *graph.Graph) []float64 {
	return g.EdgeBetweenness(d.PairWeight())
}

// NodeTransitRates estimates, for every node v, the rate of transactions
// routed through v as an intermediary — the revenue driver of §IV
// (assumption 1): E^rev_v = NodeTransitRates[v]·favg.
func (d *Demand) NodeTransitRates(g *graph.Graph) []float64 {
	return g.NodeBetweenness(d.PairWeight())
}

// Tx is one generated transaction.
type Tx struct {
	// Time is the event time in workload time units.
	Time float64
	// From and To are the endpoints; From emits, To receives.
	From, To graph.NodeID
	// Amount is the transaction size.
	Amount float64
}

// SizeSampler draws transaction sizes; fee.SizeDist satisfies it.
type SizeSampler interface {
	Sample(rng *rand.Rand) float64
}

// Generator produces a merged Poisson stream of transactions: arrival
// times are exponential with the total demand rate, each event picks a
// sender proportionally to N_s and a recipient according to p_trans.
// Draws go through a Sampler plane — possibly shared with other
// generators — while all mutable state (rng, clock, sampler scratch)
// is private to the generator.
type Generator struct {
	sampler   Sampler
	scratch   Scratch
	sizes     SizeSampler
	rng       *rand.Rand
	now       float64
	totalRate float64
}

// NewGenerator builds a transaction generator over the given demand on a
// private dense-CDF plane — the historical stream: it consumes the rng
// exactly as every replay before the sampler refactor did. The generator
// owns no goroutines; call Next for successive events.
func NewGenerator(d *Demand, sizes SizeSampler, rng *rand.Rand) (*Generator, error) {
	sampler, err := NewCDFSampler(d)
	if err != nil {
		return nil, err
	}
	return NewGeneratorFromSampler(sampler, sizes, rng)
}

// NewGeneratorFromSampler builds a generator over an existing sampler
// plane. The sampler may be shared across generators (one per shard);
// only the scratch this call allocates is touched by Next.
func NewGeneratorFromSampler(sampler Sampler, sizes SizeSampler, rng *rand.Rand) (*Generator, error) {
	total := sampler.TotalRate()
	if !(total > 0) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("%w: total rate %v", ErrBadDemand, total)
	}
	return &Generator{
		sampler:   sampler,
		scratch:   sampler.NewScratch(),
		sizes:     sizes,
		rng:       rng,
		totalRate: total,
	}, nil
}

// Next returns the next transaction in the stream. Events without a valid
// recipient (a sender whose distribution row is all zero) are skipped
// internally; Next always returns a well-formed transaction.
func (g *Generator) Next() Tx {
	for {
		g.now += g.rng.ExpFloat64() / g.totalRate
		s := g.sampler.SampleSender(g.rng, g.scratch)
		if s < 0 {
			continue
		}
		r := g.sampler.SampleReceiver(g.rng, g.scratch, s)
		if r < 0 || r == s {
			continue
		}
		amount := 0.0
		if g.sizes != nil {
			amount = g.sizes.Sample(g.rng)
		}
		return Tx{
			Time:   g.now,
			From:   graph.NodeID(s),
			To:     graph.NodeID(r),
			Amount: amount,
		}
	}
}

// Take returns the next n transactions.
func (g *Generator) Take(n int) []Tx {
	txs := make([]Tx, n)
	for i := range txs {
		txs[i] = g.Next()
	}
	return txs
}

// Now reports the generator's current clock.
func (g *Generator) Now() float64 { return g.now }

// PoissonCount samples a Poisson(λ) variate. Knuth's method is used for
// small λ and a normal approximation beyond, which is accurate to well
// under the noise floor of the experiments that use it.
func PoissonCount(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// cumulative folds weights into a CDF, rejecting NaN, negative and
// infinite entries — a single poisoned weight would otherwise corrupt
// every draw after it silently. Zero weights contribute exactly nothing
// to the running sum, so validated inputs produce the same bits the
// historical skip-non-positive fold did.
func cumulative(weights []float64) ([]float64, error) {
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrBadDemand, i, w)
		}
		sum += w
		cdf[i] = sum
	}
	return cdf, nil
}

// sampleCDF draws an index proportionally to the increments of cdf, or -1
// when the total mass is zero, NaN or infinite (a malformed CDF must not
// reach the binary search: with a NaN total every comparison is false and
// the search would deterministically return a wrong index).
func sampleCDF(cdf []float64, rng *rand.Rand) int {
	if len(cdf) == 0 {
		return -1
	}
	total := cdf[len(cdf)-1]
	if !(total > 0) || math.IsInf(total, 0) {
		return -1
	}
	x := rng.Float64() * total
	// Binary search for the first index with cdf[i] > x.
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
