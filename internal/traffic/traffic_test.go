package traffic

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func uniformRates(n int, per float64) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = per
	}
	return rates
}

func TestNewDemandValidation(t *testing.T) {
	g := graph.Star(3, 1)
	if _, err := NewDemand(g, txdist.Uniform{}, []float64{1, 2}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("short rates error = %v, want ErrBadDemand", err)
	}
	if _, err := NewDemand(g, txdist.Uniform{}, []float64{1, 1, -1, 1}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("negative rate error = %v, want ErrBadDemand", err)
	}
	if _, err := NewDemand(g, txdist.Uniform{}, uniformRates(4, 1)); err != nil {
		t.Fatalf("valid demand rejected: %v", err)
	}
}

func TestTotalAndPairRate(t *testing.T) {
	g := graph.Star(3, 1)
	d, err := NewDemand(g, txdist.Uniform{}, []float64{4, 2, 2, 2})
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	if got := d.TotalRate(); got != 10 {
		t.Fatalf("TotalRate = %v, want 10", got)
	}
	// Node 0 (center) sends uniformly to 3 leaves at rate 4: 4/3 each.
	if got := d.PairRate(0, 1); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("PairRate(0,1) = %v, want 4/3", got)
	}
	if got := d.PairRate(0, 0); got != 0 {
		t.Fatalf("PairRate(0,0) = %v, want 0", got)
	}
	if got := d.PairRate(-1, 0); got != 0 {
		t.Fatalf("PairRate out of range = %v, want 0", got)
	}
}

func TestNewUniformDemand(t *testing.T) {
	g := graph.Circle(5, 1)
	d, err := NewUniformDemand(g, txdist.Uniform{}, 10)
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	for s, r := range d.Rates {
		if math.Abs(r-2) > 1e-12 {
			t.Fatalf("rate[%d] = %v, want 2", s, r)
		}
	}
	if _, err := NewUniformDemand(graph.New(0), txdist.Uniform{}, 1); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("empty graph error = %v, want ErrBadDemand", err)
	}
}

func TestEdgeRatesStar(t *testing.T) {
	// Star with 3 leaves, uniform distribution, every node sending rate 1.
	// Leaf→leaf traffic (2 hops) crosses (leaf,center) and (center,leaf);
	// leaf→center and center→leaf traffic crosses one edge.
	// Edge (leaf1→center): sources leaf1 targeting center (p=1/3) and
	// targeting the two other leaves (2/3): λ = 1.
	g := graph.Star(3, 1)
	d, err := NewDemand(g, txdist.Uniform{}, uniformRates(4, 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	rates := d.EdgeRates(g)
	leafOut := g.EdgesBetween(1, 0)[0]
	if got := rates[leafOut]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("λ(leaf→center) = %v, want 1", got)
	}
	// Edge (center→leaf1): center targets leaf1 (1/3) plus the two other
	// leaves routing to leaf1 (2 sources × 1/3): λ = 1.
	centerOut := g.EdgesBetween(0, 1)[0]
	if got := rates[centerOut]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("λ(center→leaf) = %v, want 1", got)
	}
}

func TestNodeTransitRatesStar(t *testing.T) {
	// Only the center carries transit traffic: 3·2 ordered leaf pairs at
	// rate 1·(1/3) each = 2.
	g := graph.Star(3, 1)
	d, err := NewDemand(g, txdist.Uniform{}, uniformRates(4, 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	transit := d.NodeTransitRates(g)
	if got := transit[0]; math.Abs(got-2) > 1e-9 {
		t.Fatalf("center transit = %v, want 2", got)
	}
	for leaf := 1; leaf <= 3; leaf++ {
		if transit[leaf] != 0 {
			t.Fatalf("leaf %d transit = %v, want 0", leaf, transit[leaf])
		}
	}
}

func TestEdgeRatesSumEqualsWeightedPathLengths(t *testing.T) {
	// Identity: Σ_e λe = Σ_{s,r} N_s·p(s,r)·d(s,r) because each
	// transaction crosses d(s,r) edges.
	rng := rand.New(rand.NewSource(6))
	g := graph.ConnectedErdosRenyi(10, 0.3, 1, rng, 50)
	d, err := NewDemand(g, txdist.ModifiedZipf{S: 1.0}, uniformRates(10, 2))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	rates := d.EdgeRates(g)
	var sumRates float64
	for _, r := range rates {
		sumRates += r
	}
	var want float64
	for s := 0; s < g.NumNodes(); s++ {
		dist := g.BFS(graph.NodeID(s))
		for r := 0; r < g.NumNodes(); r++ {
			if r == s || dist[r] == graph.Unreachable {
				continue
			}
			want += d.PairRate(graph.NodeID(s), graph.NodeID(r)) * float64(dist[r])
		}
	}
	if math.Abs(sumRates-want) > 1e-6 {
		t.Fatalf("Σλe = %v, want %v", sumRates, want)
	}
}

func TestGeneratorProducesValidStream(t *testing.T) {
	g := graph.Star(4, 1)
	d, err := NewDemand(g, txdist.ModifiedZipf{S: 1}, uniformRates(5, 3))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	gen, err := NewGenerator(d, fee.FixedSize{T: 2}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	last := 0.0
	for i := 0; i < 1000; i++ {
		tx := gen.Next()
		if tx.Time <= last {
			t.Fatalf("non-increasing time at event %d: %v after %v", i, tx.Time, last)
		}
		last = tx.Time
		if tx.From == tx.To {
			t.Fatal("self transaction generated")
		}
		if !g.HasNode(tx.From) || !g.HasNode(tx.To) {
			t.Fatalf("invalid endpoints %d→%d", tx.From, tx.To)
		}
		if tx.Amount != 2 {
			t.Fatalf("amount = %v, want 2", tx.Amount)
		}
	}
}

func TestGeneratorRateMatchesDemand(t *testing.T) {
	// The merged stream's empirical rate must match the total demand rate,
	// and sender frequencies must follow N_s.
	g := graph.Circle(4, 1)
	d, err := NewDemand(g, txdist.Uniform{}, []float64{8, 4, 2, 2})
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	gen, err := NewGenerator(d, nil, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	const events = 200000
	counts := make(map[graph.NodeID]int)
	txs := gen.Take(events)
	for _, tx := range txs {
		counts[tx.From]++
	}
	elapsed := gen.Now()
	empiricalRate := events / elapsed
	if math.Abs(empiricalRate-16) > 0.5 {
		t.Fatalf("empirical total rate = %v, want ≈16", empiricalRate)
	}
	if frac := float64(counts[0]) / events; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("sender 0 fraction = %v, want ≈0.5", frac)
	}
}

func TestGeneratorRejectsZeroDemand(t *testing.T) {
	g := graph.Star(2, 1)
	d, err := NewDemand(g, txdist.Uniform{}, uniformRates(3, 0))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	if _, err := NewGenerator(d, nil, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("zero-rate generator error = %v, want ErrBadDemand", err)
	}
}

func TestGeneratorTake(t *testing.T) {
	g := graph.Star(3, 1)
	d, err := NewDemand(g, txdist.Uniform{}, uniformRates(4, 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	gen, err := NewGenerator(d, nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	txs := gen.Take(17)
	if len(txs) != 17 {
		t.Fatalf("Take(17) returned %d", len(txs))
	}
}

func TestPoissonCountMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(PoissonCount(lambda, rng))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/n)*3+0.05 {
			t.Fatalf("λ=%v: empirical mean %v", lambda, mean)
		}
	}
	if got := PoissonCount(0, rng); got != 0 {
		t.Fatalf("PoissonCount(0) = %d, want 0", got)
	}
	if got := PoissonCount(-3, rng); got != 0 {
		t.Fatalf("PoissonCount(-3) = %d, want 0", got)
	}
}

func TestSampleCDFEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := sampleCDF(nil, rng); got != -1 {
		t.Fatalf("empty cdf = %d, want -1", got)
	}
	if got := sampleCDF([]float64{0, 0, 0}, rng); got != -1 {
		t.Fatalf("zero-mass cdf = %d, want -1", got)
	}
	// Mass concentrated on index 1.
	for i := 0; i < 100; i++ {
		if got := sampleCDF([]float64{0, 5, 5}, rng); got != 1 {
			t.Fatalf("draw = %d, want 1", got)
		}
	}
}
