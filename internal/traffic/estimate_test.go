package traffic

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func TestEstimateDemandValidation(t *testing.T) {
	if _, err := EstimateDemand(0, nil, 1, 0); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("zero nodes error = %v", err)
	}
	if _, err := EstimateDemand(3, nil, 0, 0); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("zero duration error = %v", err)
	}
	if _, err := EstimateDemand(3, nil, 1, -1); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("negative smoothing error = %v", err)
	}
	bad := []Tx{{From: 0, To: 9}}
	if _, err := EstimateDemand(3, bad, 1, 0); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("out-of-range tx error = %v", err)
	}
	self := []Tx{{From: 1, To: 1}}
	if _, err := EstimateDemand(3, self, 1, 0); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("self tx error = %v", err)
	}
}

func TestEstimateDemandExactCounts(t *testing.T) {
	txs := []Tx{
		{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 2},
	}
	d, err := EstimateDemand(3, txs, 2, 0)
	if err != nil {
		t.Fatalf("EstimateDemand: %v", err)
	}
	if math.Abs(d.Rates[0]-1.5) > 1e-12 {
		t.Fatalf("rate[0] = %v, want 1.5", d.Rates[0])
	}
	if math.Abs(d.P[0][1]-2.0/3) > 1e-12 || math.Abs(d.P[0][2]-1.0/3) > 1e-12 {
		t.Fatalf("P[0] = %v, want [_, 2/3, 1/3]", d.P[0])
	}
	if d.Rates[2] != 0 {
		t.Fatalf("rate[2] = %v, want 0", d.Rates[2])
	}
}

func TestEstimateDemandSmoothing(t *testing.T) {
	txs := []Tx{{From: 0, To: 1}}
	d, err := EstimateDemand(3, txs, 1, 1)
	if err != nil {
		t.Fatalf("EstimateDemand: %v", err)
	}
	// mass = 1 + 1·2 = 3: P[0][1] = 2/3, P[0][2] = 1/3.
	if math.Abs(d.P[0][1]-2.0/3) > 1e-12 || math.Abs(d.P[0][2]-1.0/3) > 1e-12 {
		t.Fatalf("smoothed P[0] = %v", d.P[0])
	}
	if d.P[0][0] != 0 {
		t.Fatal("self probability not zero")
	}
}

func TestEstimateDemandConsistency(t *testing.T) {
	// Errors must shrink as the sample grows (statistical consistency).
	g := graph.BarabasiAlbert(12, 2, 1, rand.New(rand.NewSource(5)))
	truth, err := NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, 12)
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	var prevTV float64 = math.Inf(1)
	for _, events := range []int{500, 50000} {
		gen, err := NewGenerator(truth, nil, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		txs := gen.Take(events)
		est, err := EstimateDemand(12, txs, gen.Now(), 0)
		if err != nil {
			t.Fatalf("EstimateDemand: %v", err)
		}
		_, tv, err := DemandError(est, truth)
		if err != nil {
			t.Fatalf("DemandError: %v", err)
		}
		if tv >= prevTV {
			t.Fatalf("TV distance did not shrink: %v then %v", prevTV, tv)
		}
		prevTV = tv
	}
	if prevTV > 0.1 {
		t.Fatalf("TV distance after 50k events = %v, want < 0.1", prevTV)
	}
}

func TestDemandErrorValidation(t *testing.T) {
	a := &Demand{Rates: []float64{1}, P: [][]float64{{0}}}
	b := &Demand{Rates: []float64{1, 2}, P: [][]float64{{0, 1}, {1, 0}}}
	if _, _, err := DemandError(a, b); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("mismatch error = %v", err)
	}
}

func TestDemandErrorExact(t *testing.T) {
	truth := &Demand{Rates: []float64{2, 0}, P: [][]float64{{0, 1}, {0, 0}}}
	est := &Demand{Rates: []float64{1, 5}, P: [][]float64{{0, 1}, {1, 0}}}
	rateErr, tv, err := DemandError(est, truth)
	if err != nil {
		t.Fatalf("DemandError: %v", err)
	}
	// Sender 1 has zero true rate and is skipped entirely.
	if math.Abs(rateErr-0.5) > 1e-12 {
		t.Fatalf("rateErr = %v, want 0.5", rateErr)
	}
	if tv != 0 {
		t.Fatalf("tv = %v, want 0", tv)
	}
}

func TestObservedEdgeRates(t *testing.T) {
	g := graph.Path(3, 1)
	txs := []Tx{
		{From: 0, To: 2},
		{From: 0, To: 2},
		{From: 2, To: 0},
	}
	rates, err := ObservedEdgeRates(g, txs, 2)
	if err != nil {
		t.Fatalf("ObservedEdgeRates: %v", err)
	}
	e01 := g.EdgesBetween(0, 1)[0]
	e12 := g.EdgesBetween(1, 2)[0]
	e21 := g.EdgesBetween(2, 1)[0]
	if math.Abs(rates[e01]-1) > 1e-12 || math.Abs(rates[e12]-1) > 1e-12 {
		t.Fatalf("forward rates = %v/%v, want 1/1", rates[e01], rates[e12])
	}
	if math.Abs(rates[e21]-0.5) > 1e-12 {
		t.Fatalf("reverse rate = %v, want 0.5", rates[e21])
	}
	if _, err := ObservedEdgeRates(g, txs, 0); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("zero duration error = %v", err)
	}
}

func TestObservedEdgeRatesUnreachable(t *testing.T) {
	g := graph.New(3)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	// Transactions to an unreachable node are skipped, not fatal.
	rates, err := ObservedEdgeRates(g, []Tx{{From: 0, To: 2}}, 1)
	if err != nil {
		t.Fatalf("ObservedEdgeRates: %v", err)
	}
	if len(rates) != 0 {
		t.Fatalf("rates = %v, want empty", rates)
	}
}
