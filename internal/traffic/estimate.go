package traffic

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// This file addresses the paper's third future-work direction: "the
// accuracy of our model depends on estimations of the underlying PCN
// parameters … developing more accurate methods for estimating these
// parameters may be helpful". EstimateDemand reconstructs a Demand
// (per-sender rates and recipient distributions) from an observed
// transaction log, and CompareDemands quantifies estimation error.

// EstimateDemand builds an empirical demand model from observed
// transactions spanning the given duration: rates are counts/duration
// and recipient probabilities are per-sender empirical frequencies with
// optional additive (Laplace) smoothing over all other nodes.
//
// With smoothing = 0 the estimator is the maximum-likelihood one; a
// small positive smoothing avoids assigning zero probability to pairs
// that simply were not observed yet.
func EstimateDemand(n int, txs []Tx, duration, smoothing float64) (*Demand, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadDemand, n)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("%w: duration %v", ErrBadDemand, duration)
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("%w: smoothing %v", ErrBadDemand, smoothing)
	}
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	totals := make([]float64, n)
	for _, tx := range txs {
		if int(tx.From) < 0 || int(tx.From) >= n || int(tx.To) < 0 || int(tx.To) >= n || tx.From == tx.To {
			return nil, fmt.Errorf("%w: transaction %d→%d outside [0,%d)", ErrBadDemand, tx.From, tx.To, n)
		}
		counts[tx.From][tx.To]++
		totals[tx.From]++
	}
	d := &Demand{
		P:     make([][]float64, n),
		Rates: make([]float64, n),
	}
	for s := 0; s < n; s++ {
		d.Rates[s] = totals[s] / duration
		row := make([]float64, n)
		mass := totals[s] + smoothing*float64(n-1)
		if mass > 0 {
			for r := 0; r < n; r++ {
				if r == s {
					continue
				}
				row[r] = (counts[s][r] + smoothing) / mass
			}
		}
		d.P[s] = row
	}
	return d, nil
}

// DemandError quantifies the distance between an estimated and a true
// demand: the maximum relative rate error over senders with positive
// true rate, and the maximum total-variation distance between recipient
// distributions of such senders.
func DemandError(estimated, truth *Demand) (rateErr, tvDist float64, err error) {
	if len(estimated.Rates) != len(truth.Rates) {
		return 0, 0, fmt.Errorf("%w: %d vs %d senders", ErrBadDemand, len(estimated.Rates), len(truth.Rates))
	}
	for s := range truth.Rates {
		if truth.Rates[s] <= 0 {
			continue
		}
		re := abs(estimated.Rates[s]-truth.Rates[s]) / truth.Rates[s]
		if re > rateErr {
			rateErr = re
		}
		var tv float64
		for r := range truth.P[s] {
			tv += abs(estimated.P[s][r] - truth.P[s][r])
		}
		tv /= 2
		if tv > tvDist {
			tvDist = tv
		}
	}
	return rateErr, tvDist, nil
}

// ObservedEdgeRates counts how often each directed adjacency was crossed
// by the shortest-path routes of the given transactions, normalised by
// duration — the empirical analogue of EdgeRates for logs that include
// routing information. Paths are recomputed on g with unit hops, using
// the first shortest path found; it is intended for diagnostics rather
// than exact replay.
func ObservedEdgeRates(g *graph.Graph, txs []Tx, duration float64) (map[graph.EdgeID]float64, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("%w: duration %v", ErrBadDemand, duration)
	}
	rates := make(map[graph.EdgeID]float64)
	for _, tx := range txs {
		dist := g.BFS(tx.From)
		if int(tx.To) >= len(dist) || dist[tx.To] == graph.Unreachable {
			continue
		}
		// Walk backwards from the destination along BFS layers.
		cur := tx.To
		for cur != tx.From {
			var via graph.EdgeID = graph.InvalidEdge
			var prev graph.NodeID
			g.ForEachIn(cur, func(e graph.Edge) bool {
				if dist[e.From] == dist[cur]-1 {
					via = e.ID
					prev = e.From
					return false
				}
				return true
			})
			if via == graph.InvalidEdge {
				break
			}
			rates[via] += 1 / duration
			cur = prev
		}
	}
	return rates, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
