package traffic

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// FuzzSamplerMatchesDense is the sparse-plane differential: for a fuzzed
// topology, family and parameter, every sparse sampler's reported row
// probabilities must match the dense txdist row element for element, and
// its draws must stay inside the row's support with the sender excluded.
// This is the deterministic counterpart of the chi-square equivalence
// tests — no statistics, exact conditional probabilities.
func FuzzSamplerMatchesDense(f *testing.F) {
	f.Add(uint8(8), uint8(0), 1.0, int64(1))
	f.Add(uint8(20), uint8(1), 1.5, int64(2))
	f.Add(uint8(33), uint8(2), 0.5, int64(3))
	f.Add(uint8(2), uint8(1), 0.0, int64(4))
	f.Fuzz(func(t *testing.T, nRaw, famRaw uint8, param float64, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		g := graph.BarabasiAlbert(2+int(nRaw)%40, 1+int(nRaw)%3, 10, rng)
		n := g.NumNodes() // BA pads tiny n up to its seed clique
		if math.IsNaN(param) || math.IsInf(param, 0) {
			param = 1
		}
		var dist txdist.Distribution
		switch famRaw % 3 {
		case 0:
			dist = txdist.Uniform{}
		case 1:
			dist = txdist.DegreeProportional{Alpha: math.Mod(math.Abs(param), 3)}
		default:
			dist = txdist.DistanceDecay{Decay: 0.05 + math.Mod(math.Abs(param), 1.5)}
		}
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.25 + float64(i%4)
		}
		s, err := NewSampler(g, dist, rates)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", dist.Name(), err)
		}
		prober, ok := s.(RowProber)
		if !ok {
			t.Fatalf("%s: sparse sampler without RowProb", s.Kind())
		}
		sc := s.NewScratch()
		dense := txdist.Matrix(g, dist)
		for sender := range dense {
			var sum float64
			for v, want := range dense[sender] {
				got := prober.RowProb(sc, sender, v)
				if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s: RowProb(%d,%d) = %v, dense %v", s.Kind(), sender, v, got, want)
				}
				sum += got
			}
			if sum > 0 && math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: row %d sums to %v", s.Kind(), sender, sum)
			}
		}
		for i := 0; i < 64; i++ {
			sender := s.SampleSender(rng, sc)
			if sender < 0 {
				t.Fatal("no sender despite positive rates")
			}
			r := s.SampleReceiver(rng, sc, sender)
			if r == sender {
				t.Fatalf("%s: receiver == sender %d", s.Kind(), r)
			}
			if r >= 0 && dense[sender][r] == 0 {
				t.Fatalf("%s: drew receiver %d outside dense support of %d", s.Kind(), r, sender)
			}
		}
	})
}
