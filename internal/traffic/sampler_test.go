package traffic

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// TestNewSamplerSelection pins the automatic family → sampler mapping:
// the sparse planes for the families that admit them, dense CDF for
// everything else.
func TestNewSamplerSelection(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 10, rand.New(rand.NewSource(1)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	cases := []struct {
		dist txdist.Distribution
		kind string
	}{
		{txdist.Uniform{}, "sparse-uniform"},
		{txdist.DegreeProportional{Alpha: 1}, "sparse-degree"},
		{txdist.DistanceDecay{Decay: 0.5}, "sparse-distance"},
		{txdist.ModifiedZipf{S: 1}, "dense-cdf"},
	}
	for _, c := range cases {
		s, err := NewSampler(g, c.dist, rates)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", c.dist.Name(), err)
		}
		if s.Kind() != c.kind {
			t.Errorf("NewSampler(%s).Kind = %q, want %q", c.dist.Name(), s.Kind(), c.kind)
		}
		if s.Nodes() != g.NumNodes() {
			t.Errorf("NewSampler(%s).Nodes = %d, want %d", c.dist.Name(), s.Nodes(), g.NumNodes())
		}
		if s.TotalRate() != float64(g.NumNodes()) {
			t.Errorf("NewSampler(%s).TotalRate = %v", c.dist.Name(), s.TotalRate())
		}
	}
	if _, err := NewSampler(g, txdist.Uniform{}, rates[:3]); !errors.Is(err, ErrBadDemand) {
		t.Errorf("rate shape mismatch = %v, want ErrBadDemand", err)
	}
}

// TestSamplerZeroMassRows pins the -1 contract on rows without mass:
// single-node networks, all-zero weight planes, and the degenerate
// all-mass-on-the-sender row must refuse to draw rather than loop or
// emit a self-payment.
func TestSamplerZeroMassRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))

	u, err := NewUniformSampler([]float64{1})
	if err != nil {
		t.Fatalf("NewUniformSampler: %v", err)
	}
	if r := u.SampleReceiver(rng, u.NewScratch(), 0); r != -1 {
		t.Errorf("uniform single-node receiver = %d, want -1", r)
	}

	w, err := NewWeightedSampler("sparse-degree", []float64{1, 1, 1}, []float64{0, 0, 0})
	if err != nil {
		t.Fatalf("NewWeightedSampler: %v", err)
	}
	if r := w.SampleReceiver(rng, w.NewScratch(), 1); r != -1 {
		t.Errorf("all-zero weights receiver = %d, want -1", r)
	}
	if s := w.SampleSender(rng, w.NewScratch()); s < 0 || s > 2 {
		t.Errorf("sender = %d, want in [0,2]", s)
	}

	// All recipient mass on the sender itself: the rejection loop must
	// detect the empty conditional row and bail.
	w2, err := NewWeightedSampler("sparse-degree", []float64{1, 1}, []float64{0, 5})
	if err != nil {
		t.Fatalf("NewWeightedSampler: %v", err)
	}
	if r := w2.SampleReceiver(rng, w2.NewScratch(), 1); r != -1 {
		t.Errorf("all-mass-on-sender receiver = %d, want -1", r)
	}
	if r := w2.SampleReceiver(rng, w2.NewScratch(), 0); r != 1 {
		t.Errorf("receiver = %d, want 1 (the only massy node)", r)
	}

	// Zero-rate plane: no sender can be drawn.
	z, err := NewUniformSampler([]float64{0, 0})
	if err != nil {
		t.Fatalf("NewUniformSampler: %v", err)
	}
	if s := z.SampleSender(rng, nil); s != -1 {
		t.Errorf("zero-rate sender = %d, want -1", s)
	}

	// Distance plane on an isolated-node graph: nothing reachable.
	iso := graph.New(3) // three nodes, no channels
	ds, err := NewDistanceDecaySampler(iso, 0.5, []float64{1, 1, 1})
	if err != nil {
		t.Fatalf("NewDistanceDecaySampler: %v", err)
	}
	if r := ds.SampleReceiver(rng, ds.NewScratch(), 0); r != -1 {
		t.Errorf("isolated distance receiver = %d, want -1", r)
	}
}

// TestSamplerExcludesSender draws heavily from every sparse plane and
// checks no sampler ever returns its own sender.
func TestSamplerExcludesSender(t *testing.T) {
	g := graph.BarabasiAlbert(30, 2, 10, rand.New(rand.NewSource(3)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	for _, dist := range []txdist.Distribution{
		txdist.Uniform{},
		txdist.DegreeProportional{Alpha: 1.5},
		txdist.DistanceDecay{Decay: 0.4},
	} {
		s, err := NewSampler(g, dist, rates)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", dist.Name(), err)
		}
		rng := rand.New(rand.NewSource(4))
		sc := s.NewScratch()
		for i := 0; i < 5000; i++ {
			from := s.SampleSender(rng, sc)
			if from < 0 {
				t.Fatalf("%s: no sender", s.Kind())
			}
			to := s.SampleReceiver(rng, sc, from)
			if to == from {
				t.Fatalf("%s: sampled sender == receiver %d", s.Kind(), to)
			}
			if to < 0 || to >= g.NumNodes() {
				t.Fatalf("%s: receiver %d out of range", s.Kind(), to)
			}
		}
	}
}

// TestAliasTableDegenerateColumn pins the Walker/Vose table on the
// all-mass-on-one-column row: every draw must return that column, for
// both the raw table and the dense alias plane built over such a row.
func TestAliasTableDegenerateColumn(t *testing.T) {
	w := make([]float64, 17)
	w[11] = 42
	tab, err := newAliasTable(w)
	if err != nil {
		t.Fatalf("newAliasTable: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		if got := tab.sample(rng); got != 11 {
			t.Fatalf("degenerate alias draw = %d, want 11", got)
		}
	}

	d := &Demand{
		P:     [][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}},
		Rates: []float64{1, 1, 1},
	}
	a, err := NewAliasSampler(d)
	if err != nil {
		t.Fatalf("NewAliasSampler: %v", err)
	}
	want := []int{1, 2, 0}
	for s := 0; s < 3; s++ {
		for i := 0; i < 200; i++ {
			if got := a.SampleReceiver(rng, nil, s); got != want[s] {
				t.Fatalf("alias row %d draw = %d, want %d", s, got, want[s])
			}
		}
	}
}

// TestSamplerRejectsBadWeights pins constructor validation: NaN,
// negative and infinite weights are refused everywhere a plane is built.
func TestSamplerRejectsBadWeights(t *testing.T) {
	bad := [][]float64{
		{1, math.NaN(), 1},
		{1, -0.5, 1},
		{1, math.Inf(1), 1},
	}
	for _, rates := range bad {
		if _, err := NewUniformSampler(rates); !errors.Is(err, ErrBadDemand) {
			t.Errorf("NewUniformSampler(%v) = %v, want ErrBadDemand", rates, err)
		}
		if _, err := NewWeightedSampler("k", []float64{1, 1, 1}, rates); !errors.Is(err, ErrBadDemand) {
			t.Errorf("NewWeightedSampler(%v) = %v, want ErrBadDemand", rates, err)
		}
		d := &Demand{P: [][]float64{rates, rates, rates}, Rates: []float64{1, 1, 1}}
		if _, err := NewCDFSampler(d); !errors.Is(err, ErrBadDemand) {
			t.Errorf("NewCDFSampler(row %v) = %v, want ErrBadDemand", rates, err)
		}
		if _, err := NewAliasSampler(d); !errors.Is(err, ErrBadDemand) {
			t.Errorf("NewAliasSampler(row %v) = %v, want ErrBadDemand", rates, err)
		}
	}
	g := graph.Star(2, 1)
	if _, err := NewDistanceDecaySampler(g, 0, []float64{1, 1, 1}); !errors.Is(err, ErrBadDemand) {
		t.Error("decay 0 accepted")
	}
	if _, err := NewDistanceDecaySampler(g, math.Inf(1), []float64{1, 1, 1}); !errors.Is(err, ErrBadDemand) {
		t.Error("infinite decay accepted")
	}
}

// TestCumulativeRejectsPoisonedWeights pins the fold-level guard: a NaN,
// negative or infinite weight is an error, and zero weights leave the
// running sum bit-identical to the historical skip-non-positive fold.
func TestCumulativeRejectsPoisonedWeights(t *testing.T) {
	for _, weights := range [][]float64{
		{1, math.NaN(), 2},
		{1, -1e-9, 2},
		{math.Inf(1), 1},
		{1, math.Inf(-1)},
	} {
		if _, err := cumulative(weights); !errors.Is(err, ErrBadDemand) {
			t.Errorf("cumulative(%v) = %v, want ErrBadDemand", weights, err)
		}
	}
	cdf, err := cumulative([]float64{0.5, 0, 0.25, 0})
	if err != nil {
		t.Fatalf("cumulative: %v", err)
	}
	want := []float64{0.5, 0.5, 0.75, 0.75}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

// TestSampleCDFRejectsMalformedTotals pins the draw-level guard: a CDF
// whose total is NaN or infinite must refuse to draw (-1) instead of
// feeding the binary search garbage — the silent-poisoning failure mode
// the validation exists for.
func TestSampleCDFRejectsMalformedTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, cdf := range [][]float64{
		{0.5, math.NaN()},
		{1, math.Inf(1)},
		{-2, -1},
	} {
		if got := sampleCDF(cdf, rng); got != -1 {
			t.Errorf("sampleCDF(%v) = %d, want -1", cdf, got)
		}
	}
}

// chiSquareCheck draws `samples` receivers for sender s and tests the
// empirical counts against the expected distribution with a chi-square
// statistic at a ±6σ threshold (df = bins−1); with fixed seeds this is
// deterministic, not flaky.
func chiSquareCheck(t *testing.T, s Sampler, sender int, probs []float64, samples int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	sc := s.NewScratch()
	counts := make([]int, len(probs))
	for i := 0; i < samples; i++ {
		r := s.SampleReceiver(rng, sc, sender)
		if r < 0 {
			t.Fatalf("%s: no receiver for sender %d", s.Kind(), sender)
		}
		counts[r]++
	}
	var chi2 float64
	df := -1 // one constraint: counts sum to samples
	for v, p := range probs {
		expected := p * float64(samples)
		if expected < 5 {
			if expected == 0 && counts[v] > 0 {
				t.Fatalf("%s: drew zero-probability receiver %d", s.Kind(), v)
			}
			continue
		}
		df++
		d := float64(counts[v]) - expected
		chi2 += d * d / expected
	}
	if df < 1 {
		t.Fatalf("%s: degenerate chi-square setup", s.Kind())
	}
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	if chi2 > limit {
		t.Errorf("%s sender %d: chi2 = %.1f beyond %.1f (df %d)", s.Kind(), sender, chi2, limit, df)
	}
}

// TestSparseSamplersMatchDenseDistribution is the distribution-
// equivalence lockdown: every sparse plane must (a) report row
// probabilities equal to the dense txdist row and (b) empirically draw
// that distribution, chi-square checked.
func TestSparseSamplersMatchDenseDistribution(t *testing.T) {
	g := graph.BarabasiAlbert(25, 2, 10, rand.New(rand.NewSource(6)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	for _, dist := range []txdist.Distribution{
		txdist.Uniform{},
		txdist.DegreeProportional{Alpha: 1},
		txdist.DistanceDecay{Decay: 0.5},
	} {
		s, err := NewSampler(g, dist, rates)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", dist.Name(), err)
		}
		prober := s.(RowProber)
		sc := s.NewScratch()
		dense := txdist.Matrix(g, dist)
		for sender := range dense {
			for v, want := range dense[sender] {
				got := prober.RowProb(sc, sender, v)
				if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s: RowProb(%d,%d) = %v, dense %v", s.Kind(), sender, v, got, want)
				}
			}
		}
		for _, sender := range []int{0, 7, g.NumNodes() - 1} {
			chiSquareCheck(t, s, sender, dense[sender], 60000)
		}
	}
}

// TestAliasSamplerMatchesCDFDistribution chi-squares the dense alias
// plane against the same demand's exact row probabilities — the
// alias-vs-CDF equivalence claim (identical marginals, different
// stream).
func TestAliasSamplerMatchesCDFDistribution(t *testing.T) {
	g := graph.BarabasiAlbert(25, 2, 10, rand.New(rand.NewSource(8)))
	d, err := NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, 25)
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	a, err := NewAliasSampler(d)
	if err != nil {
		t.Fatalf("NewAliasSampler: %v", err)
	}
	for _, sender := range []int{0, 13, 24} {
		chiSquareCheck(t, a, sender, d.P[sender], 60000)
	}

	// Sender marginals too: rates are uniform here, so give them shape.
	shaped := append([]float64(nil), d.Rates...)
	for i := range shaped {
		shaped[i] = float64(1 + i%5)
	}
	d2 := &Demand{P: d.P, Rates: shaped}
	a2, err := NewAliasSampler(d2)
	if err != nil {
		t.Fatalf("NewAliasSampler: %v", err)
	}
	var total float64
	for _, r := range shaped {
		total += r
	}
	probs := make([]float64, len(shaped))
	for i, r := range shaped {
		probs[i] = r / total
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, len(probs))
	for i := 0; i < 60000; i++ {
		counts[a2.SampleSender(rng, nil)]++
	}
	var chi2 float64
	for v, p := range probs {
		e := p * 60000
		dd := float64(counts[v]) - e
		chi2 += dd * dd / e
	}
	df := float64(len(probs) - 1)
	if limit := df + 6*math.Sqrt(2*df); chi2 > limit {
		t.Errorf("sender marginal chi2 = %.1f beyond %.1f", chi2, limit)
	}
}

// TestDistanceDecaySamplerStructure pins the bucket layout on a path
// graph, where distances are exact and by hand: 0—1—2—3.
func TestDistanceDecaySamplerStructure(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(e[1], e[0], 1); err != nil {
			t.Fatal(err)
		}
	}
	decay := 0.5
	s, err := NewDistanceDecaySampler(g, decay, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatalf("NewDistanceDecaySampler: %v", err)
	}
	sc := s.NewScratch()
	// From node 0: d(1)=1, d(2)=2, d(3)=3 → probabilities ∝ 0.5, 0.25, 0.125.
	mass := decay + decay*decay + decay*decay*decay
	wants := []float64{0, decay / mass, decay * decay / mass, decay * decay * decay / mass}
	for v, want := range wants {
		if got := s.RowProb(sc, 0, v); math.Abs(got-want) > 1e-12 {
			t.Errorf("RowProb(0,%d) = %v, want %v", v, got, want)
		}
	}
	chiSquareCheck(t, s, 0, wants, 60000)

	// Drawing through a fresh scratch (cold cache) must replay the same
	// stream: caching is invisible to the drawn values.
	rngA := rand.New(rand.NewSource(10))
	rngB := rand.New(rand.NewSource(10))
	scA, scB := s.NewScratch(), s.NewScratch()
	var seqA, seqB []int
	for i := 0; i < 500; i++ {
		seqA = append(seqA, s.SampleReceiver(rngA, scA, i%4))
	}
	for i := 0; i < 500; i++ {
		seqB = append(seqB, s.SampleReceiver(rngB, scB, i%4))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, seqA[i], seqB[i])
		}
	}
}

// TestGeneratorFromSparseSampler runs the generator end to end over a
// sparse plane: well-formed stream, advancing clock, zero-rate rejection.
func TestGeneratorFromSparseSampler(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, 10, rand.New(rand.NewSource(11)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	s, err := NewSampler(g, txdist.DegreeProportional{Alpha: 1}, rates)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	gen, err := NewGeneratorFromSampler(s, nil, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatalf("NewGeneratorFromSampler: %v", err)
	}
	last := 0.0
	for i := 0; i < 2000; i++ {
		tx := gen.Next()
		if tx.From == tx.To || !g.HasNode(tx.From) || !g.HasNode(tx.To) {
			t.Fatalf("malformed tx %+v", tx)
		}
		if tx.Time <= last {
			t.Fatalf("clock not advancing: %v after %v", tx.Time, last)
		}
		last = tx.Time
	}

	dead, err := NewUniformSampler([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneratorFromSampler(dead, nil, rand.New(rand.NewSource(13))); !errors.Is(err, ErrBadDemand) {
		t.Errorf("zero-rate plane = %v, want ErrBadDemand", err)
	}
}

// TestSamplerAccessors pins the metadata surface every plane exposes —
// Kind/Nodes/TotalRate and the RowProber view — so a refactor cannot
// silently change a result identity string or a probe used by the
// differential fuzz target.
func TestSamplerAccessors(t *testing.T) {
	g := graph.Star(4, 1)
	d, err := NewUniformDemand(g, txdist.Uniform{}, 8)
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	c, err := NewCDFSampler(d)
	if err != nil {
		t.Fatalf("NewCDFSampler: %v", err)
	}
	a, err := NewAliasSampler(d)
	if err != nil {
		t.Fatalf("NewAliasSampler: %v", err)
	}
	if c.Kind() != "dense-cdf" || a.Kind() != "dense-alias" {
		t.Fatalf("kinds = %q, %q", c.Kind(), a.Kind())
	}
	for _, s := range []Sampler{c, a} {
		if s.Nodes() != g.NumNodes() {
			t.Errorf("%s: Nodes = %d, want %d", s.Kind(), s.Nodes(), g.NumNodes())
		}
		if got := s.TotalRate(); math.Abs(got-8) > 1e-12 {
			t.Errorf("%s: TotalRate = %v, want 8", s.Kind(), got)
		}
	}
	// The dense CDF plane's probe must reproduce the demand matrix and
	// reject out-of-range coordinates with zero, not a panic.
	for s := range d.P {
		for r := range d.P[s] {
			if got := c.RowProb(nil, s, r); math.Abs(got-d.P[s][r]) > 1e-12 {
				t.Errorf("RowProb(%d,%d) = %v, want %v", s, r, got, d.P[s][r])
			}
		}
	}
	for _, bad := range [][2]int{{-1, 0}, {g.NumNodes(), 0}, {0, -1}, {0, g.NumNodes()}} {
		if got := c.RowProb(nil, bad[0], bad[1]); got != 0 {
			t.Errorf("RowProb%v = %v, want 0", bad, got)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if got := c.SampleReceiver(rng, nil, -1); got != -1 {
		t.Errorf("CDF SampleReceiver(-1) = %d, want -1", got)
	}
	if got := a.SampleReceiver(rng, nil, g.NumNodes()); got != -1 {
		t.Errorf("alias SampleReceiver(n) = %d, want -1", got)
	}
	empty := &CDFSampler{}
	if got := empty.TotalRate(); got != 0 {
		t.Errorf("empty TotalRate = %v, want 0", got)
	}
}
