package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ErrBadWAL reports a log that cannot be trusted: a corrupted frame in
// the middle of the stream, an impossible record, or an epoch gap. A
// truncated final frame is NOT this error — a crash mid-append tears
// the tail, and the reader stops cleanly before it instead.
var ErrBadWAL = errors.New("wal: corrupt write-ahead log")

const (
	version = 1

	// maxRecordBytes bounds the payload length one frame may claim, so
	// a corrupted length cannot demand a pathological allocation. The
	// largest legal record is a set-demand matrix; 2 GiB clears the
	// supported n=10k envelope (~800 MB) with headroom.
	maxRecordBytes = 2 << 30

	// chunkBytes bounds one bulk-read allocation while decoding a
	// payload, so memory grows with bytes actually present.
	chunkBytes = 1 << 16
)

var segMagic = [8]byte{'L', 'C', 'G', 'W', 'A', 'L', 0, 0}

// Kind discriminates the logical mutation a record replays.
type Kind uint8

const (
	// KindCommitJoin folds a priced strategy in as a fresh arrival.
	KindCommitJoin Kind = 1
	// KindClose departs a node and folds the closure decrementally.
	KindClose Kind = 2
	// KindTick commits a seeded batch of synthetic arrivals.
	KindTick Kind = 3
	// KindRefresh re-quotes the demand and λ̂ snapshots.
	KindRefresh Kind = 4
	// KindSetDemand installs an explicit demand snapshot.
	KindSetDemand Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindCommitJoin:
		return "commit-join"
	case KindClose:
		return "close"
	case KindTick:
		return "tick"
	case KindRefresh:
		return "refresh"
	case KindSetDemand:
		return "set-demand"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one logical mutation. Epoch is the snapshot epoch the
// session reaches by applying it — records in a log are strictly
// sequential, which recovery verifies.
type Record struct {
	Epoch uint64
	Kind  Kind

	// Strategy is the committed join (KindCommitJoin).
	Strategy core.Strategy
	// Node is the departing node (KindClose).
	Node graph.NodeID
	// Arrivals and Seed drive the deterministic tick (KindTick).
	Arrivals int
	Seed     int64
	// Demand is the installed snapshot (KindSetDemand).
	Demand *traffic.Demand
}

// SyncPolicy shapes when appended records become durable.
//
// The zero value is the safest: fsync after every record, so an
// acknowledged mutation survives any crash. Every > 1 batches that
// cost — up to Every-1 acknowledged records may be lost. Interval > 0
// switches to a background timer instead: appends never fsync inline
// and the window is bounded by the interval.
type SyncPolicy struct {
	Every    int
	Interval time.Duration
}

func (p SyncPolicy) every() int {
	if p.Interval > 0 {
		return 0 // timer-driven; never inline
	}
	if p.Every < 1 {
		return 1
	}
	return p.Every
}

// Writer appends records to segment files in dir. Segments are named
// wal-<generation>.log; Rotate seals the live segment and opens the
// next, so the checkpointer can truncate the log (delete sealed
// segments) once a checkpoint covering them is durable.
type Writer struct {
	mu     sync.Mutex
	fsys   FS
	dir    string
	policy SyncPolicy

	f       File
	gen     uint64
	sealed  []string // segment paths safe to delete after the next durable checkpoint
	pending int      // records appended since the last sync
	records uint64
	buf     []byte
	err     error // sticky: a writer that failed stays failed until Rotate

	timerStop chan struct{}
	timerDone chan struct{}
}

// Create opens a writer over dir, starting a fresh segment after any
// existing ones (a recovered process never appends to a file a dead
// one may have torn). Existing segments are recorded as sealed: the
// next durable checkpoint subsumes and deletes them.
func Create(fsys FS, dir string, policy SyncPolicy) (*Writer, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	w := &Writer{fsys: fsys, dir: dir, policy: policy}
	for _, name := range segmentNames(names) {
		w.sealed = append(w.sealed, dir+"/"+name)
		if g, ok := segmentGen(name); ok && g >= w.gen {
			w.gen = g + 1
		}
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	if policy.Interval > 0 {
		w.timerStop = make(chan struct{})
		w.timerDone = make(chan struct{})
		go w.syncLoop(policy.Interval)
	}
	return w, nil
}

func (w *Writer) openSegmentLocked() error {
	path := fmt.Sprintf("%s/wal-%08d.log", w.dir, w.gen)
	f, err := w.fsys.Create(path)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segHeader()); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	w.f = f
	w.gen++
	w.pending = 0
	w.err = nil
	return nil
}

func segHeader() []byte {
	h := make([]byte, 12)
	copy(h, segMagic[:])
	binary.LittleEndian.PutUint32(h[8:], version)
	return h
}

// Append encodes rec as one CRC-framed record and applies the sync
// policy. An error means durability is NOT guaranteed for this record;
// the writer goes sticky-failed until the next Rotate gives it a fresh
// segment.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	frame := appendFrame(w.buf[:0], rec)
	w.buf = frame[:0]
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.records++
	w.pending++
	if every := w.policy.every(); every > 0 && w.pending >= every {
		return w.syncLocked()
	}
	return nil
}

// Sync forces pending records to durable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	w.pending = 0
	return nil
}

// Records reports how many records this writer has appended.
func (w *Writer) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Rotate seals the live segment (sync + close) and opens the next one.
// It returns every sealed-and-not-yet-pruned segment path; the caller
// deletes them via Prune once a checkpoint covering their records is
// durable. Rotate also clears a sticky append/sync failure — the new
// segment starts clean.
func (w *Writer) Rotate() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	path := fmt.Sprintf("%s/wal-%08d.log", w.dir, w.gen-1)
	if w.err == nil {
		if err := w.syncLocked(); err != nil {
			return nil, err
		}
	}
	w.f.Close()
	w.sealed = append(w.sealed, path)
	if err := w.openSegmentLocked(); err != nil {
		w.err = err
		return nil, err
	}
	return append([]string(nil), w.sealed...), nil
}

// Prune deletes the given sealed segments (best-effort) and forgets
// them. Only call with paths returned by Rotate, after the checkpoint
// that covers them is durably renamed.
func (w *Writer) Prune(paths []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	gone := map[string]bool{}
	for _, p := range paths {
		if w.fsys.Remove(p) == nil {
			gone[p] = true
		}
	}
	kept := w.sealed[:0]
	for _, p := range w.sealed {
		if !gone[p] {
			kept = append(kept, p)
		}
	}
	w.sealed = kept
}

// Close syncs and closes the live segment and stops the sync timer.
func (w *Writer) Close() error {
	if w.timerStop != nil {
		close(w.timerStop)
		<-w.timerDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.err == nil {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

func (w *Writer) syncLoop(interval time.Duration) {
	defer close(w.timerDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.timerStop:
			return
		case <-t.C:
			w.Sync() //nolint:errcheck — sticky error resurfaces on the next Append
		}
	}
}

// appendFrame encodes rec onto buf as
//
//	len uint32 | crc uint32 | payload
//
// where payload = kind u8 | epoch u64 | body and crc is IEEE CRC-32 of
// the payload. The frame is written in ONE Write call, so the
// prefix-persistence crash model can only ever tear it into a strict
// prefix — which the reader detects as a truncated tail.
func appendFrame(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders
	buf = append(buf, byte(rec.Kind))
	buf = appendU64(buf, rec.Epoch)
	switch rec.Kind {
	case KindCommitJoin:
		buf = appendU32(buf, uint32(len(rec.Strategy)))
		for _, a := range rec.Strategy {
			buf = appendU32(buf, uint32(a.Peer))
			buf = appendF64(buf, a.Lock)
		}
	case KindClose:
		buf = appendU32(buf, uint32(rec.Node))
	case KindTick:
		buf = appendU32(buf, uint32(rec.Arrivals))
		buf = appendU64(buf, uint64(rec.Seed))
	case KindRefresh:
	case KindSetDemand:
		d := rec.Demand
		if d == nil {
			d = &traffic.Demand{}
		}
		buf = appendU32(buf, uint32(len(d.P)))
		for _, row := range d.P {
			buf = appendU32(buf, uint32(len(row)))
			for _, v := range row {
				buf = appendF64(buf, v)
			}
		}
		buf = appendU32(buf, uint32(len(d.Rates)))
		for _, v := range d.Rates {
			buf = appendF64(buf, v)
		}
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// Log is the decoded write-ahead log.
type Log struct {
	Records []Record
	// Torn reports that the final segment ended mid-frame — the
	// signature of a crash mid-append. The records before the tear are
	// intact (each carried its own CRC).
	Torn bool
	// Segments is how many segment files were read.
	Segments int
}

// ReadAll decodes every segment in dir in generation order. Each
// segment tolerates a truncated tail — a crash tears the segment being
// appended, and a segment torn in a previous process life stays torn
// after recovery rotates past it. Epochs must climb strictly across
// segment boundaries, but gaps between segments are tolerated: a
// partially pruned log (some sealed segments deleted, some not) is
// still valid, and Suffix is where recovery proves the part it
// actually replays is gapless. Everything else is ErrBadWAL: a CRC
// mismatch on a complete frame anywhere (a torn append shortens a
// file, it never rewrites bytes already present), a malformed record,
// or an epoch gap inside one segment.
func ReadAll(fsys FS, dir string) (*Log, error) {
	names, err := fsys.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	segs := segmentNames(names)
	log := &Log{Segments: len(segs)}
	for _, name := range segs {
		f, err := fsys.Open(dir + "/" + name)
		if err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", name, err)
		}
		recs, torn, err := ReadSegment(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%w (segment %s)", err, name)
		}
		if len(recs) > 0 && len(log.Records) > 0 {
			if last := log.Records[len(log.Records)-1].Epoch; recs[0].Epoch <= last {
				return nil, fmt.Errorf("%w: segment %s opens at epoch %d, not after %d",
					ErrBadWAL, name, recs[0].Epoch, last)
			}
		}
		log.Records = append(log.Records, recs...)
		log.Torn = torn
	}
	return log, nil
}

// Suffix returns the records with Epoch > base — the replay suffix on
// top of a checkpoint taken at epoch base — verifying the suffix is
// exactly contiguous from base+1. A gap there means an acknowledged
// mutation is missing and the log cannot be trusted for recovery.
func (l *Log) Suffix(base uint64) ([]Record, error) {
	i := sort.Search(len(l.Records), func(i int) bool { return l.Records[i].Epoch > base })
	recs := l.Records[i:]
	for j, rec := range recs {
		if rec.Epoch != base+uint64(j)+1 {
			return nil, fmt.Errorf("%w: replay suffix wants epoch %d, found %d",
				ErrBadWAL, base+uint64(j)+1, rec.Epoch)
		}
	}
	return recs, nil
}

// ReadSegment decodes one segment stream. A truncated tail (short
// header, torn frame) ends the stream cleanly with torn=true; a CRC
// mismatch on a complete frame, a malformed record, or an epoch gap
// between consecutive records (one writer appends them sequentially,
// so a within-segment gap is corruption) is ErrBadWAL.
func ReadSegment(r io.Reader) (recs []Record, torn bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("%w: segment header: %v", ErrBadWAL, err)
	}
	if [8]byte(hdr[:8]) != segMagic {
		return nil, false, fmt.Errorf("%w: bad segment magic %q", ErrBadWAL, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != version {
		return nil, false, fmt.Errorf("%w: segment version %d, want %d", ErrBadWAL, v, version)
	}
	var frame [8]byte
	payload := make([]byte, 0, 1024)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return recs, false, nil // clean frame boundary
			}
			if err == io.ErrUnexpectedEOF {
				return recs, true, nil
			}
			return nil, false, fmt.Errorf("%w: frame header: %v", ErrBadWAL, err)
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		want := binary.LittleEndian.Uint32(frame[4:])
		if length < 9 || length > maxRecordBytes {
			return nil, false, fmt.Errorf("%w: frame length %d out of range", ErrBadWAL, length)
		}
		payload = payload[:0]
		for n := int(length); n > 0; {
			c := min(n, chunkBytes)
			mark := len(payload)
			payload = append(payload, make([]byte, c)...)
			if _, err := io.ReadFull(br, payload[mark:]); err != nil {
				return recs, true, nil // torn mid-payload
			}
			n -= c
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, false, fmt.Errorf("%w: record CRC mismatch: stored %08x, computed %08x", ErrBadWAL, want, got)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, false, err
		}
		if len(recs) > 0 && rec.Epoch != recs[len(recs)-1].Epoch+1 {
			return nil, false, fmt.Errorf("%w: epoch gap %d → %d within segment",
				ErrBadWAL, recs[len(recs)-1].Epoch, rec.Epoch)
		}
		recs = append(recs, rec)
	}
}

// decodeRecord parses one CRC-verified payload.
func decodeRecord(p []byte) (Record, error) {
	d := recDecoder{p: p}
	rec := Record{Kind: Kind(d.u8()), Epoch: d.u64()}
	switch rec.Kind {
	case KindCommitJoin:
		n := d.u32()
		if d.err == nil && uint64(n)*12 > uint64(len(p)) {
			return rec, fmt.Errorf("%w: strategy count %d exceeds payload", ErrBadWAL, n)
		}
		rec.Strategy = make(core.Strategy, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			rec.Strategy = append(rec.Strategy, core.Action{Peer: graph.NodeID(d.u32()), Lock: d.f64()})
		}
	case KindClose:
		rec.Node = graph.NodeID(d.u32())
	case KindTick:
		rec.Arrivals = int(d.u32())
		rec.Seed = int64(d.u64())
	case KindRefresh:
	case KindSetDemand:
		rows := d.u32()
		if d.err == nil && uint64(rows)*4 > uint64(len(p)) {
			return rec, fmt.Errorf("%w: demand row count %d exceeds payload", ErrBadWAL, rows)
		}
		demand := &traffic.Demand{}
		for i := uint32(0); i < rows && d.err == nil; i++ {
			demand.P = append(demand.P, d.floats(d.u32()))
		}
		demand.Rates = d.floats(d.u32())
		rec.Demand = demand
	default:
		return rec, fmt.Errorf("%w: unknown record kind %d", ErrBadWAL, uint8(rec.Kind))
	}
	if d.err != nil {
		return rec, fmt.Errorf("%w: %s record: %v", ErrBadWAL, rec.Kind, d.err)
	}
	if d.off != len(p) {
		return rec, fmt.Errorf("%w: %d trailing bytes in %s record", ErrBadWAL, len(p)-d.off, rec.Kind)
	}
	return rec, nil
}

type recDecoder struct {
	p   []byte
	off int
	err error
}

func (d *recDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.p) || d.off+n < d.off {
		d.err = errors.New("truncated payload")
		return nil
	}
	b := d.p[d.off : d.off+n]
	d.off += n
	return b
}

func (d *recDecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *recDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *recDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *recDecoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *recDecoder) floats(n uint32) []float64 {
	if d.err == nil && uint64(n)*8 > uint64(len(d.p)-d.off) {
		d.err = errors.New("float run exceeds payload")
		return nil
	}
	out := make([]float64, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, d.f64())
	}
	return out
}

// segmentNames filters and orders wal segment files by generation.
func segmentNames(names []string) []string {
	var segs []string
	for _, n := range names {
		if _, ok := segmentGen(n); ok {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // zero-padded generations sort lexically
	return segs
}

// segmentGen parses the generation out of a wal-<gen>.log name.
func segmentGen(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".log")
	if !ok || s == "" {
		return 0, false
	}
	var g uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		g = g*10 + uint64(c-'0')
	}
	return g, true
}
