// Package wal is the durability layer's write-ahead log: an
// append-only stream of logical mutation records in the checkpoint
// codec's little-endian CRC32-framed style. A serving session appends
// one record per write-lock mutation before it advances the epoch;
// recovery replays the log suffix on top of the newest checkpoint and
// lands on the exact pre-crash epoch.
//
// The package also owns the filesystem seam the whole durability layer
// writes through (FS/File): the background checkpointer and the log
// writer perform every create/write/sync/rename via the interface, so
// the fault-injection harness (FaultFS over MemFS) can kill the
// process model at any operation — mid-append, mid-rename — and prove
// recovery instead of asserting it.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam: exactly the operations the WAL writer and
// the checkpointer perform. Paths are plain strings; implementations
// interpret them like package os does.
type FS interface {
	// Create truncates-or-creates the file for writing.
	Create(path string) (File, error)
	// Open opens the file for reading.
	Open(path string) (io.ReadCloser, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file.
	Remove(path string) error
	// List returns the file names (not paths) in dir, in any order.
	// A missing directory is an empty listing, not an error.
	List(dir string) ([]string, error)
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
}

// File is a writable file on an FS. Sync must not return until the
// bytes written so far are durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the real filesystem.
type OS struct{}

func (OS) Create(path string) (File, error)        { return os.Create(path) }
func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }
func (OS) Rename(oldPath, newPath string) error    { return os.Rename(oldPath, newPath) }
func (OS) Remove(path string) error                { return os.Remove(path) }
func (OS) MkdirAll(dir string) error               { return os.MkdirAll(dir, 0o755) }

func (OS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// AtomicWrite writes a file crash-safely: the content goes to
// path+".tmp", is fsynced and closed, and only then renamed over path.
// A crash at any point leaves either the old file or the new one —
// never a torn hybrid — because rename is atomic and the data is
// durable before the name moves. On error the temp file is removed
// best-effort.
func AtomicWrite(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: rename %s: %w", filepath.Base(path), err)
	}
	return nil
}
