package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// testRecords is a lumpy mix of every record kind with sequential
// epochs starting at first.
func testRecords(first uint64, n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := Record{Epoch: first + uint64(i)}
		switch i % 5 {
		case 0:
			rec.Kind = KindCommitJoin
			rec.Strategy = core.Strategy{{Peer: 3, Lock: 1.25}, {Peer: 7, Lock: 0.5}}
		case 1:
			rec.Kind = KindClose
			rec.Node = 11
		case 2:
			rec.Kind = KindTick
			rec.Arrivals = 4
			rec.Seed = -99
		case 3:
			rec.Kind = KindRefresh
		case 4:
			rec.Kind = KindSetDemand
			rec.Demand = &traffic.Demand{
				P:     [][]float64{{0, 0.5, 0.5}, {1, 0, 0}, {0.25, 0.75, 0}},
				Rates: []float64{1, 2, 0.5},
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

func appendAll(t testing.TB, w *Writer, recs []Record) {
	t.Helper()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func requireRecords(t testing.TB, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALRoundTripAllKinds(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(2, 10)
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	log, err := ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if log.Torn || log.Segments != 1 {
		t.Fatalf("log torn=%v segments=%d, want clean single segment", log.Torn, log.Segments)
	}
	requireRecords(t, log.Records, recs)
}

func TestWALEmptyDir(t *testing.T) {
	log, err := ReadAll(NewMemFS(), "/nowhere")
	if err != nil {
		t.Fatalf("ReadAll on empty dir: %v", err)
	}
	if len(log.Records) != 0 || log.Segments != 0 {
		t.Fatalf("empty dir decoded %d records over %d segments", len(log.Records), log.Segments)
	}
}

// TestWALSyncEveryRecordSurvivesCrash pins the fsync-every-record
// durability contract: every acknowledged append survives a crash that
// drops all unsynced bytes.
func TestWALSyncEveryRecordSurvivesCrash(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{Every: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(1, 7)
	appendAll(t, w, recs)
	fsys.Crash(rand.New(rand.NewSource(1))) // no Close: the process died
	log, err := ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll after crash: %v", err)
	}
	requireRecords(t, log.Records, recs)
}

// TestWALSyncBatchCrashKeepsPrefix: with Every=N, a crash may lose the
// unsynced tail but never a synced record, and whatever survives is a
// strict prefix.
func TestWALSyncBatchCrashKeepsPrefix(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		fsys := NewMemFS()
		w, err := Create(fsys, "/d", SyncPolicy{Every: 4})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		recs := testRecords(1, 10) // syncs after records 4 and 8
		appendAll(t, w, recs)
		fsys.Crash(rand.New(rand.NewSource(seed)))
		log, err := ReadAll(fsys, "/d")
		if err != nil {
			t.Fatalf("seed %d: ReadAll after crash: %v", seed, err)
		}
		if len(log.Records) < 8 {
			t.Fatalf("seed %d: crash lost synced records: %d < 8", seed, len(log.Records))
		}
		requireRecords(t, log.Records, recs[:len(log.Records)])
	}
}

func TestWALSyncTimer(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{Interval: time.Millisecond})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(1, 5)
	appendAll(t, w, recs)
	// The timer must eventually make the records durable without Close.
	deadline := time.Now().Add(2 * time.Second)
	for {
		probe := fsys.Clone()
		probe.Crash(rand.New(rand.NewSource(1)))
		log, err := ReadAll(probe, "/d")
		if err == nil && len(log.Records) == len(recs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timer sync never made the records durable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWALRotatePruneAndRecoveredGenerations(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(1, 9)
	appendAll(t, w, recs[:3])
	sealed, err := w.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if len(sealed) != 1 {
		t.Fatalf("Rotate sealed %d segments, want 1", len(sealed))
	}
	appendAll(t, w, recs[3:6])
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A second writer (the recovered process) starts a later generation
	// and records the survivors as sealed.
	w2, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create(recovered): %v", err)
	}
	appendAll(t, w2, recs[6:])
	log, err := ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if log.Segments != 3 {
		t.Fatalf("segments = %d, want 3", log.Segments)
	}
	requireRecords(t, log.Records, recs)

	// Pruning the first writer's sealed segment drops its records.
	sealed2, err := w2.Rotate()
	if err != nil {
		t.Fatalf("Rotate(recovered): %v", err)
	}
	if len(sealed2) != 3 { // two inherited + its own first segment
		t.Fatalf("recovered Rotate sealed %d segments, want 3", len(sealed2))
	}
	w2.Prune(sealed2)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	log, err = ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll after prune: %v", err)
	}
	if len(log.Records) != 0 || log.Segments != 1 {
		t.Fatalf("after prune: %d records over %d segments, want 0 over 1", len(log.Records), log.Segments)
	}
}

// TestWALSuffixAndPartialPrune pins the recovery contract: a log with
// whole early segments missing (a prune that half-finished before a
// crash) still reads, and Suffix proves contiguity for exactly the
// part recovery replays.
func TestWALSuffixAndPartialPrune(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(1, 9)
	appendAll(t, w, recs[:3])
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, w, recs[3:6])
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, w, recs[6:])
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	log, err := ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	for base := uint64(0); base <= 9; base++ {
		suffix, err := log.Suffix(base)
		if err != nil {
			t.Fatalf("Suffix(%d): %v", base, err)
		}
		requireRecords(t, suffix, recs[base:])
	}

	// Drop the first sealed segment: epochs 1-3 gone, as after a prune
	// that removed one generation and died.
	if err := fsys.Remove("/d/wal-00000000.log"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	log, err = ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll after partial prune: %v", err)
	}
	suffix, err := log.Suffix(3)
	if err != nil {
		t.Fatalf("Suffix(3) after partial prune: %v", err)
	}
	requireRecords(t, suffix, recs[3:])
	// A base below the surviving records demands epochs the prune
	// deleted: recovery from that old a checkpoint must refuse.
	if _, err := log.Suffix(1); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("Suffix(1) after partial prune: err = %v, want ErrBadWAL", err)
	}
}

func TestWALEpochGapRejected(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendAll(t, w, testRecords(5, 3))
	if err := w.Append(Record{Kind: KindRefresh, Epoch: 11}); err != nil { // gap: 7 → 11
		t.Fatalf("Append: %v", err)
	}
	w.Close()
	if _, err := ReadAll(fsys, "/d"); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("epoch gap: err = %v, want ErrBadWAL", err)
	}
}

// encodeSegment renders records as one in-memory segment stream.
func encodeSegment(recs []Record) []byte {
	buf := segHeader()
	for _, rec := range recs {
		buf = appendFrame(buf, rec)
	}
	return buf
}

// TestWALTruncationMatrix cuts a segment at every 7th byte: the reader
// must return cleanly with a strict prefix of the original records —
// the crash-mid-append contract — and never an error or panic.
func TestWALTruncationMatrix(t *testing.T) {
	recs := testRecords(1, 10)
	data := encodeSegment(recs)
	for cut := 0; cut < len(data); cut += 7 {
		got, torn, err := ReadSegment(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
		if len(got) == len(recs) {
			t.Fatalf("truncation at %d decoded all %d records", cut, len(recs))
		}
		if !torn && cut > len(segHeader()) && len(got) < len(recs) {
			// A cut exactly on a frame boundary is a clean EOF; any
			// other cut must be reported torn.
			if !frameBoundary(recs, cut) {
				t.Fatalf("truncation at %d lost records without torn flag", cut)
			}
		}
		requireRecords(t, got, recs[:len(got)])
	}
}

// frameBoundary reports whether cut lands exactly between frames.
func frameBoundary(recs []Record, cut int) bool {
	off := len(segHeader())
	if cut == off {
		return true
	}
	for _, rec := range recs {
		off = len(appendFrame(make([]byte, 0, 256)[:0], rec)) + off
		if cut == off {
			return true
		}
	}
	return false
}

// TestWALBitFlipMatrix flips a bit at every 7th byte of a sealed
// mid-stream segment: complete frames are CRC-guarded, so a flip
// either surfaces as ErrBadWAL outright, or tears the segment — and a
// tear that loses records leaves an epoch gap that Suffix(0), the
// recovery-side contiguity proof, must refuse. No flip may survive as
// a valid recovery stream.
func TestWALBitFlipMatrix(t *testing.T) {
	recs := testRecords(1, 10)
	fsys := NewMemFS()
	w, err := Create(fsys, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appendAll(t, w, recs[:7])
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, w, recs[7:])
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	clean, err := ReadAll(fsys, "/d")
	if err != nil {
		t.Fatalf("ReadAll(clean): %v", err)
	}
	requireRecords(t, clean.Records, recs)

	first, err := io.ReadAll(mustOpen(t, fsys, "/d/wal-00000000.log"))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	for pos := 0; pos < len(first); pos += 7 {
		for _, mask := range []byte{0x01, 0x40} {
			mutated := NewMemFS()
			copyFS(t, fsys, mutated, "/d")
			bad := append([]byte(nil), first...)
			bad[pos] ^= mask
			writeFile(t, mutated, "/d/wal-00000000.log", bad)
			log, err := ReadAll(mutated, "/d")
			if err != nil {
				if !errors.Is(err, ErrBadWAL) {
					t.Fatalf("flip %#02x at %d: non-sentinel err %v", mask, pos, err)
				}
				continue
			}
			if _, serr := log.Suffix(0); serr == nil {
				t.Fatalf("flip %#02x at %d: accepted as a valid recovery stream", mask, pos)
			} else if !errors.Is(serr, ErrBadWAL) {
				t.Fatalf("flip %#02x at %d: non-sentinel Suffix err %v", mask, pos, serr)
			}
		}
	}
}

func mustOpen(t testing.TB, fsys FS, path string) io.ReadCloser {
	t.Helper()
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return f
}

func copyFS(t testing.TB, src, dst *MemFS, dir string) {
	t.Helper()
	names, err := src.List(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, name := range names {
		data, err := io.ReadAll(mustOpen(t, src, dir+"/"+name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		writeFile(t, dst, dir+"/"+name, data)
	}
}

func writeFile(t testing.TB, fsys FS, path string, data []byte) {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestWALRejectsVersionSkewAndBadMagic(t *testing.T) {
	data := encodeSegment(testRecords(1, 2))
	badVersion := append([]byte(nil), data...)
	badVersion[8] = 0xfe
	if _, _, err := ReadSegment(bytes.NewReader(badVersion)); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("version skew: err = %v, want ErrBadWAL", err)
	}
	badMagic := append([]byte(nil), data...)
	badMagic[0] ^= 0xff
	if _, _, err := ReadSegment(bytes.NewReader(badMagic)); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("bad magic: err = %v, want ErrBadWAL", err)
	}
}

func TestWALOversizedFrameRejected(t *testing.T) {
	data := encodeSegment(testRecords(1, 1))
	// Blow up the first frame's length field beyond maxRecordBytes.
	for i := 0; i < 4; i++ {
		data[12+i] = 0xff
	}
	if _, _, err := ReadSegment(bytes.NewReader(data)); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("oversized frame: err = %v, want ErrBadWAL", err)
	}
}

func TestWALStickyFailureClearsOnRotate(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, rand.New(rand.NewSource(1)), 0)
	w, err := Create(ffs, "/d", SyncPolicy{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recs := testRecords(1, 4)
	appendAll(t, w, recs[:1])
	ffs.FailAt(ffs.Steps() + 1) // next op (the append's Write) fails once
	if err := w.Append(recs[1]); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under fault: err = %v, want ErrInjected", err)
	}
	// Sticky until rotated.
	if err := w.Append(recs[2]); err == nil {
		t.Fatal("Append after failure succeeded without Rotate")
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// The failed writer's segment may hold a torn frame; fresh appends
	// land in the new segment. Epochs must stay contiguous with what
	// actually persisted (record 1 at epoch 1), so resume from epoch 2.
	appendAll(t, w, recs[1:])
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	log, err := ReadAll(mem, "/d")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	requireRecords(t, log.Records, recs)
}

func TestAtomicWriteCrashLeavesOldOrNew(t *testing.T) {
	const path = "/d/ckpt.bin"
	oldContent := []byte("generation-1")
	newContent := []byte("generation-2-longer")
	for crashAt := 1; crashAt <= 6; crashAt++ {
		mem := NewMemFS()
		writeFile(t, mem, path, oldContent)
		ffs := NewFaultFS(mem, rand.New(rand.NewSource(int64(crashAt))), crashAt)
		err := AtomicWrite(ffs, path, func(w io.Writer) error {
			_, err := w.Write(newContent)
			return err
		})
		ffs.ClearCrash()
		data, rerr := io.ReadAll(mustOpen(t, mem, path))
		if rerr != nil {
			t.Fatalf("crashAt %d: target vanished: %v", crashAt, rerr)
		}
		if !bytes.Equal(data, oldContent) && !bytes.Equal(data, newContent) {
			t.Fatalf("crashAt %d: torn target %q", crashAt, data)
		}
		if err == nil && !bytes.Equal(data, newContent) {
			t.Fatalf("crashAt %d: AtomicWrite reported success but target is old", crashAt)
		}
	}
	// And the no-fault path replaces the file.
	mem := NewMemFS()
	writeFile(t, mem, path, oldContent)
	if err := AtomicWrite(mem, path, func(w io.Writer) error {
		_, err := w.Write(newContent)
		return err
	}); err != nil {
		t.Fatalf("AtomicWrite: %v", err)
	}
	data, err := io.ReadAll(mustOpen(t, mem, path))
	if err != nil || !bytes.Equal(data, newContent) {
		t.Fatalf("AtomicWrite result %q (%v), want %q", data, err, newContent)
	}
}

// FuzzWALRead hammers the segment reader with arbitrary bytes: it must
// return records or ErrBadWAL, never panic, and whatever it returns
// must re-encode to a decodable stream (the codec is self-consistent).
func FuzzWALRead(f *testing.F) {
	f.Add(encodeSegment(testRecords(1, 6)))
	f.Add(encodeSegment(nil))
	f.Add(encodeSegment(testRecords(9, 1))[:17])
	f.Add(segHeader())
	f.Add([]byte{})
	f.Add([]byte("LCGWAL\x00\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadWAL) {
				t.Fatalf("non-sentinel error: %v", err)
			}
			return
		}
		round, _, err := ReadSegment(bytes.NewReader(encodeSegment(recs)))
		if err != nil {
			t.Fatalf("re-encode of accepted records failed: %v", err)
		}
		if len(round) != len(recs) {
			t.Fatalf("re-encode decoded %d records, want %d", len(round), len(recs))
		}
	})
}

func ExampleAtomicWrite() {
	fsys := NewMemFS()
	_ = AtomicWrite(fsys, "/state/ckpt.bin", func(w io.Writer) error {
		_, err := io.WriteString(w, "snapshot")
		return err
	})
	f, _ := fsys.Open("/state/ckpt.bin")
	data, _ := io.ReadAll(f)
	fmt.Println(string(data))
	// Output: snapshot
}
