package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed reports an operation on a fault-injected filesystem after
// its simulated process death: everything fails until the harness
// "restarts" by clearing the crash.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the transient scripted failure the fault harness
// returns at a FailAt point — an I/O error without a crash, the shape
// a full disk or EIO briefly presents.
var ErrInjected = errors.New("wal: injected fault")

// MemFS is an in-memory FS with an explicit durability model: bytes
// written to a file are volatile until Sync, and Crash discards a
// random suffix of every file's unsynced tail — the prefix-persistence
// model journaling filesystems give a length-framed log. It is the
// substrate the fault-injection torture tests run on.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{}}
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: file does not exist", path)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("wal: rename %s: file does not exist", oldPath)
	}
	delete(m.files, oldPath)
	m.files[newPath] = f
	// Rename is the durability point of the atomic-write protocol: the
	// model treats a renamed file as fully durable, matching the
	// fsync-before-rename discipline AtomicWrite enforces.
	f.synced = len(f.data)
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("wal: remove %s: file does not exist", path)
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for path := range m.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Crash simulates process death: every file loses a seeded-random
// suffix of its unsynced bytes (possibly none, possibly all), so a
// record appended but not yet fsynced may survive whole, torn, or not
// at all. Open handles keep working — the crash models the machine,
// the FaultFS wrapper models the process dying.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if tail := len(f.data) - f.synced; tail > 0 {
			f.data = f.data[:f.synced+rng.Intn(tail+1)]
		}
		f.synced = len(f.data)
	}
}

// Clone deep-copies the filesystem — the torture harness snapshots
// pre-crash state, and benchmarks recover from a pristine copy per
// iteration.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for path, f := range m.files {
		out.files[path] = &memFile{data: append([]byte(nil), f.data...), synced: f.synced}
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, errors.New("wal: write on closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return errors.New("wal: sync on closed file")
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// FaultFS wraps a MemFS and injects failures by operation index: every
// Create/Open/Rename/Remove/Write/Sync counts one step. A step listed
// in FailAt returns ErrInjected once (transient fault, no crash); when
// the step counter reaches CrashAt the process model dies — for a
// rename, a seeded coin decides whether the rename applied first
// (crash-after) or not (crash-before, the torn mid-rename case) — the
// underlying MemFS drops unsynced tails, and every later operation
// returns ErrCrashed until ClearCrash.
type FaultFS struct {
	mu      sync.Mutex
	inner   *MemFS
	rng     *rand.Rand
	step    int
	crashAt int
	failAt  map[int]bool
	crashed bool
	ops     []string
}

// NewFaultFS wraps inner with fault injection driven by rng. crashAt
// ≤ 0 means never crash.
func NewFaultFS(inner *MemFS, rng *rand.Rand, crashAt int) *FaultFS {
	return &FaultFS{inner: inner, rng: rng, crashAt: crashAt, failAt: map[int]bool{}}
}

// FailAt schedules a transient ErrInjected at the given operation
// indices (1-based, like CrashAt).
func (f *FaultFS) FailAt(steps ...int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range steps {
		f.failAt[s] = true
	}
}

// Steps reports how many operations have run — a dry run measures the
// op-count envelope the torture loop then crashes inside of.
func (f *FaultFS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Ops returns the operation log: entry i-1 describes step i ("write
// <path>", "rename <old> <new>", …). A dry run's log is how the
// torture harness aims a crash at a specific kind of operation —
// mid-append, mid-rename — instead of hoping a random point hits one.
func (f *FaultFS) Ops() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ops...)
}

// Crashed reports whether the simulated process death fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// ClearCrash lifts the crash state: the "restarted process" sees the
// surviving bytes. The step counter keeps running with crash disarmed.
func (f *FaultFS) ClearCrash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crashAt = 0
}

// advance consumes one operation step. It returns a non-nil error when
// the step must fail; applyFirst says whether the in-flight operation's
// effect reached the cache before the process died (a seeded coin — the
// torn mid-rename and mid-append cases), and crashNow tells the caller
// to invoke crashMachine AFTER applying. The ordering matters: the
// machine's crash truncation must run after the op lands, or a file
// could keep bytes written later than bytes it lost — a non-prefix
// state real hardware cannot produce.
func (f *FaultFS) advance(op string) (applyFirst, crashNow bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, false, ErrCrashed
	}
	f.step++
	f.ops = append(f.ops, op)
	if f.failAt[f.step] {
		delete(f.failAt, f.step)
		return false, false, fmt.Errorf("%w at step %d", ErrInjected, f.step)
	}
	if f.crashAt > 0 && f.step >= f.crashAt {
		f.crashed = true
		return f.rng.Intn(2) == 0, true, ErrCrashed
	}
	return true, false, nil
}

// crashMachine drops every file's unsynced tail — the machine half of
// the crash, run after the in-flight operation settled.
func (f *FaultFS) crashMachine() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner.Crash(f.rng)
}

func (f *FaultFS) Create(path string) (File, error) {
	apply, crash, err := f.advance("create " + path)
	if err != nil {
		if apply {
			f.inner.Create(path) //nolint:errcheck
		}
		if crash {
			f.crashMachine()
		}
		return nil, err
	}
	h, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h, path: path}, nil
}

func (f *FaultFS) Open(path string) (io.ReadCloser, error) {
	if _, crash, err := f.advance("open " + path); err != nil {
		if crash {
			f.crashMachine()
		}
		return nil, err
	}
	return f.inner.Open(path)
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	apply, crash, err := f.advance("rename " + oldPath + " " + newPath)
	if err != nil {
		if apply {
			// Crash "after" the rename took effect: the new name is
			// durable, the process still dies.
			f.inner.Rename(oldPath, newPath) //nolint:errcheck
		}
		if crash {
			f.crashMachine()
		}
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(path string) error {
	apply, crash, err := f.advance("remove " + path)
	if err != nil {
		if apply {
			f.inner.Remove(path) //nolint:errcheck
		}
		if crash {
			f.crashMachine()
		}
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) MkdirAll(dir string) error {
	// Directory creation is not a counted fault point: the layer makes
	// one directory up front and the torture loop aims at the steady
	// state, not the mkdir.
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) List(dir string) ([]string, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.List(dir)
}

type faultHandle struct {
	fs    *FaultFS
	inner File
	path  string
}

func (h *faultHandle) Write(p []byte) (int, error) {
	apply, crash, err := h.fs.advance("write " + h.path)
	if err != nil {
		if apply {
			// The write reaches the cache, THEN the machine dies — so the
			// crash may keep any prefix of it, never bytes beyond a hole.
			h.inner.Write(p) //nolint:errcheck
		}
		if crash {
			h.fs.crashMachine()
		}
		return 0, err
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	apply, crash, err := h.fs.advance("sync " + h.path)
	if err != nil {
		if apply {
			h.inner.Sync() //nolint:errcheck
		}
		if crash {
			h.fs.crashMachine()
		}
		return err
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error {
	// Close is not a fault point: it neither persists nor loses data in
	// the model.
	return h.inner.Close()
}
