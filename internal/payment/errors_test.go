package payment

import (
	"errors"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
)

// TestPayEpsilonEdgeCommitsAtomically locks the fix for a latent commit
// bug: the routing epsilon admits a hop whose fee-laden carry exceeds the
// balance by under 1e-12, and the commit used to drive that balance a
// hair negative, fail SetCapacity mid-path, and leave the upstream hops
// committed — a silent atomicity violation. The drained side must now
// clamp to exactly zero and the payment succeed in one attempt.
func TestPayEpsilonEdgeCommitsAtomically(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0.05}, 3, 100)
	first, err := n.OpenChannel(0, 1, 10, 10)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// The last hop's balance sits within the 1e-12 feasibility epsilon of
	// the carry (the base amount, 2).
	last, err := n.OpenChannel(1, 2, 2-1e-13, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	receipt, err := n.Pay(0, 2, 2)
	if err != nil {
		t.Fatalf("Pay across the epsilon edge: %v", err)
	}
	if len(receipt.Path) != 3 {
		t.Fatalf("expected the direct 2-hop path, got %v", receipt.Path)
	}
	balA, balB, err := n.Balances(last)
	if err != nil {
		t.Fatalf("Balances: %v", err)
	}
	if balA != 0 {
		t.Errorf("drained side must clamp to exactly zero, got %v", balA)
	}
	if balB != 5+2 {
		t.Errorf("credited side = %v, want 7", balB)
	}
	// The upstream hop carried amount+fee and must be committed too.
	balA, balB, err = n.Balances(first)
	if err != nil {
		t.Fatalf("Balances: %v", err)
	}
	if balA != 10-2.05 || balB != 10+2.05 {
		t.Errorf("upstream hop balances = (%v,%v), want (7.95,12.05)", balA, balB)
	}
}

// TestCloseChannelErrorPaths exercises the lifecycle errors: closing an
// unknown channel, closing twice, and the accessors on dead channels.
func TestCloseChannelErrorPaths(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 100)
	id, err := n.OpenChannel(0, 1, 5, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := n.CloseChannel(id+99, chain.TxCooperativeClose, 0); !errors.Is(err, ErrUnknownChannel) {
		t.Errorf("close unknown channel: got %v, want ErrUnknownChannel", err)
	}
	if a, b, err := n.Channel(id); err != nil || a != 0 || b != 1 {
		t.Errorf("Channel(%d) = (%d,%d,%v), want (0,1,nil)", id, a, b, err)
	}
	if err := n.CloseChannel(id, chain.TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	if err := n.CloseChannel(id, chain.TxCooperativeClose, 0); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("double close: got %v, want ErrChannelClosed", err)
	}
	if _, _, err := n.Channel(id); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("Channel on closed: got %v, want ErrChannelClosed", err)
	}
	if _, _, err := n.Balances(id); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("Balances on closed: got %v, want ErrChannelClosed", err)
	}
	if _, _, err := n.Channel(id + 99); !errors.Is(err, ErrUnknownChannel) {
		t.Errorf("Channel unknown id: got %v, want ErrUnknownChannel", err)
	}
}

// TestResetBalancesSkipsClosedChannels pins that rebalancing only touches
// live channels: a closed channel stays closed and the open one returns
// to deposits.
func TestResetBalancesSkipsClosedChannels(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 3, 100)
	closed, err := n.OpenChannel(0, 1, 4, 4)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	live, err := n.OpenChannel(1, 2, 6, 6)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.Pay(1, 2, 2.5); err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if err := n.CloseChannel(closed, chain.TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	if err := n.ResetBalances(); err != nil {
		t.Fatalf("ResetBalances: %v", err)
	}
	if balA, balB, err := n.Balances(live); err != nil || balA != 6 || balB != 6 {
		t.Errorf("live channel after reset = (%v,%v,%v), want (6,6,nil)", balA, balB, err)
	}
	if _, _, err := n.Balances(closed); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("closed channel resurrected by reset: %v", err)
	}
}

// TestOpenChannelLedgerRejection verifies a deposit exceeding the on-chain
// funds fails cleanly without registering a channel.
func TestOpenChannelLedgerRejection(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 3)
	if _, err := n.OpenChannel(0, 1, 100, 0); err == nil {
		t.Fatal("OpenChannel with unfundable deposit succeeded")
	}
	if got := n.Topology().NumChannels(); got != 0 {
		t.Errorf("failed open left %d channels in the topology", got)
	}
}
