package payment

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// TestPaymentFuzzConservation fires thousands of random payments —
// including infeasible ones — and checks after every operation that
// (a) off-chain channel totals are conserved, (b) every balance stays
// non-negative, and (c) failures never mutate state.
func TestPaymentFuzzConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	g := graph.BarabasiAlbert(10, 2, 20, rng)
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	n, err := FromGraph(ledger, fee.Linear{Base: 0.05, Rate: 0.01}, g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	channelTotal := func() float64 {
		var total float64
		for id := ChannelID(0); int(id) < len(n.channels); id++ {
			ch, ok := n.channels[id]
			if !ok || !ch.open {
				continue
			}
			total += ch.balA + ch.balB
		}
		return total
	}
	initialTotal := channelTotal()
	snapshotBalances := func() map[ChannelID][2]float64 {
		snap := make(map[ChannelID][2]float64)
		for id, ch := range n.channels {
			if ch.open {
				snap[id] = [2]float64{ch.balA, ch.balB}
			}
		}
		return snap
	}
	for i := 0; i < 5000; i++ {
		from := graph.NodeID(rng.Intn(10))
		to := graph.NodeID(rng.Intn(10))
		amount := rng.Float64() * 30 // often infeasible on purpose
		before := snapshotBalances()
		_, payErr := n.Pay(from, to, amount)
		if payErr != nil {
			after := snapshotBalances()
			for id, b := range before {
				if after[id] != b {
					t.Fatalf("iteration %d: failed payment mutated channel %d: %v → %v",
						i, id, b, after[id])
				}
			}
		}
		// Totals conserved up to the fees that moved between parties
		// (fees stay inside channels, so the grand total is invariant).
		if got := channelTotal(); math.Abs(got-initialTotal) > 1e-6 {
			t.Fatalf("iteration %d: channel total drifted: %v vs %v", i, got, initialTotal)
		}
		for id, ch := range n.channels {
			if ch.open && (ch.balA < -1e-9 || ch.balB < -1e-9) {
				t.Fatalf("iteration %d: channel %d negative balance (%v,%v)", i, id, ch.balA, ch.balB)
			}
		}
	}
	successes, failures := n.Stats()
	if successes == 0 || failures == 0 {
		t.Fatalf("fuzz should exercise both outcomes: %d/%d", successes, failures)
	}
}

// TestChannelClosureInjection closes random channels mid-stream and
// verifies routing adapts (no payment ever crosses a closed channel) and
// on-chain conservation holds at the end.
func TestChannelClosureInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Complete(6, 50)
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	n, err := FromGraph(ledger, fee.Constant{F: 0.1}, g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	// Baseline includes the fees already burned by the channel openings,
	// so the final conservation check is exact.
	initial := ledger.TotalValue() + ledger.Burned()
	var open []ChannelID
	for id, ch := range n.channels {
		if ch.open {
			open = append(open, id)
		}
	}
	closed := make(map[ChannelID]bool)
	for i := 0; i < 1000; i++ {
		if len(open) > 6 && i%100 == 50 {
			// Close a random channel (alternating kinds).
			idx := rng.Intn(len(open))
			id := open[idx]
			a, _, err := n.Channel(id)
			if err != nil {
				t.Fatalf("Channel: %v", err)
			}
			kind := chain.TxCooperativeClose
			if i%200 == 50 {
				kind = chain.TxUnilateralClose
			}
			if err := n.CloseChannel(id, kind, a); err != nil {
				t.Fatalf("CloseChannel: %v", err)
			}
			closed[id] = true
			open = append(open[:idx], open[idx+1:]...)
		}
		from := graph.NodeID(rng.Intn(6))
		to := graph.NodeID(rng.Intn(6))
		if from == to {
			continue
		}
		receipt, payErr := n.Pay(from, to, 1+rng.Float64()*3)
		if payErr != nil {
			continue
		}
		// No hop of a successful payment may touch a closed channel:
		// verify every consecutive pair is still connected live.
		for k := 0; k+1 < len(receipt.Path); k++ {
			if !n.topo.HasEdgeBetween(receipt.Path[k], receipt.Path[k+1]) {
				t.Fatalf("payment crossed a dead adjacency %v", receipt.Path)
			}
		}
	}
	if len(closed) == 0 {
		t.Fatal("no channels were closed; injection did not run")
	}
	if got := ledger.TotalValue() + ledger.Burned(); math.Abs(got-initial) > 1e-6 {
		t.Fatalf("on-chain value not conserved: %v vs %v", got, initial)
	}
}

// TestPayConcurrentChannelsSamePair routes over parallel channels
// between the same pair once the first is depleted.
func TestPayParallelChannelFailover(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 100)
	if _, err := n.OpenChannel(0, 1, 3, 0); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.OpenChannel(0, 1, 5, 0); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// Amount 4 exceeds the first channel but fits the second.
	if _, err := n.Pay(0, 1, 4); err != nil {
		t.Fatalf("Pay over parallel channels: %v", err)
	}
	// Total sendable now 3 + 1; amount 4 must fail, 3 must succeed.
	if _, err := n.Pay(0, 1, 4); err == nil {
		t.Fatal("overdraft across parallel channels accepted (no split routing)")
	}
	if _, err := n.Pay(0, 1, 3); err != nil {
		t.Fatalf("Pay within first channel: %v", err)
	}
}
