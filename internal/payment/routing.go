package payment

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// Receipt describes a successfully executed multi-hop payment.
type Receipt struct {
	// Path is the node sequence from sender to receiver.
	Path []graph.NodeID
	// Amount is what the receiver obtained.
	Amount float64
	// TotalFee is what the sender paid on top of Amount.
	TotalFee float64
	// HopAmounts[k] is the value carried by the k-th channel of the path
	// (amount plus the fees of the intermediaries downstream of it).
	HopAmounts []float64
}

// Pay routes amount from sender to receiver and executes the payment
// atomically. Each intermediary charges the global fee function applied
// to the base amount; hop k of an L-hop path therefore carries
// amount + (L−1−k)·F(amount) (§II-A: the sender pays every intermediary).
// The route is the shortest feasible path on the capacity-reduced
// subgraph of §II-B; when fee-laden amounts exceed some hop's balance the
// router retries with conservative requirements before giving up.
//
// On any failure no balance changes (the HTLC atomicity of footnote 1).
func (n *Network) Pay(sender, receiver graph.NodeID, amount float64) (Receipt, error) {
	if !n.topo.HasNode(sender) || !n.topo.HasNode(receiver) {
		return Receipt{}, fmt.Errorf("pay %d→%d: %w", sender, receiver, ErrUnknownUser)
	}
	if sender == receiver || amount <= 0 || math.IsNaN(amount) {
		return Receipt{}, fmt.Errorf("pay %d→%d amount %v: %w", sender, receiver, amount, ErrBadAmount)
	}
	perHopFee := n.feeFn.Fee(amount)

	// First attempt: route where every hop can carry at least the base
	// amount, then verify the fee-laden amounts. Second attempt: require
	// the worst-case laden amount everywhere (conservative but always
	// sufficient). The loop re-verifies because the path length — and
	// with it the laden amounts — changes between attempts.
	requirements := []float64{amount, 0 /* placeholder, set below */}
	for attempt := 0; attempt < 2; attempt++ {
		need := requirements[attempt]
		if attempt == 1 {
			// Worst case: first hop of the longest plausible path.
			maxLen := n.topo.NumNodes()
			need = amount + float64(maxLen-1)*perHopFee
		}
		edges, ok := n.shortestFeasiblePath(sender, receiver, need)
		if !ok {
			continue
		}
		receipt, err := n.executePath(edges, amount, perHopFee)
		if err == nil {
			n.successes++
			return receipt, nil
		}
	}
	n.failures++
	return Receipt{}, fmt.Errorf("pay %d→%d amount %v: %w", sender, receiver, amount, ErrNoRoute)
}

// shortestFeasiblePath runs BFS over directed edges with capacity ≥ need
// and returns the edge sequence of one shortest sender→receiver path.
func (n *Network) shortestFeasiblePath(sender, receiver graph.NodeID, need float64) ([]graph.EdgeID, bool) {
	type visit struct {
		via  graph.EdgeID
		prev graph.NodeID
	}
	visited := make(map[graph.NodeID]visit, n.topo.NumNodes())
	visited[sender] = visit{via: graph.InvalidEdge, prev: graph.InvalidNode}
	queue := []graph.NodeID{sender}
	found := false
	for len(queue) > 0 && !found {
		v := queue[0]
		queue = queue[1:]
		n.topo.ForEachOut(v, func(e graph.Edge) bool {
			if e.Capacity+1e-12 < need {
				return true
			}
			if _, seen := visited[e.To]; seen {
				return true
			}
			visited[e.To] = visit{via: e.ID, prev: v}
			if e.To == receiver {
				found = true
				return false
			}
			queue = append(queue, e.To)
			return true
		})
	}
	if !found {
		return nil, false
	}
	var rev []graph.EdgeID
	for at := receiver; at != sender; {
		step := visited[at]
		rev = append(rev, step.via)
		at = step.prev
	}
	edges := make([]graph.EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return edges, true
}

// executePath verifies every hop against its fee-laden amount and then
// commits all balance updates; verification failures leave the network
// untouched.
func (n *Network) executePath(edges []graph.EdgeID, amount, perHopFee float64) (Receipt, error) {
	hops := len(edges)
	type step struct {
		ch     *channelState
		aToB   bool
		carry  float64
		sender graph.NodeID
	}
	steps := make([]step, hops)
	hopAmounts := make([]float64, hops)
	for k, id := range edges {
		e, ok := n.topo.Edge(id)
		if !ok {
			return Receipt{}, fmt.Errorf("hop %d: %w", k, ErrUnknownChannel)
		}
		carry := amount + float64(hops-1-k)*perHopFee
		hopAmounts[k] = carry
		if e.Capacity+1e-12 < carry {
			return Receipt{}, fmt.Errorf("hop %d needs %v, has %v: %w", k, carry, e.Capacity, ErrNoRoute)
		}
		ch, aToB, err := n.channelForEdge(id)
		if err != nil {
			return Receipt{}, err
		}
		steps[k] = step{ch: ch, aToB: aToB, carry: carry, sender: e.From}
	}
	// Commit phase: all hops verified, apply in order.
	path := make([]graph.NodeID, 0, hops+1)
	for k, st := range steps {
		if err := st.ch.move(n, st.aToB, st.carry); err != nil {
			// The verify phase guarantees feasibility; failure here is a
			// programming error worth surfacing loudly in tests.
			return Receipt{}, fmt.Errorf("commit hop %d: %w", k, err)
		}
		path = append(path, st.sender)
		if k > 0 {
			// The intermediary at the head of this hop keeps its fee.
			n.earned[st.sender] += perHopFee
			n.forwarded[st.sender]++
		}
	}
	last, _ := n.topo.Edge(edges[hops-1])
	path = append(path, last.To)
	return Receipt{
		Path:       path,
		Amount:     amount,
		TotalFee:   float64(hops-1) * perHopFee,
		HopAmounts: hopAmounts,
	}, nil
}
