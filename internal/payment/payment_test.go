package payment

import (
	"errors"
	"math"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// newTestNetwork creates a network with nUsers funded accounts and the
// given fee function.
func newTestNetwork(t *testing.T, feeFn fee.Func, nUsers int, funds float64) *Network {
	t.Helper()
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	n := NewNetwork(ledger, feeFn)
	for i := 0; i < nUsers; i++ {
		id := n.AddUser()
		if err := ledger.Fund(chain.AccountID(id), funds); err != nil {
			t.Fatalf("Fund: %v", err)
		}
	}
	return n
}

func TestFigure1ChannelTrace(t *testing.T) {
	// Reproduces Figure 1 exactly: balances (10,7); u pays 10 → (0,17);
	// u pays 6 → fails, unchanged; then the example's earlier state shows
	// a payment of 5 succeeding from (5,12). We replay the figure's
	// three panels: (10,7) —x=10→ (0,17); at (5,12) a u→v payment of 6
	// fails; a 5-payment from (10,7) leads to (5,12).
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 100)
	ch, err := n.OpenChannel(0, 1, 10, 7)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// Panel 1→2 of the figure: pay 5 (10,7) → (5,12).
	if _, err := n.Pay(0, 1, 5); err != nil {
		t.Fatalf("pay 5: %v", err)
	}
	balA, balB, err := n.Balances(ch)
	if err != nil || balA != 5 || balB != 12 {
		t.Fatalf("balances = (%v,%v), want (5,12)", balA, balB)
	}
	// Panel 3: payment of 6 from (5,12) fails; balances untouched.
	if _, err := n.Pay(0, 1, 6); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("pay 6 error = %v, want ErrNoRoute", err)
	}
	balA, balB, _ = n.Balances(ch)
	if balA != 5 || balB != 12 {
		t.Fatalf("failed payment moved balances to (%v,%v)", balA, balB)
	}
	// Pay the remaining 5: (0,17).
	if _, err := n.Pay(0, 1, 5); err != nil {
		t.Fatalf("pay 5: %v", err)
	}
	balA, balB, _ = n.Balances(ch)
	if balA != 0 || balB != 17 {
		t.Fatalf("balances = (%v,%v), want (0,17)", balA, balB)
	}
	// The reverse direction still works.
	if _, err := n.Pay(1, 0, 17); err != nil {
		t.Fatalf("reverse pay: %v", err)
	}
}

func TestPayValidation(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 10)
	if _, err := n.Pay(0, 0, 1); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("self pay error = %v", err)
	}
	if _, err := n.Pay(0, 1, -3); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative pay error = %v", err)
	}
	if _, err := n.Pay(0, 99, 1); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user error = %v", err)
	}
}

func TestMultiHopFeesAndAtomicity(t *testing.T) {
	// 0 ↔ 1 ↔ 2 with constant fee 0.5: 0 pays 2 via 1; hop 0 carries
	// amount + fee.
	n := newTestNetwork(t, fee.Constant{F: 0.5}, 3, 100)
	c01, err := n.OpenChannel(0, 1, 20, 0)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	c12, err := n.OpenChannel(1, 2, 20, 0)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	receipt, err := n.Pay(0, 2, 4)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if len(receipt.Path) != 3 || receipt.Path[0] != 0 || receipt.Path[1] != 1 || receipt.Path[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", receipt.Path)
	}
	if receipt.TotalFee != 0.5 {
		t.Fatalf("TotalFee = %v, want 0.5", receipt.TotalFee)
	}
	// First hop carried 4.5, second 4.
	if receipt.HopAmounts[0] != 4.5 || receipt.HopAmounts[1] != 4 {
		t.Fatalf("HopAmounts = %v, want [4.5 4]", receipt.HopAmounts)
	}
	balA, balB, _ := n.Balances(c01)
	if balA != 15.5 || balB != 4.5 {
		t.Fatalf("c01 balances = (%v,%v), want (15.5,4.5)", balA, balB)
	}
	balA, balB, _ = n.Balances(c12)
	if balA != 16 || balB != 4 {
		t.Fatalf("c12 balances = (%v,%v), want (16,4)", balA, balB)
	}
	if got := n.EarnedFees(1); got != 0.5 {
		t.Fatalf("EarnedFees(1) = %v, want 0.5", got)
	}
	if got := n.ForwardedCount(1); got != 1 {
		t.Fatalf("ForwardedCount(1) = %v, want 1", got)
	}
}

func TestMultiHopAtomicOnDownstreamShortage(t *testing.T) {
	// First hop has plenty, second hop cannot carry the amount: the
	// payment must fail without touching the first hop.
	n := newTestNetwork(t, fee.Constant{F: 0.5}, 3, 100)
	c01, err := n.OpenChannel(0, 1, 20, 0)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.OpenChannel(1, 2, 3, 0); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.Pay(0, 2, 4); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("expected ErrNoRoute, got %v", err)
	}
	balA, balB, _ := n.Balances(c01)
	if balA != 20 || balB != 0 {
		t.Fatalf("failed payment leaked into c01: (%v,%v)", balA, balB)
	}
	if s, f := n.Stats(); s != 0 || f != 1 {
		t.Fatalf("stats = (%d,%d), want (0,1)", s, f)
	}
}

func TestRoutePrefersShortFeasible(t *testing.T) {
	// Diamond: 0↔1↔3 (rich), 0↔2↔3 (poor). Payment must route via 1.
	n := newTestNetwork(t, fee.Constant{F: 0}, 4, 100)
	mustOpen(t, n, 0, 1, 50, 0)
	mustOpen(t, n, 1, 3, 50, 0)
	mustOpen(t, n, 0, 2, 1, 0)
	mustOpen(t, n, 2, 3, 1, 0)
	receipt, err := n.Pay(0, 3, 10)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if receipt.Path[1] != 1 {
		t.Fatalf("routed through %d, want 1", receipt.Path[1])
	}
}

func TestFeeLadenRetryFindsRicherPath(t *testing.T) {
	// Direct-ish route passes the base-amount filter but fails the laden
	// verification; the conservative retry must find the richer longer
	// path. Topology: 0↔1↔3 where 1→3 has exactly the base amount but
	// not amount+fee... hop ordering: hop 0 (0→1) needs amount+fee, so
	// give 0→1 exactly the base amount: first attempt (filter ≥ amount)
	// admits it, laden verify (amount+fee) fails; retry filters it out
	// and the long path 0↔2↔4↔3 (richly funded) wins.
	n := newTestNetwork(t, fee.Constant{F: 1}, 5, 200)
	mustOpen(t, n, 0, 1, 10, 0) // can carry 10, not 11
	mustOpen(t, n, 1, 3, 50, 0)
	mustOpen(t, n, 0, 2, 50, 0)
	mustOpen(t, n, 2, 4, 50, 0)
	mustOpen(t, n, 4, 3, 50, 0)
	receipt, err := n.Pay(0, 3, 10)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if len(receipt.Path) != 4 {
		t.Fatalf("path = %v, want the 3-hop route", receipt.Path)
	}
	if receipt.TotalFee != 2 {
		t.Fatalf("TotalFee = %v, want 2", receipt.TotalFee)
	}
}

func TestOpenChannelChargesLedger(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 20)
	if _, err := n.OpenChannel(0, 1, 5, 3); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// 20 − 5 − C/2 with C = 1.
	if got := n.Ledger().Balance(0); got != 14.5 {
		t.Fatalf("account 0 = %v, want 14.5", got)
	}
	if got := n.Ledger().Balance(1); got != 16.5 {
		t.Fatalf("account 1 = %v, want 16.5", got)
	}
}

func TestOpenChannelUnknownUser(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 20)
	if _, err := n.OpenChannel(0, 9, 1, 1); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("error = %v, want ErrUnknownUser", err)
	}
}

func TestCloseChannelSettlesCurrentBalances(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 20)
	ch, err := n.OpenChannel(0, 1, 10, 0)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.Pay(0, 1, 4); err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if err := n.CloseChannel(ch, chain.TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	// Account 0: 20 − 10 − 0.5 (open) + 6 − 0.5 (close) = 15.
	if got := n.Ledger().Balance(0); math.Abs(got-15) > 1e-9 {
		t.Fatalf("account 0 = %v, want 15", got)
	}
	// Account 1: 20 − 0 − 0.5 + 4 − 0.5 = 23.
	if got := n.Ledger().Balance(1); math.Abs(got-23) > 1e-9 {
		t.Fatalf("account 1 = %v, want 23", got)
	}
	// Channel unusable afterwards.
	if _, err := n.Pay(0, 1, 1); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("pay after close error = %v", err)
	}
	if err := n.CloseChannel(ch, chain.TxCooperativeClose, 0); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("double close error = %v", err)
	}
}

func TestBalancesUnknownChannel(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 1, 0)
	if _, _, err := n.Balances(5); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("error = %v, want ErrUnknownChannel", err)
	}
}

func TestTopologySnapshotIsolated(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 20)
	if _, err := n.OpenChannel(0, 1, 5, 5); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	snap := n.Topology()
	if snap.NumChannels() != 1 {
		t.Fatalf("snapshot channels = %d, want 1", snap.NumChannels())
	}
	if err := snap.RemoveChannel(0, 1); err != nil {
		t.Fatalf("RemoveChannel on snapshot: %v", err)
	}
	if _, err := n.Pay(0, 1, 1); err != nil {
		t.Fatalf("snapshot mutation affected live network: %v", err)
	}
}

func TestFromGraphMirrorsTopology(t *testing.T) {
	g := graph.Circle(5, 10)
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	n, err := FromGraph(ledger, fee.Constant{F: 0.1}, g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if n.NumUsers() != 5 {
		t.Fatalf("users = %d, want 5", n.NumUsers())
	}
	topo := n.Topology()
	if topo.NumChannels() != 5 {
		t.Fatalf("channels = %d, want 5", topo.NumChannels())
	}
	// Payments route around the circle.
	receipt, err := n.Pay(0, 2, 3)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if len(receipt.Path) != 3 {
		t.Fatalf("path = %v, want 2 hops", receipt.Path)
	}
}

func TestFromGraphRejectsUnpairedEdges(t *testing.T) {
	g := graph.New(2)
	if _, err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	if _, err := FromGraph(ledger, fee.Constant{F: 0}, g); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("unpaired edge error = %v", err)
	}
}

func TestConservationAcrossPaymentsAndCloses(t *testing.T) {
	// After any mix of payments and closes, on-chain value + burned fees
	// is conserved (off-chain payments never create or destroy coins).
	n := newTestNetwork(t, fee.Constant{F: 0.25}, 4, 50)
	initial := n.Ledger().TotalValue()
	chans := []ChannelID{
		mustOpen(t, n, 0, 1, 10, 10),
		mustOpen(t, n, 1, 2, 10, 10),
		mustOpen(t, n, 2, 3, 10, 10),
	}
	for i := 0; i < 10; i++ {
		_, _ = n.Pay(0, 3, 2)
		_, _ = n.Pay(3, 0, 1)
	}
	for _, ch := range chans {
		if err := n.CloseChannel(ch, chain.TxCooperativeClose, 0); err != nil {
			t.Fatalf("CloseChannel: %v", err)
		}
	}
	final := n.Ledger().TotalValue() + n.Ledger().Burned()
	if math.Abs(final-initial) > 1e-6 {
		t.Fatalf("value not conserved: %v vs %v", final, initial)
	}
}

func mustOpen(t *testing.T, n *Network, a, b graph.NodeID, da, db float64) ChannelID {
	t.Helper()
	ch, err := n.OpenChannel(a, b, da, db)
	if err != nil {
		t.Fatalf("OpenChannel(%d,%d): %v", a, b, err)
	}
	return ch
}

func TestResetBalances(t *testing.T) {
	n := newTestNetwork(t, fee.Constant{F: 0}, 2, 30)
	ch, err := n.OpenChannel(0, 1, 10, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := n.Pay(0, 1, 7); err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if err := n.ResetBalances(); err != nil {
		t.Fatalf("ResetBalances: %v", err)
	}
	balA, balB, err := n.Balances(ch)
	if err != nil || balA != 10 || balB != 5 {
		t.Fatalf("balances after reset = (%v,%v), want (10,5)", balA, balB)
	}
	// The topology mirror is back in sync: a payment of 10 is feasible
	// again.
	if _, err := n.Pay(0, 1, 10); err != nil {
		t.Fatalf("Pay after reset: %v", err)
	}
}
