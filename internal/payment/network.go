// Package payment implements the payment-channel machinery of §II-A on
// top of the chain substrate: channels with per-end balances, atomic
// multi-hop payments with intermediary fees, and the open/close lifecycle
// whose costs the utility model prices.
//
// Payments follow Figure 1's semantics: a payment of size x over a
// channel moves x from the sender's balance to the receiver's balance and
// fails — leaving every balance untouched — when the sender's balance is
// smaller than x. Multi-hop payments execute atomically (the HTLC
// guarantee referenced in the paper): either every hop updates or none.
package payment

import (
	"errors"
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// Errors returned by the network.
var (
	ErrUnknownChannel = errors.New("payment: unknown channel")
	ErrUnknownUser    = errors.New("payment: unknown user")
	ErrChannelClosed  = errors.New("payment: channel closed")
	ErrNoRoute        = errors.New("payment: no feasible route")
	ErrBadAmount      = errors.New("payment: bad amount")
)

// ChannelID identifies an open channel.
type ChannelID int

// channelState tracks one channel's off-chain balances and its on-chain
// funding output.
type channelState struct {
	id       ChannelID
	a, b     graph.NodeID
	output   chain.OutputID
	abEdge   graph.EdgeID // directed edge a→b in the topology mirror
	baEdge   graph.EdgeID
	balA     float64
	balB     float64
	depositA float64
	depositB float64
	open     bool
}

// Network is a live payment channel network: a set of users with on-chain
// accounts, open channels, and a global fee function. It is not safe for
// concurrent use.
type Network struct {
	ledger   *chain.Ledger
	feeFn    fee.Func
	topo     *graph.Graph
	channels map[ChannelID]*channelState
	nextID   ChannelID

	earned    map[graph.NodeID]float64
	forwarded map[graph.NodeID]int
	successes int
	failures  int
}

// NewNetwork creates an empty network over the given ledger, with
// intermediaries charging according to feeFn.
func NewNetwork(ledger *chain.Ledger, feeFn fee.Func) *Network {
	return &Network{
		ledger:    ledger,
		feeFn:     feeFn,
		topo:      graph.New(0),
		channels:  make(map[ChannelID]*channelState),
		earned:    make(map[graph.NodeID]float64),
		forwarded: make(map[graph.NodeID]int),
	}
}

// AddUser registers a new user and returns its node identifier; the
// user's on-chain account is the same integer.
func (n *Network) AddUser() graph.NodeID {
	return n.topo.AddNode()
}

// NumUsers returns the number of registered users.
func (n *Network) NumUsers() int { return n.topo.NumNodes() }

// Ledger exposes the chain substrate (e.g. to fund accounts in tests and
// examples).
func (n *Network) Ledger() *chain.Ledger { return n.ledger }

// OpenChannel opens a channel between two users, depositing depositA and
// depositB from their on-chain accounts (plus their shares of the miner
// fee, charged by the ledger).
func (n *Network) OpenChannel(a, b graph.NodeID, depositA, depositB float64) (ChannelID, error) {
	if !n.topo.HasNode(a) || !n.topo.HasNode(b) {
		return 0, fmt.Errorf("open channel (%d,%d): %w", a, b, ErrUnknownUser)
	}
	out, err := n.ledger.OpenChannel(chain.AccountID(a), chain.AccountID(b), depositA, depositB)
	if err != nil {
		return 0, fmt.Errorf("open channel (%d,%d): %w", a, b, err)
	}
	abEdge, baEdge, err := n.topo.AddChannel(a, b, depositA, depositB)
	if err != nil {
		return 0, fmt.Errorf("open channel (%d,%d): %w", a, b, err)
	}
	id := n.nextID
	n.nextID++
	n.channels[id] = &channelState{
		id: id, a: a, b: b,
		output: out,
		abEdge: abEdge, baEdge: baEdge,
		balA: depositA, balB: depositB,
		depositA: depositA, depositB: depositB,
		open: true,
	}
	return id, nil
}

// ResetBalances restores every open channel to its original deposits and
// re-synchronises the topology capacities. It models the off-chain
// rebalancing (e.g. the cycle rebalancing of [30]) that keeps a PCN in
// the steady state the analytic rate estimates assume; the simulator uses
// it between measurement windows.
func (n *Network) ResetBalances() error {
	for _, ch := range n.channels {
		if !ch.open {
			continue
		}
		ch.balA, ch.balB = ch.depositA, ch.depositB
		if err := n.topo.SetCapacity(ch.abEdge, ch.balA); err != nil {
			return err
		}
		if err := n.topo.SetCapacity(ch.baEdge, ch.balB); err != nil {
			return err
		}
	}
	return nil
}

// CloseChannel settles the channel on-chain at its current balances.
func (n *Network) CloseChannel(id ChannelID, kind chain.TxKind, closer graph.NodeID) error {
	ch, err := n.liveChannel(id)
	if err != nil {
		return err
	}
	if err := n.ledger.CloseChannel(ch.output, ch.balA, ch.balB, kind, chain.AccountID(closer)); err != nil {
		return fmt.Errorf("close channel %d: %w", id, err)
	}
	ch.open = false
	if err := n.topo.RemoveEdge(ch.abEdge); err != nil {
		return fmt.Errorf("close channel %d: %w", id, err)
	}
	if err := n.topo.RemoveEdge(ch.baEdge); err != nil {
		return fmt.Errorf("close channel %d: %w", id, err)
	}
	return nil
}

// Balances returns the channel's current off-chain balances.
func (n *Network) Balances(id ChannelID) (balA, balB float64, err error) {
	ch, err := n.liveChannel(id)
	if err != nil {
		return 0, 0, err
	}
	return ch.balA, ch.balB, nil
}

// Channel returns the endpoints of a channel.
func (n *Network) Channel(id ChannelID) (a, b graph.NodeID, err error) {
	ch, err := n.liveChannel(id)
	if err != nil {
		return 0, 0, err
	}
	return ch.a, ch.b, nil
}

// Topology returns a snapshot of the network graph with the current
// directional balances as edge capacities.
func (n *Network) Topology() *graph.Graph { return n.topo.Clone() }

// EarnedFees returns the routing fees user v has collected.
func (n *Network) EarnedFees(v graph.NodeID) float64 { return n.earned[v] }

// ForwardedCount returns how many payments v has forwarded as an
// intermediary.
func (n *Network) ForwardedCount(v graph.NodeID) int { return n.forwarded[v] }

// Stats returns the global success/failure counters.
func (n *Network) Stats() (successes, failures int) { return n.successes, n.failures }

// liveChannel resolves a channel id to an open channel.
func (n *Network) liveChannel(id ChannelID) (*channelState, error) {
	ch, ok := n.channels[id]
	if !ok {
		return nil, fmt.Errorf("channel %d: %w", id, ErrUnknownChannel)
	}
	if !ch.open {
		return nil, fmt.Errorf("channel %d: %w", id, ErrChannelClosed)
	}
	return ch, nil
}

// channelForEdge finds the channel owning a directed topology edge and
// the direction of travel.
func (n *Network) channelForEdge(id graph.EdgeID) (*channelState, bool /*a→b*/, error) {
	for _, ch := range n.channels {
		if !ch.open {
			continue
		}
		if ch.abEdge == id {
			return ch, true, nil
		}
		if ch.baEdge == id {
			return ch, false, nil
		}
	}
	return nil, false, fmt.Errorf("edge %d: %w", id, ErrUnknownChannel)
}

// move shifts amount across a channel in the given direction, keeping the
// topology mirror's capacities in sync. The caller has already verified
// feasibility under the routing epsilon, which admits carries exceeding
// the balance by up to 1e-12 of floating-point drift; the debited side is
// clamped to zero in that window so the commit can never leave a
// hair-negative balance that SetCapacity would reject mid-path (a partial
// commit would break payment atomicity).
func (ch *channelState) move(n *Network, aToB bool, amount float64) error {
	if aToB {
		ch.balA -= amount
		ch.balB += amount
	} else {
		ch.balB -= amount
		ch.balA += amount
	}
	const slack = 1e-9
	if ch.balA < 0 && ch.balA > -slack {
		ch.balA = 0
	}
	if ch.balB < 0 && ch.balB > -slack {
		ch.balB = 0
	}
	if err := n.topo.SetCapacity(ch.abEdge, ch.balA); err != nil {
		return err
	}
	return n.topo.SetCapacity(ch.baEdge, ch.balB)
}

// FromGraph builds a live network mirroring g: one user per node, one
// channel per paired directed edge, deposits equal to the edge
// capacities. Accounts are funded automatically with exactly the deposits
// plus fee shares. Unpaired directed edges are rejected.
func FromGraph(ledger *chain.Ledger, feeFn fee.Func, g *graph.Graph) (*Network, error) {
	n := NewNetwork(ledger, feeFn)
	for i := 0; i < g.NumNodes(); i++ {
		n.AddUser()
	}
	type half struct {
		edge graph.Edge
	}
	unpaired := make(map[[2]graph.NodeID][]half)
	var channels [][2]half
	g.ForEachEdge(func(e graph.Edge) bool {
		key := [2]graph.NodeID{e.To, e.From}
		if list := unpaired[key]; len(list) > 0 {
			channels = append(channels, [2]half{list[0], {edge: e}})
			unpaired[key] = list[1:]
			return true
		}
		own := [2]graph.NodeID{e.From, e.To}
		unpaired[own] = append(unpaired[own], half{edge: e})
		return true
	})
	for _, list := range unpaired {
		if len(list) > 0 {
			return nil, fmt.Errorf("from graph: unpaired directed edge (%d,%d): %w",
				list[0].edge.From, list[0].edge.To, ErrBadAmount)
		}
	}
	feeShare := ledger.FeePerTx() / 2
	for _, pair := range channels {
		ab := pair[0].edge
		ba := pair[1].edge
		if err := ledger.Fund(chain.AccountID(ab.From), ab.Capacity+feeShare); err != nil {
			return nil, err
		}
		if err := ledger.Fund(chain.AccountID(ba.From), ba.Capacity+feeShare); err != nil {
			return nil, err
		}
		if _, err := n.OpenChannel(ab.From, ab.To, ab.Capacity, ba.Capacity); err != nil {
			return nil, err
		}
	}
	return n, nil
}
