package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// buildSnapshot assembles a deliberately lumpy fixture: an irregular
// channel-built graph, a demand matrix that lags the substrate, a
// partial λ̂ table, and the forward plane — the shapes the serve layer
// actually checkpoints.
func buildSnapshot(t testing.TB, n int, seed int64) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		peer := graph.NodeID(rng.Intn(v))
		if _, _, err := g.AddChannel(graph.NodeID(v), peer, 1+rng.Float64(), rng.Float64()); err != nil {
			t.Fatalf("AddChannel: %v", err)
		}
		if rng.Intn(3) == 0 {
			extra := graph.NodeID(rng.Intn(v))
			if extra != peer {
				if _, _, err := g.AddChannel(graph.NodeID(v), extra, rng.Float64(), 2); err != nil {
					t.Fatalf("AddChannel: %v", err)
				}
			}
		}
	}
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(n))
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	rates := map[graph.NodeID]float64{}
	for v := 0; v < n; v += 2 {
		rates[graph.NodeID(v)] = rng.Float64() * 3
	}
	var departed []graph.NodeID
	if n > 4 {
		departed = []graph.NodeID{1, graph.NodeID(n - 2)}
	}
	return &Snapshot{
		Graph:         g,
		RemoteBalance: 1.5,
		Demand:        demand,
		Rates:         rates,
		Departed:      departed,
		Plane:         g.AllPairsBFS(),
		Epoch:         uint64(n)*1000 + 7,
	}
}

func encode(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func requireSameSnapshot(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Graph.NumNodes() != want.Graph.NumNodes() || got.Graph.NumChannels() != want.Graph.NumChannels() {
		t.Fatalf("graph shape %d/%d, want %d/%d",
			got.Graph.NumNodes(), got.Graph.NumChannels(), want.Graph.NumNodes(), want.Graph.NumChannels())
	}
	gp, gu := got.Graph.ChannelPairs()
	wp, wu := want.Graph.ChannelPairs()
	if len(gu) != 0 || len(wu) != 0 || len(gp) != len(wp) {
		t.Fatalf("channel pairing diverged: %d/%d pairs, %d/%d unpaired", len(gp), len(wp), len(gu), len(wu))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("channel %d: %+v, want %+v", i, gp[i], wp[i])
		}
	}
	if got.RemoteBalance != want.RemoteBalance {
		t.Fatalf("remote balance %v, want %v", got.RemoteBalance, want.RemoteBalance)
	}
	if len(got.Demand.P) != len(want.Demand.P) || len(got.Demand.Rates) != len(want.Demand.Rates) {
		t.Fatalf("demand shape %d/%d, want %d/%d",
			len(got.Demand.P), len(got.Demand.Rates), len(want.Demand.P), len(want.Demand.Rates))
	}
	for s := range want.Demand.P {
		if len(got.Demand.P[s]) != len(want.Demand.P[s]) {
			t.Fatalf("demand row %d length %d, want %d", s, len(got.Demand.P[s]), len(want.Demand.P[s]))
		}
		for r := range want.Demand.P[s] {
			if got.Demand.P[s][r] != want.Demand.P[s][r] {
				t.Fatalf("demand[%d][%d] = %v, want %v", s, r, got.Demand.P[s][r], want.Demand.P[s][r])
			}
		}
	}
	for i := range want.Demand.Rates {
		if got.Demand.Rates[i] != want.Demand.Rates[i] {
			t.Fatalf("rate[%d] = %v, want %v", i, got.Demand.Rates[i], want.Demand.Rates[i])
		}
	}
	if len(got.Rates) != len(want.Rates) {
		t.Fatalf("λ̂ table size %d, want %d", len(got.Rates), len(want.Rates))
	}
	for v, r := range want.Rates {
		if got.Rates[v] != r {
			t.Fatalf("λ̂[%d] = %v, want %v", v, got.Rates[v], r)
		}
	}
	if len(got.Departed) != len(want.Departed) {
		t.Fatalf("departed list size %d, want %d", len(got.Departed), len(want.Departed))
	}
	for i := range want.Departed {
		if got.Departed[i] != want.Departed[i] {
			t.Fatalf("departed[%d] = %d, want %d", i, got.Departed[i], want.Departed[i])
		}
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("epoch %d, want %d", got.Epoch, want.Epoch)
	}
	requireSamePlane(t, got.Plane, want.Plane)
}

// requireSamePlane compares the live N×N region bit for bit; strides may
// differ (a written plane packs to Stride == N).
func requireSamePlane(t *testing.T, got, want *graph.AllPairs) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("plane N = %d, want %d", got.N, want.N)
	}
	for s := 0; s < want.N; s++ {
		gd, wd := got.DistRow(s), want.DistRow(s)
		gs, ws := got.SigmaRow(s), want.SigmaRow(s)
		for x := 0; x < want.N; x++ {
			if gd[x] != wd[x] || gs[x] != ws[x] {
				t.Fatalf("plane row %d col %d: (%d, %v), want (%d, %v)", s, x, gd[x], gs[x], wd[x], ws[x])
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 17, 80} {
		want := buildSnapshot(t, n, int64(n))
		got, err := Read(bytes.NewReader(encode(t, want)))
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		requireSameSnapshot(t, got, want)
	}
}

func TestCheckpointEmptySections(t *testing.T) {
	// A pre-first-refresh session: empty demand, empty λ̂ — and the
	// degenerate empty substrate.
	for _, n := range []int{0, 5} {
		g := graph.New(n)
		want := &Snapshot{Graph: g, Demand: &traffic.Demand{}, Plane: g.AllPairsBFS()}
		got, err := Read(bytes.NewReader(encode(t, want)))
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		if got.Graph.NumNodes() != n || len(got.Demand.P) != 0 || len(got.Rates) != 0 {
			t.Fatalf("n=%d: decoded shape %d nodes, %d demand rows, %d rates",
				n, got.Graph.NumNodes(), len(got.Demand.P), len(got.Rates))
		}
		// A nil Demand on write decodes as an empty one.
		want.Demand = nil
		if _, err := Read(bytes.NewReader(encode(t, want))); err != nil {
			t.Fatalf("n=%d: Read(nil demand): %v", n, err)
		}
	}
}

func TestCheckpointTransposeMatches(t *testing.T) {
	// The transpose is not stored; rebuilding it from the decoded forward
	// plane must reproduce the original transpose bit for bit.
	want := buildSnapshot(t, 40, 7)
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	requireSamePlane(t, got.Plane.Transposed(), want.Plane.Transposed())
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	data := encode(t, buildSnapshot(t, 23, 3))

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(data); cut += 7 {
			if _, err := Read(bytes.NewReader(data[:cut])); !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("truncation at %d: err = %v, want ErrBadCheckpoint", cut, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[8] = 0xfe // version field follows the 8-byte magic
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		// Any single-byte corruption must be caught — by a section
		// validator or, failing that, the CRC trailer.
		for _, pos := range []int{12, 20, len(data) / 2, len(data) - 2} {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x40
			if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("flip at %d: err = %v, want ErrBadCheckpoint", pos, err)
			}
		}
	})
	t.Run("oversized node count", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		for i := 12; i < 16; i++ { // node-count field
			bad[i] = 0xff
		}
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("trailing garbage tolerated upstream", func(t *testing.T) {
		// Read consumes exactly one checkpoint; bytes after the trailer
		// are the caller's business and must not corrupt the decode.
		withTail := append(append([]byte(nil), data...), 0xde, 0xad)
		if _, err := Read(bytes.NewReader(withTail)); err != nil {
			t.Fatalf("Read with trailing bytes: %v", err)
		}
	})
}

// FuzzCheckpointRead hammers the decoder with mutated checkpoint bytes:
// whatever the input, Read must return cleanly — a Snapshot or an
// ErrBadCheckpoint — and never panic or over-allocate.
func FuzzCheckpointRead(f *testing.F) {
	small := encode(f, buildSnapshot(f, 9, 1))
	f.Add(small)
	f.Add(small[:len(small)/2])
	f.Add(small[:11])
	f.Add([]byte("LCGCKPT\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("non-sentinel decode error: %v", err)
			}
			return
		}
		// A successful decode must be internally coherent enough to use.
		if s.Graph == nil || s.Plane == nil || s.Plane.N != s.Graph.NumNodes() {
			t.Fatalf("accepted incoherent snapshot: %+v", s)
		}
	})
}
