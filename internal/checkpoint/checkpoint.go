// Package checkpoint is the binary substrate codec: it persists a grow
// session's full working state — channel topology, demand and λ̂
// snapshots, and the all-pairs planes — so a 10k-node session restores
// in seconds instead of paying the O(n·(n+m)) all-pairs rebuild.
//
// Format (all integers little-endian):
//
//	magic   [8]byte  "LCGCKPT\x00"
//	version uint32   (currently 2)
//	nodes   uint32
//	chans   uint32, then per channel in ChannelPairs order:
//	        from uint32, to uint32, capA float64, capB float64
//	remote  float64
//	demand  rows uint32, per row: len uint32 + float64s;
//	        then rates len uint32 + float64s
//	lambda  count uint32, entries ascending by node:
//	        node uint32 + rate float64
//	departed count uint32 + node uint32 entries, strictly ascending —
//	        the session's churn mask (departed nodes keep their
//	        identifiers but leave candidate pools and demand)
//	epoch   uint64   the serving snapshot epoch (0 when the state never
//	        served) — recovery restores it exactly, then replays the
//	        WAL suffix from epoch+1 (added in v2; v1 streams rejected)
//	plane   n uint32, then n uint16-distance rows, then n float64-sigma
//	        rows (the forward plane only — the transpose is a pure
//	        permutation, rebuilt on load bit-identically)
//	crc     uint32   IEEE CRC-32 of everything after the magic
//
// Floats travel as their IEEE-754 bit patterns, so a round-trip is
// bit-identical — σ path counts included. Decoding is defensive: every
// buffer grows with the bytes actually read, so a truncated or
// corrupted input fails with a clean error after O(input) allocation,
// never a panic and never an attacker-sized allocation.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ErrBadCheckpoint reports a checkpoint stream that cannot be decoded:
// wrong magic, unsupported version, truncation, CRC mismatch, or
// internally inconsistent sections.
var ErrBadCheckpoint = errors.New("checkpoint: invalid checkpoint data")

const (
	version = 2

	// maxNodes bounds the node count a checkpoint may claim — far above
	// the supported n=10k envelope, low enough that a corrupted header
	// cannot demand a pathological plane allocation up front.
	maxNodes = 1 << 22
)

var magic = [8]byte{'L', 'C', 'G', 'C', 'K', 'P', 'T', 0}

// Snapshot is the decoded (or to-be-encoded) session state. Graph and
// Plane are never nil after a successful Read; Demand may be empty
// (zero rows) and Rates may be empty, mirroring a session before its
// first refresh.
type Snapshot struct {
	Graph         *graph.Graph
	RemoteBalance float64
	Demand        *traffic.Demand
	Rates         map[graph.NodeID]float64
	// Departed lists nodes that left the network (strictly ascending);
	// they stay in the substrate but out of candidate pools and demand
	// masks.
	Departed []graph.NodeID
	// Plane is the forward all-pairs structure; its transpose is not
	// stored (TransposedParallel reproduces it bit-identically).
	Plane *graph.AllPairs
	// Epoch is the serving snapshot epoch at capture time (0 when the
	// state never served). Recovery adopts it verbatim, then replays the
	// WAL suffix from Epoch+1.
	Epoch uint64
}

// Write encodes s to w. The graph must be channel-paired (every directed
// edge has a reverse partner, true for all AddChannel-built substrates)
// and the plane must cover exactly the graph's nodes.
func Write(w io.Writer, s *Snapshot) error {
	if s.Graph == nil || s.Plane == nil {
		return fmt.Errorf("%w: nil graph or plane", ErrBadCheckpoint)
	}
	n := s.Graph.NumNodes()
	if s.Plane.N != n {
		return fmt.Errorf("%w: plane covers %d nodes, graph has %d", ErrBadCheckpoint, s.Plane.N, n)
	}
	pairs, unpaired := s.Graph.ChannelPairs()
	if len(unpaired) > 0 {
		return fmt.Errorf("%w: %d directed edges without a reverse partner", ErrBadCheckpoint, len(unpaired))
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	e := &encoder{w: io.MultiWriter(bw, h)}

	e.u32(version)
	e.u32(uint32(n))
	e.u32(uint32(len(pairs)))
	for _, pair := range pairs {
		fwd, rev := pair[0], pair[1]
		e.u32(uint32(fwd.From))
		e.u32(uint32(fwd.To))
		e.f64(fwd.Capacity)
		e.f64(rev.Capacity)
	}
	e.f64(s.RemoteBalance)

	d := s.Demand
	if d == nil {
		d = &traffic.Demand{}
	}
	e.u32(uint32(len(d.P)))
	for _, row := range d.P {
		e.u32(uint32(len(row)))
		e.floats(row)
	}
	e.u32(uint32(len(d.Rates)))
	e.floats(d.Rates)

	e.u32(uint32(len(s.Rates)))
	for _, v := range sortedNodes(s.Rates) {
		e.u32(uint32(v))
		e.f64(s.Rates[v])
	}

	for i := 1; i < len(s.Departed); i++ {
		if s.Departed[i] <= s.Departed[i-1] {
			return fmt.Errorf("%w: departed list not strictly ascending", ErrBadCheckpoint)
		}
	}
	e.u32(uint32(len(s.Departed)))
	for _, v := range s.Departed {
		e.u32(uint32(v))
	}
	e.u64(s.Epoch)

	e.u32(uint32(n))
	for r := 0; r < n; r++ {
		e.dists(s.Plane.DistRow(r))
	}
	for r := 0; r < n; r++ {
		e.floats(s.Plane.SigmaRow(r))
	}
	if e.err != nil {
		return e.err
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read decodes a checkpoint from r, verifying magic, version and CRC,
// and rebuilding the graph through the validating AddChannel path (so a
// checkpoint carrying non-finite capacities is rejected, not loaded).
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadCheckpoint, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, m[:])
	}
	h := crc32.NewIEEE()
	d := &decoder{r: br, h: h}

	if v := d.u32(); d.err == nil && v != version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, v, version)
	}
	nodes := d.u32()
	if d.err == nil && nodes > maxNodes {
		return nil, fmt.Errorf("%w: %d nodes exceeds the %d cap", ErrBadCheckpoint, nodes, maxNodes)
	}
	g := graph.New(int(nodes))
	chans := d.u32()
	for i := uint32(0); i < chans && d.err == nil; i++ {
		from, to := d.u32(), d.u32()
		capA, capB := d.f64(), d.f64()
		if d.err != nil {
			break
		}
		if _, _, err := g.AddChannel(graph.NodeID(from), graph.NodeID(to), capA, capB); err != nil {
			return nil, fmt.Errorf("%w: channel %d: %v", ErrBadCheckpoint, i, err)
		}
	}
	remote := d.f64()

	rows := d.u32()
	var p [][]float64
	for i := uint32(0); i < rows && d.err == nil; i++ {
		p = append(p, d.floats(int(d.u32())))
	}
	demand := &traffic.Demand{P: p, Rates: d.floats(int(d.u32()))}

	count := d.u32()
	rates := make(map[graph.NodeID]float64, min32(count, 1<<16))
	prev := int64(-1)
	for i := uint32(0); i < count && d.err == nil; i++ {
		node := d.u32()
		rate := d.f64()
		if d.err != nil {
			break
		}
		if int64(node) <= prev {
			return nil, fmt.Errorf("%w: λ̂ entries not strictly ascending at node %d", ErrBadCheckpoint, node)
		}
		prev = int64(node)
		rates[graph.NodeID(node)] = rate
	}

	depCount := d.u32()
	var departed []graph.NodeID
	prev = int64(-1)
	for i := uint32(0); i < depCount && d.err == nil; i++ {
		v := d.u32()
		if d.err != nil {
			break
		}
		if int64(v) <= prev || v >= nodes {
			return nil, fmt.Errorf("%w: departed entry %d out of order or range", ErrBadCheckpoint, v)
		}
		prev = int64(v)
		departed = append(departed, graph.NodeID(v))
	}
	epoch := d.u64()

	pn := d.u32()
	if d.err == nil && pn != nodes {
		return nil, fmt.Errorf("%w: plane covers %d nodes, graph has %d", ErrBadCheckpoint, pn, nodes)
	}
	n := int(nodes)
	ap := &graph.AllPairs{N: n, Stride: n}
	for r := 0; r < n && d.err == nil; r++ {
		ap.Dist = append(ap.Dist, d.dists(n)...)
	}
	for r := 0; r < n && d.err == nil; r++ {
		ap.Sigma = append(ap.Sigma, d.floats(n)...)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, d.err)
	}

	sum := h.Sum32()
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("%w: short CRC trailer: %v", ErrBadCheckpoint, err)
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: CRC mismatch: stored %08x, computed %08x", ErrBadCheckpoint, stored, sum)
	}
	return &Snapshot{Graph: g, RemoteBalance: remote, Demand: demand, Rates: rates, Departed: departed, Plane: ap, Epoch: epoch}, nil
}

// encoder writes fixed-width little-endian primitives through one
// reusable scratch buffer, remembering the first error.
type encoder struct {
	w   io.Writer
	buf []byte
	err error
}

func (e *encoder) scratch(n int) []byte {
	if cap(e.buf) < n {
		e.buf = make([]byte, n)
	}
	return e.buf[:n]
}

func (e *encoder) write(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) u32(v uint32) {
	b := e.scratch(4)
	binary.LittleEndian.PutUint32(b, v)
	e.write(b)
}

func (e *encoder) u64(v uint64) {
	b := e.scratch(8)
	binary.LittleEndian.PutUint64(b, v)
	e.write(b)
}

func (e *encoder) f64(v float64) {
	b := e.scratch(8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	e.write(b)
}

func (e *encoder) floats(vals []float64) {
	b := e.scratch(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	e.write(b)
}

func (e *encoder) dists(vals []uint16) {
	b := e.scratch(2 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(b[2*i:], v)
	}
	e.write(b)
}

// decoder reads little-endian primitives while feeding every byte into
// the running CRC, remembering the first error. Bulk reads allocate in
// bounded chunks so a corrupted length cannot demand memory beyond the
// bytes actually present.
type decoder struct {
	r   io.Reader
	h   hash.Hash32
	buf []byte
	err error
}

// chunkFloats bounds one bulk-read allocation (64 KiB of float64s).
const chunkFloats = 8192

func (d *decoder) read(n int) []byte {
	if d.err != nil {
		return nil
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	b := d.buf[:n]
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("truncated: %v", err)
		return nil
	}
	d.h.Write(b)
	return b
}

func (d *decoder) u32() uint32 {
	b := d.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 {
	b := d.read(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) floats(n int) []float64 {
	if d.err != nil || n < 0 {
		return nil
	}
	var out []float64
	for n > 0 {
		c := n
		if c > chunkFloats {
			c = chunkFloats
		}
		b := d.read(8 * c)
		if b == nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
		n -= c
	}
	return out
}

func (d *decoder) dists(n int) []uint16 {
	if d.err != nil || n < 0 {
		return nil
	}
	var out []uint16
	for n > 0 {
		c := n
		if c > 4*chunkFloats {
			c = 4 * chunkFloats
		}
		b := d.read(2 * c)
		if b == nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, binary.LittleEndian.Uint16(b[2*i:]))
		}
		n -= c
	}
	return out
}

func sortedNodes(m map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func min32(a uint32, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}
