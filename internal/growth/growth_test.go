package growth

import (
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// diffConfig is the differential-test base: every subsystem on — churn,
// rewiring, refresh cadence, varied profiles — at oracle-affordable size.
func diffConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = SeedBA
	cfg.SeedSize = 8
	cfg.Arrivals = 36
	cfg.BudgetMin, cfg.BudgetMax = 3, 7
	cfg.LockMin, cfg.LockMax = 0.5, 2
	cfg.RateMin, cfg.RateMax = 0.5, 2
	cfg.Candidates = 6
	cfg.ChurnRate = 0.1
	cfg.RewireEvery = 9
	cfg.RewireCount = 2
	cfg.RefreshEvery = 8
	cfg.EpochEvery = 12
	return cfg
}

func requireSameTrace(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d vs %d", tag, len(got.Trace), len(want.Trace))
	}
	for i, g := range got.Trace {
		w := want.Trace[i]
		if g.Kind != w.Kind || g.Node != w.Node || !g.Strategy.Equal(w.Strategy) ||
			g.Objective != w.Objective || g.Utility != w.Utility {
			t.Fatalf("%s: decision %d diverges:\n engine %+v\n oracle %+v", tag, i, g, w)
		}
	}
	if got.Departures != want.Departures || got.Rewires != want.Rewires {
		t.Fatalf("%s: churn counts diverge: %d/%d vs %d/%d",
			tag, got.Departures, got.Rewires, want.Departures, want.Rewires)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: evaluations %d vs %d", tag, got.Evaluations, want.Evaluations)
	}
}

func requireSameGraph(t *testing.T, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: shape %d nodes/%d edges vs %d/%d",
			tag, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := 0; v < got.NumNodes(); v++ {
		a := got.OutEdges(graph.NodeID(v))
		b := want.OutEdges(graph.NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("%s: node %d out-degree %d vs %d", tag, v, len(a), len(b))
		}
		for i := range a {
			ea, _ := got.Edge(a[i])
			eb, _ := want.Edge(b[i])
			if ea.To != eb.To || ea.Capacity != eb.Capacity {
				t.Fatalf("%s: node %d edge %d: (%d,%v) vs (%d,%v)",
					tag, v, i, ea.To, ea.Capacity, eb.To, eb.Capacity)
			}
		}
	}
}

// TestGrowthMatchesScratch is the engine's keystone differential test:
// the incremental engine and the from-scratch oracle must produce
// bit-identical decisions at every step — strategies, objectives,
// utilities, churn — and identical final substrates, across seed
// topologies and seeds.
func TestGrowthMatchesScratch(t *testing.T) {
	for _, seedKind := range []SeedKind{SeedEmpty, SeedStar, SeedER, SeedBA} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := diffConfig()
			cfg.Seed = seedKind
			if seedKind == SeedER {
				cfg.SeedParam = 0.3
			}
			got, err := Run(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s/%d: Run: %v", seedKind, seed, err)
			}
			want, err := ReferenceRun(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s/%d: ReferenceRun: %v", seedKind, seed, err)
			}
			tag := string(seedKind)
			requireSameTrace(t, tag, got, want)
			requireSameGraph(t, tag, got.Final, want.Final)
		}
	}
}

// TestGrowthExactModelMatchesScratch re-runs the differential check under
// exact-revenue pricing, where every probe walks the O(n²) transit scan.
func TestGrowthExactModelMatchesScratch(t *testing.T) {
	cfg := diffConfig()
	cfg.Arrivals = 14
	cfg.Model = core.RevenueExact
	got, err := Run(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := ReferenceRun(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("ReferenceRun: %v", err)
	}
	requireSameTrace(t, "exact", got, want)
	requireSameGraph(t, "exact", got.Final, want.Final)
}

// TestGrowthDeterministicPerSeed re-runs the engine on the same stream
// and requires identical results, including epoch metrics.
func TestGrowthDeterministicPerSeed(t *testing.T) {
	cfg := diffConfig()
	a, err := Run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSameTrace(t, "replay", a, b)
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i] != b.Epochs[i] {
			t.Fatalf("epoch %d diverges:\n%+v\n%+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
}

// TestGrowthInvariants checks the structural promises of a run: node
// count, alive/departed bookkeeping, epoch monotonicity, and that the
// final all-pairs state of the session equals a fresh BFS (the commit
// path never drifts).
func TestGrowthInvariants(t *testing.T) {
	cfg := diffConfig()
	res, err := Run(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantNodes := cfg.SeedSize + cfg.Arrivals
	if res.Final.NumNodes() != wantNodes {
		t.Fatalf("final nodes = %d, want %d", res.Final.NumNodes(), wantNodes)
	}
	if len(res.Departed) != wantNodes {
		t.Fatalf("departed len = %d, want %d", len(res.Departed), wantNodes)
	}
	departures := 0
	for v, gone := range res.Departed {
		if !gone {
			continue
		}
		departures++
		// A departed node may have been re-connected only by later
		// arrivals choosing it as a peer — candidates exclude departed
		// nodes, so it must have no *outgoing-opened* channels. Its
		// channels were all closed at departure; anything present now
		// was opened by an alive node, which the engine forbids by
		// masking departed nodes out of every candidate pool.
		if res.Final.OutDegree(graph.NodeID(v))+res.Final.InDegree(graph.NodeID(v)) != 0 {
			t.Fatalf("departed node %d still has channels", v)
		}
	}
	if departures != res.Departures {
		t.Fatalf("departed count %d, result says %d", departures, res.Departures)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs streamed")
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Arrival != cfg.Arrivals {
		t.Fatalf("last epoch at arrival %d, want %d", last.Arrival, cfg.Arrivals)
	}
	if last.Nodes != wantNodes-res.Departures {
		t.Fatalf("last epoch nodes = %d, want %d", last.Nodes, wantNodes-res.Departures)
	}
	for i := 1; i < len(res.Epochs); i++ {
		if res.Epochs[i].Arrival <= res.Epochs[i-1].Arrival {
			t.Fatalf("epochs not strictly ordered: %+v", res.Epochs)
		}
	}
	joins := 0
	for _, d := range res.Trace {
		if d.Kind == DecideJoin {
			joins++
		}
	}
	if joins != cfg.Arrivals {
		t.Fatalf("trace has %d joins, want %d", joins, cfg.Arrivals)
	}
}

// TestGrowthFromEmptyBootstraps grows a network from nothing: the first
// arrival necessarily joins unconnected, later ones attach.
func TestGrowthFromEmptyBootstraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = SeedEmpty
	cfg.SeedSize = 0
	cfg.Arrivals = 24
	cfg.Candidates = 4
	res, err := Run(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Final.NumNodes() != 24 {
		t.Fatalf("final nodes = %d, want 24", res.Final.NumNodes())
	}
	if len(res.Trace[0].Strategy) != 0 {
		t.Fatalf("first arrival committed channels into an empty network: %+v", res.Trace[0])
	}
	if res.Final.NumChannels() == 0 {
		t.Fatal("no channels emerged from organic growth")
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Routable == 0 {
		t.Fatal("grown network fully unroutable")
	}
}

func TestGrowthConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Arrivals = -1 },
		func(c *Config) { c.ChurnRate = 1.5 },
		func(c *Config) { c.Attach = "magnetic" },
		func(c *Config) { c.Seed = "torus" },
		func(c *Config) { c.Params.OnChainCost = 0 },
		func(c *Config) { c.Seed = SeedStar; c.SeedSize = 1 },
		func(c *Config) { c.BudgetMin = -1 },
		func(c *Config) { c.BudgetMin, c.BudgetMax = 10, 5 },
		func(c *Config) { c.LockMin, c.LockMax = 2, 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestBackendCloseIsolatedSkipsRebuild pins the churn fast paths: the
// engine backend must not pay anything for a departer that has no
// channels left to close, and a real departure must be absorbed by the
// decremental fold, never a full rebuild.
func TestBackendCloseIsolatedSkipsRebuild(t *testing.T) {
	cfg := DefaultConfig()
	g, err := BuildSeed(SeedStar, 5, 0, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("BuildSeed: %v", err)
	}
	gs, err := core.NewGrowSession(g, cfg.Params, 16, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	b := &sessionBackend{gs: gs}
	u, err := b.Commit(nil) // isolated arrival
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := b.Close(u); err != nil {
		t.Fatalf("Close(isolated): %v", err)
	}
	if gs.RebuildCount() != 0 || gs.FoldCount() != 0 {
		t.Fatalf("isolated close paid %d rebuilds + %d folds, want 0 + 0",
			gs.RebuildCount(), gs.FoldCount())
	}
	if err := b.Close(1); err != nil { // a leaf of the star: real channels
		t.Fatalf("Close(leaf): %v", err)
	}
	if gs.RebuildCount() != 0 || gs.FoldCount() != 1 {
		t.Fatalf("connected close paid %d rebuilds + %d folds, want 0 rebuilds + 1 fold",
			gs.RebuildCount(), gs.FoldCount())
	}
	if gs.Dirty() {
		t.Fatal("session still dirty after the backend's close fold")
	}
}

// TestGrowthParallelismInvariance pins the engine across substrate
// worker bounds: the trace must be byte-identical whether rebuilds and
// folds run inline or sharded.
func TestGrowthParallelismInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeedSize = 6
	cfg.Arrivals = 40
	cfg.ChurnRate = 0.2 // force rebuilds through the sharded path
	cfg.RewireEvery, cfg.RewireCount = 7, 2
	var ref *Result
	for _, workers := range []int{0, 3, -1} {
		cfg.Parallelism = workers
		res, err := Run(cfg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Trace) != len(ref.Trace) {
			t.Fatalf("workers=%d: trace length %d vs %d", workers, len(res.Trace), len(ref.Trace))
		}
		for i, d := range res.Trace {
			w := ref.Trace[i]
			if d.Kind != w.Kind || d.Node != w.Node || !d.Strategy.Equal(w.Strategy) ||
				d.Objective != w.Objective || d.Utility != w.Utility {
				t.Fatalf("workers=%d: decision %d diverges", workers, i)
			}
		}
	}
}
