package growth

import (
	"sort"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// Epoch is one streamed metric snapshot of a growth run. All fields are
// deterministic functions of the run state — wall-clock latency is
// deliberately excluded (benchmarks measure it) so epoch tables stay
// byte-identical across machines and parallelism.
type Epoch struct {
	// Arrival is the number of arrivals processed when the snapshot was
	// taken.
	Arrival int
	// Nodes and Channels describe the alive substrate.
	Nodes, Channels int
	// MaxDegree is the largest alive channel degree; MeanDegree the mean.
	MaxDegree  int
	MeanDegree float64
	// DegreeGini is the Gini coefficient of the alive degree
	// distribution: 0 = perfectly equal, →1 = hub-concentrated.
	DegreeGini float64
	// Centralization is the largest node's share of total degree.
	Centralization float64
	// Diameter is the longest finite shortest path between alive nodes.
	Diameter int
	// MeanDistance averages the finite pairwise distances.
	MeanDistance float64
	// Routable is the fraction of ordered alive pairs with a route.
	Routable float64
	// Efficiency is the welfare proxy: the Latora–Marchiori global
	// efficiency, mean over ordered alive pairs of 1/d(x,y) (0 when
	// unreachable). It rises with short paths and full reachability —
	// exactly what routing welfare rewards — without pricing every
	// node's utility.
	Efficiency float64
	// EvalsPerJoin is the mean objective evaluations spent pricing each
	// join since the previous epoch — the deterministic cost measure
	// (wall latency belongs to benchmarks).
	EvalsPerJoin float64
	// Class is the emergent-topology label, classified from the degree
	// statistics.
	Class string
}

// computeEpoch is the package-internal spelling of ComputeEpoch.
func computeEpoch(g *graph.Graph, ap *graph.AllPairs, alive []graph.NodeID, arrival int) Epoch {
	return ComputeEpoch(g, ap, alive, arrival)
}

// ComputeEpoch scans the live all-pairs structure restricted to the alive
// nodes: one O(a²) pass for distances plus an O(a log a) degree sort. The
// market engine reuses it for per-tick snapshots (Arrival then counts
// ticks), so growth and market tables report comparable metrics.
func ComputeEpoch(g *graph.Graph, ap *graph.AllPairs, alive []graph.NodeID, arrival int) Epoch {
	ep := Epoch{Arrival: arrival, Nodes: len(alive)}
	degrees := make([]int, 0, len(alive))
	totalDeg := 0
	for _, v := range alive {
		d := g.InDegree(v)
		degrees = append(degrees, d)
		totalDeg += d
		if d > ep.MaxDegree {
			ep.MaxDegree = d
		}
	}
	ep.Channels = totalDeg / 2
	if len(alive) > 0 {
		ep.MeanDegree = float64(totalDeg) / float64(len(alive))
	}
	ep.DegreeGini = gini(degrees)
	if totalDeg > 0 {
		ep.Centralization = float64(ep.MaxDegree) / float64(totalDeg)
	}

	var (
		finitePairs int
		totalPairs  int
		distSum     float64
		effSum      float64
	)
	for _, s := range alive {
		row := ap.DistRow(int(s))
		for _, r := range alive {
			if s == r {
				continue
			}
			totalPairs++
			if row[r] == graph.Inf16 {
				continue
			}
			d := int(row[r])
			finitePairs++
			distSum += float64(d)
			effSum += 1 / float64(d)
			if d > ep.Diameter {
				ep.Diameter = d
			}
		}
	}
	if finitePairs > 0 {
		ep.MeanDistance = distSum / float64(finitePairs)
	}
	if totalPairs > 0 {
		ep.Routable = float64(finitePairs) / float64(totalPairs)
		ep.Efficiency = effSum / float64(totalPairs)
	}
	ep.Class = classify(ep)
	// When the whole substrate is alive, §IV's exact classes take
	// precedence over the statistical label: a run that converges to a
	// literal star, path, circle, complete graph or tree names it. The
	// channel-count gate skips the O(n·(n+m)) exact check whenever the
	// counts already rule every exact class out.
	if n := ep.Nodes; len(alive) == g.NumNodes() && n > 0 &&
		(ep.Channels <= n || ep.Channels == n*(n-1)/2) {
		if c := game.Classify(g); c != game.ClassOther && c != game.ClassDisconnected {
			ep.Class = string(c)
		}
	}
	return ep
}

// gini computes the Gini coefficient of a non-negative sample.
func gini(values []int) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += float64(v)
		weighted += float64(2*(i+1)-len(sorted)-1) * float64(v)
	}
	if sum == 0 {
		return 0
	}
	return weighted / (float64(len(sorted)) * sum)
}

// classify labels the emergent topology from the epoch's degree shape.
// Thresholds are coarse on purpose: the label answers §IV's qualitative
// question (did a hub emerge? a hub hierarchy? a flat mesh?), not a
// clustering exercise.
func classify(ep Epoch) string {
	switch {
	case ep.Nodes < 3:
		return "degenerate"
	case ep.Routable < 0.5:
		return "fragmented"
	case ep.Centralization >= 0.3:
		return "star-like"
	case ep.DegreeGini >= 0.45:
		return "hub-hierarchy"
	case ep.MeanDegree >= 5:
		return "dense-mesh"
	default:
		return "sparse-mesh"
	}
}
