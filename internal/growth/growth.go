// Package growth is the sequential-arrival network-formation engine: it
// answers §IV's question — which topologies *emerge* when players act
// selfishly — at production scale by growing a network from a seed
// topology through a stream of arriving participants, each pricing its
// attachment against the live network exactly the way the paper's joining
// user does (Algorithm 1 over the incremental evaluation engine).
//
// Where the exhaustive BestResponseDynamics caps out near a dozen
// players, the growth engine sustains thousands of arrivals: every joiner
// is priced through a persistent core.GrowSession whose all-pairs
// structure is *extended* per commit (one O(n²) array pass,
// graph.ExtendWithNode) instead of rebuilt (O(n·(n+m)) BFS), and the
// demand and λ̂ snapshots are refreshed on an amortized cadence. Churn
// (departures) and best-response rewiring for sampled nodes ride on the
// same session, repaired by the decremental close fold
// (graph.FoldClose) when channels close.
//
// Determinism contract: a Run is a pure function of (Config, rng stream).
// Every strategy the engine commits is bit-identical to what a
// from-scratch pricing of the same arrival would choose — enforced by the
// differential oracle (ReferenceRun + FuzzGrowthMatchesScratch), which
// replays the identical decision sequence through fresh
// core.NewJoinEvaluator + core.ScratchGreedy calls per arrival.
package growth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// ErrBadConfig reports an invalid growth configuration.
var ErrBadConfig = errors.New("growth: invalid config")

// SeedKind names the seed topology a run grows from.
type SeedKind string

// Seed topologies.
const (
	SeedEmpty SeedKind = "empty" // organic growth from nothing
	SeedStar  SeedKind = "star"
	SeedER    SeedKind = "er" // connected Erdős–Rényi
	SeedBA    SeedKind = "ba" // Barabási–Albert
)

// AttachKind names the candidate-sampling process offered to each joiner.
type AttachKind string

// Candidate processes.
const (
	// AttachUniform samples candidate peers uniformly from the alive
	// nodes: the joiner "hears about" a random subset.
	AttachUniform AttachKind = "uniform"
	// AttachPreferential samples candidates proportionally to degree+1,
	// the gossip-visibility model behind Barabási–Albert growth (§I).
	AttachPreferential AttachKind = "preferential"
)

// Config parametrises one growth run. The zero value is not runnable; use
// DefaultConfig as the base.
type Config struct {
	Seed      SeedKind
	SeedSize  int     // nodes in the seed topology (ignored for empty)
	SeedParam float64 // ER edge probability, or BA attachment count
	Balance   float64 // seed channel balance; also the peer-side balance of committed channels

	Arrivals int // joiners to process

	// Joiner profiles are drawn uniformly from [Min, Max] per arrival:
	// budget B_u, per-channel lock l, and demand weight N_u (the joiner's
	// own transaction rate). Min == Max pins the value without consuming
	// randomness.
	BudgetMin, BudgetMax float64
	LockMin, LockMax     float64
	RateMin, RateMax     float64

	Candidates int        // candidate peers offered per joiner (0 = every alive node)
	Attach     AttachKind // candidate-sampling process

	ChurnRate   float64 // per-arrival probability one alive node departs (closes all channels)
	RewireEvery int     // every k arrivals, best-response rewire sampled nodes (0 = never)
	RewireCount int     // nodes rewired per rewiring round

	RefreshEvery int // arrivals between demand + λ̂ snapshot refreshes (default 32)
	EpochEvery   int // arrivals between metric epochs (default Arrivals/8)

	Uniform bool    // uniform transaction distribution instead of modified Zipf
	ZipfS   float64 // modified-Zipf scale when !Uniform (default 1)

	Params core.Params       // base economics; OwnRate is overridden by each joiner's drawn rate
	Model  core.RevenueModel // pricing model (zero = fixed-rate, Algorithm 1's setting)

	// Parallelism bounds the workers of the session's substrate passes —
	// the row-sharded decremental close fold after churn and the commit
	// fold.
	// Results are bit-identical at every setting (each row is an
	// independent pure function of the substrate), so this is a
	// wall-clock knob only: 0 (the zero value) keeps the substrate
	// single-threaded, negative selects all cores, positive bounds the
	// workers.
	Parallelism int
}

// DefaultConfig returns a runnable base configuration: BA-seeded growth,
// preferential candidate sampling, fixed-rate pricing.
func DefaultConfig() Config {
	return Config{
		Seed:         SeedBA,
		SeedSize:     12,
		SeedParam:    2,
		Balance:      1,
		Arrivals:     100,
		BudgetMin:    4,
		BudgetMax:    8,
		LockMin:      1,
		LockMax:      1,
		RateMin:      1,
		RateMax:      1,
		Candidates:   16,
		Attach:       AttachPreferential,
		RefreshEvery: 32,
		ZipfS:        1,
		Params: core.Params{
			OnChainCost: 1,
			OppCostRate: 0.05,
			FAvg:        0.5,
			FeePerHop:   0.5,
			OwnRate:     1,
		},
	}
}

func (cfg *Config) normalize() error {
	if cfg.Arrivals < 0 {
		return fmt.Errorf("%w: %d arrivals", ErrBadConfig, cfg.Arrivals)
	}
	if cfg.Seed == "" {
		cfg.Seed = SeedEmpty
	}
	if cfg.Attach == "" {
		cfg.Attach = AttachUniform
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 32
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = (cfg.Arrivals + 7) / 8
		if cfg.EpochEvery < 1 {
			cfg.EpochEvery = 1
		}
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate > 1 {
		return fmt.Errorf("%w: churn rate %v", ErrBadConfig, cfg.ChurnRate)
	}
	for _, r := range [][2]float64{
		{cfg.BudgetMin, cfg.BudgetMax},
		{cfg.LockMin, cfg.LockMax},
		{cfg.RateMin, cfg.RateMax},
	} {
		if r[0] < 0 || math.IsNaN(r[0]) {
			return fmt.Errorf("%w: negative joiner profile bound %v", ErrBadConfig, r[0])
		}
		if r[1] < r[0] {
			return fmt.Errorf("%w: inverted joiner profile range [%v, %v]", ErrBadConfig, r[0], r[1])
		}
	}
	if cfg.RewireEvery > 0 && cfg.RewireCount <= 0 {
		cfg.RewireCount = 1
	}
	if err := cfg.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	switch cfg.Attach {
	case AttachUniform, AttachPreferential:
	default:
		return fmt.Errorf("%w: attach process %q", ErrBadConfig, cfg.Attach)
	}
	switch cfg.Seed {
	case SeedEmpty, SeedStar, SeedER, SeedBA:
	default:
		return fmt.Errorf("%w: seed topology %q", ErrBadConfig, cfg.Seed)
	}
	return nil
}

// distribution returns the transaction distribution of the run.
func (cfg *Config) distribution() txdist.Distribution {
	if cfg.Uniform {
		return txdist.Uniform{}
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1
	}
	return txdist.ModifiedZipf{S: s}
}

// Result is the outcome of one growth run.
type Result struct {
	// Epochs are the streamed metric snapshots, oldest first; the final
	// state is always the last epoch.
	Epochs []Epoch
	// Trace records every committed decision in order: one entry per
	// arrival, plus one per rewired node. The differential oracle
	// replays against this bit for bit.
	Trace []Decision
	// Final is the grown substrate.
	Final *graph.Graph
	// Departed marks nodes that left through churn.
	Departed []bool
	// Departures and Rewires count churn events processed.
	Departures, Rewires int
	// Evaluations totals the objective evaluations spent pricing.
	Evaluations int64
}

// DecisionKind distinguishes trace entries.
type DecisionKind uint8

// Trace entry kinds.
const (
	DecideJoin DecisionKind = iota + 1
	DecideRewire
)

// Decision is one committed pricing outcome.
type Decision struct {
	Kind DecisionKind
	// Node is the joining (or rewired) node identifier.
	Node graph.NodeID
	// Strategy is the committed channel set.
	Strategy core.Strategy
	// Objective is the optimiser's objective at the chosen strategy.
	Objective float64
	// Utility is the reported plan utility (fixed-rate model).
	Utility float64
}

// backend abstracts the network+pricing substrate of the decision loop,
// so the production engine (incremental GrowSession) and the differential
// oracle (from-scratch evaluator per arrival) replay the *identical*
// decision sequence — same rng draws, same candidate sets, same greedy
// configuration — through different machinery.
type backend interface {
	Graph() *graph.Graph
	// Refresh installs a new demand snapshot and re-estimates λ̂ over the
	// candidates.
	Refresh(d *traffic.Demand, candidates []graph.NodeID)
	// Price runs Algorithm 1 for one joiner described by pu and params.
	Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error)
	// Commit folds a fresh arrival in; Reattach folds a rewired node back.
	Commit(s core.Strategy) (graph.NodeID, error)
	Reattach(v graph.NodeID, s core.Strategy) error
	// Close removes every channel of v and restores internal coherence
	// (the session folds the departure into its all-pairs structure).
	Close(v graph.NodeID) error
	// AllPairs exposes the live structure for metric scans; the oracle
	// returns nil and skips metrics.
	AllPairs() *graph.AllPairs
}

// Run grows a network per cfg, driven by rng. The result is a pure
// function of (cfg, rng stream) — byte-identical across machines and
// parallelism, which is what lets multi-seed sweeps fan out.
func Run(cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g, err := seedGraph(cfg, rng)
	if err != nil {
		return nil, err
	}
	gs, err := core.NewGrowSession(g, cfg.Params, g.NumNodes()+cfg.Arrivals, cfg.Balance)
	if err != nil {
		return nil, err
	}
	if cfg.Parallelism != 0 {
		gs.SetParallelism(cfg.Parallelism)
	}
	return runLoop(cfg, rng, &sessionBackend{gs: gs})
}

// sessionBackend is the production substrate: one persistent GrowSession.
type sessionBackend struct {
	gs *core.GrowSession
}

func (b *sessionBackend) Graph() *graph.Graph { return b.gs.Graph() }

func (b *sessionBackend) Refresh(d *traffic.Demand, candidates []graph.NodeID) {
	b.gs.SetDemand(d)
	if _, err := b.gs.RefreshRates(candidates); err != nil {
		// Refresh cannot fail on a coherent substrate; surface loudly.
		panic(fmt.Sprintf("growth session: refresh rates: %v", err))
	}
}

func (b *sessionBackend) Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error) {
	ev, err := b.gs.Evaluator(pu, params)
	if err != nil {
		return core.Result{}, err
	}
	return core.Greedy(ev, cfg)
}

func (b *sessionBackend) Commit(s core.Strategy) (graph.NodeID, error) { return b.gs.Commit(s) }

func (b *sessionBackend) Reattach(v graph.NodeID, s core.Strategy) error { return b.gs.Reattach(v, s) }

func (b *sessionBackend) Close(v graph.NodeID) error {
	closed, err := b.gs.CloseNode(v)
	if err != nil {
		return err
	}
	// An already-isolated departer (a joiner that never afforded a
	// channel, or a node whose peers all left) closes nothing: the
	// substrate is untouched and the session stays clean — vacuously
	// bit-identical, since repairing an unchanged graph reproduces the
	// unchanged structure. A real departure is absorbed by the
	// decremental fold (bit-identical to the Rebuild this path used to
	// pay, per the FoldClose contract, but touching only the affected
	// source rows); the loop closes at most one node between pricings,
	// so each fold here is a batch of one — callers that close several
	// nodes directly on the session amortize one fold per batch.
	if closed > 0 {
		b.gs.FoldClose()
	}
	return nil
}

func (b *sessionBackend) AllPairs() *graph.AllPairs { return b.gs.AllPairs() }

// seedGraph builds the seed topology. Random seeds consume rng, so the
// engine and the oracle grow identical substrates from a shared stream.
func seedGraph(cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	return BuildSeed(cfg.Seed, cfg.SeedSize, cfg.SeedParam, cfg.Balance, rng)
}

// BuildSeed constructs a seed topology by kind: the substrate a growth
// run — or a channel-market run (internal/market) — starts from. param is
// the ER edge probability or the BA attachment count (out-of-range values
// select the kind's default). Random kinds consume rng, so engines and
// their differential oracles grow identical substrates from a shared
// stream.
func BuildSeed(kind SeedKind, n int, param, balance float64, rng *rand.Rand) (*graph.Graph, error) {
	switch kind {
	case SeedEmpty:
		return graph.New(0), nil
	case SeedStar:
		if n < 2 {
			return nil, fmt.Errorf("%w: star seed needs ≥ 2 nodes", ErrBadConfig)
		}
		return graph.Star(n-1, balance), nil
	case SeedER:
		if n < 2 {
			return nil, fmt.Errorf("%w: er seed needs ≥ 2 nodes", ErrBadConfig)
		}
		p := param
		if p <= 0 || p > 1 {
			p = 0.3
		}
		return graph.ConnectedErdosRenyi(n, p, balance, rng, 50), nil
	case SeedBA:
		m := int(param)
		if m < 1 {
			m = 2
		}
		if n < m+1 {
			return nil, fmt.Errorf("%w: ba seed needs ≥ m+1 nodes", ErrBadConfig)
		}
		return graph.BarabasiAlbert(n, m, balance, rng), nil
	}
	return nil, fmt.Errorf("%w: seed topology %q", ErrBadConfig, kind)
}

// runLoop is the shared decision loop. Per arrival, in this exact order:
// profile draw, candidate draw, pricing, commit, churn draw, rewiring
// round (on cadence), snapshot refresh (on cadence), metrics epoch (on
// cadence). Every rng consumption is identical across backends; pricing
// consumes none.
func runLoop(cfg Config, rng *rand.Rand, b backend) (*Result, error) {
	g := b.Graph()
	res := &Result{}
	departed := make([]bool, 0, g.NumNodes()+cfg.Arrivals)
	alive := make([]graph.NodeID, 0, g.NumNodes()+cfg.Arrivals)
	for v := 0; v < g.NumNodes(); v++ {
		departed = append(departed, false)
		alive = append(alive, graph.NodeID(v))
	}
	dist := cfg.distribution()

	refresh := func() {
		d := buildDemand(g, dist, departed)
		b.Refresh(d, append([]graph.NodeID(nil), alive...))
	}
	refresh()

	var epochEvals int64
	var epochJoins int
	for t := 0; t < cfg.Arrivals; t++ {
		// 1. Arrival: draw a profile and a candidate set, price, commit.
		profile := drawProfile(cfg, rng)
		cands := drawCandidates(cfg, rng, g, alive, graph.InvalidNode)
		pu := joinProbs(g, graph.InvalidNode, dist, departed)
		plan, err := b.Price(pu, profile.params(cfg), profile.greedy(cfg, cands))
		if err != nil {
			return nil, err
		}
		u, err := b.Commit(plan.Strategy)
		if err != nil {
			return nil, err
		}
		departed = append(departed, false)
		alive = append(alive, u)
		res.Trace = append(res.Trace, Decision{
			Kind: DecideJoin, Node: u, Strategy: plan.Strategy,
			Objective: plan.Objective, Utility: plan.Utility,
		})
		res.Evaluations += int64(plan.Evaluations)
		epochEvals += int64(plan.Evaluations)
		epochJoins++

		// 2. Churn: with probability ChurnRate one alive node departs.
		if cfg.ChurnRate > 0 && len(alive) >= 3 && rng.Float64() < cfg.ChurnRate {
			idx := rng.Intn(len(alive))
			v := alive[idx]
			if err := b.Close(v); err != nil {
				return nil, err
			}
			departed[v] = true
			alive = append(alive[:idx], alive[idx+1:]...)
			res.Departures++
		}

		// 3. Rewiring: sampled alive nodes re-run their best response.
		if cfg.RewireEvery > 0 && (t+1)%cfg.RewireEvery == 0 {
			for j := 0; j < cfg.RewireCount && len(alive) >= 2; j++ {
				v := alive[rng.Intn(len(alive))]
				profile := drawProfile(cfg, rng)
				cands := drawCandidates(cfg, rng, g, alive, v)
				if err := b.Close(v); err != nil {
					return nil, err
				}
				pu := joinProbs(g, v, dist, departed)
				plan, err := b.Price(pu, profile.params(cfg), profile.greedy(cfg, cands))
				if err != nil {
					return nil, err
				}
				if err := b.Reattach(v, plan.Strategy); err != nil {
					return nil, err
				}
				res.Trace = append(res.Trace, Decision{
					Kind: DecideRewire, Node: v, Strategy: plan.Strategy,
					Objective: plan.Objective, Utility: plan.Utility,
				})
				res.Evaluations += int64(plan.Evaluations)
				epochEvals += int64(plan.Evaluations)
				res.Rewires++
			}
		}

		// 4. Snapshot refresh.
		if (t+1)%cfg.RefreshEvery == 0 {
			refresh()
		}

		// 5. Metrics epoch.
		if ap := b.AllPairs(); ap != nil && ((t+1)%cfg.EpochEvery == 0 || t == cfg.Arrivals-1) {
			ep := computeEpoch(g, ap, alive, t+1)
			if epochJoins > 0 {
				ep.EvalsPerJoin = float64(epochEvals) / float64(epochJoins)
			}
			epochEvals, epochJoins = 0, 0
			res.Epochs = append(res.Epochs, ep)
		}
	}
	if cfg.Arrivals == 0 {
		if ap := b.AllPairs(); ap != nil {
			res.Epochs = append(res.Epochs, computeEpoch(g, ap, alive, 0))
		}
	}
	res.Final = g
	res.Departed = departed
	return res, nil
}

// profile is one joiner's drawn economics.
type profile struct {
	budget, lock, rate float64
}

func (p profile) params(cfg Config) core.Params {
	params := cfg.Params
	params.OwnRate = p.rate
	return params
}

func (p profile) greedy(cfg Config, candidates []graph.NodeID) core.GreedyConfig {
	return core.GreedyConfig{
		Budget:       p.budget,
		Lock:         p.lock,
		Candidates:   candidates,
		Model:        cfg.Model,
		UtilityModel: core.RevenueFixedRate,
	}
}

func drawProfile(cfg Config, rng *rand.Rand) profile {
	return profile{
		budget: drawUniform(rng, cfg.BudgetMin, cfg.BudgetMax),
		lock:   drawUniform(rng, cfg.LockMin, cfg.LockMax),
		rate:   drawUniform(rng, cfg.RateMin, cfg.RateMax),
	}
}

// DrawUniform draws from [lo, hi]; a degenerate interval pins the value
// without consuming randomness, so pinned configs replay faster streams.
// Shared by the growth and market engines so joiner/bidder profile draws
// consume identical streams across engines and oracles.
func DrawUniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// drawUniform is the package-internal spelling of DrawUniform.
func drawUniform(rng *rand.Rand, lo, hi float64) float64 { return DrawUniform(rng, lo, hi) }

// drawCandidates samples the candidate peer set offered to one joiner:
// cfg.Candidates distinct alive nodes (excluding exclude), uniformly or
// degree-preferentially. When the pool is no larger than the quota the
// whole pool is offered without consuming randomness.
func drawCandidates(cfg Config, rng *rand.Rand, g *graph.Graph, alive []graph.NodeID, exclude graph.NodeID) []graph.NodeID {
	pool := make([]graph.NodeID, 0, len(alive))
	for _, v := range alive {
		if v != exclude {
			pool = append(pool, v)
		}
	}
	return SampleCandidates(rng, g, pool, cfg.Candidates, cfg.Attach == AttachPreferential)
}

// SampleCandidates draws k distinct candidate peers from pool, uniformly
// or proportionally to degree+1 (the gossip-visibility model behind
// Barabási–Albert growth, §I). The pool slice is consumed (reordered and
// truncated); when it is no larger than the quota — or k ≤ 0 — the whole
// pool is offered without consuming randomness. Both the growth engine's
// arrival loop and the market engine's bid draw sample through this one
// function, so their candidate streams replay identically.
func SampleCandidates(rng *rand.Rand, g *graph.Graph, pool []graph.NodeID, k int, preferential bool) []graph.NodeID {
	if k <= 0 || k >= len(pool) {
		return pool
	}
	chosen := make([]graph.NodeID, 0, k)
	if preferential {
		weights := make([]float64, len(pool))
		total := 0.0
		for i, v := range pool {
			weights[i] = float64(g.InDegree(v) + 1)
			total += weights[i]
		}
		for len(chosen) < k {
			x := rng.Float64() * total
			idx := len(pool) - 1
			for i, w := range weights {
				if x < w {
					idx = i
					break
				}
				x -= w
			}
			chosen = append(chosen, pool[idx])
			total -= weights[idx]
			pool = append(pool[:idx], pool[idx+1:]...)
			weights = append(weights[:idx], weights[idx+1:]...)
		}
	} else { // uniform: partial Fisher-Yates
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(pool)-i)
			pool[i], pool[j] = pool[j], pool[i]
			chosen = append(chosen, pool[i])
		}
	}
	return chosen
}

// joinProbs returns the recipient distribution of one joiner (or rewired
// node) over the current substrate, with departed nodes masked out and
// the mass renormalized. Departed nodes still occupy ranks in the Zipf
// ordering — the joiner's view of the gossip layer lags reality the same
// way the demand snapshot does.
func joinProbs(g *graph.Graph, u graph.NodeID, dist txdist.Distribution, departed []bool) []float64 {
	return JoinProbs(g, u, dist, departed)
}

// JoinProbs returns the recipient distribution of one joiner (or rewired
// node u; graph.InvalidNode for a fresh arrival) over the current
// substrate. A non-nil departed mask zeroes departed recipients and
// renormalizes the mass; nil means every node is alive (the market
// engine's setting — its substrate has no churn).
func JoinProbs(g *graph.Graph, u graph.NodeID, dist txdist.Distribution, departed []bool) []float64 {
	probs := dist.Probs(g, u)
	if departed == nil {
		return probs
	}
	var total float64
	for v := range probs {
		if departed[v] {
			probs[v] = 0
		}
		total += probs[v]
	}
	if total > 0 {
		for v := range probs {
			probs[v] /= total
		}
	}
	return probs
}

// buildDemand is the package-internal spelling of BuildDemand.
func buildDemand(g *graph.Graph, dist txdist.Distribution, departed []bool) *traffic.Demand {
	return BuildDemand(g, dist, departed)
}

// BuildDemand materialises the existing-user demand snapshot: every alive
// node emits one transaction per time unit under the run's distribution.
// With a non-nil departed mask, departed nodes neither emit nor receive
// (their rows are zeroed and their columns masked with rows
// renormalized); nil means every node is alive.
func BuildDemand(g *graph.Graph, dist txdist.Distribution, departed []bool) *traffic.Demand {
	n := g.NumNodes()
	p := txdist.Matrix(g, dist)
	rates := make([]float64, n)
	for s := 0; s < n; s++ {
		if departed != nil && departed[s] {
			for r := range p[s] {
				p[s][r] = 0
			}
			continue
		}
		rates[s] = 1
		if departed == nil {
			continue
		}
		var total float64
		for r := range p[s] {
			if departed[r] {
				p[s][r] = 0
			}
			total += p[s][r]
		}
		if total > 0 {
			for r := range p[s] {
				p[s][r] /= total
			}
		}
	}
	return &traffic.Demand{P: p, Rates: rates}
}
