package growth

import (
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/core"
)

// FuzzGrowthMatchesScratch fuzzes the differential contract: an arbitrary
// (seed, config-bytes) pair must produce bit-identical decision traces
// from the incremental engine and the from-scratch oracle. The config
// bytes steer every discrete knob — seed topology, candidate process,
// churn, rewiring, cadences, revenue model — so the fuzzer explores
// interaction corners the table-driven test does not enumerate.
func FuzzGrowthMatchesScratch(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(3), uint8(0), false)
	f.Add(int64(2), uint8(1), uint8(1), uint8(9), uint8(5), false)
	f.Add(int64(3), uint8(2), uint8(0), uint8(14), uint8(2), true)
	f.Add(int64(4), uint8(3), uint8(1), uint8(7), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed int64, topo, attach, arrivals, knobs uint8, exact bool) {
		cfg := DefaultConfig()
		cfg.Seed = []SeedKind{SeedEmpty, SeedStar, SeedER, SeedBA}[int(topo)%4]
		cfg.SeedSize = 4 + int(topo)%5
		cfg.SeedParam = 0.35
		if cfg.Seed == SeedBA {
			cfg.SeedParam = 1 + float64(int(topo)%2)
		}
		cfg.Arrivals = int(arrivals) % 24
		cfg.Attach = []AttachKind{AttachUniform, AttachPreferential}[int(attach)%2]
		cfg.Candidates = 2 + int(knobs)%6
		cfg.BudgetMin, cfg.BudgetMax = 2, 2+float64(knobs%5)
		cfg.LockMin, cfg.LockMax = 0.5, 0.5+float64(knobs%3)
		cfg.RateMin, cfg.RateMax = 1, 1+float64(knobs%2)
		cfg.ChurnRate = float64(knobs%4) * 0.05
		if knobs%3 == 1 {
			cfg.RewireEvery = 5
			cfg.RewireCount = 1 + int(knobs)%2
		}
		cfg.RefreshEvery = 3 + int(knobs)%8
		cfg.Uniform = knobs%2 == 0
		if exact {
			cfg.Model = core.RevenueExact
			if cfg.Arrivals > 10 {
				cfg.Arrivals = 10 // exact-model oracle is O(n³) per arrival
			}
		}
		got, err := Run(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skipf("config rejected: %v", err)
		}
		want, err := ReferenceRun(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("oracle rejected a config the engine accepted: %v", err)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("trace length %d vs %d", len(got.Trace), len(want.Trace))
		}
		for i := range got.Trace {
			g, w := got.Trace[i], want.Trace[i]
			if g.Kind != w.Kind || g.Node != w.Node || !g.Strategy.Equal(w.Strategy) ||
				g.Objective != w.Objective || g.Utility != w.Utility {
				t.Fatalf("decision %d diverges:\n engine %+v\n oracle %+v", i, g, w)
			}
		}
		if got.Final.NumNodes() != want.Final.NumNodes() || got.Final.NumEdges() != want.Final.NumEdges() {
			t.Fatalf("final shape diverges: %d/%d vs %d/%d",
				got.Final.NumNodes(), got.Final.NumEdges(),
				want.Final.NumNodes(), want.Final.NumEdges())
		}
	})
}
