package growth

import (
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// This file is the differential-testing oracle of the growth engine: the
// same decision loop, with every piece of incremental machinery replaced
// by its from-scratch counterpart. Each arrival builds a fresh
// core.NewJoinEvaluator (a full BFS of the current substrate) and prices
// through core.ScratchGreedy (a full stats rebuild per probe). The
// determinism contract says a ReferenceRun must reproduce Run's trace bit
// for bit — strategies, objectives, utilities — which pins down, in one
// test, the incremental all-pairs extension, the zero-cost evaluator and
// the Push/Pop pricing state against their oracle definitions.
//
// The oracle is O(n²·(n+m)) per run where the engine is ~O(n) per probe
// and O(n²) per commit; use it at differential-test sizes only.

// ReferenceRun replays cfg through the from-scratch oracle backend. The
// rng stream must be seeded identically to the Run being checked.
func ReferenceRun(cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g, err := seedGraph(cfg, rng)
	if err != nil {
		return nil, err
	}
	return runLoop(cfg, rng, &oracleBackend{
		g:       g,
		params:  cfg.Params,
		balance: cfg.Balance,
		demand:  &traffic.Demand{},
		rates:   map[graph.NodeID]float64{},
	})
}

// oracleBackend holds a plain graph plus the demand and λ̂ snapshots;
// nothing is carried between arrivals except what the contract says is
// carried (the snapshots).
type oracleBackend struct {
	g       *graph.Graph
	params  core.Params
	balance float64
	demand  *traffic.Demand
	rates   map[graph.NodeID]float64
}

func (b *oracleBackend) Graph() *graph.Graph { return b.g }

// freshEvaluator builds a from-scratch evaluator for the current
// substrate: full BFS, padded demand (the snapshot may lag the graph —
// PairRate treats missing coverage as zero either way), explicit pu.
func (b *oracleBackend) freshEvaluator(pu []float64, params core.Params) (*core.JoinEvaluator, error) {
	n := b.g.NumNodes()
	if pu == nil {
		pu = make([]float64, n)
	}
	ev, err := core.NewJoinEvaluator(b.g, fixedProbs(pu), padDemand(b.demand, n), params)
	if err != nil {
		return nil, err
	}
	ev.SetFixedRates(b.rates)
	return ev, nil
}

func (b *oracleBackend) Refresh(d *traffic.Demand, candidates []graph.NodeID) {
	b.demand = d
	ev, err := b.freshEvaluator(nil, b.params)
	if err != nil {
		// Refresh cannot fail on a coherent substrate; surface loudly.
		panic(fmt.Sprintf("growth oracle: refresh evaluator: %v", err))
	}
	b.rates = ev.EstimateRates(candidates)
}

func (b *oracleBackend) Price(pu []float64, params core.Params, cfg core.GreedyConfig) (core.Result, error) {
	ev, err := b.freshEvaluator(pu, params)
	if err != nil {
		return core.Result{}, err
	}
	return core.ScratchGreedy(ev, cfg)
}

func (b *oracleBackend) Commit(s core.Strategy) (graph.NodeID, error) {
	u := b.g.AddNode()
	for _, a := range s {
		if _, _, err := b.g.AddChannel(u, a.Peer, a.Lock, b.balance); err != nil {
			return graph.InvalidNode, err
		}
	}
	return u, nil
}

func (b *oracleBackend) Reattach(v graph.NodeID, s core.Strategy) error {
	for _, a := range s {
		if _, _, err := b.g.AddChannel(v, a.Peer, a.Lock, b.balance); err != nil {
			return err
		}
	}
	return nil
}

func (b *oracleBackend) Close(v graph.NodeID) error {
	for _, w := range b.g.Neighbors(v) {
		for b.g.HasEdgeBetween(v, w) || b.g.HasEdgeBetween(w, v) {
			if err := b.g.RemoveChannel(v, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// AllPairs returns nil: the oracle maintains no incremental structure and
// skips metric epochs.
func (b *oracleBackend) AllPairs() *graph.AllPairs { return nil }

// fixedProbs is the package-internal spelling of FixedProbs.
type fixedProbs = FixedProbs

// FixedProbs adapts a precomputed recipient distribution to the
// txdist.Distribution interface, so an oracle's from-scratch evaluator
// sees exactly the pu slice the engine's zero-cost evaluator received.
// Shared with the market oracle (internal/market).
type FixedProbs []float64

// Name identifies the adapted distribution.
func (p FixedProbs) Name() string { return fmt.Sprintf("fixed(%d)", len(p)) }

// Probs returns the wrapped slice verbatim.
func (p FixedProbs) Probs(*graph.Graph, graph.NodeID) []float64 { return p }

// padDemand is the package-internal spelling of PadDemand.
func padDemand(d *traffic.Demand, n int) *traffic.Demand { return PadDemand(d, n) }

// PadDemand extends a lagging demand snapshot to n nodes with zero rows,
// matching PairRate's out-of-coverage-is-zero semantics while satisfying
// the evaluator constructor's coverage check. Shared with the market
// oracle (internal/market).
func PadDemand(d *traffic.Demand, n int) *traffic.Demand {
	if len(d.Rates) == n {
		return d
	}
	padded := &traffic.Demand{
		P:     append([][]float64(nil), d.P...),
		Rates: append([]float64(nil), d.Rates...),
	}
	for len(padded.Rates) < n {
		padded.Rates = append(padded.Rates, 0)
		padded.P = append(padded.P, nil)
	}
	return padded
}
