package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/par"
)

func TestRunEachStopsOnConsumerError(t *testing.T) {
	r := NewRunner(Options{Seed: 1, Parallelism: 2})
	stop := errors.New("stop")
	calls := 0
	err := r.RunEach([]string{"F1", "E9", "E7"}, func(i int, tbl *Table) error {
		calls++
		if tbl.ID != "F1" {
			t.Fatalf("first table = %s, want F1", tbl.ID)
		}
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("error = %v, want consumer error", err)
	}
	if calls != 1 {
		t.Fatalf("consumer called %d times after stopping, want 1", calls)
	}
}

func TestCollectOrdersResults(t *testing.T) {
	p := par.NewPool(8)
	got, err := collect(p, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestSubSeedIndependentOfParallelism(t *testing.T) {
	a := NewCtx(Options{Seed: 7, Parallelism: 1})
	b := NewCtx(Options{Seed: 7, Parallelism: 8})
	for i := 0; i < 20; i++ {
		if a.SubSeed(i) != b.SubSeed(i) {
			t.Fatalf("SubSeed(%d) differs across parallelism settings", i)
		}
		if a.SubSeed(i, 1) != b.SubSeed(i, 1) {
			t.Fatalf("SubSeed(%d, 1) differs across parallelism settings", i)
		}
	}
}

func TestSubSeedDistinctPerPath(t *testing.T) {
	c := NewCtx(Options{Seed: 1, Parallelism: 1})
	seen := map[int64][]int{}
	paths := [][]int{{0}, {1}, {2}, {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}}
	for _, path := range paths {
		s := c.SubSeed(path...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("paths %v and %v collide on seed %d", prev, path, s)
		}
		seen[s] = path
		if s < 0 {
			t.Fatalf("SubSeed(%v) = %d, want non-negative", path, s)
		}
	}
}

// TestParallelMatchesSerialByteForByte is the race-safety regression test
// of the parallel engine: a 4-worker run must render byte-identically to
// the serial run for every experiment without wall-clock measurement
// columns. Run with -race, it also proves the per-item stream and
// evaluator-clone discipline is free of data races.
func TestParallelMatchesSerialByteForByte(t *testing.T) {
	// Every experiment except: E5 and E12, whose wall-ms columns differ
	// between any two runs, serial or not; and E11 and E14, the two
	// slowest (20k-event replays / 32k-sample estimation), whose fan-out
	// follows the same addRows pattern covered by E13-E18 below.
	ids := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E6", "E7", "E8",
		"E9", "E10", "E13", "E15", "E16", "E17", "E18"}
	if testing.Short() {
		ids = []string{"F2", "E1", "E4"}
	}
	serial := NewRunner(Options{Seed: 3, Parallelism: 1})
	parallel := NewRunner(Options{Seed: 3, Parallelism: 4})
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			want, err := serial.Run(id)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			got, err := parallel.Run(id)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			var wantBuf, gotBuf bytes.Buffer
			if err := want.Render(&wantBuf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if err := got.Render(&gotBuf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if wantBuf.String() != gotBuf.String() {
				t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					wantBuf.String(), gotBuf.String())
			}
		})
	}
}

func TestRunnerRunAllKeepsRequestOrder(t *testing.T) {
	r := NewRunner(Options{Seed: 1, Parallelism: 4})
	ids := []string{"E9", "F1", "e7"} // case-insensitive lookup
	tables, err := r.RunAll(ids)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) != len(ids) {
		t.Fatalf("got %d tables, want %d", len(tables), len(ids))
	}
	for i, want := range []string{"E9", "F1", "E7"} {
		if tables[i].ID != want {
			t.Fatalf("tables[%d].ID = %s, want %s", i, tables[i].ID, want)
		}
	}
}

func TestRunnerRunAllDefaultsToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	r := NewRunner(Options{Seed: 1})
	tables, err := r.RunAll(nil)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) != len(All()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(All()))
	}
	for i, spec := range All() {
		if tables[i].ID != spec.ID {
			t.Fatalf("tables[%d].ID = %s, want %s", i, tables[i].ID, spec.ID)
		}
	}
}

func TestRunnerUnknownID(t *testing.T) {
	r := NewRunner(Options{Seed: 1})
	if _, err := r.Run("E99"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Run error = %v, want ErrUnknown", err)
	}
	if _, err := r.RunAll([]string{"F1", "E99"}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("RunAll error = %v, want ErrUnknown", err)
	}
}

func TestSplitMix64(t *testing.T) {
	// First output of the SplitMix64 sequence seeded with 0 (test vector
	// from Vigna's splitmix64.c).
	if got := splitMix64(0); got != 0xE220A8397B1DCDAF {
		t.Fatalf("splitMix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
	// The mixer is a bijection: no collisions on a dense input range.
	seen := make(map[uint64]bool, 1000)
	for i := uint64(0); i < 1000; i++ {
		v := splitMix64(i)
		if seen[v] {
			t.Fatalf("splitMix64 collision at %d", i)
		}
		seen[v] = true
	}
}

func ExampleRunner() {
	r := NewRunner(Options{Seed: 1, Parallelism: 4})
	tables, err := r.RunAll([]string{"F1"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(tables[0].ID)
	// Output: F1
}
