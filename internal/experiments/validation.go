package experiments

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/simulate"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// E11SimVsAnalytic replays Poisson workloads through the live payment
// machinery and compares measured per-node transit rates with the
// analytic λ estimates of §II-B (weighted betweenness), validating the
// model the utility function is built on. The topologies are built
// sequentially from the corpus stream (cheap); the 20k-event replays —
// the heavy part — run as parallel work items.
func E11SimVsAnalytic(ctx *Ctx) (*Table, error) {
	rng := ctx.Rand()
	t := &Table{
		ID:      "E11",
		Title:   "Measured vs analytic transit rates (busiest node per topology)",
		Columns: []string{"topology", "events", "success rate", "node", "predicted λ", "measured λ", "rel err"},
		Notes: []string{
			"analytic rates follow eq. 2 (pair-probability-weighted betweenness); simulation uses steady-state rebalancing",
			"expected shape: relative errors within sampling noise (a few percent at this event count)",
		},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{name: "star(6)", g: graph.Star(6, 5000)},
		{name: "circle(8)", g: graph.Circle(8, 5000)},
		{name: "ba(16,2)", g: graph.BarabasiAlbert(16, 2, 5000, rng)},
	}
	const events = 20000
	err := addRows(t, ctx.pool, len(cases), func(i int) ([]any, error) {
		c := cases[i]
		ledger, err := chain.NewLedger(1)
		if err != nil {
			return nil, err
		}
		network, err := payment.FromGraph(ledger, fee.Constant{F: 0.01}, c.g)
		if err != nil {
			return nil, err
		}
		demand, err := traffic.NewUniformDemand(c.g, txdist.ModifiedZipf{S: 1}, float64(c.g.NumNodes()))
		if err != nil {
			return nil, err
		}
		res, err := simulate.Run(network, simulate.Config{
			Demand:         demand,
			Sizes:          fee.FixedSize{T: 1},
			Events:         events,
			Seed:           ctx.Seed + 1,
			RebalanceEvery: 500,
		})
		if err != nil {
			return nil, err
		}
		predicted := simulate.PredictedTransit(c.g, demand)
		// Report the busiest node (the hub in hub topologies).
		busiest := 0
		for v := range predicted {
			if predicted[v] > predicted[busiest] {
				busiest = v
			}
		}
		measured := res.TransitRate(graph.NodeID(busiest))
		relErr := math.NaN()
		if predicted[busiest] > 0 {
			relErr = math.Abs(measured-predicted[busiest]) / predicted[busiest]
		}
		return []any{c.name, res.Events,
			fmt.Sprintf("%.3f", res.SuccessRate()),
			busiest,
			fmt.Sprintf("%.4f", predicted[busiest]),
			fmt.Sprintf("%.4f", measured),
			fmt.Sprintf("%.3f", relErr)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
