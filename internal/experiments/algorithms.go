package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
)

// E4GreedyRatio compares Algorithm 1 against the brute-force optimum of
// U' across a random corpus, reporting the worst observed ratio per
// configuration (Theorem 4 guarantees ≥ 1−1/e ≈ 0.632).
func E4GreedyRatio(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E4",
		Title:   "Greedy (Alg 1) vs brute-force optimum of U'",
		Columns: []string{"n", "budget", "M", "trials", "min ratio", "mean ratio", "mean evals", "bound 1-1/e"},
		Notes: []string{
			"Theorem 4: greedy achieves ≥ 1−1/e of the optimum with O(M·n) evaluations",
			"ratios ≥ 1 occur when greedy finds the exact optimum",
		},
	}
	bound := 1 - 1/math.E
	// Revenue-favourable parameters keep the optimum positive so the
	// approximation ratio is meaningful (the 1−1/e guarantee is stated
	// for non-negative objectives).
	params := corpusParams()
	params.FAvg = 2
	params.FeePerHop = 0.2
	for _, n := range []int{8, 10, 12} {
		for _, budget := range []float64{4, 6, 8} {
			const trials = 6
			minRatio := math.Inf(1)
			var sumRatio float64
			ratios := 0
			var sumEvals float64
			for trial := 0; trial < trials; trial++ {
				e, err := corpusEvaluator("er", n, rng, params)
				if err != nil {
					return nil, err
				}
				res, err := core.Greedy(e, core.GreedyConfig{Budget: budget, Lock: 1})
				if err != nil {
					return nil, err
				}
				sumEvals += float64(res.Evaluations)
				opt, err := core.BruteForce(e, core.BruteForceConfig{Budget: budget, Locks: []float64{1}})
				if err != nil {
					return nil, err
				}
				if opt.Truncated || opt.Objective <= 0 || math.IsInf(opt.Objective, 0) {
					continue
				}
				ratio := res.Objective / opt.Objective
				if ratio < minRatio {
					minRatio = ratio
				}
				sumRatio += ratio
				ratios++
			}
			if ratios == 0 {
				continue
			}
			m := int(budget / 2) // C + lock = 2
			t.AddRow(n, budget, m, ratios,
				fmt.Sprintf("%.4f", minRatio),
				fmt.Sprintf("%.4f", sumRatio/float64(ratios)),
				fmt.Sprintf("%.0f", sumEvals/float64(trials)),
				fmt.Sprintf("%.4f", bound))
		}
	}
	return t, nil
}

// E5DiscreteTradeoff sweeps Algorithm 2's granularity m, exposing the
// paper's trade-off: smaller m explores more divisions (better capital
// control, more runtime).
func E5DiscreteTradeoff(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E5",
		Title:   "Discretised search (Alg 2): granularity m vs quality and work",
		Columns: []string{"n", "budget", "unit m", "U'", "ratio vs brute", "evaluations", "wall ms"},
		Notes: []string{
			"Theorem 5: each division inherits the 1−1/e guarantee relative to its own lock assignment; smaller m explores more divisions at higher cost",
			"the ratio column uses a stronger reference — brute force over arbitrary lock multisets — and U' takes negative values here, so it can dip below 1−1/e; the expected shape is the monotone improvement as m shrinks",
		},
	}
	const (
		n      = 10
		budget = 6.0
	)
	// Same revenue-favourable parameters as E4 so the brute-force
	// reference optimum is positive and the ratio column meaningful.
	params := corpusParams()
	params.FAvg = 2
	params.FeePerHop = 0.2
	e, err := corpusEvaluator("ba", n, rng, params)
	if err != nil {
		return nil, err
	}
	opt, err := core.BruteForce(e, core.BruteForceConfig{
		Budget: budget,
		Locks:  []float64{0, 1, 2, 4},
	})
	if err != nil {
		return nil, err
	}
	for _, unit := range []float64{4, 2, 1, 0.5} {
		start := time.Now()
		res, err := core.DiscreteSearch(e, core.DiscreteConfig{Budget: budget, Unit: unit})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ratio := ""
		if opt.Objective > 0 && !opt.Truncated {
			ratio = fmt.Sprintf("%.4f", res.Objective/opt.Objective)
		}
		t.AddRow(n, budget, unit,
			fmt.Sprintf("%.4f", res.Objective), ratio,
			res.Evaluations,
			fmt.Sprintf("%.2f", float64(elapsed.Microseconds())/1000))
	}
	return t, nil
}

// E6ContinuousRatio compares the §III-D local search on the benefit
// function against brute force; the paper targets a 1/5 approximation.
func E6ContinuousRatio(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E6",
		Title:   "Continuous local search vs brute-force optimum of U^b",
		Columns: []string{"trial", "n", "local U^b", "optimal U^b", "ratio", "≥ 1/5"},
		Notes: []string{
			"§III-D: local search for non-monotone submodular maximisation targets a 1/5 approximation; observed ratios are far better on this corpus",
		},
	}
	grid := []float64{0, 1, 2, 4}
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(3)
		// The benefit function compares against transacting on-chain:
		// a high own rate and cheap per-hop fees make joining clearly
		// worthwhile, keeping U^b positive so the 1/5 ratio is
		// meaningful.
		params := corpusParams()
		params.OwnRate = 10
		params.FeePerHop = 0.05
		params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
		e, err := corpusEvaluator("er", n, rng, params)
		if err != nil {
			return nil, err
		}
		res, err := core.ContinuousSearch(e, core.ContinuousConfig{Budget: 7, LockGrid: grid})
		if err != nil {
			return nil, err
		}
		opt, err := core.BruteForce(e, core.BruteForceConfig{
			Budget:    7,
			Locks:     grid,
			Objective: core.ObjectiveBenefit,
		})
		if err != nil {
			return nil, err
		}
		if opt.Truncated || opt.Objective <= 0 || math.IsInf(opt.Objective, 0) {
			continue
		}
		ratio := res.Objective / opt.Objective
		t.AddRow(trial, n,
			fmt.Sprintf("%.4f", res.Objective),
			fmt.Sprintf("%.4f", opt.Objective),
			fmt.Sprintf("%.4f", ratio),
			ratio >= 0.2-1e-9)
	}
	return t, nil
}

// E12Tradeoff runs all three algorithms on one corpus instance,
// reproducing the paper's conclusion table: runtime grows with capital
// freedom.
func E12Tradeoff(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E12",
		Title:   "Algorithm trade-off: capital freedom vs work (single corpus instance)",
		Columns: []string{"algorithm", "capital constraint", "objective", "value", "utility U", "evaluations", "wall ms"},
		Notes: []string{
			"paper conclusion: (a) fixed locks = linear time, (b) discretised locks = pseudo-polynomial, (c) continuous locks = local search on U^b",
		},
	}
	const (
		n      = 16
		budget = 8.0
	)
	params := corpusParams()
	params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
	e, err := corpusEvaluator("ba", n, rng, params)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	greedy, err := core.Greedy(e, core.GreedyConfig{Budget: budget, Lock: 1})
	if err != nil {
		return nil, err
	}
	t.AddRow("Alg 1 greedy", "fixed lock 1", "U'",
		fmt.Sprintf("%.4f", greedy.Objective),
		fmt.Sprintf("%.4f", greedy.Utility),
		greedy.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))

	start = time.Now()
	disc, err := core.DiscreteSearch(e, core.DiscreteConfig{Budget: budget, Unit: 1})
	if err != nil {
		return nil, err
	}
	t.AddRow("Alg 2 discrete", "locks = k·1", "U'",
		fmt.Sprintf("%.4f", disc.Objective),
		fmt.Sprintf("%.4f", disc.Utility),
		disc.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))

	start = time.Now()
	cont, err := core.ContinuousSearch(e, core.ContinuousConfig{Budget: budget})
	if err != nil {
		return nil, err
	}
	t.AddRow("§III-D continuous", "locks ∈ R+", "U^b",
		fmt.Sprintf("%.4f", cont.Objective),
		fmt.Sprintf("%.4f", cont.Utility),
		cont.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))
	return t, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
