package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
)

// E4GreedyRatio compares Algorithm 1 against the brute-force optimum of
// U' across a random corpus, reporting the worst observed ratio per
// configuration (Theorem 4 guarantees ≥ 1−1/e ≈ 0.632). The corpus is
// flat: every (configuration, trial) pair is one parallel work item with
// its own derived random stream, and the per-configuration aggregation
// happens afterwards in index order.
func E4GreedyRatio(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Greedy (Alg 1) vs brute-force optimum of U'",
		Columns: []string{"n", "budget", "M", "trials", "min ratio", "mean ratio", "mean evals", "bound 1-1/e"},
		Notes: []string{
			"Theorem 4: greedy achieves ≥ 1−1/e of the optimum with O(M·n) evaluations",
			"ratios ≥ 1 occur when greedy finds the exact optimum",
		},
	}
	bound := 1 - 1/math.E
	// Revenue-favourable parameters keep the optimum positive so the
	// approximation ratio is meaningful (the 1−1/e guarantee is stated
	// for non-negative objectives).
	params := corpusParams()
	params.FAvg = 2
	params.FeePerHop = 0.2
	type config struct {
		n      int
		budget float64
	}
	var configs []config
	for _, n := range []int{8, 10, 12} {
		for _, budget := range []float64{4, 6, 8} {
			configs = append(configs, config{n: n, budget: budget})
		}
	}
	const trials = 6
	type trial struct {
		ratio float64
		evals int
		ok    bool
	}
	results, err := collect(ctx.pool, len(configs)*trials, func(k int) (trial, error) {
		cfg := configs[k/trials]
		rng := ctx.SubRand(k/trials, k%trials)
		e, err := corpusEvaluator("er", cfg.n, rng, params)
		if err != nil {
			return trial{}, err
		}
		res, err := core.Greedy(e, core.GreedyConfig{Budget: cfg.budget, Lock: 1})
		if err != nil {
			return trial{}, err
		}
		opt, err := core.BruteForce(e, core.BruteForceConfig{Budget: cfg.budget, Locks: []float64{1}})
		if err != nil {
			return trial{}, err
		}
		if opt.Truncated || opt.Objective <= 0 || math.IsInf(opt.Objective, 0) {
			return trial{evals: res.Evaluations}, nil
		}
		return trial{ratio: res.Objective / opt.Objective, evals: res.Evaluations, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cfg := range configs {
		minRatio := math.Inf(1)
		var sumRatio, sumEvals float64
		ratios := 0
		for _, tr := range results[i*trials : (i+1)*trials] {
			sumEvals += float64(tr.evals)
			if !tr.ok {
				continue
			}
			if tr.ratio < minRatio {
				minRatio = tr.ratio
			}
			sumRatio += tr.ratio
			ratios++
		}
		if ratios == 0 {
			continue
		}
		m := int(cfg.budget / 2) // C + lock = 2
		t.AddRow(cfg.n, cfg.budget, m, ratios,
			fmt.Sprintf("%.4f", minRatio),
			fmt.Sprintf("%.4f", sumRatio/float64(ratios)),
			fmt.Sprintf("%.0f", sumEvals/float64(trials)),
			fmt.Sprintf("%.4f", bound))
	}
	return t, nil
}

// E5DiscreteTradeoff sweeps Algorithm 2's granularity m, exposing the
// paper's trade-off: smaller m explores more divisions (better capital
// control, more runtime). The four granularities run concurrently on
// clones of one evaluator, sharing the all-pairs precomputation and the
// λ̂ table. The evaluations column is the deterministic work measure;
// the wall-clock column is indicative only — at parallelism > 1 the
// sweeps time each other's scheduler contention.
func E5DiscreteTradeoff(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Discretised search (Alg 2): granularity m vs quality and work",
		Columns: []string{"n", "budget", "unit m", "U'", "ratio vs brute", "evaluations", "wall ms"},
		Notes: []string{
			"Theorem 5: each division inherits the 1−1/e guarantee relative to its own lock assignment; smaller m explores more divisions at higher cost",
			"the ratio column uses a stronger reference — brute force over arbitrary lock multisets — and U' takes negative values here, so it can dip below 1−1/e; the expected shape is the monotone improvement as m shrinks",
			"evaluations is the load-bearing work measure; wall ms varies run to run and includes scheduler contention when experiments run in parallel",
		},
	}
	const (
		n      = 10
		budget = 6.0
	)
	// Same revenue-favourable parameters as E4 so the brute-force
	// reference optimum is positive and the ratio column meaningful.
	params := corpusParams()
	params.FAvg = 2
	params.FeePerHop = 0.2
	e, err := corpusEvaluator("ba", n, ctx.Rand(), params)
	if err != nil {
		return nil, err
	}
	opt, err := core.BruteForce(e, core.BruteForceConfig{
		Budget: budget,
		Locks:  []float64{0, 1, 2, 4},
	})
	if err != nil {
		return nil, err
	}
	units := []float64{4, 2, 1, 0.5}
	type sweep struct {
		res    core.Result
		wallMS float64
	}
	results, err := collect(ctx.pool, len(units), func(i int) (sweep, error) {
		start := time.Now()
		res, err := core.DiscreteSearch(e.Clone(), core.DiscreteConfig{Budget: budget, Unit: units[i]})
		if err != nil {
			return sweep{}, err
		}
		return sweep{res: res, wallMS: msSince(start)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sw := range results {
		ratio := ""
		if opt.Objective > 0 && !opt.Truncated {
			ratio = fmt.Sprintf("%.4f", sw.res.Objective/opt.Objective)
		}
		t.AddRow(n, budget, units[i],
			fmt.Sprintf("%.4f", sw.res.Objective), ratio,
			sw.res.Evaluations,
			fmt.Sprintf("%.2f", sw.wallMS))
	}
	return t, nil
}

// E6ContinuousRatio compares the §III-D local search on the benefit
// function against brute force; the paper targets a 1/5 approximation.
func E6ContinuousRatio(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Continuous local search vs brute-force optimum of U^b",
		Columns: []string{"trial", "n", "local U^b", "optimal U^b", "ratio", "≥ 1/5"},
		Notes: []string{
			"§III-D: local search for non-monotone submodular maximisation targets a 1/5 approximation; observed ratios are far better on this corpus",
		},
	}
	grid := []float64{0, 1, 2, 4}
	const trials = 8
	err := addRows(t, ctx.pool, trials, func(trial int) ([]any, error) {
		rng := ctx.SubRand(trial)
		n := 6 + rng.Intn(3)
		// The benefit function compares against transacting on-chain:
		// a high own rate and cheap per-hop fees make joining clearly
		// worthwhile, keeping U^b positive so the 1/5 ratio is
		// meaningful.
		params := corpusParams()
		params.OwnRate = 10
		params.FeePerHop = 0.05
		params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
		e, err := corpusEvaluator("er", n, rng, params)
		if err != nil {
			return nil, err
		}
		res, err := core.ContinuousSearch(e, core.ContinuousConfig{Budget: 7, LockGrid: grid})
		if err != nil {
			return nil, err
		}
		opt, err := core.BruteForce(e, core.BruteForceConfig{
			Budget:    7,
			Locks:     grid,
			Objective: core.ObjectiveBenefit,
		})
		if err != nil {
			return nil, err
		}
		if opt.Truncated || opt.Objective <= 0 || math.IsInf(opt.Objective, 0) {
			return nil, nil // vacuous trial: no row
		}
		ratio := res.Objective / opt.Objective
		return []any{trial, n,
			fmt.Sprintf("%.4f", res.Objective),
			fmt.Sprintf("%.4f", opt.Objective),
			fmt.Sprintf("%.4f", ratio),
			ratio >= 0.2-1e-9}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E12Tradeoff runs all three algorithms on one corpus instance,
// reproducing the paper's conclusion table: runtime grows with capital
// freedom. The three searches stay sequential relative to each other;
// the evaluations column is the deterministic work measure, while wall
// ms additionally reflects whatever else shares the machine (other
// experiments, when the corpus runs in parallel).
func E12Tradeoff(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Algorithm trade-off: capital freedom vs work (single corpus instance)",
		Columns: []string{"algorithm", "capital constraint", "objective", "value", "utility U", "evaluations", "wall ms"},
		Notes: []string{
			"paper conclusion: (a) fixed locks = linear time, (b) discretised locks = pseudo-polynomial, (c) continuous locks = local search on U^b",
		},
	}
	const (
		n      = 16
		budget = 8.0
	)
	params := corpusParams()
	params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
	e, err := corpusEvaluator("ba", n, ctx.Rand(), params)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	greedy, err := core.Greedy(e, core.GreedyConfig{Budget: budget, Lock: 1})
	if err != nil {
		return nil, err
	}
	t.AddRow("Alg 1 greedy", "fixed lock 1", "U'",
		fmt.Sprintf("%.4f", greedy.Objective),
		fmt.Sprintf("%.4f", greedy.Utility),
		greedy.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))

	start = time.Now()
	disc, err := core.DiscreteSearch(e, core.DiscreteConfig{Budget: budget, Unit: 1})
	if err != nil {
		return nil, err
	}
	t.AddRow("Alg 2 discrete", "locks = k·1", "U'",
		fmt.Sprintf("%.4f", disc.Objective),
		fmt.Sprintf("%.4f", disc.Utility),
		disc.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))

	start = time.Now()
	cont, err := core.ContinuousSearch(e, core.ContinuousConfig{Budget: budget})
	if err != nil {
		return nil, err
	}
	t.AddRow("§III-D continuous", "locks ∈ R+", "U^b",
		fmt.Sprintf("%.4f", cont.Objective),
		fmt.Sprintf("%.4f", cont.Utility),
		cont.Evaluations,
		fmt.Sprintf("%.2f", msSince(start)))
	return t, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
