package experiments

import (
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// corpusParams is the shared parameter set of the property experiments.
func corpusParams() core.Params {
	return core.Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.5,
		FeePerHop:   0.4,
		OwnRate:     2,
	}
}

// corpusEvaluator builds an evaluator over a random connected topology.
func corpusEvaluator(kind string, n int, rng *rand.Rand, params core.Params) (*core.JoinEvaluator, error) {
	var g *graph.Graph
	switch kind {
	case "ba":
		g = graph.BarabasiAlbert(n, 2, 10, rng)
	default:
		g = graph.ConnectedErdosRenyi(n, 0.3, 10, rng, 50)
	}
	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(g, dist, float64(n))
	if err != nil {
		return nil, err
	}
	return core.NewJoinEvaluator(g, dist, demand, params)
}

var auditLocks = []float64{0, 1, 2, 5}

// E1Submodularity audits Theorem 1 (submodularity of U) under the
// fixed-rate model the theorem assumes, and — as an ablation — under the
// exact transit revenue, where the theorem's fixed-λ assumption is
// dropped.
func E1Submodularity(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E1",
		Title:   "Submodularity violations of U over random nested strategies",
		Columns: []string{"graph", "n", "trials", "violations (fixed-rate)", "violations (exact)", "vacuous"},
		Notes: []string{
			"Theorem 1 asserts 0 violations under the fixed-λ model; the exact-revenue column is an ablation outside the theorem's assumptions",
		},
	}
	for _, kind := range []string{"ba", "er"} {
		for _, n := range []int{8, 12, 16, 24} {
			e, err := corpusEvaluator(kind, n, rng, corpusParams())
			if err != nil {
				return nil, err
			}
			const trials = 300
			fixed := core.CheckSubmodularity(e, core.ObjectiveUtility, core.RevenueFixedRate, auditLocks, trials, rng)
			exact := core.CheckSubmodularity(e, core.ObjectiveUtility, core.RevenueExact, auditLocks, trials, rng)
			t.AddRow(kind, n, trials, fixed.Violations, exact.Violations, fixed.Vacuous)
		}
	}
	return t, nil
}

// E2Monotonicity audits Theorem 2: U' is monotone (0 violations); U is
// not (witnesses exist when channel costs bite).
func E2Monotonicity(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E2",
		Title:   "Monotonicity audit: U' (expected clean) vs U (witnesses expected)",
		Columns: []string{"graph", "n", "C", "trials", "U' violations", "U violations"},
		Notes: []string{
			"Theorem 2: U' = E^rev − E^fees is monotone increasing; the full U is not once channel costs are non-trivial",
		},
	}
	for _, n := range []int{10, 16} {
		for _, onChain := range []float64{1, 10, 50} {
			params := corpusParams()
			params.OnChainCost = onChain
			e, err := corpusEvaluator("ba", n, rng, params)
			if err != nil {
				return nil, err
			}
			const trials = 300
			simp := core.CheckMonotonicity(e, core.ObjectiveSimplified, core.RevenueFixedRate, auditLocks, trials, rng)
			full := core.CheckMonotonicity(e, core.ObjectiveUtility, core.RevenueFixedRate, auditLocks, trials, rng)
			t.AddRow("ba", n, onChain, trials, simp.Violations, full.Violations)
		}
	}
	return t, nil
}

// E3NegativeUtility exhibits Theorem 3: strategies with strictly negative
// utility exist.
func E3NegativeUtility(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E3",
		Title:   "Negative-utility witnesses per cost level",
		Columns: []string{"graph", "n", "C", "witness found", "witness strategy", "utility"},
		Notes: []string{
			"Theorem 3: U is not necessarily non-negative — channel costs can exceed revenue plus fee savings",
		},
	}
	for _, n := range []int{10, 16} {
		for _, onChain := range []float64{1, 10, 50} {
			params := corpusParams()
			params.OnChainCost = onChain
			e, err := corpusEvaluator("er", n, rng, params)
			if err != nil {
				return nil, err
			}
			s, u, found := core.FindNegativeUtility(e, core.RevenueFixedRate, auditLocks, 300, rng)
			witness := ""
			if found {
				witness = s.String()
			}
			t.AddRow("er", n, onChain, found, witness, fmt.Sprintf("%.4g", u))
		}
	}
	return t, nil
}
