package experiments

import (
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// corpusParams is the shared parameter set of the property experiments.
func corpusParams() core.Params {
	return core.Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.5,
		FeePerHop:   0.4,
		OwnRate:     2,
	}
}

// corpusEvaluator builds an evaluator over a random connected topology.
func corpusEvaluator(kind string, n int, rng *rand.Rand, params core.Params) (*core.JoinEvaluator, error) {
	var g *graph.Graph
	switch kind {
	case "ba":
		g = graph.BarabasiAlbert(n, 2, 10, rng)
	default:
		g = graph.ConnectedErdosRenyi(n, 0.3, 10, rng, 50)
	}
	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(g, dist, float64(n))
	if err != nil {
		return nil, err
	}
	return core.NewJoinEvaluator(g, dist, demand, params)
}

var auditLocks = []float64{0, 1, 2, 5}

// E1Submodularity audits Theorem 1 (submodularity of U) under the
// fixed-rate model the theorem assumes, and — as an ablation — under the
// exact transit revenue, where the theorem's fixed-λ assumption is
// dropped. Each (graph, n) configuration is one parallel work item with
// its own random stream; the two audits inside a configuration run on
// evaluator clones sharing one all-pairs precomputation.
func E1Submodularity(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Submodularity violations of U over random nested strategies",
		Columns: []string{"graph", "n", "trials", "violations (fixed-rate)", "violations (exact)", "vacuous"},
		Notes: []string{
			"Theorem 1 asserts 0 violations under the fixed-λ model; the exact-revenue column is an ablation outside the theorem's assumptions",
		},
	}
	type config struct {
		kind string
		n    int
	}
	var configs []config
	for _, kind := range []string{"ba", "er"} {
		for _, n := range []int{8, 12, 16, 24} {
			configs = append(configs, config{kind: kind, n: n})
		}
	}
	const trials = 300
	type result struct {
		fixed, exact core.PropertyReport
	}
	results, err := collect(ctx.pool, len(configs), func(i int) (result, error) {
		e, err := corpusEvaluator(configs[i].kind, configs[i].n, ctx.SubRand(i), corpusParams())
		if err != nil {
			return result{}, err
		}
		e.FixedRate(0) // build the λ̂ table once; the clones below share it
		var res result
		err = ctx.ForEach(2, func(j int) error {
			ev, rng := e.Clone(), ctx.SubRand(i, j)
			if j == 0 {
				res.fixed = core.CheckSubmodularity(ev, core.ObjectiveUtility, core.RevenueFixedRate, auditLocks, trials, rng)
			} else {
				res.exact = core.CheckSubmodularity(ev, core.ObjectiveUtility, core.RevenueExact, auditLocks, trials, rng)
			}
			return nil
		})
		return res, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.AddRow(configs[i].kind, configs[i].n, trials, r.fixed.Violations, r.exact.Violations, r.fixed.Vacuous)
	}
	return t, nil
}

// E2Monotonicity audits Theorem 2: U' is monotone (0 violations); U is
// not (witnesses exist when channel costs bite).
func E2Monotonicity(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Monotonicity audit: U' (expected clean) vs U (witnesses expected)",
		Columns: []string{"graph", "n", "C", "trials", "U' violations", "U violations"},
		Notes: []string{
			"Theorem 2: U' = E^rev − E^fees is monotone increasing; the full U is not once channel costs are non-trivial",
		},
	}
	type config struct {
		n       int
		onChain float64
	}
	var configs []config
	for _, n := range []int{10, 16} {
		for _, onChain := range []float64{1, 10, 50} {
			configs = append(configs, config{n: n, onChain: onChain})
		}
	}
	const trials = 300
	type result struct {
		simp, full core.PropertyReport
	}
	results, err := collect(ctx.pool, len(configs), func(i int) (result, error) {
		params := corpusParams()
		params.OnChainCost = configs[i].onChain
		e, err := corpusEvaluator("ba", configs[i].n, ctx.SubRand(i), params)
		if err != nil {
			return result{}, err
		}
		e.FixedRate(0)
		var res result
		err = ctx.ForEach(2, func(j int) error {
			ev, rng := e.Clone(), ctx.SubRand(i, j)
			if j == 0 {
				res.simp = core.CheckMonotonicity(ev, core.ObjectiveSimplified, core.RevenueFixedRate, auditLocks, trials, rng)
			} else {
				res.full = core.CheckMonotonicity(ev, core.ObjectiveUtility, core.RevenueFixedRate, auditLocks, trials, rng)
			}
			return nil
		})
		return res, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.AddRow("ba", configs[i].n, configs[i].onChain, trials, r.simp.Violations, r.full.Violations)
	}
	return t, nil
}

// E3NegativeUtility exhibits Theorem 3: strategies with strictly negative
// utility exist.
func E3NegativeUtility(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Negative-utility witnesses per cost level",
		Columns: []string{"graph", "n", "C", "witness found", "witness strategy", "utility"},
		Notes: []string{
			"Theorem 3: U is not necessarily non-negative — channel costs can exceed revenue plus fee savings",
		},
	}
	type config struct {
		n       int
		onChain float64
	}
	var configs []config
	for _, n := range []int{10, 16} {
		for _, onChain := range []float64{1, 10, 50} {
			configs = append(configs, config{n: n, onChain: onChain})
		}
	}
	type result struct {
		witness string
		utility float64
		found   bool
	}
	results, err := collect(ctx.pool, len(configs), func(i int) (result, error) {
		params := corpusParams()
		params.OnChainCost = configs[i].onChain
		e, err := corpusEvaluator("er", configs[i].n, ctx.SubRand(i), params)
		if err != nil {
			return result{}, err
		}
		s, u, found := core.FindNegativeUtility(e, core.RevenueFixedRate, auditLocks, 300, ctx.SubRand(i, 0))
		res := result{utility: u, found: found}
		if found {
			res.witness = s.String()
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.AddRow("er", configs[i].n, configs[i].onChain, r.found, r.witness, fmt.Sprintf("%.4g", r.utility))
	}
	return t, nil
}
