package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// The experiments in this file go beyond the paper's published results,
// following its own future-work directions: which topologies emerge
// under best-response dynamics (E13), how well the model's parameters
// can be estimated from observed traffic (E14, the paper's future-work
// #3), how much the realistic transaction distribution changes the
// recommended strategy relative to the uniform baseline of [18]–[20]
// (E15), and whether the guarantees survive the extended channel-cost
// model of Guasoni et al. [17] (E16).

// E13Dynamics runs best-response dynamics from several seeds and reports
// the emergent topology class — extending §IV from "is this topology
// stable?" to "which topologies form?". Every (start, l, s) cell runs its
// dynamics as one parallel work item with a private random stream.
func E13Dynamics(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Best-response dynamics: emergent topologies (extension of §IV)",
		Columns: []string{"start", "n", "s", "l", "rounds", "moves", "converged", "final class", "welfare"},
		Notes: []string{
			"extension: iterated exhaustive best responses until no node can improve",
			"expected shape: converged outcomes are Nash equilibria; cheap links favour dense graphs, expensive links sparse ones",
		},
	}
	type cell struct {
		name string
		l, s float64
	}
	makeStart := func(name string, rngIdx int) *graph.Graph {
		switch name {
		case "path":
			return graph.Path(6, 1)
		case "circle":
			return graph.Circle(6, 1)
		case "star":
			return graph.Star(5, 1)
		default:
			return graph.ConnectedErdosRenyi(6, 0.4, 1, ctx.SubRand(rngIdx), 50)
		}
	}
	var cells []cell
	for _, name := range []string{"path", "circle", "star", "er"} {
		for _, l := range []float64{0.1, 1} {
			for _, s := range []float64{0.5, 2} {
				cells = append(cells, cell{name: name, l: l, s: s})
			}
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := gameConfig(c.s, 1, 0.5, 0.5, c.l)
		g := makeStart(c.name, i)
		res, err := game.BestResponseDynamics(g, cfg, game.DynamicsConfig{MaxRounds: 30})
		if err != nil {
			return nil, err
		}
		return []any{c.name, g.NumNodes(), c.s, c.l,
			res.Rounds, res.Moves, res.Converged,
			string(game.Classify(res.Final)),
			fmt.Sprintf("%.4g", res.Welfare)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E14Estimation generates traffic from a known demand, re-estimates the
// demand from the observed log, and reports the estimation error and its
// decay with sample size — the paper's future-work direction #3. The
// sample sizes run concurrently, each pricing against a clone of the
// true-demand evaluator.
func E14Estimation(ctx *Ctx) (*Table, error) {
	rng := ctx.Rand()
	t := &Table{
		ID:      "E14",
		Title:   "Demand estimation from observed traffic (paper future work #3)",
		Columns: []string{"events", "max rate err", "max TV dist", "utility err (greedy plan)"},
		Notes: []string{
			"truth: modified Zipf s=1 demand on a BA(16,2) network; estimator: empirical frequencies with Laplace smoothing 0.1",
			"expected shape: errors decay roughly as 1/√events; the plan priced under the estimated demand converges to the true-demand price",
		},
	}
	g := graph.BarabasiAlbert(16, 2, 10, rng)
	dist := txdist.ModifiedZipf{S: 1}
	truth, err := traffic.NewUniformDemand(g, dist, 16)
	if err != nil {
		return nil, err
	}
	params := corpusParams()
	trueEval, err := core.NewJoinEvaluator(g, dist, truth, params)
	if err != nil {
		return nil, err
	}
	trueRes, err := core.Greedy(trueEval, core.GreedyConfig{Budget: 6, Lock: 1})
	if err != nil {
		return nil, err
	}
	sampleSizes := []int{500, 2000, 8000, 32000}
	err = addRows(t, ctx.pool, len(sampleSizes), func(i int) ([]any, error) {
		events := sampleSizes[i]
		gen, err := traffic.NewGenerator(truth, nil, ctx.SubRand(events))
		if err != nil {
			return nil, err
		}
		txs := gen.Take(events)
		estimated, err := traffic.EstimateDemand(g.NumNodes(), txs, gen.Now(), 0.1)
		if err != nil {
			return nil, err
		}
		rateErr, tvDist, err := traffic.DemandError(estimated, truth)
		if err != nil {
			return nil, err
		}
		estEval, err := core.NewJoinEvaluator(g, dist, estimated, params)
		if err != nil {
			return nil, err
		}
		estRes, err := core.Greedy(estEval, core.GreedyConfig{Budget: 6, Lock: 1})
		if err != nil {
			return nil, err
		}
		// Price the estimated-demand plan under the TRUE demand and
		// compare with the true-demand plan.
		utilityErr := trueRes.Utility - trueEval.Clone().Utility(estRes.Strategy, core.RevenueExact)
		return []any{events,
			fmt.Sprintf("%.4f", rateErr),
			fmt.Sprintf("%.4f", tvDist),
			fmt.Sprintf("%.4f", utilityErr)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E15DistributionAblation contrasts the attachment strategies recommended
// under the paper's modified Zipf distribution with those of the uniform
// baseline of [18]–[20] — the comparison motivating the paper's model.
// Each trial draws its topology from a private stream and runs as one
// parallel work item.
func E15DistributionAblation(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Distribution ablation: modified Zipf vs the uniform baseline of [18]-[20]",
		Columns: []string{"trial", "zipf plan", "uniform plan", "overlap", "U(zipf plan)", "U(uniform plan under zipf)", "regret"},
		Notes: []string{
			"both plans are priced under the degree-ranked (zipf) demand — the paper's realistic model",
			"expected shape: plans differ and the uniform-model plan loses utility (positive regret) when reality is degree-biased",
		},
	}
	params := corpusParams()
	params.FAvg = 2
	params.FeePerHop = 0.2
	const trials = 6
	err := addRows(t, ctx.pool, trials, func(trial int) ([]any, error) {
		g := graph.BarabasiAlbert(18, 2, 10, ctx.SubRand(trial))
		zipfDist := txdist.ModifiedZipf{S: 1.5}
		zipfDemand, err := traffic.NewUniformDemand(g, zipfDist, 18)
		if err != nil {
			return nil, err
		}
		zipfEval, err := core.NewJoinEvaluator(g, zipfDist, zipfDemand, params)
		if err != nil {
			return nil, err
		}
		zipfRes, err := core.Greedy(zipfEval, core.GreedyConfig{Budget: 6, Lock: 1})
		if err != nil {
			return nil, err
		}
		uniDemand, err := traffic.NewUniformDemand(g, txdist.Uniform{}, 18)
		if err != nil {
			return nil, err
		}
		uniEval, err := core.NewJoinEvaluator(g, txdist.Uniform{}, uniDemand, params)
		if err != nil {
			return nil, err
		}
		uniRes, err := core.Greedy(uniEval, core.GreedyConfig{Budget: 6, Lock: 1})
		if err != nil {
			return nil, err
		}
		// Price both under the zipf (realistic) model.
		uZipf := zipfRes.Utility
		uUni := zipfEval.Utility(uniRes.Strategy, core.RevenueExact)
		return []any{trial,
			zipfRes.Strategy.String(),
			uniRes.Strategy.String(),
			overlap(zipfRes.Strategy, uniRes.Strategy),
			fmt.Sprintf("%.4f", uZipf),
			fmt.Sprintf("%.4f", uUni),
			fmt.Sprintf("%.4f", uZipf-uUni)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E16CostModel re-runs the Theorem 1/4 audits under the extended
// Guasoni-style channel-cost model, checking the paper's remark that
// "our computational results still hold in this extended model". The
// (rho·lifetime, trial) grid is flattened into parallel work items and
// re-aggregated per cost level afterwards.
func E16CostModel(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Extended channel-cost model (Guasoni et al. [17]): guarantees retained",
		Columns: []string{"rho·lifetime", "submodularity violations", "greedy min ratio", "bound"},
		Notes: []string{
			"cost per channel = C + lock·(1 − e^{−rho·T}); the cost term stays modular so Theorems 1-5 carry",
		},
	}
	rhoTs := []float64{0.05, 0.2, 0.5}
	const trials = 4
	type audit struct {
		violations int
		ratio      float64
		ok         bool
	}
	audits, err := collect(ctx.pool, len(rhoTs)*trials, func(k int) (audit, error) {
		rhoT := rhoTs[k/trials]
		rng := ctx.SubRand(k/trials, k%trials)
		params := corpusParams()
		params.FAvg = 2
		params.FeePerHop = 0.2
		params.ChannelCostFn = core.GuasoniCost(params.OnChainCost, rhoT, 1)
		e, err := corpusEvaluator("er", 9, rng, params)
		if err != nil {
			return audit{}, err
		}
		rep := core.CheckSubmodularity(e, core.ObjectiveUtility, core.RevenueFixedRate, auditLocks, 200, rng)
		res, err := core.Greedy(e, core.GreedyConfig{Budget: 6, Lock: 1})
		if err != nil {
			return audit{}, err
		}
		opt, err := core.BruteForce(e, core.BruteForceConfig{Budget: 6, Locks: []float64{1}})
		if err != nil {
			return audit{}, err
		}
		a := audit{violations: rep.Violations}
		if opt.Objective > 0 && !opt.Truncated {
			a.ratio = res.Objective / opt.Objective
			a.ok = true
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rhoT := range rhoTs {
		violations := 0
		minRatio := 1.0
		for _, a := range audits[i*trials : (i+1)*trials] {
			violations += a.violations
			if a.ok && a.ratio < minRatio {
				minRatio = a.ratio
			}
		}
		t.AddRow(rhoT, violations, fmt.Sprintf("%.4f", minRatio), "0.6321")
	}
	return t, nil
}

// overlap counts the shared peers of two strategies.
func overlap(a, b core.Strategy) int {
	seen := make(map[graph.NodeID]bool)
	for _, act := range a {
		seen[act.Peer] = true
	}
	count := 0
	for _, act := range b.Peers() {
		if seen[act] {
			count++
		}
	}
	return count
}
