package experiments

import (
	"bytes"
	"strconv"
	"testing"
)

// TestTrafficTablesParallelismSweep is the traffic engine's race-safety
// regression at the experiment layer: the T-series tables must render
// byte-identically at parallelism 1, 4 and 8 — both the addRows fan-out
// across cells and traffic2's own sharded replay underneath it.
func TestTrafficTablesParallelismSweep(t *testing.T) {
	ids := []string{"T1", "T2", "T3"}
	if testing.Short() {
		ids = []string{"T3"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range []int{1, 4, 8} {
				tbl, err := NewRunner(Options{Seed: 5, Parallelism: workers}).Run(id)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatalf("render: %v", err)
				}
				if want == "" {
					want = buf.String()
					continue
				}
				if buf.String() != want {
					t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, buf.String())
				}
			}
		})
	}
}

// TestTrafficTableShapes sanity-checks the T-series structure: row
// counts, and that T2 carries a finite realized-vs-predicted delta for
// every reported node.
func TestTrafficTableShapes(t *testing.T) {
	tbl, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("T3")
	if err != nil {
		t.Fatalf("T3: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("T3 rows = %d, want 8", len(tbl.Rows))
	}
	successCol := columnIndex(t, tbl, "success")
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[successCol], 64)
		if err != nil || rate < 0 || rate > 1 {
			t.Fatalf("success %q not a rate in [0,1]", row[successCol])
		}
	}
	if testing.Short() {
		return
	}
	t2, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("T2")
	if err != nil {
		t.Fatalf("T2: %v", err)
	}
	if len(t2.Rows) != 12 {
		t.Fatalf("T2 rows = %d, want 12 (3 per topology)", len(t2.Rows))
	}
	deltaCol := columnIndex(t, t2, "delta %")
	for _, row := range t2.Rows {
		if _, err := strconv.ParseFloat(row[deltaCol], 64); err != nil {
			t.Fatalf("delta %q not numeric: %v", row[deltaCol], err)
		}
	}
}
