package experiments

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/traffic2"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// TestTrafficTablesParallelismSweep is the traffic engine's race-safety
// regression at the experiment layer: the T-series tables must render
// byte-identically at parallelism 1, 4 and 8 — both the addRows fan-out
// across cells and traffic2's own sharded replay underneath it.
func TestTrafficTablesParallelismSweep(t *testing.T) {
	ids := []string{"T1", "T2", "T3"}
	if testing.Short() {
		ids = []string{"T3"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range []int{1, 4, 8} {
				tbl, err := NewRunner(Options{Seed: 5, Parallelism: workers}).Run(id)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatalf("render: %v", err)
				}
				if want == "" {
					want = buf.String()
					continue
				}
				if buf.String() != want {
					t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, buf.String())
				}
			}
		})
	}
}

// TestT4ScaleAcceptance is the scale gate behind the T4 table: one
// million events over the n=10000 substrate must replay to completion
// inside 2 GiB. The dense demand matrix alone would need ~800 MB per
// shard here; the shared sparse plane keeps the whole run — graph, CSR
// network, plane, eight shards of scratch — under the budget.
func TestT4ScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event replay at n=10000 in -short mode")
	}
	const n = 10000
	g := graph.BarabasiAlbert(n, 2, 10, rand.New(rand.NewSource(41)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	sampler, err := traffic.NewSampler(g, txdist.DegreeProportional{Alpha: 1}, rates)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	res, err := traffic2.Replay(g, traffic2.Config{
		Sampler:        sampler,
		Sizes:          fee.UniformSize{T: 4},
		Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
		Events:         1_000_000,
		Seed:           41,
		Shards:         8,
		RebalanceEvery: 1000,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Events != 1_000_000 {
		t.Fatalf("replayed %d events, want 1M", res.Events)
	}
	if res.Successes < res.Events/2 {
		t.Fatalf("only %d/%d payments routed; the workload degenerated", res.Successes, res.Events)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if limit := uint64(2 << 30); ms.Sys > limit {
		t.Fatalf("runtime holds %d bytes from the OS, want < %d (2 GiB)", ms.Sys, limit)
	}
	t.Logf("routed %d/%d, %d depleted arcs, %.1f MB from OS",
		res.Successes, res.Events, res.DepletedArcs, float64(ms.Sys)/(1<<20))
}

// TestTrafficTableShapes sanity-checks the T-series structure: row
// counts, and that T2 carries a finite realized-vs-predicted delta for
// every reported node.
func TestTrafficTableShapes(t *testing.T) {
	tbl, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("T3")
	if err != nil {
		t.Fatalf("T3: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("T3 rows = %d, want 8", len(tbl.Rows))
	}
	successCol := columnIndex(t, tbl, "success")
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[successCol], 64)
		if err != nil || rate < 0 || rate > 1 {
			t.Fatalf("success %q not a rate in [0,1]", row[successCol])
		}
	}
	if testing.Short() {
		return
	}
	t2, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("T2")
	if err != nil {
		t.Fatalf("T2: %v", err)
	}
	if len(t2.Rows) != 12 {
		t.Fatalf("T2 rows = %d, want 12 (3 per topology)", len(t2.Rows))
	}
	deltaCol := columnIndex(t, t2, "delta %")
	for _, row := range t2.Rows {
		if _, err := strconv.ParseFloat(row[deltaCol], 64); err != nil {
			t.Fatalf("delta %q not numeric: %v", row[deltaCol], err)
		}
	}
}
