package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden tables under testdata/golden from the live output")

// goldenMask is the placeholder written over non-reproducible cells
// (wall-clock measurement columns) before rendering, so golden files are
// byte-stable while still pinning the table's structure.
const goldenMask = "MASKED"

// volatileColumns names the columns whose cells differ between any two
// runs even serially. Keep in sync with the package doc's determinism
// exception (E5 and E12's "wall ms").
var volatileColumns = map[string]bool{"wall ms": true}

// goldenRender renders the table with volatile cells masked.
func goldenRender(t *testing.T, tbl *Table) string {
	t.Helper()
	masked := *tbl
	var volatile []int
	for i, c := range tbl.Columns {
		if volatileColumns[c] {
			volatile = append(volatile, i)
		}
	}
	if len(volatile) > 0 {
		masked.Rows = make([][]string, len(tbl.Rows))
		for r, row := range tbl.Rows {
			cells := append([]string(nil), row...)
			for _, c := range volatile {
				if c < len(cells) {
					cells[c] = goldenMask
				}
			}
			masked.Rows[r] = cells
		}
	}
	var buf bytes.Buffer
	if err := masked.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String()
}

// TestGolden locks every experiment id down against its committed golden
// table at seed 1: any behavioural drift — a changed cell, a reordered
// row, a renamed column — fails with a diffable mismatch. Regenerate
// intentionally with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff like any other code change. This replaces ad-hoc
// byte-identity spot checks: the corpus is the regression surface.
func TestGolden(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			if testing.Short() && (spec.ID == "G3" || spec.ID == "M3" || spec.ID == "T4") {
				t.Skip("n=2000/n=10000 flagship rows in -short mode")
			}
			t.Parallel()
			tbl, err := spec.Run(NewCtx(Options{Seed: 1, Parallelism: 2}))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := goldenRender(t, tbl)
			path := filepath.Join("testdata", "golden", spec.ID+"_seed1.txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("output diverges from %s (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
					path, got, string(want))
			}
		})
	}
}

// TestGoldenCorpusComplete fails when an experiment id has no committed
// golden table (or a stale file shadows a removed id), so the corpus
// can't silently drift out of coverage.
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	files := map[string]bool{}
	for _, e := range entries {
		files[e.Name()] = true
	}
	for _, spec := range All() {
		name := spec.ID + "_seed1.txt"
		if !files[name] {
			t.Errorf("experiment %s has no golden table %s", spec.ID, name)
			continue
		}
		delete(files, name)
		// A golden file must actually pin its experiment: non-empty, and
		// headed by the id it is named for (catches copy-paste goldens
		// committed for a freshly added experiment).
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Errorf("golden table %s unreadable: %v", name, err)
			continue
		}
		if want := "== " + spec.ID + ":"; !bytes.HasPrefix(data, []byte(want)) {
			t.Errorf("golden table %s does not open with %q", name, want)
		}
	}
	for stale := range files {
		t.Errorf("stale golden table %s matches no experiment id", stale)
	}
}
