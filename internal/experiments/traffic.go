package experiments

import (
	"fmt"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/traffic2"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// The T-series experiments drive the production-rate traffic engine
// (internal/traffic2): replaying large transaction streams over the
// topologies the paper's games produce, and comparing what nodes actually
// earn against what Algorithm 1's analytic rates predicted. Every replay
// is a deterministic function of (config, seed, shards); worker count
// never changes a digit.

// trafficDemand is the shared workload model of the T-series: uniform
// sender rates with modified-Zipf recipient choice (§IV's symmetric
// setting over the paper's preferred recipient distribution).
func trafficDemand(g *graph.Graph) (*traffic.Demand, error) {
	return traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(g.NumNodes()))
}

// T1Load sweeps offered load against capacity: transaction sizes as a
// fraction of the channel balance, with and without inter-window
// rebalancing. The engine's balance tracking makes depletion visible as
// rising failure rates and a growing census of drained arcs.
func T1Load(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Traffic engine: throughput and failure vs offered load",
		Columns: []string{"size/balance", "rebalance", "events", "success", "retried", "depleted arcs", "fees paid", "routed/time"},
		Notes: []string{
			"each row replays 20k transactions over BA(300,2) with balance 10, sizes uniform with the given mean fraction of the balance; 8 shards",
			"expected shape: small payments route regardless; as sizes approach the balance, depletion mounts and only rebalancing (every 1000 events per shard) restores throughput",
		},
	}
	g := graph.BarabasiAlbert(300, 2, 10, ctx.SubRand(0))
	demand, err := trafficDemand(g)
	if err != nil {
		return nil, err
	}
	type cell struct {
		frac float64
		reb  int
	}
	var cells []cell
	for _, frac := range []float64{0.1, 0.3, 0.6} {
		for _, reb := range []int{0, 1000} {
			cells = append(cells, cell{frac: frac, reb: reb})
		}
	}
	err = addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		res, err := traffic2.Replay(g, traffic2.Config{
			Demand:         demand,
			Sizes:          fee.UniformSize{T: 2 * c.frac * 10}, // mean = frac·balance
			Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
			Events:         20000,
			Seed:           ctx.SubSeed(1, i),
			Shards:         8,
			Parallelism:    ctx.Parallelism(),
			RebalanceEvery: c.reb,
		})
		if err != nil {
			return nil, err
		}
		return []any{fmt.Sprintf("%.1f", c.frac), c.reb, res.Events,
			fmt.Sprintf("%.3f", res.SuccessRate()),
			res.Retried, res.DepletedArcs,
			fmt.Sprintf("%.1f", res.FeesPaid),
			fmt.Sprintf("%.1f", float64(res.Successes)/res.Elapsed)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// T2Revenue compares realized fee revenue against Algorithm 1's analytic
// prediction node by node. The predicted revenue rate of node v is its
// analytic transit rate times the mean fee favg (§II-B); the realized
// rate is what the replay actually credited per unit time. Rebalancing
// every 500 events keeps the network near the steady state the analytic
// model assumes.
func T2Revenue(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Traffic engine: realized vs predicted per-node revenue rates",
		Columns: []string{"topology", "node", "transit rate", "predicted rev", "realized rev", "delta %"},
		Notes: []string{
			"predicted = NodeTransitRates[v]·favg (the E^rev_v of Algorithm 1's objective); realized = Earned[v]/Elapsed over a 60k-event replay at steady state (rebalance every 500)",
			"rows are each topology's three highest-predicted nodes; grown is the final graph of a 100-arrival growth run",
			"expected shape: deltas within a few percent where balances are ample (star, circle); hubs of the heavy-tailed BA graph over-earn as retries detour through them, and the grown network's thin locked deposits deplete — realized revenue collapses below prediction, exactly the steady-state assumption Algorithm 1 warns about",
		},
	}
	grown, err := growth.Run(func() growth.Config {
		cfg := growth.DefaultConfig()
		cfg.Arrivals = 100
		cfg.Balance = 8
		return cfg
	}(), ctx.SubRand(2))
	if err != nil {
		return nil, err
	}
	type topo struct {
		name string
		g    *graph.Graph
	}
	topos := []topo{
		{"star", graph.Star(63, 25)},
		{"circle", graph.Circle(64, 25)},
		{"ba", graph.BarabasiAlbert(128, 2, 25, ctx.SubRand(3))},
		{"grown", grown.Final},
	}
	feeFn := fee.Linear{Base: 0.01, Rate: 0.005}
	sizes := fee.UniformSize{T: 4}
	favg := fee.Average(feeFn, sizes)
	rows, err := collect(ctx.pool, len(topos), func(i int) ([][]any, error) {
		tp := topos[i]
		demand, err := trafficDemand(tp.g)
		if err != nil {
			return nil, err
		}
		res, err := traffic2.Replay(tp.g, traffic2.Config{
			Demand:         demand,
			Sizes:          sizes,
			Fee:            feeFn,
			Events:         60000,
			Seed:           ctx.SubSeed(4, i),
			Shards:         8,
			Parallelism:    ctx.Parallelism(),
			RebalanceEvery: 500,
		})
		if err != nil {
			return nil, err
		}
		transit := demand.NodeTransitRates(tp.g)
		order := make([]int, len(transit))
		for v := range order {
			order[v] = v
		}
		sort.Slice(order, func(a, b int) bool {
			if transit[order[a]] != transit[order[b]] {
				return transit[order[a]] > transit[order[b]]
			}
			return order[a] < order[b]
		})
		var out [][]any
		for _, v := range order[:3] {
			predicted := transit[v] * favg
			realized := res.RevenueRate(graph.NodeID(v))
			delta := 0.0
			if predicted > 0 {
				delta = 100 * (realized - predicted) / predicted
			}
			out = append(out, []any{tp.name, v,
				fmt.Sprintf("%.3f", transit[v]),
				fmt.Sprintf("%.4f", predicted),
				fmt.Sprintf("%.4f", realized),
				fmt.Sprintf("%+.1f", delta)})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, group := range rows {
		for _, row := range group {
			t.AddRow(row...)
		}
	}
	return t, nil
}

// T4Scale replays production-rate traffic over the n=5000/10000 substrate
// the CSR work enabled — the scale the dense demand matrix (O(n²) per
// shard, ~800 MB at n=10k) made unreachable before the shared sampler
// plane. Each row replays 60k transactions through one sparse sampler
// family; the plane is built once and read by all shards concurrently,
// so per-shard state is an rng plus scratch.
func T4Scale(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "Traffic at scale: sparse demand samplers over the 10k substrate",
		Columns: []string{"n", "txdist", "sampler", "events", "success", "retried", "depleted arcs", "routed/time"},
		Notes: []string{
			"each row replays 60k transactions over BA(n,2) with balance 10, unit sender rates and sizes uniform with mean 4 (40% of balance), 8 shards, rebalance every 1000; the demand plane is a shared sparse sampler (O(n) memory), built once per row",
			"expected shape: the heavy load drains a few dozen arcs at both scales with success just under 1; distance-decay keeps payments local; routed/time tracks the total offered rate (= n)",
		},
	}
	type cell struct {
		n    int
		g    *graph.Graph
		dist txdist.Distribution
	}
	var cells []cell
	for ni, n := range []int{5000, 10000} {
		g := graph.BarabasiAlbert(n, 2, 10, ctx.SubRand(7, ni))
		for _, dist := range []txdist.Distribution{
			txdist.Uniform{},
			txdist.DegreeProportional{Alpha: 1},
			txdist.DistanceDecay{Decay: 0.5},
		} {
			cells = append(cells, cell{n: n, g: g, dist: dist})
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		rates := make([]float64, c.g.NumNodes())
		for v := range rates {
			rates[v] = 1
		}
		sampler, err := traffic.NewSampler(c.g, c.dist, rates)
		if err != nil {
			return nil, err
		}
		res, err := traffic2.Replay(c.g, traffic2.Config{
			Sampler:        sampler,
			Sizes:          fee.UniformSize{T: 8},
			Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
			Events:         60000,
			Seed:           ctx.SubSeed(8, i),
			Shards:         8,
			Parallelism:    ctx.Parallelism(),
			RebalanceEvery: 1000,
		})
		if err != nil {
			return nil, err
		}
		return []any{c.n, c.dist.Name(), sampler.Kind(), res.Events,
			fmt.Sprintf("%.3f", res.SuccessRate()),
			res.Retried, res.DepletedArcs,
			fmt.Sprintf("%.1f", float64(res.Successes)/res.Elapsed)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// T3Windows sweeps the measurement-window structure: rebalance cadence
// against shard count. Shards are part of the result's identity — each is
// an independent window from deposits — so the same event budget split
// into more windows depletes less but also measures shorter horizons.
func T3Windows(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "Traffic engine: depletion vs rebalance cadence and shard windows",
		Columns: []string{"rebalance", "shards", "success", "failures", "depleted arcs", "volume", "routed/time"},
		Notes: []string{
			"20k transactions over BA(200,2) with balance 6 and sizes near capacity (uniform mean 2); cadence is per shard window",
			"expected shape: without rebalancing, depletion compounds over longer windows (fewer shards fail more); frequent rebalancing makes the window split irrelevant",
		},
	}
	g := graph.BarabasiAlbert(200, 2, 6, ctx.SubRand(5))
	demand, err := trafficDemand(g)
	if err != nil {
		return nil, err
	}
	type cell struct {
		reb    int
		shards int
	}
	var cells []cell
	for _, reb := range []int{0, 250, 1000, 4000} {
		for _, shards := range []int{1, 8} {
			cells = append(cells, cell{reb: reb, shards: shards})
		}
	}
	err = addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		res, err := traffic2.Replay(g, traffic2.Config{
			Demand:         demand,
			Sizes:          fee.UniformSize{T: 4},
			Fee:            fee.Constant{F: 0.02},
			Events:         20000,
			Seed:           ctx.SubSeed(6),
			Shards:         c.shards,
			Parallelism:    ctx.Parallelism(),
			RebalanceEvery: c.reb,
		})
		if err != nil {
			return nil, err
		}
		return []any{c.reb, c.shards,
			fmt.Sprintf("%.3f", res.SuccessRate()),
			res.Failures, res.DepletedArcs,
			fmt.Sprintf("%.1f", res.Volume),
			fmt.Sprintf("%.1f", float64(res.Successes)/res.Elapsed)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
