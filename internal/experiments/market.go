package experiments

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/market"
)

// The M-series experiments drive the batch channel-market engine
// (internal/market): a tick-based auction pricing many concurrent join
// bids per tick against a shared snapshot, resolved by utility-ranked
// commits with bounded re-pricing. M1 asks what batching does to the
// emergent topology, M2 prices the staleness/re-pricing trade-off the
// engine's conflict resolver embodies, and M3 compares the market
// against the sequential-arrival growth engine at the n=2000 flagship
// scale. Every trial is one full market run executed as a parallel work
// item with a private random stream; the market's own pricing fan-out
// inherits the context's worker bound, so these tables exercise the
// engine's parallelism end to end while staying byte-identical at any
// worker count.

// marketBase is the shared auction shape of the M-series: BA(12,2)
// seed, mixed bid profiles, fixed-rate pricing, quotes refreshed every
// tick.
func marketBase(ctx *Ctx) market.Config {
	cfg := market.DefaultConfig()
	cfg.SeedSize = 12
	cfg.SeedParam = 2
	cfg.BudgetMin, cfg.BudgetMax = 3, 8
	cfg.LockMin, cfg.LockMax = 1, 1
	cfg.RateMin, cfg.RateMax = 0.5, 1.5
	cfg.Uniform = true // demand snapshots stay O(n²) per refresh
	cfg.Parallelism = ctx.Parallelism()
	return cfg
}

// marketSummary aggregates one run: final-tick substrate metrics plus
// whole-run auction counters and regret statistics.
type marketSummary struct {
	last       market.TickStats
	res        *market.Result
	meanRegret float64
	maxRegret  float64
	evalsPer   float64
}

func runMarket(cfg market.Config, ctx *Ctx, streamPath ...int) (marketSummary, error) {
	res, err := market.Run(cfg, ctx.SubRand(streamPath...))
	if err != nil {
		return marketSummary{}, err
	}
	if len(res.Ticks) == 0 {
		return marketSummary{}, fmt.Errorf("market run streamed no ticks")
	}
	s := marketSummary{last: res.Ticks[len(res.Ticks)-1], res: res}
	var sum float64
	for _, bd := range res.Trace {
		if bd.Outcome != market.Admitted {
			continue
		}
		sum += bd.Regret
		if bd.Regret > s.maxRegret {
			s.maxRegret = bd.Regret
		}
	}
	if res.Admitted > 0 {
		s.meanRegret = sum / float64(res.Admitted)
	}
	if bids := len(res.Trace); bids > 0 {
		s.evalsPer = float64(res.Evaluations) / float64(bids)
	}
	return s, nil
}

// M1Batch sweeps the tick width at a fixed bid volume: 256 bids priced
// as 256 sequential single-bid ticks down to one 256-bid batch. Wider
// ticks price more bids against one frozen quote — cheaper per bid, but
// the candidate sets lag (bidders of one tick cannot see each other)
// and conflicts resolve via stale commits.
func M1Batch(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "M1",
		Title:   "Market engine: batch width vs emergent welfare and centralization (256 bids)",
		Columns: []string{"batch", "ticks", "seed", "admitted", "deferrals", "repriced", "mean regret", "max regret", "class", "gini", "central", "diam", "efficiency"},
		Notes: []string{
			"each row opens a BA(12,2) market and resolves 256 bids in ticks of `batch` bids, 3 re-price rounds per tick, quotes refreshed every tick",
			"expected shape: wider batches defer/re-price more (conflicts) and accumulate admitted-bid regret, while per-bid quote maintenance is amortized batch-fold; topology metrics drift only mildly — the conflict resolver's utility ranking preserves the greedy attachment pattern",
		},
	}
	type cell struct {
		batch int
		seed  int
	}
	var cells []cell
	for _, batch := range []int{1, 8, 64, 256} {
		for seed := 1; seed <= 2; seed++ {
			cells = append(cells, cell{batch: batch, seed: seed})
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := marketBase(ctx)
		cfg.Batch = c.batch
		cfg.Ticks = 256 / c.batch
		s, err := runMarket(cfg, ctx, i, c.seed)
		if err != nil {
			return nil, err
		}
		return []any{c.batch, cfg.Ticks, c.seed, s.res.Admitted, s.res.Deferrals, int(s.res.Repricings),
			fmt.Sprintf("%.4f", s.meanRegret),
			fmt.Sprintf("%.4f", s.maxRegret),
			s.last.Epoch.Class,
			fmt.Sprintf("%.3f", s.last.Epoch.DegreeGini),
			fmt.Sprintf("%.3f", s.last.Epoch.Centralization),
			s.last.Epoch.Diameter,
			fmt.Sprintf("%.3f", s.last.Epoch.Efficiency)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// M2Staleness sweeps the re-price budget at a fixed batch width: how
// many rounds of conflict-driven re-pricing buy how much admitted-bid
// regret, and at what evaluation cost. MaxRounds=1 is the one-shot
// auction (every conflict commits stale); deeper budgets approach
// sequential exactness for conflicting bids.
func M2Staleness(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "M2",
		Title:   "Market engine: snapshot staleness — re-price rounds vs admitted-bid regret",
		Columns: []string{"rounds", "seed", "admitted", "withdrawn", "deferrals", "repriced", "mean regret", "max regret", "evals/bid", "efficiency"},
		Notes: []string{
			"each row resolves 4 ticks × 64 bids over a BA(12,2) seed with reserve utilities on (reserve ∈ [−2, 0]); `rounds` bounds the per-tick price→rank→commit/defer loop",
			"expected shape: regret falls as rounds grow — deferred conflicts get re-priced against fresh snapshots instead of committing stale — while evals/bid rises with every re-pricing round",
		},
	}
	type cell struct {
		rounds int
		seed   int
	}
	var cells []cell
	for _, rounds := range []int{1, 2, 3, 5} {
		for seed := 1; seed <= 2; seed++ {
			cells = append(cells, cell{rounds: rounds, seed: seed})
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := marketBase(ctx)
		cfg.Batch = 64
		cfg.Ticks = 4
		cfg.MaxRounds = c.rounds
		cfg.Reserve = true
		cfg.ReserveMin, cfg.ReserveMax = -2, 0
		s, err := runMarket(cfg, ctx, i, c.seed)
		if err != nil {
			return nil, err
		}
		return []any{c.rounds, c.seed, s.res.Admitted, s.res.Withdrawn, s.res.Deferrals, int(s.res.Repricings),
			fmt.Sprintf("%.4f", s.meanRegret),
			fmt.Sprintf("%.4f", s.maxRegret),
			fmt.Sprintf("%.1f", s.evalsPer),
			fmt.Sprintf("%.3f", s.last.Epoch.Efficiency)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// M3MarketVsSequential grows the same economy to n=2000 through three
// engines: sequential selfish arrival (the growth engine), a 64-bid
// batch market, and a near-one-shot 248-bid batch market. The flagship
// question: does clearing joins in batches distort the emergent
// topology the paper's sequential dynamics predict?
func M3MarketVsSequential(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "M3",
		Title:   "Market engine: batch market vs sequential arrival at n=2000",
		Columns: []string{"engine", "batch", "n", "class", "gini", "central", "max deg", "diam", "mean dist", "efficiency"},
		Notes: []string{
			"all rows grow BA(16,2) by 1984 joins to n=2000 with identical profile ranges, 16 preferential candidates and fixed-rate pricing; market rows clear joins in ticks of `batch` bids with 3 re-price rounds",
			"expected shape: batching preserves the hub-hierarchy class — utility-ranked conflict resolution keeps high-value attachments first — with slightly flatter degree concentration since same-tick bidders cannot see each other's hubs",
		},
	}
	const (
		target   = 2000
		seedSize = 16
		joins    = target - seedSize
	)
	type cell struct {
		engine string
		batch  int // 0 = sequential growth engine
		ticks  int
	}
	cells := []cell{
		{engine: "sequential", batch: 0},
		{engine: "market", batch: 64, ticks: joins / 64},
		{engine: "market", batch: 248, ticks: joins / 248},
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		var (
			ep  growth.Epoch
			n   int
			err error
		)
		if c.batch == 0 {
			cfg := growthBase()
			cfg.SeedSize = seedSize
			cfg.Arrivals = joins
			cfg.Candidates = 16
			cfg.RefreshEvery = 64
			cfg.EpochEvery = joins // final epoch only
			var e growth.Epoch
			e, _, err = lastEpoch(cfg, ctx, i)
			ep, n = e, e.Nodes
		} else {
			cfg := marketBase(ctx)
			cfg.SeedSize = seedSize
			cfg.Batch = c.batch
			cfg.Ticks = c.ticks
			// Match the growth engine's amortized quote cadence: ~64
			// joins between refreshes.
			cfg.RefreshTicks = int(math.Max(1, 64/float64(c.batch)))
			var s marketSummary
			s, err = runMarket(cfg, ctx, i)
			if err == nil {
				ep, n = s.last.Epoch, s.last.Epoch.Nodes
			}
		}
		if err != nil {
			return nil, err
		}
		batchLabel := "—"
		if c.batch > 0 {
			batchLabel = fmt.Sprintf("%d", c.batch)
		}
		return []any{c.engine, batchLabel, n, ep.Class,
			fmt.Sprintf("%.3f", ep.DegreeGini),
			fmt.Sprintf("%.3f", ep.Centralization),
			ep.MaxDegree, ep.Diameter,
			fmt.Sprintf("%.3f", ep.MeanDistance),
			fmt.Sprintf("%.3f", ep.Efficiency)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
