package experiments

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"github.com/lightning-creation-games/lcg/internal/par"
)

// Options configure one experiment run.
type Options struct {
	// Seed is the corpus seed; every experiment is a deterministic
	// function of it.
	Seed int64

	// Parallelism bounds the worker goroutines used both across
	// experiments (Runner.RunAll) and inside each experiment's
	// per-trial loops. 1 executes everything serially; values ≤ 0
	// select runtime.GOMAXPROCS(0). Output is bit-for-bit identical at
	// every setting.
	Parallelism int
}

// Ctx carries the deterministic inputs of one experiment execution: the
// seed and the worker pool its inner loops fan out on.
//
// Experiments with randomised trial loops must derive one independent
// random stream per work item with SubRand, indexed by the item's
// position in the loop, never by scheduling order. That discipline —
// per-item streams plus index-ordered result slots (par.Pool.ForEach) — is
// what keeps tables bit-for-bit identical across parallelism settings.
type Ctx struct {
	// Seed is the experiment corpus seed.
	Seed int64

	pool *par.Pool
}

// NewCtx builds an execution context from options.
func NewCtx(opts Options) *Ctx {
	return &Ctx{Seed: opts.Seed, pool: par.NewPool(opts.Parallelism)}
}

// serialCtx is the context of the compatibility entry points: one worker,
// everything inline.
func serialCtx(seed int64) *Ctx {
	return &Ctx{Seed: seed, pool: par.NewPool(1)}
}

// Parallelism returns the worker bound of the context's pool.
func (c *Ctx) Parallelism() int { return c.pool.Workers() }

// Rand returns a fresh generator seeded with the corpus seed — the
// sequential stream experiments without parallel inner loops consume.
func (c *Ctx) Rand() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// SubSeed derives the seed of one work item from the corpus seed and the
// item's index path (e.g. configuration index, then trial index). The
// derivation is a SplitMix64 chain, so distinct paths yield independent
// streams and the result never depends on scheduling.
func (c *Ctx) SubSeed(path ...int) int64 {
	x := uint64(c.Seed)
	for _, p := range path {
		x = splitMix64(x ^ (uint64(p) + 0x9E3779B97F4A7C15))
	}
	return int64(splitMix64(x) >> 1) // non-negative, full 63-bit range
}

// SubRand returns the work item's private generator, seeded by SubSeed.
func (c *Ctx) SubRand(path ...int) *rand.Rand {
	return rand.New(rand.NewSource(c.SubSeed(path...)))
}

// ForEach runs fn over [0, n) on the context's pool; see par.Pool.ForEach
// for the determinism contract.
func (c *Ctx) ForEach(n int, fn func(i int) error) error {
	return c.pool.ForEach(n, fn)
}

// splitMix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators", OOPSLA 2014) — a
// bijective mixer whose outputs pass BigCrush even on sequential inputs.
func splitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Runner executes experiments under one fixed Options set.
type Runner struct {
	opts Options
}

// NewRunner returns a runner; the zero Options value (seed 0, all cores)
// is valid.
func NewRunner(opts Options) *Runner { return &Runner{opts: opts} }

// Options returns the runner's configuration.
func (r *Runner) Options() Options { return r.opts }

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Table, error) {
	spec, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return spec.Run(NewCtx(r.opts))
}

// RunAll executes the given experiments (all of them when ids is empty)
// and returns their tables in request order. The experiments themselves
// run concurrently on the runner's pool, and each one fans its inner
// loops out on a pool of its own, so total goroutines stay bounded by
// Parallelism² while the output remains byte-identical to a serial run.
func (r *Runner) RunAll(ids []string) ([]*Table, error) {
	var tables []*Table
	err := r.RunEach(ids, func(_ int, tbl *Table) error {
		tables = append(tables, tbl)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// RunEach executes like RunAll but streams: fn receives each table in
// request order as soon as it and all its predecessors have finished, so
// a consumer can render table i while tables i+1… are still computing.
// Unknown ids fail upfront, before any experiment runs; an experiment
// error is reported at its position, after fn has seen every earlier
// table. A non-nil error from fn stops the iteration.
func (r *Runner) RunEach(ids []string, fn func(i int, tbl *Table) error) error {
	if len(ids) == 0 {
		for _, s := range All() {
			ids = append(ids, s.ID)
		}
	}
	specs := make([]Spec, len(ids))
	for i, id := range ids {
		spec, err := Lookup(id)
		if err != nil {
			return err
		}
		specs[i] = spec
	}
	n := len(specs)
	tables := make([]*Table, n)
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// Once the consumer loop returns early, abandoned stops the pool
	// from launching the remaining experiments (in-flight ones finish);
	// the errAbandoned sentinel trips ForEach's short-circuit.
	var abandoned atomic.Bool
	errAbandoned := errors.New("experiments: run abandoned")
	outer := par.NewPool(r.opts.Parallelism)
	go outer.ForEach(n, func(i int) error {
		defer close(done[i])
		if abandoned.Load() {
			return errAbandoned
		}
		tables[i], errs[i] = specs[i].Run(NewCtx(r.opts))
		return nil // per-index errors surface in request order below
	})
	for i := 0; i < n; i++ {
		<-done[i] // the close happens-after the slot writes
		if errs[i] != nil {
			abandoned.Store(true)
			return errs[i]
		}
		if err := fn(i, tables[i]); err != nil {
			abandoned.Store(true)
			return err
		}
	}
	return nil
}

// addRows runs fn over [0, n) on the pool and appends the returned rows
// to t in index order. A nil row with a nil error skips that item — the
// vacuous-trial convention shared by every experiment with skippable
// work items.
func addRows(t *Table, p *par.Pool, n int, fn func(i int) ([]any, error)) error {
	rows, err := collect(p, n, fn)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if row != nil {
			t.AddRow(row...)
		}
	}
	return nil
}

// collect runs fn over [0, n) on the pool and returns the results in
// index order, so the output is independent of scheduling.
func collect[T any](p *par.Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return par.Collect(p, n, fn)
}
