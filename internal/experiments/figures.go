package experiments

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// F1ChannelTrace replays Figure 1 through the live channel machinery:
// balances (10,7), a payment of 5 (→ (5,12)), a failing payment of 6, and
// the closing payment of 5 (→ (0,17)).
func F1ChannelTrace(*Ctx) (*Table, error) {
	ledger, err := chain.NewLedger(1)
	if err != nil {
		return nil, err
	}
	n := payment.NewNetwork(ledger, fee.Constant{F: 0})
	u := n.AddUser()
	v := n.AddUser()
	if err := ledger.Fund(chain.AccountID(u), 20); err != nil {
		return nil, err
	}
	if err := ledger.Fund(chain.AccountID(v), 20); err != nil {
		return nil, err
	}
	ch, err := n.OpenChannel(u, v, 10, 7)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: payments over a channel with balances (b_u, b_v)",
		Columns: []string{"step", "payment", "outcome", "b_u", "b_v"},
		Notes: []string{
			"paper: (10,7) →x=5 (5,12) →x=6 rejected (x > b_u=5) →x=5 (0,17)",
		},
	}
	record := func(step, label string) error {
		balU, balV, err := n.Balances(ch)
		if err != nil {
			return err
		}
		t.AddRow(step, label, "", balU, balV)
		return nil
	}
	if err := record("0", "open"); err != nil {
		return nil, err
	}
	for i, amount := range []float64{5, 6, 5} {
		_, payErr := n.Pay(u, v, amount)
		outcome := "ok"
		if payErr != nil {
			outcome = "rejected (insufficient balance)"
		}
		balU, balV, err := n.Balances(ch)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(i+1), fmt.Sprintf("u→v x=%g", amount), outcome, balU, balV)
	}
	return t, nil
}

// figure2Scenario builds the Figure 2 environment: the existing PCN is
// the path A-B-C-D, A sends 9 transactions per month to D, the joining
// node E sends 1 per month to B, and E's budget covers two channels plus
// 19 spare coins.
func figure2Scenario() (*core.JoinEvaluator, float64, error) {
	const (
		a = graph.NodeID(0)
		b = graph.NodeID(1)
		d = graph.NodeID(3)
	)
	g := graph.Path(4, 100) // A-B-C-D
	// Existing demand: A sends 9/month, all to D.
	p := make([][]float64, 4)
	for i := range p {
		p[i] = make([]float64, 4)
	}
	p[a][d] = 1
	demand := &traffic.Demand{P: p, Rates: []float64{9, 0, 0, 0}}
	// E transacts only with B, once per month. The figure says E "has
	// enough budget only for 2 channels, with the spare amount of funds
	// to lock equaling 19 coins": with C = 20 and budget 2C+19 = 59, a
	// third channel is unaffordable. Fees are one coin per forwarded
	// transaction ("transaction fees and costs are of equal size").
	params := core.Params{
		OnChainCost: 20,
		OppCostRate: 0,
		FAvg:        1,
		FeePerHop:   1,
		OwnRate:     1,
		// A channel forwards the month's transit only if its lock covers
		// the 9 unit-sized transactions.
		CapacityFactor: func(lock float64) float64 { return math.Min(1, lock/9) },
	}
	joinDist := fixedRecipient{target: b, n: 4}
	e, err := core.NewJoinEvaluator(g, joinDist, demand, params)
	if err != nil {
		return nil, 0, err
	}
	budget := 2*params.OnChainCost + 19 // two channels plus 19 spare coins
	return e, budget, nil
}

// fixedRecipient is the joining node's distribution in Figure 2: all
// transactions go to one target.
type fixedRecipient struct {
	target graph.NodeID
	n      int
}

func (f fixedRecipient) Name() string { return fmt.Sprintf("fixed(%d)", f.target) }

func (f fixedRecipient) Probs(g *graph.Graph, _ graph.NodeID) []float64 {
	probs := make([]float64, g.NumNodes())
	if g.HasNode(f.target) {
		probs[f.target] = 1
	}
	return probs
}

// F2JoiningExample reproduces the Figure 2 decision: the optimiser must
// attach E to A and D, with the exit channel to D funded to carry all 9
// monthly transactions (the paper's sizes: 10 on A, 9 on D).
func F2JoiningExample(*Ctx) (*Table, error) {
	e, budget, err := figure2Scenario()
	if err != nil {
		return nil, err
	}
	names := map[graph.NodeID]string{0: "A", 1: "B", 2: "C", 3: "D"}
	render := func(s core.Strategy) string {
		out := ""
		for i, act := range s {
			if i > 0 {
				out += " "
			}
			out += fmt.Sprintf("%s:%g", names[act.Peer], act.Lock)
		}
		if out == "" {
			out = "(none)"
		}
		return out
	}

	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: candidate strategies for the joining node E (budget 2C+19)",
		Columns: []string{"strategy", "revenue", "fees", "U' = rev − fees", "utility U"},
		Notes: []string{
			"paper: E should open channels to A and D sized 10 and 9",
			"the figure's objective — maximise intermediary revenue, minimise own costs with the channel budget sunk — is U'; Algorithms 1-2 optimise exactly that",
			"revenue requires the exit channel to D to hold ≥ 9 coins; the remaining capital is indifferent, so (A:10, D:9) is among the maximisers",
		},
	}
	candidates := []core.Strategy{
		{{Peer: 0, Lock: 10}, {Peer: 3, Lock: 9}}, // the paper's answer
		{{Peer: 0, Lock: 9}, {Peer: 3, Lock: 10}},
		{{Peer: 0, Lock: 19}},
		{{Peer: 1, Lock: 19}},
		{{Peer: 1, Lock: 10}, {Peer: 2, Lock: 9}},
		{{Peer: 0, Lock: 10}, {Peer: 1, Lock: 9}},
		{{Peer: 3, Lock: 19}},
		{{Peer: 0, Lock: 15}, {Peer: 3, Lock: 4}},
	}
	for _, s := range candidates {
		if !s.Feasible(e.Params().OnChainCost, budget) {
			continue
		}
		t.AddRow(render(s),
			e.Revenue(s, core.RevenueExact),
			e.Fees(s),
			e.Simplified(s, core.RevenueExact),
			e.Utility(s, core.RevenueExact))
	}
	// Confirm with the discrete optimiser over integer locks, under the
	// fixed-rate model whose guarantees Algorithms 1-2 carry.
	res, err := core.DiscreteSearch(e, core.DiscreteConfig{
		Budget: budget,
		Unit:   1,
		Model:  core.RevenueFixedRate,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("optimizer: "+render(res.Strategy), "", "", "", res.Utility)
	return t, nil
}
