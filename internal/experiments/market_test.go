package experiments

import (
	"bytes"
	"strconv"
	"testing"
)

// TestMarketParallelismSweep is the market engine's race-safety
// regression at the table level: the M-series tables must render
// byte-identically at parallelism 1, 4 and 8. Unlike the G-series sweep
// this exercises two nested parallel layers — the per-cell fan-out AND
// the market's internal concurrent bid pricing, whose worker bound
// follows the context's — so run with -race it proves the frozen-
// snapshot pricing discipline holds end to end.
//
// M3 joins the sweep only outside -short (its rows are n=2000 flagship
// runs); its cells use the identical runMarket/SubRand pattern
// exercised here, and the golden harness pins its output.
func TestMarketParallelismSweep(t *testing.T) {
	ids := []string{"M1", "M2"}
	if !testing.Short() {
		ids = append(ids, "M3")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range []int{1, 4, 8} {
				tbl, err := NewRunner(Options{Seed: 5, Parallelism: workers}).Run(id)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatalf("render: %v", err)
				}
				if want == "" {
					want = buf.String()
					continue
				}
				if buf.String() != want {
					t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, buf.String())
				}
			}
		})
	}
}

// TestMarketTableShapes sanity-checks the M-series structure without
// the flagship run: row counts, key columns, and the monotone
// re-pricing shape M2 exists to show.
func TestMarketTableShapes(t *testing.T) {
	tbl, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("M1")
	if err != nil {
		t.Fatalf("M1: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("M1 rows = %d, want 8", len(tbl.Rows))
	}
	batchCol := columnIndex(t, tbl, "batch")
	admittedCol := columnIndex(t, tbl, "admitted")
	for _, row := range tbl.Rows {
		if row[admittedCol] != "256" {
			t.Fatalf("M1 row admitted %s bids, want 256 (reserves are off): %v", row[admittedCol], row)
		}
	}
	if tbl.Rows[0][batchCol] != "1" {
		t.Fatalf("M1 first batch cell = %q", tbl.Rows[0][batchCol])
	}

	tbl, err = NewRunner(Options{Seed: 2, Parallelism: 0}).Run("M2")
	if err != nil {
		t.Fatalf("M2: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("M2 rows = %d, want 8", len(tbl.Rows))
	}
	roundsCol := columnIndex(t, tbl, "rounds")
	repricedCol := columnIndex(t, tbl, "repriced")
	// One-shot auctions never re-price; deeper budgets may.
	for _, row := range tbl.Rows {
		if row[roundsCol] == "1" && row[repricedCol] != "0" {
			t.Fatalf("M2 one-round row re-priced %s bids: %v", row[repricedCol], row)
		}
	}
	// Evaluations per bid must be non-decreasing in the round budget for
	// a fixed seed: re-pricing only ever adds work.
	evalsCol := columnIndex(t, tbl, "evals/bid")
	seedCol := columnIndex(t, tbl, "seed")
	prev := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[evalsCol], 64)
		if err != nil {
			t.Fatalf("M2 evals/bid cell %q: %v", row[evalsCol], err)
		}
		if p, ok := prev[row[seedCol]]; ok && v < p {
			t.Fatalf("M2 evals/bid fell from %v to %v as rounds grew: %v", p, v, row)
		}
		prev[row[seedCol]] = v
	}
}
