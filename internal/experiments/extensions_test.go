package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestE13DynamicsConvergesToStarWhenPriced(t *testing.T) {
	tbl := runExperiment(t, "E13")
	colL := columnIndex(t, tbl, "l")
	colConv := columnIndex(t, tbl, "converged")
	colClass := columnIndex(t, tbl, "final class")
	stars := 0
	for _, row := range tbl.Rows {
		if row[colL] == "1" {
			if row[colConv] != "yes" {
				t.Fatalf("l=1 run did not converge: %v", row)
			}
			if row[colClass] == string("star") {
				stars++
			}
		}
	}
	if stars == 0 {
		t.Fatal("no star outcomes with priced links — contradicts the paper's predominance claim")
	}
}

func TestE14ErrorsShrinkWithSample(t *testing.T) {
	tbl := runExperiment(t, "E14")
	colTV := columnIndex(t, tbl, "max TV dist")
	first, err := strconv.ParseFloat(tbl.Rows[0][colTV], 64)
	if err != nil {
		t.Fatalf("bad cell: %v", err)
	}
	last, err := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][colTV], 64)
	if err != nil {
		t.Fatalf("bad cell: %v", err)
	}
	if last >= first {
		t.Fatalf("TV distance did not shrink: %v → %v", first, last)
	}
	if last > 0.1 {
		t.Fatalf("TV distance at max sample = %v, want < 0.1", last)
	}
}

func TestE15UniformBaselineLosesUtility(t *testing.T) {
	tbl := runExperiment(t, "E15")
	colRegret := columnIndex(t, tbl, "regret")
	positive := 0
	for _, row := range tbl.Rows {
		regret, err := strconv.ParseFloat(row[colRegret], 64)
		if err != nil {
			t.Fatalf("bad regret cell %q", row[colRegret])
		}
		if regret > 0 {
			positive++
		}
	}
	// The realistic model must matter in the clear majority of trials.
	if positive*2 <= len(tbl.Rows) {
		t.Fatalf("uniform baseline matched zipf plans in %d/%d trials", len(tbl.Rows)-positive, len(tbl.Rows))
	}
}

func TestE16GuaranteesSurviveExtendedCosts(t *testing.T) {
	tbl := runExperiment(t, "E16")
	colViol := columnIndex(t, tbl, "submodularity violations")
	colRatio := columnIndex(t, tbl, "greedy min ratio")
	for _, row := range tbl.Rows {
		if row[colViol] != "0" {
			t.Fatalf("submodularity broke under extended costs: %v", row)
		}
		ratio, err := strconv.ParseFloat(row[colRatio], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[colRatio])
		}
		if ratio < 0.6321 {
			t.Fatalf("greedy ratio %v below bound under extended costs", ratio)
		}
	}
}

func TestExtensionExperimentsInRegistry(t *testing.T) {
	ids := strings.Join(IDs(), " ")
	for _, want := range []string{"E13", "E14", "E15", "E16"} {
		if !strings.Contains(ids, want) {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
}

func TestE18BoundariesClose(t *testing.T) {
	tbl := runExperiment(t, "E18")
	colClosed := columnIndex(t, tbl, "l* (Thm 8)")
	colEx := columnIndex(t, tbl, "l* (exhaustive)")
	for _, row := range tbl.Rows {
		closed, err := strconv.ParseFloat(row[colClosed], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[colClosed])
		}
		exhaustive, err := strconv.ParseFloat(row[colEx], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[colEx])
		}
		// Both characterisations must place the boundary in the same
		// small-cost region; the residual gap (the proof's deviation
		// family vs the full space) is reported, not hidden, but must
		// stay bounded.
		if closed <= 0 || exhaustive <= 0 {
			t.Fatalf("degenerate boundary: %v", row)
		}
		if closed > 1 || exhaustive > 1 {
			t.Fatalf("boundary outside the plausible region: %v", row)
		}
	}
}
