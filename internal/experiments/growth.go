package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/growth"
)

// The G-series experiments drive the sequential-arrival network-formation
// engine (internal/growth): §IV asks which topologies emerge when players
// act selfishly, and these tables answer it at scales the exhaustive
// best-response dynamics of E13 cannot reach. Every trial is one full
// growth run executed as a parallel work item with a private random
// stream, so the tables are byte-identical at any parallelism.

// growthBase is the shared run shape of the G-series: BA(12,2) seed,
// mixed joiner profiles, fixed-rate pricing.
func growthBase() growth.Config {
	cfg := growth.DefaultConfig()
	cfg.SeedSize = 12
	cfg.SeedParam = 2
	cfg.BudgetMin, cfg.BudgetMax = 3, 8
	cfg.LockMin, cfg.LockMax = 1, 1
	cfg.RateMin, cfg.RateMax = 0.5, 1.5
	cfg.Uniform = true // demand snapshots stay O(n²) per refresh
	return cfg
}

// lastEpoch runs one growth configuration and returns its final epoch and
// run totals.
func lastEpoch(cfg growth.Config, ctx *Ctx, streamPath ...int) (growth.Epoch, *growth.Result, error) {
	res, err := growth.Run(cfg, ctx.SubRand(streamPath...))
	if err != nil {
		return growth.Epoch{}, nil, err
	}
	if len(res.Epochs) == 0 {
		return growth.Epoch{}, nil, fmt.Errorf("growth run streamed no epochs")
	}
	return res.Epochs[len(res.Epochs)-1], res, nil
}

// G1Arrivals compares arrival processes: how the candidate-sampling
// model (uniform gossip vs degree-preferential visibility) and the
// candidate budget shape the emergent topology at n≈300.
func G1Arrivals(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "G1",
		Title:   "Growth engine: arrival-process comparison (uniform vs preferential candidates)",
		Columns: []string{"process", "candidates", "seed", "class", "gini", "central", "diam", "mean dist", "efficiency", "evals/join"},
		Notes: []string{
			"each row grows BA(12,2) by 288 sequential arrivals to n=300; joiners price channels with Algorithm 1 over the sampled candidate set",
			"expected shape: preferential visibility concentrates degree (higher gini/centralization) and shortens paths versus uniform gossip",
		},
	}
	type cell struct {
		attach growth.AttachKind
		cands  int
		seed   int
	}
	var cells []cell
	for _, attach := range []growth.AttachKind{growth.AttachUniform, growth.AttachPreferential} {
		for _, cands := range []int{8, 32} {
			for seed := 1; seed <= 2; seed++ {
				cells = append(cells, cell{attach: attach, cands: cands, seed: seed})
			}
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := growthBase()
		cfg.Arrivals = 288
		cfg.Attach = c.attach
		cfg.Candidates = c.cands
		ep, _, err := lastEpoch(cfg, ctx, i, c.seed)
		if err != nil {
			return nil, err
		}
		return []any{string(c.attach), c.cands, c.seed, ep.Class,
			fmt.Sprintf("%.3f", ep.DegreeGini),
			fmt.Sprintf("%.3f", ep.Centralization),
			ep.Diameter,
			fmt.Sprintf("%.3f", ep.MeanDistance),
			fmt.Sprintf("%.3f", ep.Efficiency),
			fmt.Sprintf("%.1f", ep.EvalsPerJoin)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// G2Churn sweeps the churn rate with periodic best-response rewiring on:
// how much departure pressure the emergent topology absorbs before
// fragmenting, and what the rewiring moves recover.
func G2Churn(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "G2",
		Title:   "Growth engine: churn sensitivity (departures + best-response rewiring)",
		Columns: []string{"churn", "seed", "departures", "rewires", "nodes", "channels", "class", "gini", "routable", "efficiency"},
		Notes: []string{
			"each row grows BA(12,2) by 238 arrivals to n=250 with per-arrival departure probability `churn`; every 25 arrivals 2 sampled nodes re-run their best response",
			"expected shape: mild churn is absorbed (routable ≈ 1); past a threshold a hub departure fragments the graph and — because d=+∞ makes every recipient-missing strategy worth −∞ (§II-C) — later joiners rationally join unconnected, collapsing growth. The model predicts its own connectivity assumption fails under heavy churn",
		},
	}
	type cell struct {
		churn float64
		seed  int
	}
	var cells []cell
	for _, churn := range []float64{0, 0.03, 0.08, 0.15} {
		for seed := 1; seed <= 2; seed++ {
			cells = append(cells, cell{churn: churn, seed: seed})
		}
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := growthBase()
		cfg.Arrivals = 238
		cfg.Candidates = 16
		cfg.ChurnRate = c.churn
		cfg.RewireEvery = 25
		cfg.RewireCount = 2
		ep, res, err := lastEpoch(cfg, ctx, i, c.seed)
		if err != nil {
			return nil, err
		}
		return []any{fmt.Sprintf("%.2f", c.churn), c.seed,
			res.Departures, res.Rewires, ep.Nodes, ep.Channels, ep.Class,
			fmt.Sprintf("%.3f", ep.DegreeGini),
			fmt.Sprintf("%.3f", ep.Routable),
			fmt.Sprintf("%.3f", ep.Efficiency)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// G3Emergent classifies the topologies that emerge at production scale:
// n=500 across seed topologies and arrival processes, plus the n=2000
// flagship run that the commit-path engineering exists for (a from-
// scratch evaluator rebuild per arrival would be ~n× slower; see
// BenchmarkGrowArrivals).
func G3Emergent(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "G3",
		Title:   "Growth engine: emergent-topology classification at n=500/2000",
		Columns: []string{"n", "seed topo", "process", "class", "gini", "central", "max deg", "diam", "mean dist", "efficiency", "evals/join"},
		Notes: []string{
			"sequential selfish arrivals over the incremental commit path; fixed-rate pricing, 16 candidates/joiner, snapshots refreshed every 64 arrivals",
			"expected shape: preferential visibility yields hub hierarchies (matching the BA motivation of §I); uniform gossip flattens the degree distribution and stretches the diameter",
		},
	}
	type cell struct {
		n      int
		seed   growth.SeedKind
		attach growth.AttachKind
	}
	cells := []cell{
		{500, growth.SeedBA, growth.AttachPreferential},
		{500, growth.SeedBA, growth.AttachUniform},
		{500, growth.SeedEmpty, growth.AttachPreferential},
		{500, growth.SeedStar, growth.AttachUniform},
		{2000, growth.SeedBA, growth.AttachPreferential},
	}
	err := addRows(t, ctx.pool, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		cfg := growthBase()
		cfg.Seed = c.seed
		switch c.seed {
		case growth.SeedEmpty:
			cfg.SeedSize = 0
		case growth.SeedStar:
			cfg.SeedSize = 12
		}
		cfg.Arrivals = c.n - cfg.SeedSize
		cfg.Attach = c.attach
		cfg.Candidates = 16
		cfg.RefreshEvery = 64
		cfg.EpochEvery = c.n // final epoch only
		ep, _, err := lastEpoch(cfg, ctx, i)
		if err != nil {
			return nil, err
		}
		return []any{c.n, string(c.seed), string(c.attach), ep.Class,
			fmt.Sprintf("%.3f", ep.DegreeGini),
			fmt.Sprintf("%.3f", ep.Centralization),
			ep.MaxDegree, ep.Diameter,
			fmt.Sprintf("%.3f", ep.MeanDistance),
			fmt.Sprintf("%.3f", ep.Efficiency),
			fmt.Sprintf("%.1f", ep.EvalsPerJoin)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
