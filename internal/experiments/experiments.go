// Package experiments regenerates every reproducible artifact of the
// paper — the two figures (F1, F2) and the theorem-backed parameter-space
// and algorithm-guarantee results (E1-E12) — plus the extension studies
// E13-E18 that follow the paper's future-work directions. See DESIGN.md for the full
// experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Every experiment is a deterministic function of its seed, so tables can
// be regenerated bit-for-bit — including under the parallel engine: a
// Runner executes experiments and their per-trial inner loops over a
// bounded worker pool (Options.Parallelism) and the output stays
// byte-identical to a serial run at any worker count. The only cells
// outside that guarantee are the wall-clock measurement columns of E5 and
// E12, which are not reproducible even serially.
package experiments

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ErrUnknown reports a request for an experiment id that does not exist.
var ErrUnknown = errors.New("experiments: unknown experiment")

// Table is the uniform output format of all experiments.
type Table struct {
	// ID is the experiment identifier (F1, E4, ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns names the columns.
	Columns []string
	// Rows holds the cells, already formatted.
	Rows [][]string
	// Notes carries shape expectations and caveats, rendered under the
	// table.
	Notes []string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as CSV (header + rows).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Spec describes one runnable experiment.
type Spec struct {
	// ID is the stable identifier.
	ID string
	// Title is a one-line description.
	Title string
	// Run generates the table. The context's seed makes the run
	// deterministic; its pool bounds the experiment's inner-loop
	// fan-out without affecting the output.
	Run func(ctx *Ctx) (*Table, error)
}

// All returns every experiment in display order.
func All() []Spec {
	return []Spec{
		{ID: "F1", Title: "Figure 1: channel payment semantics", Run: F1ChannelTrace},
		{ID: "F2", Title: "Figure 2: optimal attachment for a joining node", Run: F2JoiningExample},
		{ID: "E1", Title: "Theorem 1: submodularity audit of U", Run: E1Submodularity},
		{ID: "E2", Title: "Theorem 2: monotonicity of U' vs U", Run: E2Monotonicity},
		{ID: "E3", Title: "Theorem 3: negative-utility witnesses", Run: E3NegativeUtility},
		{ID: "E4", Title: "Theorem 4: greedy (Alg 1) vs optimum", Run: E4GreedyRatio},
		{ID: "E5", Title: "Theorem 5: discretised search (Alg 2) granularity trade-off", Run: E5DiscreteTradeoff},
		{ID: "E6", Title: "§III-D: continuous local search vs optimum", Run: E6ContinuousRatio},
		{ID: "E7", Title: "Theorem 6: hub path-length bound audit", Run: E7HubBound},
		{ID: "E8", Title: "Theorems 7-9: star Nash-equilibrium parameter map", Run: E8StarMap},
		{ID: "E9", Title: "Theorem 10: path graph instability", Run: E9PathInstability},
		{ID: "E10", Title: "Theorem 11: circle instability crossover", Run: E10CircleCrossover},
		{ID: "E11", Title: "§II-B: simulated vs analytic transit rates", Run: E11SimVsAnalytic},
		{ID: "E12", Title: "§III: algorithm trade-off summary", Run: E12Tradeoff},
		{ID: "E13", Title: "extension: best-response dynamics and emergent topologies", Run: E13Dynamics},
		{ID: "E14", Title: "extension: demand estimation from observed traffic", Run: E14Estimation},
		{ID: "E15", Title: "extension: modified Zipf vs uniform-baseline attachment", Run: E15DistributionAblation},
		{ID: "E16", Title: "extension: extended channel-cost model of [17]", Run: E16CostModel},
		{ID: "E17", Title: "extension: price of anarchy of emergent equilibria", Run: E17Anarchy},
		{ID: "E18", Title: "extension: star stability boundary l* (closed form vs exhaustive)", Run: E18StarBoundary},
		{ID: "G1", Title: "growth: arrival-process comparison (uniform vs preferential)", Run: G1Arrivals},
		{ID: "G2", Title: "growth: churn sensitivity (departures + rewiring)", Run: G2Churn},
		{ID: "G3", Title: "growth: emergent-topology classification at n=500/2000", Run: G3Emergent},
		{ID: "M1", Title: "market: batch width vs welfare and centralization", Run: M1Batch},
		{ID: "M2", Title: "market: snapshot staleness — re-price rounds vs regret", Run: M2Staleness},
		{ID: "M3", Title: "market: batch market vs sequential arrival at n=2000", Run: M3MarketVsSequential},
		{ID: "T1", Title: "traffic: throughput and failure vs offered load", Run: T1Load},
		{ID: "T2", Title: "traffic: realized vs predicted per-node revenue rates", Run: T2Revenue},
		{ID: "T3", Title: "traffic: depletion vs rebalance cadence and shard windows", Run: T3Windows},
		{ID: "T4", Title: "traffic: sparse demand samplers at n=5000/10000", Run: T4Scale},
	}
}

// Lookup resolves an experiment id (case-insensitive).
func Lookup(id string) (Spec, error) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("%w: %q", ErrUnknown, id)
}

// Run executes the experiment with the given id serially — the
// compatibility entry point; use a Runner to control parallelism.
func Run(id string, seed int64) (*Table, error) {
	spec, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return spec.Run(serialCtx(seed))
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	specs := All()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return ids
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case bool:
		if v {
			return "yes"
		}
		return "no"
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return formatFloat(v)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1e300:
		return "+Inf"
	case v < -1e300:
		return "-Inf"
	}
	s := strconv.FormatFloat(v, 'g', 5, 64)
	return s
}
