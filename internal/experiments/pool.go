package experiments

import "github.com/lightning-creation-games/lcg/internal/par"

// Pool is the bounded, determinism-preserving worker pool the experiment
// engine fans out on. The implementation lives in internal/par so that
// the engines experiments drive (internal/market's concurrent bid
// pricing) share one pool substrate; the alias keeps every experiment
// call site unchanged.
type Pool = par.Pool

// NewPool returns a pool running at most parallelism tasks at once; a
// value ≤ 0 selects runtime.GOMAXPROCS(0). A one-worker pool executes
// everything inline in index order.
func NewPool(parallelism int) *Pool { return par.NewPool(parallelism) }

// addRows runs fn over [0, n) on the pool and appends the returned rows
// to t in index order. A nil row with a nil error skips that item — the
// vacuous-trial convention shared by every experiment with skippable
// work items.
func addRows(t *Table, p *Pool, n int, fn func(i int) ([]any, error)) error {
	rows, err := collect(p, n, fn)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if row != nil {
			t.AddRow(row...)
		}
	}
	return nil
}

// collect runs fn over [0, n) on the pool and returns the results in
// index order, so the output is independent of scheduling.
func collect[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return par.Collect(p, n, fn)
}
