package experiments

import (
	"bytes"
	"testing"
)

// TestGrowthTablesParallelismSweep is the growth engine's race-safety
// regression: the G-series tables must render byte-identically at
// parallelism 1, 4 and 8 (the same contract as
// TestParallelMatchesSerialByteForByte). Run with -race it also proves
// the per-trial stream discipline holds inside the growth fan-out.
//
// G3 is excluded for runtime (its n=2000 flagship row); its trials use
// the identical SubRand-per-cell pattern exercised here, and the golden
// harness pins its serial output.
func TestGrowthTablesParallelismSweep(t *testing.T) {
	ids := []string{"G1", "G2"}
	if testing.Short() {
		ids = []string{"G1"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range []int{1, 4, 8} {
				tbl, err := NewRunner(Options{Seed: 5, Parallelism: workers}).Run(id)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatalf("render: %v", err)
				}
				if want == "" {
					want = buf.String()
					continue
				}
				if buf.String() != want {
					t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, buf.String())
				}
			}
		})
	}
}

// TestGrowthTableShapes sanity-checks the G-series structure without the
// heavy flagship run: row counts and key columns.
func TestGrowthTableShapes(t *testing.T) {
	tbl, err := NewRunner(Options{Seed: 2, Parallelism: 0}).Run("G1")
	if err != nil {
		t.Fatalf("G1: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("G1 rows = %d, want 8", len(tbl.Rows))
	}
	classCol := columnIndex(t, tbl, "class")
	for _, row := range tbl.Rows {
		if row[classCol] == "" {
			t.Fatalf("G1 row missing class: %v", row)
		}
	}
	tbl, err = NewRunner(Options{Seed: 2, Parallelism: 0}).Run("G2")
	if err != nil {
		t.Fatalf("G2: %v", err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("G2 rows = %d, want 8", len(tbl.Rows))
	}
	churnCol := columnIndex(t, tbl, "churn")
	if tbl.Rows[0][churnCol] != "0.00" {
		t.Fatalf("G2 first churn cell = %q", tbl.Rows[0][churnCol])
	}
}
