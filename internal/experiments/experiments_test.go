package experiments

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
)

func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, 1)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	return tbl
}

func columnIndex(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (columns: %v)", tbl.ID, name, tbl.Columns)
	return -1
}

func TestAllExperimentsRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			if testing.Short() && (spec.ID == "G3" || spec.ID == "T4") {
				t.Skip("n=2000+ flagship rows in -short mode")
			}
			tbl, err := spec.Run(serialCtx(2))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if tbl.ID != spec.ID {
				t.Fatalf("table ID = %q, want %q", tbl.ID, spec.ID)
			}
			if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("empty table: %d columns, %d rows", len(tbl.Columns), len(tbl.Rows))
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("error = %v, want ErrUnknown", err)
	}
}

func TestIDsSortedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs count %d ≠ specs %d", len(ids), len(All()))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	for _, id := range []string{"F2", "E1", "E4"} {
		a := runExperiment(t, id)
		b := runExperiment(t, id)
		var bufA, bufB bytes.Buffer
		if err := a.Render(&bufA); err != nil {
			t.Fatalf("Render: %v", err)
		}
		if err := b.Render(&bufB); err != nil {
			t.Fatalf("Render: %v", err)
		}
		if bufA.String() != bufB.String() {
			t.Fatalf("experiment %s not deterministic for fixed seed", id)
		}
	}
}

func TestF1MatchesFigureSemantics(t *testing.T) {
	tbl := runExperiment(t, "F1")
	// Final balances must be (0, 17); the x=6 step must be rejected.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[3] != "0" || last[4] != "17" {
		t.Fatalf("final balances = (%s,%s), want (0,17)", last[3], last[4])
	}
	rejected := tbl.Rows[2]
	if !strings.Contains(rejected[2], "rejected") {
		t.Fatalf("x=6 outcome = %q, want rejection", rejected[2])
	}
	if rejected[3] != "5" || rejected[4] != "12" {
		t.Fatal("failed payment moved balances")
	}
}

func TestF2OptimizerPicksAandD(t *testing.T) {
	tbl := runExperiment(t, "F2")
	optRow := tbl.Rows[len(tbl.Rows)-1]
	if !strings.HasPrefix(optRow[0], "optimizer:") {
		t.Fatalf("last row is not the optimizer row: %v", optRow)
	}
	if !strings.Contains(optRow[0], "A:") || !strings.Contains(optRow[0], "D:") {
		t.Fatalf("optimizer chose %q, want channels to A and D", optRow[0])
	}
	if strings.Contains(optRow[0], "B:") || strings.Contains(optRow[0], "C:") {
		t.Fatalf("optimizer chose %q, must not involve B or C", optRow[0])
	}
}

func TestE1NoFixedRateViolations(t *testing.T) {
	tbl := runExperiment(t, "E1")
	col := columnIndex(t, tbl, "violations (fixed-rate)")
	for _, row := range tbl.Rows {
		if row[col] != "0" {
			t.Fatalf("fixed-rate submodularity violations: %v", row)
		}
	}
}

func TestE2SimplifiedUtilityClean(t *testing.T) {
	tbl := runExperiment(t, "E2")
	col := columnIndex(t, tbl, "U' violations")
	for _, row := range tbl.Rows {
		if row[col] != "0" {
			t.Fatalf("U' monotonicity violations: %v", row)
		}
	}
}

func TestE3FindsWitnessesAtHighCost(t *testing.T) {
	tbl := runExperiment(t, "E3")
	colC := columnIndex(t, tbl, "C")
	colFound := columnIndex(t, tbl, "witness found")
	foundAtHighCost := false
	for _, row := range tbl.Rows {
		if row[colC] == "50" && row[colFound] == "yes" {
			foundAtHighCost = true
		}
	}
	if !foundAtHighCost {
		t.Fatal("no negative-utility witness at C=50")
	}
}

func TestE4RatiosAboveBound(t *testing.T) {
	tbl := runExperiment(t, "E4")
	col := columnIndex(t, tbl, "min ratio")
	for _, row := range tbl.Rows {
		ratio, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[col])
		}
		if ratio < 1-1/2.718281828459045+1e-9-0.0001 {
			t.Fatalf("greedy ratio %v below 1−1/e in row %v", ratio, row)
		}
	}
}

func TestE6RatiosAboveFifth(t *testing.T) {
	tbl := runExperiment(t, "E6")
	col := columnIndex(t, tbl, "≥ 1/5")
	if len(tbl.Rows) == 0 {
		t.Fatal("E6 produced no evaluable instances")
	}
	for _, row := range tbl.Rows {
		if row[col] != "yes" {
			t.Fatalf("continuous search below 1/5: %v", row)
		}
	}
}

func TestE7BoundHolds(t *testing.T) {
	tbl := runExperiment(t, "E7")
	col := columnIndex(t, tbl, "holds")
	for _, row := range tbl.Rows {
		if row[col] != "yes" {
			t.Fatalf("Theorem 6 bound violated: %v", row)
		}
	}
}

func TestE8HighAgreement(t *testing.T) {
	tbl := runExperiment(t, "E8")
	colAgree := columnIndex(t, tbl, "agree")
	agree := 0
	for _, row := range tbl.Rows {
		if row[colAgree] == "yes" {
			agree++
		}
	}
	// The closed form and the exhaustive search may diverge on boundary
	// points, but broad agreement is required.
	if frac := float64(agree) / float64(len(tbl.Rows)); frac < 0.85 {
		t.Fatalf("agreement fraction %v too low", frac)
	}
}

func TestE9AlwaysFindsDeviation(t *testing.T) {
	tbl := runExperiment(t, "E9")
	col := columnIndex(t, tbl, "deviation found")
	for _, row := range tbl.Rows {
		if row[col] != "yes" {
			t.Fatalf("path stable at %v — contradicts Theorem 10", row)
		}
	}
}

func TestE10CrossoverMonotoneInLinkCost(t *testing.T) {
	tbl := runExperiment(t, "E10")
	colS := columnIndex(t, tbl, "s")
	colL := columnIndex(t, tbl, "l")
	colN0 := columnIndex(t, tbl, "n0")
	// Within each s, n0 must not decrease as l grows.
	lastN0 := map[string]int{}
	for _, row := range tbl.Rows {
		if row[colN0] == "" {
			continue
		}
		n0, err := strconv.Atoi(row[colN0])
		if err != nil {
			t.Fatalf("bad n0 cell %q", row[colN0])
		}
		key := row[colS]
		if prev, ok := lastN0[key]; ok && n0 < prev {
			t.Fatalf("n0 decreased with l at s=%s (l=%s): %d < %d", key, row[colL], n0, prev)
		}
		lastN0[key] = n0
	}
}

func TestE11SmallRelativeError(t *testing.T) {
	tbl := runExperiment(t, "E11")
	col := columnIndex(t, tbl, "rel err")
	for _, row := range tbl.Rows {
		relErr, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad rel err cell %q", row[col])
		}
		if relErr > 0.1 {
			t.Fatalf("simulation diverges from analytic model: %v", row)
		}
	}
}

func TestE12HasAllThreeAlgorithms(t *testing.T) {
	tbl := runExperiment(t, "E12")
	if len(tbl.Rows) != 3 {
		t.Fatalf("E12 rows = %d, want 3", len(tbl.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "X",
		Title:   "test",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(true, 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"== X: test ==", "a", "bb", "1.5", "yes", "42", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "X", Columns: []string{"a", "b"}}
	tbl.AddRow("v,1", 2)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	want := "a,b\n\"v,1\",2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatCell(t *testing.T) {
	tests := []struct {
		in   any
		want string
	}{
		{in: "s", want: "s"},
		{in: true, want: "yes"},
		{in: false, want: "no"},
		{in: 7, want: "7"},
		{in: int64(8), want: "8"},
		{in: 2.5, want: "2.5"},
		{in: []int{1}, want: "[1]"},
	}
	for _, tt := range tests {
		if got := formatCell(tt.in); got != tt.want {
			t.Fatalf("formatCell(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
