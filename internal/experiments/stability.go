package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// gameConfig builds a §IV configuration with the modified Zipf scale s.
func gameConfig(s, rate, favg, hopFee, link float64) game.Config {
	return game.Config{
		Dist:       txdist.ModifiedZipf{S: s},
		SenderRate: rate,
		FAvg:       favg,
		FeePerHop:  hopFee,
		LinkCost:   link,
	}
}

// E7HubBound audits Theorem 6 on hub topologies across parameter points.
func E7HubBound(*Ctx) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 6: longest shortest path through a hub vs the closed-form bound",
		Columns: []string{"topology", "s", "link cost l", "d (measured)", "λe", "pmin", "bound", "holds"},
		Notes: []string{
			"Theorem 6: in a stable network, d ≤ 2((C+ε)/2 − λe·f)/(pmin·N·f) + 1 with C+ε = 2l",
		},
	}
	type tc struct {
		name string
		g    *graph.Graph
		s    float64
		link float64
	}
	cases := []tc{
		{name: "star(6)", g: graph.Star(6, 1), s: 2.5, link: 2},
		{name: "star(10)", g: graph.Star(10, 1), s: 2.5, link: 2},
		{name: "wheel(8)", g: graph.Wheel(8, 1), s: 2, link: 2},
		{name: "wheel(12)", g: graph.Wheel(12, 1), s: 2, link: 3},
	}
	for _, c := range cases {
		cfg := gameConfig(c.s, 1, 0.5, 0.5, c.link)
		report, err := game.AuditHubBound(c.g, cfg, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.s, c.link,
			report.PathLen,
			fmt.Sprintf("%.4g", report.LambdaE),
			fmt.Sprintf("%.4g", report.PMin),
			fmt.Sprintf("%.4g", report.Bound),
			report.Holds())
	}
	return t, nil
}

// E8StarMap sweeps (leaves, s, l) and compares the closed-form Theorem 8
// verdict with the exhaustive deviation search, mapping the parameter
// space in which the star is a Nash equilibrium (Theorems 7-9). Every
// parameter point runs its exhaustive search as one parallel work item.
func E8StarMap(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Star equilibrium map: closed-form (Thm 8) vs exhaustive search",
		Columns: []string{"leaves", "s", "l", "thm8 NE", "thm9 regime", "exhaustive NE", "agree"},
		Notes: []string{
			"closed-form is the paper's condition system; exhaustive checks every neighbor-set deviation of every node",
			"expected shape: stability rises with l and s (Theorems 7 and 9); disagreements cluster near the boundary where the proof's deviation family differs from the full deviation space",
		},
	}
	type point struct {
		leaves int
		s, l   float64
	}
	var points []point
	for _, leaves := range []int{4, 6} {
		for _, s := range []float64{0, 1, 2, 4} {
			for _, l := range []float64{0.01, 0.2, 1, 5} {
				points = append(points, point{leaves: leaves, s: s, l: l})
			}
		}
	}
	type verdict struct {
		closed, thm9, exhaustive bool
	}
	verdicts, err := collect(ctx.pool, len(points), func(i int) (verdict, error) {
		p := points[i]
		cfg := gameConfig(p.s, 1, 0.5, 0.5, p.l)
		closed := game.StarClosedFormNEConfig(p.leaves, p.s, cfg)
		thm9 := game.Theorem9Applies(p.leaves, p.s, cfg.A(), cfg.B(), cfg.LinkCost)
		report, err := game.IsNashEquilibrium(graph.Star(p.leaves, 1), cfg)
		if err != nil {
			return verdict{}, err
		}
		return verdict{closed: closed, thm9: thm9, exhaustive: report.IsEquilibrium}, nil
	})
	if err != nil {
		return nil, err
	}
	agree, total := 0, 0
	for i, v := range verdicts {
		match := v.closed == v.exhaustive
		if match {
			agree++
		}
		total++
		t.AddRow(points[i].leaves, points[i].s, points[i].l, v.closed, v.thm9, v.exhaustive, match)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("agreement: %d/%d parameter points", agree, total))
	return t, nil
}

// E9PathInstability verifies Theorem 10 across sizes and scale
// parameters: the path always admits an improving endpoint deviation.
func E9PathInstability(*Ctx) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Path graph: improving endpoint deviation (Theorem 10)",
		Columns: []string{"n", "s", "deviation found", "re-attach to", "gain"},
		Notes: []string{
			"Theorem 10: the path is never a Nash equilibrium — endpoints prefer re-attaching to interior nodes",
		},
	}
	for _, n := range []int{4, 6, 8, 10, 12} {
		for _, s := range []float64{0, 1, 2} {
			cfg := gameConfig(s, 1, 0.3, 0.4, 0.2)
			dev, found, err := game.PathUnstableWitness(n, cfg)
			if err != nil {
				return nil, err
			}
			target := ""
			if found {
				target = fmt.Sprint(dev.Neighbors)
			}
			t.AddRow(n, s, found, target, fmt.Sprintf("%.5g", dev.Gain))
		}
	}
	return t, nil
}

// E10CircleCrossover finds, per parameter point, the circle size n0 at
// which the connect-to-opposite deviation becomes profitable
// (Theorem 11). Each parameter point scans its circle sizes as one
// parallel work item.
func E10CircleCrossover(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Circle instability crossover n0 (Theorem 11)",
		Columns: []string{"s", "l", "favg", "n0", "found ≤ 64", "gain at n0"},
		Notes: []string{
			"Theorem 11: for every parameter point some n0 exists beyond which the circle is unstable; n0 grows with the link cost",
		},
	}
	type point struct {
		s, l float64
	}
	var points []point
	for _, s := range []float64{0, 0.5, 1} {
		for _, l := range []float64{0.1, 0.5, 1, 2} {
			points = append(points, point{s: s, l: l})
		}
	}
	type crossing struct {
		n0Cell, gain string
		favg         float64
		found        bool
	}
	crossings, err := collect(ctx.pool, len(points), func(i int) (crossing, error) {
		cfg := gameConfig(points[i].s, 1, 0.5, 0.5, points[i].l)
		n0, found, err := game.CircleCrossover(cfg, 4, 64)
		if err != nil {
			return crossing{}, err
		}
		c := crossing{favg: cfg.FAvg, found: found}
		if found {
			g, err := game.CircleOppositeGain(n0, cfg)
			if err != nil {
				return crossing{}, err
			}
			c.gain = fmt.Sprintf("%.5g", g)
			c.n0Cell = fmt.Sprint(n0)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range crossings {
		t.AddRow(points[i].s, points[i].l, c.favg, c.n0Cell, c.found, c.gain)
	}
	return t, nil
}
