package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// E17Anarchy measures the price of anarchy of the creation game: the
// welfare of the equilibrium that best-response dynamics reach, compared
// with the best welfare over the reference topologies of §IV. This
// connects the paper to the classic creation-game diagnostics of
// Fabrikant et al. [38] and Demaine et al. [43] that it builds on. Every
// (n, s, l) point runs its dynamics and reference sweep as one parallel
// work item.
func E17Anarchy(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Price of anarchy of emergent equilibria (extension)",
		Columns: []string{"n", "s", "l", "emergent class", "welfare (equilibrium)", "best reference", "welfare (best)", "PoA"},
		Notes: []string{
			"equilibrium: best-response dynamics from a path start; references: star, path, circle, complete on the same node set",
			"expected shape: PoA stays close to 1 in the stable-star regime — the emergent star is also the welfare-optimal reference",
		},
	}
	type point struct {
		n    int
		s, l float64
	}
	var points []point
	for _, n := range []int{5, 6, 7} {
		for _, s := range []float64{1, 2} {
			for _, l := range []float64{0.5, 1} {
				points = append(points, point{n: n, s: s, l: l})
			}
		}
	}
	err := addRows(t, ctx.pool, len(points), func(i int) ([]any, error) {
		p := points[i]
		cfg := gameConfig(p.s, 1, 0.5, 0.5, p.l)
		res, err := game.BestResponseDynamics(graph.Path(p.n, 1), cfg, game.DynamicsConfig{MaxRounds: 30})
		if err != nil {
			return nil, err
		}
		// Deterministic reference order keeps the "best reference" cell
		// stable under welfare ties.
		refs := []struct {
			name string
			g    *graph.Graph
		}{
			{"star", graph.Star(p.n-1, 1)},
			{"path", graph.Path(p.n, 1)},
			{"circle", graph.Circle(p.n, 1)},
			{"complete", graph.Complete(p.n, 1)},
		}
		bestName := ""
		bestWelfare := 0.0
		first := true
		var welfares []float64
		for _, ref := range refs {
			utils, err := game.Utilities(ref.g, cfg)
			if err != nil {
				return nil, err
			}
			w := game.SocialWelfare(utils)
			welfares = append(welfares, w)
			if first || w > bestWelfare {
				bestName = ref.name
				bestWelfare = w
				first = false
			}
		}
		poa := game.PriceOfAnarchy(res.Welfare, welfares)
		return []any{p.n, p.s, p.l,
			string(game.Classify(res.Final)),
			fmt.Sprintf("%.4g", res.Welfare),
			bestName,
			fmt.Sprintf("%.4g", bestWelfare),
			fmt.Sprintf("%.4g", poa)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
