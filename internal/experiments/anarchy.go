package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// E17Anarchy measures the price of anarchy of the creation game: the
// welfare of the equilibrium that best-response dynamics reach, compared
// with the best welfare over the reference topologies of §IV. This
// connects the paper to the classic creation-game diagnostics of
// Fabrikant et al. [38] and Demaine et al. [43] that it builds on.
func E17Anarchy(int64) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Price of anarchy of emergent equilibria (extension)",
		Columns: []string{"n", "s", "l", "emergent class", "welfare (equilibrium)", "best reference", "welfare (best)", "PoA"},
		Notes: []string{
			"equilibrium: best-response dynamics from a path start; references: star, path, circle, complete on the same node set",
			"expected shape: PoA stays close to 1 in the stable-star regime — the emergent star is also the welfare-optimal reference",
		},
	}
	for _, n := range []int{5, 6, 7} {
		for _, s := range []float64{1, 2} {
			for _, l := range []float64{0.5, 1} {
				cfg := gameConfig(s, 1, 0.5, 0.5, l)
				res, err := game.BestResponseDynamics(graph.Path(n, 1), cfg, game.DynamicsConfig{MaxRounds: 30})
				if err != nil {
					return nil, err
				}
				refs := map[string]*graph.Graph{
					"star":     graph.Star(n-1, 1),
					"path":     graph.Path(n, 1),
					"circle":   graph.Circle(n, 1),
					"complete": graph.Complete(n, 1),
				}
				bestName := ""
				bestWelfare := 0.0
				first := true
				var welfares []float64
				for name, g := range refs {
					utils, err := game.Utilities(g, cfg)
					if err != nil {
						return nil, err
					}
					w := game.SocialWelfare(utils)
					welfares = append(welfares, w)
					if first || w > bestWelfare {
						bestName = name
						bestWelfare = w
						first = false
					}
				}
				poa := game.PriceOfAnarchy(res.Welfare, welfares)
				t.AddRow(n, s, l,
					string(game.Classify(res.Final)),
					fmt.Sprintf("%.4g", res.Welfare),
					bestName,
					fmt.Sprintf("%.4g", bestWelfare),
					fmt.Sprintf("%.4g", poa))
			}
		}
	}
	return t, nil
}
