package experiments

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

// E18StarBoundary locates the critical link cost l* above which the star
// is a Nash equilibrium, by bisection, independently for the paper's
// closed-form Theorem 8 conditions and for the exhaustive deviation
// search. E8 samples a coarse grid; this experiment measures how far
// apart the two characterisations' *boundaries* actually are. Each
// (leaves, s) combination runs its two bisections — dozens of exhaustive
// equilibrium checks each — as one parallel work item.
func E18StarBoundary(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Critical link cost l* for star stability: closed form vs exhaustive",
		Columns: []string{"leaves", "s", "l* (Thm 8)", "l* (exhaustive)", "abs diff", "rel diff"},
		Notes: []string{
			"l* is the smallest link cost at which the star with the given leaves is a Nash equilibrium (bisection to 1e-4)",
			"expected shape: the two boundaries coincide up to bisection precision wherever the proof's deviation family is binding",
		},
	}
	type combo struct {
		leaves int
		s      float64
	}
	var combos []combo
	for _, leaves := range []int{4, 6, 8} {
		for _, s := range []float64{0, 1, 2} {
			combos = append(combos, combo{leaves: leaves, s: s})
		}
	}
	err := addRows(t, ctx.pool, len(combos), func(i int) ([]any, error) {
		leaves, s := combos[i].leaves, combos[i].s
		closedStar := func(l float64) (bool, error) {
			cfg := gameConfig(s, 1, 0.5, 0.5, l)
			return game.StarClosedFormNEConfig(leaves, s, cfg), nil
		}
		exhaustiveStar := func(l float64) (bool, error) {
			cfg := gameConfig(s, 1, 0.5, 0.5, l)
			report, err := game.IsNashEquilibrium(graph.Star(leaves, 1), cfg)
			if err != nil {
				return false, err
			}
			return report.IsEquilibrium, nil
		}
		lClosed, err := bisectThreshold(closedStar, 0, 8)
		if err != nil {
			return nil, err
		}
		lExhaustive, err := bisectThreshold(exhaustiveStar, 0, 8)
		if err != nil {
			return nil, err
		}
		diff := lClosed - lExhaustive
		if diff < 0 {
			diff = -diff
		}
		rel := 0.0
		if lExhaustive > 0 {
			rel = diff / lExhaustive
		}
		return []any{leaves, s,
			fmt.Sprintf("%.4f", lClosed),
			fmt.Sprintf("%.4f", lExhaustive),
			fmt.Sprintf("%.4f", diff),
			fmt.Sprintf("%.3f", rel)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// bisectThreshold finds the smallest x in [lo, hi] where stable(x) flips
// to true, assuming monotonicity (stability increases with link cost —
// cheaper deviations stop paying as channels get dearer). It returns hi
// when even hi is unstable.
func bisectThreshold(stable func(float64) (bool, error), lo, hi float64) (float64, error) {
	okHi, err := stable(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return hi, nil
	}
	okLo, err := stable(lo)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil
	}
	for hi-lo > 1e-4 {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
