// Package par provides the bounded, determinism-preserving worker pool
// shared by every parallel engine in the repository: the experiment
// runner's outer and inner fan-outs and the channel market's concurrent
// bid pricing. It lives below internal/experiments so that engines the
// experiments drive (internal/market) can fan out on the same substrate
// without an import cycle.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines used by a parallel loop.
//
// A Pool holds no long-lived goroutines: every ForEach/Collect call spins
// up at most Workers() goroutines and tears them down before returning,
// so pools may be nested (an outer experiment loop and an inner trial
// loop each bound their own fan-out) without any risk of deadlock.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most parallelism tasks at once; a
// value ≤ 0 selects runtime.GOMAXPROCS(0). A one-worker pool executes
// everything inline in index order.
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: parallelism}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n) with at most Workers()
// invocations in flight. After the first observed failure no further
// items are launched (in-flight items finish), and the error of the
// lowest failing index among the items that ran is returned. Work items
// must be independent of each other: results may only flow out through
// index-addressed slots (slices indexed by i), never through shared
// accumulators, which is what keeps every caller bit-for-bit identical
// to its serial execution.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.Workers() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, p.Workers())
	var wg sync.WaitGroup
	var failed atomic.Bool
	for i := 0; i < n && !failed.Load(); i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect runs fn over [0, n) on the pool and returns the results in
// index order, so the output is independent of scheduling.
func Collect[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachBlock partitions [0, n) into one contiguous block per worker
// (at most Workers(), never more than n) and runs fn(lo, hi) for each
// block on the pool. It is the row-sharding primitive of the substrate
// passes: callers rely on the partition being a pure function of
// (n, Workers()) so sharded writes into disjoint row ranges stay
// deterministic at any worker count.
func (p *Pool) ForEachBlock(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	block := (n + w - 1) / w
	nBlocks := (n + block - 1) / block
	if nBlocks == 1 {
		fn(0, n)
		return
	}
	err := p.ForEach(nBlocks, func(b int) error {
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
	if err != nil {
		// Unreachable: the block closures never fail.
		panic(err)
	}
}
