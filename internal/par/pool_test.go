package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersBounds(t *testing.T) {
	if w := NewPool(3).Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("all-cores pool reports %d workers", w)
	}
	if w := NewPool(-5).Workers(); w < 1 {
		t.Fatalf("negative parallelism pool reports %d workers", w)
	}
	var nilPool *Pool
	if w := nilPool.Workers(); w != 1 {
		t.Fatalf("nil pool reports %d workers, want 1", w)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 100
		counts := make([]int32, n)
		err := NewPool(workers).ForEach(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := NewPool(workers).ForEach(50, func(i int) error {
			if i == 7 || i == 31 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error = %v, want sentinel", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := NewPool(4).ForEach(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatalf("empty ForEach: %v", err)
	}
}

func TestCollectIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Collect(NewPool(workers), 64, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	if _, err := Collect(NewPool(4), 10, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel", err)
	}
}

func TestForEachSerialWhenOneWorker(t *testing.T) {
	p := NewPool(1)
	var order []int
	if err := p.ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachStopsLaunchingAfterFailure(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	const n = 64
	var executed int32
	err := p.ForEach(n, func(i int) error {
		if i == 0 {
			return boom // fails while the launcher is still gated on the semaphore
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&executed, 1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	// Item 0 fails without incrementing, so a launch-gate-less pool
	// would execute all n-1 remaining items.
	if got := atomic.LoadInt32(&executed); got >= n-1 {
		t.Fatalf("all %d remaining items ran despite early failure", got)
	}
}
