package game

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// This file implements the path and circle instability analyses of §IV-B
// (Theorems 10 and 11).

// PathUnstableWitness realises Theorem 10's argument on a concrete path
// with n nodes: an endpoint always prefers re-attaching to an interior
// node. It returns the improving deviation of endpoint 0 when one exists.
func PathUnstableWitness(n int, cfg Config) (Deviation, bool, error) {
	if n < 3 {
		return Deviation{}, false, fmt.Errorf("%w: path needs ≥ 3 nodes", ErrBadConfig)
	}
	g := graph.Path(n, 1)
	endpoint := graph.NodeID(0)
	current, err := NodeUtility(g, cfg, endpoint)
	if err != nil {
		return Deviation{}, false, err
	}
	// Theorem 10's move: replace the single channel with one to an
	// interior (non-endpoint) node.
	best := Deviation{Node: endpoint, Utility: current}
	found := false
	for v := 2; v < n-1; v++ {
		candidate, err := WithNeighborSet(g, endpoint, []graph.NodeID{graph.NodeID(v)}, 1)
		if err != nil {
			return Deviation{}, false, err
		}
		utility, err := NodeUtility(candidate, cfg, endpoint)
		if err != nil {
			return Deviation{}, false, err
		}
		if utility > best.Utility+stabilityTolerance {
			best = Deviation{
				Node:      endpoint,
				Neighbors: []graph.NodeID{graph.NodeID(v)},
				Gain:      utility - current,
				Utility:   utility,
			}
			found = true
		}
	}
	return best, found, nil
}

// CircleOppositeGain evaluates Theorem 11's deviation on the circle with
// n nodes: node 0 adds a channel to its opposite node. It returns the
// utility gain (positive when the deviation is profitable, i.e. the
// circle is not a Nash equilibrium).
func CircleOppositeGain(n int, cfg Config) (float64, error) {
	if n < 4 {
		return 0, fmt.Errorf("%w: circle needs ≥ 4 nodes", ErrBadConfig)
	}
	g := graph.Circle(n, 1)
	node := graph.NodeID(0)
	current, err := NodeUtility(g, cfg, node)
	if err != nil {
		return 0, err
	}
	opposite := graph.NodeID(n / 2)
	neighbors := append(g.Neighbors(node), opposite)
	candidate, err := WithNeighborSet(g, node, neighbors, 1)
	if err != nil {
		return 0, err
	}
	utility, err := NodeUtility(candidate, cfg, node)
	if err != nil {
		return 0, err
	}
	return utility - current, nil
}

// CircleCrossover finds the smallest circle size n in [minN, maxN] at
// which the connect-to-opposite deviation becomes profitable, witnessing
// Theorem 11's n0. It reports false when no size in the range is
// unstable.
func CircleCrossover(cfg Config, minN, maxN int) (int, bool, error) {
	if minN < 4 {
		minN = 4
	}
	for n := minN; n <= maxN; n++ {
		gain, err := CircleOppositeGain(n, cfg)
		if err != nil {
			return 0, false, err
		}
		if gain > stabilityTolerance {
			return n, true, nil
		}
	}
	return 0, false, nil
}
