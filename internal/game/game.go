// Package game implements the network-creation-game analysis of §IV: node
// utilities in an arbitrary PCN under the degree-ranked transaction
// distribution, unilateral-deviation enumeration, Nash-equilibrium
// verification, and the closed-form stability results for the star, path
// and circle topologies (Theorems 6-11).
package game

import (
	"errors"
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// ErrBadConfig reports an invalid game configuration.
var ErrBadConfig = errors.New("game: invalid config")

// Config fixes the game parameters of §IV. Per the section's assumptions,
// every node emits the same transaction rate, intermediaries earn favg per
// forwarded transaction, senders pay f^T_avg per hop, and every channel
// costs each party the same amount l.
type Config struct {
	// Dist is the transaction distribution (typically
	// txdist.ModifiedZipf with the scale parameter under study).
	Dist txdist.Distribution
	// SenderRate is N_v, identical for every node (assumptions 1-2).
	SenderRate float64
	// FAvg is favg; b := SenderRate·FAvg in the paper's shorthand.
	FAvg float64
	// FeePerHop is f^T_avg; a := SenderRate·FeePerHop.
	FeePerHop float64
	// LinkCost is l, the per-party cost of one channel (assumption 4).
	LinkCost float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dist == nil {
		return fmt.Errorf("%w: nil distribution", ErrBadConfig)
	}
	if c.SenderRate < 0 || c.FAvg < 0 || c.FeePerHop < 0 || c.LinkCost < 0 {
		return fmt.Errorf("%w: negative parameter", ErrBadConfig)
	}
	return nil
}

// A returns the paper's a := N_u·f^T_avg.
func (c Config) A() float64 { return c.SenderRate * c.FeePerHop }

// B returns the paper's b := N_v·favg.
func (c Config) B() float64 { return c.SenderRate * c.FAvg }

// Utilities returns the utility of every node of g:
//
//	U_v = E^rev_v − E^fees_v − l·deg(v)
//
// with E^rev from the transit betweenness weighted by N·p_trans (§IV
// assumption 1), E^fees from hop distances weighted by p_trans, and the
// channel-cost term counting the channels v is party to. Disconnected
// nodes (unable to reach a positive-probability recipient) get −Inf.
//
// The transaction distribution is recomputed on g itself, so degree
// changes from deviations feed back into p_trans exactly as in the
// theorem proofs.
func Utilities(g *graph.Graph, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	probs := txdist.Matrix(g, cfg.Dist)
	weight := func(s, r graph.NodeID) float64 {
		return cfg.SenderRate * probs[s][r]
	}
	transit := g.NodeBetweenness(weight)

	utils := make([]float64, n)
	for v := 0; v < n; v++ {
		revenue := cfg.FAvg * transit[v]
		fees, connected := expectedFees(g, cfg, probs, graph.NodeID(v))
		if !connected {
			utils[v] = math.Inf(-1)
			continue
		}
		// Each incident channel contributes two directed edges; the
		// per-party cost l is charged once per channel.
		channels := float64(g.OutDegree(graph.NodeID(v)))
		utils[v] = revenue - fees - cfg.LinkCost*channels
	}
	return utils, nil
}

// NodeUtility returns the utility of a single node. Unlike Utilities it
// computes only u's fee and channel-cost terms — one BFS from u instead
// of one per node — which matters in the deviation searches, where this
// is the per-probe cost. The transit betweenness is inherently an
// all-sources pass, so that part is shared with Utilities and the result
// is bit-identical to Utilities(g, cfg)[u].
func NodeUtility(g *graph.Graph, cfg Config, u graph.NodeID) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if !g.HasNode(u) {
		return 0, fmt.Errorf("%w: node %d", ErrBadConfig, u)
	}
	probs := txdist.Matrix(g, cfg.Dist)
	weight := func(s, r graph.NodeID) float64 {
		return cfg.SenderRate * probs[s][r]
	}
	transit := g.NodeBetweenness(weight)
	revenue := cfg.FAvg * transit[u]
	fees, connected := expectedFees(g, cfg, probs, u)
	if !connected {
		return math.Inf(-1), nil
	}
	channels := float64(g.OutDegree(u))
	return revenue - fees - cfg.LinkCost*channels, nil
}

// expectedFees computes E^fees_u = N_u·f^T_avg·Σ_v d(u,v)·p_trans(u,v) and
// reports false when some positive-probability recipient is unreachable.
func expectedFees(g *graph.Graph, cfg Config, probs [][]float64, u graph.NodeID) (float64, bool) {
	dist := g.BFS(u)
	var sum float64
	for v, p := range probs[u] {
		if p == 0 || graph.NodeID(v) == u {
			continue
		}
		if dist[v] == graph.Unreachable {
			return 0, false
		}
		sum += p * float64(dist[v])
	}
	return cfg.SenderRate * cfg.FeePerHop * sum, true
}

// Revenue returns only the expected-revenue component of every node, for
// experiment output.
func Revenue(g *graph.Graph, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	probs := txdist.Matrix(g, cfg.Dist)
	weight := func(s, r graph.NodeID) float64 {
		return cfg.SenderRate * probs[s][r]
	}
	transit := g.NodeBetweenness(weight)
	rev := make([]float64, len(transit))
	for i, tr := range transit {
		rev[i] = cfg.FAvg * tr
	}
	return rev, nil
}
