package game

import (
	"errors"
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// This file implements Theorem 6: in a stable network, the longest
// shortest path through a hub node has length
//
//	d ≤ 2·((C+ε)/2 − λe·f) / (pmin·N·f) + 1
//
// where C+ε is the (shared) cost of creating the bridging edge e between
// the two nodes flanking the path's midpoint, λe the minimum rate e would
// carry, f the average fee, pmin the smallest selection probability among
// the path's cross-midpoint sub-paths, and N the total transaction rate.

// ErrNoPath reports that no shortest path through the hub exists.
var ErrNoPath = errors.New("game: no path through hub")

// HubPathBound evaluates the Theorem 6 right-hand side. channelCost is
// C+ε (the full shared creation cost of the candidate edge). It returns
// +Inf when the denominator vanishes.
func HubPathBound(channelCost, lambdaE, fee, pMin, totalRate float64) float64 {
	den := pMin * totalRate * fee
	if den <= 0 {
		return math.Inf(1)
	}
	return 2*(channelCost/2-lambdaE*fee)/den + 1
}

// HubBoundReport is the outcome of auditing Theorem 6 on a concrete
// network.
type HubBoundReport struct {
	// Hub is the audited node.
	Hub graph.NodeID
	// PathLen is d: the length of the longest shortest path through Hub.
	PathLen int
	// Path is one realising path (node sequence).
	Path []graph.NodeID
	// LambdaE is the minimum of the two directed rates the candidate
	// midpoint edge would carry.
	LambdaE float64
	// PMin is the minimum cross-midpoint pair probability.
	PMin float64
	// Bound is the Theorem 6 right-hand side.
	Bound float64
}

// Holds reports whether d respects the bound.
func (r HubBoundReport) Holds() bool { return float64(r.PathLen) <= r.Bound+1e-9 }

// AuditHubBound measures the Theorem 6 quantities for the given hub: it
// finds the longest shortest path through the hub, forms the candidate
// bridging edge across the midpoint, estimates its rate from the demand
// implied by cfg, and evaluates the bound with C+ε = 2·LinkCost (the cost
// is split equally, each party paying at least (C+ε)/2 = l).
func AuditHubBound(g *graph.Graph, cfg Config, hub graph.NodeID) (HubBoundReport, error) {
	if err := cfg.Validate(); err != nil {
		return HubBoundReport{}, err
	}
	if !g.HasNode(hub) {
		return HubBoundReport{}, fmt.Errorf("%w: node %d", ErrBadConfig, hub)
	}
	path := longestShortestPathThrough(g, hub)
	if len(path) < 2 {
		return HubBoundReport{}, ErrNoPath
	}
	d := len(path) - 1
	report := HubBoundReport{Hub: hub, PathLen: d, Path: path}

	probs := txdist.Matrix(g, cfg.Dist)
	n := g.NumNodes()
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = cfg.SenderRate
	}
	demand := &traffic.Demand{P: probs, Rates: rates}

	// Candidate edge between the nodes flanking the midpoint.
	mid := d / 2
	lo, hi := mid-1, mid+1
	if lo < 0 {
		lo = 0
	}
	if hi > d {
		hi = d
	}
	vLo, vHi := path[lo], path[hi]
	if vLo != vHi && !g.HasEdgeBetween(vLo, vHi) {
		bridged := g.Clone()
		if _, _, err := bridged.AddChannel(vLo, vHi, 1, 1); err != nil {
			return HubBoundReport{}, err
		}
		edgeRates := demand.EdgeRates(bridged)
		fwd := edgeRates[bridged.EdgesBetween(vLo, vHi)[0]]
		rev := edgeRates[bridged.EdgesBetween(vHi, vLo)[0]]
		report.LambdaE = math.Min(fwd, rev)
	}

	// pmin over directed sub-paths of the path crossing the midpoint:
	// source in path[0..lo], sink in path[hi..d], both directions.
	pMin := math.Inf(1)
	for i := 0; i <= lo; i++ {
		for j := hi; j <= d; j++ {
			s, r := path[i], path[j]
			if s == r {
				continue
			}
			if p := probs[s][r]; p < pMin {
				pMin = p
			}
			if p := probs[r][s]; p < pMin {
				pMin = p
			}
		}
	}
	if math.IsInf(pMin, 1) {
		pMin = 0
	}
	report.PMin = pMin
	report.Bound = HubPathBound(2*cfg.LinkCost, report.LambdaE, cfg.FAvg, pMin, demand.TotalRate())
	return report, nil
}

// longestShortestPathThrough reconstructs one longest shortest path that
// passes through h, as a node sequence. It returns nil when no pair
// routes through h.
func longestShortestPathThrough(g *graph.Graph, h graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	fromH := g.BFS(h)
	var (
		bestLen  = -1
		bestS    = graph.InvalidNode
		bestT    = graph.InvalidNode
		bestDist []int
	)
	for s := 0; s < n; s++ {
		dist := g.BFS(graph.NodeID(s))
		if dist[h] == graph.Unreachable {
			continue
		}
		for t := 0; t < n; t++ {
			if t == s || fromH[t] == graph.Unreachable || dist[t] == graph.Unreachable {
				continue
			}
			if dist[h]+fromH[t] == dist[t] && dist[t] > bestLen {
				bestLen = dist[t]
				bestS = graph.NodeID(s)
				bestT = graph.NodeID(t)
				bestDist = dist
			}
		}
	}
	if bestLen < 1 {
		return nil
	}
	// Reconstruct s→t through h: walk greedily s→h→t along BFS layers.
	first := walkShortest(g, bestDist, bestS, h)
	distH := fromH
	second := walkShortest(g, distH, h, bestT)
	if len(second) > 0 {
		first = append(first, second[1:]...)
	}
	return first
}

// walkShortest returns one shortest path from s to t given dist = BFS(s).
func walkShortest(g *graph.Graph, dist []int, s, t graph.NodeID) []graph.NodeID {
	if dist[t] == graph.Unreachable {
		return nil
	}
	// Build backwards from t: repeatedly pick an in-neighbor one layer
	// closer to s.
	rev := make([]graph.NodeID, 0, dist[t]+1)
	rev = append(rev, t)
	cur := t
	for cur != s {
		var next graph.NodeID = graph.InvalidNode
		g.ForEachIn(cur, func(e graph.Edge) bool {
			if dist[e.From] == dist[cur]-1 {
				next = e.From
				return false
			}
			return true
		})
		if next == graph.InvalidNode {
			return nil
		}
		rev = append(rev, next)
		cur = next
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
