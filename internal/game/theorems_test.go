package game

import (
	"math"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func TestStarConditionsShape(t *testing.T) {
	conds := StarConditions(5, 2, 0.1, 0.1, 1)
	// C1 plus two families over i ∈ {2,3,4}: 1 + 2·3 = 7 conditions.
	if len(conds) != 7 {
		t.Fatalf("got %d conditions, want 7", len(conds))
	}
	for _, c := range conds {
		if c.Name == "" {
			t.Fatal("unnamed condition")
		}
		if c.String() == "" {
			t.Fatal("empty render")
		}
	}
}

func TestStarClosedFormStableRegime(t *testing.T) {
	// Theorem 9's sufficient condition must imply the Theorem 8 system.
	cases := []struct {
		leaves  int
		s       float64
		a, b, l float64
	}{
		{leaves: 4, s: 2, a: 0.5, b: 0.5, l: 1},
		{leaves: 8, s: 2.5, a: 1, b: 1, l: 1},
		{leaves: 12, s: 3, a: 0.2, b: 0.4, l: 0.5},
	}
	for _, tc := range cases {
		if !Theorem9Applies(tc.leaves, tc.s, tc.a, tc.b, tc.l) {
			t.Fatalf("case %+v should satisfy Theorem 9", tc)
		}
		if !StarClosedFormNE(tc.leaves, tc.s, tc.a, tc.b, tc.l) {
			conds := StarConditions(tc.leaves, tc.s, tc.a, tc.b, tc.l)
			for _, c := range conds {
				if !c.Holds() {
					t.Logf("violated: %s", c)
				}
			}
			t.Fatalf("Theorem 9 regime %+v fails Theorem 8 conditions", tc)
		}
	}
}

func TestStarClosedFormUnstableWhenFree(t *testing.T) {
	// l = 0 with b > 0: condition 2 must fail (adding leaf links pays).
	if StarClosedFormNE(6, 1, 0.5, 0.5, 0) {
		t.Fatal("star reported stable with zero link cost")
	}
}

func TestTheorem7Applies(t *testing.T) {
	if !Theorem7Applies(5, 40, 1e-9) {
		t.Fatal("huge s rejected")
	}
	if Theorem7Applies(5, 1, 1e-9) {
		t.Fatal("small s accepted")
	}
	if Theorem7Applies(3, 40, 1e-9) {
		t.Fatal("fewer than 4 leaves accepted")
	}
}

func TestTheorem9Boundary(t *testing.T) {
	if Theorem9Applies(5, 1.9, 0.1, 0.1, 1) {
		t.Fatal("s < 2 accepted")
	}
	// a/H > l must fail.
	if Theorem9Applies(5, 2, 10, 0.1, 1) {
		t.Fatal("large a accepted")
	}
}

func TestClosedFormAgreesWithExhaustiveInClearRegimes(t *testing.T) {
	// On clearly stable and clearly unstable parameter points, the
	// closed-form Theorem 8 verdict and the exhaustive deviation search
	// must agree (the fuzzy boundary is examined by experiment E8).
	cases := []struct {
		name       string
		leaves     int
		s          float64
		cfg        Config
		wantStable bool
	}{
		{
			name:   "expensive links stable",
			leaves: 4, s: 2.5,
			cfg:        zipfConfig(2.5, 1, 0.5, 0.5, 2),
			wantStable: true,
		},
		{
			name:   "free links unstable",
			leaves: 4, s: 0.5,
			cfg:        zipfConfig(0.5, 1, 1, 0.1, 0),
			wantStable: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			closed := StarClosedFormNEConfig(tc.leaves, tc.s, tc.cfg)
			g := graph.Star(tc.leaves, 1)
			report, err := IsNashEquilibrium(g, tc.cfg)
			if err != nil {
				t.Fatalf("IsNashEquilibrium: %v", err)
			}
			if closed != tc.wantStable || report.IsEquilibrium != tc.wantStable {
				t.Fatalf("closed=%v exhaustive=%v want=%v", closed, report.IsEquilibrium, tc.wantStable)
			}
		})
	}
}

func TestPathUnstableWitnessTheorem10(t *testing.T) {
	// Across sizes and s values, the endpoint must have an improving
	// re-attachment (Theorem 10).
	for _, n := range []int{4, 5, 6, 8} {
		for _, s := range []float64{0, 0.5, 1, 2} {
			cfg := zipfConfig(s, 1, 0.3, 0.4, 0.2)
			dev, found, err := PathUnstableWitness(n, cfg)
			if err != nil {
				t.Fatalf("PathUnstableWitness(n=%d): %v", n, err)
			}
			if !found {
				t.Fatalf("n=%d s=%v: no improving endpoint deviation", n, s)
			}
			if dev.Gain <= 0 {
				t.Fatalf("n=%d s=%v: non-positive gain %v", n, s, dev.Gain)
			}
		}
	}
}

func TestPathUnstableWitnessSmallN(t *testing.T) {
	if _, _, err := PathUnstableWitness(2, uniformConfig(1, 1, 1, 1)); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestCircleOppositeGainGrowsWithN(t *testing.T) {
	// Theorem 11: the connect-to-opposite deviation eventually pays. Its
	// gain should trend upward in n under favourable parameters.
	cfg := zipfConfig(0.5, 1, 0.5, 0.5, 0.5)
	gain8, err := CircleOppositeGain(8, cfg)
	if err != nil {
		t.Fatalf("CircleOppositeGain(8): %v", err)
	}
	gain20, err := CircleOppositeGain(20, cfg)
	if err != nil {
		t.Fatalf("CircleOppositeGain(20): %v", err)
	}
	if gain20 <= gain8 {
		t.Fatalf("gain did not grow: n=8 %v, n=20 %v", gain8, gain20)
	}
}

func TestCircleCrossoverFindsN0(t *testing.T) {
	cfg := zipfConfig(0.5, 1, 0.5, 0.5, 0.5)
	n0, found, err := CircleCrossover(cfg, 4, 64)
	if err != nil {
		t.Fatalf("CircleCrossover: %v", err)
	}
	if !found {
		t.Fatal("no crossover found up to n=64")
	}
	// The circle must be profitable to break at n0 and (weakly) stable
	// against this deviation just below it.
	gain, err := CircleOppositeGain(n0, cfg)
	if err != nil {
		t.Fatalf("CircleOppositeGain(n0): %v", err)
	}
	if gain <= 0 {
		t.Fatalf("gain at crossover %d = %v", n0, gain)
	}
	if n0 > 4 {
		prev, err := CircleOppositeGain(n0-1, cfg)
		if err != nil {
			t.Fatalf("CircleOppositeGain(n0-1): %v", err)
		}
		if prev > stabilityTolerance {
			t.Fatalf("gain already positive at %d: %v", n0-1, prev)
		}
	}
}

func TestCircleCrossoverNotFoundWhenExpensive(t *testing.T) {
	// Enormous link cost: no crossover in a small range.
	cfg := zipfConfig(1, 1, 0.1, 0.1, 1000)
	_, found, err := CircleCrossover(cfg, 4, 16)
	if err != nil {
		t.Fatalf("CircleCrossover: %v", err)
	}
	if found {
		t.Fatal("crossover found despite prohibitive link cost")
	}
}

func TestHubPathBoundFormula(t *testing.T) {
	// d ≤ 2·((C+ε)/2 − λe·f)/(pmin·N·f) + 1 with C+ε=2, λe=0.5, f=0.1,
	// pmin=0.05, N=10: 2·(1−0.05)/(0.05) + 1 = 39.
	got := HubPathBound(2, 0.5, 0.1, 0.05, 10)
	if math.Abs(got-39) > 1e-9 {
		t.Fatalf("HubPathBound = %v, want 39", got)
	}
	if !math.IsInf(HubPathBound(2, 0.5, 0.1, 0, 10), 1) {
		t.Fatal("zero pmin must give +Inf")
	}
}

func TestAuditHubBoundOnStableStar(t *testing.T) {
	// A stable star's hub: d = 2, and the bound must hold.
	const leaves = 5
	cfg := zipfConfig(2.5, 1, 0.5, 0.5, 2)
	g := graph.Star(leaves, 1)
	report, err := AuditHubBound(g, cfg, 0)
	if err != nil {
		t.Fatalf("AuditHubBound: %v", err)
	}
	if report.PathLen != 2 {
		t.Fatalf("hub path length = %d, want 2", report.PathLen)
	}
	if !report.Holds() {
		t.Fatalf("Theorem 6 bound violated on stable star: d=%d bound=%v", report.PathLen, report.Bound)
	}
}

func TestAuditHubBoundWheel(t *testing.T) {
	cfg := zipfConfig(2, 1, 0.3, 0.3, 2)
	g := graph.Wheel(8, 1)
	report, err := AuditHubBound(g, cfg, 0)
	if err != nil {
		t.Fatalf("AuditHubBound: %v", err)
	}
	if report.PathLen != 2 {
		t.Fatalf("wheel hub path length = %d, want 2", report.PathLen)
	}
	if len(report.Path) != report.PathLen+1 {
		t.Fatalf("path %v inconsistent with length %d", report.Path, report.PathLen)
	}
}

func TestAuditHubBoundErrors(t *testing.T) {
	g := graph.Star(3, 1)
	if _, err := AuditHubBound(g, uniformConfig(1, 1, 1, 1), 99); err == nil {
		t.Fatal("missing hub accepted")
	}
	// An isolated node carries no paths.
	iso := graph.New(3)
	if _, err := AuditHubBound(iso, uniformConfig(1, 1, 1, 1), 0); err == nil {
		t.Fatal("isolated hub accepted")
	}
}

func TestLongestShortestPathReconstruction(t *testing.T) {
	g := graph.Path(7, 1)
	path := longestShortestPathThrough(g, 3)
	if len(path) != 7 {
		t.Fatalf("path through middle = %v, want full path", path)
	}
	// Consecutive nodes must be adjacent.
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdgeBetween(path[i], path[i+1]) {
			t.Fatalf("path %v has non-adjacent step %d", path, i)
		}
	}
}

func TestStarConditionsWithPlainZipfDistribution(t *testing.T) {
	// The closed forms assume the modified Zipf; they should still be
	// computable (no panics, finite values) for any s ≥ 0 grid.
	for _, s := range []float64{0, 0.5, 1, 2, 4, 8} {
		for _, c := range StarConditions(6, s, 0.3, 0.7, 0.9) {
			if math.IsNaN(c.LHS) || math.IsNaN(c.RHS) {
				t.Fatalf("NaN in condition %s at s=%v", c.Name, s)
			}
		}
	}
	_ = txdist.Zipf{S: 1} // the plain distribution remains available for E8 ablations
}
