package game

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// This file implements the closed-form star-stability results of §IV-B
// (Theorems 7, 8 and 9). The paper's shorthand: a = N_u·f^T_avg,
// b = N_v·favg, l the per-party channel cost, H^s_n the generalised
// harmonic number, and n the number of leaves.

// Condition is one inequality of the Theorem 8 condition system.
type Condition struct {
	// Name identifies the inequality and its index i where applicable.
	Name string
	// LHS and RHS are the two sides; the condition requires LHS ≤ RHS.
	LHS, RHS float64
}

// Holds reports whether the inequality is satisfied (with floating-point
// slack).
func (c Condition) Holds() bool { return c.LHS <= c.RHS+1e-12 }

// String renders the condition for experiment output.
func (c Condition) String() string {
	rel := "≤"
	if !c.Holds() {
		rel = ">"
	}
	return fmt.Sprintf("%s: %.6g %s %.6g", c.Name, c.LHS, rel, c.RHS)
}

// StarConditions returns the Theorem 8 inequality system for a star with
// the given number of leaves under Zipf parameter s:
//
//	(1) a/H^s_n ≤ 2^s·l
//	(2) b·(i/2)·(H^s_{i+1}−1−1/2^s)/H^s_n + a·(H^s_{i+1}−1)/H^s_n ≤ l·i
//	(3) b·(i/2)·(H^s_n−1−1/2^s)/H^s_n + a·(H^s_{i+1}−2)/H^s_n ≤ l·(i−1)
//
// with (2) and (3) ranging over 2 ≤ i ≤ n−1. The i = n−1 instances of
// (2) and (3) are exactly the "(1) vs (2)" and "(1) vs (3)" deviations of
// the proof (connect to all other leaves, with or without keeping the
// centre link).
func StarConditions(leaves int, s, a, b, l float64) []Condition {
	hn := txdist.Harmonic(leaves, s)
	inv2s := math.Pow(2, -s)
	conds := []Condition{{
		Name: "C1 (single leaf link)",
		LHS:  a / hn,
		RHS:  math.Pow(2, s) * l,
	}}
	for i := 2; i <= leaves-1; i++ {
		hi1 := txdist.Harmonic(i+1, s)
		fi := float64(i)
		conds = append(conds, Condition{
			Name: fmt.Sprintf("C2 (add %d leaf links)", i),
			LHS:  b*(fi/2)*(hi1-1-inv2s)/hn + a*(hi1-1)/hn,
			RHS:  l * fi,
		})
		conds = append(conds, Condition{
			Name: fmt.Sprintf("C3 (replace centre, %d leaf links)", i),
			LHS:  b*(fi/2)*(hn-1-inv2s)/hn + a*(hi1-2)/hn,
			RHS:  l * (fi - 1),
		})
	}
	return conds
}

// StarClosedFormNE reports whether the Theorem 8 conditions all hold, the
// paper's sufficient condition for the star with the given number of
// leaves to be a Nash equilibrium.
func StarClosedFormNE(leaves int, s, a, b, l float64) bool {
	for _, c := range StarConditions(leaves, s, a, b, l) {
		if !c.Holds() {
			return false
		}
	}
	return true
}

// StarClosedFormNEConfig adapts StarClosedFormNE to a game Config whose
// distribution is a modified Zipf.
func StarClosedFormNEConfig(leaves int, s float64, cfg Config) bool {
	return StarClosedFormNE(leaves, s, cfg.A(), cfg.B(), cfg.LinkCost)
}

// Theorem7Applies reports the Theorem 7 regime: the star with ≥ 4 leaves
// is a Nash equilibrium whenever 1/2^s is negligible. The tolerance
// quantifies "negligible".
func Theorem7Applies(leaves int, s, tolerance float64) bool {
	return leaves >= 4 && math.Pow(2, -s) <= tolerance
}

// Theorem9Applies reports the Theorem 9 sufficient condition: s ≥ 2 with
// equal channel costs and a/H^s_n ≤ l and b/H^s_n ≤ l.
func Theorem9Applies(leaves int, s, a, b, l float64) bool {
	if s < 2 {
		return false
	}
	hn := txdist.Harmonic(leaves, s)
	return a/hn <= l+1e-12 && b/hn <= l+1e-12
}
