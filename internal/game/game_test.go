package game

import (
	"errors"
	"math"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func uniformConfig(rate, favg, hopFee, link float64) Config {
	return Config{
		Dist:       txdist.Uniform{},
		SenderRate: rate,
		FAvg:       favg,
		FeePerHop:  hopFee,
		LinkCost:   link,
	}
}

func zipfConfig(s, rate, favg, hopFee, link float64) Config {
	return Config{
		Dist:       txdist.ModifiedZipf{S: s},
		SenderRate: rate,
		FAvg:       favg,
		FeePerHop:  hopFee,
		LinkCost:   link,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil dist error = %v", err)
	}
	bad := uniformConfig(1, 1, 1, 1)
	bad.LinkCost = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative link cost error = %v", err)
	}
	if err := uniformConfig(1, 1, 1, 1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigShorthand(t *testing.T) {
	cfg := uniformConfig(2, 0.5, 0.25, 1)
	if cfg.A() != 0.5 {
		t.Fatalf("A = %v, want 0.5", cfg.A())
	}
	if cfg.B() != 1 {
		t.Fatalf("B = %v, want 1", cfg.B())
	}
}

func TestUtilitiesHandComputedStar(t *testing.T) {
	// Star with 2 leaves (path 1-0-2), uniform distribution, rate R=2,
	// favg=0.5, f^T=0.25, l=0.3.
	//
	// Centre: transit = pairs (1,2),(2,1) at rate 2·(1/2) each = 2;
	// revenue = 0.5·2 = 1. Fees = 2·0.25·(½·1+½·1) = 0.5. Cost = 2·0.3.
	// U = 1 − 0.5 − 0.6 = −0.1.
	// Leaf 1: revenue 0. Fees = 2·0.25·(½·1+½·2) = 0.75. Cost = 0.3.
	// U = −1.05.
	g := graph.Star(2, 1)
	cfg := uniformConfig(2, 0.5, 0.25, 0.3)
	utils, err := Utilities(g, cfg)
	if err != nil {
		t.Fatalf("Utilities: %v", err)
	}
	if math.Abs(utils[0]-(-0.1)) > 1e-9 {
		t.Fatalf("centre utility = %v, want -0.1", utils[0])
	}
	for _, leaf := range []int{1, 2} {
		if math.Abs(utils[leaf]-(-1.05)) > 1e-9 {
			t.Fatalf("leaf %d utility = %v, want -1.05", leaf, utils[leaf])
		}
	}
}

func TestUtilitiesDisconnected(t *testing.T) {
	g := graph.New(3)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	utils, err := Utilities(g, uniformConfig(1, 1, 1, 0.1))
	if err != nil {
		t.Fatalf("Utilities: %v", err)
	}
	for v, u := range utils {
		if !math.IsInf(u, -1) {
			t.Fatalf("node %d utility = %v, want −Inf (node 2 unreachable)", v, u)
		}
	}
}

func TestRevenueComponent(t *testing.T) {
	g := graph.Star(3, 1)
	rev, err := Revenue(g, uniformConfig(1, 0.5, 0.25, 0.3))
	if err != nil {
		t.Fatalf("Revenue: %v", err)
	}
	if rev[0] <= 0 {
		t.Fatalf("centre revenue = %v, want > 0", rev[0])
	}
	for leaf := 1; leaf <= 3; leaf++ {
		if rev[leaf] != 0 {
			t.Fatalf("leaf revenue = %v, want 0", rev[leaf])
		}
	}
}

func TestNodeUtilityErrors(t *testing.T) {
	g := graph.Star(2, 1)
	if _, err := NodeUtility(g, uniformConfig(1, 1, 1, 1), 99); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("missing node error = %v", err)
	}
	if _, err := NodeUtility(g, Config{}, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad config error = %v", err)
	}
}

func TestWithNeighborSet(t *testing.T) {
	g := graph.Star(3, 1)
	// Re-wire leaf 1 to the other two leaves, dropping the centre.
	out, err := WithNeighborSet(g, 1, []graph.NodeID{2, 3}, 1)
	if err != nil {
		t.Fatalf("WithNeighborSet: %v", err)
	}
	if out.HasEdgeBetween(1, 0) || out.HasEdgeBetween(0, 1) {
		t.Fatal("old channel to centre survived")
	}
	if !out.HasEdgeBetween(1, 2) || !out.HasEdgeBetween(3, 1) {
		t.Fatal("new channels missing")
	}
	// The original is untouched.
	if !g.HasEdgeBetween(1, 0) {
		t.Fatal("original graph mutated")
	}
	// Self-loops are skipped silently.
	out, err = WithNeighborSet(g, 1, []graph.NodeID{1, 2}, 1)
	if err != nil {
		t.Fatalf("WithNeighborSet self: %v", err)
	}
	if out.HasEdgeBetween(1, 1) {
		t.Fatal("self channel created")
	}
}

func TestWithNeighborSetParallelChannels(t *testing.T) {
	// A node with parallel channels must lose all of them.
	g := graph.New(3)
	for i := 0; i < 2; i++ {
		if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
			t.Fatalf("AddChannel: %v", err)
		}
	}
	out, err := WithNeighborSet(g, 0, []graph.NodeID{2}, 1)
	if err != nil {
		t.Fatalf("WithNeighborSet: %v", err)
	}
	if out.HasEdgeBetween(0, 1) || out.HasEdgeBetween(1, 0) {
		t.Fatal("parallel channels survived re-wiring")
	}
	if !out.HasEdgeBetween(0, 2) {
		t.Fatal("new channel missing")
	}
}

func TestBestResponseFindsObviousImprovement(t *testing.T) {
	// Free channels (l = 0) with positive fees: an endpoint of a path
	// strictly gains by connecting to everyone.
	g := graph.Path(4, 1)
	cfg := uniformConfig(1, 0.2, 0.5, 0)
	dev, err := BestResponse(g, cfg, 0)
	if err != nil {
		t.Fatalf("BestResponse: %v", err)
	}
	if dev.Gain <= 0 {
		t.Fatal("expected an improving deviation with free channels")
	}
	if len(dev.Neighbors) != 3 {
		t.Fatalf("best deviation neighbors = %v, want all three others", dev.Neighbors)
	}
}

func TestBestResponseStableWhenCostsHuge(t *testing.T) {
	// With an enormous link cost, keeping a single channel (connectivity
	// is mandatory: disconnection is −Inf) is optimal: best response for
	// a leaf keeps exactly its current channel.
	g := graph.Star(4, 1)
	cfg := zipfConfig(3, 1, 0.1, 0.1, 100)
	dev, err := BestResponse(g, cfg, 1)
	if err != nil {
		t.Fatalf("BestResponse: %v", err)
	}
	if dev.Gain > 0 {
		t.Fatalf("unexpected improving deviation %v under huge link cost", dev)
	}
}

func TestIsNashEquilibriumStarStableRegime(t *testing.T) {
	// Theorem 9 regime: s ≥ 2, a/H ≤ l, b/H ≤ l. The exhaustive checker
	// must agree that the star is stable.
	const (
		leaves = 4
		s      = 2.5
	)
	cfg := zipfConfig(s, 1, 0.5, 0.5, 1) // a = b = 0.5 ≤ l·H
	if !Theorem9Applies(leaves, s, cfg.A(), cfg.B(), cfg.LinkCost) {
		t.Fatal("test parameters should satisfy Theorem 9")
	}
	g := graph.Star(leaves, 1)
	report, err := IsNashEquilibrium(g, cfg)
	if err != nil {
		t.Fatalf("IsNashEquilibrium: %v", err)
	}
	if !report.IsEquilibrium {
		t.Fatalf("star not stable in Theorem 9 regime: witness %v", report.Witness)
	}
}

func TestIsNashEquilibriumStarUnstableWithFreeChannels(t *testing.T) {
	// With zero channel cost and real revenue available, leaves deviate
	// to capture transit.
	g := graph.Star(4, 1)
	cfg := zipfConfig(0.5, 1, 1, 0.1, 0)
	report, err := IsNashEquilibrium(g, cfg)
	if err != nil {
		t.Fatalf("IsNashEquilibrium: %v", err)
	}
	if report.IsEquilibrium {
		t.Fatal("star stable despite free channels and fee pressure")
	}
	if report.Witness == nil {
		t.Fatal("no witness returned for unstable graph")
	}
}

func TestStructuredDeviationsShape(t *testing.T) {
	g := graph.Circle(6, 1)
	devs, err := StructuredDeviations(g, 0)
	if err != nil {
		t.Fatalf("StructuredDeviations: %v", err)
	}
	if len(devs) == 0 {
		t.Fatal("no structured deviations generated")
	}
	// The farthest-node move (connect to opposite) must be present:
	// neighbors {1, 5, 3}.
	found := false
	for _, d := range devs {
		has3 := false
		for _, v := range d {
			if v == 3 {
				has3 = true
			}
		}
		if has3 && len(d) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("connect-to-opposite deviation missing")
	}
	if _, err := StructuredDeviations(g, 99); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("missing node error = %v", err)
	}
}

func TestImprovingDeviationExists(t *testing.T) {
	g := graph.Path(5, 1)
	cfg := uniformConfig(1, 0.2, 0.5, 0)
	found, dev, err := ImprovingDeviationExists(g, cfg, 0)
	if err != nil {
		t.Fatalf("ImprovingDeviationExists: %v", err)
	}
	if !found {
		t.Fatal("no improving deviation found for path endpoint with free channels")
	}
	if dev.Gain <= 0 {
		t.Fatalf("witness gain = %v", dev.Gain)
	}
}

func TestSocialWelfare(t *testing.T) {
	if got := SocialWelfare([]float64{1, 2, -0.5}); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("SocialWelfare = %v, want 2.5", got)
	}
	if got := SocialWelfare([]float64{1, math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Fatalf("SocialWelfare with −Inf = %v", got)
	}
}

// TestNodeUtilityMatchesUtilities pins the single-node fast path to the
// full table: NodeUtility must be bit-identical to Utilities[u] on every
// node, including disconnected ones.
func TestNodeUtilityMatchesUtilities(t *testing.T) {
	cfg := Config{
		Dist:       txdist.ModifiedZipf{S: 1.5},
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   1,
	}
	graphs := []*graph.Graph{
		graph.Star(5, 1),
		graph.Circle(7, 1),
		graph.Path(6, 1),
	}
	// A disconnected topology: two components.
	g2 := graph.New(6)
	for _, pair := range [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if _, _, err := g2.AddChannel(pair[0], pair[1], 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	graphs = append(graphs, g2)
	for gi, g := range graphs {
		utils, err := Utilities(g, cfg)
		if err != nil {
			t.Fatalf("graph %d: Utilities: %v", gi, err)
		}
		for v := range utils {
			got, err := NodeUtility(g, cfg, graph.NodeID(v))
			if err != nil {
				t.Fatalf("graph %d node %d: NodeUtility: %v", gi, v, err)
			}
			if got != utils[v] && !(math.IsInf(got, -1) && math.IsInf(utils[v], -1)) {
				t.Fatalf("graph %d node %d: NodeUtility %v, Utilities %v", gi, v, got, utils[v])
			}
		}
	}
}

// TestBestResponseMatchesClonePerProbe re-derives the best response via
// the historical clone-per-candidate path (WithNeighborSet + NodeUtility)
// and checks the rollback-based search returns the same deviation.
func TestBestResponseMatchesClonePerProbe(t *testing.T) {
	cfg := Config{
		Dist:       txdist.ModifiedZipf{S: 2},
		SenderRate: 1,
		FAvg:       0.5,
		FeePerHop:  0.5,
		LinkCost:   0.8,
	}
	for _, g := range []*graph.Graph{graph.Path(5, 1), graph.Circle(6, 1), graph.Star(4, 1)} {
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			fast, err := BestResponse(g, cfg, graph.NodeID(u))
			if err != nil {
				t.Fatalf("BestResponse(%d): %v", u, err)
			}
			// Reference: one full clone and all-node utility table per
			// candidate neighbor set.
			current, err := NodeUtility(g, cfg, graph.NodeID(u))
			if err != nil {
				t.Fatal(err)
			}
			var others []graph.NodeID
			for v := 0; v < n; v++ {
				if v != u {
					others = append(others, graph.NodeID(v))
				}
			}
			best := Deviation{Node: graph.NodeID(u), Utility: current, Neighbors: g.Neighbors(graph.NodeID(u))}
			for mask := 0; mask < 1<<len(others); mask++ {
				neighbors := subsetOf(others, mask)
				candidate, err := WithNeighborSet(g, graph.NodeID(u), neighbors, 1)
				if err != nil {
					t.Fatal(err)
				}
				utils, err := Utilities(candidate, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if utils[u] > best.Utility+stabilityTolerance {
					best = Deviation{Node: graph.NodeID(u), Neighbors: neighbors, Gain: utils[u] - current, Utility: utils[u]}
				}
			}
			if fast.Utility != best.Utility || fast.Gain != best.Gain {
				t.Fatalf("node %d: rollback best response (%v, gain %v) vs reference (%v, gain %v)",
					u, fast.Utility, fast.Gain, best.Utility, best.Gain)
			}
			if len(fast.Neighbors) != len(best.Neighbors) {
				t.Fatalf("node %d: neighbor sets %v vs %v", u, fast.Neighbors, best.Neighbors)
			}
			for i := range fast.Neighbors {
				if fast.Neighbors[i] != best.Neighbors[i] {
					t.Fatalf("node %d: neighbor sets %v vs %v", u, fast.Neighbors, best.Neighbors)
				}
			}
		}
	}
}
