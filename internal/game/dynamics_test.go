package game

import (
	"math"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

func TestBestResponseDynamicsConvergesToEquilibrium(t *testing.T) {
	// From a path with moderately priced links, dynamics must converge,
	// and the outcome must verify as a Nash equilibrium.
	cfg := zipfConfig(2, 1, 0.5, 0.5, 1)
	res, err := BestResponseDynamics(graph.Path(6, 1), cfg, DynamicsConfig{MaxRounds: 20})
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !res.Converged {
		t.Fatalf("dynamics did not converge: %v", res)
	}
	report, err := IsNashEquilibrium(res.Final, cfg)
	if err != nil {
		t.Fatalf("IsNashEquilibrium: %v", err)
	}
	if !report.IsEquilibrium {
		t.Fatalf("converged state is not an equilibrium: witness %v", report.Witness)
	}
}

func TestBestResponseDynamicsEmergentStar(t *testing.T) {
	// The paper's conclusion: under the realistic distribution the star
	// is the predominant topology. With s = 2 and unit link cost the
	// dynamics must reach a star from a circle start.
	cfg := zipfConfig(2, 1, 0.5, 0.5, 1)
	res, err := BestResponseDynamics(graph.Circle(6, 1), cfg, DynamicsConfig{MaxRounds: 20})
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if got := Classify(res.Final); got != ClassStar {
		t.Fatalf("emergent class = %s, want star", got)
	}
}

func TestBestResponseDynamicsInputUntouched(t *testing.T) {
	g := graph.Path(5, 1)
	channelsBefore := g.NumChannels()
	cfg := zipfConfig(1, 1, 0.5, 0.5, 0.5)
	if _, err := BestResponseDynamics(g, cfg, DynamicsConfig{MaxRounds: 5}); err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if g.NumChannels() != channelsBefore {
		t.Fatal("dynamics mutated the input graph")
	}
}

func TestBestResponseDynamicsStableStartNoMoves(t *testing.T) {
	// A star already in equilibrium: zero moves, one round.
	cfg := zipfConfig(2.5, 1, 0.5, 0.5, 1)
	res, err := BestResponseDynamics(graph.Star(4, 1), cfg, DynamicsConfig{MaxRounds: 10})
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if res.Moves != 0 || !res.Converged || res.Rounds != 1 {
		t.Fatalf("stable start produced %v", res)
	}
}

func TestBestResponseDynamicsValidation(t *testing.T) {
	if _, err := BestResponseDynamics(graph.Path(4, 1), Config{}, DynamicsConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want TopologyClass
	}{
		{name: "empty", g: graph.New(4), want: ClassEmpty},
		{name: "star", g: graph.Star(4, 1), want: ClassStar},
		{name: "path", g: graph.Path(5, 1), want: ClassPath},
		{name: "circle", g: graph.Circle(5, 1), want: ClassCircle},
		{name: "complete", g: graph.Complete(4, 1), want: ClassComplete},
		{name: "wheel-is-other", g: graph.Wheel(5, 1), want: ClassOther},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.g); got != tt.want {
				t.Fatalf("Classify = %s, want %s", got, tt.want)
			}
		})
	}
	// Disconnected: two components.
	g := graph.New(4)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(2, 3, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if got := Classify(g); got != ClassDisconnected {
		t.Fatalf("Classify = %s, want disconnected", got)
	}
	// Tree that is neither star nor path (spider with one long leg).
	tree := graph.New(5)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {3, 4}} {
		if _, _, err := tree.AddChannel(e[0], e[1], 1, 1); err != nil {
			t.Fatalf("AddChannel: %v", err)
		}
	}
	if got := Classify(tree); got != ClassTree {
		t.Fatalf("Classify = %s, want tree", got)
	}
}

func TestPriceOfAnarchy(t *testing.T) {
	if got := PriceOfAnarchy(2, []float64{4, 1}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("PoA = %v, want 2", got)
	}
	if got := PriceOfAnarchy(-1, []float64{4}); !math.IsInf(got, 1) {
		t.Fatalf("PoA with negative stable welfare = %v, want +Inf", got)
	}
	if got := PriceOfAnarchy(-1, []float64{-4}); got != 1 {
		t.Fatalf("PoA with all-negative = %v, want 1", got)
	}
	if got := PriceOfAnarchy(1, nil); !math.IsNaN(got) {
		t.Fatalf("PoA with no reference = %v, want NaN", got)
	}
}

func TestDynamicsResultString(t *testing.T) {
	res := DynamicsResult{Final: graph.Star(3, 1), Rounds: 2, Moves: 1, Converged: true, Welfare: -1}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}
