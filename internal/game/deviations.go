package game

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// A node's pure strategy in the creation game is the set of peers it keeps
// channels with; a unilateral deviation replaces that set. Costs follow
// §IV assumption 4: the deviator pays l per channel it is party to.

// Deviation describes a unilateral strategy change found by the checker.
type Deviation struct {
	// Node is the deviating node.
	Node graph.NodeID
	// Neighbors is the replacement neighbor set.
	Neighbors []graph.NodeID
	// Gain is the utility improvement over the current strategy.
	Gain float64
	// Utility is the deviator's utility after the change.
	Utility float64
}

// String renders the deviation for experiment output.
func (d Deviation) String() string {
	return fmt.Sprintf("node %d → neighbors %v (gain %.6g)", d.Node, d.Neighbors, d.Gain)
}

// WithNeighborSet returns a copy of g in which u's channels are replaced
// by one channel to each node of the set, each funded with the given
// balance per side.
func WithNeighborSet(g *graph.Graph, u graph.NodeID, neighbors []graph.NodeID, balance float64) (*graph.Graph, error) {
	if !g.HasNode(u) {
		return nil, fmt.Errorf("%w: node %d", ErrBadConfig, u)
	}
	out := g.Clone()
	for _, id := range out.OutEdges(u) {
		if err := out.RemoveEdge(id); err != nil {
			return nil, fmt.Errorf("strip out-edge %d: %w", id, err)
		}
	}
	for _, id := range out.InEdges(u) {
		if err := out.RemoveEdge(id); err != nil {
			return nil, fmt.Errorf("strip in-edge %d: %w", id, err)
		}
	}
	for _, v := range neighbors {
		if v == u {
			continue
		}
		if _, _, err := out.AddChannel(u, v, balance, balance); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// deviationProbe prepares a reusable scratch graph for unilateral
// deviations of u: one clone of g with u's channels stripped, plus a
// rollback mark. Each probe adds a candidate neighbor set, evaluates, and
// rolls the graph back — no per-candidate clone, and edge identifiers are
// reused across probes so the graph (and every identifier-indexed
// structure downstream) is bit-identical to a fresh WithNeighborSet
// clone.
type deviationProbe struct {
	scratch *graph.Graph
	u       graph.NodeID
	mark    graph.EdgeID
}

func newDeviationProbe(g *graph.Graph, u graph.NodeID) (*deviationProbe, error) {
	scratch := g.Clone()
	for _, id := range scratch.OutEdges(u) {
		if err := scratch.RemoveEdge(id); err != nil {
			return nil, fmt.Errorf("strip out-edge %d: %w", id, err)
		}
	}
	for _, id := range scratch.InEdges(u) {
		if err := scratch.RemoveEdge(id); err != nil {
			return nil, fmt.Errorf("strip in-edge %d: %w", id, err)
		}
	}
	return &deviationProbe{scratch: scratch, u: u, mark: scratch.Mark()}, nil
}

// utility evaluates u's utility when its neighbor set is replaced by the
// given nodes, each channel funded with balance per side.
func (p *deviationProbe) utility(cfg Config, neighbors []graph.NodeID, balance float64) (float64, error) {
	defer p.scratch.Rollback(p.mark)
	for _, v := range neighbors {
		if v == p.u {
			continue
		}
		if _, _, err := p.scratch.AddChannel(p.u, v, balance, balance); err != nil {
			return 0, err
		}
	}
	return NodeUtility(p.scratch, cfg, p.u)
}

// BestResponse exhaustively searches every neighbor set for u (2^(n-1)
// candidates) and returns the utility-maximising one. It is exponential
// and intended for the small topologies of §IV; callers should keep
// n ≤ ~16. Candidates are evaluated on one rollback scratch graph with a
// single-node utility computation each, rather than a full clone plus
// all-node utility table per candidate.
func BestResponse(g *graph.Graph, cfg Config, u graph.NodeID) (Deviation, error) {
	if err := cfg.Validate(); err != nil {
		return Deviation{}, err
	}
	if !g.HasNode(u) {
		return Deviation{}, fmt.Errorf("%w: node %d", ErrBadConfig, u)
	}
	current, err := NodeUtility(g, cfg, u)
	if err != nil {
		return Deviation{}, err
	}
	n := g.NumNodes()
	others := make([]graph.NodeID, 0, n-1)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) != u {
			others = append(others, graph.NodeID(v))
		}
	}
	probe, err := newDeviationProbe(g, u)
	if err != nil {
		return Deviation{}, err
	}
	best := Deviation{Node: u, Utility: current, Neighbors: currentNeighbors(g, u)}
	for mask := 0; mask < 1<<len(others); mask++ {
		neighbors := subsetOf(others, mask)
		utility, err := probe.utility(cfg, neighbors, 1)
		if err != nil {
			return Deviation{}, err
		}
		if utility > best.Utility+stabilityTolerance {
			best = Deviation{
				Node:      u,
				Neighbors: neighbors,
				Gain:      utility - current,
				Utility:   utility,
			}
		}
	}
	return best, nil
}

// stabilityTolerance absorbs floating-point noise when comparing
// deviation utilities.
const stabilityTolerance = 1e-9

// NashReport is the outcome of an equilibrium check.
type NashReport struct {
	// IsEquilibrium is true when no node has an improving deviation.
	IsEquilibrium bool
	// Witness is one improving deviation when the graph is not stable.
	Witness *Deviation
	// Checked counts evaluated deviations.
	Checked int
}

// IsNashEquilibrium verifies that no node can improve its utility by any
// unilateral change of its neighbor set (exhaustive over all 2^(n-1)
// subsets per node).
func IsNashEquilibrium(g *graph.Graph, cfg Config) (NashReport, error) {
	if err := cfg.Validate(); err != nil {
		return NashReport{}, err
	}
	report := NashReport{IsEquilibrium: true}
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		dev, err := BestResponse(g, cfg, graph.NodeID(v))
		if err != nil {
			return NashReport{}, err
		}
		report.Checked += 1 << (n - 1)
		if dev.Gain > stabilityTolerance {
			report.IsEquilibrium = false
			report.Witness = &dev
			return report, nil
		}
	}
	return report, nil
}

// ImprovingDeviationExists reports whether the given node has a strictly
// improving deviation, trying the structured family first (cheap) and
// falling back to the exhaustive search when structured moves fail and
// exhaustive is affordable.
func ImprovingDeviationExists(g *graph.Graph, cfg Config, u graph.NodeID) (bool, Deviation, error) {
	devs, err := StructuredDeviations(g, u)
	if err != nil {
		return false, Deviation{}, err
	}
	current, err := NodeUtility(g, cfg, u)
	if err != nil {
		return false, Deviation{}, err
	}
	probe, err := newDeviationProbe(g, u)
	if err != nil {
		return false, Deviation{}, err
	}
	for _, neighbors := range devs {
		utility, err := probe.utility(cfg, neighbors, 1)
		if err != nil {
			return false, Deviation{}, err
		}
		if utility > current+stabilityTolerance {
			return true, Deviation{Node: u, Neighbors: neighbors, Gain: utility - current, Utility: utility}, nil
		}
	}
	return false, Deviation{Node: u, Utility: current}, nil
}

// StructuredDeviations generates the deviation families used in the §IV
// proofs without the exponential sweep: dropping one channel, adding one
// channel, adding channels to the i highest-degree non-neighbors (with
// and without keeping existing channels), and connecting to the farthest
// node (the Theorem 11 "opposite node" move).
func StructuredDeviations(g *graph.Graph, u graph.NodeID) ([][]graph.NodeID, error) {
	if !g.HasNode(u) {
		return nil, fmt.Errorf("%w: node %d", ErrBadConfig, u)
	}
	current := currentNeighbors(g, u)
	isNeighbor := make(map[graph.NodeID]bool, len(current))
	for _, v := range current {
		isNeighbor[v] = true
	}
	var out [][]graph.NodeID
	// Drop each single channel.
	for i := range current {
		dropped := make([]graph.NodeID, 0, len(current)-1)
		dropped = append(dropped, current[:i]...)
		dropped = append(dropped, current[i+1:]...)
		out = append(out, dropped)
	}
	// Non-neighbors sorted by degree descending.
	nonNeighbors := sortedByDegree(g, u, isNeighbor)
	// Add the top-i highest-degree non-neighbors, keeping existing links.
	for i := 1; i <= len(nonNeighbors); i++ {
		added := append(append([]graph.NodeID(nil), current...), nonNeighbors[:i]...)
		out = append(out, added)
	}
	// Replace all channels with the top-i highest-degree nodes.
	allByDegree := sortedByDegree(g, u, nil)
	for i := 1; i <= len(allByDegree) && i <= len(current)+1; i++ {
		out = append(out, append([]graph.NodeID(nil), allByDegree[:i]...))
	}
	// Connect to the farthest reachable node (Theorem 11's move).
	if far := farthestNode(g, u); far != graph.InvalidNode && !isNeighbor[far] {
		out = append(out, append(append([]graph.NodeID(nil), current...), far))
	}
	return out, nil
}

func currentNeighbors(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	return g.Neighbors(u)
}

func subsetOf(items []graph.NodeID, mask int) []graph.NodeID {
	var out []graph.NodeID
	for i, v := range items {
		if mask&(1<<i) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// sortedByDegree lists nodes other than u (and not in the excluded set)
// by in-degree descending, ties by identifier.
func sortedByDegree(g *graph.Graph, u graph.NodeID, exclude map[graph.NodeID]bool) []graph.NodeID {
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if id == u || (exclude != nil && exclude[id]) {
			continue
		}
		nodes = append(nodes, id)
	}
	// Insertion sort by degree descending keeps this allocation-light.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0; j-- {
			di, dj := g.InDegree(nodes[j]), g.InDegree(nodes[j-1])
			if di > dj || (di == dj && nodes[j] < nodes[j-1]) {
				nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
			} else {
				break
			}
		}
	}
	return nodes
}

// farthestNode returns a node at maximal finite hop distance from u.
func farthestNode(g *graph.Graph, u graph.NodeID) graph.NodeID {
	dist := g.BFS(u)
	best := graph.InvalidNode
	bestDist := 0
	for v, d := range dist {
		if d != graph.Unreachable && d > bestDist {
			bestDist = d
			best = graph.NodeID(v)
		}
	}
	if bestDist <= 1 {
		return graph.InvalidNode
	}
	return best
}

// SocialWelfare sums finite node utilities; −Inf utilities make the
// welfare −Inf.
func SocialWelfare(utils []float64) float64 {
	var sum float64
	for _, u := range utils {
		if math.IsInf(u, -1) {
			return math.Inf(-1)
		}
		sum += u
	}
	return sum
}
