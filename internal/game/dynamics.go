package game

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// This file implements best-response dynamics over the creation game: an
// extension of §IV that asks which topologies actually *emerge* when
// nodes iteratively rewire. The paper notes (via Theorem 2 of [19]) that
// computing equilibria of the general game is NP-hard; the dynamics here
// use the exhaustive per-node best response and are therefore meant for
// the small networks the paper's stability section studies.

// DynamicsConfig parametrises a best-response run.
type DynamicsConfig struct {
	// MaxRounds bounds the number of full passes over the nodes; 0 means
	// 100.
	MaxRounds int
	// Balance is the per-side funding of channels created by deviating
	// nodes.
	Balance float64
}

// DynamicsResult reports a best-response-dynamics run.
type DynamicsResult struct {
	// Final is the resulting topology.
	Final *graph.Graph
	// Rounds is the number of full passes executed.
	Rounds int
	// Moves counts accepted improving deviations.
	Moves int
	// Converged reports that a full pass found no improving deviation,
	// i.e. Final is a Nash equilibrium of the deviation space.
	Converged bool
	// Welfare is the social welfare (sum of utilities) of Final.
	Welfare float64
}

// BestResponseDynamics runs rounds of sequential best responses from the
// given initial topology until no node can improve (a Nash equilibrium)
// or MaxRounds is exhausted. The input graph is not modified.
func BestResponseDynamics(g *graph.Graph, cfg Config, dyn DynamicsConfig) (DynamicsResult, error) {
	if err := cfg.Validate(); err != nil {
		return DynamicsResult{}, err
	}
	maxRounds := dyn.MaxRounds
	if maxRounds == 0 {
		maxRounds = 100
	}
	balance := dyn.Balance
	if balance <= 0 {
		balance = 1
	}
	current := g.Clone()
	result := DynamicsResult{}
	for round := 0; round < maxRounds; round++ {
		result.Rounds = round + 1
		improvedThisRound := false
		for v := 0; v < current.NumNodes(); v++ {
			dev, err := BestResponse(current, cfg, graph.NodeID(v))
			if err != nil {
				return DynamicsResult{}, err
			}
			if dev.Gain <= stabilityTolerance {
				continue
			}
			next, err := WithNeighborSet(current, graph.NodeID(v), dev.Neighbors, balance)
			if err != nil {
				return DynamicsResult{}, err
			}
			current = next
			result.Moves++
			improvedThisRound = true
		}
		if !improvedThisRound {
			result.Converged = true
			break
		}
	}
	utils, err := Utilities(current, cfg)
	if err != nil {
		return DynamicsResult{}, err
	}
	result.Final = current
	result.Welfare = SocialWelfare(utils)
	return result, nil
}

// TopologyClass coarsely classifies a topology, for reporting which
// structures best-response dynamics converge to.
type TopologyClass string

// Topology classes recognised by Classify.
const (
	ClassEmpty        TopologyClass = "empty"
	ClassDisconnected TopologyClass = "disconnected"
	ClassStar         TopologyClass = "star"
	ClassPath         TopologyClass = "path"
	ClassCircle       TopologyClass = "circle"
	ClassComplete     TopologyClass = "complete"
	ClassTree         TopologyClass = "tree"
	ClassOther        TopologyClass = "other"
)

// Classify names the structure of g (undirected channel view).
func Classify(g *graph.Graph) TopologyClass {
	n := g.NumNodes()
	channels := g.NumChannels()
	if channels == 0 {
		return ClassEmpty
	}
	if _, connected := g.Diameter(); !connected {
		return ClassDisconnected
	}
	degrees := make([]int, 0, n)
	maxDeg := 0
	ones, twos := 0, 0
	for v := 0; v < n; v++ {
		d := g.OutDegree(graph.NodeID(v))
		degrees = append(degrees, d)
		if d > maxDeg {
			maxDeg = d
		}
		switch d {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	_ = degrees
	switch {
	case channels == n*(n-1)/2:
		return ClassComplete
	case maxDeg == n-1 && ones == n-1 && channels == n-1:
		return ClassStar
	case ones == 2 && twos == n-2 && channels == n-1:
		return ClassPath
	case twos == n && channels == n:
		return ClassCircle
	case channels == n-1:
		return ClassTree
	default:
		return ClassOther
	}
}

// PriceOfAnarchy compares the welfare of a stable outcome against the
// best welfare over a set of reference topologies (the standard creation
// game diagnostic, cf. Demaine et al. [43]). It returns +Inf when the
// stable welfare is non-positive while the optimum is positive.
func PriceOfAnarchy(stableWelfare float64, referenceWelfares []float64) float64 {
	best := math.Inf(-1)
	for _, w := range referenceWelfares {
		if w > best {
			best = w
		}
	}
	if math.IsInf(best, -1) {
		return math.NaN()
	}
	if stableWelfare <= 0 {
		if best <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return best / stableWelfare
}

// String implements fmt.Stringer for DynamicsResult summaries.
func (r DynamicsResult) String() string {
	return fmt.Sprintf("rounds=%d moves=%d converged=%v class=%s welfare=%.4g",
		r.Rounds, r.Moves, r.Converged, Classify(r.Final), r.Welfare)
}
