// Package traffic2 is the production-rate traffic engine: a replay loop
// that routes millions of transactions — sampled from internal/txdist
// demand through internal/traffic generators — over a payment channel
// network, on an allocation-free routing hot path.
//
// The engine reimplements the operational semantics of internal/payment
// (shortest feasible path on the capacity-reduced subgraph of §II-B,
// two-attempt fee-laden retries, verify-then-commit HTLC atomicity,
// per-intermediary fees) on a flat channel-state machine: channels become
// arc pairs (2c, 2c+1) over dense arrays, adjacency is a static CSR built
// in the exact order payment.FromGraph opens channels, and the BFS runs
// on per-shard reusable scratch with epoch-stamped visited marks. The
// contract — enforced by the differential oracle test and the fuzz
// harness — is that every receipt (path, fees, hop amounts) is
// bit-identical to payment.Pay's.
//
// Determinism is sharded: a replay of E events over S shards splits the
// stream into S independent measurement windows, each starting from the
// deposit state (the steady state ResetBalances emulates) with a private
// SplitMix64-derived random stream. Shards are the unit of scheduling;
// workers only decide *when* a shard runs, never *what* it computes, and
// shard results merge in index order. Results are therefore bit-identical
// at any Parallelism — only Shards (a config knob, part of the run's
// identity) changes them.
package traffic2

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/par"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ErrBadConfig reports an invalid replay configuration.
var ErrBadConfig = errors.New("traffic2: invalid config")

// Config parametrises a replay run.
type Config struct {
	// Demand drives the workload: senders, recipients, rates — replayed
	// on a dense-CDF sampler plane built once and shared read-only by
	// all shards. Exactly one of Demand and Sampler must be set, with
	// one rate per node of the replayed graph.
	Demand *traffic.Demand
	// Sampler, when set instead of Demand, is the shared demand plane
	// the shards draw from — typically a sparse structure-aware sampler
	// from traffic.NewSampler, which is what scales the replay to
	// n=10k (O(n) plane memory, no per-shard matrices). The sampler's
	// Kind is part of the result's identity: different kinds consume
	// the random stream differently.
	Sampler traffic.Sampler
	// Sizes draws transaction sizes; nil sends zero-sized probes (clamped
	// to 1e-9, the simulate package's probe convention).
	Sizes traffic.SizeSampler
	// Fee is the global fee function F of §II-A; nil charges nothing.
	Fee fee.Func
	// Events is the total number of transactions to replay (required).
	Events int
	// Seed makes the run deterministic.
	Seed int64
	// Shards is the number of independent measurement windows the event
	// stream splits into. Each shard starts from the deposit state with
	// its own SplitMix64-derived stream; values ≤ 0 select 1. Shards is
	// part of the result's identity — Parallelism is not.
	Shards int
	// Parallelism bounds the worker goroutines scheduling shards; values
	// ≤ 0 select all cores. Results are bit-identical at any setting.
	Parallelism int
	// RebalanceEvery, when positive, restores every channel to its
	// deposits after that many events within a shard (the steady-state
	// emulation of §II-B). Zero disables rebalancing, exposing depletion.
	RebalanceEvery int
	// TrackTxs records every generated transaction in Result.Txs (merged
	// in shard order) — the observed-traffic feed for demand estimation.
	// Off by default: a million transactions is tens of megabytes.
	TrackTxs bool
	// RecordReceipts records a Receipt per event in Result.Receipts —
	// the differential-oracle surface. Off on the hot path.
	RecordReceipts bool

	// plane is the resolved sampler normalize selects from Demand or
	// Sampler — the one shared read-only demand plane every shard's
	// generator draws through.
	plane traffic.Sampler
}

// Receipt mirrors payment.Receipt per replayed event, plus the outcome.
type Receipt struct {
	// OK reports whether the payment routed.
	OK bool
	// Path is the node sequence sender → receiver (nil on failure).
	Path []graph.NodeID
	// Amount is what the receiver obtained.
	Amount float64
	// TotalFee is what the sender paid on top of Amount.
	TotalFee float64
	// HopAmounts[k] is the value carried by the k-th channel of the path.
	HopAmounts []float64
}

// Result aggregates a replay run.
type Result struct {
	// Events, Successes and Failures count replayed transactions.
	Events, Successes, Failures int
	// Retried counts successes that needed the second, fee-conservative
	// routing attempt (engine-only telemetry; the reference oracle cannot
	// observe payment.Pay's internal attempt loop).
	Retried int
	// Elapsed sums the simulated durations of all shard windows.
	Elapsed float64
	// Volume is the total value delivered; FeesPaid the routing fees
	// senders paid on top.
	Volume, FeesPaid float64
	// Earned[v] is the realized fee revenue of node v as an intermediary;
	// Forwarded[v] counts the payments it forwarded.
	Earned []float64
	// Forwarded counts per-node forwarded payments.
	Forwarded []int
	// DepletedArcs counts directed channel balances that ended a shard
	// window below 1% of their deposit — the §II-B depletion signal.
	DepletedArcs int
	// Txs holds every generated transaction when Config.TrackTxs is set.
	Txs []traffic.Tx
	// Receipts holds one receipt per event when Config.RecordReceipts is
	// set, in replay order (shards concatenated in index order).
	Receipts []Receipt
}

// SuccessRate returns the fraction of replayed transactions that routed.
func (r *Result) SuccessRate() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Events)
}

// RevenueRate returns node v's realized fee income per simulated time
// unit, the quantity Algorithm 1's predicted E^rev_v is compared against.
func (r *Result) RevenueRate(v graph.NodeID) float64 {
	if r.Elapsed <= 0 || int(v) >= len(r.Earned) {
		return 0
	}
	return r.Earned[int(v)] / r.Elapsed
}

// shardResult is one measurement window's contribution, merged in shard
// index order so the total is a pure function of (config, seed, shards).
type shardResult struct {
	events, successes, failures, retried int
	elapsed                              float64
	volume, feesPaid                     float64
	earned                               []float64
	forwarded                            []int
	depleted                             int
	txs                                  []traffic.Tx
	receipts                             []Receipt
}

// normalize fills config defaults in place and validates against g.
func (cfg *Config) normalize(g *graph.Graph) error {
	if cfg.Events <= 0 {
		return fmt.Errorf("%w: events %d", ErrBadConfig, cfg.Events)
	}
	if err := cfg.validateDemand(g.NumNodes()); err != nil {
		return err
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Fee == nil {
		cfg.Fee = fee.Constant{F: 0}
	}
	return nil
}

// validateDemand resolves cfg's workload plane into cfg.plane. It is the
// single demand validation both the engine (Replay) and the reference
// oracle (ReferenceReplay) go through — via the shared normalize — so
// the two planes can never drift on which configs they accept.
func (cfg *Config) validateDemand(n int) error {
	switch {
	case cfg.Sampler != nil && cfg.Demand != nil:
		return fmt.Errorf("%w: both Demand and Sampler set", ErrBadConfig)
	case cfg.Sampler != nil:
		if cfg.Sampler.Nodes() != n {
			return fmt.Errorf("%w: sampler covers %d users, graph has %d",
				ErrBadConfig, cfg.Sampler.Nodes(), n)
		}
		cfg.plane = cfg.Sampler
	case cfg.Demand != nil:
		if len(cfg.Demand.Rates) != n {
			return fmt.Errorf("%w: demand covers %d users, graph has %d",
				ErrBadConfig, len(cfg.Demand.Rates), n)
		}
		plane, err := traffic.NewCDFSampler(cfg.Demand)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		cfg.plane = plane
	default:
		return fmt.Errorf("%w: nil demand", ErrBadConfig)
	}
	if total := cfg.plane.TotalRate(); !(total > 0) {
		return fmt.Errorf("%w: total rate %v", ErrBadConfig, total)
	}
	return nil
}

// shardSeed derives shard s's private stream seed from the run seed by a
// SplitMix64 chain (the Ctx.SubSeed discipline of internal/experiments),
// so streams are independent and never depend on scheduling.
func shardSeed(seed int64, s int) int64 {
	x := splitMix64(uint64(seed) ^ (uint64(s) + 0x9E3779B97F4A7C15))
	return int64(splitMix64(x) >> 1)
}

// splitMix64 is the SplitMix64 finalizer (Steele et al., OOPSLA 2014).
func splitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// shardEvents returns shard s's event count: Events/Shards with the
// remainder spread over the leading shards.
func shardEvents(events, shards, s int) int {
	n := events / shards
	if s < events%shards {
		n++
	}
	return n
}

// Replay routes cfg.Events transactions over the channels of g and
// returns the merged measurement. Routing failures are recorded, not
// fatal. g is read-only: every shard works on a private balance plane.
func Replay(g *graph.Graph, cfg Config) (*Result, error) {
	if err := cfg.normalize(g); err != nil {
		return nil, err
	}
	net, err := newFlatNet(g)
	if err != nil {
		return nil, err
	}
	shards := make([]shardResult, cfg.Shards)
	pool := par.NewPool(cfg.Parallelism)
	err = pool.ForEach(cfg.Shards, func(s int) error {
		return runShard(net, &cfg, s, &shards[s])
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(net.n, shards, &cfg), nil
}

// runShard replays one measurement window: fresh deposits, a private
// generator stream over the shared demand plane, per-shard scratch
// reused across every event.
func runShard(net *flatNet, cfg *Config, s int, out *shardResult) error {
	gen, err := traffic.NewGeneratorFromSampler(cfg.plane, cfg.Sizes,
		rand.New(rand.NewSource(shardSeed(cfg.Seed, s))))
	if err != nil {
		return err
	}
	events := shardEvents(cfg.Events, cfg.Shards, s)
	caps := append([]float64(nil), net.deposit...)
	sc := newScratch(net.n)
	out.earned = make([]float64, net.n)
	out.forwarded = make([]int, net.n)
	if cfg.TrackTxs {
		out.txs = make([]traffic.Tx, 0, events)
	}
	if cfg.RecordReceipts {
		out.receipts = make([]Receipt, 0, events)
	}
	for i := 0; i < events; i++ {
		if cfg.RebalanceEvery > 0 && i > 0 && i%cfg.RebalanceEvery == 0 {
			copy(caps, net.deposit)
		}
		tx := gen.Next()
		if cfg.TrackTxs {
			out.txs = append(out.txs, tx)
		}
		out.events++
		amount := tx.Amount
		if amount <= 0 {
			// Zero-sized probe: still exercises routing feasibility.
			amount = 1e-9
		}
		perHop := cfg.Fee.Fee(amount)
		hops, retried := sc.pay(net, caps, int32(tx.From), int32(tx.To), amount, perHop,
			out.earned, out.forwarded)
		if hops == 0 {
			out.failures++
			if cfg.RecordReceipts {
				out.receipts = append(out.receipts, Receipt{})
			}
			continue
		}
		out.successes++
		if retried {
			out.retried++
		}
		out.volume += amount
		out.feesPaid += float64(hops-1) * perHop
		if cfg.RecordReceipts {
			out.receipts = append(out.receipts, sc.receipt(net, amount, perHop))
		}
	}
	out.elapsed = gen.Now()
	out.depleted = countDepleted(caps, net.deposit)
	return nil
}

// countDepleted counts directed balances below 1% of their deposit — the
// window-end depletion census both the engine and the oracle report.
func countDepleted(caps, deposit []float64) int {
	n := 0
	for a := range caps {
		if deposit[a] > 0 && caps[a] < 0.01*deposit[a] {
			n++
		}
	}
	return n
}

// mergeShards folds shard windows in index order. The fold is shared with
// the reference oracle so both sides agree bit-for-bit on every float.
func mergeShards(n int, shards []shardResult, cfg *Config) *Result {
	res := &Result{
		Earned:    make([]float64, n),
		Forwarded: make([]int, n),
	}
	for s := range shards {
		sh := &shards[s]
		res.Events += sh.events
		res.Successes += sh.successes
		res.Failures += sh.failures
		res.Retried += sh.retried
		res.Elapsed += sh.elapsed
		res.Volume += sh.volume
		res.FeesPaid += sh.feesPaid
		res.DepletedArcs += sh.depleted
		for v := 0; v < n; v++ {
			res.Earned[v] += sh.earned[v]
			res.Forwarded[v] += sh.forwarded[v]
		}
		if cfg.TrackTxs {
			res.Txs = append(res.Txs, sh.txs...)
		}
		if cfg.RecordReceipts {
			res.Receipts = append(res.Receipts, sh.receipts...)
		}
	}
	return res
}

// ObservedDemand estimates a demand matrix from the transactions a
// tracked replay observed (Result.Txs over Result.Elapsed) — the feedback
// that closes the loop into core.GrowSession.SetDemand/RefreshRates, so
// growth pricing can re-quote λ̂ against realized rather than assumed
// traffic.
func ObservedDemand(n int, txs []traffic.Tx, elapsed, smoothing float64) (*traffic.Demand, error) {
	return traffic.EstimateDemand(n, txs, elapsed, smoothing)
}
