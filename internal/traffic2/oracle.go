package traffic2

import (
	"errors"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ReferenceReplay replays the same sharded workload as Replay through the
// seed payment.Network — map-based topology, two-attempt Pay, live
// balance mirror — and folds the windows with the same merge the engine
// uses. It is the differential oracle the fast path is locked against:
// identical Result (bar Retried, which payment.Pay does not expose) and,
// under Config.RecordReceipts, bit-identical receipts.
//
// Windows run sequentially; Parallelism is ignored. Between windows the
// network rebalances to deposits, which is exactly the shard-start state
// the engine's private balance planes encode.
func ReferenceReplay(g *graph.Graph, cfg Config) (*Result, error) {
	if err := cfg.normalize(g); err != nil {
		return nil, err
	}
	net, err := newFlatNet(g) // deposit census for the depletion count
	if err != nil {
		return nil, err
	}
	ledger, err := chain.NewLedger(0)
	if err != nil {
		return nil, err
	}
	network, err := payment.FromGraph(ledger, cfg.Fee, g)
	if err != nil {
		return nil, err
	}
	shards := make([]shardResult, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		if err := runReferenceShard(network, net, &cfg, s, &shards[s]); err != nil {
			return nil, err
		}
	}
	return mergeShards(net.n, shards, &cfg), nil
}

// runReferenceShard replays one window through payment.Pay, accumulating
// the same per-shard aggregates — in the same floating-point order — as
// the engine's runShard.
func runReferenceShard(network *payment.Network, net *flatNet, cfg *Config, s int, out *shardResult) error {
	if err := network.ResetBalances(); err != nil {
		return err
	}
	gen, err := traffic.NewGeneratorFromSampler(cfg.plane, cfg.Sizes,
		rand.New(rand.NewSource(shardSeed(cfg.Seed, s))))
	if err != nil {
		return err
	}
	events := shardEvents(cfg.Events, cfg.Shards, s)
	out.earned = make([]float64, net.n)
	out.forwarded = make([]int, net.n)
	if cfg.TrackTxs {
		out.txs = make([]traffic.Tx, 0, events)
	}
	if cfg.RecordReceipts {
		out.receipts = make([]Receipt, 0, events)
	}
	for i := 0; i < events; i++ {
		if cfg.RebalanceEvery > 0 && i > 0 && i%cfg.RebalanceEvery == 0 {
			if err := network.ResetBalances(); err != nil {
				return err
			}
		}
		tx := gen.Next()
		if cfg.TrackTxs {
			out.txs = append(out.txs, tx)
		}
		out.events++
		amount := tx.Amount
		if amount <= 0 {
			amount = 1e-9
		}
		perHop := cfg.Fee.Fee(amount)
		receipt, err := network.Pay(tx.From, tx.To, amount)
		if err != nil {
			if !errors.Is(err, payment.ErrNoRoute) {
				return err
			}
			out.failures++
			if cfg.RecordReceipts {
				out.receipts = append(out.receipts, Receipt{})
			}
			continue
		}
		out.successes++
		out.volume += amount
		out.feesPaid += float64(len(receipt.Path)-2) * perHop
		// Credit intermediaries in path order with the same additions the
		// engine performs, so the per-shard floats agree bit-for-bit.
		for k := 1; k+1 < len(receipt.Path); k++ {
			v := receipt.Path[k]
			out.earned[v] += perHop
			out.forwarded[v]++
		}
		if cfg.RecordReceipts {
			out.receipts = append(out.receipts, Receipt{
				OK:         true,
				Path:       receipt.Path,
				Amount:     receipt.Amount,
				TotalFee:   receipt.TotalFee,
				HopAmounts: receipt.HopAmounts,
			})
		}
	}
	out.elapsed = gen.Now()
	depleted, err := referenceDepleted(network, net)
	if err != nil {
		return err
	}
	out.depleted = depleted
	return nil
}

// referenceDepleted runs the engine's window-end depletion census over
// the live network's balances. payment.FromGraph opens channel c in the
// same pairing order newFlatNet lays out arcs (2c, 2c+1), so ChannelID c
// maps onto exactly that deposit pair.
func referenceDepleted(network *payment.Network, net *flatNet) (int, error) {
	caps := make([]float64, len(net.deposit))
	for c := 0; c < net.channels(); c++ {
		balA, balB, err := network.Balances(payment.ChannelID(c))
		if err != nil {
			return 0, err
		}
		caps[2*c] = balA
		caps[2*c+1] = balB
	}
	return countDepleted(caps, net.deposit), nil
}
