package traffic2

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// oracleTopologies builds the differential corpus: every structural
// family the router must agree with payment.Pay on, including graphs
// with parallel channels and tight balances that force fee-laden retries
// and depletion failures.
func oracleTopologies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tight := graph.BarabasiAlbert(24, 2, 2.5, rng)
	parallel := graph.Circle(10, 4)
	if _, _, err := parallel.AddChannel(0, 1, 3, 3); err != nil {
		t.Fatalf("parallel channel: %v", err)
	}
	if _, _, err := parallel.AddChannel(4, 7, 2, 2); err != nil {
		t.Fatalf("chord channel: %v", err)
	}
	return map[string]*graph.Graph{
		"star":     graph.Star(12, 5),
		"circle":   graph.Circle(16, 3),
		"ba":       graph.BarabasiAlbert(32, 2, 10, rand.New(rand.NewSource(3))),
		"tight":    tight,
		"parallel": parallel,
	}
}

// diffConfig is the shared workload shape of the differential tests:
// sizes near the channel balances so depletion, retries and failures all
// occur, and receipts recorded for bitwise comparison.
func diffConfig(g *graph.Graph, seed int64, shards int) (Config, error) {
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(g.NumNodes()))
	if err != nil {
		return Config{}, err
	}
	return Config{
		Demand:         demand,
		Sizes:          fee.UniformSize{T: 3},
		Fee:            fee.Linear{Base: 0.02, Rate: 0.01},
		Events:         600,
		Seed:           seed,
		Shards:         shards,
		RebalanceEvery: 150,
		RecordReceipts: true,
		TrackTxs:       true,
	}, nil
}

// compareResults asserts bit-identical aggregates and receipts. Retried
// is engine-only telemetry and excluded (the oracle cannot observe
// payment.Pay's internal attempt loop).
func compareResults(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Events != want.Events || got.Successes != want.Successes || got.Failures != want.Failures {
		t.Fatalf("counters diverge: engine %d/%d/%d oracle %d/%d/%d",
			got.Events, got.Successes, got.Failures, want.Events, want.Successes, want.Failures)
	}
	if got.Elapsed != want.Elapsed {
		t.Fatalf("elapsed diverges: engine %v oracle %v", got.Elapsed, want.Elapsed)
	}
	if got.Volume != want.Volume || got.FeesPaid != want.FeesPaid {
		t.Fatalf("volume/fees diverge: engine %v/%v oracle %v/%v",
			got.Volume, got.FeesPaid, want.Volume, want.FeesPaid)
	}
	if got.DepletedArcs != want.DepletedArcs {
		t.Fatalf("depletion diverges: engine %d oracle %d", got.DepletedArcs, want.DepletedArcs)
	}
	if !reflect.DeepEqual(got.Earned, want.Earned) {
		t.Fatalf("earned fees diverge:\nengine %v\noracle %v", got.Earned, want.Earned)
	}
	if !reflect.DeepEqual(got.Forwarded, want.Forwarded) {
		t.Fatalf("forwarded counts diverge:\nengine %v\noracle %v", got.Forwarded, want.Forwarded)
	}
	if !reflect.DeepEqual(got.Txs, want.Txs) {
		t.Fatalf("tracked txs diverge")
	}
	if len(got.Receipts) != len(want.Receipts) {
		t.Fatalf("receipt counts diverge: engine %d oracle %d", len(got.Receipts), len(want.Receipts))
	}
	for i := range got.Receipts {
		if !reflect.DeepEqual(got.Receipts[i], want.Receipts[i]) {
			t.Fatalf("receipt %d diverges:\nengine %+v\noracle %+v", i, got.Receipts[i], want.Receipts[i])
		}
	}
}

// TestReplayMatchesReference is the differential oracle lockdown
// (run under -race in CI): across random histories on every topology
// family, the CSR engine must reproduce payment.Pay's receipts — path,
// fees, hop amounts — and every merged aggregate bit-for-bit, at one
// shard and at several.
func TestReplayMatchesReference(t *testing.T) {
	for name, g := range oracleTopologies(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			failures := 0
			for _, shards := range []int{1, 3} {
				for seed := int64(1); seed <= 3; seed++ {
					cfg, err := diffConfig(g, seed, shards)
					if err != nil {
						t.Fatalf("config: %v", err)
					}
					got, err := Replay(g, cfg)
					if err != nil {
						t.Fatalf("replay: %v", err)
					}
					want, err := ReferenceReplay(g, cfg)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
					compareResults(t, got, want)
					failures += got.Failures
				}
			}
			if name == "tight" && failures == 0 {
				t.Errorf("tight corpus routed everything; the differential is not exercising failures")
			}
		})
	}
}

// TestReplayMatchesPaymentCounters cross-checks the engine against the
// payment network's own internal accounting (EarnedFees, ForwardedCount,
// Stats) on a single-shard run, where the seed network accumulates in
// exactly the engine's order.
func TestReplayMatchesPaymentCounters(t *testing.T) {
	g := graph.BarabasiAlbert(20, 2, 6, rand.New(rand.NewSource(5)))
	demand, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(g.NumNodes()))
	if err != nil {
		t.Fatalf("demand: %v", err)
	}
	cfg := Config{
		Demand: demand,
		Sizes:  fee.FixedSize{T: 2},
		Fee:    fee.Constant{F: 0.05},
		Events: 500,
		Seed:   11,
		Shards: 1,
	}
	res, err := Replay(g, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	ledger, err := chain.NewLedger(0)
	if err != nil {
		t.Fatalf("ledger: %v", err)
	}
	network, err := payment.FromGraph(ledger, cfg.Fee, g)
	if err != nil {
		t.Fatalf("from graph: %v", err)
	}
	gen, err := traffic.NewGenerator(demand, cfg.Sizes, rand.New(rand.NewSource(shardSeed(cfg.Seed, 0))))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for i := 0; i < cfg.Events; i++ {
		tx := gen.Next()
		network.Pay(tx.From, tx.To, tx.Amount) // failures are part of the workload
	}
	successes, failures := network.Stats()
	if res.Successes != successes || res.Failures != failures {
		t.Fatalf("stats diverge: engine %d/%d payment %d/%d", res.Successes, res.Failures, successes, failures)
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if got, want := res.Earned[v], network.EarnedFees(id); got != want {
			t.Fatalf("earned[%d] diverges: engine %v payment %v", v, got, want)
		}
		if got, want := res.Forwarded[v], network.ForwardedCount(id); got != want {
			t.Fatalf("forwarded[%d] diverges: engine %d payment %d", v, got, want)
		}
		if math.IsNaN(res.Earned[v]) || math.IsInf(res.Earned[v], 0) {
			t.Fatalf("earned[%d] is not finite: %v", v, res.Earned[v])
		}
	}
}
