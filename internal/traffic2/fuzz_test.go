package traffic2

import (
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// FuzzTrafficReplayMatchesReference steers the replay configuration space
// — topology family and size, balances, fee function, size distribution,
// shard count, rebalance cadence — and requires the CSR engine and the
// payment.Pay reference to agree bit-for-bit on every aggregate and every
// receipt. The config bytes are knobs, not raw input: rejected
// combinations skip, accepted ones must match.
func FuzzTrafficReplayMatchesReference(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(8), uint8(3), uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(7), uint8(2), uint8(20), uint8(9), uint8(3), uint8(1), uint8(1), uint8(16))
	f.Add(int64(42), uint8(3), uint8(14), uint8(5), uint8(2), uint8(2), uint8(2), uint8(0))
	f.Add(int64(-9), uint8(1), uint8(5), uint8(7), uint8(4), uint8(1), uint8(2), uint8(32))
	// High topoKind bits select sparse sampler planes over the same knobs.
	f.Add(int64(11), uint8(6), uint8(12), uint8(4), uint8(2), uint8(1), uint8(0), uint8(8))
	f.Add(int64(13), uint8(10), uint8(18), uint8(6), uint8(3), uint8(2), uint8(1), uint8(0))
	f.Add(int64(17), uint8(15), uint8(9), uint8(8), uint8(1), uint8(0), uint8(2), uint8(24))
	f.Fuzz(func(t *testing.T, seed int64, topoKind, sizeRaw, eventsRaw, shardsRaw, feeRaw, sizesRaw, rebRaw uint8) {
		n := 4 + int(sizeRaw)%21 // 4..24 nodes
		balance := 2 + float64(sizeRaw%5)
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch topoKind % 4 {
		case 0:
			g = graph.Star(n, balance)
		case 1:
			g = graph.Circle(n, balance)
		case 2:
			g = graph.BarabasiAlbert(n, 2, balance, rng)
		default:
			g = graph.ConnectedErdosRenyi(n, 0.3, balance, rng, 100)
		}
		// topoKind's high bits pick the demand plane: the historical dense
		// matrix or one of the sparse sampler families, all replayed by
		// both the engine and the oracle through the same shared plane.
		var demand *traffic.Demand
		var sampler traffic.Sampler
		var err error
		switch topoKind / 4 % 4 {
		case 0:
			demand, err = traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1.2}, float64(g.NumNodes()))
		default:
			rates := make([]float64, g.NumNodes())
			for i := range rates {
				rates[i] = 1
			}
			var dist txdist.Distribution
			switch topoKind / 4 % 4 {
			case 1:
				dist = txdist.Uniform{}
			case 2:
				dist = txdist.DegreeProportional{Alpha: 1}
			default:
				dist = txdist.DistanceDecay{Decay: 0.6}
			}
			sampler, err = traffic.NewSampler(g, dist, rates)
		}
		if err != nil {
			t.Skipf("config rejected: %v", err)
		}
		var feeFn fee.Func
		switch feeRaw % 3 {
		case 0:
			feeFn = fee.Constant{F: 0.05}
		case 1:
			feeFn = fee.Linear{Base: 0.01, Rate: 0.02}
		default:
			feeFn = fee.Capped{Inner: fee.Linear{Base: 0.02, Rate: 0.05}, Cap: 0.1}
		}
		var sizes traffic.SizeSampler
		switch sizesRaw % 3 {
		case 0:
			sizes = fee.FixedSize{T: balance / 2}
		case 1:
			sizes = fee.UniformSize{T: balance * 1.2}
		default:
			sizes = nil // zero-sized probes, the simulate convention
		}
		cfg := Config{
			Demand:         demand,
			Sampler:        sampler,
			Sizes:          sizes,
			Fee:            feeFn,
			Events:         40 + int(eventsRaw)%360,
			Seed:           seed,
			Shards:         1 + int(shardsRaw)%4,
			Parallelism:    1 + int(shardsRaw)%3,
			RebalanceEvery: int(rebRaw) % 64,
			TrackTxs:       true,
			RecordReceipts: true,
		}
		got, err := Replay(g, cfg)
		if err != nil {
			t.Skipf("config rejected: %v", err)
		}
		want, err := ReferenceReplay(g, cfg)
		if err != nil {
			t.Fatalf("engine accepted a config the reference rejects: %v", err)
		}
		compareResults(t, got, want)
	})
}
