package traffic2

import "github.com/lightning-creation-games/lcg/internal/graph"

// scratch is one shard's reusable routing workspace. All slices are
// allocated once per shard and reused for every event; visited marks are
// epoch-stamped so a new BFS costs no clearing pass.
type scratch struct {
	epoch int32
	seen  []int32 // seen[v] == epoch ⇔ v visited this BFS
	via   []int32 // arc that reached v
	prev  []int32 // node that reached v
	queue []int32
	path  []int32 // arc sequence of the last routed path, sender first
}

func newScratch(n int) *scratch {
	return &scratch{
		seen: make([]int32, n),
		via:  make([]int32, n),
		prev: make([]int32, n),
		// The frontier can never exceed n nodes, so the queue is a fixed
		// n-slot ring the BFS indexes directly — no append, no growth.
		queue: make([]int32, n),
		path:  make([]int32, 0, 16),
	}
}

// pay routes amount from s to r with payment.Pay's exact semantics: a
// first attempt requiring the base amount on every hop, then — if routing
// or the fee-laden verification fails — a conservative attempt requiring
// the worst-case laden amount amount+(n−1)·perHop everywhere. On success
// it commits the balance moves into caps, credits intermediaries, and
// returns the hop count with the retry flag; on failure it returns 0 and
// caps is untouched (HTLC atomicity).
//
// When the first BFS finds no path at all, the retry is elided for
// non-negative fees: the conservative requirement is ≥ the base one, so
// its feasible arc set is a subset of the first attempt's — a BFS that
// failed at the lower requirement must fail at the higher one. This
// halves the BFS work on unroutable payments without changing a single
// outcome (the fee-laden retry still runs when the first attempt routed
// but failed hop verification).
func (sc *scratch) pay(net *flatNet, caps []float64, s, r int32, amount, perHop float64,
	earned []float64, forwarded []int) (hops int, retried bool) {
	if sc.bfs(net, caps, s, r, amount) {
		sc.buildPath(s, r)
		if sc.execute(net, caps, amount, perHop, earned, forwarded) {
			return len(sc.path), false
		}
	} else if perHop >= 0 {
		return 0, false
	}
	need := amount + float64(net.n-1)*perHop
	if !sc.bfs(net, caps, s, r, need) {
		return 0, false
	}
	sc.buildPath(s, r)
	if sc.execute(net, caps, amount, perHop, earned, forwarded) {
		return len(sc.path), true
	}
	return 0, false
}

// bfs finds one shortest s→r path over arcs with capacity ≥ need (under
// payment.Pay's 1e-12 feasibility epsilon), recording via/prev links. It
// mirrors the reference BFS exactly: FIFO order, arcs scanned in
// channel-creation order, the scan stopping the moment r is labelled.
// The hot loop runs on local slice headers over the shard's fixed
// frontier; the visited check precedes the balance load so settled nodes
// cost no float traffic.
func (sc *scratch) bfs(net *flatNet, caps []float64, s, r int32, need float64) bool {
	sc.epoch++
	epoch := sc.epoch
	seen, via, prev := sc.seen, sc.via, sc.prev
	arcs, offs, arcTo := net.arcs, net.offs, net.arcTo
	queue := sc.queue[:len(seen)]
	seen[s] = epoch
	queue[0] = s
	head, tail := 0, 1
	for head < tail {
		v := queue[head]
		head++
		for _, a := range arcs[offs[v]:offs[v+1]] {
			w := arcTo[a]
			if seen[w] == epoch {
				continue
			}
			if caps[a]+1e-12 < need {
				continue
			}
			seen[w] = epoch
			via[w] = a
			prev[w] = v
			if w == r {
				return true
			}
			queue[tail] = w
			tail++
		}
	}
	return false
}

// buildPath reconstructs the arc sequence of the last BFS into sc.path.
func (sc *scratch) buildPath(s, r int32) {
	sc.path = sc.path[:0]
	for at := r; at != s; at = sc.prev[at] {
		sc.path = append(sc.path, sc.via[at])
	}
	// Reverse in place: the walk collected arcs receiver-first.
	for i, j := 0, len(sc.path)-1; i < j; i, j = i+1, j-1 {
		sc.path[i], sc.path[j] = sc.path[j], sc.path[i]
	}
}

// execute verifies every hop of sc.path against its fee-laden carry and
// then commits all balance moves — the verify-then-commit split of
// payment.executePath. Hop k of an L-hop path carries
// amount + (L−1−k)·perHop; each intermediary keeps perHop.
func (sc *scratch) execute(net *flatNet, caps []float64, amount, perHop float64,
	earned []float64, forwarded []int) bool {
	hops := len(sc.path)
	for k, a := range sc.path {
		carry := amount + float64(hops-1-k)*perHop
		if caps[a]+1e-12 < carry {
			return false
		}
	}
	for k, a := range sc.path {
		carry := amount + float64(hops-1-k)*perHop
		caps[a] -= carry
		// Mirror payment's channelState.move: the feasibility epsilon can
		// leave the debited side negative by a hair; clamp it to zero so
		// both planes stay bit-identical.
		if caps[a] < 0 && caps[a] > -1e-9 {
			caps[a] = 0
		}
		caps[a^1] += carry
		if k > 0 {
			from := net.arcFrom[a]
			earned[from] += perHop
			forwarded[from]++
		}
	}
	return true
}

// receipt materialises the last committed path as a payment.Pay-shaped
// receipt — differential-oracle surface only, never on the hot path.
func (sc *scratch) receipt(net *flatNet, amount, perHop float64) Receipt {
	hops := len(sc.path)
	path := make([]graph.NodeID, 0, hops+1)
	hopAmounts := make([]float64, hops)
	for k, a := range sc.path {
		path = append(path, graph.NodeID(net.arcFrom[a]))
		hopAmounts[k] = amount + float64(hops-1-k)*perHop
	}
	path = append(path, graph.NodeID(net.arcTo[sc.path[hops-1]]))
	return Receipt{
		OK:         true,
		Path:       path,
		Amount:     amount,
		TotalFee:   float64(hops-1) * perHop,
		HopAmounts: hopAmounts,
	}
}
