package traffic2

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// flatNet is the immutable topology half of the engine's channel-state
// machine: channel c becomes the arc pair (2c, 2c+1) — forward then
// reverse, so an arc's partner is always arc^1 — over dense arrays, and
// adjacency is a static CSR whose per-node arc order reproduces the
// out-edge order payment.FromGraph's OpenChannel sequence creates. That
// ordering is what makes the engine's BFS visit nodes in exactly
// payment.Pay's order and hence return bit-identical paths.
//
// The mutable half — the per-arc balance plane — lives outside, one
// []float64 per shard, so windows deplete independently and the topology
// is shared read-only across workers.
type flatNet struct {
	n int
	// arcFrom/arcTo are the endpoints of each directed arc; deposit is
	// its initial (and post-rebalance) spendable balance.
	arcFrom []int32
	arcTo   []int32
	deposit []float64
	// offs/arcs are the CSR out-adjacency: node v's arcs are
	// arcs[offs[v]:offs[v+1]], in channel-creation order.
	offs []int32
	arcs []int32
}

// newFlatNet pairs g's directed edges into channels with the same greedy
// algorithm payment.FromGraph uses (first unpaired reverse partner in
// ForEachEdge order) and lays them out flat. Unpaired directed edges are
// rejected, matching FromGraph.
func newFlatNet(g *graph.Graph) (*flatNet, error) {
	pairs, unpaired := g.ChannelPairs()
	if len(unpaired) > 0 {
		e := unpaired[0]
		return nil, fmt.Errorf("%w: unpaired directed edge (%d,%d)", ErrBadConfig, e.From, e.To)
	}
	n := g.NumNodes()
	net := &flatNet{
		n:       n,
		arcFrom: make([]int32, 0, 2*len(pairs)),
		arcTo:   make([]int32, 0, 2*len(pairs)),
		deposit: make([]float64, 0, 2*len(pairs)),
	}
	deg := make([]int32, n)
	for _, pair := range pairs {
		ab, ba := pair[0], pair[1]
		net.arcFrom = append(net.arcFrom, int32(ab.From), int32(ba.From))
		net.arcTo = append(net.arcTo, int32(ab.To), int32(ba.To))
		net.deposit = append(net.deposit, ab.Capacity, ba.Capacity)
		deg[ab.From]++
		deg[ba.From]++
	}
	net.offs = make([]int32, n+1)
	for v := 0; v < n; v++ {
		net.offs[v+1] = net.offs[v] + deg[v]
	}
	net.arcs = make([]int32, 2*len(pairs))
	fill := append([]int32(nil), net.offs[:n]...)
	for a := range net.arcFrom {
		v := net.arcFrom[a]
		net.arcs[fill[v]] = int32(a)
		fill[v]++
	}
	return net, nil
}

// channels reports the channel count (arcs/2).
func (net *flatNet) channels() int { return len(net.arcFrom) / 2 }
