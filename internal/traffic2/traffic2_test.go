package traffic2

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func testDemand(t *testing.T, g *graph.Graph) *traffic.Demand {
	t.Helper()
	d, err := traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: 1}, float64(g.NumNodes()))
	if err != nil {
		t.Fatalf("demand: %v", err)
	}
	return d
}

func TestReplayRejectsBadConfig(t *testing.T) {
	g := graph.Circle(6, 5)
	demand := testDemand(t, g)
	small := graph.Circle(4, 5)
	cases := map[string]Config{
		"no events":       {Demand: demand},
		"negative events": {Demand: demand, Events: -3},
		"nil demand":      {Events: 100},
		"size mismatch":   {Demand: testDemand(t, small), Events: 100},
	}
	for name, cfg := range cases {
		if _, err := Replay(g, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: got %v, want ErrBadConfig", name, err)
		}
		if _, err := ReferenceReplay(g, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s (reference): got %v, want ErrBadConfig", name, err)
		}
	}
	// Unpaired directed edges are rejected like payment.FromGraph does.
	lop := graph.New(2)
	if _, err := lop.AddEdge(0, 1, 5); err != nil {
		t.Fatalf("add edge: %v", err)
	}
	lopDemand := &traffic.Demand{P: [][]float64{{0, 1}, {1, 0}}, Rates: []float64{1, 1}}
	if _, err := Replay(lop, Config{Demand: lopDemand, Events: 10}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unpaired edge: got %v, want ErrBadConfig", err)
	}
}

// TestReplayParallelismInvariance is the determinism contract: with the
// shard count fixed, every worker setting must produce bit-identical
// results — aggregates, per-node floats, tracked transactions, receipts.
func TestReplayParallelismInvariance(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 4, rand.New(rand.NewSource(2)))
	base := Config{
		Demand:         testDemand(t, g),
		Sizes:          fee.UniformSize{T: 3},
		Fee:            fee.Linear{Base: 0.01, Rate: 0.02},
		Events:         2000,
		Seed:           9,
		Shards:         8,
		RebalanceEvery: 100,
		TrackTxs:       true,
		RecordReceipts: true,
	}
	var want *Result
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Parallelism = workers
		res, err := Replay(g, cfg)
		if err != nil {
			t.Fatalf("replay at %d workers: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("results diverge between 1 and %d workers", workers)
		}
	}
	if want.Successes == 0 || want.Failures == 0 {
		t.Fatalf("workload is not exercising both outcomes: %d/%d", want.Successes, want.Failures)
	}
}

// TestReplayShardWindows pins the shard semantics: shards are independent
// deposit-state windows, so a heavily depleted 1-shard run must route
// strictly fewer payments than the same events split over 8 windows.
func TestReplayShardWindows(t *testing.T) {
	g := graph.BarabasiAlbert(30, 2, 3, rand.New(rand.NewSource(4)))
	base := Config{
		Demand: testDemand(t, g),
		Sizes:  fee.FixedSize{T: 1.5},
		Fee:    fee.Constant{F: 0.01},
		Events: 4000,
		Seed:   3,
	}
	one := base
	one.Shards = 1
	eight := base
	eight.Shards = 8
	resOne, err := Replay(g, one)
	if err != nil {
		t.Fatalf("1 shard: %v", err)
	}
	resEight, err := Replay(g, eight)
	if err != nil {
		t.Fatalf("8 shards: %v", err)
	}
	if resOne.Events != resEight.Events {
		t.Fatalf("event totals diverge: %d vs %d", resOne.Events, resEight.Events)
	}
	if resOne.Successes >= resEight.Successes {
		t.Errorf("depleted single window routed %d ≥ %d of the 8-window run; shard reset is not happening",
			resOne.Successes, resEight.Successes)
	}
}

// TestReplayRetrySemantics crafts the two-attempt scenario: the shortest
// path is feasible for the base amount but not the fee-laden carry, so
// the conservative second attempt must route around it.
func TestReplayRetrySemantics(t *testing.T) {
	g := graph.New(4)
	mustChannel := func(a, b graph.NodeID, balA, balB float64) {
		t.Helper()
		if _, _, err := g.AddChannel(a, b, balA, balB); err != nil {
			t.Fatalf("channel (%d,%d): %v", a, b, err)
		}
	}
	mustChannel(0, 1, 1.05, 10) // short route 0→1→2: first hop cannot carry 1+fee
	mustChannel(1, 2, 10, 10)
	mustChannel(0, 3, 10, 10) // detour 0→3→2 has headroom
	mustChannel(3, 2, 10, 10)
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 1, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}},
		Rates: []float64{1, 0, 0, 0},
	}
	cfg := Config{
		Demand:         demand,
		Sizes:          fee.FixedSize{T: 1},
		Fee:            fee.Constant{F: 0.1},
		Events:         1,
		Seed:           1,
		RecordReceipts: true,
	}
	res, err := Replay(g, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Successes != 1 || res.Retried != 1 {
		t.Fatalf("want 1 success via retry, got successes=%d retried=%d", res.Successes, res.Retried)
	}
	wantPath := []graph.NodeID{0, 3, 2}
	if !reflect.DeepEqual(res.Receipts[0].Path, wantPath) {
		t.Fatalf("retry path %v, want %v", res.Receipts[0].Path, wantPath)
	}
	ref, err := ReferenceReplay(g, cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	compareResults(t, res, ref)
}

// TestReplayDepletion drives one channel dry in a single window and
// checks the failure accounting and the depletion census.
func TestReplayDepletion(t *testing.T) {
	g := graph.New(2)
	if _, _, err := g.AddChannel(0, 1, 3, 1); err != nil {
		t.Fatalf("channel: %v", err)
	}
	demand := &traffic.Demand{
		P:     [][]float64{{0, 1}, {0, 0}},
		Rates: []float64{1, 0},
	}
	cfg := Config{
		Demand: demand,
		Sizes:  fee.FixedSize{T: 1},
		Events: 5,
		Seed:   1,
	}
	res, err := Replay(g, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Successes != 3 || res.Failures != 2 {
		t.Fatalf("want 3 successes / 2 failures, got %d/%d", res.Successes, res.Failures)
	}
	if res.DepletedArcs != 1 {
		t.Fatalf("want 1 depleted arc (the 0→1 balance), got %d", res.DepletedArcs)
	}
	if res.Volume != 3 {
		t.Fatalf("volume %v, want 3", res.Volume)
	}
}

// TestReplayDisconnectedFinite is the Inf16 regression guard of the
// distance substrate wiring: replaying over a disconnected graph whose
// uint16 all-pairs plane holds Inf16 sentinels must yield plain failure
// counts and finite fee math — the sentinel may never leak into revenue.
func TestReplayDisconnectedFinite(t *testing.T) {
	g := graph.New(8)
	for v := graph.NodeID(1); v < 4; v++ {
		if _, _, err := g.AddChannel(0, v, 5, 5); err != nil {
			t.Fatalf("channel: %v", err)
		}
	}
	for v := graph.NodeID(5); v < 8; v++ {
		if _, _, err := g.AddChannel(4, v, 5, 5); err != nil {
			t.Fatalf("channel: %v", err)
		}
	}
	ap := g.AllPairsBFS() // materialise the uint16 plane, sentinels included
	sawInf := false
	for s := 0; s < g.NumNodes(); s++ {
		for r := 0; r < g.NumNodes(); r++ {
			if ap.Dist[s*ap.Stride+r] == graph.Inf16 {
				sawInf = true
			}
		}
	}
	if !sawInf {
		t.Fatalf("test graph is connected; Inf16 sentinels not exercised")
	}
	demand := testDemand(t, g)
	res, err := Replay(g, Config{
		Demand: demand,
		Sizes:  fee.FixedSize{T: 1},
		Fee:    fee.Constant{F: 0.05},
		Events: 400,
		Seed:   2,
		Shards: 2,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Failures == 0 {
		t.Fatalf("cross-component payments cannot route; expected failures")
	}
	for v, e := range res.Earned {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("earned[%d] = %v leaked a sentinel into fee math", v, e)
		}
	}
	for _, rate := range demand.NodeTransitRates(g) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			t.Fatalf("predicted transit rate %v is not finite on a disconnected graph", rate)
		}
	}
}

// TestObservedDemandFeedsGrowSession closes the loop the tentpole asks
// for: replay with tracked transactions, estimate observed demand, and
// refresh a GrowSession's λ̂ quotes from it.
func TestObservedDemandFeedsGrowSession(t *testing.T) {
	g := graph.BarabasiAlbert(48, 2, 5, rand.New(rand.NewSource(6)))
	res, err := Replay(g, Config{
		Demand:         testDemand(t, g),
		Sizes:          fee.FixedSize{T: 1},
		Fee:            fee.Constant{F: 0.02},
		Events:         6000,
		Seed:           4,
		Shards:         4,
		RebalanceEvery: 200,
		TrackTxs:       true,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	observed, err := ObservedDemand(g.NumNodes(), res.Txs, res.Elapsed, 0.5)
	if err != nil {
		t.Fatalf("observed demand: %v", err)
	}
	if observed.TotalRate() <= 0 {
		t.Fatalf("observed total rate %v, want positive", observed.TotalRate())
	}
	params := core.Params{OnChainCost: 1, OppCostRate: 0.05, FAvg: 0.5, FeePerHop: 0.5, OwnRate: 1}
	gs, err := core.NewGrowSession(g.Clone(), params, g.NumNodes()+1, 1)
	if err != nil {
		t.Fatalf("grow session: %v", err)
	}
	candidates := []graph.NodeID{0, 1, 2, 3, 4}
	gs.SetDemand(observed)
	rates, err := gs.RefreshRates(candidates)
	if err != nil {
		t.Fatalf("RefreshRates: %v", err)
	}
	if len(rates) != len(candidates) {
		t.Fatalf("refreshed %d rates, want %d", len(rates), len(candidates))
	}
	positive := 0
	for v, rate := range rates {
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			t.Fatalf("rate[%d] = %v from observed demand", v, rate)
		}
		if rate > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatalf("observed-demand refresh produced all-zero λ̂ rates")
	}
}

// TestShardEventSplit pins the deterministic remainder spread.
func TestShardEventSplit(t *testing.T) {
	total := 0
	for s := 0; s < 7; s++ {
		total += shardEvents(100, 7, s)
	}
	if total != 100 {
		t.Fatalf("shard split loses events: %d", total)
	}
	if got := shardEvents(100, 7, 0); got != 15 {
		t.Fatalf("leading shard got %d events, want 15", got)
	}
	if got := shardEvents(100, 7, 6); got != 14 {
		t.Fatalf("trailing shard got %d events, want 14", got)
	}
}
