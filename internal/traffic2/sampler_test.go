package traffic2

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// samplerFamilies builds one sparse sampler per family over g with unit
// rates.
func samplerFamilies(t *testing.T, g *graph.Graph) map[string]traffic.Sampler {
	t.Helper()
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	out := map[string]traffic.Sampler{}
	for _, d := range []txdist.Distribution{
		txdist.Uniform{},
		txdist.DegreeProportional{Alpha: 1},
		txdist.DistanceDecay{Decay: 0.5},
	} {
		s, err := traffic.NewSampler(g, d, rates)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", d.Name(), err)
		}
		out[s.Kind()] = s
	}
	return out
}

// TestReplaySamplerMatchesReference locks every sparse plane against the
// live-network oracle: both sides draw through the same shared sampler,
// so receipts, counters and per-node floats must agree bit for bit —
// exactly the dense-demand differential, extended to the planes that
// scale to n=10k.
func TestReplaySamplerMatchesReference(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, 6, rand.New(rand.NewSource(21)))
	for kind, s := range samplerFamilies(t, g) {
		cfg := Config{
			Sampler:        s,
			Sizes:          fee.UniformSize{T: 3}, // near capacity: forces failures and retries
			Fee:            fee.Linear{Base: 0.01, Rate: 0.001},
			Events:         4000,
			Seed:           7,
			Shards:         3,
			RebalanceEvery: 500,
			TrackTxs:       true,
			RecordReceipts: true,
		}
		got, err := Replay(g, cfg)
		if err != nil {
			t.Fatalf("%s: replay: %v", kind, err)
		}
		want, err := ReferenceReplay(g, cfg)
		if err != nil {
			t.Fatalf("%s: reference: %v", kind, err)
		}
		compareResults(t, got, want)
		if got.Successes == 0 || got.Failures == 0 {
			t.Errorf("%s: degenerate differential (%d ok / %d failed)", kind, got.Successes, got.Failures)
		}
	}
}

// TestReplaySamplerParallelismInvariance pins the sharing contract: one
// immutable sampler read by 1, 4 and 8 workers must merge bit-identical
// results — scratch is per shard, the plane is never written.
func TestReplaySamplerParallelismInvariance(t *testing.T) {
	g := graph.BarabasiAlbert(80, 2, 8, rand.New(rand.NewSource(22)))
	for kind, s := range samplerFamilies(t, g) {
		var base *Result
		for _, workers := range []int{1, 4, 8} {
			res, err := Replay(g, Config{
				Sampler:        s,
				Sizes:          fee.UniformSize{T: 2},
				Fee:            fee.Constant{F: 0.01},
				Events:         6000,
				Seed:           9,
				Shards:         8,
				Parallelism:    workers,
				RebalanceEvery: 1000,
			})
			if err != nil {
				t.Fatalf("%s: replay @%d workers: %v", kind, workers, err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("%s: result depends on parallelism (%d workers)", kind, workers)
			}
		}
	}
}

// TestReplaySamplerKindIsIdentity pins the determinism contract: two
// planes over the same distribution but of different kinds consume the
// random stream differently, so the same seed yields different — each
// individually reproducible — replays.
func TestReplaySamplerKindIsIdentity(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, 10, rand.New(rand.NewSource(23)))
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	demand, err := traffic.NewDemand(g, txdist.Uniform{}, rates)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := traffic.NewSampler(g, txdist.Uniform{}, rates)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) *Result {
		res, err := Replay(g, cfg)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		return res
	}
	base := Config{Sizes: fee.UniformSize{T: 1}, Events: 3000, Seed: 5, Shards: 2}
	denseCfg := base
	denseCfg.Demand = demand
	sparseCfg := base
	sparseCfg.Sampler = sparse
	dense1, dense2 := run(denseCfg), run(denseCfg)
	sparse1, sparse2 := run(sparseCfg), run(sparseCfg)
	if !reflect.DeepEqual(dense1, dense2) || !reflect.DeepEqual(sparse1, sparse2) {
		t.Fatal("same kind + seed not reproducible")
	}
	if dense1.Elapsed == sparse1.Elapsed {
		t.Fatal("dense-cdf and sparse-uniform produced the same stream; kinds are not distinct identities")
	}
}

// TestValidateDemandSharedPlane pins the single validation path both the
// engine and the oracle go through.
func TestValidateDemandSharedPlane(t *testing.T) {
	g := graph.Star(3, 10)
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	demand, err := traffic.NewDemand(g, txdist.Uniform{}, rates)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := traffic.NewSampler(g, txdist.Uniform{}, rates)
	if err != nil {
		t.Fatal(err)
	}
	small, err := traffic.NewUniformSampler([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	dead, err := traffic.NewUniformSampler(make([]float64, g.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Config{
		"both demand and sampler": {Demand: demand, Sampler: sampler, Events: 10},
		"sampler node mismatch":   {Sampler: small, Events: 10},
		"zero-rate sampler":       {Sampler: dead, Events: 10},
	}
	for name, cfg := range cases {
		if _, err := Replay(g, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("engine %s = %v, want ErrBadConfig", name, err)
		}
		if _, err := ReferenceReplay(g, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("oracle %s = %v, want ErrBadConfig", name, err)
		}
	}
	if _, err := Replay(g, Config{Sampler: sampler, Sizes: fee.FixedSize{T: 1}, Events: 50, Seed: 1}); err != nil {
		t.Errorf("valid sampler config rejected: %v", err)
	}
}
