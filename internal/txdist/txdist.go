// Package txdist implements the transaction distributions of §II-B: the
// paper's modified Zipf distribution (nodes ranked by in-degree, rank
// factors averaged across equal-degree nodes), the plain Zipf distribution,
// and the uniform distribution used as the baseline model of [18]–[20].
//
// A Distribution answers, for a sender u and a PCN topology g, the
// probability p_trans(u, v) that u's next transaction is addressed to v.
// When u is a node of g, the ranking is computed on the subgraph
// G' = G − u as the paper prescribes; when u is not a node of g (a joining
// node that has not yet connected), the ranking covers all of g.
package txdist

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// Distribution models p_trans(u, ·) for any sender over a given topology.
type Distribution interface {
	// Probs returns a slice indexed by NodeID with Probs[v] = p_trans(u,v).
	// The entry for u itself (when u is a node of g) is zero, and the
	// remaining entries sum to 1 whenever g has at least one candidate
	// recipient.
	Probs(g *graph.Graph, u graph.NodeID) []float64

	// Name identifies the distribution in experiment output.
	Name() string
}

// ModifiedZipf is the paper's §II-B distribution. Recipients are ranked by
// in-degree (rank 1 = highest); every node receives the average of the
// plain Zipf mass 1/r^S over the block of ranks occupied by nodes of its
// in-degree, so equal-degree nodes are equally likely. The paper states
// the defining property r1(v1) < r2(v2) ⇒ rf(v1) > rf(v2), which this
// implementation preserves (see the property tests).
//
// Note: the paper's displayed rank-factor formula averages n(v)+1 terms
// over n(v) (an off-by-one); we implement the consistent definition that
// averages exactly the n(v) occupied ranks, which satisfies all the
// properties the paper uses.
type ModifiedZipf struct {
	// S is the Zipf scale parameter s ≥ 0. Larger values bias
	// transactions towards high-degree nodes; S = 0 is uniform.
	S float64
}

var _ Distribution = ModifiedZipf{}

// Name implements Distribution.
func (z ModifiedZipf) Name() string { return fmt.Sprintf("modified-zipf(s=%g)", z.S) }

// Probs implements Distribution.
func (z ModifiedZipf) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	factors := RankFactors(g, u, z.S)
	return normalize(factors)
}

// RankFactors returns the rank factor rf(v) for every node v ≠ u of g,
// before normalisation. The entry for u (when present) is zero.
func RankFactors(g *graph.Graph, u graph.NodeID, s float64) []float64 {
	n := g.NumNodes()
	factors := make([]float64, n)
	type nodeDeg struct {
		id  graph.NodeID
		deg int
	}
	candidates := make([]nodeDeg, 0, n)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if id == u {
			continue
		}
		candidates = append(candidates, nodeDeg{id: id, deg: inDegreeExcluding(g, id, u)})
	}
	// Sort by in-degree descending; rank 1 is the highest degree.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].deg != candidates[j].deg {
			return candidates[i].deg > candidates[j].deg
		}
		return candidates[i].id < candidates[j].id
	})
	// Walk blocks of equal degree, assigning the averaged Zipf mass of the
	// block's rank range to each member.
	for start := 0; start < len(candidates); {
		end := start
		for end < len(candidates) && candidates[end].deg == candidates[start].deg {
			end++
		}
		var sum float64
		for r := start + 1; r <= end; r++ { // ranks are 1-based
			sum += 1 / math.Pow(float64(r), s)
		}
		avg := sum / float64(end-start)
		for i := start; i < end; i++ {
			factors[candidates[i].id] = avg
		}
		start = end
	}
	return factors
}

// Zipf is the unmodified Zipf distribution over the in-degree ranking,
// breaking ties by node identifier (the paper's "breaking ties
// arbitrarily").
type Zipf struct {
	// S is the Zipf scale parameter s ≥ 0.
	S float64
}

var _ Distribution = Zipf{}

// Name implements Distribution.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(s=%g)", z.S) }

// Probs implements Distribution.
func (z Zipf) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	n := g.NumNodes()
	factors := make([]float64, n)
	type nodeDeg struct {
		id  graph.NodeID
		deg int
	}
	candidates := make([]nodeDeg, 0, n)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if id == u {
			continue
		}
		candidates = append(candidates, nodeDeg{id: id, deg: inDegreeExcluding(g, id, u)})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].deg != candidates[j].deg {
			return candidates[i].deg > candidates[j].deg
		}
		return candidates[i].id < candidates[j].id
	})
	for rank, c := range candidates {
		factors[c.id] = 1 / math.Pow(float64(rank+1), z.S)
	}
	return normalize(factors)
}

// Uniform is the baseline transaction model of [18]–[20]: every other user
// is an equally likely recipient.
type Uniform struct{}

var _ Distribution = Uniform{}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Probs implements Distribution.
func (Uniform) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	n := g.NumNodes()
	probs := make([]float64, n)
	count := n
	if g.HasNode(u) {
		count--
	}
	if count <= 0 {
		return probs
	}
	p := 1 / float64(count)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) != u {
			probs[v] = p
		}
	}
	return probs
}

// DegreeProportional targets recipients proportionally to a power of
// their popularity: p_trans(u,v) ∝ (indeg(v)+1)^Alpha for v ≠ u. Unlike
// the Zipf families it ranks nothing — the weight of v depends only on
// v's own in-degree on the full graph, not on the subgraph G − u — which
// is what lets the traffic sampler plane draw from it in O(1) out of
// O(n) memory at n=10k. Alpha = 0 is uniform; Alpha = 1 is linear
// preferential popularity.
type DegreeProportional struct {
	// Alpha is the popularity exponent.
	Alpha float64
}

var _ Distribution = DegreeProportional{}

// Name implements Distribution.
func (d DegreeProportional) Name() string { return fmt.Sprintf("degree(a=%g)", d.Alpha) }

// Weights returns the unnormalised recipient weights (indeg(v)+1)^Alpha
// for every node of g — the O(n) plane sparse samplers draw from.
func (d DegreeProportional) Weights(g *graph.Graph) []float64 {
	w := make([]float64, g.NumNodes())
	for v := range w {
		w[v] = math.Pow(float64(g.InDegree(graph.NodeID(v))+1), d.Alpha)
	}
	return w
}

// Probs implements Distribution.
func (d DegreeProportional) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	w := d.Weights(g)
	if g.HasNode(u) {
		w[u] = 0
	}
	return normalize(w)
}

// DistanceDecay targets recipients by locality: p_trans(u,v) ∝ Decay^d(u,v)
// over the nodes reachable from u, with d the hop distance. Decay in (0,1)
// biases transactions towards network neighbours — the "most payments are
// local" workload; Decay must be positive and finite (a non-positive decay
// yields an all-zero row). A sender not yet in g (a joining node with no
// vantage point) sees every member as equally likely.
type DistanceDecay struct {
	// Decay is the per-hop attenuation factor.
	Decay float64
}

var _ Distribution = DistanceDecay{}

// Name implements Distribution.
func (d DistanceDecay) Name() string { return fmt.Sprintf("distance(decay=%g)", d.Decay) }

// Probs implements Distribution.
func (d DistanceDecay) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	n := g.NumNodes()
	w := make([]float64, n)
	if !(d.Decay > 0) || math.IsInf(d.Decay, 0) {
		return w
	}
	if !g.HasNode(u) {
		for v := range w {
			w[v] = 1
		}
		return normalize(w)
	}
	dist := g.BFS(u)
	for v := range w {
		if graph.NodeID(v) == u || dist[v] == graph.Unreachable {
			continue
		}
		w[v] = math.Pow(d.Decay, float64(dist[v]))
	}
	return normalize(w)
}

// PerSender composes per-node distributions (the paper's user-specific
// parameter s_u): sender u uses Overrides[u] when present and Default
// otherwise.
type PerSender struct {
	Default   Distribution
	Overrides map[graph.NodeID]Distribution
}

var _ Distribution = PerSender{}

// Name implements Distribution.
func (p PerSender) Name() string {
	return fmt.Sprintf("per-sender(default=%s,overrides=%d)", p.Default.Name(), len(p.Overrides))
}

// Probs implements Distribution.
func (p PerSender) Probs(g *graph.Graph, u graph.NodeID) []float64 {
	if d, ok := p.Overrides[u]; ok {
		return d.Probs(g, u)
	}
	return p.Default.Probs(g, u)
}

// Matrix materialises p_trans(s, r) for every ordered pair of nodes in g.
// Row s is Probs(g, s).
func Matrix(g *graph.Graph, d Distribution) [][]float64 {
	n := g.NumNodes()
	m := make([][]float64, n)
	for s := 0; s < n; s++ {
		m[s] = d.Probs(g, graph.NodeID(s))
	}
	return m
}

// Harmonic returns the generalised harmonic number H^s_n = Σ_{k=1..n} k^-s
// used throughout §IV.
func Harmonic(n int, s float64) float64 {
	var sum float64
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
	}
	return sum
}

// inDegreeExcluding counts live edges entering v, skipping edges whose
// other endpoint is the excluded node. This realises the ranking on
// G' = G − u without materialising the subgraph.
func inDegreeExcluding(g *graph.Graph, v, excluded graph.NodeID) int {
	count := 0
	g.ForEachIn(v, func(e graph.Edge) bool {
		if e.From != excluded {
			count++
		}
		return true
	})
	return count
}

func normalize(factors []float64) []float64 {
	var total float64
	for _, f := range factors {
		total += f
	}
	if total <= 0 {
		return factors
	}
	for i := range factors {
		factors[i] /= total
	}
	return factors
}
