package txdist

import (
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// TestProbsDegenerateGraphs pins the zero-mass branches: with no
// candidate recipients every distribution must return an all-zero row
// rather than NaNs from a zero-total normalisation.
func TestProbsDegenerateGraphs(t *testing.T) {
	single := graph.New(1)
	dists := []Distribution{
		ModifiedZipf{S: 1.5},
		Zipf{S: 1.5},
		Uniform{},
		PerSender{Default: Uniform{}},
	}
	for _, d := range dists {
		row := d.Probs(single, 0)
		if len(row) != 1 {
			t.Fatalf("%s: row length %d, want 1", d.Name(), len(row))
		}
		if row[0] != 0 {
			t.Errorf("%s: self probability %v, want 0", d.Name(), row[0])
		}
	}
}

// TestZipfProbsIsolatedSender checks a sender with zero degree in a
// larger graph still produces a normalised row over the others.
func TestZipfProbsIsolatedSender(t *testing.T) {
	g := graph.Circle(4, 1)
	lone := g.AddNode()
	row := Zipf{S: 1}.Probs(g, lone)
	var total float64
	for _, p := range row {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		total += p
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("isolated sender row sums to %v, want 1", total)
	}
	if row[lone] != 0 {
		t.Errorf("self probability %v, want 0", row[lone])
	}
}
