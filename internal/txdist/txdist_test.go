package txdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

const tol = 1e-12

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestModifiedZipfSumsToOne(t *testing.T) {
	g := graph.Star(5, 1)
	for u := 0; u < g.NumNodes(); u++ {
		p := ModifiedZipf{S: 1.5}.Probs(g, graph.NodeID(u))
		if math.Abs(sum(p)-1) > tol {
			t.Fatalf("sender %d: probs sum to %v", u, sum(p))
		}
		if p[u] != 0 {
			t.Fatalf("sender %d: self-probability %v", u, p[u])
		}
	}
}

func TestModifiedZipfEqualDegreeEqualProb(t *testing.T) {
	// In a star, all leaves have equal in-degree; from the center's view
	// they must be equally likely.
	g := graph.Star(6, 1)
	p := ModifiedZipf{S: 2}.Probs(g, 0)
	for leaf := 2; leaf <= 6; leaf++ {
		if math.Abs(p[leaf]-p[1]) > tol {
			t.Fatalf("leaf probs differ: p[1]=%v p[%d]=%v", p[1], leaf, p[leaf])
		}
	}
}

func TestModifiedZipfPrefersHighDegree(t *testing.T) {
	// From a leaf's perspective in a star the center (degree n) must be
	// strictly more likely than any other leaf (degree 1) for s > 0.
	g := graph.Star(6, 1)
	p := ModifiedZipf{S: 1}.Probs(g, 3)
	if p[0] <= p[1] {
		t.Fatalf("center prob %v not greater than leaf prob %v", p[0], p[1])
	}
}

func TestModifiedZipfRankExclusion(t *testing.T) {
	// The ranking is computed on G − u: from a leaf u's perspective, the
	// other leaves lose their only edge when... they don't (their edge is
	// to the center), but the center loses one edge. With u = leaf 1 on a
	// 3-leaf star the center has residual degree 2, leaves degree 1.
	g := graph.Star(3, 1)
	p := ModifiedZipf{S: 1}.Probs(g, 1)
	// Ranks: center r=1 (rf=1), leaves 2,3 occupy ranks 2,3 with
	// rf = (1/2 + 1/3)/2 = 5/12. Total = 1 + 2·5/12 = 11/6.
	wantCenter := 1.0 / (11.0 / 6.0)
	wantLeaf := (5.0 / 12.0) / (11.0 / 6.0)
	if math.Abs(p[0]-wantCenter) > tol {
		t.Fatalf("p[center] = %v, want %v", p[0], wantCenter)
	}
	if math.Abs(p[2]-wantLeaf) > tol || math.Abs(p[3]-wantLeaf) > tol {
		t.Fatalf("p[leaf] = %v/%v, want %v", p[2], p[3], wantLeaf)
	}
}

func TestModifiedZipfSZeroIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.BarabasiAlbert(12, 2, 1, rng)
	p := ModifiedZipf{S: 0}.Probs(g, 0)
	want := 1.0 / float64(g.NumNodes()-1)
	for v := 1; v < g.NumNodes(); v++ {
		if math.Abs(p[v]-want) > tol {
			t.Fatalf("s=0 not uniform: p[%d]=%v want %v", v, p[v], want)
		}
	}
}

func TestModifiedZipfOutsiderSender(t *testing.T) {
	// A joining node that is not part of g: probabilities cover all nodes.
	g := graph.Star(4, 1)
	p := ModifiedZipf{S: 1}.Probs(g, graph.InvalidNode)
	if math.Abs(sum(p)-1) > tol {
		t.Fatalf("outsider probs sum to %v", sum(p))
	}
	for v := 0; v < g.NumNodes(); v++ {
		if p[v] <= 0 {
			t.Fatalf("outsider p[%d] = %v, want > 0", v, p[v])
		}
	}
	if p[0] <= p[1] {
		t.Fatal("outsider should still prefer the hub")
	}
}

func TestRankFactorMonotonicity(t *testing.T) {
	// Paper property: r1(v1) < r2(v2) ⇒ rf(v1) > rf(v2); strictly higher
	// degree means strictly larger rank factor. Checked across random
	// graphs and s values.
	check := func(seed int64, sRaw uint8) bool {
		s := 0.25 + float64(sRaw%16)/4 // s in [0.25, 4)
		rng := rand.New(rand.NewSource(seed))
		g := graph.BarabasiAlbert(14, 2, 1, rng)
		u := graph.NodeID(int(seed%14+14) % 14)
		factors := RankFactors(g, u, s)
		for a := 0; a < g.NumNodes(); a++ {
			for b := 0; b < g.NumNodes(); b++ {
				if graph.NodeID(a) == u || graph.NodeID(b) == u {
					continue
				}
				da := inDegreeExcluding(g, graph.NodeID(a), u)
				db := inDegreeExcluding(g, graph.NodeID(b), u)
				if da > db && factors[a] <= factors[b] {
					return false
				}
				if da == db && math.Abs(factors[a]-factors[b]) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlainZipfKnownValues(t *testing.T) {
	// 3-node path: node 1 has degree 2, nodes 0 and 2 degree 1. From
	// sender 0 the ranking of {1,2} is [1 (deg 2), 2 (deg 1)].
	g := graph.Path(3, 1)
	p := Zipf{S: 1}.Probs(g, 0)
	h := 1.0 + 0.5
	if math.Abs(p[1]-1/h) > tol || math.Abs(p[2]-0.5/h) > tol {
		t.Fatalf("zipf probs = %v, want [_, %v, %v]", p, 1/h, 0.5/h)
	}
}

func TestPlainZipfTieBreakDiffersFromModified(t *testing.T) {
	// With equal-degree nodes, plain Zipf assigns distinct masses by rank
	// while modified Zipf equalises them.
	g := graph.Star(4, 1)
	plain := Zipf{S: 2}.Probs(g, 0)
	if math.Abs(plain[1]-plain[2]) < tol {
		t.Fatal("plain zipf should differentiate tied nodes")
	}
	mod := ModifiedZipf{S: 2}.Probs(g, 0)
	if math.Abs(mod[1]-mod[2]) > tol {
		t.Fatal("modified zipf must equalise tied nodes")
	}
}

func TestUniform(t *testing.T) {
	g := graph.Circle(5, 1)
	p := Uniform{}.Probs(g, 2)
	for v := 0; v < 5; v++ {
		want := 0.25
		if v == 2 {
			want = 0
		}
		if math.Abs(p[v]-want) > tol {
			t.Fatalf("uniform p[%d] = %v, want %v", v, p[v], want)
		}
	}
}

func TestUniformSingleNode(t *testing.T) {
	g := graph.New(1)
	p := Uniform{}.Probs(g, 0)
	if p[0] != 0 {
		t.Fatalf("single node p = %v, want 0", p[0])
	}
}

func TestPerSenderOverride(t *testing.T) {
	g := graph.Star(4, 1)
	d := PerSender{
		Default:   Uniform{},
		Overrides: map[graph.NodeID]Distribution{1: ModifiedZipf{S: 3}},
	}
	// Sender 1 uses zipf: hub heavily preferred.
	p := d.Probs(g, 1)
	if p[0] <= p[2] {
		t.Fatal("override not applied")
	}
	// Sender 2 uses uniform.
	p = d.Probs(g, 2)
	if math.Abs(p[0]-p[1]) > tol {
		t.Fatal("default not applied")
	}
}

func TestMatrixRowsMatchProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ErdosRenyi(8, 0.4, 1, rng)
	d := ModifiedZipf{S: 1.2}
	m := Matrix(g, d)
	for s := 0; s < g.NumNodes(); s++ {
		row := d.Probs(g, graph.NodeID(s))
		for r := range row {
			if math.Abs(m[s][r]-row[r]) > tol {
				t.Fatalf("matrix[%d][%d] = %v, want %v", s, r, m[s][r], row[r])
			}
		}
	}
}

func TestHarmonic(t *testing.T) {
	tests := []struct {
		n    int
		s    float64
		want float64
	}{
		{n: 1, s: 2, want: 1},
		{n: 3, s: 1, want: 1 + 0.5 + 1.0/3},
		{n: 4, s: 0, want: 4},
		{n: 2, s: 2, want: 1.25},
	}
	for _, tt := range tests {
		if got := Harmonic(tt.n, tt.s); math.Abs(got-tt.want) > tol {
			t.Fatalf("Harmonic(%d,%g) = %v, want %v", tt.n, tt.s, got, tt.want)
		}
	}
}

func TestHarmonicBoundForLargeS(t *testing.T) {
	// Theorem 9 uses H^s_n ≤ 2 for s ≥ 2; sanity check the inequality.
	for _, n := range []int{2, 10, 100, 1000} {
		if h := Harmonic(n, 2); h > 2 {
			t.Fatalf("Harmonic(%d,2) = %v > 2", n, h)
		}
	}
}

func TestDistributionNames(t *testing.T) {
	names := []string{
		ModifiedZipf{S: 1}.Name(),
		Zipf{S: 1}.Name(),
		Uniform{}.Name(),
		DegreeProportional{Alpha: 1}.Name(),
		DistanceDecay{Decay: 0.5}.Name(),
		PerSender{Default: Uniform{}}.Name(),
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" {
			t.Fatal("empty distribution name")
		}
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestDegreeProportionalProbs(t *testing.T) {
	// Star(5,1): hub 0 plus 5 leaves — hub in-degree 5, every leaf 1.
	// With Alpha = 1 a leaf sender must put strictly more mass on the
	// hub than on any fellow leaf, and zero on itself.
	g := graph.Star(5, 1)
	p := DegreeProportional{Alpha: 1}.Probs(g, 2)
	if math.Abs(sum(p)-1) > tol {
		t.Fatalf("probs sum to %v", sum(p))
	}
	if p[2] != 0 {
		t.Fatalf("self-probability %v", p[2])
	}
	if p[0] <= p[1] {
		t.Fatalf("hub prob %v not above leaf prob %v", p[0], p[1])
	}
	w := DegreeProportional{Alpha: 1}.Weights(g)
	if w[0] != 6 || w[1] != 2 {
		t.Fatalf("weights = %v, want hub 6 and leaves 2", w)
	}
	// Alpha = 0 flattens popularity entirely.
	flat := DegreeProportional{}.Probs(g, 2)
	if flat[0] != flat[1] {
		t.Fatalf("alpha=0 probs not uniform: %v vs %v", flat[0], flat[1])
	}
}

func TestDistanceDecayProbs(t *testing.T) {
	// Path 0—1—2—3: from sender 0, each extra hop multiplies the weight
	// by Decay, so p[1] > p[2] > p[3] in exact ratio Decay.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	p := DistanceDecay{Decay: 0.5}.Probs(g, 0)
	if math.Abs(sum(p)-1) > tol {
		t.Fatalf("probs sum to %v", sum(p))
	}
	if p[0] != 0 {
		t.Fatalf("self-probability %v", p[0])
	}
	if math.Abs(p[2]-0.5*p[1]) > tol || math.Abs(p[3]-0.5*p[2]) > tol {
		t.Fatalf("decay ratios broken: %v", p)
	}
	// A sender outside g has no vantage point: every member is equal.
	out := DistanceDecay{Decay: 0.5}.Probs(g, 99)
	for v, q := range out {
		if math.Abs(q-0.25) > tol {
			t.Fatalf("outsider prob[%d] = %v, want 0.25", v, q)
		}
	}
	// Non-positive or infinite decay yields the documented all-zero row.
	for _, d := range []float64{0, -1, math.Inf(1)} {
		if z := (DistanceDecay{Decay: d}).Probs(g, 0); sum(z) != 0 {
			t.Fatalf("decay %v: row %v not all-zero", d, z)
		}
	}
}
