// Package simulate replays Poisson transaction workloads over a live
// payment network: the end-to-end validation layer that connects the
// analytic model of §II (edge rates, transit revenue) to the operational
// semantics of Figure 1 (balances, failures, fees).
package simulate

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ErrBadConfig reports an invalid simulation configuration.
var ErrBadConfig = errors.New("simulate: invalid config")

// Config parametrises a simulation run.
type Config struct {
	// Demand drives the Poisson workload (senders, recipients, rates).
	Demand *traffic.Demand
	// Sizes draws transaction sizes; nil sends zero-sized probes, which
	// exercise routing but never depletion.
	Sizes traffic.SizeSampler
	// Events is the number of transactions to replay.
	Events int
	// Seed seeds the workload generator.
	Seed int64
	// RebalanceEvery, when positive, restores all channel balances to
	// their deposits every that-many events, emulating the steady state
	// the analytic model assumes. Zero disables rebalancing, exposing
	// depletion effects.
	RebalanceEvery int
}

// Result aggregates a simulation run.
type Result struct {
	// Events, Successes and Failures count replayed transactions.
	Events, Successes, Failures int
	// Elapsed is the simulated duration in workload time units.
	Elapsed float64
	// Earned[v] is the total routing fees node v collected.
	Earned []float64
	// Forwarded[v] counts payments node v forwarded.
	Forwarded []int
	// Volume is the total value successfully delivered.
	Volume float64
	// FeesPaid is the total routing fees paid by senders.
	FeesPaid float64
}

// SuccessRate returns the fraction of replayed transactions that
// succeeded.
func (r Result) SuccessRate() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Events)
}

// TransitRate returns node v's measured forwarding rate per time unit.
func (r Result) TransitRate(v graph.NodeID) float64 {
	if r.Elapsed <= 0 || int(v) >= len(r.Forwarded) {
		return 0
	}
	return float64(r.Forwarded[v]) / r.Elapsed
}

// RevenueRate returns node v's measured fee income per time unit.
func (r Result) RevenueRate(v graph.NodeID) float64 {
	if r.Elapsed <= 0 || int(v) >= len(r.Earned) {
		return 0
	}
	return r.Earned[v] / r.Elapsed
}

// Run replays cfg.Events transactions over the network. Payment failures
// (no feasible route) are recorded, not fatal — they are the phenomenon
// Figure 1 illustrates.
func Run(n *payment.Network, cfg Config) (Result, error) {
	if cfg.Events <= 0 {
		return Result{}, fmt.Errorf("%w: events %d", ErrBadConfig, cfg.Events)
	}
	if cfg.Demand == nil {
		return Result{}, fmt.Errorf("%w: nil demand", ErrBadConfig)
	}
	if len(cfg.Demand.Rates) != n.NumUsers() {
		return Result{}, fmt.Errorf("%w: demand covers %d users, network has %d",
			ErrBadConfig, len(cfg.Demand.Rates), n.NumUsers())
	}
	gen, err := traffic.NewGenerator(cfg.Demand, cfg.Sizes, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Earned:    make([]float64, n.NumUsers()),
		Forwarded: make([]int, n.NumUsers()),
	}
	for i := 0; i < cfg.Events; i++ {
		if cfg.RebalanceEvery > 0 && i > 0 && i%cfg.RebalanceEvery == 0 {
			if err := n.ResetBalances(); err != nil {
				return Result{}, err
			}
		}
		tx := gen.Next()
		res.Events++
		amount := tx.Amount
		if amount <= 0 {
			// Zero-sized probe: still exercises routing feasibility.
			amount = 1e-9
		}
		receipt, err := n.Pay(tx.From, tx.To, amount)
		if err != nil {
			res.Failures++
			continue
		}
		res.Successes++
		res.Volume += receipt.Amount
		res.FeesPaid += receipt.TotalFee
		for k := 1; k+1 < len(receipt.Path); k++ {
			v := receipt.Path[k]
			res.Forwarded[v]++
			res.Earned[v] += receipt.TotalFee / float64(len(receipt.Path)-2)
		}
	}
	res.Elapsed = gen.Now()
	return res, nil
}

// PredictedTransit returns the analytic per-node transit rates
// (§II-B: weighted betweenness) for comparison against measured rates.
func PredictedTransit(topo *graph.Graph, demand *traffic.Demand) []float64 {
	return demand.NodeTransitRates(topo)
}
