package simulate

import (
	"errors"
	"math"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/chain"
	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/payment"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func buildNetwork(t *testing.T, g *graph.Graph, feeFn fee.Func) *payment.Network {
	t.Helper()
	ledger, err := chain.NewLedger(1)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	n, err := payment.FromGraph(ledger, feeFn, g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	return n
}

func uniformDemand(t *testing.T, g *graph.Graph, rate float64) *traffic.Demand {
	t.Helper()
	d, err := traffic.NewUniformDemand(g, txdist.Uniform{}, rate*float64(g.NumNodes()))
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	return d
}

func TestRunValidation(t *testing.T) {
	g := graph.Star(3, 100)
	n := buildNetwork(t, g, fee.Constant{F: 0})
	d := uniformDemand(t, g, 1)
	if _, err := Run(n, Config{Demand: d, Events: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero events error = %v", err)
	}
	if _, err := Run(n, Config{Events: 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil demand error = %v", err)
	}
	smaller := graph.Star(2, 100)
	if _, err := Run(n, Config{Demand: uniformDemand(t, smaller, 1), Events: 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mismatched demand error = %v", err)
	}
}

func TestRunDeliversPayments(t *testing.T) {
	g := graph.Star(4, 1000)
	n := buildNetwork(t, g, fee.Constant{F: 0.01})
	d := uniformDemand(t, g, 1)
	res, err := Run(n, Config{
		Demand: d,
		Sizes:  fee.FixedSize{T: 1},
		Events: 2000,
		Seed:   7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Events != 2000 {
		t.Fatalf("Events = %d", res.Events)
	}
	if res.SuccessRate() < 0.99 {
		t.Fatalf("success rate = %v with huge balances", res.SuccessRate())
	}
	if res.Volume <= 0 || res.FeesPaid <= 0 {
		t.Fatalf("volume/fees = %v/%v", res.Volume, res.FeesPaid)
	}
	// Only the hub forwards in a star.
	for leaf := 1; leaf <= 4; leaf++ {
		if res.Forwarded[leaf] != 0 {
			t.Fatalf("leaf %d forwarded %d payments", leaf, res.Forwarded[leaf])
		}
	}
	if res.Forwarded[0] == 0 {
		t.Fatal("hub forwarded nothing")
	}
	// Fees conservation: everything paid was earned.
	var earned float64
	for _, e := range res.Earned {
		earned += e
	}
	if math.Abs(earned-res.FeesPaid) > 1e-6 {
		t.Fatalf("earned %v ≠ paid %v", earned, res.FeesPaid)
	}
}

func TestMeasuredTransitMatchesPrediction(t *testing.T) {
	// E11's core claim in miniature: with rebalancing keeping the network
	// in steady state, the hub's measured forwarding rate converges to
	// the analytic λ (weighted betweenness) within sampling noise.
	g := graph.Star(5, 1000)
	n := buildNetwork(t, g, fee.Constant{F: 0.01})
	d := uniformDemand(t, g, 1)
	const events = 30000
	res, err := Run(n, Config{
		Demand:         d,
		Sizes:          fee.FixedSize{T: 1},
		Events:         events,
		Seed:           11,
		RebalanceEvery: 500,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	predicted := PredictedTransit(g, d)
	measured := res.TransitRate(0)
	if predicted[0] <= 0 {
		t.Fatal("analytic hub transit should be positive")
	}
	if rel := math.Abs(measured-predicted[0]) / predicted[0]; rel > 0.1 {
		t.Fatalf("hub transit: measured %v vs predicted %v (rel err %v)", measured, predicted[0], rel)
	}
}

func TestDepletionWithoutRebalancing(t *testing.T) {
	// Tiny balances and one-way demand: failures must appear once the
	// forward direction is exhausted (Figure 1's phenomenon at network
	// scale).
	g := graph.Path(3, 3) // each direction holds 3 coins
	n := buildNetwork(t, g, fee.Constant{F: 0})
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 1}, {0, 0, 0}, {0, 0, 0}},
		Rates: []float64{1, 0, 0},
	}
	res, err := Run(n, Config{
		Demand: demand,
		Sizes:  fee.FixedSize{T: 1},
		Events: 20,
		Seed:   3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Successes != 3 {
		t.Fatalf("successes = %d, want exactly 3 before depletion", res.Successes)
	}
	if res.Failures != 17 {
		t.Fatalf("failures = %d, want 17", res.Failures)
	}
}

func TestRebalancingRestoresThroughput(t *testing.T) {
	g := graph.Path(3, 3)
	n := buildNetwork(t, g, fee.Constant{F: 0})
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 1}, {0, 0, 0}, {0, 0, 0}},
		Rates: []float64{1, 0, 0},
	}
	res, err := Run(n, Config{
		Demand:         demand,
		Sizes:          fee.FixedSize{T: 1},
		Events:         20,
		Seed:           3,
		RebalanceEvery: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Successes <= 10 {
		t.Fatalf("successes = %d, rebalancing should lift throughput", res.Successes)
	}
}

func TestResultAccessorsOutOfRange(t *testing.T) {
	var r Result
	if r.SuccessRate() != 0 {
		t.Fatal("empty SuccessRate != 0")
	}
	if r.TransitRate(5) != 0 || r.RevenueRate(5) != 0 {
		t.Fatal("out-of-range rates != 0")
	}
}

func TestVolumeAndFeeAccounting(t *testing.T) {
	g := graph.Star(3, 10000)
	n := buildNetwork(t, g, fee.Constant{F: 0.5})
	d := uniformDemand(t, g, 1)
	res, err := Run(n, Config{
		Demand: d,
		Sizes:  fee.FixedSize{T: 2},
		Events: 500,
		Seed:   21,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every successful payment delivered exactly 2 coins.
	if math.Abs(res.Volume-float64(res.Successes)*2) > 1e-9 {
		t.Fatalf("volume %v ≠ 2·%d", res.Volume, res.Successes)
	}
	// Fees paid equal 0.5 per forwarded hop; in a star only hub-mediated
	// (leaf→leaf) payments pay fees.
	if math.Abs(res.FeesPaid-0.5*float64(res.Forwarded[0])) > 1e-9 {
		t.Fatalf("fees %v ≠ 0.5·%d", res.FeesPaid, res.Forwarded[0])
	}
}

func TestZeroSizeProbesAlwaysRoute(t *testing.T) {
	// With nil Sizes, probes are tiny and never deplete channels.
	g := graph.Circle(5, 1)
	n := buildNetwork(t, g, fee.Constant{F: 0})
	d := uniformDemand(t, g, 1)
	res, err := Run(n, Config{Demand: d, Events: 500, Seed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SuccessRate() != 1 {
		t.Fatalf("probe success rate = %v, want 1", res.SuccessRate())
	}
}
