package core

import (
	"errors"
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// ErrStaleSubstrate reports an attempt to price or commit through a
// session whose all-pairs structure has not absorbed earlier channel
// closures: after CloseNode the session is dirty until FoldClose (or
// Rebuild) runs, and every read of the planes before that would see torn
// state. The guard turns what used to be a doc-comment invariant into a
// hard error.
var ErrStaleSubstrate = errors.New("core: substrate stale after CloseNode; FoldClose or Rebuild first")

// GrowSession is the commit path of the evaluation engine: where a
// JoinEvaluator prices a *virtual* joining user against an immutable
// substrate, a GrowSession owns a substrate that arrivals join
// permanently. Each arrival is priced by a zero-cost evaluator sharing
// the session's live all-pairs structure, and Commit folds the chosen
// strategy in — mutating the graph and extending the all-pairs structure
// in one O(n²) array pass (graph.ExtendWithNode) instead of the
// O(n·(n+m)) BFS rebuild a fresh NewJoinEvaluator would pay per arrival.
//
// Bit-identity contract: after any sequence of commits, the session's
// structure equals — bit for bit, path counts included — what
// AllPairsBFS would compute on the same graph. Deletions (channel
// closures, departures) invalidate incremental maintenance: CloseNode
// marks the session dirty, and every pricing or commit path returns
// ErrStaleSubstrate until the closures are absorbed — by FoldClose, the
// decremental repair (graph.FoldClose, the default), or by Rebuild, the
// from-scratch slow path kept as the differential oracle. Batching
// closures before one fold pays the repair once per epoch.
//
// A GrowSession is not safe for concurrent use; it is the single-writer
// spine of a growth run, while read-only evaluator clones may fan out
// between commits.
type GrowSession struct {
	g      *graph.Graph
	ap     *graph.AllPairs
	apT    *graph.AllPairs
	demand *traffic.Demand
	params Params
	lambda *lambdaTable
	remote float64

	// workers bounds the fan-out of the parallel substrate passes (the
	// row-sharded rebuild, the batched commit fold and the decremental
	// close fold); 1 runs everything inline. Results are bit-identical
	// at every setting.
	workers  int
	rebuilds int
	folds    int

	// dirty is set by any CloseNode that removed a channel and cleared
	// when the closures are folded (FoldClose) or rebuilt away; pending
	// accumulates the departed nodes of the current dirty window so one
	// fold absorbs the whole batch.
	dirty   bool
	pending []graph.NodeID

	// Reusable commit-path scratch: peer-set conversions and the batched
	// extender's buffers, so steady-state commits allocate nothing;
	// closeScratch is the decremental fold's counterpart.
	extendScratch graph.ExtendScratch
	closeScratch  graph.CloseScratch
	batchSets     []graph.PeerSet
	one           [1]Strategy
	oneID         [1]graph.NodeID
}

// NewGrowSession opens a session over g, which the session owns and
// mutates from then on. capacityHint reserves all-pairs capacity for the
// expected final node count (0 reserves nothing beyond the current size);
// remoteBalance is the balance granted on the peer side of every
// committed channel. The demand snapshot starts empty — install one with
// SetDemand before pricing.
func NewGrowSession(g *graph.Graph, params Params, capacityHint int, remoteBalance float64) (*GrowSession, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if remoteBalance < 0 {
		return nil, fmt.Errorf("%w: remote balance %v", ErrBadParams, remoteBalance)
	}
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	gs := &GrowSession{
		g:       g,
		ap:      ap,
		apT:     apT,
		demand:  &traffic.Demand{},
		params:  params,
		lambda:  emptyLambda(),
		remote:  remoteBalance,
		workers: 1,
	}
	if capacityHint > 0 {
		ap.Reserve(capacityHint)
		apT.Reserve(capacityHint)
		gs.extendScratch.Reserve(capacityHint)
	}
	return gs, nil
}

// RestoreGrowSession reopens a session over g with already-computed
// all-pairs planes — the checkpoint-restore path, and the parallel cold
// start (build the planes with g.AllPairsBFSParallel and transpose,
// then restore). The caller asserts that ap is bit-identical to what
// g.AllPairsBFS() would compute and apT to its transpose; nothing is
// recomputed, so RebuildCount starts at zero and a 10k-node session
// comes up in seconds instead of paying the all-pairs rebuild.
func RestoreGrowSession(g *graph.Graph, ap, apT *graph.AllPairs, params Params, capacityHint int, remoteBalance float64) (*GrowSession, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if remoteBalance < 0 {
		return nil, fmt.Errorf("%w: remote balance %v", ErrBadParams, remoteBalance)
	}
	if ap == nil || apT == nil {
		return nil, fmt.Errorf("%w: restore needs both plane directions", ErrBadParams)
	}
	if ap.N != g.NumNodes() || apT.N != g.NumNodes() {
		return nil, fmt.Errorf("%w: planes cover %d/%d nodes, substrate has %d",
			ErrBadParams, ap.N, apT.N, g.NumNodes())
	}
	gs := &GrowSession{
		g:       g,
		ap:      ap,
		apT:     apT,
		demand:  &traffic.Demand{},
		params:  params,
		lambda:  emptyLambda(),
		remote:  remoteBalance,
		workers: 1,
	}
	if capacityHint > 0 {
		ap.Reserve(capacityHint)
		apT.Reserve(capacityHint)
		gs.extendScratch.Reserve(capacityHint)
	}
	return gs, nil
}

// SetParallelism bounds the worker fan-out of the session's substrate
// passes: the row-sharded all-pairs rebuild (the deletion slow path) and
// the batched commit fold. Values ≤ 0 select all cores; every result is
// bit-identical at any setting, so this is purely a wall-clock knob.
func (gs *GrowSession) SetParallelism(workers int) {
	if workers <= 0 {
		gs.workers = 0
	} else {
		gs.workers = workers
	}
}

// RebuildCount reports how many full all-pairs rebuilds the session has
// paid — the deletion-slow-path odometer the growth engine's
// skip-isolated-closures optimization is measured by. Since the
// decremental fold landed, a churn steady state should hold this at
// zero; see FoldCount.
func (gs *GrowSession) RebuildCount() int { return gs.rebuilds }

// FoldCount reports how many decremental close folds the session has
// absorbed — the churn odometer that replaced RebuildCount on the fast
// path.
func (gs *GrowSession) FoldCount() int { return gs.folds }

// Dirty reports whether closures are pending: a dirty session prices
// and commits nothing until FoldClose or Rebuild runs.
func (gs *GrowSession) Dirty() bool { return gs.dirty }

// emptyLambda returns a built λ̂ table with no entries, so pricing before
// the first rate refresh sees zero rates instead of triggering an
// estimation over a demand snapshot that does not exist yet.
func emptyLambda() *lambdaTable {
	t := &lambdaTable{rates: map[graph.NodeID]float64{}}
	t.once.Do(func() {})
	return t
}

// Graph returns the session's substrate. Callers must not mutate it
// directly; channel and node changes go through Commit, Reattach and
// CloseNode so the all-pairs structure stays coherent.
func (gs *GrowSession) Graph() *graph.Graph { return gs.g }

// NumNodes reports the current substrate size.
func (gs *GrowSession) NumNodes() int { return gs.g.NumNodes() }

// AllPairs exposes the live forward all-pairs structure for read-only
// metric scans (diameter, mean distance, reachability).
func (gs *GrowSession) AllPairs() *graph.AllPairs { return gs.ap }

// SetDemand installs the existing-user demand snapshot used by evaluators
// from now on. The snapshot may lag the substrate: nodes beyond its
// coverage neither emit nor receive until the caller refreshes it, which
// is how the growth engine amortizes the O(n²) demand build over a
// refresh epoch.
func (gs *GrowSession) SetDemand(d *traffic.Demand) {
	if d == nil {
		d = &traffic.Demand{}
	}
	gs.demand = d
}

// Demand returns the current demand snapshot.
func (gs *GrowSession) Demand() *traffic.Demand { return gs.demand }

// SetRates installs the λ̂ snapshot used by fixed-rate pricing from now
// on. Peers absent from the table price at rate zero.
func (gs *GrowSession) SetRates(rates map[graph.NodeID]float64) {
	t := &lambdaTable{rates: rates}
	t.once.Do(func() {})
	gs.lambda = t
}

// Rates returns the current λ̂ snapshot — the table SetRates or
// RefreshRates installed (empty before the first refresh). Callers must
// not mutate it; it is shared with every live evaluator.
func (gs *GrowSession) Rates() map[graph.NodeID]float64 { return gs.lambda.rates }

// RemoteBalance reports the balance granted on the peer side of every
// committed channel — a session constant, persisted by checkpoints.
func (gs *GrowSession) RemoteBalance() float64 { return gs.remote }

// RefreshRates re-estimates λ̂ over the given candidate peers against the
// current structure and demand snapshot, installs the table, and returns
// it. One O(n²) estimation pass, the same EstimateRates the one-shot
// evaluator runs. Like every other read of the planes it refuses with
// ErrStaleSubstrate while closures are pending (Dirty) — estimating
// against torn rows would silently poison every fixed-rate price until
// the next refresh; fold or rebuild first.
func (gs *GrowSession) RefreshRates(candidates []graph.NodeID) (map[graph.NodeID]float64, error) {
	if gs.dirty {
		return nil, ErrStaleSubstrate
	}
	rates := gs.evaluator(nil, gs.params).EstimateRates(candidates)
	gs.SetRates(rates)
	return rates, nil
}

// Evaluator returns a zero-cost evaluator pricing one arrival against the
// current substrate: it shares the session's live all-pairs structure,
// demand and λ̂ snapshots instead of recomputing anything. pu is the
// arrival's recipient distribution (length NumNodes, the joinProbs
// convention); params carries the arrival's economic profile — budgets
// and rates vary per joiner while the session's base parameters shape
// committed channels.
//
// The evaluator is valid until the next Commit, Reattach, CloseNode,
// FoldClose or Rebuild; a session with unabsorbed closures refuses to
// hand one out at all (ErrStaleSubstrate) rather than let the caller
// price against torn state.
func (gs *GrowSession) Evaluator(pu []float64, params Params) (*JoinEvaluator, error) {
	if gs.dirty {
		return nil, ErrStaleSubstrate
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pu) != gs.g.NumNodes() {
		return nil, fmt.Errorf("%w: joinProbs covers %d nodes, substrate has %d",
			ErrBadParams, len(pu), gs.g.NumNodes())
	}
	return gs.evaluator(pu, params), nil
}

func (gs *GrowSession) evaluator(pu []float64, params Params) *JoinEvaluator {
	return &JoinEvaluator{
		g:      gs.g,
		ap:     gs.ap,
		apT:    gs.apT,
		demand: gs.demand,
		pu:     pu,
		params: params,
		n:      gs.g.NumNodes(),
		lambda: gs.lambda,
	}
}

// Commit folds one arrival into the substrate permanently: a fresh node
// joins with the strategy's channels (the joiner's lock on its side, the
// session's remote balance on the peer side), and the all-pairs structure
// is extended in place. Returns the new node's identifier.
//
// Commit is the batch fold of size one: it shares CommitBatch's
// machinery (and scratch) so the single-arrival growth loop and the
// market's batched cohorts exercise the same code path, and a
// steady-state commit allocates nothing.
func (gs *GrowSession) Commit(s Strategy) (graph.NodeID, error) {
	gs.one[0] = s
	ids, err := gs.commitBatch(gs.one[:], gs.oneID[:0])
	if err != nil {
		return graph.InvalidNode, err
	}
	return ids[0], nil
}

// CommitBatch folds a whole cohort of arrivals in one fused pass: node
// j joins with strategies[j]'s channels, identifiers are assigned in
// order, and the all-pairs structure is extended by the batched fold
// (graph.ExtendWithNodes) — bit-identical to len(strategies) sequential
// Commits, but streaming the distance plane once per chunk instead of
// once per winner, with the row passes sharded per SetParallelism.
//
// Every strategy must reference peers that predate the batch (the
// market's cohorts satisfy this by construction: bids are priced against
// the tick-start substrate). Strategies may be empty — the arrival joins
// isolated.
func (gs *GrowSession) CommitBatch(strategies []Strategy) ([]graph.NodeID, error) {
	return gs.commitBatch(strategies, make([]graph.NodeID, 0, len(strategies)))
}

func (gs *GrowSession) commitBatch(strategies []Strategy, ids []graph.NodeID) ([]graph.NodeID, error) {
	if gs.dirty {
		return nil, ErrStaleSubstrate
	}
	ev := gs.evaluator(nil, gs.params)
	for _, s := range strategies {
		if err := ev.ValidateStrategy(s); err != nil {
			return nil, err
		}
	}
	sets := gs.peerSets(strategies)
	for _, s := range strategies {
		u := gs.g.AddNode()
		ids = append(ids, u)
		if err := gs.openChannels(u, s); err != nil {
			return nil, err
		}
	}
	graph.ExtendWithNodes(gs.ap, gs.apT, sets, gs.workers, &gs.extendScratch)
	return ids, nil
}

// peerSets converts the strategies into the batched extender's peer
// multiset form — ascending distinct peers with channel multiplicities —
// reusing the session's buffers.
func (gs *GrowSession) peerSets(strategies []Strategy) []graph.PeerSet {
	if cap(gs.batchSets) < len(strategies) {
		gs.batchSets = make([]graph.PeerSet, len(strategies))
	}
	sets := gs.batchSets[:len(strategies)]
	for j, s := range strategies {
		set := &sets[j]
		set.Peers = set.Peers[:0]
		set.Mult = set.Mult[:0]
		for _, a := range s {
			// Insert in ascending order; strategies are small.
			i := len(set.Peers)
			for i > 0 && set.Peers[i-1] > a.Peer {
				i--
			}
			if i > 0 && set.Peers[i-1] == a.Peer {
				set.Mult[i-1]++
				continue
			}
			set.Peers = append(set.Peers, 0)
			set.Mult = append(set.Mult, 0)
			copy(set.Peers[i+1:], set.Peers[i:])
			copy(set.Mult[i+1:], set.Mult[i:])
			set.Peers[i] = a.Peer
			set.Mult[i] = 1
		}
	}
	return sets
}

// Reattach folds a strategy back in for an existing node whose channels
// were all closed (and the closures folded or rebuilt away since): the
// rewiring move of the growth engine. The node keeps its identifier and
// demand row.
func (gs *GrowSession) Reattach(v graph.NodeID, s Strategy) error {
	if gs.dirty {
		return ErrStaleSubstrate
	}
	if !gs.g.HasNode(v) {
		return fmt.Errorf("%w: reattach node %d not in substrate", ErrBadParams, v)
	}
	if gs.g.OutDegree(v) != 0 || gs.g.InDegree(v) != 0 {
		return fmt.Errorf("%w: reattach node %d still has channels", ErrBadParams, v)
	}
	if err := gs.evaluator(nil, gs.params).ValidateStrategy(s); err != nil {
		return err
	}
	for _, a := range s {
		if a.Peer == v {
			return fmt.Errorf("%w: reattach self-channel on node %d", ErrBadParams, v)
		}
	}
	inDist, inSigma, outDist, outSigma := gs.aggregates(s)
	if err := gs.openChannels(v, s); err != nil {
		return err
	}
	graph.ExtendWithNode(gs.ap, gs.apT, int(v), inDist, inSigma, outDist, outSigma)
	return nil
}

// aggregates computes the through-u joinStats of s over the current
// structure by loading it into a fresh incremental state — O(n·|S|), the
// same arrays ExtendWithNode consumes.
func (gs *GrowSession) aggregates(s Strategy) (inDist []uint16, inSigma []float64, outDist []uint16, outSigma []float64) {
	st := gs.evaluator(nil, gs.params).NewState()
	st.Load(s)
	return st.inDist, st.inSigma, st.outDist, st.outSigma
}

func (gs *GrowSession) openChannels(u graph.NodeID, s Strategy) error {
	for _, a := range s {
		if _, _, err := gs.g.AddChannel(u, a.Peer, a.Lock, gs.remote); err != nil {
			return err
		}
	}
	return nil
}

// CloseNode closes every channel incident to v — the departure (and the
// first half of the rewiring) move — and reports how many channels went.
// Any closure marks the session dirty: pricing and commits return
// ErrStaleSubstrate until FoldClose (or Rebuild) absorbs the pending
// departures, and closures batch — several CloseNodes then one fold pay
// the repair once. A CloseNode that removed nothing (the node was
// already isolated) leaves the session clean, so isolated departures
// stay free.
//
// If channel removal fails mid-iteration the node is left half-closed,
// but never silently: closed > 0 has already marked the session dirty,
// and the next FoldClose detects the partial closure and falls back to
// a full Rebuild, so the substrate re-coheres either way.
func (gs *GrowSession) CloseNode(v graph.NodeID) (closed int, err error) {
	if !gs.g.HasNode(v) {
		return 0, fmt.Errorf("%w: close node %d not in substrate", ErrBadParams, v)
	}
	defer func() {
		if closed > 0 {
			gs.dirty = true
			gs.pending = append(gs.pending, v)
		}
	}()
	for _, w := range gs.g.Neighbors(v) {
		for gs.g.HasEdgeBetween(v, w) || gs.g.HasEdgeBetween(w, v) {
			if err := gs.g.RemoveChannel(v, w); err != nil {
				return closed, err
			}
			closed++
		}
	}
	return closed, nil
}

// FoldClose absorbs every closure since the last fold or rebuild by
// decremental repair (graph.FoldClose): affected source rows are
// detected from the saved departed rows and columns and re-derived by
// per-source BFS, row-sharded across the session's parallelism bound.
// The result is bit-identical to Rebuild at any setting — Rebuild stays
// as the documented slow path and the differential oracle — at a cost
// proportional to the affected rows instead of all of them. Returns the
// number of rows repaired (0 on a clean session).
//
// If a pending departure is only half-closed (CloseNode errored
// mid-iteration), the fold's isolation precondition fails and the
// session falls back to a full Rebuild instead.
func (gs *GrowSession) FoldClose() (repaired int) {
	if !gs.dirty {
		return 0
	}
	for _, v := range gs.pending {
		if gs.g.OutDegree(v) != 0 || gs.g.InDegree(v) != 0 {
			gs.Rebuild()
			return 0
		}
	}
	repaired = graph.FoldClose(gs.ap, gs.apT, gs.g, gs.pending, gs.workers, &gs.closeScratch)
	gs.pending = gs.pending[:0]
	gs.dirty = false
	gs.folds++
	return repaired
}

// Rebuild recomputes the all-pairs structure from scratch — O(n·(n+m)),
// the deletion slow path FoldClose measures against — preserving the
// reserved capacity so subsequent commits stay allocation-free, and
// clearing any pending closures. The n source rows shard across the
// session's parallelism bound (SetParallelism); the result is
// bit-identical at any setting.
func (gs *GrowSession) Rebuild() {
	stride := gs.ap.Stride
	gs.ap = gs.g.AllPairsBFSParallel(gs.workers)
	gs.apT = gs.ap.TransposedParallel(gs.workers)
	gs.ap.Reserve(stride)
	gs.apT.Reserve(stride)
	gs.rebuilds++
	gs.dirty = false
	gs.pending = gs.pending[:0]
}
