package core

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// GrowSession is the commit path of the evaluation engine: where a
// JoinEvaluator prices a *virtual* joining user against an immutable
// substrate, a GrowSession owns a substrate that arrivals join
// permanently. Each arrival is priced by a zero-cost evaluator sharing
// the session's live all-pairs structure, and Commit folds the chosen
// strategy in — mutating the graph and extending the all-pairs structure
// in one O(n²) array pass (graph.ExtendWithNode) instead of the
// O(n·(n+m)) BFS rebuild a fresh NewJoinEvaluator would pay per arrival.
//
// Bit-identity contract: after any sequence of commits, the session's
// structure equals — bit for bit, path counts included — what
// AllPairsBFS would compute on the same graph. Deletions (channel
// closures, departures) are the slow path: they invalidate incremental
// maintenance, so callers close channels through the session and then
// Rebuild before pricing again. The growth engine batches its churn
// accordingly.
//
// A GrowSession is not safe for concurrent use; it is the single-writer
// spine of a growth run, while read-only evaluator clones may fan out
// between commits.
type GrowSession struct {
	g      *graph.Graph
	ap     *graph.AllPairs
	apT    *graph.AllPairs
	demand *traffic.Demand
	params Params
	lambda *lambdaTable
	remote float64
}

// NewGrowSession opens a session over g, which the session owns and
// mutates from then on. capacityHint reserves all-pairs capacity for the
// expected final node count (0 reserves nothing beyond the current size);
// remoteBalance is the balance granted on the peer side of every
// committed channel. The demand snapshot starts empty — install one with
// SetDemand before pricing.
func NewGrowSession(g *graph.Graph, params Params, capacityHint int, remoteBalance float64) (*GrowSession, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if remoteBalance < 0 {
		return nil, fmt.Errorf("%w: remote balance %v", ErrBadParams, remoteBalance)
	}
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	if capacityHint > 0 {
		ap.Reserve(capacityHint)
		apT.Reserve(capacityHint)
	}
	return &GrowSession{
		g:      g,
		ap:     ap,
		apT:    apT,
		demand: &traffic.Demand{},
		params: params,
		lambda: emptyLambda(),
		remote: remoteBalance,
	}, nil
}

// emptyLambda returns a built λ̂ table with no entries, so pricing before
// the first rate refresh sees zero rates instead of triggering an
// estimation over a demand snapshot that does not exist yet.
func emptyLambda() *lambdaTable {
	t := &lambdaTable{rates: map[graph.NodeID]float64{}}
	t.once.Do(func() {})
	return t
}

// Graph returns the session's substrate. Callers must not mutate it
// directly; channel and node changes go through Commit, Reattach and
// CloseNode so the all-pairs structure stays coherent.
func (gs *GrowSession) Graph() *graph.Graph { return gs.g }

// NumNodes reports the current substrate size.
func (gs *GrowSession) NumNodes() int { return gs.g.NumNodes() }

// AllPairs exposes the live forward all-pairs structure for read-only
// metric scans (diameter, mean distance, reachability).
func (gs *GrowSession) AllPairs() *graph.AllPairs { return gs.ap }

// SetDemand installs the existing-user demand snapshot used by evaluators
// from now on. The snapshot may lag the substrate: nodes beyond its
// coverage neither emit nor receive until the caller refreshes it, which
// is how the growth engine amortizes the O(n²) demand build over a
// refresh epoch.
func (gs *GrowSession) SetDemand(d *traffic.Demand) {
	if d == nil {
		d = &traffic.Demand{}
	}
	gs.demand = d
}

// Demand returns the current demand snapshot.
func (gs *GrowSession) Demand() *traffic.Demand { return gs.demand }

// SetRates installs the λ̂ snapshot used by fixed-rate pricing from now
// on. Peers absent from the table price at rate zero.
func (gs *GrowSession) SetRates(rates map[graph.NodeID]float64) {
	t := &lambdaTable{rates: rates}
	t.once.Do(func() {})
	gs.lambda = t
}

// RefreshRates re-estimates λ̂ over the given candidate peers against the
// current structure and demand snapshot, installs the table, and returns
// it. One O(n²) estimation pass, the same EstimateRates the one-shot
// evaluator runs.
func (gs *GrowSession) RefreshRates(candidates []graph.NodeID) map[graph.NodeID]float64 {
	rates := gs.evaluator(nil, gs.params).EstimateRates(candidates)
	gs.SetRates(rates)
	return rates
}

// Evaluator returns a zero-cost evaluator pricing one arrival against the
// current substrate: it shares the session's live all-pairs structure,
// demand and λ̂ snapshots instead of recomputing anything. pu is the
// arrival's recipient distribution (length NumNodes, the joinProbs
// convention); params carries the arrival's economic profile — budgets
// and rates vary per joiner while the session's base parameters shape
// committed channels.
//
// The evaluator is valid until the next Commit, Reattach, CloseNode or
// Rebuild; pricing through a stale evaluator reads torn state.
func (gs *GrowSession) Evaluator(pu []float64, params Params) (*JoinEvaluator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pu) != gs.g.NumNodes() {
		return nil, fmt.Errorf("%w: joinProbs covers %d nodes, substrate has %d",
			ErrBadParams, len(pu), gs.g.NumNodes())
	}
	return gs.evaluator(pu, params), nil
}

func (gs *GrowSession) evaluator(pu []float64, params Params) *JoinEvaluator {
	return &JoinEvaluator{
		g:      gs.g,
		ap:     gs.ap,
		apT:    gs.apT,
		demand: gs.demand,
		pu:     pu,
		params: params,
		n:      gs.g.NumNodes(),
		lambda: gs.lambda,
	}
}

// Commit folds one arrival into the substrate permanently: a fresh node
// joins with the strategy's channels (the joiner's lock on its side, the
// session's remote balance on the peer side), and the all-pairs structure
// is extended in place. Returns the new node's identifier.
func (gs *GrowSession) Commit(s Strategy) (graph.NodeID, error) {
	if err := gs.evaluator(nil, gs.params).ValidateStrategy(s); err != nil {
		return graph.InvalidNode, err
	}
	inDist, inSigma, outDist, outSigma := gs.aggregates(s)
	u := gs.g.AddNode()
	if err := gs.openChannels(u, s); err != nil {
		return graph.InvalidNode, err
	}
	graph.ExtendWithNode(gs.ap, gs.apT, int(u), inDist, inSigma, outDist, outSigma)
	return u, nil
}

// Reattach folds a strategy back in for an existing node whose channels
// were all closed (and the session rebuilt since): the rewiring move of
// the growth engine. The node keeps its identifier and demand row.
func (gs *GrowSession) Reattach(v graph.NodeID, s Strategy) error {
	if !gs.g.HasNode(v) {
		return fmt.Errorf("%w: reattach node %d not in substrate", ErrBadParams, v)
	}
	if gs.g.OutDegree(v) != 0 || gs.g.InDegree(v) != 0 {
		return fmt.Errorf("%w: reattach node %d still has channels", ErrBadParams, v)
	}
	if err := gs.evaluator(nil, gs.params).ValidateStrategy(s); err != nil {
		return err
	}
	for _, a := range s {
		if a.Peer == v {
			return fmt.Errorf("%w: reattach self-channel on node %d", ErrBadParams, v)
		}
	}
	inDist, inSigma, outDist, outSigma := gs.aggregates(s)
	if err := gs.openChannels(v, s); err != nil {
		return err
	}
	graph.ExtendWithNode(gs.ap, gs.apT, int(v), inDist, inSigma, outDist, outSigma)
	return nil
}

// aggregates computes the through-u joinStats of s over the current
// structure by loading it into a fresh incremental state — O(n·|S|), the
// same arrays ExtendWithNode consumes.
func (gs *GrowSession) aggregates(s Strategy) (inDist []int32, inSigma []float64, outDist []int32, outSigma []float64) {
	st := gs.evaluator(nil, gs.params).NewState()
	st.Load(s)
	return st.inDist, st.inSigma, st.outDist, st.outSigma
}

func (gs *GrowSession) openChannels(u graph.NodeID, s Strategy) error {
	for _, a := range s {
		if _, _, err := gs.g.AddChannel(u, a.Peer, a.Lock, gs.remote); err != nil {
			return err
		}
	}
	return nil
}

// CloseNode closes every channel incident to v — the departure (and the
// first half of the rewiring) move — and reports how many channels went.
// Deletions break incremental maintenance: the session must be Rebuilt
// before the next pricing or commit. Batch closures and pay for one
// rebuild.
func (gs *GrowSession) CloseNode(v graph.NodeID) (closed int, err error) {
	if !gs.g.HasNode(v) {
		return 0, fmt.Errorf("%w: close node %d not in substrate", ErrBadParams, v)
	}
	for _, w := range gs.g.Neighbors(v) {
		for gs.g.HasEdgeBetween(v, w) || gs.g.HasEdgeBetween(w, v) {
			if err := gs.g.RemoveChannel(v, w); err != nil {
				return closed, err
			}
			closed++
		}
	}
	return closed, nil
}

// Rebuild recomputes the all-pairs structure from scratch — O(n·(n+m)),
// the price of deletions — preserving the reserved capacity so subsequent
// commits stay allocation-free.
func (gs *GrowSession) Rebuild() {
	stride := gs.ap.Stride
	gs.ap = gs.g.AllPairsBFS()
	gs.apT = gs.ap.Transposed()
	gs.ap.Reserve(stride)
	gs.apT.Reserve(stride)
}
