package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// This file is the from-scratch evaluation path: it rebuilds the full
// joinStats table for a strategy on every call. The hot paths (the
// optimisers and the evaluator's public pricing methods) run on the
// incremental EvalState instead; the scratch build remains as the
// differential-testing oracle the state is verified against bit for bit
// (see evalstate_test.go and FuzzEvalStateMatchesScratch), and as the
// one-time reference-configuration build inside EstimateRates.

// joinStats aggregates the through-u shortest-path structure of G+S.
//
// For every existing node x:
//
//	inDist[x]   = min_{v_i ∈ peers} d(x, v_i)   (hops to reach u's door)
//	inSigma[x]  = Σ_{v_i achieving the min} mult(v_i)·σ(x, v_i)
//	outDist[x]  = min_{v_j ∈ peers} d(v_j, x)
//	outSigma[x] = Σ_{v_j achieving the min} mult(v_j)·σ(v_j, x)
//	outCap[x]   = Σ_{v_j achieving the min} φmult(v_j)·σ(v_j, x)
//
// where mult(v) counts parallel channels to v and φmult(v) is the sum of
// the capacity factors of those channels. A shortest s→r path through u
// has length inDist[s] + 2 + outDist[r]; the standard concatenation
// argument shows each such concatenation is a valid simple path whenever
// it achieves the true G+S distance.
type joinStats struct {
	inDist   []uint16
	inSigma  []float64
	outDist  []uint16
	outSigma []float64
	outCap   []float64
	peers    []graph.NodeID
}

func (e *JoinEvaluator) buildStats(s Strategy) joinStats {
	mult := make(map[graph.NodeID]float64, len(s))
	phiMult := make(map[graph.NodeID]float64, len(s))
	for _, a := range s {
		if !e.g.HasNode(a.Peer) {
			continue // defensive: invalid peers contribute nothing
		}
		mult[a.Peer]++
		phiMult[a.Peer] += e.params.capFactor(a.Lock)
	}
	peers := make([]graph.NodeID, 0, len(mult))
	for p := range mult {
		peers = append(peers, p)
	}
	// Deterministic iteration order keeps floating-point accumulation —
	// and therefore every downstream table — reproducible per seed. The
	// incremental EvalState re-sums tied contributions in this same
	// ascending-peer order, which is what makes the two paths bit-equal.
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	st := joinStats{
		inDist:   make([]uint16, e.n),
		inSigma:  make([]float64, e.n),
		outDist:  make([]uint16, e.n),
		outSigma: make([]float64, e.n),
		outCap:   make([]float64, e.n),
		peers:    peers,
	}
	for x := 0; x < e.n; x++ {
		st.inDist[x] = graph.Inf16
		st.outDist[x] = graph.Inf16
		fromX := e.ap.DistRow(x) // d(x, ·)
		fromXSig := e.ap.SigmaRow(x)
		toX := e.apT.DistRow(x) // d(·, x)
		toXSig := e.apT.SigmaRow(x)
		for _, v := range peers {
			if d := fromX[v]; d != graph.Inf16 {
				switch {
				case st.inDist[x] == graph.Inf16 || d < st.inDist[x]:
					st.inDist[x] = d
					st.inSigma[x] = mult[v] * fromXSig[v]
				case d == st.inDist[x]:
					st.inSigma[x] += mult[v] * fromXSig[v]
				}
			}
			if d := toX[v]; d != graph.Inf16 {
				switch {
				case st.outDist[x] == graph.Inf16 || d < st.outDist[x]:
					st.outDist[x] = d
					st.outSigma[x] = mult[v] * toXSig[v]
					st.outCap[x] = phiMult[v] * toXSig[v]
				case d == st.outDist[x]:
					st.outSigma[x] += mult[v] * toXSig[v]
					st.outCap[x] += phiMult[v] * toXSig[v]
				}
			}
		}
	}
	return st
}

// scratchTransitRate is the oracle version of TransitRate: a full stats
// rebuild followed by the O(n²) pair scan.
func (e *JoinEvaluator) scratchTransitRate(s Strategy) float64 {
	st := e.buildStats(s)
	if len(st.peers) == 0 {
		return 0
	}
	var total float64
	for src := 0; src < e.n; src++ {
		if st.inDist[src] == graph.Inf16 {
			continue
		}
		rowDist := e.ap.DistRow(src)
		rowSigma := e.ap.SigmaRow(src)
		for dst := 0; dst < e.n; dst++ {
			if dst == src || st.outDist[dst] == graph.Inf16 {
				continue
			}
			w := e.demand.PairRate(graph.NodeID(src), graph.NodeID(dst))
			if w == 0 {
				continue
			}
			dThru := int(st.inDist[src]) + 2 + int(st.outDist[dst])
			d0 := int(rowDist[dst])
			var frac float64
			switch {
			case rowDist[dst] == graph.Inf16 || dThru < d0:
				frac = 1
			case dThru == d0:
				sThru := st.inSigma[src] * st.outSigma[dst]
				frac = sThru / (rowSigma[dst] + sThru)
			default:
				continue
			}
			capRatio := 1.0
			if st.outSigma[dst] > 0 {
				capRatio = st.outCap[dst] / st.outSigma[dst]
			}
			total += w * frac * capRatio
		}
	}
	return total
}

// scratchFees is the oracle version of Fees.
func (e *JoinEvaluator) scratchFees(s Strategy) float64 {
	scale := e.params.OwnRate * e.params.FeePerHop
	st := e.buildStats(s)
	var sum float64
	for v := 0; v < e.n; v++ {
		p := e.pu[v]
		if p == 0 {
			continue
		}
		if st.outDist[v] == graph.Inf16 {
			if scale > 0 {
				return math.Inf(1)
			}
			continue
		}
		// d_{G+S}(u, v) = 1 + min_j d(v_j, v).
		sum += p * float64(1+int(st.outDist[v]))
	}
	return scale * sum
}

// scratchDisconnected is the oracle version of Disconnected.
func (e *JoinEvaluator) scratchDisconnected(s Strategy) bool {
	if e.n == 0 {
		return false
	}
	st := e.buildStats(s)
	if len(st.peers) == 0 {
		return true
	}
	for v := 0; v < e.n; v++ {
		if e.pu[v] > 0 && st.outDist[v] == graph.Inf16 {
			return true
		}
	}
	return false
}

// scratchRevenue is the oracle version of Revenue.
func (e *JoinEvaluator) scratchRevenue(s Strategy, model RevenueModel) float64 {
	switch model {
	case RevenueFixedRate:
		var sum float64
		for _, a := range s {
			rate := e.FixedRate(a.Peer)
			sum += rate * (0.5 + 0.5*e.params.capFactor(a.Lock))
		}
		return e.params.FAvg * sum
	default:
		return e.params.FAvg * e.scratchTransitRate(s)
	}
}

// scratchUtility is the oracle version of Utility. It does not advance
// the evaluation counter: oracles are free.
func (e *JoinEvaluator) scratchUtility(s Strategy, model RevenueModel) float64 {
	if e.scratchDisconnected(s) {
		return math.Inf(-1)
	}
	return e.scratchRevenue(s, model) - e.scratchFees(s) - e.Cost(s)
}

// scratchSimplified is the oracle version of Simplified.
func (e *JoinEvaluator) scratchSimplified(s Strategy, model RevenueModel) float64 {
	return e.scratchRevenue(s, model) - e.scratchFees(s)
}

// ScratchSimplified evaluates U'(S) through the from-scratch stats
// rebuild — the oracle path differential suites price against. Like every
// scratch method it leaves the evaluation counter alone: oracles are
// free. The market oracle (internal/market) uses it to reproduce the
// engine's realized-objective (regret) measurements bit for bit.
func (e *JoinEvaluator) ScratchSimplified(s Strategy, model RevenueModel) float64 {
	return e.scratchSimplified(s, model)
}

// ScratchGreedy is the oracle version of Greedy: the same Algorithm 1
// selection loop, with every marginal probe priced through the
// from-scratch stats rebuild instead of the incremental state. It exists
// for differential testing — the growth engine's arrival-by-arrival
// strategies are replayed against it bit for bit — and advances the
// evaluation counter exactly like Greedy so the Result matches in full.
func ScratchGreedy(e *JoinEvaluator, cfg GreedyConfig) (Result, error) {
	if cfg.Lock < 0 || math.IsNaN(cfg.Lock) {
		return Result{}, fmt.Errorf("%w: lock %v", ErrBadParams, cfg.Lock)
	}
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) {
		return Result{}, fmt.Errorf("%w: budget %v", ErrBadParams, cfg.Budget)
	}
	model := cfg.Model
	if model == 0 {
		model = RevenueFixedRate
	}
	utilityModel := cfg.UtilityModel
	if utilityModel == 0 {
		utilityModel = RevenueExact
	}
	perChannel := e.params.OnChainCost + cfg.Lock
	maxChannels := int(cfg.Budget / perChannel)
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = allNodes(e.g)
	}
	e.ResetEvaluations()

	available := append([]graph.NodeID(nil), candidates...)
	var (
		current     Strategy
		bestLen     int
		bestValue   = math.Inf(-1)
		prefixFound bool
	)
	for len(current) < maxChannels && len(available) > 0 {
		bestIdx := -1
		bestObj := math.Inf(-1)
		for i, v := range available {
			candidate := append(current.Clone(), Action{Peer: v, Lock: cfg.Lock})
			obj := e.scratchSimplified(candidate, model)
			e.evals++
			if obj > bestObj {
				bestObj = obj
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		current = append(current, Action{Peer: available[bestIdx], Lock: cfg.Lock})
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		if bestObj > bestValue {
			bestValue = bestObj
			bestLen = len(current)
			prefixFound = true
		}
	}
	if !prefixFound {
		result := Result{
			Strategy:  nil,
			Objective: e.scratchSimplified(nil, model),
			Utility:   e.scratchUtility(nil, utilityModel),
		}
		e.evals += 2
		result.Evaluations = e.Evaluations()
		return result, nil
	}
	bestPrefix := current[:bestLen].Clone()
	result := Result{
		Strategy:  bestPrefix,
		Objective: bestValue,
		Utility:   e.scratchUtility(bestPrefix, utilityModel),
	}
	e.evals++
	result.Evaluations = e.Evaluations()
	return result, nil
}
