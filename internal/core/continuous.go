package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// ContinuousConfig parametrises the §III-D continuous-capital algorithm.
type ContinuousConfig struct {
	// Budget is B_u.
	Budget float64
	// Candidates restricts the peers considered; nil means every node.
	Candidates []graph.NodeID
	// Model selects the revenue model; zero means RevenueFixedRate.
	Model RevenueModel
	// LockGrid lists the lock values the local search may assign to a
	// channel. Continuous amounts are explored by refining around the
	// incumbent; nil derives a geometric grid from the budget.
	LockGrid []float64
	// MaxIterations bounds the local-search loop; 0 means 1000.
	MaxIterations int
	// Epsilon is the relative improvement a move must achieve to be
	// accepted; 0 means 1e-9.
	Epsilon float64
}

// ContinuousSearch implements the §III-D sketch: maximise the benefit
// function U^b = C_u + U over strategies with arbitrary real-valued locks
// under the budget knapsack. Following the local-search technique of Lee
// et al. [29] for non-monotone submodular maximisation, the search
// repeatedly applies the best of {add, delete, swap, re-lock} moves until
// no move improves the objective by more than a (1+ε) factor. The paper
// targets a 1/5 approximation; experiment E6 validates the ratio against
// brute force.
func ContinuousSearch(e *JoinEvaluator, cfg ContinuousConfig) (Result, error) {
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) {
		return Result{}, fmt.Errorf("%w: budget %v", ErrBadParams, cfg.Budget)
	}
	model := cfg.Model
	if model == 0 {
		model = RevenueFixedRate
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 1000
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 1e-9
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = allNodes(e.g)
	}
	grid := cfg.LockGrid
	if grid == nil {
		grid = defaultLockGrid(e.params.OnChainCost, cfg.Budget)
	}
	sort.Float64s(grid)
	e.ResetEvaluations()

	// Seed with the best single channel, as local-search analyses
	// prescribe starting from the best singleton.
	current, value := bestSingleton(e, cfg.Budget, candidates, grid, model)
	if current == nil {
		return Result{
			Strategy:    nil,
			Objective:   e.Benefit(nil, model),
			Utility:     e.Utility(nil, RevenueExact),
			Evaluations: e.Evaluations(),
		}, nil
	}

	for iter := 0; iter < maxIter; iter++ {
		improved, next, nextValue := bestMove(e, current, value, cfg.Budget, candidates, grid, model, eps)
		if !improved {
			break
		}
		current, value = next, nextValue
	}
	return Result{
		Strategy:    current,
		Objective:   value,
		Utility:     e.Utility(current, RevenueExact),
		Evaluations: e.Evaluations(),
	}, nil
}

// bestSingleton returns the feasible single-channel strategy with maximal
// benefit, or nil when no channel is affordable. Probes run as push/pop
// deltas on the evaluator's incremental state.
func bestSingleton(e *JoinEvaluator, budget float64, candidates []graph.NodeID, grid []float64, model RevenueModel) (Strategy, float64) {
	var (
		best      Strategy
		bestValue = math.Inf(-1)
	)
	st := e.session()
	st.Reset()
	st.setLean(false)
	for _, v := range candidates {
		for _, lock := range grid {
			// Feasibility of a singleton is its own spent budget; the
			// strategy slice is materialised only for the incumbent.
			if e.params.OnChainCost+lock > budget+budgetTolerance {
				continue
			}
			a := Action{Peer: v, Lock: lock}
			st.Push(a)
			val := st.Benefit(model)
			st.Pop()
			if val > bestValue {
				bestValue = val
				best = Strategy{a}
			}
		}
	}
	return best, bestValue
}

// bestMove evaluates all add/delete/swap/re-lock moves and returns the
// best strictly improving one. Adds are priced as one push on the loaded
// incumbent; the per-element families (delete, re-lock, swap) load the
// incumbent-without-element base once and push each replacement on top,
// so every probe is an O(n) delta instead of a scratch rebuild.
func bestMove(e *JoinEvaluator, current Strategy, value, budget float64, candidates []graph.NodeID, grid []float64, model RevenueModel, eps float64) (bool, Strategy, float64) {
	threshold := value + eps*math.Abs(value) + eps
	bestValue := math.Inf(-1)
	var best Strategy

	st := e.session()
	st.Reset()
	st.setLean(false)
	// consider prices the base loaded into st plus one extra action.
	// Feasibility is baseSpent + (C + lock): bit-identical to
	// base.With(a).SpentBudget, whose final addition is exactly that
	// term. The candidate slice is materialised only when it becomes the
	// incumbent, so probes stay allocation-free.
	var (
		base      Strategy
		baseSpent float64
	)
	consider := func(a Action) {
		if baseSpent+(e.params.OnChainCost+a.Lock) > budget+budgetTolerance {
			return
		}
		st.Push(a)
		val := st.Benefit(model)
		st.Pop()
		if val > bestValue {
			bestValue = val
			best = base.With(a)
		}
	}

	used := make(map[graph.NodeID]bool, len(current))
	for _, a := range current {
		used[a.Peer] = true
	}
	// Adds.
	st.Load(current)
	base, baseSpent = current, current.SpentBudget(e.params.OnChainCost)
	for _, v := range candidates {
		if used[v] {
			continue
		}
		for _, lock := range grid {
			consider(Action{Peer: v, Lock: lock})
		}
	}
	// Deletes, re-locks and swaps.
	for i := range current {
		without := make(Strategy, 0, len(current)-1)
		without = append(without, current[:i]...)
		without = append(without, current[i+1:]...)
		st.Load(without)
		base, baseSpent = without, without.SpentBudget(e.params.OnChainCost)
		if baseSpent <= budget+budgetTolerance {
			if val := st.Benefit(model); val > bestValue {
				bestValue = val
				best = without
			}
		}
		for _, lock := range grid {
			if lock != current[i].Lock {
				consider(Action{Peer: current[i].Peer, Lock: lock})
			}
		}
		for _, v := range candidates {
			if used[v] && v != current[i].Peer {
				continue
			}
			if v == current[i].Peer {
				continue
			}
			for _, lock := range grid {
				consider(Action{Peer: v, Lock: lock})
			}
		}
	}
	if best != nil && bestValue > threshold {
		return true, best, bestValue
	}
	return false, current, value
}

// defaultLockGrid builds a geometric grid of lock values below the
// spendable budget, always including zero.
func defaultLockGrid(onChainCost, budget float64) []float64 {
	spendable := budget - onChainCost
	if spendable <= 0 {
		return []float64{0}
	}
	grid := []float64{0}
	for f := 1.0; f >= 1.0/64; f /= 2 {
		grid = append(grid, spendable*f)
	}
	return grid
}
