package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// The incremental engine's contract is bit-identity with the scratch
// build: after any push/pop sequence, every aggregate and every objective
// must equal — to the last bit — what buildStats and the scratch
// evaluation functions produce for the equivalent strategy slice. These
// tests enforce the contract over randomized graphs, strategies and
// session histories; FuzzEvalStateMatchesScratch extends the search to
// adversarial byte-driven histories.

func randomStateEvaluator(t testing.TB, rng *rand.Rand, n int, withCapFactor bool) *JoinEvaluator {
	t.Helper()
	var g *graph.Graph
	switch rng.Intn(3) {
	case 0:
		g = graph.BarabasiAlbert(n, 2, 10, rng)
	case 1:
		g = graph.ConnectedErdosRenyi(n, 0.3, 10, rng, 50)
	default:
		g = graph.ErdosRenyi(n, 0.15, 5, rng) // may be disconnected
	}
	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(g, dist, float64(n))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.7,
		FeePerHop:   0.3,
		OwnRate:     2,
	}
	if withCapFactor {
		params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/3) }
	}
	e, err := NewJoinEvaluator(g, dist, demand, params)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// requireStateMatchesScratch compares every aggregate and objective of
// the state against the scratch oracle for the state's current strategy.
func requireStateMatchesScratch(t testing.TB, e *JoinEvaluator, st *EvalState) {
	t.Helper()
	s := st.Strategy()
	ref := e.buildStats(s)
	if len(ref.peers) != len(st.peers) {
		t.Fatalf("strategy %v: peers %v vs scratch %v", s, st.peers, ref.peers)
	}
	for i := range ref.peers {
		if ref.peers[i] != st.peers[i] {
			t.Fatalf("strategy %v: peers %v vs scratch %v", s, st.peers, ref.peers)
		}
	}
	for x := 0; x < e.n; x++ {
		if st.inDist[x] != ref.inDist[x] || st.outDist[x] != ref.outDist[x] {
			t.Fatalf("strategy %v node %d: dist (%d,%d) vs scratch (%d,%d)",
				s, x, st.inDist[x], st.outDist[x], ref.inDist[x], ref.outDist[x])
		}
		if math.Float64bits(st.inSigma[x]) != math.Float64bits(ref.inSigma[x]) {
			t.Fatalf("strategy %v node %d: inSigma %v vs scratch %v (bit diff)",
				s, x, st.inSigma[x], ref.inSigma[x])
		}
		if math.Float64bits(st.outSigma[x]) != math.Float64bits(ref.outSigma[x]) {
			t.Fatalf("strategy %v node %d: outSigma %v vs scratch %v (bit diff)",
				s, x, st.outSigma[x], ref.outSigma[x])
		}
		if math.Float64bits(st.outCap[x]) != math.Float64bits(ref.outCap[x]) {
			t.Fatalf("strategy %v node %d: outCap %v vs scratch %v (bit diff)",
				s, x, st.outCap[x], ref.outCap[x])
		}
	}
	if got, want := st.Cost(), e.Cost(s); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("strategy %v: Cost %v vs scratch %v", s, got, want)
	}
	if got, want := st.Disconnected(), e.scratchDisconnected(s); got != want {
		t.Fatalf("strategy %v: Disconnected %v vs scratch %v", s, got, want)
	}
	if got, want := st.Fees(), e.scratchFees(s); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("strategy %v: Fees %v vs scratch %v", s, got, want)
	}
	if got, want := st.TransitRate(), e.scratchTransitRate(s); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("strategy %v: TransitRate %v vs scratch %v", s, got, want)
	}
	for _, model := range []RevenueModel{RevenueExact, RevenueFixedRate} {
		if got, want := st.Utility(model), e.scratchUtility(s, model); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("strategy %v model %v: Utility %v vs scratch %v", s, model, got, want)
		}
		if got, want := st.Simplified(model), e.scratchSimplified(s, model); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("strategy %v model %v: Simplified %v vs scratch %v", s, model, got, want)
		}
	}
}

// TestEvalStateMatchesScratchRandomHistories drives sessions through long
// random push/pop histories — duplicate peers, zero locks, invalid peers
// — and checks bit-identity with the scratch build after every step.
func TestEvalStateMatchesScratchRandomHistories(t *testing.T) {
	locks := []float64{0, 0.5, 1, 2, 5}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		n := 6 + rng.Intn(10)
		e := randomStateEvaluator(t, rng, n, trial%2 == 1)
		st := e.NewState()
		for step := 0; step < 60; step++ {
			if st.Depth() > 0 && rng.Float64() < 0.4 {
				st.Pop()
			} else {
				peer := graph.NodeID(rng.Intn(n + 2)) // may be invalid
				st.Push(Action{Peer: peer, Lock: locks[rng.Intn(len(locks))]})
			}
			requireStateMatchesScratch(t, e, st)
		}
		st.Reset()
		if st.Depth() != 0 || len(st.peers) != 0 {
			t.Fatalf("trial %d: Reset left depth %d, peers %v", trial, st.Depth(), st.peers)
		}
		requireStateMatchesScratch(t, e, st)
	}
}

// TestEvalStateLoadMatchesScratch prices whole random strategies through
// Load and cross-checks the evaluator's public one-shot methods, which
// route through the same session.
func TestEvalStateLoadMatchesScratch(t *testing.T) {
	locks := []float64{0, 1, 2.5, 4}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		n := 5 + rng.Intn(12)
		e := randomStateEvaluator(t, rng, n, trial%2 == 0)
		st := e.NewState()
		for round := 0; round < 20; round++ {
			size := rng.Intn(6)
			s := make(Strategy, size)
			for i := range s {
				s[i] = Action{
					Peer: graph.NodeID(rng.Intn(n + 1)),
					Lock: locks[rng.Intn(len(locks))],
				}
			}
			st.Load(s)
			requireStateMatchesScratch(t, e, st)
			for _, model := range []RevenueModel{RevenueExact, RevenueFixedRate} {
				if got, want := e.Utility(s, model), e.scratchUtility(s, model); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("public Utility(%v, %v) = %v, scratch %v", s, model, got, want)
				}
			}
			if got, want := e.Fees(s), e.scratchFees(s); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("public Fees(%v) = %v, scratch %v", s, got, want)
			}
			if got, want := e.TransitRate(s), e.scratchTransitRate(s); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("public TransitRate(%v) = %v, scratch %v", s, got, want)
			}
		}
	}
}

// TestEvalStatePopRestoresBitwise pushes a batch, snapshots, pushes and
// pops more, and verifies the snapshot is restored exactly.
func TestEvalStatePopRestoresBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := randomStateEvaluator(t, rng, 12, true)
	st := e.NewState()
	st.Load(Strategy{{Peer: 3, Lock: 1}, {Peer: 7, Lock: 0}, {Peer: 3, Lock: 2}})
	base := struct {
		utility float64
		fees    float64
		transit float64
		cost    float64
	}{st.Utility(RevenueExact), st.Fees(), st.TransitRate(), st.Cost()}
	for i := 0; i < 10; i++ {
		st.Push(Action{Peer: graph.NodeID(rng.Intn(12)), Lock: float64(rng.Intn(4))})
	}
	for i := 0; i < 10; i++ {
		st.Pop()
	}
	if got := st.Utility(RevenueExact); math.Float64bits(got) != math.Float64bits(base.utility) {
		t.Fatalf("Utility after push/pop churn = %v, want %v", got, base.utility)
	}
	if got := st.Fees(); math.Float64bits(got) != math.Float64bits(base.fees) {
		t.Fatalf("Fees after churn = %v, want %v", got, base.fees)
	}
	if got := st.TransitRate(); math.Float64bits(got) != math.Float64bits(base.transit) {
		t.Fatalf("TransitRate after churn = %v, want %v", got, base.transit)
	}
	if got := st.Cost(); math.Float64bits(got) != math.Float64bits(base.cost) {
		t.Fatalf("Cost after churn = %v, want %v", got, base.cost)
	}
}

// TestEvalStatePopEmptyPanics pins the misuse contract.
func TestEvalStatePopEmptyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := randomStateEvaluator(t, rng, 5, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty state did not panic")
		}
	}()
	e.NewState().Pop()
}

// TestLambdaTableSharedAcrossClones verifies the once-guarded λ̂ fix:
// clones created before the first FixedRate call share one table instead
// of each rebuilding it.
func TestLambdaTableSharedAcrossClones(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := randomStateEvaluator(t, rng, 10, false)
	c1 := e.Clone()
	c2 := e.Clone()
	want := c1.FixedRate(3) // first build happens through a clone
	if e.lambda.rates == nil {
		t.Fatal("build through a clone did not populate the shared table")
	}
	if got := c2.FixedRate(3); got != want {
		t.Fatalf("second clone λ̂ = %v, want %v", got, want)
	}
	if got := e.FixedRate(3); got != want {
		t.Fatalf("original λ̂ = %v, want %v", got, want)
	}
	// SetFixedRates is local: it replaces the table on this evaluator
	// only, leaving prior clones on the shared build.
	e.SetFixedRates(map[graph.NodeID]float64{3: 42})
	if got := e.FixedRate(3); got != 42 {
		t.Fatalf("override λ̂ = %v, want 42", got)
	}
	if got := c1.FixedRate(3); got != want {
		t.Fatalf("clone after override λ̂ = %v, want %v", got, want)
	}
}

// FuzzEvalStateMatchesScratch feeds byte-driven session histories —
// graph shape, capacity-factor toggle, and an arbitrary push/pop/check
// program — through the differential harness.
func FuzzEvalStateMatchesScratch(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x42, 0x07, 0x99, 0x03})
	f.Add(int64(7), []byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50})
	f.Add(int64(42), []byte{0x05, 0x05, 0x05, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		if len(program) == 0 || len(program) > 256 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(program[0]%12)
		e := randomStateEvaluator(t, rng, n, program[0]&0x80 != 0)
		st := e.NewState()
		for i := 1; i < len(program); i++ {
			op := program[i]
			switch {
			case op&0x03 == 0 && st.Depth() > 0:
				st.Pop()
			default:
				st.Push(Action{
					Peer: graph.NodeID(int(op>>2) % (n + 2)),
					Lock: float64(op&0x1f) / 4,
				})
			}
			// Checking every step keeps the counterexample minimal when
			// the fuzzer finds one.
			requireStateMatchesScratch(t, e, st)
		}
	})
}
