package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// testParams returns a plain parameter set with unit-ish values.
func testParams() Params {
	return Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.5,
		FeePerHop:   0.4,
		OwnRate:     2,
	}
}

func uniformRates(n int, per float64) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = per
	}
	return rates
}

func newEvaluator(t *testing.T, g *graph.Graph, d txdist.Distribution, params Params) *JoinEvaluator {
	t.Helper()
	demand, err := traffic.NewDemand(g, d, uniformRates(g.NumNodes(), 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	e, err := NewJoinEvaluator(g, d, demand, params)
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}
	return e
}

// materialize clones g and adds the joining user as a real node with the
// strategy's channels, the ground-truth construction the evaluator must
// agree with.
func materialize(t *testing.T, g *graph.Graph, s Strategy) (*graph.Graph, graph.NodeID) {
	t.Helper()
	mg := g.Clone()
	u := mg.AddNode()
	for _, a := range s {
		if _, _, err := mg.AddChannel(u, a.Peer, 1, 1); err != nil {
			t.Fatalf("materialize channel: %v", err)
		}
	}
	return mg, u
}

func TestNewJoinEvaluatorValidation(t *testing.T) {
	g := graph.Star(3, 1)
	demand, err := traffic.NewDemand(g, txdist.Uniform{}, uniformRates(4, 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	if _, err := NewJoinEvaluator(g, txdist.Uniform{}, demand, Params{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero params error = %v, want ErrBadParams", err)
	}
	other := graph.Star(5, 1)
	if _, err := NewJoinEvaluator(other, txdist.Uniform{}, demand, testParams()); !errors.Is(err, ErrBadParams) {
		t.Fatalf("mismatched demand error = %v, want ErrBadParams", err)
	}
}

func TestTransitRateHandComputed(t *testing.T) {
	// G is the path 0-1-2. Only node 0 transacts, always with node 2, at
	// rate 9. Joining u with channels to 0 and 2 creates a second
	// shortest 0→2 route (0,u,2) tying the existing (0,1,2): u captures
	// half the flow.
	g := graph.Path(3, 1)
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 1}, {0, 0, 0}, {0, 0, 0}},
		Rates: []float64{9, 0, 0},
	}
	e, err := NewJoinEvaluator(g, txdist.Uniform{}, demand, testParams())
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}
	s := Strategy{{Peer: 0, Lock: 1}, {Peer: 2, Lock: 1}}
	if got := e.TransitRate(s); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("TransitRate = %v, want 4.5", got)
	}
	// Channels to 0 and 1 give u no transit: the through route 0→u→1→2
	// has length 3 > 2.
	s = Strategy{{Peer: 0, Lock: 1}, {Peer: 1, Lock: 1}}
	if got := e.TransitRate(s); got != 0 {
		t.Fatalf("TransitRate = %v, want 0", got)
	}
}

func TestTransitRateShortcut(t *testing.T) {
	// On a long path, bridging the endpoints captures all end-to-end
	// flow: 0→u→4 (length 2) beats 0→…→4 (length 4).
	g := graph.Path(5, 1)
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 0, 0, 1}, {}, {}, {}, {}},
		Rates: []float64{3, 0, 0, 0, 0},
	}
	// Pad rows so the matrix is square.
	for i := 1; i < 5; i++ {
		demand.P[i] = make([]float64, 5)
	}
	e, err := NewJoinEvaluator(g, txdist.Uniform{}, demand, testParams())
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}
	s := Strategy{{Peer: 0}, {Peer: 4}}
	if got := e.TransitRate(s); math.Abs(got-3) > 1e-9 {
		t.Fatalf("TransitRate = %v, want 3", got)
	}
}

func TestTransitRateAgainstMaterializedOracle(t *testing.T) {
	// The virtual evaluator must agree with weighted node betweenness on
	// the materialized graph across random topologies and strategies.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		g := graph.ConnectedErdosRenyi(9, 0.28, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 1}
		demand, err := traffic.NewDemand(g, dist, uniformRates(g.NumNodes(), 1+rng.Float64()))
		if err != nil {
			t.Fatalf("NewDemand: %v", err)
		}
		e, err := NewJoinEvaluator(g, dist, demand, testParams())
		if err != nil {
			t.Fatalf("NewJoinEvaluator: %v", err)
		}
		s := randomStrategy(g.NumNodes(), rng)
		mg, u := materialize(t, g, s)
		transit := mg.NodeBetweenness(demand.PairWeight())
		want := transit[u]
		if got := e.TransitRate(s); math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d strategy %v: TransitRate = %v, oracle = %v", trial, s, got, want)
		}
	}
}

func TestTransitRateParallelChannels(t *testing.T) {
	// Parallel channels multiply the through-path count in tie cases,
	// increasing the captured share exactly as the multigraph oracle
	// computes.
	g := graph.Path(3, 1)
	demand := &traffic.Demand{
		P:     [][]float64{{0, 0, 1}, {0, 0, 0}, {0, 0, 0}},
		Rates: []float64{8, 0, 0},
	}
	e, err := NewJoinEvaluator(g, txdist.Uniform{}, demand, testParams())
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}
	// Two channels to 0, one to 2: through-paths 0→u→2 counted twice
	// (entry multiplicity 2): frac = 2/(1+2).
	s := Strategy{{Peer: 0}, {Peer: 0}, {Peer: 2}}
	want := 8 * 2.0 / 3.0
	if got := e.TransitRate(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TransitRate = %v, want %v", got, want)
	}
	mg, u := materialize(t, g, s)
	transit := mg.NodeBetweenness(demand.PairWeight())
	if math.Abs(transit[u]-want) > 1e-9 {
		t.Fatalf("oracle disagrees: %v vs %v", transit[u], want)
	}
}

func TestFeesAgainstMaterializedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := graph.ConnectedErdosRenyi(8, 0.3, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 1.3}
		e := newEvaluator(t, g, dist, testParams())
		s := randomStrategy(g.NumNodes(), rng)
		mg, u := materialize(t, g, s)
		du := mg.BFS(u)
		pu := e.JoinProbs()
		want := 0.0
		for v := 0; v < g.NumNodes(); v++ {
			if pu[v] == 0 {
				continue
			}
			if du[v] == graph.Unreachable {
				want = math.Inf(1)
				break
			}
			want += pu[v] * float64(du[v])
		}
		if !math.IsInf(want, 1) {
			want *= testParams().OwnRate * testParams().FeePerHop
		}
		got := e.Fees(s)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("trial %d: Fees = %v, oracle = %v", trial, got, want)
		}
		if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d strategy %v: Fees = %v, oracle = %v", trial, s, got, want)
		}
	}
}

func TestFeesDisconnected(t *testing.T) {
	// Two components; connecting only to one leaves positive-probability
	// recipients unreachable → infinite fees.
	g := graph.New(4)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(2, 3, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if got := e.Fees(Strategy{{Peer: 0}}); !math.IsInf(got, 1) {
		t.Fatalf("Fees = %v, want +Inf", got)
	}
	if !e.Disconnected(Strategy{{Peer: 0}}) {
		t.Fatal("Disconnected = false for partial connection")
	}
	if e.Disconnected(Strategy{{Peer: 0}, {Peer: 2}}) {
		t.Fatal("Disconnected = true despite full coverage")
	}
}

func TestUtilityComposition(t *testing.T) {
	g := graph.Star(4, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	s := Strategy{{Peer: 0, Lock: 3}, {Peer: 1, Lock: 2}}
	rev := e.Revenue(s, RevenueExact)
	fees := e.Fees(s)
	cost := e.Cost(s)
	wantCost := 2*1.0 + 0.05*5
	if math.Abs(cost-wantCost) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", cost, wantCost)
	}
	if got := e.Utility(s, RevenueExact); math.Abs(got-(rev-fees-cost)) > 1e-9 {
		t.Fatalf("Utility = %v, want %v", got, rev-fees-cost)
	}
	if got := e.Simplified(s, RevenueExact); math.Abs(got-(rev-fees)) > 1e-9 {
		t.Fatalf("Simplified = %v, want %v", got, rev-fees)
	}
	wantBenefit := testParams().OwnRate*testParams().OnChainCost/2 + e.Utility(s, RevenueExact)
	if got := e.Benefit(s, RevenueExact); math.Abs(got-wantBenefit) > 1e-9 {
		t.Fatalf("Benefit = %v, want %v", got, wantBenefit)
	}
}

func TestUtilityDisconnectedIsNegInf(t *testing.T) {
	g := graph.Star(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if got := e.Utility(nil, RevenueExact); !math.IsInf(got, -1) {
		t.Fatalf("Utility(∅) = %v, want −Inf", got)
	}
}

func TestEstimateRatesSumEqualsFullTransit(t *testing.T) {
	// Entry and exit halves must re-assemble into the total transit rate
	// of the fully-connected reference configuration.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		g := graph.ConnectedErdosRenyi(8, 0.3, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 0.8}
		e := newEvaluator(t, g, dist, testParams())
		all := make([]graph.NodeID, g.NumNodes())
		full := make(Strategy, g.NumNodes())
		for i := range all {
			all[i] = graph.NodeID(i)
			full[i] = Action{Peer: graph.NodeID(i)}
		}
		rates := e.EstimateRates(all)
		var sum float64
		for _, r := range rates {
			sum += r
		}
		want := e.TransitRate(full)
		if math.Abs(sum-want) > 1e-6 {
			t.Fatalf("trial %d: Σλ̂ = %v, full transit = %v", trial, sum, want)
		}
	}
}

func TestFixedRateLazyAndOverride(t *testing.T) {
	g := graph.Star(4, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if r := e.FixedRate(0); r < 0 {
		t.Fatalf("FixedRate(0) = %v", r)
	}
	e.SetFixedRates(map[graph.NodeID]float64{2: 7})
	if r := e.FixedRate(2); r != 7 {
		t.Fatalf("override FixedRate(2) = %v, want 7", r)
	}
	if r := e.FixedRate(0); r != 0 {
		t.Fatalf("non-overridden FixedRate(0) = %v, want 0", r)
	}
}

func TestRevenueFixedRateModular(t *testing.T) {
	// Under the fixed-rate model, revenue must be exactly additive.
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	a := Action{Peer: 0, Lock: 1}
	b := Action{Peer: 1, Lock: 2}
	ra := e.Revenue(Strategy{a}, RevenueFixedRate)
	rb := e.Revenue(Strategy{b}, RevenueFixedRate)
	rab := e.Revenue(Strategy{a, b}, RevenueFixedRate)
	if math.Abs(rab-(ra+rb)) > 1e-9 {
		t.Fatalf("fixed-rate revenue not modular: %v vs %v + %v", rab, ra, rb)
	}
}

func TestCapacityFactorGatesRevenue(t *testing.T) {
	// With φ(l) = min(1, l/10), a zero-lock channel forwards nothing on
	// exit, halving its fixed-rate revenue relative to a saturated lock.
	params := testParams()
	params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/10) }
	g := graph.Star(5, 1)
	demand, err := traffic.NewDemand(g, txdist.Uniform{}, uniformRates(6, 1))
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	e, err := NewJoinEvaluator(g, txdist.Uniform{}, demand, params)
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}
	// Use a leaf peer: in the fully-connected reference configuration the
	// leaf channels carry the leaf↔leaf shortcut traffic (the hub channel
	// carries none, since every node is reached directly).
	zero := e.Revenue(Strategy{{Peer: 1, Lock: 0}}, RevenueFixedRate)
	full := e.Revenue(Strategy{{Peer: 1, Lock: 10}}, RevenueFixedRate)
	if full <= 0 {
		t.Fatal("saturated revenue should be positive for a leaf channel")
	}
	if math.Abs(zero-full/2) > 1e-9 {
		t.Fatalf("zero-lock revenue = %v, want half of %v", zero, full)
	}
	// Exact model: capacity factor scales the exit share.
	exactZero := e.Revenue(Strategy{{Peer: 0, Lock: 0}, {Peer: 1, Lock: 0}}, RevenueExact)
	if exactZero != 0 {
		t.Fatalf("exact revenue with zero locks = %v, want 0", exactZero)
	}
}

func TestValidateStrategy(t *testing.T) {
	g := graph.Star(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if err := e.ValidateStrategy(Strategy{{Peer: 1, Lock: 2}}); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
	if err := e.ValidateStrategy(Strategy{{Peer: 99}}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad peer error = %v", err)
	}
	if err := e.ValidateStrategy(Strategy{{Peer: 0, Lock: -1}}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative lock error = %v", err)
	}
}

func TestEvaluationCounter(t *testing.T) {
	g := graph.Star(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	e.ResetEvaluations()
	e.Simplified(Strategy{{Peer: 0}}, RevenueExact)
	e.Utility(Strategy{{Peer: 0}}, RevenueExact)
	if got := e.Evaluations(); got != 2 {
		t.Fatalf("Evaluations = %d, want 2", got)
	}
}

// randomStrategy draws 1..4 actions over random peers (duplicates allowed
// with probability ~1/4) with random locks.
func randomStrategy(n int, rng *rand.Rand) Strategy {
	size := rng.Intn(4) + 1
	s := make(Strategy, 0, size)
	for i := 0; i < size; i++ {
		s = append(s, Action{
			Peer: graph.NodeID(rng.Intn(n)),
			Lock: float64(rng.Intn(10)),
		})
	}
	return s
}

func TestBenefitPositivityHolds(t *testing.T) {
	g := graph.Star(4, 1)
	// Favourable regime: heavy own traffic, cheap fees — joining beats
	// staying on-chain.
	params := testParams()
	params.OwnRate = 50
	params.FeePerHop = 0.01
	e := newEvaluator(t, g, txdist.Uniform{}, params)
	s := Strategy{{Peer: 0, Lock: 1}}
	if !e.BenefitPositivityHolds(s, 2) {
		t.Fatal("positivity condition should hold in the favourable regime")
	}
	// Tiny own traffic: the on-chain alternative is nearly free and the
	// condition fails.
	params.OwnRate = 0.001
	params.FeePerHop = 1
	e = newEvaluator(t, g, txdist.Uniform{}, params)
	if e.BenefitPositivityHolds(s, 10) {
		t.Fatal("positivity condition should fail with negligible own traffic")
	}
	// Disconnected strategies (infinite fees) always fail.
	if e.BenefitPositivityHolds(nil, 2) {
		t.Fatal("positivity condition held for the empty strategy")
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	g := graph.Star(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if e.Graph() != g {
		t.Fatal("Graph accessor returned a different graph")
	}
	if e.Params().OnChainCost != testParams().OnChainCost {
		t.Fatal("Params accessor mismatch")
	}
}

func TestGreedyWithRestrictedCandidates(t *testing.T) {
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	res, err := Greedy(e, GreedyConfig{
		Budget:     10,
		Lock:       1,
		Candidates: []graph.NodeID{2, 3},
	})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	for _, a := range res.Strategy {
		if a.Peer != 2 && a.Peer != 3 {
			t.Fatalf("greedy used non-candidate peer %d", a.Peer)
		}
	}
}

func TestDiscreteWithRestrictedCandidates(t *testing.T) {
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	res, err := DiscreteSearch(e, DiscreteConfig{
		Budget:     6,
		Unit:       1,
		Candidates: []graph.NodeID{0, 4},
	})
	if err != nil {
		t.Fatalf("DiscreteSearch: %v", err)
	}
	for _, a := range res.Strategy {
		if a.Peer != 0 && a.Peer != 4 {
			t.Fatalf("discrete used non-candidate peer %d", a.Peer)
		}
	}
}

func TestContinuousWithRestrictedCandidates(t *testing.T) {
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	res, err := ContinuousSearch(e, ContinuousConfig{
		Budget:     6,
		Candidates: []graph.NodeID{1},
	})
	if err != nil {
		t.Fatalf("ContinuousSearch: %v", err)
	}
	for _, a := range res.Strategy {
		if a.Peer != 1 {
			t.Fatalf("continuous used non-candidate peer %d", a.Peer)
		}
	}
}
