package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// TestCloseFoldMatchesRebuild is the session-level decremental
// differential: random histories of commits, batched closures, folds and
// reattachments, with the folded structure compared bit-for-bit against
// a from-scratch BFS after every fold, across worker counts.
func TestCloseFoldMatchesRebuild(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			gs, err := NewGrowSession(graph.BarabasiAlbert(8, 2, 1, rand.New(rand.NewSource(5))), testParams(), 48, 1)
			if err != nil {
				t.Fatalf("NewGrowSession: %v", err)
			}
			gs.SetParallelism(workers)
			folds := 0
			for round := 0; round < 10; round++ {
				// A few arrivals.
				for a := rng.Intn(3); a > 0; a-- {
					var s Strategy
					for c := rng.Intn(3); c > 0; c-- {
						s = append(s, Action{Peer: graph.NodeID(rng.Intn(gs.NumNodes())), Lock: 1})
					}
					if _, err := gs.Commit(s); err != nil {
						t.Fatalf("round %d: Commit: %v", round, err)
					}
				}
				// A batch of 1..2 departures, then one fold.
				closedAny := false
				for d := 1 + rng.Intn(2); d > 0; d-- {
					v := graph.NodeID(rng.Intn(gs.NumNodes()))
					closed, err := gs.CloseNode(v)
					if err != nil {
						t.Fatalf("round %d: CloseNode(%d): %v", round, v, err)
					}
					closedAny = closedAny || closed > 0
				}
				if gs.Dirty() != closedAny {
					t.Fatalf("round %d: Dirty = %v after closures that removed %v", round, gs.Dirty(), closedAny)
				}
				gs.FoldClose()
				if closedAny {
					folds++
				}
				if gs.Dirty() {
					t.Fatalf("round %d: still dirty after FoldClose", round)
				}
				requireSessionMatchesRebuild(t, fmt.Sprintf("round %d fold", round), gs)
			}
			if gs.RebuildCount() != 0 {
				t.Fatalf("history paid %d rebuilds, want 0 (folds only)", gs.RebuildCount())
			}
			if gs.FoldCount() != folds {
				t.Fatalf("FoldCount = %d, want %d", gs.FoldCount(), folds)
			}
		})
	}
}

// TestGrowSessionStaleSubstrateErrors pins the dirty-session guard:
// after a closure, every pricing and commit surface refuses with
// ErrStaleSubstrate instead of silently reading torn planes, and both
// FoldClose and Rebuild restore service.
func TestGrowSessionStaleSubstrateErrors(t *testing.T) {
	gs, err := NewGrowSession(graph.Star(4, 1), testParams(), 16, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	closeLeaf := func(v graph.NodeID) {
		t.Helper()
		closed, err := gs.CloseNode(v)
		if err != nil || closed == 0 {
			t.Fatalf("CloseNode(%d) = (%d, %v), want real closures", v, closed, err)
		}
		if !gs.Dirty() {
			t.Fatal("session not dirty after a real closure")
		}
	}
	requireStale := func() {
		t.Helper()
		pu := make([]float64, gs.NumNodes())
		if _, err := gs.Evaluator(pu, testParams()); !errors.Is(err, ErrStaleSubstrate) {
			t.Fatalf("Evaluator on dirty session: err = %v, want ErrStaleSubstrate", err)
		}
		if _, err := gs.Commit(nil); !errors.Is(err, ErrStaleSubstrate) {
			t.Fatalf("Commit on dirty session: err = %v, want ErrStaleSubstrate", err)
		}
		if _, err := gs.CommitBatch([]Strategy{nil}); !errors.Is(err, ErrStaleSubstrate) {
			t.Fatalf("CommitBatch on dirty session: err = %v, want ErrStaleSubstrate", err)
		}
		if err := gs.Reattach(1, nil); !errors.Is(err, ErrStaleSubstrate) {
			t.Fatalf("Reattach on dirty session: err = %v, want ErrStaleSubstrate", err)
		}
		if rates, err := gs.RefreshRates(nil); !errors.Is(err, ErrStaleSubstrate) || rates != nil {
			t.Fatalf("RefreshRates on dirty session: (%v, %v), want (nil, ErrStaleSubstrate)", rates, err)
		}
	}
	requireServing := func(tag string) {
		t.Helper()
		pu := make([]float64, gs.NumNodes())
		if _, err := gs.Evaluator(pu, testParams()); err != nil {
			t.Fatalf("%s: Evaluator: %v", tag, err)
		}
		if _, err := gs.RefreshRates(nil); err != nil {
			t.Fatalf("%s: RefreshRates: %v", tag, err)
		}
		if _, err := gs.Commit(Strategy{{Peer: 0, Lock: 1}}); err != nil {
			t.Fatalf("%s: Commit: %v", tag, err)
		}
		requireSessionMatchesRebuild(t, tag, gs)
	}

	closeLeaf(1)
	requireStale()
	if rep := gs.FoldClose(); rep < 0 {
		t.Fatalf("FoldClose repaired %d rows", rep)
	}
	requireServing("after fold")

	closeLeaf(2)
	requireStale()
	gs.Rebuild() // the slow path clears the dirty window too
	requireServing("after rebuild")
}

// TestGrowSessionCloseNodeErrorMarksDirty pins the half-closed error
// path: a CloseNode that fails mid-iteration has already removed
// channels, so it must leave the session dirty — pricing is a hard
// error, and the next FoldClose detects the partial closure and falls
// back to a full Rebuild.
func TestGrowSessionCloseNodeErrorMarksDirty(t *testing.T) {
	g := graph.New(3)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	// An unpaired directed edge: RemoveChannel(0,2) cannot find the
	// reverse direction and errors after the (0,1) channel already went.
	if _, err := g.AddEdge(0, 2, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	gs, err := NewGrowSession(g, testParams(), 8, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	closed, err := gs.CloseNode(0)
	if err == nil {
		t.Fatal("CloseNode over an unpaired edge did not error")
	}
	if closed != 1 {
		t.Fatalf("CloseNode removed %d channels before failing, want 1", closed)
	}
	if !gs.Dirty() {
		t.Fatal("half-closed node left the session clean")
	}
	if _, err := gs.Commit(nil); !errors.Is(err, ErrStaleSubstrate) {
		t.Fatalf("Commit after half-close: err = %v, want ErrStaleSubstrate", err)
	}
	if rep := gs.FoldClose(); rep != 0 {
		t.Fatalf("partial-closure fold repaired %d rows, want the rebuild fallback", rep)
	}
	if gs.RebuildCount() != 1 || gs.FoldCount() != 0 {
		t.Fatalf("fallback paid %d rebuilds + %d folds, want 1 + 0", gs.RebuildCount(), gs.FoldCount())
	}
	if gs.Dirty() {
		t.Fatal("session still dirty after the rebuild fallback")
	}
	requireSessionMatchesRebuild(t, "after fallback", gs)
}

// TestGrowSessionFoldPreservesReserve pins the geometry contract: the
// decremental fold repairs in place — close-then-commit cycles never
// re-lay-out the planes or orphan the reserved capacity.
func TestGrowSessionFoldPreservesReserve(t *testing.T) {
	gs, err := NewGrowSession(graph.Star(6, 1), testParams(), 64, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	ap, apT := gs.AllPairs(), gs.apT
	stride := ap.Stride
	if stride != 64 {
		t.Fatalf("reserved stride = %d, want 64", stride)
	}
	for cycle := 0; cycle < 8; cycle++ {
		u, err := gs.Commit(Strategy{{Peer: 0, Lock: 1}, {Peer: 1, Lock: 1}})
		if err != nil {
			t.Fatalf("cycle %d: Commit: %v", cycle, err)
		}
		if _, err := gs.CloseNode(u); err != nil {
			t.Fatalf("cycle %d: CloseNode: %v", cycle, err)
		}
		gs.FoldClose()
		if gs.AllPairs() != ap || gs.apT != apT {
			t.Fatalf("cycle %d: fold replaced the planes instead of repairing in place", cycle)
		}
		if gs.AllPairs().Stride != stride {
			t.Fatalf("cycle %d: stride drifted to %d, want %d", cycle, gs.AllPairs().Stride, stride)
		}
	}
	requireSessionMatchesRebuild(t, "after cycles", gs)
}

// FuzzFoldCloseMatchesRebuild feeds byte-driven session histories —
// commit / close / fold / rebuild interleavings at parallelism 1, 4 or
// 8 — through the session differential, tracking the dirty window so
// stale-substrate refusals are asserted too.
func FuzzFoldCloseMatchesRebuild(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x11, 0x02, 0x23, 0x01})
	f.Add(int64(7), []byte{0x40, 0x03, 0x03, 0x12, 0x00, 0x01, 0x31})
	f.Add(int64(42), []byte{0x80, 0x22, 0x00, 0x00, 0x01, 0x02, 0x03, 0x10})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		if len(program) == 0 || len(program) > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		n0 := 4 + int(program[0]&0x0f)
		workers := []int{1, 4, 8}[int(program[0]>>4)%3]
		gs, err := NewGrowSession(graph.BarabasiAlbert(n0, 2, 1, rng), testParams(), 32, 1)
		if err != nil {
			t.Fatalf("NewGrowSession: %v", err)
		}
		gs.SetParallelism(workers)
		dirty := false
		for i := 1; i < len(program); i++ {
			op := program[i]
			switch op & 0x03 {
			case 0: // close a node, possibly extending the dirty batch
				v := graph.NodeID(int(op>>2) % gs.NumNodes())
				closed, err := gs.CloseNode(v)
				if err != nil {
					t.Fatalf("op %d: CloseNode(%d): %v", i, v, err)
				}
				dirty = dirty || closed > 0
				if gs.Dirty() != dirty {
					t.Fatalf("op %d: Dirty = %v, want %v", i, gs.Dirty(), dirty)
				}
			case 1: // fold the pending batch and check bit-identity
				gs.FoldClose()
				dirty = false
				requireSessionMatchesRebuild(t, fmt.Sprintf("op %d fold", i), gs)
			case 2: // commit: refused while dirty, folded in when clean
				var s Strategy
				for c := int(op >> 6); c > 0; c-- {
					s = append(s, Action{Peer: graph.NodeID(int(op>>2) % gs.NumNodes()), Lock: 1})
				}
				_, err := gs.Commit(s)
				if dirty && !errors.Is(err, ErrStaleSubstrate) {
					t.Fatalf("op %d: dirty Commit err = %v, want ErrStaleSubstrate", i, err)
				}
				if !dirty && err != nil {
					t.Fatalf("op %d: Commit: %v", i, err)
				}
			case 3: // the slow-path oracle absorbs the batch too
				gs.Rebuild()
				dirty = false
				requireSessionMatchesRebuild(t, fmt.Sprintf("op %d rebuild", i), gs)
			}
		}
		gs.FoldClose()
		requireSessionMatchesRebuild(t, "final fold", gs)
	})
}
