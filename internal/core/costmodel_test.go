package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func TestGuasoniCostShape(t *testing.T) {
	cost := GuasoniCost(2 /* C */, 0.1 /* rho */, 3 /* lifetime */)
	// Zero lock costs exactly the on-chain component.
	if got := cost(0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("cost(0) = %v, want 2", got)
	}
	// Cost grows linearly in the lock with slope 1−e^{−0.3}.
	slope := 1 - math.Exp(-0.3)
	if got := cost(10); math.Abs(got-(2+10*slope)) > 1e-12 {
		t.Fatalf("cost(10) = %v, want %v", got, 2+10*slope)
	}
	// Small rho·lifetime degenerates towards the linear model with
	// r ≈ rho·lifetime.
	small := GuasoniCost(1, 0.001, 1)
	if got, want := small(100), 1+100*0.001; math.Abs(got-want) > 0.01 {
		t.Fatalf("small-rate cost = %v, want ≈ %v", got, want)
	}
}

func TestChannelCostFnOverridesLinearModel(t *testing.T) {
	p := testParams()
	p.ChannelCostFn = func(lock float64) float64 { return 7 + lock*lock }
	if got := p.ChannelCost(3); got != 16 {
		t.Fatalf("ChannelCost = %v, want 16", got)
	}
	p.ChannelCostFn = nil
	if got := p.ChannelCost(3); math.Abs(got-(1+0.15)) > 1e-12 {
		t.Fatalf("linear ChannelCost = %v, want 1.15", got)
	}
}

func TestEvaluatorCostUsesExtendedModel(t *testing.T) {
	g := graph.Star(4, 1)
	params := testParams()
	params.ChannelCostFn = GuasoniCost(1, 0.2, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, params)
	s := Strategy{{Peer: 0, Lock: 5}, {Peer: 1, Lock: 0}}
	want := params.ChannelCost(5) + params.ChannelCost(0)
	if got := e.Cost(s); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestSubmodularityUnderExtendedCosts(t *testing.T) {
	// The paper: "our computational results still hold in this extended
	// model of channel cost" — the cost term stays modular, so Theorem 1
	// must survive.
	rng := rand.New(rand.NewSource(101))
	params := testParams()
	params.ChannelCostFn = GuasoniCost(1, 0.3, 2)
	for trial := 0; trial < 4; trial++ {
		g := graph.ConnectedErdosRenyi(9, 0.3, 1, rng, 50)
		e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, params)
		report := CheckSubmodularity(e, ObjectiveUtility, RevenueFixedRate, auditLocks, 300, rng)
		if report.Violations != 0 {
			t.Fatalf("trial %d: %d violations under extended costs", trial, report.Violations)
		}
	}
}

func TestGreedyBudgetStillLinearLockModel(t *testing.T) {
	// Algorithm 1's channel-count bound M uses C + l1 with the *budget*
	// accounting of §II-C, which is independent of the cost model; the
	// extended cost only changes the utility's cost term.
	g := graph.Star(6, 1)
	params := testParams()
	params.ChannelCostFn = GuasoniCost(1, 0.5, 2)
	e := newEvaluator(t, g, txdist.Uniform{}, params)
	res, err := Greedy(e, GreedyConfig{Budget: 4, Lock: 1})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Strategy) > 2 { // ⌊4/(1+1)⌋
		t.Fatalf("greedy opened %d channels, budget allows 2", len(res.Strategy))
	}
}
