package core

import (
	"math"
	"math/rand"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// PropertyReport summarises an empirical audit of a structural property of
// the objective function (Theorems 1-3).
type PropertyReport struct {
	// Trials is the number of sampled configurations.
	Trials int
	// Violations counts configurations where the property failed beyond
	// tolerance.
	Violations int
	// Vacuous counts configurations where the property could not be
	// evaluated because a term was non-finite (e.g. the fee term of a
	// disconnected strategy is +∞); these satisfy the paper's extended
	// arithmetic by convention.
	Vacuous int
	// MaxViolation is the largest observed violation magnitude.
	MaxViolation float64
	// Witness holds one violating configuration, when any.
	Witness *PropertyWitness
}

// PropertyWitness records a configuration violating (or, for the
// non-monotonicity and negativity audits, *exhibiting*) a property.
type PropertyWitness struct {
	S1, S2 Strategy
	X      Action
	Value1 float64
	Value2 float64
}

const propertyTolerance = 1e-7

// CheckSubmodularity samples nested strategies S1 ⊆ S2 and an extra action
// X ∉ S2 and verifies the submodularity inequality of Theorem 1,
//
//	f(S1 ∪ {X}) − f(S1) ≥ f(S2 ∪ {X}) − f(S2),
//
// for the selected objective and revenue model.
func CheckSubmodularity(e *JoinEvaluator, kind ObjectiveKind, model RevenueModel, locks []float64, trials int, rng *rand.Rand) PropertyReport {
	report := PropertyReport{Trials: trials}
	n := e.NumNodes()
	if n < 3 {
		return report
	}
	st := e.session()
	st.Reset()
	st.setLean(false)
	for t := 0; t < trials; t++ {
		s2, x := randomNestedConfig(n, locks, rng)
		cut := rng.Intn(len(s2) + 1)
		s1 := s2[:cut].Clone()

		// Marginal gains as push deltas: load the base once, push X on
		// top — no per-trial scratch rebuilds.
		st.Load(s1)
		base1 := st.Objective(kind, model)
		st.Push(x)
		with1 := st.Objective(kind, model)
		st.Load(s2)
		base2 := st.Objective(kind, model)
		st.Push(x)
		with2 := st.Objective(kind, model)
		m1 := with1 - base1
		m2 := with2 - base2
		if math.IsNaN(m1) || math.IsNaN(m2) || math.IsInf(m1, 0) || math.IsInf(m2, 0) {
			report.Vacuous++
			continue
		}
		if diff := m2 - m1; diff > propertyTolerance {
			report.Violations++
			if diff > report.MaxViolation {
				report.MaxViolation = diff
				report.Witness = &PropertyWitness{S1: s1, S2: s2, X: x, Value1: m1, Value2: m2}
			}
		}
	}
	return report
}

// CheckMonotonicity samples strategies S and actions X ∉ S and verifies
// f(S ∪ {X}) ≥ f(S) for the selected objective (Theorem 2 asserts this
// for U' and refutes it for U).
func CheckMonotonicity(e *JoinEvaluator, kind ObjectiveKind, model RevenueModel, locks []float64, trials int, rng *rand.Rand) PropertyReport {
	report := PropertyReport{Trials: trials}
	n := e.NumNodes()
	if n < 2 {
		return report
	}
	st := e.session()
	st.Reset()
	st.setLean(false)
	for t := 0; t < trials; t++ {
		s, x := randomNestedConfig(n, locks, rng)
		st.Load(s)
		before := st.Objective(kind, model)
		st.Push(x)
		after := st.Objective(kind, model)
		if math.IsNaN(before) || math.IsNaN(after) {
			report.Vacuous++
			continue
		}
		// −∞ → finite transitions are monotone increases; finite → −∞
		// would be violations but cannot occur since adding a channel
		// never disconnects.
		if diff := before - after; diff > propertyTolerance {
			report.Violations++
			if diff > report.MaxViolation {
				report.MaxViolation = diff
				report.Witness = &PropertyWitness{S1: s, X: x, Value1: before, Value2: after}
			}
		}
	}
	return report
}

// FindNegativeUtility searches random strategies for one with strictly
// negative finite utility, witnessing Theorem 3. It reports whether a
// witness was found.
func FindNegativeUtility(e *JoinEvaluator, model RevenueModel, locks []float64, trials int, rng *rand.Rand) (Strategy, float64, bool) {
	n := e.NumNodes()
	if n < 2 {
		return nil, 0, false
	}
	for t := 0; t < trials; t++ {
		s, x := randomNestedConfig(n, locks, rng)
		s = s.With(x)
		if u := e.Utility(s, model); !math.IsInf(u, 0) && u < -propertyTolerance {
			return s, u, true
		}
	}
	return nil, 0, false
}

// randomNestedConfig draws a random strategy over distinct peers plus one
// extra action with a peer outside the strategy.
func randomNestedConfig(n int, locks []float64, rng *rand.Rand) (Strategy, Action) {
	perm := rng.Perm(n)
	size := rng.Intn(minInt(n-1, 4)) + 1
	s := make(Strategy, 0, size)
	for i := 0; i < size; i++ {
		s = append(s, Action{
			Peer: graph.NodeID(perm[i]),
			Lock: locks[rng.Intn(len(locks))],
		})
	}
	x := Action{
		Peer: graph.NodeID(perm[size]),
		Lock: locks[rng.Intn(len(locks))],
	}
	return s, x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
