package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// Action is one element (v_i, l_i) of the action set Ω (§II-C): open a
// channel to Peer locking Lock coins on the user's side.
type Action struct {
	Peer graph.NodeID
	Lock float64
}

// String renders the action for experiment output.
func (a Action) String() string { return fmt.Sprintf("(%d,%g)", a.Peer, a.Lock) }

// Strategy is a multiset S ⊆ Ω of channels the joining user opens. The
// same peer may appear several times with different locks, exactly as the
// paper's Ω allows.
type Strategy []Action

// Clone returns an independent copy.
func (s Strategy) Clone() Strategy { return append(Strategy(nil), s...) }

// With returns a new strategy extended by the given action; the receiver
// is unchanged.
func (s Strategy) With(a Action) Strategy {
	out := make(Strategy, len(s)+1)
	copy(out, s)
	out[len(s)] = a
	return out
}

// SpentBudget returns Σ_{(v,l)∈S} (C + l): the budget the strategy
// consumes under the constraint of §II-C.
func (s Strategy) SpentBudget(onChainCost float64) float64 {
	var total float64
	for _, a := range s {
		total += onChainCost + a.Lock
	}
	return total
}

// Feasible reports whether the strategy respects the budget B_u.
func (s Strategy) Feasible(onChainCost, budget float64) bool {
	return s.SpentBudget(onChainCost) <= budget+budgetTolerance
}

// budgetTolerance absorbs floating-point drift when summing channel costs.
const budgetTolerance = 1e-9

// Peers returns the distinct peers of the strategy in ascending order.
func (s Strategy) Peers() []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(s))
	for _, a := range s {
		seen[a.Peer] = struct{}{}
	}
	peers := make([]graph.NodeID, 0, len(seen))
	for p := range seen {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// TotalLocked returns the total capital the strategy locks.
func (s Strategy) TotalLocked() float64 {
	var total float64
	for _, a := range s {
		total += a.Lock
	}
	return total
}

// String renders the strategy for experiment output, sorted for
// determinism.
func (s Strategy) String() string {
	if len(s) == 0 {
		return "{}"
	}
	c := s.Clone()
	sort.Slice(c, func(i, j int) bool {
		if c[i].Peer != c[j].Peer {
			return c[i].Peer < c[j].Peer
		}
		return c[i].Lock < c[j].Lock
	})
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Equal reports whether two strategies contain the same actions regardless
// of order.
func (s Strategy) Equal(t Strategy) bool {
	if len(s) != len(t) {
		return false
	}
	return s.String() == t.String()
}
