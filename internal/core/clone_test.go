package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func cloneTestEvaluator(t *testing.T) *JoinEvaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := graph.BarabasiAlbert(14, 2, 10, rng)
	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(g, dist, 14)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewJoinEvaluator(g, dist, demand, Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        1,
		FeePerHop:   0.2,
		OwnRate:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCloneAgreesWithOriginal(t *testing.T) {
	e := cloneTestEvaluator(t)
	e.FixedRate(0) // build λ̂ once so the clone shares it
	c := e.Clone()
	strategies := []Strategy{
		{{Peer: 0, Lock: 1}},
		{{Peer: 1, Lock: 2}, {Peer: 3, Lock: 0}},
		{{Peer: 2, Lock: 1}, {Peer: 5, Lock: 4}, {Peer: 7, Lock: 1}},
	}
	for _, model := range []RevenueModel{RevenueExact, RevenueFixedRate} {
		for _, s := range strategies {
			if got, want := c.Utility(s, model), e.Utility(s, model); got != want {
				t.Fatalf("clone Utility(%v, %v) = %v, original %v", s, model, got, want)
			}
			if got, want := c.Simplified(s, model), e.Simplified(s, model); got != want {
				t.Fatalf("clone Simplified(%v, %v) = %v, original %v", s, model, got, want)
			}
		}
	}
}

func TestCloneResetsEvaluationCounter(t *testing.T) {
	e := cloneTestEvaluator(t)
	s := Strategy{{Peer: 0, Lock: 1}}
	e.Utility(s, RevenueExact)
	e.Utility(s, RevenueExact)
	c := e.Clone()
	if c.Evaluations() != 0 {
		t.Fatalf("clone starts with %d evaluations, want 0", c.Evaluations())
	}
	c.Utility(s, RevenueExact)
	if c.Evaluations() != 1 {
		t.Fatalf("clone counter = %d, want 1", c.Evaluations())
	}
	if e.Evaluations() != 2 {
		t.Fatalf("original counter moved to %d, want 2", e.Evaluations())
	}
}

// TestCloneConcurrentUse drives one clone per goroutine through the full
// pricing surface; under -race it proves clones share no mutable state.
func TestCloneConcurrentUse(t *testing.T) {
	e := cloneTestEvaluator(t)
	e.FixedRate(0)
	want := e.Clone().Utility(Strategy{{Peer: 1, Lock: 2}}, RevenueFixedRate)
	var wg sync.WaitGroup
	got := make([]float64, 8)
	for w := 0; w < len(got); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.Clone()
			for i := 0; i < 20; i++ {
				got[w] = c.Utility(Strategy{{Peer: 1, Lock: 2}}, RevenueFixedRate)
				c.TransitRate(Strategy{{Peer: graph.NodeID(w % 14), Lock: 1}})
				c.Fees(Strategy{{Peer: graph.NodeID((w + i) % 14), Lock: 1}})
			}
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d priced %v, want %v", w, g, want)
		}
	}
}

// TestCloneConcurrentLazyFixedRates clones before the λ̂ table exists;
// each clone must lazily build its own identical copy without racing.
func TestCloneConcurrentLazyFixedRates(t *testing.T) {
	e := cloneTestEvaluator(t)
	want := e.Clone().FixedRate(3)
	var wg sync.WaitGroup
	got := make([]float64, 6)
	for w := 0; w < len(got); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = e.Clone().FixedRate(3)
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d estimated λ̂ = %v, want %v", w, g, want)
		}
	}
}
