package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

const approxRatio = 1 - 1/math.E

func TestGreedyConfigValidation(t *testing.T) {
	g := graph.Star(4, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if _, err := Greedy(e, GreedyConfig{Budget: -1, Lock: 1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative budget error = %v", err)
	}
	if _, err := Greedy(e, GreedyConfig{Budget: 1, Lock: -1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative lock error = %v", err)
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	g := graph.Star(6, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	res, err := Greedy(e, GreedyConfig{Budget: 7, Lock: 1.5})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	// M = ⌊7/(1+1.5)⌋ = 2 channels max.
	if len(res.Strategy) > 2 {
		t.Fatalf("greedy opened %d channels, budget allows 2", len(res.Strategy))
	}
	if !res.Strategy.Feasible(1, 7) {
		t.Fatalf("strategy %v exceeds budget", res.Strategy)
	}
	for _, a := range res.Strategy {
		if a.Lock != 1.5 {
			t.Fatalf("lock = %v, want fixed 1.5", a.Lock)
		}
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	g := graph.Star(4, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := Greedy(e, GreedyConfig{Budget: 0.5, Lock: 1})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Strategy) != 0 {
		t.Fatalf("unaffordable budget produced strategy %v", res.Strategy)
	}
}

func TestGreedyPicksDistinctPeers(t *testing.T) {
	g := graph.Circle(6, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := Greedy(e, GreedyConfig{Budget: 20, Lock: 1})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Strategy.Peers()) != len(res.Strategy) {
		t.Fatalf("greedy reused a peer: %v", res.Strategy)
	}
}

func TestGreedyAchievesApproximationRatio(t *testing.T) {
	// Theorem 4: greedy U' ≥ (1−1/e)·OPT. Verified against brute force
	// on random instances under the fixed-rate model the theorem assumes.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		g := graph.ConnectedErdosRenyi(8, 0.3, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 1}
		e := newEvaluator(t, g, dist, testParams())
		cfg := GreedyConfig{Budget: 6, Lock: 1}
		res, err := Greedy(e, cfg)
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		opt, err := BruteForce(e, BruteForceConfig{
			Budget: cfg.Budget,
			Locks:  []float64{1},
		})
		if err != nil {
			t.Fatalf("BruteForce: %v", err)
		}
		if opt.Truncated {
			t.Fatal("brute force truncated; shrink the instance")
		}
		// Guard against vacuous comparisons.
		if math.IsInf(opt.Objective, 0) || opt.Objective <= 0 {
			continue
		}
		if res.Objective < approxRatio*opt.Objective-1e-9 {
			t.Fatalf("trial %d: greedy %v < (1−1/e)·OPT %v", trial, res.Objective, opt.Objective)
		}
	}
}

func TestGreedyEvaluationBudget(t *testing.T) {
	// Theorem 4: O(M·n) objective evaluations.
	g := graph.Circle(10, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := Greedy(e, GreedyConfig{Budget: 8, Lock: 1})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	maxChannels := 4 // ⌊8/2⌋
	bound := maxChannels*g.NumNodes() + maxChannels + 2
	if res.Evaluations > bound {
		t.Fatalf("evaluations = %d, bound %d", res.Evaluations, bound)
	}
}

func TestDiscreteSearchValidation(t *testing.T) {
	g := graph.Star(4, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if _, err := DiscreteSearch(e, DiscreteConfig{Budget: 5, Unit: 0}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero unit error = %v", err)
	}
	if _, err := DiscreteSearch(e, DiscreteConfig{Budget: -5, Unit: 1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative budget error = %v", err)
	}
}

func TestDiscreteSearchDominatesGreedy(t *testing.T) {
	// The all-equal division reproduces the greedy schedule, so the
	// discrete search can never do worse than Algorithm 1 with a lock
	// that is a multiple of the unit.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		g := graph.ConnectedErdosRenyi(7, 0.35, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 0.7}
		e := newEvaluator(t, g, dist, testParams())
		greedy, err := Greedy(e, GreedyConfig{Budget: 6, Lock: 1})
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		disc, err := DiscreteSearch(e, DiscreteConfig{Budget: 6, Unit: 1})
		if err != nil {
			t.Fatalf("DiscreteSearch: %v", err)
		}
		if disc.Objective < greedy.Objective-1e-9 {
			t.Fatalf("trial %d: discrete %v < greedy %v", trial, disc.Objective, greedy.Objective)
		}
	}
}

func TestDiscreteSearchBudget(t *testing.T) {
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
	res, err := DiscreteSearch(e, DiscreteConfig{Budget: 5, Unit: 1})
	if err != nil {
		t.Fatalf("DiscreteSearch: %v", err)
	}
	if !res.Strategy.Feasible(1, 5) {
		t.Fatalf("discrete strategy %v exceeds budget", res.Strategy)
	}
}

func TestDiscreteSearchTruncation(t *testing.T) {
	g := graph.Star(5, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := DiscreteSearch(e, DiscreteConfig{Budget: 12, Unit: 0.5, MaxDivisions: 3})
	if err != nil {
		t.Fatalf("DiscreteSearch: %v", err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation with MaxDivisions=3")
	}
}

func TestEnumerateDivisions(t *testing.T) {
	var seen [][]int
	enumerateDivisions(3, 2, func(d []int) bool {
		seen = append(seen, append([]int(nil), d...))
		return true
	})
	// Expected: [], [1], [2], [3], [1 1], [2 1], [3 ... no: ≤2 parts,
	// non-increasing, sum ≤3: [], [3], [2], [1], [3,?]... 3 uses all
	// units; second part ≤ min(0,3)=0 so none. [2,1], [1,1], [2,... 2
	// then ≤ min(1,2)=1 → [2,1]. Total: [], [3], [2], [2,1], [1], [1,1].
	want := map[string]bool{
		"[]": true, "[3]": true, "[2]": true, "[2 1]": true, "[1]": true, "[1 1]": true,
	}
	if len(seen) != len(want) {
		t.Fatalf("enumerated %d divisions %v, want %d", len(seen), seen, len(want))
	}
}

func TestContinuousSearchFeasibleAndImproving(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedErdosRenyi(7, 0.35, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 1}
		params := testParams()
		params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
		e := newEvaluator(t, g, dist, params)
		// Recreate evaluator with capacity-aware params.
		res, err := ContinuousSearch(e, ContinuousConfig{Budget: 8})
		if err != nil {
			t.Fatalf("ContinuousSearch: %v", err)
		}
		if !res.Strategy.Feasible(1, 8) {
			t.Fatalf("continuous strategy %v exceeds budget", res.Strategy)
		}
		// Must be at least as good as every feasible singleton on the
		// default grid (local optimality w.r.t. the seed).
		grid := defaultLockGrid(1, 8)
		for v := 0; v < g.NumNodes(); v++ {
			for _, l := range grid {
				s := Strategy{{Peer: graph.NodeID(v), Lock: l}}
				if !s.Feasible(1, 8) {
					continue
				}
				if val := e.Benefit(s, RevenueFixedRate); val > res.Objective+1e-9 {
					t.Fatalf("trial %d: singleton %v beats local search: %v > %v", trial, s, val, res.Objective)
				}
			}
		}
	}
}

func TestContinuousSearchRatioAgainstBruteForce(t *testing.T) {
	// §III-D targets a 1/5 approximation of the benefit function; on
	// small instances the local search should clear that easily.
	rng := rand.New(rand.NewSource(67))
	evaluated := 0
	for trial := 0; trial < 5; trial++ {
		g := graph.ConnectedErdosRenyi(6, 0.4, 1, rng, 50)
		dist := txdist.ModifiedZipf{S: 1}
		params := testParams()
		// Favour joining over transacting on-chain so the benefit
		// optimum is positive and the ratio meaningful.
		params.OwnRate = 10
		params.FeePerHop = 0.05
		params.CapacityFactor = func(l float64) float64 { return math.Min(1, l/4) }
		e := newEvaluator(t, g, dist, params)
		grid := []float64{0, 1, 2, 4}
		res, err := ContinuousSearch(e, ContinuousConfig{Budget: 7, LockGrid: grid})
		if err != nil {
			t.Fatalf("ContinuousSearch: %v", err)
		}
		opt, err := BruteForce(e, BruteForceConfig{
			Budget:    7,
			Locks:     grid,
			Objective: ObjectiveBenefit,
		})
		if err != nil {
			t.Fatalf("BruteForce: %v", err)
		}
		if opt.Truncated || opt.Objective <= 0 || math.IsInf(opt.Objective, 0) {
			continue
		}
		evaluated++
		if res.Objective < opt.Objective/5-1e-9 {
			t.Fatalf("trial %d: continuous %v < OPT/5 = %v", trial, res.Objective, opt.Objective/5)
		}
	}
	if evaluated == 0 {
		t.Fatal("no trial produced a positive optimum; the ratio check never ran")
	}
}

func TestBruteForceValidation(t *testing.T) {
	g := graph.Star(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	if _, err := BruteForce(e, BruteForceConfig{Budget: 5}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("empty locks error = %v", err)
	}
}

func TestBruteForceFindsExactOptimum(t *testing.T) {
	// Hand-checkable instance: path 0-1-2, flow only 0→2; connecting to
	// both endpoints captures half the flow and shortens own payments.
	g := graph.Path(3, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := BruteForce(e, BruteForceConfig{
		Budget: 4,
		Locks:  []float64{1},
	})
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if len(res.Strategy) == 0 {
		t.Fatal("brute force returned empty strategy")
	}
	// Exhaustively confirm optimality over all subsets by hand
	// enumeration.
	bestVal := math.Inf(-1)
	for mask := 0; mask < 8; mask++ {
		var s Strategy
		for v := 0; v < 3; v++ {
			if mask&(1<<v) != 0 {
				s = s.With(Action{Peer: graph.NodeID(v), Lock: 1})
			}
		}
		if !s.Feasible(1, 4) {
			continue
		}
		if val := e.Simplified(s, RevenueFixedRate); val > bestVal {
			bestVal = val
		}
	}
	if math.Abs(res.Objective-bestVal) > 1e-9 {
		t.Fatalf("brute force objective %v, manual optimum %v", res.Objective, bestVal)
	}
}

func TestBruteForceTruncates(t *testing.T) {
	g := graph.Complete(10, 1)
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	res, err := BruteForce(e, BruteForceConfig{
		Budget:         100,
		Locks:          []float64{0, 1, 2},
		MaxEvaluations: 50,
	})
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
}

func TestAlgorithmsAlwaysRespectBudgetProperty(t *testing.T) {
	// Property (testing/quick): for arbitrary budgets and locks, every
	// algorithm returns a strategy within budget.
	g := graph.Circle(8, 1)
	check := func(budgetRaw, lockRaw uint16) bool {
		budget := float64(budgetRaw%64) / 4 // [0, 16)
		lock := float64(lockRaw%16) / 4     // [0, 4)
		ev, err := newQuickEvaluator(g)
		if err != nil {
			return false
		}
		res, err := Greedy(ev, GreedyConfig{Budget: budget, Lock: lock})
		if err != nil || !res.Strategy.Feasible(1, budget) {
			return false
		}
		res, err = DiscreteSearch(ev, DiscreteConfig{Budget: budget, Unit: 1, MaxDivisions: 200})
		if err != nil || !res.Strategy.Feasible(1, budget) {
			return false
		}
		res, err = ContinuousSearch(ev, ContinuousConfig{Budget: budget, MaxIterations: 20})
		if err != nil || !res.Strategy.Feasible(1, budget) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// newQuickEvaluator builds a minimal evaluator for property tests.
func newQuickEvaluator(g *graph.Graph) (*JoinEvaluator, error) {
	demand, err := traffic.NewUniformDemand(g, txdist.Uniform{}, float64(g.NumNodes()))
	if err != nil {
		return nil, err
	}
	return NewJoinEvaluator(g, txdist.Uniform{}, demand, Params{
		OnChainCost: 1,
		OppCostRate: 0.05,
		FAvg:        0.5,
		FeePerHop:   0.3,
		OwnRate:     1,
	})
}
