package core

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// DiscreteConfig parametrises Algorithm 2.
type DiscreteConfig struct {
	// Budget is B_u.
	Budget float64
	// Unit is m, the capital granularity: every lock is a multiple of m
	// (§III-C).
	Unit float64
	// Candidates restricts the peers considered; nil means every node.
	Candidates []graph.NodeID
	// Model selects the revenue model; zero means RevenueFixedRate.
	Model RevenueModel
	// MaxDivisions caps the number of budget divisions explored, guarding
	// against the combinatorial blow-up the paper accepts as
	// pseudo-polynomial; 0 means no cap.
	MaxDivisions int
}

// DiscreteSearch is Algorithm 2: exhaustively enumerate the divisions of
// the budget into at most k = ⌊B_u/C⌋ lock amounts, each a multiple of the
// granularity m, and run the greedy of Algorithm 1 once per division with
// the j-th added channel locking the division's j-th amount. The best
// result across divisions is returned; each sub-run inherits the greedy's
// (1−1/e) guarantee for its lock assignment (Theorem 5).
//
// Divisions are enumerated as non-increasing sequences of lock units so
// permutations of the same multiset are explored once; the greedy assigns
// the largest locks first.
func DiscreteSearch(e *JoinEvaluator, cfg DiscreteConfig) (Result, error) {
	if cfg.Unit <= 0 || math.IsNaN(cfg.Unit) {
		return Result{}, fmt.Errorf("%w: unit %v", ErrBadParams, cfg.Unit)
	}
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) {
		return Result{}, fmt.Errorf("%w: budget %v", ErrBadParams, cfg.Budget)
	}
	model := cfg.Model
	if model == 0 {
		model = RevenueFixedRate
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = allNodes(e.g)
	}
	maxChannels := int(cfg.Budget / e.params.OnChainCost) // k = ⌊B_u/C⌋
	units := int(cfg.Budget / cfg.Unit)                   // ⌊B_u/m⌋
	e.ResetEvaluations()

	best := Result{Objective: math.Inf(-1)}
	divisions := 0
	truncated := false
	enumerateDivisions(units, maxChannels, func(lockUnits []int) bool {
		if cfg.MaxDivisions > 0 && divisions >= cfg.MaxDivisions {
			truncated = true
			return false
		}
		divisions++
		res := greedyWithLocks(e, cfg.Budget, cfg.Unit, lockUnits, candidates, model)
		if res.Objective > best.Objective {
			best = res
		}
		return true
	})
	if math.IsInf(best.Objective, -1) {
		best = Result{
			Strategy:  nil,
			Objective: e.Simplified(nil, model),
			Utility:   e.Utility(nil, RevenueExact),
		}
	}
	best.Evaluations = e.Evaluations()
	best.Truncated = truncated
	return best, nil
}

// enumerateDivisions yields every non-increasing sequence of at most
// maxParts positive integers summing to at most units, plus the empty
// division. It stops early when visit returns false.
func enumerateDivisions(units, maxParts int, visit func([]int) bool) {
	var rec func(prefix []int, remaining, maxNext int) bool
	rec = func(prefix []int, remaining, maxNext int) bool {
		if !visit(prefix) {
			return false
		}
		if len(prefix) >= maxParts {
			return true
		}
		limit := maxNext
		if remaining < limit {
			limit = remaining
		}
		for next := limit; next >= 1; next-- {
			if !rec(append(prefix, next), remaining-next, next) {
				return false
			}
		}
		return true
	}
	if maxParts < 0 {
		maxParts = 0
	}
	rec(nil, units, units)
}

// greedyWithLocks runs the Algorithm 1 loop with a per-step lock schedule:
// the j-th added channel locks lockUnits[j]·unit coins. Steps whose
// cumulative cost would exceed the budget end the run; the best prefix is
// returned, as in Algorithm 1. Probes are Push/measure/Pop on the
// evaluator's incremental state, shared across all divisions of one
// search.
func greedyWithLocks(e *JoinEvaluator, budget, unit float64, lockUnits []int, candidates []graph.NodeID, model RevenueModel) Result {
	available := append([]graph.NodeID(nil), candidates...)
	st := e.session()
	st.Reset()
	st.setLean(false)
	var (
		current   Strategy
		spent     float64
		bestValue = math.Inf(-1)
		bestLen   = -1
	)
	for step := 0; step < len(lockUnits) && len(available) > 0; step++ {
		lock := float64(lockUnits[step]) * unit
		cost := e.params.OnChainCost + lock
		if spent+cost > budget+budgetTolerance {
			break
		}
		bestIdx := -1
		bestObj := math.Inf(-1)
		for i, v := range available {
			st.Push(Action{Peer: v, Lock: lock})
			obj := st.Simplified(model)
			st.Pop()
			if obj > bestObj {
				bestObj = obj
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		accepted := Action{Peer: available[bestIdx], Lock: lock}
		st.Push(accepted)
		current = append(current, accepted)
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		spent += cost
		if bestObj > bestValue {
			bestValue = bestObj
			bestLen = len(current)
		}
	}
	if bestLen < 0 {
		return Result{Objective: math.Inf(-1)}
	}
	best := current[:bestLen].Clone()
	return Result{
		Strategy:  best,
		Objective: bestValue,
		Utility:   e.Utility(best, RevenueExact),
	}
}
