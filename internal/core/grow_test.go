package core

import (
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

func requireSessionMatchesRebuild(t *testing.T, tag string, gs *GrowSession) {
	t.Helper()
	want := gs.Graph().AllPairsBFS()
	ap := gs.AllPairs()
	if ap.N != want.N {
		t.Fatalf("%s: session N = %d, graph has %d", tag, ap.N, want.N)
	}
	for s := 0; s < want.N; s++ {
		for r := 0; r < want.N; r++ {
			if ap.DistAt(graph.NodeID(s), graph.NodeID(r)) != want.DistAt(graph.NodeID(s), graph.NodeID(r)) ||
				ap.SigmaAt(graph.NodeID(s), graph.NodeID(r)) != want.SigmaAt(graph.NodeID(s), graph.NodeID(r)) {
				t.Fatalf("%s: all-pairs diverges from rebuild at [%d][%d]: (%d,%v) vs (%d,%v)",
					tag, s, r,
					ap.DistAt(graph.NodeID(s), graph.NodeID(r)), ap.SigmaAt(graph.NodeID(s), graph.NodeID(r)),
					want.DistAt(graph.NodeID(s), graph.NodeID(r)), want.SigmaAt(graph.NodeID(s), graph.NodeID(r)))
			}
		}
	}
}

// TestGrowSessionCommitMatchesRebuild drives a session through random
// commits — multi-channel strategies, repeats, empty strategies — and
// checks the incremental structure stays bit-identical to a from-scratch
// BFS after every fold.
func TestGrowSessionCommitMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	gs, err := NewGrowSession(graph.New(0), testParams(), 32, 0)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	for arrival := 0; arrival < 20; arrival++ {
		var s Strategy
		for c := rng.Intn(4); c > 0 && gs.NumNodes() > 0; c-- {
			s = append(s, Action{Peer: graph.NodeID(rng.Intn(gs.NumNodes())), Lock: float64(rng.Intn(3))})
		}
		u, err := gs.Commit(s)
		if err != nil {
			t.Fatalf("arrival %d: Commit: %v", arrival, err)
		}
		if int(u) != gs.NumNodes()-1 {
			t.Fatalf("arrival %d: committed node %d, want %d", arrival, u, gs.NumNodes()-1)
		}
		requireSessionMatchesRebuild(t, "commit", gs)
	}
	if gs.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", gs.NumNodes())
	}
}

// TestGrowSessionPricingMatchesFreshEvaluator prices the same arrival
// through a grown session and through a from-scratch NewJoinEvaluator and
// requires bit-identical greedy plans: the cross-check that the zero-cost
// evaluator sees exactly the state a rebuild would.
func TestGrowSessionPricingMatchesFreshEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.BarabasiAlbert(9, 2, 1, rng)
	gs, err := NewGrowSession(g.Clone(), testParams(), 64, 0)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	// Grow a few arrivals so the session state is genuinely incremental.
	for arrival := 0; arrival < 8; arrival++ {
		var s Strategy
		for c := 1 + rng.Intn(2); c > 0; c-- {
			s = append(s, Action{Peer: graph.NodeID(rng.Intn(gs.NumNodes())), Lock: 1})
		}
		if _, err := gs.Commit(s); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	dist := txdist.ModifiedZipf{S: 1}
	demand, err := traffic.NewUniformDemand(gs.Graph(), dist, float64(gs.NumNodes()))
	if err != nil {
		t.Fatalf("NewUniformDemand: %v", err)
	}
	gs.SetDemand(demand)
	if _, err := gs.RefreshRates(allNodes(gs.Graph())); err != nil {
		t.Fatalf("RefreshRates: %v", err)
	}
	pu := dist.Probs(gs.Graph(), graph.InvalidNode)
	sessionEval, err := gs.Evaluator(pu, testParams())
	if err != nil {
		t.Fatalf("Evaluator: %v", err)
	}

	fresh, err := NewJoinEvaluator(gs.Graph(), dist, demand, testParams())
	if err != nil {
		t.Fatalf("NewJoinEvaluator: %v", err)
	}

	cfg := GreedyConfig{Budget: 6, Lock: 1}
	got, err := Greedy(sessionEval, cfg)
	if err != nil {
		t.Fatalf("Greedy(session): %v", err)
	}
	want, err := Greedy(fresh, cfg)
	if err != nil {
		t.Fatalf("Greedy(fresh): %v", err)
	}
	if !got.Strategy.Equal(want.Strategy) || got.Objective != want.Objective ||
		got.Utility != want.Utility || got.Evaluations != want.Evaluations {
		t.Fatalf("session plan diverges from fresh evaluator:\n got %+v\nwant %+v", got, want)
	}
}

// TestGrowSessionReattachAndChurn exercises the deletion path: close a
// node's channels, rebuild, re-attach it incrementally, and keep the
// structure bit-identical throughout.
func TestGrowSessionReattachAndChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.BarabasiAlbert(12, 2, 1, rng)
	gs, err := NewGrowSession(g, testParams(), 0, 0)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	for round := 0; round < 6; round++ {
		v := graph.NodeID(rng.Intn(gs.NumNodes()))
		closed, err := gs.CloseNode(v)
		if err != nil {
			t.Fatalf("CloseNode(%d): %v", v, err)
		}
		if gs.Graph().InDegree(v) != 0 || gs.Graph().OutDegree(v) != 0 {
			t.Fatalf("node %d still has channels after CloseNode (closed %d)", v, closed)
		}
		gs.Rebuild()
		requireSessionMatchesRebuild(t, "after close", gs)
		var s Strategy
		for c := 1 + rng.Intn(2); c > 0; c-- {
			w := graph.NodeID(rng.Intn(gs.NumNodes()))
			if w != v {
				s = append(s, Action{Peer: w, Lock: 1})
			}
		}
		if err := gs.Reattach(v, s); err != nil {
			t.Fatalf("Reattach(%d): %v", v, err)
		}
		requireSessionMatchesRebuild(t, "after reattach", gs)
	}
}

func TestGrowSessionReattachRejectsConnectedNode(t *testing.T) {
	gs, err := NewGrowSession(graph.Star(4, 1), testParams(), 0, 0)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	if err := gs.Reattach(0, Strategy{{Peer: 1, Lock: 1}}); err == nil {
		t.Fatal("Reattach on a connected node must fail")
	}
	if err := gs.Reattach(99, nil); err == nil {
		t.Fatal("Reattach on a missing node must fail")
	}
}

// TestScratchGreedyMatchesGreedy is the oracle self-check: the scratch
// selection loop must reproduce the incremental Greedy bit for bit, so
// growth differential failures implicate the incremental machinery and
// not the oracle.
func TestScratchGreedyMatchesGreedy(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedErdosRenyi(7+rng.Intn(5), 0.3, 1, rng, 20)
		dist := txdist.ModifiedZipf{S: 1}
		demand, err := traffic.NewUniformDemand(g, dist, float64(g.NumNodes()))
		if err != nil {
			t.Fatalf("seed %d: demand: %v", seed, err)
		}
		for _, model := range []RevenueModel{RevenueFixedRate, RevenueExact} {
			inc, err := NewJoinEvaluator(g, dist, demand, testParams())
			if err != nil {
				t.Fatalf("seed %d: evaluator: %v", seed, err)
			}
			cfg := GreedyConfig{Budget: 5, Lock: 1, Model: model}
			got, err := Greedy(inc, cfg)
			if err != nil {
				t.Fatalf("seed %d: Greedy: %v", seed, err)
			}
			oracle := inc.Clone()
			want, err := ScratchGreedy(oracle, cfg)
			if err != nil {
				t.Fatalf("seed %d: ScratchGreedy: %v", seed, err)
			}
			if !got.Strategy.Equal(want.Strategy) || got.Objective != want.Objective ||
				got.Utility != want.Utility || got.Evaluations != want.Evaluations {
				t.Fatalf("seed %d model %v: greedy diverges from scratch oracle:\n got %+v\nwant %+v",
					seed, model, got, want)
			}
		}
	}
}

// TestGrowSessionCommitBatchMatchesSequential drives two sessions over
// identical cohorts — one folding through CommitBatch, one through
// sequential Commits — and requires bit-identical identifiers and
// structures, plus agreement with a from-scratch rebuild.
func TestGrowSessionCommitBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	seed := graph.BarabasiAlbert(8, 2, 1, rng)
	seq, err := NewGrowSession(seed.Clone(), testParams(), 128, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	bat, err := NewGrowSession(seed.Clone(), testParams(), 128, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	bat.SetParallelism(3)
	for round := 0; round < 3; round++ {
		base := seq.NumNodes()
		cohort := make([]Strategy, 5+round*20) // crosses the chunk boundary on the last round
		for j := range cohort {
			var s Strategy
			for c := rng.Intn(4); c > 0; c-- {
				s = append(s, Action{Peer: graph.NodeID(rng.Intn(base)), Lock: float64(rng.Intn(3))})
			}
			cohort[j] = s
		}
		var want []graph.NodeID
		for _, s := range cohort {
			u, err := seq.Commit(s)
			if err != nil {
				t.Fatalf("Commit: %v", err)
			}
			want = append(want, u)
		}
		got, err := bat.CommitBatch(cohort)
		if err != nil {
			t.Fatalf("CommitBatch: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("CommitBatch returned %d ids, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cohort member %d: node %d vs %d", i, got[i], want[i])
			}
		}
		requireSessionMatchesRebuild(t, "batch", bat)
		sap, bap := seq.AllPairs(), bat.AllPairs()
		for s := 0; s < sap.N; s++ {
			for r := 0; r < sap.N; r++ {
				if sap.DistAt(graph.NodeID(s), graph.NodeID(r)) != bap.DistAt(graph.NodeID(s), graph.NodeID(r)) ||
					sap.SigmaAt(graph.NodeID(s), graph.NodeID(r)) != bap.SigmaAt(graph.NodeID(s), graph.NodeID(r)) {
					t.Fatalf("seq/batch planes diverge at [%d][%d]", s, r)
				}
			}
		}
	}
}

// TestGrowSessionCommitBatchRejectsBatchPeers pins the cohort contract:
// strategies may not reference nodes created inside the same batch.
func TestGrowSessionCommitBatchRejectsBatchPeers(t *testing.T) {
	gs, err := NewGrowSession(graph.Star(3, 1), testParams(), 16, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	// Peer 4 would be the first batch member's identifier.
	_, err = gs.CommitBatch([]Strategy{nil, {Action{Peer: 4, Lock: 1}}})
	if err == nil {
		t.Fatal("CommitBatch accepted a peer from inside the batch")
	}
	if gs.NumNodes() != 4 {
		t.Fatalf("failed batch mutated the substrate: %d nodes", gs.NumNodes())
	}
}

// TestGrowSessionCloseIsolatedSkipsRebuild is the regression test for
// the deletion fast path: closing an already-isolated node removes no
// channels, so callers keyed on the closed count (the growth engine's
// churn step) skip the O(n·(n+m)) rebuild entirely.
func TestGrowSessionCloseIsolatedSkipsRebuild(t *testing.T) {
	gs, err := NewGrowSession(graph.Star(4, 1), testParams(), 16, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	// An arrival with an empty strategy joins isolated — the shape churn
	// hits when a budget never afforded a channel.
	u, err := gs.Commit(nil)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	closed, err := gs.CloseNode(u)
	if err != nil {
		t.Fatalf("CloseNode: %v", err)
	}
	if closed != 0 {
		t.Fatalf("CloseNode(isolated) closed %d channels, want 0", closed)
	}
	if gs.RebuildCount() != 0 {
		t.Fatalf("RebuildCount = %d before any Rebuild", gs.RebuildCount())
	}
	// The structure must still be coherent without any rebuild: pricing
	// and committing proceed as if the closure never happened.
	requireSessionMatchesRebuild(t, "isolated-close", gs)
	if _, err := gs.Commit(Strategy{{Peer: 0, Lock: 1}}); err != nil {
		t.Fatalf("Commit after skipped rebuild: %v", err)
	}
	requireSessionMatchesRebuild(t, "post-commit", gs)

	// A connected node's closure still demands the slow path.
	closed, err = gs.CloseNode(1)
	if err != nil {
		t.Fatalf("CloseNode(connected): %v", err)
	}
	if closed == 0 {
		t.Fatal("CloseNode(connected) closed nothing")
	}
	gs.Rebuild()
	if gs.RebuildCount() != 1 {
		t.Fatalf("RebuildCount = %d after one Rebuild", gs.RebuildCount())
	}
	requireSessionMatchesRebuild(t, "post-rebuild", gs)
}
