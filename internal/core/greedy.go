package core

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// GreedyConfig parametrises Algorithm 1.
type GreedyConfig struct {
	// Budget is B_u.
	Budget float64
	// Lock is l_1, the fixed amount locked into every channel (§III-B).
	Lock float64
	// Candidates restricts the peers considered; nil means every node of
	// the graph.
	Candidates []graph.NodeID
	// Model selects the revenue model; the zero value means
	// RevenueFixedRate, the model under which Theorem 4's guarantee is
	// proven.
	Model RevenueModel
	// UtilityModel selects the revenue model of the reported
	// Result.Utility; the zero value means RevenueExact (the paper's
	// real objective). High-throughput callers — the growth engine
	// pricing thousands of arrivals — set RevenueFixedRate to avoid the
	// O(n²) exact transit scan per reported plan.
	UtilityModel RevenueModel
}

// Greedy is Algorithm 1: with a fixed lock per channel, greedily add the
// channel with the best marginal simplified utility U' until the budget
// bound M = ⌊B_u/(C+l_1)⌋ is reached, then return the best prefix.
// Because U' is monotone and submodular (Theorem 2), the result is a
// (1−1/e)-approximation of the optimal U' over strategies of at most M
// fixed-lock channels (Theorem 4), using O(M·n) objective evaluations.
//
// Every marginal probe is a Push/measure/Pop on the evaluator's
// incremental state — O(n) and allocation-free per candidate — instead of
// a fresh strategy slice plus a from-scratch stats rebuild.
func Greedy(e *JoinEvaluator, cfg GreedyConfig) (Result, error) {
	if cfg.Lock < 0 || math.IsNaN(cfg.Lock) {
		return Result{}, fmt.Errorf("%w: lock %v", ErrBadParams, cfg.Lock)
	}
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) {
		return Result{}, fmt.Errorf("%w: budget %v", ErrBadParams, cfg.Budget)
	}
	model := cfg.Model
	if model == 0 {
		model = RevenueFixedRate
	}
	utilityModel := cfg.UtilityModel
	if utilityModel == 0 {
		utilityModel = RevenueExact
	}
	perChannel := e.params.OnChainCost + cfg.Lock
	maxChannels := int(cfg.Budget / perChannel)
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = allNodes(e.g)
	}
	e.ResetEvaluations()

	available := append([]graph.NodeID(nil), candidates...)
	st := e.session()
	st.Reset()
	// Under the fixed-rate model every marginal probe reads only the
	// outgoing distances, so the session runs in lean mode — the final
	// reported utility reloads the session under its own model below.
	st.setLean(model == RevenueFixedRate)
	var (
		current     Strategy
		bestLen     int
		bestValue   = math.Inf(-1)
		prefixFound bool
	)
	for len(current) < maxChannels && len(available) > 0 {
		// argmax over remaining candidates of U'(S ∪ {X}); since U'(S) is
		// a constant within the step this equals the paper's marginal
		// argmax while avoiding ∞−∞ at the first step.
		bestIdx := -1
		bestObj := math.Inf(-1)
		for i, v := range available {
			st.Push(Action{Peer: v, Lock: cfg.Lock})
			obj := st.Simplified(model)
			st.Pop()
			if obj > bestObj {
				bestObj = obj
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		accepted := Action{Peer: available[bestIdx], Lock: cfg.Lock}
		st.Push(accepted)
		current = append(current, accepted)
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		if bestObj > bestValue {
			bestValue = bestObj
			bestLen = len(current)
			prefixFound = true
		}
	}
	if !prefixFound {
		// No channel affordable: the empty strategy is the only option.
		return Result{
			Strategy:    nil,
			Objective:   e.Simplified(nil, model),
			Utility:     e.Utility(nil, utilityModel),
			Evaluations: e.Evaluations(),
		}, nil
	}
	bestPrefix := current[:bestLen].Clone()
	return Result{
		Strategy:    bestPrefix,
		Objective:   bestValue,
		Utility:     e.Utility(bestPrefix, utilityModel),
		Evaluations: e.Evaluations(),
	}, nil
}

// allNodes lists every node of g as a candidate peer.
func allNodes(g *graph.Graph) []graph.NodeID {
	nodes := make([]graph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return nodes
}
