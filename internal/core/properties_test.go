package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

var auditLocks = []float64{0, 1, 2, 5}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Params) {}, wantErr: false},
		{name: "zero C", mutate: func(p *Params) { p.OnChainCost = 0 }, wantErr: true},
		{name: "negative r", mutate: func(p *Params) { p.OppCostRate = -1 }, wantErr: true},
		{name: "negative favg", mutate: func(p *Params) { p.FAvg = -1 }, wantErr: true},
		{name: "negative hop fee", mutate: func(p *Params) { p.FeePerHop = -0.1 }, wantErr: true},
		{name: "negative rate", mutate: func(p *Params) { p.OwnRate = -2 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParamsDerived(t *testing.T) {
	p := testParams()
	if got := p.ChannelCost(10); math.Abs(got-(1+0.5)) > 1e-12 {
		t.Fatalf("ChannelCost(10) = %v, want 1.5", got)
	}
	if got := p.OnChainAlternative(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("OnChainAlternative = %v, want 1", got)
	}
	if got := p.capFactor(3); got != 1 {
		t.Fatalf("nil capFactor = %v, want 1", got)
	}
	p.CapacityFactor = func(l float64) float64 { return l } // unclamped
	if got := p.capFactor(3); got != 1 {
		t.Fatalf("capFactor clamp high = %v, want 1", got)
	}
	if got := p.capFactor(-2); got != 0 {
		t.Fatalf("capFactor clamp low = %v, want 0", got)
	}
}

func TestStrategyHelpers(t *testing.T) {
	s := Strategy{{Peer: 3, Lock: 2}, {Peer: 1, Lock: 1}, {Peer: 3, Lock: 0}}
	if got := s.SpentBudget(1); math.Abs(got-6) > 1e-12 {
		t.Fatalf("SpentBudget = %v, want 6", got)
	}
	if !s.Feasible(1, 6) || s.Feasible(1, 5.9) {
		t.Fatal("Feasible boundary wrong")
	}
	peers := s.Peers()
	if len(peers) != 2 || peers[0] != 1 || peers[1] != 3 {
		t.Fatalf("Peers = %v, want [1 3]", peers)
	}
	if got := s.TotalLocked(); got != 3 {
		t.Fatalf("TotalLocked = %v, want 3", got)
	}
	if s.String() != "{(1,1) (3,0) (3,2)}" {
		t.Fatalf("String = %q", s.String())
	}
	if !s.Equal(Strategy{{Peer: 1, Lock: 1}, {Peer: 3, Lock: 0}, {Peer: 3, Lock: 2}}) {
		t.Fatal("Equal failed on permutation")
	}
	if s.Equal(s[:2]) {
		t.Fatal("Equal matched different sizes")
	}
	c := s.Clone()
	c[0].Lock = 99
	if s[0].Lock == 99 {
		t.Fatal("Clone aliases the original")
	}
	w := s.With(Action{Peer: 2, Lock: 4})
	if len(w) != 4 || len(s) != 3 {
		t.Fatal("With mutated the receiver")
	}
}

func TestTheorem1SubmodularityOfUtility(t *testing.T) {
	// Theorem 1: U is submodular (fixed-rate model, fixed p_trans).
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedErdosRenyi(9, 0.3, 1, rng, 50)
		e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
		report := CheckSubmodularity(e, ObjectiveUtility, RevenueFixedRate, auditLocks, 400, rng)
		if report.Violations != 0 {
			t.Fatalf("trial %d: %d submodularity violations (max %v, witness %+v)",
				trial, report.Violations, report.MaxViolation, report.Witness)
		}
	}
}

func TestTheorem2SimplifiedUtilityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedErdosRenyi(9, 0.3, 1, rng, 50)
		e := newEvaluator(t, g, txdist.ModifiedZipf{S: 1}, testParams())
		report := CheckMonotonicity(e, ObjectiveSimplified, RevenueFixedRate, auditLocks, 400, rng)
		if report.Violations != 0 {
			t.Fatalf("trial %d: %d monotonicity violations (max %v, witness %+v)",
				trial, report.Violations, report.MaxViolation, report.Witness)
		}
	}
}

func TestTheorem2FullUtilityNotMonotone(t *testing.T) {
	// With channel costs high enough, adding a channel must sometimes
	// lower U — the audit should find a witness.
	rng := rand.New(rand.NewSource(79))
	g := graph.Complete(8, 1)
	params := testParams()
	params.OnChainCost = 50 // expensive channels dominate marginal gains
	e := newEvaluator(t, g, txdist.Uniform{}, params)
	report := CheckMonotonicity(e, ObjectiveUtility, RevenueFixedRate, auditLocks, 300, rng)
	if report.Violations == 0 {
		t.Fatal("expected non-monotonicity witnesses for U with expensive channels")
	}
}

func TestTheorem3UtilityCanBeNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := graph.Complete(8, 1)
	params := testParams()
	params.OnChainCost = 50
	e := newEvaluator(t, g, txdist.Uniform{}, params)
	s, u, found := FindNegativeUtility(e, RevenueFixedRate, auditLocks, 200, rng)
	if !found {
		t.Fatal("no negative-utility witness found")
	}
	if u >= 0 {
		t.Fatalf("witness %v has non-negative utility %v", s, u)
	}
}

func TestSubmodularityVacuousCounting(t *testing.T) {
	// On a disconnected graph most strategies leave the user cut off;
	// those trials must be counted vacuous, not violated.
	g := graph.New(6)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(2, 3, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(4, 5, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	rng := rand.New(rand.NewSource(89))
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	report := CheckSubmodularity(e, ObjectiveUtility, RevenueFixedRate, auditLocks, 200, rng)
	if report.Violations != 0 {
		t.Fatalf("violations on disconnected graph: %d", report.Violations)
	}
	if report.Vacuous == 0 {
		t.Fatal("expected vacuous trials on a disconnected graph")
	}
}

func TestCheckersOnTinyGraphs(t *testing.T) {
	g := graph.New(2)
	if _, _, err := g.AddChannel(0, 1, 1, 1); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	rng := rand.New(rand.NewSource(97))
	e := newEvaluator(t, g, txdist.Uniform{}, testParams())
	// n=2 < 3: submodularity needs 3 distinct peers, report is empty.
	rep := CheckSubmodularity(e, ObjectiveUtility, RevenueFixedRate, auditLocks, 10, rng)
	if rep.Violations != 0 {
		t.Fatalf("tiny graph violations = %d", rep.Violations)
	}
	rep = CheckMonotonicity(e, ObjectiveSimplified, RevenueFixedRate, auditLocks, 10, rng)
	if rep.Violations != 0 {
		t.Fatalf("tiny graph monotonicity violations = %d", rep.Violations)
	}
}

func TestObjectiveKindStrings(t *testing.T) {
	if ObjectiveSimplified.String() != "U'" || ObjectiveUtility.String() != "U" || ObjectiveBenefit.String() != "U^b" {
		t.Fatal("objective names changed")
	}
	if RevenueExact.String() != "exact" || RevenueFixedRate.String() != "fixed-rate" {
		t.Fatal("revenue model names changed")
	}
	if ObjectiveKind(99).String() == "" || RevenueModel(99).String() == "" {
		t.Fatal("unknown enum names empty")
	}
}
