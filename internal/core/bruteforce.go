package core

import (
	"fmt"
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// BruteForceConfig parametrises the exact reference optimiser.
type BruteForceConfig struct {
	// Budget is B_u.
	Budget float64
	// Locks lists the lock values a channel may take; it must be
	// non-empty.
	Locks []float64
	// MaxChannels caps the strategy size; 0 derives the cap from the
	// budget and the smallest lock.
	MaxChannels int
	// Candidates restricts the peers considered; nil means every node.
	Candidates []graph.NodeID
	// Model selects the revenue model; zero means RevenueFixedRate.
	Model RevenueModel
	// Objective selects the function to maximise; zero means
	// ObjectiveSimplified.
	Objective ObjectiveKind
	// MaxEvaluations aborts runaway searches; 0 means 2,000,000.
	MaxEvaluations int
}

// BruteForce exhaustively enumerates strategies (each candidate peer used
// at most once, locks drawn from the configured set) and returns the exact
// optimum of the selected objective under the budget. It is exponential
// in the number of candidates and exists as the reference oracle for the
// approximation-ratio experiments (E4-E6) and tests.
func BruteForce(e *JoinEvaluator, cfg BruteForceConfig) (Result, error) {
	if len(cfg.Locks) == 0 {
		return Result{}, fmt.Errorf("%w: empty lock set", ErrBadParams)
	}
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) {
		return Result{}, fmt.Errorf("%w: budget %v", ErrBadParams, cfg.Budget)
	}
	model := cfg.Model
	if model == 0 {
		model = RevenueFixedRate
	}
	kind := cfg.Objective
	if kind == 0 {
		kind = ObjectiveSimplified
	}
	maxEvals := cfg.MaxEvaluations
	if maxEvals == 0 {
		maxEvals = 2000000
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = allNodes(e.g)
	}
	maxChannels := cfg.MaxChannels
	if maxChannels == 0 {
		minLock := cfg.Locks[0]
		for _, l := range cfg.Locks[1:] {
			if l < minLock {
				minLock = l
			}
		}
		maxChannels = int(cfg.Budget / (e.params.OnChainCost + minLock))
	}
	if maxChannels > len(candidates) {
		maxChannels = len(candidates)
	}
	e.ResetEvaluations()

	best := Result{Objective: math.Inf(-1)}
	evals := 0
	truncated := false

	// The enumeration is a DFS over candidate prefixes, which maps
	// exactly onto the incremental state: push before descending, pop on
	// the way back. Each enumerated strategy costs O(n) instead of a
	// slice allocation plus a scratch stats rebuild.
	st := e.session()
	st.Reset()
	st.setLean(false)
	var current Strategy
	var rec func(idx int, spent float64)
	rec = func(idx int, spent float64) {
		if truncated {
			return
		}
		evals++
		if evals > maxEvals {
			truncated = true
			return
		}
		if obj := st.Objective(kind, model); obj > best.Objective {
			best.Objective = obj
			best.Strategy = current.Clone()
		}
		if idx >= len(candidates) || len(current) >= maxChannels {
			return
		}
		for next := idx; next < len(candidates); next++ {
			for _, lock := range cfg.Locks {
				cost := e.params.OnChainCost + lock
				if spent+cost > cfg.Budget+budgetTolerance {
					continue
				}
				a := Action{Peer: candidates[next], Lock: lock}
				st.Push(a)
				current = append(current, a)
				rec(next+1, spent+cost)
				current = current[:len(current)-1]
				st.Pop()
			}
		}
	}
	rec(0, 0)

	best.Utility = e.Utility(best.Strategy, RevenueExact)
	best.Evaluations = e.Evaluations()
	best.Truncated = truncated
	return best, nil
}
