package core

import (
	"math"

	"github.com/lightning-creation-games/lcg/internal/graph"
)

// EvalState is the incremental (delta-priced) evaluation engine: a
// mutable session over one JoinEvaluator that maintains the joinStats
// aggregates — inDist/inSigma/outDist/outSigma/outCap — as live state.
// Push(action) updates every aggregate in O(n) and Pop() restores the
// previous state exactly, so a marginal-gain probe (push, measure, pop)
// costs O(n) with zero allocations instead of the O(n·|S|) scratch
// rebuild — with maps, a sort and five slice allocations — that a
// Strategy-valued evaluation pays. All four optimisers (Greedy,
// DiscreteSearch, BruteForce, ContinuousSearch) and the evaluator's
// public pricing methods run on this engine.
//
// Determinism contract: the state is bit-identical to the scratch build.
// After any sequence of pushes and pops, every aggregate equals — bit for
// bit — what buildStats returns for the equivalent Strategy slice (the
// remaining pushed actions, oldest first). Two mechanisms make that hold:
//
//  1. Tied shortest-path contributions are re-summed in ascending peer
//     order (the scratch iteration order) whenever a push lands on the
//     current minimum, instead of being appended in push order; float
//     addition is not associative, so accumulation order is part of the
//     contract.
//  2. Pop restores the aggregates from per-depth snapshots taken at push
//     time rather than subtracting deltas; (a+b)−b is not always a in
//     floating point, memcpy is.
//
// An EvalState is not safe for concurrent use. Like evaluator clones, a
// state belongs to one worker: the parallel experiment engine gives every
// worker its own clone, and each clone owns its states.
type EvalState struct {
	e *JoinEvaluator
	n int

	// Live joinStats aggregates for the pushed multiset.
	inDist   []uint16
	inSigma  []float64
	outDist  []uint16
	outSigma []float64
	outCap   []float64

	// Per-peer channel multiplicity and capacity-factor mass, indexed by
	// node; peers lists the distinct valid peers in ascending order.
	mult    []float64
	phiMult []float64
	peers   []graph.NodeID

	frames []evalFrame
	depth  int
	cost   float64 // Σ ChannelCost(lock) over pushed actions, push order

	// lean marks the fixed-rate probe mode: only the outgoing distance
	// aggregate is maintained (and snapshotted), which is all the
	// fixed-rate objectives read — Fees and the disconnection test scan
	// outDist, revenue comes off the λ̂ table. A lean probe touches ~2
	// bytes per node against the ~34 the full state moves, which is
	// what makes Algorithm 1 pricing scale to the n=10k substrate. The
	// mode may only change while the state is empty; the in-direction
	// and path-count reading methods panic on a lean state rather than
	// serve stale aggregates.
	lean bool
}

// evalFrame is the undo record of one push: the action, the prior scalar
// state, and snapshots of the five aggregate arrays. Frames are reused
// across pushes at the same depth, so steady-state probing allocates
// nothing.
type evalFrame struct {
	action   Action
	valid    bool
	newPeer  bool
	peerIdx  int
	prevMult float64
	prevPhi  float64
	prevCost float64

	inDist   []uint16
	inSigma  []float64
	outDist  []uint16
	outSigma []float64
	outCap   []float64
}

// NewState opens an incremental evaluation session on the evaluator. The
// state shares the evaluator's immutable precomputation and counts its
// objective evaluations against the evaluator's counter.
func (e *JoinEvaluator) NewState() *EvalState {
	st := &EvalState{
		e:        e,
		n:        e.n,
		inDist:   make([]uint16, e.n),
		inSigma:  make([]float64, e.n),
		outDist:  make([]uint16, e.n),
		outSigma: make([]float64, e.n),
		outCap:   make([]float64, e.n),
		mult:     make([]float64, e.n),
		phiMult:  make([]float64, e.n),
	}
	for i := 0; i < st.n; i++ {
		st.inDist[i] = graph.Inf16
		st.outDist[i] = graph.Inf16
	}
	return st
}

// Depth reports the number of pushed actions.
func (st *EvalState) Depth() int { return st.depth }

// setLean switches the probe mode; only legal on an empty state so that
// every frame on the undo stack was snapshotted under one mode.
func (st *EvalState) setLean(lean bool) {
	if lean == st.lean {
		return
	}
	if st.depth != 0 {
		panic("core: probe-mode switch on a non-empty EvalState")
	}
	st.lean = lean
}

// loadFor resets the session into the given probe mode and loads s.
func (st *EvalState) loadFor(s Strategy, lean bool) {
	st.Reset()
	st.setLean(lean)
	for _, a := range s {
		st.Push(a)
	}
}

// Strategy returns the pushed actions as a fresh Strategy slice, oldest
// push first.
func (st *EvalState) Strategy() Strategy {
	s := make(Strategy, st.depth)
	for i := 0; i < st.depth; i++ {
		s[i] = st.frames[i].action
	}
	return s
}

// Cost returns Σ_{(v,l) pushed} L_u(v,l), accumulated in push order.
func (st *EvalState) Cost() float64 { return st.cost }

// Push adds one action to the session, updating every aggregate in O(n).
// Actions referencing peers outside the graph are carried (they count
// towards cost, matching Cost's semantics on strategy slices) but
// contribute nothing to the path structure, exactly like buildStats.
func (st *EvalState) Push(a Action) {
	if st.depth == len(st.frames) {
		// Frames are mode-aware: the outgoing-distance snapshot is always
		// needed, the four full-state arrays only on the first full-mode
		// push at this depth — lean probes never pay for them.
		st.frames = append(st.frames, evalFrame{outDist: make([]uint16, st.n)})
	}
	f := &st.frames[st.depth]
	if !st.lean && f.inDist == nil {
		f.inDist = make([]uint16, st.n)
		f.inSigma = make([]float64, st.n)
		f.outSigma = make([]float64, st.n)
		f.outCap = make([]float64, st.n)
	}
	st.depth++
	f.action = a
	f.prevCost = st.cost
	st.cost += st.e.params.ChannelCost(a.Lock)
	f.valid = st.e.g.HasNode(a.Peer)
	f.newPeer = false
	if !f.valid {
		return
	}
	if st.lean {
		copy(f.outDist, st.outDist)
	} else {
		copy(f.inDist, st.inDist)
		copy(f.inSigma, st.inSigma)
		copy(f.outDist, st.outDist)
		copy(f.outSigma, st.outSigma)
		copy(f.outCap, st.outCap)
	}

	v := a.Peer
	f.prevMult = st.mult[v]
	f.prevPhi = st.phiMult[v]
	st.mult[v]++
	st.phiMult[v] += st.e.params.capFactor(a.Lock)
	if f.prevMult == 0 {
		f.newPeer = true
		f.peerIdx = st.insertPeer(v)
	}
	if st.lean {
		st.applyPeerLean(v)
	} else {
		st.applyPeer(v)
	}
}

// Pop undoes the most recent push exactly (bitwise), restoring the
// aggregates from the push-time snapshots.
func (st *EvalState) Pop() {
	if st.depth == 0 {
		panic("core: Pop on empty EvalState")
	}
	st.depth--
	f := &st.frames[st.depth]
	st.cost = f.prevCost
	if !f.valid {
		return
	}
	v := f.action.Peer
	st.mult[v] = f.prevMult
	st.phiMult[v] = f.prevPhi
	if f.newPeer {
		st.peers = append(st.peers[:f.peerIdx], st.peers[f.peerIdx+1:]...)
	}
	if st.lean {
		copy(st.outDist, f.outDist)
		return
	}
	copy(st.inDist, f.inDist)
	copy(st.inSigma, f.inSigma)
	copy(st.outDist, f.outDist)
	copy(st.outSigma, f.outSigma)
	copy(st.outCap, f.outCap)
}

// Reset pops every pushed action, returning the session to the empty
// strategy.
func (st *EvalState) Reset() {
	for st.depth > 0 {
		st.Pop()
	}
}

// Load resets the session and pushes the strategy's actions in order, so
// the state prices s.
func (st *EvalState) Load(s Strategy) {
	st.Reset()
	for _, a := range s {
		st.Push(a)
	}
}

// insertPeer adds v to the sorted peer list and returns its index.
func (st *EvalState) insertPeer(v graph.NodeID) int {
	i := len(st.peers)
	for i > 0 && st.peers[i-1] > v {
		i--
	}
	st.peers = append(st.peers, 0)
	copy(st.peers[i+1:], st.peers[i:])
	st.peers[i] = v
	return i
}

// applyPeer folds the (already updated) multiplicity of peer v into the
// aggregates. The incoming direction walks the transposed all-pairs row
// of v and the outgoing direction the forward row, so both scans are
// contiguous. Three cases per node x:
//
//   - v is strictly closer than the current minimum: v becomes the sole
//     argmin, so the sigma aggregate is the single product the scratch
//     build would write (no accumulation, hence no order sensitivity);
//   - v ties the current minimum (including a repeat push of v): the
//     aggregate is re-summed over the argmin set in ascending peer order,
//     reproducing the scratch accumulation exactly;
//   - v is farther: nothing changes.
func (st *EvalState) applyPeer(v graph.NodeID) {
	e := st.e
	distTo := e.apT.DistRow(int(v)) // d(x, v) over x, contiguous
	sigTo := e.apT.SigmaRow(int(v))
	distFrom := e.ap.DistRow(int(v)) // d(v, x) over x, contiguous
	sigFrom := e.ap.SigmaRow(int(v))
	mv := st.mult[v]
	pv := st.phiMult[v]
	for x := 0; x < st.n; x++ {
		if d := distTo[x]; d != graph.Inf16 {
			switch {
			case st.inDist[x] == graph.Inf16 || d < st.inDist[x]:
				st.inDist[x] = d
				st.inSigma[x] = mv * sigTo[x]
			case d == st.inDist[x]:
				st.resumIn(x)
			}
		}
		if d := distFrom[x]; d != graph.Inf16 {
			switch {
			case st.outDist[x] == graph.Inf16 || d < st.outDist[x]:
				st.outDist[x] = d
				st.outSigma[x] = mv * sigFrom[x]
				st.outCap[x] = pv * sigFrom[x]
			case d == st.outDist[x]:
				st.resumOut(x)
			}
		}
	}
}

// applyPeerLean is the fixed-rate probe's applyPeer: only the outgoing
// minimum distance is maintained. Inf16 encodes +∞ as the maximum
// value, so one unsigned compare per node is the whole update — ties
// change nothing (they only affect path counts, which lean probes never
// read).
func (st *EvalState) applyPeerLean(v graph.NodeID) {
	distFrom := st.e.ap.DistRow(int(v))
	out := st.outDist
	for x, d := range distFrom {
		if d < out[x] {
			out[x] = d
		}
	}
}

// resumIn recomputes inSigma[x] over the argmin peer set in ascending
// peer order — the scratch build's accumulation order.
func (st *EvalState) resumIn(x int) {
	d := st.inDist[x]
	stride := st.e.apT.Stride
	first := true
	var sum float64
	for _, w := range st.peers {
		if st.e.apT.Dist[int(w)*stride+x] != d {
			continue
		}
		term := st.mult[w] * st.e.apT.Sigma[int(w)*stride+x]
		if first {
			sum = term
			first = false
		} else {
			sum += term
		}
	}
	st.inSigma[x] = sum
}

// resumOut recomputes outSigma[x] and outCap[x] over the argmin peer set
// in ascending peer order.
func (st *EvalState) resumOut(x int) {
	d := st.outDist[x]
	stride := st.e.ap.Stride
	first := true
	var sig, cp float64
	for _, w := range st.peers {
		if st.e.ap.Dist[int(w)*stride+x] != d {
			continue
		}
		s := st.e.ap.Sigma[int(w)*stride+x]
		if first {
			sig = st.mult[w] * s
			cp = st.phiMult[w] * s
			first = false
		} else {
			sig += st.mult[w] * s
			cp += st.phiMult[w] * s
		}
	}
	st.outSigma[x] = sig
	st.outCap[x] = cp
}

// Disconnected reports whether the pushed strategy leaves the joining
// user disconnected from some recipient it transacts with (or from the
// whole network when the strategy has no valid peer).
func (st *EvalState) Disconnected() bool {
	if st.n == 0 {
		return false
	}
	if len(st.peers) == 0 {
		return true
	}
	pu := st.e.pu
	for v := 0; v < st.n; v++ {
		if pu[v] > 0 && st.outDist[v] == graph.Inf16 {
			return true
		}
	}
	return false
}

// Fees returns E^fees_u of the pushed strategy (§II-C), +Inf when a
// positive-probability recipient is unreachable and the fee parameters
// are positive.
func (st *EvalState) Fees() float64 {
	e := st.e
	scale := e.params.OwnRate * e.params.FeePerHop
	var sum float64
	for v := 0; v < st.n; v++ {
		p := e.pu[v]
		if p == 0 {
			continue
		}
		if st.outDist[v] == graph.Inf16 {
			if scale > 0 {
				return math.Inf(1)
			}
			continue
		}
		// d_{G+S}(u, v) = 1 + min_j d(v_j, v).
		sum += p * float64(1+int(st.outDist[v]))
	}
	return scale * sum
}

// TransitRate returns the expected rate of existing-user transactions
// whose shortest path in G+S routes through the joining user, weighted by
// the capacity factor of the exit channels.
func (st *EvalState) TransitRate() float64 {
	if st.lean {
		panic("core: TransitRate on a lean (fixed-rate) evaluation state")
	}
	e := st.e
	if len(st.peers) == 0 {
		return 0
	}
	var total float64
	for src := 0; src < st.n; src++ {
		if st.inDist[src] == graph.Inf16 {
			continue
		}
		rowDist := e.ap.DistRow(src)
		rowSigma := e.ap.SigmaRow(src)
		for dst := 0; dst < st.n; dst++ {
			if dst == src || st.outDist[dst] == graph.Inf16 {
				continue
			}
			w := e.demand.PairRate(graph.NodeID(src), graph.NodeID(dst))
			if w == 0 {
				continue
			}
			dThru := int(st.inDist[src]) + 2 + int(st.outDist[dst])
			d0 := int(rowDist[dst])
			var frac float64
			switch {
			case rowDist[dst] == graph.Inf16 || dThru < d0:
				frac = 1
			case dThru == d0:
				sThru := st.inSigma[src] * st.outSigma[dst]
				frac = sThru / (rowSigma[dst] + sThru)
			default:
				continue
			}
			capRatio := 1.0
			if st.outSigma[dst] > 0 {
				capRatio = st.outCap[dst] / st.outSigma[dst]
			}
			total += w * frac * capRatio
		}
	}
	return total
}

// Revenue returns E^rev_u of the pushed strategy under the given model.
func (st *EvalState) Revenue(model RevenueModel) float64 {
	e := st.e
	switch model {
	case RevenueFixedRate:
		var sum float64
		for i := 0; i < st.depth; i++ {
			a := st.frames[i].action
			rate := e.FixedRate(a.Peer)
			sum += rate * (0.5 + 0.5*e.params.capFactor(a.Lock))
		}
		return e.params.FAvg * sum
	default:
		return e.params.FAvg * st.TransitRate()
	}
}

// Utility returns U_u = E^rev − E^fees − Σ L_u of the pushed strategy in
// one fused pass: a single O(n) scan decides disconnection and
// accumulates the fee term, and (under the exact model) one O(n²) scan
// prices transit — against the three separate stats rebuilds the scratch
// path pays. A disconnected strategy has utility −Inf.
func (st *EvalState) Utility(model RevenueModel) float64 {
	e := st.e
	e.evals++
	if st.n == 0 {
		return st.Revenue(model) - st.Fees() - st.cost
	}
	if len(st.peers) == 0 {
		return math.Inf(-1)
	}
	scale := e.params.OwnRate * e.params.FeePerHop
	var feeSum float64
	for v := 0; v < st.n; v++ {
		p := e.pu[v]
		if p == 0 {
			continue
		}
		if st.outDist[v] == graph.Inf16 {
			// A positive-probability recipient is unreachable: the
			// strategy disconnects the user regardless of fee scale.
			return math.Inf(-1)
		}
		feeSum += p * float64(1+int(st.outDist[v]))
	}
	return st.Revenue(model) - scale*feeSum - st.cost
}

// Simplified returns the monotone submodular U' = E^rev − E^fees of
// Theorem 2, the objective of Algorithms 1 and 2.
func (st *EvalState) Simplified(model RevenueModel) float64 {
	st.e.evals++
	return st.Revenue(model) - st.Fees()
}

// Benefit returns U^b = C_u + U, the §III-D objective.
func (st *EvalState) Benefit(model RevenueModel) float64 {
	return st.e.params.OnChainAlternative() + st.Utility(model)
}

// Objective evaluates the selected objective for the pushed strategy.
func (st *EvalState) Objective(kind ObjectiveKind, model RevenueModel) float64 {
	switch kind {
	case ObjectiveUtility:
		return st.Utility(model)
	case ObjectiveBenefit:
		return st.Benefit(model)
	default:
		return st.Simplified(model)
	}
}
