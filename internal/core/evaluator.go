package core

import (
	"fmt"
	"math"
	"sync"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// This file is the *precompute* layer of the evaluation engine: it builds
// the immutable all-pairs structures a JoinEvaluator shares across clones
// and owns the λ̂ estimation. The mutable per-probe machinery lives in
// evalstate.go (the incremental EvalState) and scratch.go (the
// from-scratch oracle the state is differentially tested against);
// objective.go exposes the paper's objective functions on top of both.

// RevenueModel selects how E^rev_u(S) is computed.
type RevenueModel int

const (
	// RevenueExact evaluates the true expected transit revenue of eq. 3 /
	// §IV: favg times the rate of transactions whose shortest path in
	// G+S routes through u, computed exactly from the all-pairs
	// precomputation. Under this model the utility is the real quantity
	// the paper defines, but its marginal gains depend on the rest of the
	// strategy.
	RevenueExact RevenueModel = iota + 1

	// RevenueFixedRate is the algorithmic model of §III (Theorems 1-5):
	// every candidate channel (u,v) carries a fixed estimated rate
	// λ̂(u,v) ("we assume that λ_xy is a fixed value"), so E^rev is
	// modular in S. The estimates come from EstimateRates: the transit
	// through u in the reference configuration where u connects to every
	// candidate, attributed half to the entry and half to the exit
	// channel of each forwarded transaction.
	RevenueFixedRate
)

// String renders the model name.
func (m RevenueModel) String() string {
	switch m {
	case RevenueExact:
		return "exact"
	case RevenueFixedRate:
		return "fixed-rate"
	default:
		return fmt.Sprintf("RevenueModel(%d)", int(m))
	}
}

// JoinEvaluator prices strategies for a user u joining the PCN g. It
// precomputes the all-pairs shortest-path structure of g once (O(n·(n+m)))
// and then evaluates any strategy in O(n·|S| + n²) without touching g —
// or, through an EvalState session, in O(n) per single-action change.
//
// The joining user is *not* a node of g; the evaluator models it
// virtually, which keeps the substrate immutable and evaluation cheap.
// A JoinEvaluator is not safe for concurrent use.
type JoinEvaluator struct {
	g      *graph.Graph
	ap     *graph.AllPairs // row s: distances/path counts from s
	apT    *graph.AllPairs // row t: distances/path counts towards t
	demand *traffic.Demand
	pu     []float64 // p_trans(u, v) for the joining user
	params Params
	n      int

	lambda *lambdaTable // λ̂ estimates, shared across clones
	st     *EvalState   // lazily built session for one-shot pricing
	evals  int
}

// lambdaTable holds the λ̂ estimates behind a once-guard so that every
// clone of an evaluator shares one O(n²) estimation run, no matter which
// clone first asks for a rate and from which goroutine.
type lambdaTable struct {
	once  sync.Once
	rates map[graph.NodeID]float64
}

// NewJoinEvaluator builds an evaluator for a node joining g, where dist
// models the joining user's transaction distribution and demand models the
// existing users' traffic (it must have been built for g).
func NewJoinEvaluator(g *graph.Graph, dist txdist.Distribution, demand *traffic.Demand, params Params) (*JoinEvaluator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(demand.Rates) != n {
		return nil, fmt.Errorf("%w: demand covers %d nodes, graph has %d", ErrBadParams, len(demand.Rates), n)
	}
	ap := g.AllPairsBFS()
	return &JoinEvaluator{
		g:      g,
		ap:     ap,
		apT:    ap.Transposed(),
		demand: demand,
		pu:     dist.Probs(g, graph.InvalidNode),
		params: params,
		n:      n,
		lambda: &lambdaTable{},
	}, nil
}

// Clone returns an evaluator that prices strategies independently of the
// receiver, sharing the immutable precomputation — the graph, the
// all-pairs shortest-path structures, the demand, the joining user's
// transaction probabilities and the once-guarded λ̂ table — while
// resetting the per-evaluator scratch state (the evaluation counter and
// the incremental session). Cloning is O(1).
//
// Each clone may be used by a different goroutine without locks, which is
// what makes the parallel experiment engine possible: the evaluator's
// mutations (the counter and the EvalState) live per clone, and the λ̂
// table is built exactly once across all clones no matter who asks first.
// The parameters' function fields must be pure for clones to agree with
// the original.
func (e *JoinEvaluator) Clone() *JoinEvaluator {
	c := *e
	c.evals = 0
	c.st = nil
	return &c
}

// Graph returns the underlying PCN topology.
func (e *JoinEvaluator) Graph() *graph.Graph { return e.g }

// NumNodes returns the number of existing users.
func (e *JoinEvaluator) NumNodes() int { return e.n }

// Params returns the model parameters.
func (e *JoinEvaluator) Params() Params { return e.params }

// JoinProbs returns a copy of p_trans(u, ·) for the joining user.
func (e *JoinEvaluator) JoinProbs() []float64 { return append([]float64(nil), e.pu...) }

// Evaluations reports how many utility evaluations the evaluator has
// served; the runtime statements of Theorems 4 and 5 are expressed in this
// unit.
func (e *JoinEvaluator) Evaluations() int { return e.evals }

// ResetEvaluations zeroes the evaluation counter.
func (e *JoinEvaluator) ResetEvaluations() { e.evals = 0 }

// ValidateStrategy checks that every action references a node of g with a
// non-negative lock.
func (e *JoinEvaluator) ValidateStrategy(s Strategy) error {
	for _, a := range s {
		if !e.g.HasNode(a.Peer) {
			return fmt.Errorf("%w: peer %d not in graph", ErrBadParams, a.Peer)
		}
		if a.Lock < 0 || math.IsNaN(a.Lock) {
			return fmt.Errorf("%w: lock %v for peer %d", ErrBadParams, a.Lock, a.Peer)
		}
	}
	return nil
}

// session returns the evaluator's lazily built incremental state, used to
// serve the one-shot pricing methods without rebuilding the joinStats
// tables from scratch on every call.
func (e *JoinEvaluator) session() *EvalState {
	if e.st == nil {
		e.st = e.NewState()
	}
	return e.st
}

// FixedRate returns λ̂(u, v), estimating it over all nodes of g as
// candidates on first use. The estimation runs exactly once per clone
// family: clones share the once-guarded table, so concurrent first calls
// from different workers block on one build instead of duplicating it.
func (e *JoinEvaluator) FixedRate(v graph.NodeID) float64 {
	e.lambda.once.Do(func() {
		all := make([]graph.NodeID, e.n)
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		e.lambda.rates = e.EstimateRates(all)
	})
	return e.lambda.rates[v]
}

// SetFixedRates overrides the λ̂ estimates, e.g. to restrict the reference
// configuration to a candidate subset or to inject measured rates. The
// override is local to this evaluator: clones made earlier keep the
// shared table, clones made later inherit the override.
func (e *JoinEvaluator) SetFixedRates(rates map[graph.NodeID]float64) {
	t := &lambdaTable{rates: rates}
	t.once.Do(func() {}) // mark built so the estimator never overwrites it
	e.lambda = t
}

// EstimateRates performs the paper's "estimation of the λ_uv parameter":
// for every candidate peer v it returns the transit rate through u
// attributable to the channel (u,v) in the reference configuration where u
// is connected once to every candidate. Each forwarded transaction crosses
// one entry and one exit channel of u; its rate is attributed half to
// each, so Σ_v λ̂(u,v) equals the total transit rate of the reference
// configuration.
func (e *JoinEvaluator) EstimateRates(candidates []graph.NodeID) map[graph.NodeID]float64 {
	rates := make(map[graph.NodeID]float64, len(candidates))
	ref := make(Strategy, 0, len(candidates))
	for _, v := range candidates {
		if e.g.HasNode(v) {
			rates[v] = 0
			ref = append(ref, Action{Peer: v})
		}
	}
	if len(ref) == 0 {
		return rates
	}
	n := e.n
	st := e.buildStats(ref)
	// Pre-collect the argmin peer sets per node for entry and exit, as
	// flat CSR-style lists, and accumulate the per-peer mass into a
	// dense vector — the hot loop then touches no maps and no per-node
	// slice headers. Each peer's additions happen in exactly the order
	// the map-based accumulation performed them, so the totals are
	// bit-identical.
	acc := make([]float64, n)
	entryOff := make([]int32, n+1)
	exitOff := make([]int32, n+1)
	var entryCnt, exitCnt int
	for x := 0; x < n; x++ {
		toX := e.apT.DistRow(x)
		fromX := e.ap.DistRow(x)
		for _, v := range st.peers {
			if d := fromX[v]; d != graph.Inf16 && d == st.inDist[x] {
				entryCnt++
			}
			if d := toX[v]; d != graph.Inf16 && d == st.outDist[x] {
				exitCnt++
			}
		}
		entryOff[x+1] = int32(entryCnt)
		exitOff[x+1] = int32(exitCnt)
	}
	entry := make([]int32, entryCnt)
	exit := make([]int32, exitCnt)
	entryCnt, exitCnt = 0, 0
	for x := 0; x < n; x++ {
		toX := e.apT.DistRow(x)
		fromX := e.ap.DistRow(x)
		for _, v := range st.peers {
			if d := fromX[v]; d != graph.Inf16 && d == st.inDist[x] {
				entry[entryCnt] = int32(v)
				entryCnt++
			}
			if d := toX[v]; d != graph.Inf16 && d == st.outDist[x] {
				exit[exitCnt] = int32(v)
				exitCnt++
			}
		}
	}
	for src := 0; src < n; src++ {
		if st.inDist[src] == graph.Inf16 {
			continue
		}
		rowDist := e.ap.DistRow(src)
		rowSigma := e.ap.SigmaRow(src)
		for dst := 0; dst < n; dst++ {
			if dst == src || st.outDist[dst] == graph.Inf16 {
				continue
			}
			w := e.demand.PairRate(graph.NodeID(src), graph.NodeID(dst))
			if w == 0 {
				continue
			}
			dThru := int(st.inDist[src]) + 2 + int(st.outDist[dst])
			d0 := int(rowDist[dst])
			var frac float64
			switch {
			case rowDist[dst] == graph.Inf16 || dThru < d0:
				frac = 1
			case dThru == d0:
				sThru := st.inSigma[src] * st.outSigma[dst]
				frac = sThru / (rowSigma[dst] + sThru)
			default:
				continue
			}
			flow := w * frac
			for _, vi := range entry[entryOff[src]:entryOff[src+1]] {
				acc[vi] += 0.5 * flow * e.ap.SigmaAt(graph.NodeID(src), graph.NodeID(vi)) / st.inSigma[src]
			}
			for _, vj := range exit[exitOff[dst]:exitOff[dst+1]] {
				acc[vj] += 0.5 * flow * e.ap.SigmaAt(graph.NodeID(vj), graph.NodeID(dst)) / st.outSigma[dst]
			}
		}
	}
	for v := range rates {
		rates[v] = acc[v]
	}
	return rates
}
