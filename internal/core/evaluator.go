package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// RevenueModel selects how E^rev_u(S) is computed.
type RevenueModel int

const (
	// RevenueExact evaluates the true expected transit revenue of eq. 3 /
	// §IV: favg times the rate of transactions whose shortest path in
	// G+S routes through u, computed exactly from the all-pairs
	// precomputation. Under this model the utility is the real quantity
	// the paper defines, but its marginal gains depend on the rest of the
	// strategy.
	RevenueExact RevenueModel = iota + 1

	// RevenueFixedRate is the algorithmic model of §III (Theorems 1-5):
	// every candidate channel (u,v) carries a fixed estimated rate
	// λ̂(u,v) ("we assume that λ_xy is a fixed value"), so E^rev is
	// modular in S. The estimates come from EstimateRates: the transit
	// through u in the reference configuration where u connects to every
	// candidate, attributed half to the entry and half to the exit
	// channel of each forwarded transaction.
	RevenueFixedRate
)

// String renders the model name.
func (m RevenueModel) String() string {
	switch m {
	case RevenueExact:
		return "exact"
	case RevenueFixedRate:
		return "fixed-rate"
	default:
		return fmt.Sprintf("RevenueModel(%d)", int(m))
	}
}

// JoinEvaluator prices strategies for a user u joining the PCN g. It
// precomputes the all-pairs shortest-path structure of g once (O(n·(n+m)))
// and then evaluates any strategy in O(n·|S| + n²) without touching g.
//
// The joining user is *not* a node of g; the evaluator models it
// virtually, which keeps the substrate immutable and evaluation cheap.
// A JoinEvaluator is not safe for concurrent use.
type JoinEvaluator struct {
	g      *graph.Graph
	ap     *graph.AllPairs
	demand *traffic.Demand
	pu     []float64 // p_trans(u, v) for the joining user
	params Params
	n      int

	fixedRates map[graph.NodeID]float64
	evals      int
}

// NewJoinEvaluator builds an evaluator for a node joining g, where dist
// models the joining user's transaction distribution and demand models the
// existing users' traffic (it must have been built for g).
func NewJoinEvaluator(g *graph.Graph, dist txdist.Distribution, demand *traffic.Demand, params Params) (*JoinEvaluator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(demand.Rates) != n {
		return nil, fmt.Errorf("%w: demand covers %d nodes, graph has %d", ErrBadParams, len(demand.Rates), n)
	}
	return &JoinEvaluator{
		g:      g,
		ap:     g.AllPairsBFS(),
		demand: demand,
		pu:     dist.Probs(g, graph.InvalidNode),
		params: params,
		n:      n,
	}, nil
}

// Clone returns an evaluator that prices strategies independently of the
// receiver, sharing the immutable precomputation — the graph, the
// all-pairs shortest-path structure, the demand, the joining user's
// transaction probabilities and (if already built) the λ̂ estimates —
// while resetting the per-evaluator scratch state (the evaluation
// counter). Cloning is O(1).
//
// Each clone may be used by a different goroutine without locks, which is
// what makes the parallel experiment engine possible: the evaluator's
// only mutations are the evaluation counter and the lazily built λ̂
// table, and both live per clone. Call FixedRate (or any fixed-rate
// optimiser) once before cloning so the λ̂ table is built once and
// shared; clones created before it exists each build their own identical
// copy on first use. The parameters' function fields must be pure for
// clones to agree with the original.
func (e *JoinEvaluator) Clone() *JoinEvaluator {
	c := *e
	c.evals = 0
	return &c
}

// Graph returns the underlying PCN topology.
func (e *JoinEvaluator) Graph() *graph.Graph { return e.g }

// NumNodes returns the number of existing users.
func (e *JoinEvaluator) NumNodes() int { return e.n }

// Params returns the model parameters.
func (e *JoinEvaluator) Params() Params { return e.params }

// JoinProbs returns a copy of p_trans(u, ·) for the joining user.
func (e *JoinEvaluator) JoinProbs() []float64 { return append([]float64(nil), e.pu...) }

// Evaluations reports how many utility evaluations the evaluator has
// served; the runtime statements of Theorems 4 and 5 are expressed in this
// unit.
func (e *JoinEvaluator) Evaluations() int { return e.evals }

// ResetEvaluations zeroes the evaluation counter.
func (e *JoinEvaluator) ResetEvaluations() { e.evals = 0 }

// ValidateStrategy checks that every action references a node of g with a
// non-negative lock.
func (e *JoinEvaluator) ValidateStrategy(s Strategy) error {
	for _, a := range s {
		if !e.g.HasNode(a.Peer) {
			return fmt.Errorf("%w: peer %d not in graph", ErrBadParams, a.Peer)
		}
		if a.Lock < 0 || math.IsNaN(a.Lock) {
			return fmt.Errorf("%w: lock %v for peer %d", ErrBadParams, a.Lock, a.Peer)
		}
	}
	return nil
}

// joinStats aggregates the through-u shortest-path structure of G+S.
//
// For every existing node x:
//
//	inDist[x]   = min_{v_i ∈ peers} d(x, v_i)   (hops to reach u's door)
//	inSigma[x]  = Σ_{v_i achieving the min} mult(v_i)·σ(x, v_i)
//	outDist[x]  = min_{v_j ∈ peers} d(v_j, x)
//	outSigma[x] = Σ_{v_j achieving the min} mult(v_j)·σ(v_j, x)
//	outCap[x]   = Σ_{v_j achieving the min} φmult(v_j)·σ(v_j, x)
//
// where mult(v) counts parallel channels to v and φmult(v) is the sum of
// the capacity factors of those channels. A shortest s→r path through u
// has length inDist[s] + 2 + outDist[r]; the standard concatenation
// argument shows each such concatenation is a valid simple path whenever
// it achieves the true G+S distance.
type joinStats struct {
	inDist   []int
	inSigma  []float64
	outDist  []int
	outSigma []float64
	outCap   []float64
	peers    []graph.NodeID
}

func (e *JoinEvaluator) buildStats(s Strategy) joinStats {
	mult := make(map[graph.NodeID]float64, len(s))
	phiMult := make(map[graph.NodeID]float64, len(s))
	for _, a := range s {
		if !e.g.HasNode(a.Peer) {
			continue // defensive: invalid peers contribute nothing
		}
		mult[a.Peer]++
		phiMult[a.Peer] += e.params.capFactor(a.Lock)
	}
	peers := make([]graph.NodeID, 0, len(mult))
	for p := range mult {
		peers = append(peers, p)
	}
	// Deterministic iteration order keeps floating-point accumulation —
	// and therefore every downstream table — reproducible per seed.
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	st := joinStats{
		inDist:   make([]int, e.n),
		inSigma:  make([]float64, e.n),
		outDist:  make([]int, e.n),
		outSigma: make([]float64, e.n),
		outCap:   make([]float64, e.n),
		peers:    peers,
	}
	for x := 0; x < e.n; x++ {
		st.inDist[x] = graph.Unreachable
		st.outDist[x] = graph.Unreachable
		for _, v := range peers {
			if d := e.ap.Dist[x][v]; d != graph.Unreachable {
				switch {
				case st.inDist[x] == graph.Unreachable || d < st.inDist[x]:
					st.inDist[x] = d
					st.inSigma[x] = mult[v] * e.ap.Sigma[x][v]
				case d == st.inDist[x]:
					st.inSigma[x] += mult[v] * e.ap.Sigma[x][v]
				}
			}
			if d := e.ap.Dist[v][x]; d != graph.Unreachable {
				switch {
				case st.outDist[x] == graph.Unreachable || d < st.outDist[x]:
					st.outDist[x] = d
					st.outSigma[x] = mult[v] * e.ap.Sigma[v][x]
					st.outCap[x] = phiMult[v] * e.ap.Sigma[v][x]
				case d == st.outDist[x]:
					st.outSigma[x] += mult[v] * e.ap.Sigma[v][x]
					st.outCap[x] += phiMult[v] * e.ap.Sigma[v][x]
				}
			}
		}
	}
	return st
}

// TransitRate returns the expected rate of existing-user transactions
// whose shortest path in G+S routes through the joining user, weighted by
// the capacity factor of the exit channels. With a nil CapacityFactor this
// is exactly the through-u transit rate.
func (e *JoinEvaluator) TransitRate(s Strategy) float64 {
	st := e.buildStats(s)
	if len(st.peers) == 0 {
		return 0
	}
	var total float64
	for src := 0; src < e.n; src++ {
		if st.inDist[src] == graph.Unreachable {
			continue
		}
		rowDist := e.ap.Dist[src]
		rowSigma := e.ap.Sigma[src]
		for dst := 0; dst < e.n; dst++ {
			if dst == src || st.outDist[dst] == graph.Unreachable {
				continue
			}
			w := e.demand.PairRate(graph.NodeID(src), graph.NodeID(dst))
			if w == 0 {
				continue
			}
			dThru := st.inDist[src] + 2 + st.outDist[dst]
			d0 := rowDist[dst]
			var frac float64
			switch {
			case d0 == graph.Unreachable || dThru < d0:
				frac = 1
			case dThru == d0:
				sThru := st.inSigma[src] * st.outSigma[dst]
				frac = sThru / (rowSigma[dst] + sThru)
			default:
				continue
			}
			capRatio := 1.0
			if st.outSigma[dst] > 0 {
				capRatio = st.outCap[dst] / st.outSigma[dst]
			}
			total += w * frac * capRatio
		}
	}
	return total
}

// Revenue returns E^rev_u(S) under the given model (eq. 3).
func (e *JoinEvaluator) Revenue(s Strategy, model RevenueModel) float64 {
	switch model {
	case RevenueFixedRate:
		var sum float64
		for _, a := range s {
			rate := e.FixedRate(a.Peer)
			sum += rate * (0.5 + 0.5*e.params.capFactor(a.Lock))
		}
		return e.params.FAvg * sum
	default:
		return e.params.FAvg * e.TransitRate(s)
	}
}

// Fees returns E^fees_u(S) = N_u · f^T_avg · Σ_v d_{G+S}(u,v)·p_trans(u,v)
// (§II-C). Distances use the paper's convention d(u,v) = +∞ for
// unreachable targets, so the result is +Inf whenever the strategy leaves
// a positive-probability recipient unreachable (and the fee parameters are
// positive).
func (e *JoinEvaluator) Fees(s Strategy) float64 {
	scale := e.params.OwnRate * e.params.FeePerHop
	st := e.buildStats(s)
	var sum float64
	for v := 0; v < e.n; v++ {
		p := e.pu[v]
		if p == 0 {
			continue
		}
		if st.outDist[v] == graph.Unreachable {
			if scale > 0 {
				return math.Inf(1)
			}
			continue
		}
		// d_{G+S}(u, v) = 1 + min_j d(v_j, v).
		sum += p * float64(1+st.outDist[v])
	}
	return scale * sum
}

// Cost returns Σ_{(v,l)∈S} L_u(v,l) = Σ (C + r·l).
func (e *JoinEvaluator) Cost(s Strategy) float64 {
	var total float64
	for _, a := range s {
		total += e.params.ChannelCost(a.Lock)
	}
	return total
}

// Disconnected reports whether the strategy leaves the joining user
// disconnected from some recipient it transacts with (or from the whole
// network when S is empty).
func (e *JoinEvaluator) Disconnected(s Strategy) bool {
	if e.n == 0 {
		return false
	}
	st := e.buildStats(s)
	if len(st.peers) == 0 {
		return true
	}
	for v := 0; v < e.n; v++ {
		if e.pu[v] > 0 && st.outDist[v] == graph.Unreachable {
			return true
		}
	}
	return false
}

// Utility returns U_u(S) = E^rev − E^fees − Σ L_u (§II-C). A strategy
// that leaves the user disconnected has utility −Inf, matching the
// paper's convention.
func (e *JoinEvaluator) Utility(s Strategy, model RevenueModel) float64 {
	e.evals++
	if e.Disconnected(s) {
		return math.Inf(-1)
	}
	return e.Revenue(s, model) - e.Fees(s) - e.Cost(s)
}

// Simplified returns the monotone submodular U'_u(S) = E^rev − E^fees of
// Theorem 2, the objective of Algorithms 1 and 2.
func (e *JoinEvaluator) Simplified(s Strategy, model RevenueModel) float64 {
	e.evals++
	return e.Revenue(s, model) - e.Fees(s)
}

// Benefit returns U^b_u(S) = C_u + U_u(S), the §III-D objective that
// captures the gain over transacting on-chain.
func (e *JoinEvaluator) Benefit(s Strategy, model RevenueModel) float64 {
	return e.params.OnChainAlternative() + e.Utility(s, model)
}

// BenefitPositivityHolds checks the paper's sufficient condition for the
// benefit function to stay positive for a single channel action:
// E^fees + (B_u/C)·L_u(v,l) < C_u (§III-D).
func (e *JoinEvaluator) BenefitPositivityHolds(s Strategy, budget float64) bool {
	fees := e.Fees(s)
	if math.IsInf(fees, 1) {
		return false
	}
	var maxCost float64
	for _, a := range s {
		if c := e.params.ChannelCost(a.Lock); c > maxCost {
			maxCost = c
		}
	}
	return fees+budget/e.params.OnChainCost*maxCost < e.params.OnChainAlternative()
}

// FixedRate returns λ̂(u, v), estimating it lazily over all nodes of g as
// candidates on first use.
func (e *JoinEvaluator) FixedRate(v graph.NodeID) float64 {
	if e.fixedRates == nil {
		all := make([]graph.NodeID, e.n)
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		e.fixedRates = e.EstimateRates(all)
	}
	return e.fixedRates[v]
}

// SetFixedRates overrides the λ̂ estimates, e.g. to restrict the reference
// configuration to a candidate subset or to inject measured rates.
func (e *JoinEvaluator) SetFixedRates(rates map[graph.NodeID]float64) {
	e.fixedRates = rates
}

// EstimateRates performs the paper's "estimation of the λ_uv parameter":
// for every candidate peer v it returns the transit rate through u
// attributable to the channel (u,v) in the reference configuration where u
// is connected once to every candidate. Each forwarded transaction crosses
// one entry and one exit channel of u; its rate is attributed half to
// each, so Σ_v λ̂(u,v) equals the total transit rate of the reference
// configuration.
func (e *JoinEvaluator) EstimateRates(candidates []graph.NodeID) map[graph.NodeID]float64 {
	rates := make(map[graph.NodeID]float64, len(candidates))
	ref := make(Strategy, 0, len(candidates))
	for _, v := range candidates {
		if e.g.HasNode(v) {
			rates[v] = 0
			ref = append(ref, Action{Peer: v})
		}
	}
	if len(ref) == 0 {
		return rates
	}
	st := e.buildStats(ref)
	// Pre-collect the argmin peer sets per node for entry and exit.
	entry := make([][]graph.NodeID, e.n)
	exit := make([][]graph.NodeID, e.n)
	for x := 0; x < e.n; x++ {
		for _, v := range st.peers {
			if d := e.ap.Dist[x][v]; d != graph.Unreachable && d == st.inDist[x] {
				entry[x] = append(entry[x], v)
			}
			if d := e.ap.Dist[v][x]; d != graph.Unreachable && d == st.outDist[x] {
				exit[x] = append(exit[x], v)
			}
		}
	}
	for src := 0; src < e.n; src++ {
		if st.inDist[src] == graph.Unreachable {
			continue
		}
		for dst := 0; dst < e.n; dst++ {
			if dst == src || st.outDist[dst] == graph.Unreachable {
				continue
			}
			w := e.demand.PairRate(graph.NodeID(src), graph.NodeID(dst))
			if w == 0 {
				continue
			}
			dThru := st.inDist[src] + 2 + st.outDist[dst]
			d0 := e.ap.Dist[src][dst]
			var frac float64
			switch {
			case d0 == graph.Unreachable || dThru < d0:
				frac = 1
			case dThru == d0:
				sThru := st.inSigma[src] * st.outSigma[dst]
				frac = sThru / (e.ap.Sigma[src][dst] + sThru)
			default:
				continue
			}
			flow := w * frac
			for _, vi := range entry[src] {
				rates[vi] += 0.5 * flow * e.ap.Sigma[src][vi] / st.inSigma[src]
			}
			for _, vj := range exit[dst] {
				rates[vj] += 0.5 * flow * e.ap.Sigma[vj][dst] / st.outSigma[dst]
			}
		}
	}
	return rates
}
