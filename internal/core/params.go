// Package core implements the paper's primary contribution (§II-C and
// §III): the utility function of a user joining a payment channel network
// and the approximation algorithms that optimise it under a budget.
//
// The utility of a joining user u under strategy S (a set of channels with
// locked amounts) is
//
//	U_u(S) = E^rev_u(S) − E^fees_u(S) − Σ_{(v,l)∈S} L_u(v,l)
//
// with expected routing revenue E^rev (eq. 3), expected fees paid E^fees,
// and per-channel cost L_u(v,l) = C + r·l (on-chain cost plus opportunity
// cost of the locked capital). The simplified utility U' = E^rev − E^fees
// of Theorem 2 is monotone and submodular and is what Algorithms 1 and 2
// optimise; §III-D's benefit function U^b = C_u + U is used by the
// continuous algorithm.
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParams reports invalid model parameters.
var ErrBadParams = errors.New("core: invalid parameters")

// Params collects the economic parameters of §II-C.
type Params struct {
	// OnChainCost is C: the expected total on-chain cost a party bears per
	// channel (half the opening fee plus the expected share of the closing
	// fee; the paper shows this totals C per party).
	OnChainCost float64

	// OppCostRate is r in l_u = r·c_u: the opportunity cost per unit of
	// locked capital for the lifetime of the channel.
	OppCostRate float64

	// FAvg is favg: the expected routing fee an intermediary earns per
	// forwarded transaction (§II-A).
	FAvg float64

	// FeePerHop is f^T_avg: the expected fee the user pays per hop when
	// sending their own transactions.
	FeePerHop float64

	// OwnRate is N_u: the expected number of transactions the joining
	// user sends per unit of time.
	OwnRate float64

	// CapacityFactor optionally models how the capital locked into a
	// channel limits the share of transit it can forward: a channel with
	// lock l forwards a fraction CapacityFactor(l) of its potential exit
	// traffic (e.g. the CDF of the transaction-size distribution). A nil
	// factor reproduces the paper's base model in which locked capital
	// does not gate revenue.
	CapacityFactor func(lock float64) float64

	// ChannelCostFn optionally replaces the linear per-channel cost
	// C + r·lock with a richer model, e.g. the interest-rate cost of
	// Guasoni et al. [17] that the paper names as future work. The
	// function must return the total cost of one channel given its lock;
	// it must be non-negative for the optimisers' guarantees to carry
	// (the cost term stays modular, so Theorems 1-5 are unaffected —
	// property-tested in the suite). A nil function keeps the paper's
	// base model.
	ChannelCostFn func(lock float64) float64
}

// Validate checks the parameters for internal consistency.
func (p Params) Validate() error {
	switch {
	case p.OnChainCost <= 0:
		return fmt.Errorf("%w: OnChainCost %v must be positive", ErrBadParams, p.OnChainCost)
	case p.OppCostRate < 0:
		return fmt.Errorf("%w: OppCostRate %v must be non-negative", ErrBadParams, p.OppCostRate)
	case p.FAvg < 0:
		return fmt.Errorf("%w: FAvg %v must be non-negative", ErrBadParams, p.FAvg)
	case p.FeePerHop < 0:
		return fmt.Errorf("%w: FeePerHop %v must be non-negative", ErrBadParams, p.FeePerHop)
	case p.OwnRate < 0:
		return fmt.Errorf("%w: OwnRate %v must be non-negative", ErrBadParams, p.OwnRate)
	}
	return nil
}

// ChannelCost returns L_u(v, l), the total cost the user bears for one
// channel with lock l: C + r·l in the paper's base model (§II-C), or
// ChannelCostFn(l) when the extended cost model is configured.
func (p Params) ChannelCost(lock float64) float64 {
	if p.ChannelCostFn != nil {
		return p.ChannelCostFn(lock)
	}
	return p.OnChainCost + p.OppCostRate*lock
}

// GuasoniCost returns a ChannelCostFn in the spirit of Guasoni et al.
// [17]: an on-chain component plus the present-value cost of locking
// capital at interest rate rho over an expected channel lifetime:
// C + lock·(1 − e^{−rho·lifetime}). It degenerates to the linear model
// for small rho·lifetime.
func GuasoniCost(onChain, rho, lifetime float64) func(lock float64) float64 {
	discount := 1 - math.Exp(-rho*lifetime)
	return func(lock float64) float64 {
		return onChain + lock*discount
	}
}

// OnChainAlternative returns C_u = N_u·C/2: the expected on-chain cost the
// user would pay transacting entirely on the blockchain (§III-D). It is
// the additive constant of the benefit function U^b = C_u + U.
func (p Params) OnChainAlternative() float64 {
	return p.OwnRate * p.OnChainCost / 2
}

// capFactor evaluates the capacity factor, defaulting to 1 (the paper's
// base model) and clamping to [0, 1].
func (p Params) capFactor(lock float64) float64 {
	if p.CapacityFactor == nil {
		return 1
	}
	f := p.CapacityFactor(lock)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
