package core

import (
	"fmt"
	"math"
)

// ObjectiveKind selects which of the paper's objective functions an
// optimiser or auditor targets.
type ObjectiveKind int

const (
	// ObjectiveSimplified is U' = E^rev − E^fees (Theorem 2): monotone and
	// submodular; the objective of Algorithms 1 and 2.
	ObjectiveSimplified ObjectiveKind = iota + 1
	// ObjectiveUtility is the full U = E^rev − E^fees − ΣL_u (§II-C):
	// submodular but non-monotone (Theorems 1-2).
	ObjectiveUtility
	// ObjectiveBenefit is U^b = C_u + U (§III-D): the continuous
	// algorithm's non-negative target.
	ObjectiveBenefit
)

// String renders the objective name.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveSimplified:
		return "U'"
	case ObjectiveUtility:
		return "U"
	case ObjectiveBenefit:
		return "U^b"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// The Strategy-valued pricing methods below are the one-shot surface of
// the evaluation engine: each call loads the strategy into the
// evaluator's incremental session (evalstate.go) and reads the fused
// objective off it. Callers that price many related strategies should
// hold an EvalState directly and Push/Pop instead, paying O(n) per probe.

// TransitRate returns the expected rate of existing-user transactions
// whose shortest path in G+S routes through the joining user, weighted by
// the capacity factor of the exit channels. With a nil CapacityFactor this
// is exactly the through-u transit rate.
func (e *JoinEvaluator) TransitRate(s Strategy) float64 {
	st := e.session()
	st.loadFor(s, false)
	return st.TransitRate()
}

// Revenue returns E^rev_u(S) under the given model (eq. 3).
func (e *JoinEvaluator) Revenue(s Strategy, model RevenueModel) float64 {
	switch model {
	case RevenueFixedRate:
		// Modular in S: no path structure needed.
		var sum float64
		for _, a := range s {
			rate := e.FixedRate(a.Peer)
			sum += rate * (0.5 + 0.5*e.params.capFactor(a.Lock))
		}
		return e.params.FAvg * sum
	default:
		return e.params.FAvg * e.TransitRate(s)
	}
}

// Fees returns E^fees_u(S) = N_u · f^T_avg · Σ_v d_{G+S}(u,v)·p_trans(u,v)
// (§II-C). Distances use the paper's convention d(u,v) = +∞ for
// unreachable targets, so the result is +Inf whenever the strategy leaves
// a positive-probability recipient unreachable (and the fee parameters are
// positive).
func (e *JoinEvaluator) Fees(s Strategy) float64 {
	st := e.session()
	st.loadFor(s, true) // fees read only the outgoing distances
	return st.Fees()
}

// Cost returns Σ_{(v,l)∈S} L_u(v,l) = Σ (C + r·l).
func (e *JoinEvaluator) Cost(s Strategy) float64 {
	var total float64
	for _, a := range s {
		total += e.params.ChannelCost(a.Lock)
	}
	return total
}

// Disconnected reports whether the strategy leaves the joining user
// disconnected from some recipient it transacts with (or from the whole
// network when S is empty).
func (e *JoinEvaluator) Disconnected(s Strategy) bool {
	if e.n == 0 {
		return false
	}
	st := e.session()
	st.loadFor(s, true) // reachability reads only the outgoing distances
	return st.Disconnected()
}

// Utility returns U_u(S) = E^rev − E^fees − Σ L_u (§II-C). A strategy
// that leaves the user disconnected has utility −Inf, matching the
// paper's convention. The evaluation runs as one fused pass over the
// incremental state instead of the historical three stats rebuilds.
func (e *JoinEvaluator) Utility(s Strategy, model RevenueModel) float64 {
	st := e.session()
	st.loadFor(s, model == RevenueFixedRate)
	return st.Utility(model)
}

// Simplified returns the monotone submodular U'_u(S) = E^rev − E^fees of
// Theorem 2, the objective of Algorithms 1 and 2.
func (e *JoinEvaluator) Simplified(s Strategy, model RevenueModel) float64 {
	st := e.session()
	st.loadFor(s, model == RevenueFixedRate)
	return st.Simplified(model)
}

// Benefit returns U^b_u(S) = C_u + U_u(S), the §III-D objective that
// captures the gain over transacting on-chain.
func (e *JoinEvaluator) Benefit(s Strategy, model RevenueModel) float64 {
	return e.params.OnChainAlternative() + e.Utility(s, model)
}

// BenefitPositivityHolds checks the paper's sufficient condition for the
// benefit function to stay positive for a single channel action:
// E^fees + (B_u/C)·L_u(v,l) < C_u (§III-D).
func (e *JoinEvaluator) BenefitPositivityHolds(s Strategy, budget float64) bool {
	fees := e.Fees(s)
	if math.IsInf(fees, 1) {
		return false
	}
	var maxCost float64
	for _, a := range s {
		if c := e.params.ChannelCost(a.Lock); c > maxCost {
			maxCost = c
		}
	}
	return fees+budget/e.params.OnChainCost*maxCost < e.params.OnChainAlternative()
}

// Objective evaluates the selected objective for a strategy.
func (e *JoinEvaluator) Objective(kind ObjectiveKind, s Strategy, model RevenueModel) float64 {
	switch kind {
	case ObjectiveUtility:
		return e.Utility(s, model)
	case ObjectiveBenefit:
		return e.Benefit(s, model)
	default:
		return e.Simplified(s, model)
	}
}

// Result reports the outcome of an optimisation run.
type Result struct {
	// Strategy is the selected channel set.
	Strategy Strategy
	// Objective is the value of the algorithm's objective at Strategy.
	Objective float64
	// Utility is the full utility U of Strategy. By default it is
	// evaluated under the exact revenue model (the paper's real
	// objective), so results are comparable across algorithms and
	// revenue models; Greedy callers may select a different model via
	// GreedyConfig.UtilityModel (the growth engine reports fixed-rate
	// utilities to avoid the O(n²) exact scan per arrival).
	Utility float64
	// Evaluations counts objective evaluations consumed by the run, the
	// unit in which Theorems 4 and 5 state their runtimes.
	Evaluations int
	// Truncated reports that a search-space cap stopped the run before
	// exhausting the space (DiscreteSearch and BruteForce only).
	Truncated bool
}
