package core

import "fmt"

// ObjectiveKind selects which of the paper's objective functions an
// optimiser or auditor targets.
type ObjectiveKind int

const (
	// ObjectiveSimplified is U' = E^rev − E^fees (Theorem 2): monotone and
	// submodular; the objective of Algorithms 1 and 2.
	ObjectiveSimplified ObjectiveKind = iota + 1
	// ObjectiveUtility is the full U = E^rev − E^fees − ΣL_u (§II-C):
	// submodular but non-monotone (Theorems 1-2).
	ObjectiveUtility
	// ObjectiveBenefit is U^b = C_u + U (§III-D): the continuous
	// algorithm's non-negative target.
	ObjectiveBenefit
)

// String renders the objective name.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveSimplified:
		return "U'"
	case ObjectiveUtility:
		return "U"
	case ObjectiveBenefit:
		return "U^b"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective evaluates the selected objective for a strategy.
func (e *JoinEvaluator) Objective(kind ObjectiveKind, s Strategy, model RevenueModel) float64 {
	switch kind {
	case ObjectiveUtility:
		return e.Utility(s, model)
	case ObjectiveBenefit:
		return e.Benefit(s, model)
	default:
		return e.Simplified(s, model)
	}
}

// Result reports the outcome of an optimisation run.
type Result struct {
	// Strategy is the selected channel set.
	Strategy Strategy
	// Objective is the value of the algorithm's objective at Strategy.
	Objective float64
	// Utility is the full utility U of Strategy under the exact revenue
	// model (the paper's real objective), so results are comparable
	// across algorithms and revenue models.
	Utility float64
	// Evaluations counts objective evaluations consumed by the run, the
	// unit in which Theorems 4 and 5 state their runtimes.
	Evaluations int
	// Truncated reports that a search-space cap stopped the run before
	// exhausting the space (DiscreteSearch and BruteForce only).
	Truncated bool
}
