package graph

import (
	"math/rand"
	"testing"
)

// FuzzConnectedErdosRenyi fuzzes the retry/fallback logic of the
// connected-G(n,p) generator across the whole parameter space — sizes,
// edge probabilities (including the degenerate 0 and 1), retry budgets
// (including 0, which forces the fallback immediately) — and asserts the
// invariants the experiment corpus relies on: strong connectivity,
// symmetric channel pairs, no self loops, and determinism per seed.
func FuzzConnectedErdosRenyi(f *testing.F) {
	f.Add(int64(1), uint8(8), float64(0.2), uint8(5))
	f.Add(int64(2), uint8(3), float64(0), uint8(0))
	f.Add(int64(3), uint8(20), float64(1), uint8(1))
	f.Add(int64(4), uint8(5), float64(0.01), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, p float64, triesRaw uint8) {
		n := int(nRaw%32) + 2
		if p < 0 || p > 1 || p != p {
			t.Skip()
		}
		maxTries := int(triesRaw % 8)
		g := ConnectedErdosRenyi(n, p, 1, rand.New(rand.NewSource(seed)), maxTries)
		if g.NumNodes() != n {
			t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
		}
		if !g.StronglyConnected() {
			t.Fatal("result not strongly connected")
		}
		// Channels are symmetric pairs with no self loops.
		if pairs, unpaired := g.ChannelPairs(); len(unpaired) != 0 {
			t.Fatalf("%d unpaired directed edges", len(unpaired))
		} else {
			for _, pr := range pairs {
				if pr[0].From == pr[0].To {
					t.Fatal("self loop")
				}
			}
		}
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(NodeID(v)) {
				if g.HasEdgeBetween(NodeID(v), w) != g.HasEdgeBetween(w, NodeID(v)) {
					t.Fatalf("asymmetric adjacency between %d and %d", v, w)
				}
			}
		}
		// Determinism: the same seed reproduces the same graph.
		h := ConnectedErdosRenyi(n, p, 1, rand.New(rand.NewSource(seed)), maxTries)
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("same seed produced %d vs %d edges", g.NumEdges(), h.NumEdges())
		}
	})
}
