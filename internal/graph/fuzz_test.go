package graph

import (
	"math/rand"
	"testing"
)

// TestRandomMutationInvariants drives the graph through long random
// add/remove sequences and checks structural invariants after every
// operation: degree sums match edge counts, adjacency agrees with the
// edge table, and removed identifiers stay dead.
func TestRandomMutationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const (
		nodes = 12
		steps = 2000
	)
	g := New(nodes)
	var live []EdgeID
	for step := 0; step < steps; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			a := NodeID(rng.Intn(nodes))
			b := NodeID(rng.Intn(nodes))
			if a == b {
				continue
			}
			id, err := g.AddEdge(a, b, rng.Float64()*10)
			if err != nil {
				t.Fatalf("step %d: AddEdge: %v", step, err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			id := live[i]
			if err := g.RemoveEdge(id); err != nil {
				t.Fatalf("step %d: RemoveEdge: %v", step, err)
			}
			live = append(live[:i], live[i+1:]...)
			if _, ok := g.Edge(id); ok {
				t.Fatalf("step %d: removed edge %d still present", step, id)
			}
		}
		if step%50 != 0 {
			continue
		}
		// Invariant: Σ out-degree = Σ in-degree = NumEdges.
		var outSum, inSum int
		for v := 0; v < nodes; v++ {
			outSum += g.OutDegree(NodeID(v))
			inSum += g.InDegree(NodeID(v))
		}
		if outSum != g.NumEdges() || inSum != g.NumEdges() {
			t.Fatalf("step %d: degree sums %d/%d vs edges %d", step, outSum, inSum, g.NumEdges())
		}
		if g.NumEdges() != len(live) {
			t.Fatalf("step %d: NumEdges %d, tracker %d", step, g.NumEdges(), len(live))
		}
		// Invariant: adjacency lists agree with the edge table.
		count := 0
		g.ForEachEdge(func(e Edge) bool {
			count++
			found := false
			g.ForEachOut(e.From, func(o Edge) bool {
				if o.ID == e.ID {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("step %d: edge %d missing from out-adjacency", step, e.ID)
			}
			return true
		})
		if count != g.NumEdges() {
			t.Fatalf("step %d: ForEachEdge visited %d of %d", step, count, g.NumEdges())
		}
	}
}

// TestMutationDoesNotCorruptPathCounts interleaves mutations with
// BFS-count queries and cross-checks a full recomputation.
func TestMutationDoesNotCorruptPathCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Circle(8, 1)
	for step := 0; step < 200; step++ {
		a := NodeID(rng.Intn(8))
		b := NodeID(rng.Intn(8))
		if a != b {
			if rng.Float64() < 0.5 && g.HasEdgeBetween(a, b) {
				if err := g.RemoveChannel(a, b); err != nil {
					t.Fatalf("RemoveChannel: %v", err)
				}
			} else {
				mustChannel(g, a, b, 1, 1)
			}
		}
		src := NodeID(rng.Intn(8))
		dist1, sigma1 := g.BFSCounts(src)
		// A clone must produce identical results: mutation state is fully
		// captured by the graph value.
		dist2, sigma2 := g.Clone().BFSCounts(src)
		for v := range dist1 {
			if dist1[v] != dist2[v] || sigma1[v] != sigma2[v] {
				t.Fatalf("step %d: clone divergence at %d", step, v)
			}
		}
	}
}

// TestBetweennessAfterMutations verifies Brandes against the naive
// enumerator after heavy mutation (tombstone correctness).
func TestBetweennessAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := Complete(7, 1)
	// Remove a third of the channels.
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			if rng.Float64() < 0.33 {
				if err := g.RemoveChannel(NodeID(a), NodeID(b)); err != nil {
					t.Fatalf("RemoveChannel: %v", err)
				}
			}
		}
	}
	fast := g.EdgeBetweenness(nil)
	naive := g.EdgeBetweennessNaive(nil)
	for id := range fast {
		if diff := fast[id] - naive[id]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("edge %d: %v vs %v", id, fast[id], naive[id])
		}
	}
}
