package graph

import (
	"math/rand"
	"testing"
)

// TestBFSCountsIntoAllocFree enforces the zero-alloc contract of the
// per-source BFS kernel: after the CSR cache and the scratch warm up,
// one source pass allocates nothing. This is the property that lets the
// all-pairs rebuild run n sources over a fixed set of worker scratches
// at n=10k without GC pressure.
func TestBFSCountsIntoAllocFree(t *testing.T) {
	g := BarabasiAlbert(256, 2, 1, rand.New(rand.NewSource(1)))
	n := g.NumNodes()
	dist := make([]uint16, n)
	sigma := make([]float64, n)
	var sc BFSScratch
	g.BFSCountsInto(0, dist, sigma, &sc) // warm the CSR cache and the queue
	src := 0
	if allocs := testing.AllocsPerRun(100, func() {
		g.BFSCountsInto(NodeID(src%n), dist, sigma, &sc)
		src++
	}); allocs != 0 {
		t.Fatalf("per-source BFS allocates %.1f objects/run, want 0", allocs)
	}
}

// TestBFSCountsIntoAllocFreeWithAppends keeps the probe workload honest:
// Mark → add channels → BFS → Rollback must stay allocation-free in
// steady state too, since the CSR append regions reuse their buffers.
func TestBFSCountsIntoAllocFreeWithAppends(t *testing.T) {
	g := BarabasiAlbert(128, 2, 1, rand.New(rand.NewSource(2)))
	n := g.NumNodes()
	dist := make([]uint16, n)
	sigma := make([]float64, n)
	var sc BFSScratch
	// Warm: one probe cycle sizes the append regions and the queue.
	probe := func() {
		mark := g.Mark()
		mustChannel(g, 3, 77, 1, 1)
		mustChannel(g, 9, 50, 1, 1)
		g.BFSCountsInto(3, dist, sigma, &sc)
		g.Rollback(mark)
	}
	probe()
	if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
		t.Fatalf("probe cycle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestExtendWithNodesAllocFree enforces the batched extender's zero-alloc
// contract: with reserved structures and a warmed scratch, folding a
// cohort allocates nothing.
func TestExtendWithNodesAllocFree(t *testing.T) {
	seed := BarabasiAlbert(64, 2, 1, rand.New(rand.NewSource(3)))
	ap := seed.AllPairsBFS()
	apT := ap.Transposed()
	const batch = 4
	const runs = 40
	// Reserve past every fold the measured runs will perform.
	ap.Reserve(seed.NumNodes() + batch*(runs+8))
	apT.Reserve(seed.NumNodes() + batch*(runs+8))
	sets := make([]PeerSet, batch)
	for j := range sets {
		sets[j] = PeerSet{Peers: []NodeID{NodeID(j), NodeID(j + 7)}, Mult: []float64{1, 1}}
	}
	sc := &ExtendScratch{}
	ExtendWithNodes(ap, apT, sets, 1, sc) // warm the scratch
	if allocs := testing.AllocsPerRun(runs-1, func() {
		ExtendWithNodes(ap, apT, sets, 1, sc)
	}); allocs != 0 {
		t.Fatalf("batched extend allocates %.1f objects/run, want 0", allocs)
	}
}
