package graph

// Reduce returns the reduced subgraph G' of §II-B: the same node set with
// only the directed edges whose capacity is at least amount, i.e. the edges
// able to forward a transaction of the given size. Edge identifiers are
// preserved so results from the reduced graph can be mapped back onto the
// original.
func (g *Graph) Reduce(amount float64) *Graph {
	r := &Graph{
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
		edges: append([]Edge(nil), g.edges...),
		alive: make([]bool, len(g.alive)),
	}
	for i, e := range g.edges {
		if !g.alive[i] || e.Capacity < amount {
			continue
		}
		r.alive[i] = true
		r.out[e.From] = append(r.out[e.From], e.ID)
		r.in[e.To] = append(r.in[e.To], e.ID)
		r.numAlive++
	}
	return r
}

// WithoutNode returns a copy of the graph with all edges incident to u
// removed (u itself remains as an isolated node so identifiers are
// preserved). This realises the subgraph G' = G − u used by the modified
// Zipf ranking of §II-B.
func (g *Graph) WithoutNode(u NodeID) *Graph {
	r := &Graph{
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
		edges: append([]Edge(nil), g.edges...),
		alive: make([]bool, len(g.alive)),
	}
	for i, e := range g.edges {
		if !g.alive[i] || e.From == u || e.To == u {
			continue
		}
		r.alive[i] = true
		r.out[e.From] = append(r.out[e.From], e.ID)
		r.in[e.To] = append(r.in[e.To], e.ID)
		r.numAlive++
	}
	return r
}
