package graph

// This file is the incremental all-pairs maintenance used by the
// network-growth commit path: when a joining user is folded into the
// substrate permanently, the AllPairs structure is extended in one O(n²)
// array pass instead of the O(n·(n+m)) re-BFS a full rebuild pays.
// (extend one node; batch.go fuses whole cohorts).
//
// The update exploits the same decomposition the join evaluator prices
// with: every shortest x→y path in G+u either avoids u entirely (already
// counted) or crosses u exactly once, entering through a channel (v_i, u)
// and leaving through (u, v_j). With
//
//	inDist[x]   = min_{v_i} d(x, v_i)
//	inSigma[x]  = Σ_{v_i achieving the min} mult(v_i)·σ(x, v_i)
//	outDist[y]  = min_{v_j} d(v_j, y)
//	outSigma[y] = Σ_{v_j achieving the min} mult(v_j)·σ(v_j, y)
//
// (the aggregates an EvalState maintains), the through-u distance of a
// pair is inDist[x] + 2 + outDist[y] and its path count is
// inSigma[x]·outSigma[y]. Path counts are sums of integers, exact in
// float64 until 2⁵³, so the extended Sigma entries are bit-identical to a
// fresh BFS recount — the growth differential tests enforce exactly that.
//
// Distances are uint16 with Inf16 = +∞ encoded as the maximum value:
// promoting to int for the through-sum makes every unreachable operand
// push the sum past any representable cell value, so the single
// comparison dThru ≤ d0 subsumes all the sentinel case analysis the
// int32 plane needed.

// Sentinels of the int32 arithmetic the fold rules run in: unreach32
// stands in for +∞ when a cell value is promoted, far enough above any
// through-sum of two in-envelope distances that no finite sum can ever
// collide with (or tie) it. maxDist32 is the MaxDist envelope every
// write path enforces — the same bound the BFS kernels panic past, so a
// topology that outgrows the compact plane fails at the write that
// crosses the line, not at some later rebuild.
const (
	inf32     = int32(Inf16)
	maxDist32 = int32(MaxDist)
	unreach32 = int32(1) << 30
)

// cell32 promotes one stored distance to fold arithmetic.
func cell32(d uint16) int32 {
	if d == Inf16 {
		return unreach32
	}
	return int32(d)
}

// Reserve re-lays-out the matrices with row stride ≥ n, so that up to n
// nodes fit without further allocation. It never shrinks.
func (ap *AllPairs) Reserve(n int) {
	if n <= ap.Stride {
		return
	}
	dist := make([]uint16, n*n)
	sigma := make([]float64, n*n)
	for s := 0; s < ap.N; s++ {
		copy(dist[s*n:s*n+ap.N], ap.DistRow(s))
		copy(sigma[s*n:s*n+ap.N], ap.SigmaRow(s))
	}
	ap.Stride = n
	ap.Dist = dist
	ap.Sigma = sigma
}

// ExtendWithNode folds one new (or newly re-attached) node u into the
// forward structure ap and its transposed mirror apT in place, given the
// through-u aggregates of u's channel set over the *current* structure.
// The four slices must have length ap.N and follow the joinStats
// conventions above (Inf16 where no peer is reachable).
//
// u == ap.N appends a fresh node (the arrival commit); u < ap.N
// re-attaches an existing node whose row and column are currently
// all-Inf16 — i.e. a node whose channels were all closed and whose
// structure was rebuilt since (the rewiring path). Passing a u < ap.N
// that is still connected corrupts the structure; callers rebuild after
// closures precisely to avoid that.
//
// The pass is O(n²) with small constants: one contiguous scan of the
// distance matrix, touching Sigma only where the new node creates or ties
// shortest paths. Amortized allocation is O(1) per call thanks to the
// geometric Reserve policy.
func ExtendWithNode(ap, apT *AllPairs, u int, inDist []uint16, inSigma []float64, outDist []uint16, outSigma []float64) {
	n := ap.N
	if apT.N != n {
		panic("graph: ExtendWithNode on mismatched structures")
	}
	if len(inDist) != n || len(inSigma) != n || len(outDist) != n || len(outSigma) != n {
		panic("graph: ExtendWithNode aggregate length mismatch")
	}
	if u > n || u < 0 {
		panic("graph: ExtendWithNode node out of range")
	}
	if u == n {
		if n+1 > ap.Stride {
			ap.Reserve(growTarget(n + 1))
		}
		if n+1 > apT.Stride {
			apT.Reserve(growTarget(n + 1))
		}
		ap.N, apT.N = n+1, n+1
		// Initialize the fresh row and column to the disconnected state;
		// the buffers may hold stale values from a prior layout.
		clearRow(ap, u, n+1)
		clearRow(apT, u, n+1)
		clearCol(ap, u, n)
		clearCol(apT, u, n)
	}

	extendPairsRows(ap, apT, u, inDist, inSigma, outDist, outSigma, 0, n)
	extendOwnRowCol(ap, apT, u, inDist, inSigma, outDist, outSigma)
}

// extendPairsRows is the existing-pairs section of the one-winner fold
// over the row range [lo, hi): route through u where that creates or
// ties a shortest path. Row-major over ap, mirrored into apT. The int
// promotion makes unreachable aggregates (Inf16) overshoot every cell,
// self pairs (d0 = 0) unbeatable, and a reattached u's own all-Inf16 row
// and column no-ops — no per-cell index checks needed. Rows are
// independent, so the batch extender shards this across workers.
func extendPairsRows(ap, apT *AllPairs, u int, inDist []uint16, inSigma []float64, outDist []uint16, outSigma []float64, lo, hi int) {
	extendPairsRowsPromoted(ap, apT, inDist, inSigma, promoteDist(outDist, nil), outSigma, lo, hi)
}

// promoteDist lifts a distance vector into fold arithmetic (Inf16 →
// unreach32) once, so the O(n²) pass below spends no sentinel branch on
// the outgoing side. buf is reused when large enough.
func promoteDist(d []uint16, buf []int32) []int32 {
	if cap(buf) < len(d) {
		size := 2 * len(d)
		if c := 2 * cap(buf); c > size {
			size = c
		}
		buf = make([]int32, size)
	}
	buf = buf[:len(d)]
	for i, v := range d {
		buf[i] = cell32(v)
	}
	return buf
}

// extendPairsRowsPromoted is extendPairsRows with the outgoing distances
// pre-promoted.
func extendPairsRowsPromoted(ap, apT *AllPairs, inDist []uint16, inSigma []float64, out32 []int32, outSigma []float64, lo, hi int) {
	n := len(inDist)
	sa, st := ap.Stride, apT.Stride
	for x := lo; x < hi; x++ {
		if inDist[x] == Inf16 {
			continue
		}
		dx := int32(inDist[x]) + 2
		sx := inSigma[x]
		rowD := ap.Dist[x*sa : x*sa+n]
		rowS := ap.Sigma[x*sa : x*sa+n]
		for y := 0; y < n; y++ {
			dThru := dx + out32[y]
			d0 := cell32(rowD[y])
			if dThru > d0 {
				continue
			}
			if dThru < d0 {
				if dThru > maxDist32 {
					panic("graph: distance plane overflow in extend")
				}
				rowD[y] = uint16(dThru)
				rowS[y] = sx * outSigma[y]
				apT.Dist[y*st+x] = uint16(dThru)
				apT.Sigma[y*st+x] = rowS[y]
			} else {
				rowS[y] += sx * outSigma[y]
				apT.Sigma[y*st+x] = rowS[y]
			}
		}
	}
}

// extendOwnRowCol writes u's own row (distances from u) and column
// (distances to u): a first hop over one of mult(v) parallel channels to
// peer v, then a shortest path onwards; the aggregates already carry the
// multiplicities.
func extendOwnRowCol(ap, apT *AllPairs, u int, inDist []uint16, inSigma []float64, outDist []uint16, outSigma []float64) {
	n := len(inDist)
	sa, st := ap.Stride, apT.Stride
	for y := 0; y < n; y++ {
		if y == u {
			continue
		}
		if d := outDist[y]; d != Inf16 {
			if d >= MaxDist {
				panic("graph: distance plane overflow in extend")
			}
			ap.Dist[u*sa+y] = d + 1
			ap.Sigma[u*sa+y] = outSigma[y]
			apT.Dist[y*st+u] = d + 1
			apT.Sigma[y*st+u] = outSigma[y]
		}
		if d := inDist[y]; d != Inf16 {
			if d >= MaxDist {
				panic("graph: distance plane overflow in extend")
			}
			ap.Dist[y*sa+u] = d + 1
			ap.Sigma[y*sa+u] = inSigma[y]
			apT.Dist[u*st+y] = d + 1
			apT.Sigma[u*st+y] = inSigma[y]
		}
	}
	ap.Dist[u*sa+u] = 0
	ap.Sigma[u*sa+u] = 1
	apT.Dist[u*st+u] = 0
	apT.Sigma[u*st+u] = 1
}

// growTarget picks the reserved capacity for a structure that just
// outgrew its stride: geometric doubling amortizes the O(n²) re-layouts
// to O(1) per appended node.
func growTarget(need int) int {
	target := need * 2
	if target < 16 {
		target = 16
	}
	return target
}

func clearRow(ap *AllPairs, r, width int) {
	base := r * ap.Stride
	for i := 0; i < width; i++ {
		ap.Dist[base+i] = Inf16
		ap.Sigma[base+i] = 0
	}
}

func clearCol(ap *AllPairs, c, rows int) {
	for x := 0; x < rows; x++ {
		ap.Dist[x*ap.Stride+c] = Inf16
		ap.Sigma[x*ap.Stride+c] = 0
	}
}
