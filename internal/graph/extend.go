package graph

// This file is the incremental all-pairs maintenance used by the
// network-growth commit path: when a joining user is folded into the
// substrate permanently, the AllPairs structure is extended in one O(n²)
// array pass instead of the O(n·(n+m)) re-BFS a full rebuild pays.
//
// The update exploits the same decomposition the join evaluator prices
// with: every shortest x→y path in G+u either avoids u entirely (already
// counted) or crosses u exactly once, entering through a channel (v_i, u)
// and leaving through (u, v_j). With
//
//	inDist[x]   = min_{v_i} d(x, v_i)
//	inSigma[x]  = Σ_{v_i achieving the min} mult(v_i)·σ(x, v_i)
//	outDist[y]  = min_{v_j} d(v_j, y)
//	outSigma[y] = Σ_{v_j achieving the min} mult(v_j)·σ(v_j, y)
//
// (the aggregates an EvalState maintains), the through-u distance of a
// pair is inDist[x] + 2 + outDist[y] and its path count is
// inSigma[x]·outSigma[y]. Path counts are sums of integers, exact in
// float64 until 2⁵³, so the extended Sigma entries are bit-identical to a
// fresh BFS recount — the growth differential tests enforce exactly that.

// Reserve re-lays-out the matrices with row stride ≥ n, so that up to n
// nodes fit without further allocation. It never shrinks.
func (ap *AllPairs) Reserve(n int) {
	if n <= ap.Stride {
		return
	}
	dist := make([]int32, n*n)
	sigma := make([]float64, n*n)
	for s := 0; s < ap.N; s++ {
		copy(dist[s*n:s*n+ap.N], ap.DistRow(s))
		copy(sigma[s*n:s*n+ap.N], ap.SigmaRow(s))
	}
	ap.Stride = n
	ap.Dist = dist
	ap.Sigma = sigma
}

// ExtendWithNode folds one new (or newly re-attached) node u into the
// forward structure ap and its transposed mirror apT in place, given the
// through-u aggregates of u's channel set over the *current* structure.
// The four slices must have length ap.N and follow the joinStats
// conventions above (Unreachable where no peer is reachable).
//
// u == ap.N appends a fresh node (the arrival commit); u < ap.N
// re-attaches an existing node whose row and column are currently
// all-Unreachable — i.e. a node whose channels were all closed and whose
// structure was rebuilt since (the rewiring path). Passing a u < ap.N
// that is still connected corrupts the structure; callers rebuild after
// closures precisely to avoid that.
//
// The pass is O(n²) with small constants: one contiguous scan of the
// distance matrix, touching Sigma only where the new node creates or ties
// shortest paths. Amortized allocation is O(1) per call thanks to the
// geometric Reserve policy.
func ExtendWithNode(ap, apT *AllPairs, u int, inDist []int32, inSigma []float64, outDist []int32, outSigma []float64) {
	n := ap.N
	if apT.N != n {
		panic("graph: ExtendWithNode on mismatched structures")
	}
	if len(inDist) != n || len(inSigma) != n || len(outDist) != n || len(outSigma) != n {
		panic("graph: ExtendWithNode aggregate length mismatch")
	}
	if u > n || u < 0 {
		panic("graph: ExtendWithNode node out of range")
	}
	if u == n {
		if n+1 > ap.Stride {
			ap.Reserve(growTarget(n + 1))
		}
		if n+1 > apT.Stride {
			apT.Reserve(growTarget(n + 1))
		}
		ap.N, apT.N = n+1, n+1
		// Initialize the fresh row and column to the disconnected state;
		// the buffers may hold stale values from a prior layout.
		clearRow(ap, u, n+1)
		clearRow(apT, u, n+1)
		clearCol(ap, u, n)
		clearCol(apT, u, n)
	}

	// Existing pairs: route through u where that creates or ties a
	// shortest path. Row-major over ap, mirrored into apT.
	sa, st := ap.Stride, apT.Stride
	for x := 0; x < n; x++ {
		if x == u || inDist[x] == Unreachable {
			continue
		}
		dx := inDist[x] + 2
		sx := inSigma[x]
		rowD := ap.Dist[x*sa : x*sa+n]
		rowS := ap.Sigma[x*sa : x*sa+n]
		for y := 0; y < n; y++ {
			if outDist[y] == Unreachable || y == x || y == u {
				continue
			}
			dThru := dx + outDist[y]
			switch d0 := rowD[y]; {
			case d0 == Unreachable || dThru < d0:
				rowD[y] = dThru
				rowS[y] = sx * outSigma[y]
				apT.Dist[y*st+x] = dThru
				apT.Sigma[y*st+x] = rowS[y]
			case dThru == d0:
				rowS[y] += sx * outSigma[y]
				apT.Sigma[y*st+x] = rowS[y]
			}
		}
	}

	// u's own row (distances from u) and column (distances to u). A first
	// hop over one of mult(v) parallel channels to peer v, then a shortest
	// path onwards; the aggregates already carry the multiplicities.
	for y := 0; y < n; y++ {
		if y == u {
			continue
		}
		if d := outDist[y]; d != Unreachable {
			ap.Dist[u*sa+y] = d + 1
			ap.Sigma[u*sa+y] = outSigma[y]
			apT.Dist[y*st+u] = d + 1
			apT.Sigma[y*st+u] = outSigma[y]
		}
		if d := inDist[y]; d != Unreachable {
			ap.Dist[y*sa+u] = d + 1
			ap.Sigma[y*sa+u] = inSigma[y]
			apT.Dist[u*st+y] = d + 1
			apT.Sigma[u*st+y] = inSigma[y]
		}
	}
	ap.Dist[u*sa+u] = 0
	ap.Sigma[u*sa+u] = 1
	apT.Dist[u*st+u] = 0
	apT.Sigma[u*st+u] = 1
}

// growTarget picks the reserved capacity for a structure that just
// outgrew its stride: geometric doubling amortizes the O(n²) re-layouts
// to O(1) per appended node.
func growTarget(need int) int {
	target := need * 2
	if target < 16 {
		target = 16
	}
	return target
}

func clearRow(ap *AllPairs, r, width int) {
	base := r * ap.Stride
	for i := 0; i < width; i++ {
		ap.Dist[base+i] = Unreachable
		ap.Sigma[base+i] = 0
	}
}

func clearCol(ap *AllPairs, c, rows int) {
	for x := 0; x < rows; x++ {
		ap.Dist[x*ap.Stride+c] = Unreachable
		ap.Sigma[x*ap.Stride+c] = 0
	}
}
