package graph

import "github.com/lightning-creation-games/lcg/internal/par"

// This file is the batched all-pairs extension: ExtendWithNodes folds a
// whole cohort of appended nodes (a market tick's winners) into the
// structure in fused passes, bit-identical to folding them one at a time
// with ExtendWithNode but without re-streaming the O(n²) matrix once per
// winner.
//
// Why a fused fold is possible. Sequential folds are coupled — winner
// j's aggregates (inDist_j, outDist_j, …) are defined over the structure
// *after* winners 0..j-1 — but the fold rule itself is an elementwise
// minimum: after folding winners 0..j-1, every cell satisfies
//
//	d(x,y) = min( d₀(x,y), min_{i<j} inDist_i[x] + 2 + outDist_i[y] )
//
// with the matching path-count accumulation (ties add in fold order, a
// strict improvement resets). The matrix after any prefix of folds is
// therefore a pure function of the base matrix and the aggregate
// vectors, so the aggregates of every winner can be computed *without
// materializing the intermediate matrices*: phase A below derives each
// winner's aggregates from the base rows plus the correction terms of
// the winners before it, and phase B rewrites every row once, replaying
// all the winners' updates against that row in commit order. Each row's
// final state is exactly what k sequential folds would have produced —
// enforced bit-for-bit by TestExtendWithNodesMatchesSequential and the
// growth/market differential suites that run on top of it.
//
// Cost. Sequential folds stream the distance plane k times (k·n² cell
// reads); the fused fold streams it roughly once per chunk and replaces
// the re-reads with per-cell candidate scans that exit as soon as the
// sorted through-distances exceed the cell's current value — in
// small-diameter PCN topologies almost immediately. Winners are
// processed in chunks of extendChunk so the phase-A correction recursion
// stays O(chunk) per cell; all buffers live in an ExtendScratch and are
// reused across calls (zero allocations in steady state, enforced by
// TestExtendWithNodesAllocFree). Phase B rows are independent and shard
// across a bounded worker pool, deterministically.

// extendChunk bounds the winners fused per pass: large enough to
// amortize the row streaming, small enough that the per-cell candidate
// scans and the phase-A recursion stay cheap.
const extendChunk = 64

// PeerSet describes one appended node's channel endpoints: the distinct
// peers in ascending order with the channel multiplicity of each. All
// peers must already be in the structure when the batch starts —
// batch members cannot reference each other (market cohorts satisfy
// this by construction: candidates come from the tick-start substrate).
type PeerSet struct {
	Peers []NodeID
	Mult  []float64
}

// ExtendScratch holds the reusable buffers of ExtendWithNodes. The zero
// value is ready; after the first call at a given size, subsequent calls
// allocate nothing.
type ExtendScratch struct {
	// Per-winner aggregate planes, chunk-local: row j of each holds
	// winner j's aggregates over the m = base+chunk nodes (entries past
	// the winner's own horizon are unused).
	inD  []uint16
	inS  []float64
	outD []uint16
	outS []float64

	// Per-block row scratch for the phase-B shards.
	blocks []extendRowScratch

	// Phase-A cell overlay buffers (one column or row of evolving cell
	// values) and the chunk-wide column minimum of the outgoing
	// aggregates (the phase-B cell prefilter).
	cellD []uint16
	cellS []float64
	minOD []uint16
	out32 []int32

	// pool is the cached phase-B worker pool (keyed by the requested
	// worker bound, so repeated calls reuse it).
	pool    *par.Pool
	poolFor int
}

// extendRowScratch is one phase-B worker's row state.
type extendRowScratch struct {
	dxByJ []int32   // winner j's inDist[x]+2 for the current row, -1 if unreachable
	sxByJ []float64 // winner j's inSigma[x] for the current row
	sdx   []int32   // winner list sorted by dx (the early-exit scan order)
	sj    []int32
	cand  []int32 // candidate winners recorded by the pass-1 scan
}

// Reserve pre-sizes the scratch for folding chunks onto structures of up
// to maxNodes nodes, so subsequent ExtendWithNodes calls allocate
// nothing. Sessions with a known final size (GrowSession's capacity
// hint) call it once up front.
func (sc *ExtendScratch) Reserve(maxNodes int) {
	sc.grow(extendChunk * (maxNodes + extendChunk))
	sc.growCells(maxNodes + extendChunk)
}

// growCells ensures the overlay and prefilter vectors span m nodes,
// geometrically.
func (sc *ExtendScratch) growCells(m int) {
	if cap(sc.cellD) >= m {
		return
	}
	size := 2 * m
	if c := 2 * cap(sc.cellD); c > size {
		size = c
	}
	sc.cellD = make([]uint16, size)
	sc.cellS = make([]float64, size)
	sc.minOD = make([]uint16, size)
}

// grow ensures the aggregate planes hold need cells, geometrically so
// steadily growing substrates amortize to O(1) allocations per fold.
func (sc *ExtendScratch) grow(need int) {
	if cap(sc.inD) >= need {
		return
	}
	size := 2 * need
	if c := 2 * cap(sc.inD); c > size {
		size = c
	}
	sc.inD = make([]uint16, size)
	sc.outD = make([]uint16, size)
	sc.inS = make([]float64, size)
	sc.outS = make([]float64, size)
}

func (sc *ExtendScratch) reserve(c, m, workers int) {
	sc.grow(c * m)
	sc.inD = sc.inD[:c*m]
	sc.outD = sc.outD[:c*m]
	sc.inS = sc.inS[:c*m]
	sc.outS = sc.outS[:c*m]
	sc.growCells(m)
	sc.cellD = sc.cellD[:m]
	sc.cellS = sc.cellS[:m]
	sc.minOD = sc.minOD[:m]
	if len(sc.blocks) < workers {
		sc.blocks = append(sc.blocks, make([]extendRowScratch, workers-len(sc.blocks))...)
	}
	for b := range sc.blocks[:workers] {
		bs := &sc.blocks[b]
		if cap(bs.dxByJ) < c {
			bs.dxByJ = make([]int32, c)
			bs.sxByJ = make([]float64, c)
			bs.sdx = make([]int32, 0, c)
			bs.sj = make([]int32, 0, c)
			bs.cand = make([]int32, 0, c)
		}
		bs.dxByJ = bs.dxByJ[:c]
		bs.sxByJ = bs.sxByJ[:c]
	}
}

// ExtendWithNodes appends len(sets) nodes to ap and its transposed
// mirror apT, assigning them identifiers ap.N, ap.N+1, … in order. The
// result is bit-identical — distances, path counts, accumulation order —
// to len(sets) sequential ExtendWithNode calls with aggregates
// recomputed between folds. workers bounds the phase-B row fan-out
// (≤ 0 selects all cores); the output is identical at any setting. sc
// may be shared across calls from one goroutine; nil allocates a
// throwaway.
func ExtendWithNodes(ap, apT *AllPairs, sets []PeerSet, workers int, sc *ExtendScratch) {
	if ap.N != apT.N {
		panic("graph: ExtendWithNodes on mismatched structures")
	}
	if sc == nil {
		sc = &ExtendScratch{}
	}
	baseN := ap.N
	for _, s := range sets {
		if len(s.Peers) != len(s.Mult) {
			panic("graph: ExtendWithNodes peer/multiplicity length mismatch")
		}
		for i, v := range s.Peers {
			if int(v) < 0 || int(v) >= baseN {
				panic("graph: ExtendWithNodes peer outside the pre-batch structure")
			}
			if i > 0 && s.Peers[i-1] >= v {
				panic("graph: ExtendWithNodes peers not strictly ascending")
			}
		}
	}
	if sc.pool == nil || sc.poolFor != workers {
		sc.pool = par.NewPool(workers)
		sc.poolFor = workers
	}
	if len(sets) == 1 {
		// Single-arrival fast path (the growth engine's per-commit
		// shape): aggregates straight off the coherent structure, then
		// the one-winner fold kernel with its rows sharded.
		extendSingle(ap, apT, sets[0], sc.pool, sc)
		return
	}
	for off := 0; off < len(sets); off += extendChunk {
		end := off + extendChunk
		if end > len(sets) {
			end = len(sets)
		}
		extendChunkFold(ap, apT, sets[off:end], sc.pool, sc)
	}
}

// extendSingle folds one appended node: the batch machinery degenerates
// to computing the aggregates by direct row scans (ascending peers, the
// scratch-stats accumulation order) and running the proven one-winner
// kernel, with the existing-pairs rows sharded over the pool.
func extendSingle(ap, apT *AllPairs, set PeerSet, pool *par.Pool, sc *ExtendScratch) {
	n := ap.N
	m := n + 1
	workers := pool.Workers()
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	sc.reserve(1, m, workers)
	inD := sc.inD[:n]
	inS := sc.inS[:n]
	outD := sc.outD[:n]
	outS := sc.outS[:n]
	for x := 0; x < n; x++ {
		inD[x] = Inf16
		inS[x] = 0
		outD[x] = Inf16
		outS[x] = 0
	}
	for pi, v := range set.Peers {
		mv := set.Mult[pi]
		vi := int(v)
		foldAggregateCol(inD, inS, apT.DistRow(vi), apT.SigmaRow(vi), mv)
		foldAggregateCol(outD, outS, ap.DistRow(vi), ap.SigmaRow(vi), mv)
	}
	// Grow the structures, then run the existing-pairs pass — inline or
	// in independent row blocks — and the new node's own row and column.
	if m > ap.Stride {
		ap.Reserve(growTarget(m))
	}
	if m > apT.Stride {
		apT.Reserve(growTarget(m))
	}
	ap.N, apT.N = m, m
	clearRow(ap, n, m)
	clearRow(apT, n, m)
	clearCol(ap, n, n)
	clearCol(apT, n, n)
	sc.out32 = promoteDist(outD, sc.out32)
	if workers == 1 || n < 256 {
		extendPairsRowsPromoted(ap, apT, inD, inS, sc.out32, outS, 0, n)
	} else {
		pool.ForEachBlock(n, func(lo, hi int) {
			extendPairsRowsPromoted(ap, apT, inD, inS, sc.out32, outS, lo, hi)
		})
	}
	extendOwnRowCol(ap, apT, n, inD, inS, outD, outS)
}

// extendChunkFold folds one chunk of winners: phase A computes every
// winner's aggregates from the coherent pre-chunk structure plus the
// correction terms of earlier chunk members; phase B rewrites each row
// once with all winners applied in commit order.
func extendChunkFold(ap, apT *AllPairs, sets []PeerSet, pool *par.Pool, sc *ExtendScratch) {
	base := ap.N
	c := len(sets)
	m := base + c
	workers := pool.Workers()
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	sc.reserve(c, m, workers)

	// Phase A: aggregates. Winner j's entry for node x is the min (and
	// tie-ordered path-count sum) over its peers v of the cell (x,v)
	// [incoming] or (v,x) [outgoing] as it stands after winners < j. The
	// cell values are materialized one peer column (or row) at a time:
	// copy the coherent pre-chunk base, overlay each earlier winner's
	// through terms in commit order — every overlay reads and writes
	// contiguously, with the winner's side of the term a scalar — then
	// fold the finished column into the aggregates.
	for j := 0; j < c; j++ {
		nj := base + j // nodes preceding winner j
		inD := sc.inD[j*m : j*m+m]
		inS := sc.inS[j*m : j*m+m]
		outD := sc.outD[j*m : j*m+m]
		outS := sc.outS[j*m : j*m+m]
		for x := 0; x < nj; x++ {
			inD[x] = Inf16
			inS[x] = 0
			outD[x] = Inf16
			outS[x] = 0
		}
		for pi, v := range sets[j].Peers {
			mv := sets[j].Mult[pi]
			vi := int(v)
			// Incoming: cells (x, v) — base from the transposed row,
			// overlay term inDist_i[x] + 2 + outDist_i[v].
			sc.materializeCells(base, j, m, apT.DistRow(vi), apT.SigmaRow(vi), vi, true)
			foldAggregateCol(inD, inS, sc.cellD[:nj], sc.cellS[:nj], mv)
			// Outgoing: cells (v, y) — base from the forward row,
			// overlay term inDist_i[v] + 2 + outDist_i[y].
			sc.materializeCells(base, j, m, ap.DistRow(vi), ap.SigmaRow(vi), vi, false)
			foldAggregateCol(outD, outS, sc.cellD[:nj], sc.cellS[:nj], mv)
		}
	}

	// The phase-B prefilter: the chunk-wide minimum outgoing aggregate
	// per target. A cell (x,y) can only be touched by a winner whose
	// through term dx + od_j[y] reaches the cell value; dxMin + minOD[y]
	// bounds that from below, skipping the candidate scan outright on
	// most cells.
	for y := 0; y < m; y++ {
		sc.minOD[y] = Inf16
	}
	for j := 0; j < c; j++ {
		outD := sc.outD[j*m : j*m+m]
		for y := 0; y < m; y++ {
			if outD[y] < sc.minOD[y] {
				sc.minOD[y] = outD[y]
			}
		}
	}

	// Phase B: rewrite the matrix. Reserve first so the row slices span
	// the chunk's columns, then shard the rows.
	if m > ap.Stride {
		ap.Reserve(growTarget(m))
	}
	if m > apT.Stride {
		apT.Reserve(growTarget(m))
	}
	ap.N, apT.N = m, m
	if workers == 1 {
		// Inline fast path: no pool dispatch, no closure — the
		// steady-state single-threaded commit fold allocates nothing.
		bs := &sc.blocks[0]
		for x := 0; x < m; x++ {
			if x < base {
				sc.foldExistingRow(ap, apT, bs, base, c, m, x)
			} else {
				sc.foldChunkRow(ap, apT, bs, base, c, m, x-base)
			}
		}
		return
	}
	block := (m + workers - 1) / workers
	pool.ForEachBlock(m, func(lo, hi int) {
		bs := &sc.blocks[lo/block]
		for x := lo; x < hi; x++ {
			if x < base {
				sc.foldExistingRow(ap, apT, bs, base, c, m, x)
			} else {
				sc.foldChunkRow(ap, apT, bs, base, c, m, x-base)
			}
		}
	})
}

// materializeCells fills sc.cellD/cellS with the values of one peer's
// cell column (incoming: cells (x,v) over x) or cell row (outgoing:
// cells (v,y) over y) as they stand after winners 0..j-1: the coherent
// pre-chunk base copied in, the chunk members' birth values appended,
// then each earlier winner's through terms overlaid in commit order — a
// strict improvement resets the path count, a tie accumulates, exactly
// the sequential fold rule. Every overlay pass streams two contiguous
// aggregate rows with the peer-side term a scalar.
func (sc *ExtendScratch) materializeCells(base, j, m int, baseD []uint16, baseS []float64, vi int, incoming bool) {
	cd, cs := sc.cellD, sc.cellS
	copy(cd[:base], baseD[:base])
	copy(cs[:base], baseS[:base])
	// Chunk members' cells are born when they fold: node base+i reaches
	// v through its own outgoing aggregate (incoming direction), v
	// reaches base+i through the member's incoming aggregate (outgoing).
	for i := 0; i < j; i++ {
		var bd uint16
		var bs float64
		if incoming {
			bd, bs = sc.outD[i*m+vi], sc.outS[i*m+vi]
		} else {
			bd, bs = sc.inD[i*m+vi], sc.inS[i*m+vi]
		}
		if bd != Inf16 {
			cd[base+i] = bd + 1
			cs[base+i] = bs
		} else {
			cd[base+i] = Inf16
			cs[base+i] = 0
		}
	}
	for i := 0; i < j; i++ {
		var scalarD uint16
		var scalarS float64
		var varD []uint16
		var varS []float64
		if incoming {
			// t = inDist_i[x] + 2 + outDist_i[v]: the x side varies.
			scalarD, scalarS = sc.outD[i*m+vi], sc.outS[i*m+vi]
			varD, varS = sc.inD[i*m:i*m+m], sc.inS[i*m:i*m+m]
		} else {
			// t = inDist_i[v] + 2 + outDist_i[y]: the y side varies.
			scalarD, scalarS = sc.inD[i*m+vi], sc.inS[i*m+vi]
			varD, varS = sc.outD[i*m:i*m+m], sc.outS[i*m:i*m+m]
		}
		if scalarD == Inf16 {
			continue
		}
		t0 := int32(scalarD) + 2
		lim := base + i // the winner's own horizon
		for x := 0; x < lim; x++ {
			dv := varD[x]
			if dv == Inf16 {
				continue
			}
			t := t0 + int32(dv)
			cur := cell32(cd[x])
			if t > cur {
				continue
			}
			if t < cur {
				if t > maxDist32 {
					panic("graph: distance plane overflow in batched extend")
				}
				cd[x] = uint16(t)
				cs[x] = varS[x] * scalarS
			} else {
				cs[x] += varS[x] * scalarS
			}
		}
	}
}

// foldAggregateCol merges one materialized peer column into a winner's
// aggregate rows with the ascending-peer min/tie-sum rule of the scratch
// stats build.
func foldAggregateCol(aggD []uint16, aggS []float64, cd []uint16, cs []float64, mult float64) {
	for x := range cd {
		d := cd[x]
		if d == Inf16 {
			continue
		}
		switch {
		case d < aggD[x]:
			aggD[x] = d
			aggS[x] = mult * cs[x]
		case d == aggD[x]:
			aggS[x] += mult * cs[x]
		}
	}
}

// foldExistingRow replays every winner against one pre-chunk row: old
// cells via the sorted early-exit scan, the chunk's new columns by
// direct construction.
func (sc *ExtendScratch) foldExistingRow(ap, apT *AllPairs, bs *extendRowScratch, base, c, m, x int) {
	sa, st := ap.Stride, apT.Stride
	rowD := ap.Dist[x*sa : x*sa+m]
	rowS := ap.Sigma[x*sa : x*sa+m]
	nList := sc.buildRowList(bs, c, m, x, 0)

	// Old cells: the column-min prefilter rejects most cells in O(1),
	// the sorted scan finds the exact minimum with an early exit, and
	// the recorded candidates reproduce the commit-order path-count
	// accumulation on the few cells a winner actually touches.
	if nList > 0 {
		dxMin := bs.sdx[0]
		minOD := sc.minOD
		for y := 0; y < base; y++ {
			d0 := cell32(rowD[y])
			if dxMin+cell32(minOD[y]) > d0 {
				continue
			}
			bnd := d0
			minT := unreach32 + unreach32/2
			cand := bs.cand[:0]
			for l := 0; l < nList; l++ {
				dx := bs.sdx[l]
				if dx > bnd {
					break
				}
				t := dx + cell32(sc.outD[int(bs.sj[l])*m+y])
				if t <= bnd {
					cand = append(cand, bs.sj[l])
					if t < minT {
						minT = t
						bnd = t
					}
				} else if t < minT {
					minT = t
				}
			}
			if minT > d0 {
				continue
			}
			// Contributors: base first (when it survives), then the
			// candidates that hit the final minimum, in commit order.
			var sum float64
			started := false
			if minT == d0 {
				sum = rowS[y]
				started = true
			}
			insertionSortInt32(cand)
			for _, j := range cand {
				if bs.dxByJ[j]+cell32(sc.outD[int(j)*m+y]) != minT {
					continue
				}
				p := bs.sxByJ[j] * sc.outS[int(j)*m+y]
				if !started {
					sum = p
					started = true
				} else {
					sum += p
				}
			}
			if minT < d0 {
				if minT > maxDist32 {
					panic("graph: distance plane overflow in batched extend")
				}
				rowD[y] = uint16(minT)
				apT.Dist[y*st+x] = uint16(minT)
			}
			rowS[y] = sum
			apT.Sigma[y*st+x] = sum
		}
	}

	// New columns (x, base+i): born when winner i folded, then improved
	// by later winners. Stale buffer contents must be overwritten even
	// when the cell stays unreachable.
	for i := 0; i < c; i++ {
		y := base + i
		bd, bsig := unreach32, 0.0
		if id := sc.inD[i*m+x]; id != Inf16 {
			bd, bsig = int32(id)+1, sc.inS[i*m+x]
		}
		d, s := sc.replayCell(bs, m, y, i+1, c, bd, bsig)
		writeCell(rowD, rowS, apT, st, x, y, d, s)
	}
}

// foldChunkRow constructs the full row of chunk member i (node base+i):
// born from its outgoing aggregates, improved by later winners.
func (sc *ExtendScratch) foldChunkRow(ap, apT *AllPairs, bs *extendRowScratch, base, c, m, i int) {
	sa, st := ap.Stride, apT.Stride
	x := base + i
	rowD := ap.Dist[x*sa : x*sa+m]
	rowS := ap.Sigma[x*sa : x*sa+m]
	sc.buildRowList(bs, c, m, x, i+1)

	outD := sc.outD[i*m : i*m+m]
	outS := sc.outS[i*m : i*m+m]
	for y := 0; y < base; y++ {
		bd, bsig := unreach32, 0.0
		if od := outD[y]; od != Inf16 {
			bd, bsig = int32(od)+1, outS[y]
		}
		d, s := sc.replayCell(bs, m, y, i+1, c, bd, bsig)
		writeCell(rowD, rowS, apT, st, x, y, d, s)
	}
	for mm := 0; mm < c; mm++ {
		y := base + mm
		if mm == i {
			rowD[y] = 0
			rowS[y] = 1
			apT.Dist[y*st+x] = 0
			apT.Sigma[y*st+x] = 1
			continue
		}
		// Born when the later of the two members folded.
		bd, bsig := unreach32, 0.0
		if mm > i {
			if id := sc.inD[mm*m+x]; id != Inf16 {
				bd, bsig = int32(id)+1, sc.inS[mm*m+x]
			}
		} else {
			if od := outD[y]; od != Inf16 {
				bd, bsig = int32(od)+1, outS[y]
			}
		}
		from := i + 1
		if mm+1 > from {
			from = mm + 1
		}
		d, s := sc.replayCell(bs, m, y, from, c, bd, bsig)
		writeCell(rowD, rowS, apT, st, x, y, d, s)
	}
}

// buildRowList gathers the winners that can reach row x (inDist finite,
// index ≥ minJ) into dxByJ and the dx-sorted scan order. Returns the
// list length.
func (sc *ExtendScratch) buildRowList(bs *extendRowScratch, c, m, x, minJ int) int {
	bs.sdx = bs.sdx[:0]
	bs.sj = bs.sj[:0]
	for j := 0; j < c; j++ {
		bs.dxByJ[j] = -1
		if j < minJ {
			continue
		}
		if di := sc.inD[j*m+x]; di != Inf16 {
			dx := int32(di) + 2
			bs.dxByJ[j] = dx
			bs.sxByJ[j] = sc.inS[j*m+x]
			// Insertion sort by dx: chunk lists are short.
			k := len(bs.sdx)
			bs.sdx = append(bs.sdx, 0)
			bs.sj = append(bs.sj, 0)
			for k > 0 && bs.sdx[k-1] > dx {
				bs.sdx[k] = bs.sdx[k-1]
				bs.sj[k] = bs.sj[k-1]
				k--
			}
			bs.sdx[k] = dx
			bs.sj[k] = int32(j)
		}
	}
	return len(bs.sdx)
}

// replayCell applies winners [from, to) to one cell in commit order,
// starting from its base (or birth) value — the sequential fold rule
// verbatim: strict improvement resets the path count, a tie adds.
func (sc *ExtendScratch) replayCell(bs *extendRowScratch, m, y, from, to int, d int32, s float64) (int32, float64) {
	for j := from; j < to; j++ {
		dx := bs.dxByJ[j]
		if dx < 0 {
			continue
		}
		od := sc.outD[j*m+y]
		if od == Inf16 {
			continue
		}
		t := dx + int32(od)
		if t < d {
			d, s = t, bs.sxByJ[j]*sc.outS[j*m+y]
		} else if t == d {
			s += bs.sxByJ[j] * sc.outS[j*m+y]
		}
	}
	return d, s
}

// insertionSortInt32 sorts a tiny candidate list ascending.
func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k-1] > a[k]; k-- {
			a[k-1], a[k] = a[k], a[k-1]
		}
	}
}

// writeCell stores one constructed cell in both planes.
func writeCell(rowD []uint16, rowS []float64, apT *AllPairs, st, x, y int, d int32, s float64) {
	if d >= unreach32 {
		rowD[y] = Inf16
		rowS[y] = 0
		apT.Dist[y*st+x] = Inf16
		apT.Sigma[y*st+x] = 0
		return
	}
	if d > maxDist32 {
		panic("graph: distance plane overflow in batched extend")
	}
	rowD[y] = uint16(d)
	rowS[y] = s
	apT.Dist[y*st+x] = uint16(d)
	apT.Sigma[y*st+x] = s
}
