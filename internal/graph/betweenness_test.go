package graph

import (
	"math"
	"math/rand"
	"testing"
)

const betweennessTol = 1e-9

func TestEdgeBetweennessPath(t *testing.T) {
	// On the directed 3-path 0↔1↔2, the edge (0,1) carries the pairs
	// (0,1) and (0,2): EBC = 2 with unit weights.
	g := Path(3, 1)
	bc := g.EdgeBetweenness(nil)
	ids := g.EdgesBetween(0, 1)
	if len(ids) != 1 {
		t.Fatalf("expected single edge 0→1, got %d", len(ids))
	}
	if got := bc[ids[0]]; math.Abs(got-2) > betweennessTol {
		t.Fatalf("EBC(0→1) = %v, want 2", got)
	}
	ids = g.EdgesBetween(1, 2)
	if got := bc[ids[0]]; math.Abs(got-2) > betweennessTol {
		t.Fatalf("EBC(1→2) = %v, want 2", got)
	}
}

func TestNodeBetweennessStar(t *testing.T) {
	// Star with k leaves: the center lies interior on every ordered leaf
	// pair, so NBC(center) = k(k-1); leaves are never interior.
	const k = 5
	g := Star(k, 1)
	bc := g.NodeBetweenness(nil)
	if got, want := bc[0], float64(k*(k-1)); math.Abs(got-want) > betweennessTol {
		t.Fatalf("NBC(center) = %v, want %v", got, want)
	}
	for leaf := 1; leaf <= k; leaf++ {
		if bc[leaf] != 0 {
			t.Fatalf("NBC(leaf %d) = %v, want 0", leaf, bc[leaf])
		}
	}
}

func TestNodeBetweennessPathMiddle(t *testing.T) {
	// Path 0-1-2: node 1 is interior for (0,2) and (2,0) only.
	g := Path(3, 1)
	bc := g.NodeBetweenness(nil)
	if got := bc[1]; math.Abs(got-2) > betweennessTol {
		t.Fatalf("NBC(1) = %v, want 2", got)
	}
}

func TestEdgeBetweennessSplitsTies(t *testing.T) {
	// Diamond 0↔1↔3, 0↔2↔3. Edge 0→1 carries: pair (0,1) fully (1),
	// half of pair (0,3) (paths 0→1→3 and 0→2→3), and half of pair (2,1)
	// (paths 2→0→1 and 2→3→1): total 2.
	g := New(4)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 0, 2, 1, 1)
	mustChannel(g, 1, 3, 1, 1)
	mustChannel(g, 2, 3, 1, 1)
	bc := g.EdgeBetweenness(nil)
	id := g.EdgesBetween(0, 1)[0]
	if got, want := bc[id], 2.0; math.Abs(got-want) > betweennessTol {
		t.Fatalf("EBC(0→1) = %v, want %v", got, want)
	}
}

func TestWeightedEdgeBetweenness(t *testing.T) {
	// Weight only the pair (0,2) on a 3-path: both hops carry exactly that
	// weight.
	g := Path(3, 1)
	w := func(s, r NodeID) float64 {
		if s == 0 && r == 2 {
			return 0.25
		}
		return 0
	}
	bc := g.EdgeBetweenness(w)
	e01 := g.EdgesBetween(0, 1)[0]
	e12 := g.EdgesBetween(1, 2)[0]
	if math.Abs(bc[e01]-0.25) > betweennessTol || math.Abs(bc[e12]-0.25) > betweennessTol {
		t.Fatalf("weighted EBC = %v/%v, want 0.25/0.25", bc[e01], bc[e12])
	}
	e10 := g.EdgesBetween(1, 0)[0]
	if bc[e10] != 0 {
		t.Fatalf("reverse edge got weight %v, want 0", bc[e10])
	}
}

func TestEdgeBetweennessAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := ErdosRenyi(8, 0.35, 1, rng)
		// Random positive pair weights.
		weights := make(map[[2]NodeID]float64)
		w := func(s, r NodeID) float64 {
			key := [2]NodeID{s, r}
			if v, ok := weights[key]; ok {
				return v
			}
			v := rng.Float64()
			weights[key] = v
			return v
		}
		fast := g.EdgeBetweenness(w)
		naive := g.EdgeBetweennessNaive(w)
		for id := range fast {
			if math.Abs(fast[id]-naive[id]) > 1e-6 {
				t.Fatalf("trial %d: edge %d Brandes=%v naive=%v", trial, id, fast[id], naive[id])
			}
		}
	}
}

func TestNodeBetweennessConsistentWithEdges(t *testing.T) {
	// For any node v, the transit weight through v equals the total weight
	// entering v on its in-edges minus the weight of pairs terminating at
	// v. Cheaper invariant: sum of EBC over out-edges of v counts transit
	// plus pairs originating at v; transit = Σ_out EBC − Σ_r w(v,r)
	// reachable. Verify on random graphs with unit weights.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := ConnectedErdosRenyi(9, 0.3, 1, rng, 50)
		edge, node := g.Betweenness(nil)
		n := g.NumNodes()
		for v := 0; v < n; v++ {
			var outSum float64
			for _, id := range g.OutEdges(NodeID(v)) {
				outSum += edge[id]
			}
			// Pairs originating at v contribute their full unit weight to
			// exactly one outgoing edge each per path share; the total
			// origin weight is (n-1) in a strongly connected graph.
			origin := float64(n - 1)
			if math.Abs(outSum-origin-node[v]) > 1e-6 {
				t.Fatalf("trial %d node %d: outSum=%v origin=%v transit=%v", trial, v, outSum, origin, node[v])
			}
		}
	}
}

func TestBetweennessZeroWeight(t *testing.T) {
	g := Star(4, 1)
	bc := g.EdgeBetweenness(func(s, r NodeID) float64 { return 0 })
	for id, v := range bc {
		if v != 0 {
			t.Fatalf("edge %d has betweenness %v under zero weights", id, v)
		}
	}
}

func TestBetweennessDisconnectedPairsIgnored(t *testing.T) {
	// Two components: pairs across components must contribute nothing and
	// must not panic.
	g := New(4)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 2, 3, 1, 1)
	bc := g.EdgeBetweenness(nil)
	for _, id := range g.EdgesBetween(0, 1) {
		if math.Abs(bc[id]-1) > betweennessTol {
			t.Fatalf("EBC(0→1) = %v, want 1", bc[id])
		}
	}
}
