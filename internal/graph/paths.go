package graph

import "math"

// Unreachable is the hop distance reported between disconnected nodes.
// The paper sets d(u,v) = +∞ for disconnected pairs (§II-C); callers that
// need the infinite-cost semantics should compare against Unreachable.
const Unreachable = -1

// BFS returns the hop distances from src to every node, following directed
// edges. Unreachable nodes are reported as Unreachable (-1).
func (g *Graph) BFS(src NodeID) []int {
	dist, _ := g.BFSCounts(src)
	return dist
}

// BFSCounts returns, for every node v, the hop distance dist[v] from src
// and the number of distinct shortest src→v paths sigma[v]. Parallel edges
// count as distinct paths, matching the multigraph action set of §II-C.
// Path counts are accumulated in float64 as is standard for Brandes-style
// algorithms; they are exact until they exceed 2^53.
func (g *Graph) BFSCounts(src NodeID) (dist []int, sigma []float64) {
	n := g.NumNodes()
	dist = make([]int, n)
	sigma = make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.HasNode(src) {
		return dist, sigma
	}
	dist[src] = 0
	sigma[src] = 1
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.out[v] {
			w := g.edges[id].To
			switch {
			case dist[w] == Unreachable:
				dist[w] = dist[v] + 1
				sigma[w] = sigma[v]
				queue = append(queue, w)
			case dist[w] == dist[v]+1:
				sigma[w] += sigma[v]
			}
		}
	}
	return dist, sigma
}

// AllPairs holds the all-pairs shortest-path structure of a graph snapshot:
// hop distances and shortest-path counts for every ordered pair.
type AllPairs struct {
	N     int
	Dist  [][]int     // Dist[s][t]: hops s→t, Unreachable if disconnected
	Sigma [][]float64 // Sigma[s][t]: number of shortest s→t paths
}

// AllPairsBFS computes hop distances and shortest-path counts between all
// ordered node pairs in O(n·(n+m)) time.
func (g *Graph) AllPairsBFS() *AllPairs {
	n := g.NumNodes()
	ap := &AllPairs{
		N:     n,
		Dist:  make([][]int, n),
		Sigma: make([][]float64, n),
	}
	for s := 0; s < n; s++ {
		ap.Dist[s], ap.Sigma[s] = g.BFSCounts(NodeID(s))
	}
	return ap
}

// HopDistance returns the hop distance between two nodes, or Unreachable.
func (g *Graph) HopDistance(from, to NodeID) int {
	if !g.HasNode(from) || !g.HasNode(to) {
		return Unreachable
	}
	dist := g.BFS(from)
	return dist[to]
}

// Diameter returns the longest finite shortest-path distance in the graph,
// and whether the graph is strongly connected (every ordered pair
// reachable). An empty or single-node graph has diameter 0 and is
// connected.
func (g *Graph) Diameter() (diameter int, connected bool) {
	n := g.NumNodes()
	connected = true
	for s := 0; s < n; s++ {
		dist := g.BFS(NodeID(s))
		for t, d := range dist {
			if t == s {
				continue
			}
			if d == Unreachable {
				connected = false
				continue
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter, connected
}

// Eccentricity returns the longest finite shortest-path distance from u to
// any other node, and whether every other node is reachable from u.
func (g *Graph) Eccentricity(u NodeID) (ecc int, reachesAll bool) {
	if !g.HasNode(u) {
		return 0, false
	}
	reachesAll = true
	for t, d := range g.BFS(u) {
		if NodeID(t) == u {
			continue
		}
		if d == Unreachable {
			reachesAll = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reachesAll
}

// StronglyConnected reports whether every ordered pair of nodes is
// connected by a directed path.
func (g *Graph) StronglyConnected() bool {
	_, ok := g.Diameter()
	return ok
}

// LongestShortestPathThrough returns the length of the longest shortest
// path that passes through node h (as an intermediary or endpoint), i.e.
// max over pairs (s,t) with a shortest s→t path visiting h of d(s,t).
// This is the quantity bounded by Theorem 6 for hub nodes. It returns 0
// when no pair routes through h.
func (g *Graph) LongestShortestPathThrough(h NodeID) int {
	if !g.HasNode(h) {
		return 0
	}
	// A shortest s→t path through h exists iff d(s,h)+d(h,t) == d(s,t).
	distToH := make([]int, g.NumNodes())
	rev := g.reverse()
	revDist := rev.BFS(h) // distances h→s in reversed graph == s→h in g
	copy(distToH, revDist)
	fromH := g.BFS(h)
	longest := 0
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		if distToH[s] == Unreachable {
			continue
		}
		dist := g.BFS(NodeID(s))
		for t := 0; t < n; t++ {
			if t == s || fromH[t] == Unreachable || dist[t] == Unreachable {
				continue
			}
			if distToH[s]+fromH[t] == dist[t] && dist[t] > longest {
				longest = dist[t]
			}
		}
	}
	return longest
}

// reverse returns a copy of the graph with every edge direction flipped.
func (g *Graph) reverse() *Graph {
	r := New(g.NumNodes())
	g.ForEachEdge(func(e Edge) bool {
		if _, err := r.AddEdge(e.To, e.From, e.Capacity); err != nil {
			// Unreachable: e came from a valid graph.
			panic(err)
		}
		return true
	})
	return r
}

// FiniteOrInf converts a hop distance to a float64, mapping Unreachable to
// +Inf so that callers can use the paper's d(u,v)=+∞ convention directly.
func FiniteOrInf(d int) float64 {
	if d == Unreachable {
		return math.Inf(1)
	}
	return float64(d)
}
