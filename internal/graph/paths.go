package graph

import "math"

// Unreachable is the hop distance reported between disconnected nodes.
// The paper sets d(u,v) = +∞ for disconnected pairs (§II-C); callers that
// need the infinite-cost semantics should compare against Unreachable.
const Unreachable = -1

// BFS returns the hop distances from src to every node, following directed
// edges. Unreachable nodes are reported as Unreachable (-1).
func (g *Graph) BFS(src NodeID) []int {
	dist, _ := g.BFSCounts(src)
	return dist
}

// BFSCounts returns, for every node v, the hop distance dist[v] from src
// and the number of distinct shortest src→v paths sigma[v]. Parallel edges
// count as distinct paths, matching the multigraph action set of §II-C.
// Path counts are accumulated in float64 as is standard for Brandes-style
// algorithms; they are exact until they exceed 2^53.
func (g *Graph) BFSCounts(src NodeID) (dist []int, sigma []float64) {
	n := g.NumNodes()
	dist = make([]int, n)
	sigma = make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.HasNode(src) {
		return dist, sigma
	}
	dist[src] = 0
	sigma[src] = 1
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.out[v] {
			w := g.edges[id].To
			switch {
			case dist[w] == Unreachable:
				dist[w] = dist[v] + 1
				sigma[w] = sigma[v]
				queue = append(queue, w)
			case dist[w] == dist[v]+1:
				sigma[w] += sigma[v]
			}
		}
	}
	return dist, sigma
}

// AllPairs holds the all-pairs shortest-path structure of a graph snapshot:
// hop distances and shortest-path counts for every ordered pair, stored as
// contiguous row-major buffers. Row s starts at s·Stride; the first N
// entries of each row are live. Freshly computed structures have
// Stride == N, but a structure that grows node by node (ExtendWithNode)
// reserves Stride > N so appending a node never re-lays-out the matrix.
// The flat layout keeps the O(n²) pricing scans on one cache line per row
// instead of chasing a pointer per source; int32 distances halve the
// footprint of the distance matrix (hop counts never approach 2³¹).
type AllPairs struct {
	N      int
	Stride int       // row stride; N ≤ Stride
	Dist   []int32   // Dist[s*Stride+t]: hops s→t, Unreachable if disconnected
	Sigma  []float64 // Sigma[s*Stride+t]: number of shortest s→t paths
}

// AllPairsBFS computes hop distances and shortest-path counts between all
// ordered node pairs in O(n·(n+m)) time.
func (g *Graph) AllPairsBFS() *AllPairs {
	n := g.NumNodes()
	ap := &AllPairs{
		N:      n,
		Stride: n,
		Dist:   make([]int32, n*n),
		Sigma:  make([]float64, n*n),
	}
	queue := make([]NodeID, 0, n)
	for s := 0; s < n; s++ {
		g.bfsCountsInto(NodeID(s), ap.Dist[s*n:(s+1)*n], ap.Sigma[s*n:(s+1)*n], queue)
	}
	return ap
}

// bfsCountsInto is BFSCounts writing into caller-provided row buffers,
// reusing the queue backing array across sources to keep AllPairsBFS
// allocation-light. dist and sigma must have length NumNodes.
func (g *Graph) bfsCountsInto(src NodeID, dist []int32, sigma []float64, queue []NodeID) {
	for i := range dist {
		dist[i] = Unreachable
		sigma[i] = 0
	}
	if !g.HasNode(src) {
		return
	}
	dist[src] = 0
	sigma[src] = 1
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.out[v] {
			w := g.edges[id].To
			switch {
			case dist[w] == Unreachable:
				dist[w] = dist[v] + 1
				sigma[w] = sigma[v]
				queue = append(queue, w)
			case dist[w] == dist[v]+1:
				sigma[w] += sigma[v]
			}
		}
	}
}

// DistAt returns the hop distance s→t (Unreachable when disconnected).
func (ap *AllPairs) DistAt(s, t NodeID) int { return int(ap.Dist[int(s)*ap.Stride+int(t)]) }

// SigmaAt returns the number of shortest s→t paths.
func (ap *AllPairs) SigmaAt(s, t NodeID) float64 { return ap.Sigma[int(s)*ap.Stride+int(t)] }

// DistRow returns the contiguous distance row of source s: DistRow(s)[t]
// is the hop distance s→t.
func (ap *AllPairs) DistRow(s int) []int32 { return ap.Dist[s*ap.Stride : s*ap.Stride+ap.N] }

// SigmaRow returns the contiguous path-count row of source s.
func (ap *AllPairs) SigmaRow(s int) []float64 { return ap.Sigma[s*ap.Stride : s*ap.Stride+ap.N] }

// Transposed returns the column-major mirror: in the result, row t holds
// the distances (and path counts) *towards* t from every source, again as
// contiguous buffers. Incoming-direction scans (d(x, v) for all x) walk a
// transposed row linearly instead of striding through the original.
func (ap *AllPairs) Transposed() *AllPairs {
	n := ap.N
	t := &AllPairs{
		N:      n,
		Stride: n,
		Dist:   make([]int32, n*n),
		Sigma:  make([]float64, n*n),
	}
	for s := 0; s < n; s++ {
		srow := ap.DistRow(s)
		grow := ap.SigmaRow(s)
		for r := 0; r < n; r++ {
			t.Dist[r*n+s] = srow[r]
			t.Sigma[r*n+s] = grow[r]
		}
	}
	return t
}

// HopDistance returns the hop distance between two nodes, or Unreachable.
func (g *Graph) HopDistance(from, to NodeID) int {
	if !g.HasNode(from) || !g.HasNode(to) {
		return Unreachable
	}
	dist := g.BFS(from)
	return dist[to]
}

// Diameter returns the longest finite shortest-path distance in the graph,
// and whether the graph is strongly connected (every ordered pair
// reachable). An empty or single-node graph has diameter 0 and is
// connected.
func (g *Graph) Diameter() (diameter int, connected bool) {
	n := g.NumNodes()
	connected = true
	for s := 0; s < n; s++ {
		dist := g.BFS(NodeID(s))
		for t, d := range dist {
			if t == s {
				continue
			}
			if d == Unreachable {
				connected = false
				continue
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter, connected
}

// Eccentricity returns the longest finite shortest-path distance from u to
// any other node, and whether every other node is reachable from u.
func (g *Graph) Eccentricity(u NodeID) (ecc int, reachesAll bool) {
	if !g.HasNode(u) {
		return 0, false
	}
	reachesAll = true
	for t, d := range g.BFS(u) {
		if NodeID(t) == u {
			continue
		}
		if d == Unreachable {
			reachesAll = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reachesAll
}

// StronglyConnected reports whether every ordered pair of nodes is
// connected by a directed path.
func (g *Graph) StronglyConnected() bool {
	_, ok := g.Diameter()
	return ok
}

// LongestShortestPathThrough returns the length of the longest shortest
// path that passes through node h (as an intermediary or endpoint), i.e.
// max over pairs (s,t) with a shortest s→t path visiting h of d(s,t).
// This is the quantity bounded by Theorem 6 for hub nodes. It returns 0
// when no pair routes through h.
func (g *Graph) LongestShortestPathThrough(h NodeID) int {
	if !g.HasNode(h) {
		return 0
	}
	// A shortest s→t path through h exists iff d(s,h)+d(h,t) == d(s,t).
	distToH := make([]int, g.NumNodes())
	rev := g.reverse()
	revDist := rev.BFS(h) // distances h→s in reversed graph == s→h in g
	copy(distToH, revDist)
	fromH := g.BFS(h)
	longest := 0
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		if distToH[s] == Unreachable {
			continue
		}
		dist := g.BFS(NodeID(s))
		for t := 0; t < n; t++ {
			if t == s || fromH[t] == Unreachable || dist[t] == Unreachable {
				continue
			}
			if distToH[s]+fromH[t] == dist[t] && dist[t] > longest {
				longest = dist[t]
			}
		}
	}
	return longest
}

// reverse returns a copy of the graph with every edge direction flipped.
func (g *Graph) reverse() *Graph {
	r := New(g.NumNodes())
	g.ForEachEdge(func(e Edge) bool {
		if _, err := r.AddEdge(e.To, e.From, e.Capacity); err != nil {
			// Unreachable: e came from a valid graph.
			panic(err)
		}
		return true
	})
	return r
}

// FiniteOrInf converts a hop distance to a float64, mapping Unreachable to
// +Inf so that callers can use the paper's d(u,v)=+∞ convention directly.
func FiniteOrInf(d int) float64 {
	if d == Unreachable {
		return math.Inf(1)
	}
	return float64(d)
}
