package graph

import (
	"math"

	"github.com/lightning-creation-games/lcg/internal/par"
)

// Unreachable is the hop distance reported between disconnected nodes by
// the []int-valued traversal APIs (BFS, HopDistance, Diameter …). The
// paper sets d(u,v) = +∞ for disconnected pairs (§II-C); callers that
// need the infinite-cost semantics should compare against Unreachable.
const Unreachable = -1

// Inf16 is the unreachable sentinel of the compact distance plane: the
// all-pairs structure stores hop distances as uint16 with +∞ encoded as
// the maximum value. Encoding +∞ as the largest representable distance
// keeps every "is this path shorter" comparison a single unsigned
// compare — no sentinel branch — and halves the distance plane's memory
// against the previous int32 layout (200MB instead of 400MB per
// direction at n=10k).
//
// Envelope: finite hop distances must stay ≤ MaxDist so that
// through-node sums d(x,vᵢ)+2+d(vⱼ,y) computed in int arithmetic never
// collide with the sentinel. Real PCN topologies have single-digit
// diameters; the BFS kernels panic loudly if a graph ever exceeds the
// envelope rather than corrupting the plane.
const (
	Inf16   uint16 = math.MaxUint16
	MaxDist uint16 = math.MaxUint16/2 - 1
)

// BFS returns the hop distances from src to every node, following directed
// edges. Unreachable nodes are reported as Unreachable (-1).
func (g *Graph) BFS(src NodeID) []int {
	dist, _ := g.BFSCounts(src)
	return dist
}

// BFSCounts returns, for every node v, the hop distance dist[v] from src
// and the number of distinct shortest src→v paths sigma[v]. Parallel edges
// count as distinct paths, matching the multigraph action set of §II-C.
// Path counts are accumulated in float64 as is standard for Brandes-style
// algorithms; they are exact until they exceed 2^53.
func (g *Graph) BFSCounts(src NodeID) (dist []int, sigma []float64) {
	n := g.NumNodes()
	dist = make([]int, n)
	sigma = make([]float64, n)
	d16 := make([]uint16, n)
	var sc BFSScratch
	g.BFSCountsInto(src, d16, sigma, &sc)
	for i, d := range d16 {
		if d == Inf16 {
			dist[i] = Unreachable
		} else {
			dist[i] = int(d)
		}
	}
	return dist, sigma
}

// BFSScratch is the reusable per-worker state of one BFS source pass:
// holding one between calls makes every pass after the first
// allocation-free, which is what lets the all-pairs rebuild run n
// sources over a fixed set of worker scratches.
type BFSScratch struct {
	queue []int32
}

// BFSCountsInto runs one source pass of the all-pairs kernel: hop
// distances (Inf16 where unreachable) and shortest-path counts from src
// written into the caller's row buffers, which must have length
// NumNodes. The traversal iterates the CSR adjacency; after the scratch
// warms up the pass performs no allocation (enforced by
// TestBFSCountsIntoAllocFree).
func (g *Graph) BFSCountsInto(src NodeID, dist []uint16, sigma []float64, sc *BFSScratch) {
	c := g.ensureCSR()
	g.bfsCountsCSR(c, src, dist, sigma, sc)
}

// bfsCountsCSR is BFSCountsInto against an already-ensured CSR view; the
// parallel rebuild calls it so workers never race on the cache build.
func (g *Graph) bfsCountsCSR(c *csrAdj, src NodeID, dist []uint16, sigma []float64, sc *BFSScratch) {
	for i := range dist {
		dist[i] = Inf16
		sigma[i] = 0
	}
	if !g.HasNode(src) {
		return
	}
	if cap(sc.queue) < len(dist) {
		sc.queue = make([]int32, 0, len(dist))
	}
	queue := sc.queue[:0]
	dist[src] = 0
	sigma[src] = 1
	queue = append(queue, int32(src))
	off, nbr := c.Offsets, c.Neighbors
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		dv := dist[v]
		nd := dv + 1
		relax := dv < MaxDist // a write of nd would stay in the envelope
		sv := sigma[v]
		if int(v) < c.nodes {
			for i := off[v]; i < off[v+1]; i++ {
				w := nbr[i]
				switch dist[w] {
				case Inf16:
					if !relax {
						panic("graph: distance plane overflow (diameter exceeds the uint16 envelope)")
					}
					dist[w] = nd
					sigma[w] = sv
					queue = append(queue, w)
				case nd:
					sigma[w] += sv
				}
			}
		}
		if int(v) < len(c.extra) {
			for _, e := range c.extra[v] {
				w := e.to
				switch dist[w] {
				case Inf16:
					if !relax {
						panic("graph: distance plane overflow (diameter exceeds the uint16 envelope)")
					}
					dist[w] = nd
					sigma[w] = sv
					queue = append(queue, int32(w))
				case nd:
					sigma[w] += sv
				}
			}
		}
	}
	sc.queue = queue[:0]
}

// AllPairs holds the all-pairs shortest-path structure of a graph snapshot:
// hop distances and shortest-path counts for every ordered pair, stored as
// contiguous row-major buffers. Row s starts at s·Stride; the first N
// entries of each row are live. Freshly computed structures have
// Stride == N, but a structure that grows node by node (ExtendWithNode)
// reserves Stride > N so appending a node never re-lays-out the matrix.
// The flat layout keeps the O(n²) pricing scans on one cache line per row
// instead of chasing a pointer per source; uint16 distances (Inf16 = +∞)
// quarter the footprint of the distance plane against an int-per-cell
// layout — hop counts in the supported envelope never approach 2¹⁵.
type AllPairs struct {
	N      int
	Stride int       // row stride; N ≤ Stride
	Dist   []uint16  // Dist[s*Stride+t]: hops s→t, Inf16 if disconnected
	Sigma  []float64 // Sigma[s*Stride+t]: number of shortest s→t paths
}

// AllPairsBFS computes hop distances and shortest-path counts between all
// ordered node pairs in O(n·(n+m)) time, single-threaded.
func (g *Graph) AllPairsBFS() *AllPairs {
	return g.AllPairsBFSParallel(1)
}

// AllPairsBFSParallel is the row-sharded all-pairs rebuild: source rows
// are independent, so they fan out over a bounded worker pool in
// contiguous blocks, each worker owning one BFSScratch and writing only
// its own rows. The result is deterministic by construction — every row
// is a pure function of (graph, source) — and bit-identical to the
// serial rebuild at any worker count. workers ≤ 0 selects all cores.
//
// This is the deletion slow path (GrowSession.Rebuild) and the cold
// start made embarrassingly parallel: at n=2000 the rebuild drops from
// the dominant cost of a churn event to roughly its serial cost divided
// by the core count.
func (g *Graph) AllPairsBFSParallel(workers int) *AllPairs {
	n := g.NumNodes()
	ap := &AllPairs{
		N:      n,
		Stride: n,
		Dist:   make([]uint16, n*n),
		Sigma:  make([]float64, n*n),
	}
	if n == 0 {
		return ap
	}
	c := g.ensureCSR()
	// One scratch per block: blocks run at most pool-wide, and the
	// scratch count stays proportional to the worker bound.
	par.NewPool(workers).ForEachBlock(n, func(lo, hi int) {
		var sc BFSScratch
		for s := lo; s < hi; s++ {
			g.bfsCountsCSR(c, NodeID(s), ap.Dist[s*n:(s+1)*n], ap.Sigma[s*n:(s+1)*n], &sc)
		}
	})
	return ap
}

// DistAt returns the hop distance s→t (Unreachable when disconnected).
func (ap *AllPairs) DistAt(s, t NodeID) int {
	d := ap.Dist[int(s)*ap.Stride+int(t)]
	if d == Inf16 {
		return Unreachable
	}
	return int(d)
}

// SigmaAt returns the number of shortest s→t paths.
func (ap *AllPairs) SigmaAt(s, t NodeID) float64 { return ap.Sigma[int(s)*ap.Stride+int(t)] }

// DistRow returns the contiguous distance row of source s: DistRow(s)[t]
// is the hop distance s→t (Inf16 when disconnected).
func (ap *AllPairs) DistRow(s int) []uint16 { return ap.Dist[s*ap.Stride : s*ap.Stride+ap.N] }

// SigmaRow returns the contiguous path-count row of source s.
func (ap *AllPairs) SigmaRow(s int) []float64 { return ap.Sigma[s*ap.Stride : s*ap.Stride+ap.N] }

// Transposed returns the column-major mirror: in the result, row t holds
// the distances (and path counts) *towards* t from every source, again as
// contiguous buffers. Incoming-direction scans (d(x, v) for all x) walk a
// transposed row linearly instead of striding through the original.
func (ap *AllPairs) Transposed() *AllPairs {
	return ap.TransposedParallel(1)
}

// TransposedParallel builds the mirror with the output rows sharded over
// a bounded worker pool — bit-identical to Transposed at any worker
// count (each output row is copied from one input column). workers ≤ 0
// selects all cores.
func (ap *AllPairs) TransposedParallel(workers int) *AllPairs {
	n := ap.N
	t := &AllPairs{
		N:      n,
		Stride: n,
		Dist:   make([]uint16, n*n),
		Sigma:  make([]float64, n*n),
	}
	if n == 0 {
		return t
	}
	par.NewPool(workers).ForEachBlock(n, func(lo, hi int) {
		// Walk the input row-major and scatter into the block's output
		// rows: the reads stream, the writes stay within the block.
		for s := 0; s < n; s++ {
			srow := ap.DistRow(s)
			grow := ap.SigmaRow(s)
			for r := lo; r < hi; r++ {
				t.Dist[r*n+s] = srow[r]
				t.Sigma[r*n+s] = grow[r]
			}
		}
	})
	return t
}

// HopDistance returns the hop distance between two nodes, or Unreachable.
func (g *Graph) HopDistance(from, to NodeID) int {
	if !g.HasNode(from) || !g.HasNode(to) {
		return Unreachable
	}
	dist := g.BFS(from)
	return dist[to]
}

// Diameter returns the longest finite shortest-path distance in the graph,
// and whether the graph is strongly connected (every ordered pair
// reachable). An empty or single-node graph has diameter 0 and is
// connected.
func (g *Graph) Diameter() (diameter int, connected bool) {
	n := g.NumNodes()
	connected = true
	for s := 0; s < n; s++ {
		dist := g.BFS(NodeID(s))
		for t, d := range dist {
			if t == s {
				continue
			}
			if d == Unreachable {
				connected = false
				continue
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter, connected
}

// Eccentricity returns the longest finite shortest-path distance from u to
// any other node, and whether every other node is reachable from u.
func (g *Graph) Eccentricity(u NodeID) (ecc int, reachesAll bool) {
	if !g.HasNode(u) {
		return 0, false
	}
	reachesAll = true
	for t, d := range g.BFS(u) {
		if NodeID(t) == u {
			continue
		}
		if d == Unreachable {
			reachesAll = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reachesAll
}

// StronglyConnected reports whether every ordered pair of nodes is
// connected by a directed path.
func (g *Graph) StronglyConnected() bool {
	_, ok := g.Diameter()
	return ok
}

// LongestShortestPathThrough returns the length of the longest shortest
// path that passes through node h (as an intermediary or endpoint), i.e.
// max over pairs (s,t) with a shortest s→t path visiting h of d(s,t).
// This is the quantity bounded by Theorem 6 for hub nodes. It returns 0
// when no pair routes through h.
func (g *Graph) LongestShortestPathThrough(h NodeID) int {
	if !g.HasNode(h) {
		return 0
	}
	// A shortest s→t path through h exists iff d(s,h)+d(h,t) == d(s,t).
	distToH := make([]int, g.NumNodes())
	rev := g.reverse()
	revDist := rev.BFS(h) // distances h→s in reversed graph == s→h in g
	copy(distToH, revDist)
	fromH := g.BFS(h)
	longest := 0
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		if distToH[s] == Unreachable {
			continue
		}
		dist := g.BFS(NodeID(s))
		for t := 0; t < n; t++ {
			if t == s || fromH[t] == Unreachable || dist[t] == Unreachable {
				continue
			}
			if distToH[s]+fromH[t] == dist[t] && dist[t] > longest {
				longest = dist[t]
			}
		}
	}
	return longest
}

// reverse returns a copy of the graph with every edge direction flipped.
func (g *Graph) reverse() *Graph {
	r := New(g.NumNodes())
	g.ForEachEdge(func(e Edge) bool {
		if _, err := r.AddEdge(e.To, e.From, e.Capacity); err != nil {
			// Unreachable: e came from a valid graph.
			panic(err)
		}
		return true
	})
	return r
}

// FiniteOrInf converts a hop distance to a float64, mapping Unreachable to
// +Inf so that callers can use the paper's d(u,v)=+∞ convention directly.
func FiniteOrInf(d int) float64 {
	if d == Unreachable {
		return math.Inf(1)
	}
	return float64(d)
}
