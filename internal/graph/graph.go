// Package graph provides the directed-multigraph substrate used throughout
// the library to model payment channel network (PCN) topologies.
//
// Following the paper's model (§II-A), every bidirectional payment channel
// between two users u and v is represented by two directed edges, one in
// each direction. The capacity of the directed edge (u,v) is the balance u
// currently owns inside the channel, i.e. the maximum amount u can push
// towards v. Parallel channels between the same pair of users are allowed
// (the action set Ω of §II-C explicitly permits them) and are counted as
// distinct shortest paths by the path-counting routines.
//
// Nodes are dense integer identifiers handed out by the graph; edges are
// identified by stable EdgeIDs that survive unrelated removals.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node (a PCN user) inside a Graph.
type NodeID int

// EdgeID identifies a directed edge (one direction of a payment channel).
type EdgeID int

// Invalid sentinel identifiers. Valid IDs are always non-negative.
const (
	InvalidNode NodeID = -1
	InvalidEdge EdgeID = -1
)

// Errors returned by graph mutators.
var (
	ErrNodeOutOfRange = errors.New("graph: node out of range")
	ErrSelfLoop       = errors.New("graph: self loops are not allowed")
	ErrEdgeNotFound   = errors.New("graph: edge not found")
	ErrNegativeValue  = errors.New("graph: negative capacity")
	// ErrNonFiniteValue rejects NaN and ±Inf capacities. A NaN slips past
	// a plain `capacity < 0` check (every comparison with NaN is false)
	// and then poisons every feasibility comparison on the routing plane
	// silently, so non-finite values are hard errors at the mutation
	// boundary — the only place they can be attributed to their caller.
	ErrNonFiniteValue = errors.New("graph: non-finite capacity")
)

// Edge is one direction of a payment channel.
type Edge struct {
	ID       EdgeID
	From     NodeID
	To       NodeID
	Capacity float64 // balance spendable in the From→To direction
}

// Graph is a directed multigraph. The zero value is an empty graph ready
// for use; New pre-allocates n nodes.
type Graph struct {
	out      [][]EdgeID
	in       [][]EdgeID
	edges    []Edge
	alive    []bool
	numAlive int

	// csr is the flat adjacency cache BFS traversals run on (csr.go);
	// nil until the first traversal and after a pre-watermark removal.
	csr *csrAdj
	// markFloor is the lowest outstanding Mark watermark (-1 when no
	// probe is in flight). CSR rebuilds bake only edges below it, so a
	// traversal that runs mid-probe keeps the probe's additions in the
	// append regions and the following Rollback cannot invalidate the
	// snapshot — the probe loops that dominate best-response search stay
	// allocation-free.
	markFloor int
}

// New returns a graph with n nodes (0..n-1) and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		out:       make([][]EdgeID, n),
		in:        make([][]EdgeID, n),
		markFloor: -1,
	}
}

// AddNode appends a fresh isolated node and returns its identifier.
func (g *Graph) AddNode() NodeID {
	id := NodeID(len(g.out))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.csrAddNode()
	return id
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges reports the number of live directed edges.
func (g *Graph) NumEdges() int { return g.numAlive }

// NumChannels reports the number of live directed edges divided by two,
// i.e. the number of bidirectional channels when the graph was built
// exclusively through AddChannel.
func (g *Graph) NumChannels() int { return g.numAlive / 2 }

// HasNode reports whether id names a node of the graph.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.out) }

// AddEdge inserts a directed edge from→to with the given capacity and
// returns its identifier.
func (g *Graph) AddEdge(from, to NodeID, capacity float64) (EdgeID, error) {
	if !g.HasNode(from) || !g.HasNode(to) {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): %w", from, to, ErrNodeOutOfRange)
	}
	if from == to {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): %w", from, to, ErrSelfLoop)
	}
	if capacity < 0 {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): %w", from, to, ErrNegativeValue)
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return InvalidEdge, fmt.Errorf("add edge (%d,%d): capacity %v: %w", from, to, capacity, ErrNonFiniteValue)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity})
	g.alive = append(g.alive, true)
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.csrAddEdge(from, to, id)
	g.numAlive++
	return id, nil
}

// AddChannel inserts a bidirectional channel between a and b as two directed
// edges: (a,b) with capacity balA and (b,a) with capacity balB.
func (g *Graph) AddChannel(a, b NodeID, balA, balB float64) (ab, ba EdgeID, err error) {
	ab, err = g.AddEdge(a, b, balA)
	if err != nil {
		return InvalidEdge, InvalidEdge, err
	}
	ba, err = g.AddEdge(b, a, balB)
	if err != nil {
		// Roll back the first direction so channels are all-or-nothing.
		if rmErr := g.RemoveEdge(ab); rmErr != nil {
			return InvalidEdge, InvalidEdge, fmt.Errorf("rollback %v: %w", rmErr, err)
		}
		return InvalidEdge, InvalidEdge, err
	}
	return ab, ba, nil
}

// RemoveEdge deletes a directed edge.
func (g *Graph) RemoveEdge(id EdgeID) error {
	if int(id) < 0 || int(id) >= len(g.edges) || !g.alive[id] {
		return fmt.Errorf("remove edge %d: %w", id, ErrEdgeNotFound)
	}
	e := g.edges[id]
	g.alive[id] = false
	g.out[e.From] = removeID(g.out[e.From], id)
	g.in[e.To] = removeID(g.in[e.To], id)
	g.csrRemoveEdge(e)
	g.numAlive--
	return nil
}

// RemoveChannel deletes both directed edges between a and b that form one
// channel (one edge in each direction). When parallel channels exist the
// most recently added pair is removed. It returns ErrEdgeNotFound when no
// channel connects the two nodes.
func (g *Graph) RemoveChannel(a, b NodeID) error {
	ab := g.lastEdgeBetween(a, b)
	ba := g.lastEdgeBetween(b, a)
	if ab == InvalidEdge || ba == InvalidEdge {
		return fmt.Errorf("remove channel (%d,%d): %w", a, b, ErrEdgeNotFound)
	}
	if err := g.RemoveEdge(ab); err != nil {
		return err
	}
	return g.RemoveEdge(ba)
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	if int(id) < 0 || int(id) >= len(g.edges) || !g.alive[id] {
		return Edge{}, false
	}
	return g.edges[id], true
}

// SetCapacity updates the capacity of a live directed edge.
func (g *Graph) SetCapacity(id EdgeID, capacity float64) error {
	if int(id) < 0 || int(id) >= len(g.edges) || !g.alive[id] {
		return fmt.Errorf("set capacity %d: %w", id, ErrEdgeNotFound)
	}
	if capacity < 0 {
		return fmt.Errorf("set capacity %d: %w", id, ErrNegativeValue)
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("set capacity %d: capacity %v: %w", id, capacity, ErrNonFiniteValue)
	}
	g.edges[id].Capacity = capacity
	return nil
}

// OutEdges returns a copy of the identifiers of the live edges leaving u.
func (g *Graph) OutEdges(u NodeID) []EdgeID {
	if !g.HasNode(u) {
		return nil
	}
	return append([]EdgeID(nil), g.out[u]...)
}

// InEdges returns a copy of the identifiers of the live edges entering u.
func (g *Graph) InEdges(u NodeID) []EdgeID {
	if !g.HasNode(u) {
		return nil
	}
	return append([]EdgeID(nil), g.in[u]...)
}

// ForEachOut calls fn for every live edge leaving u, stopping early when fn
// returns false. It performs no allocation.
func (g *Graph) ForEachOut(u NodeID, fn func(Edge) bool) {
	if !g.HasNode(u) {
		return
	}
	for _, id := range g.out[u] {
		if !fn(g.edges[id]) {
			return
		}
	}
}

// ForEachIn calls fn for every live edge entering u, stopping early when fn
// returns false.
func (g *Graph) ForEachIn(u NodeID, fn func(Edge) bool) {
	if !g.HasNode(u) {
		return
	}
	for _, id := range g.in[u] {
		if !fn(g.edges[id]) {
			return
		}
	}
}

// ForEachEdge calls fn for every live edge, stopping early when fn returns
// false.
func (g *Graph) ForEachEdge(fn func(Edge) bool) {
	for i, e := range g.edges {
		if !g.alive[i] {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// OutDegree reports the number of live edges leaving u.
func (g *Graph) OutDegree(u NodeID) int {
	if !g.HasNode(u) {
		return 0
	}
	return len(g.out[u])
}

// InDegree reports the number of live edges entering u. The paper's
// modified Zipf distribution ranks nodes by this quantity (§II-B).
func (g *Graph) InDegree(u NodeID) int {
	if !g.HasNode(u) {
		return 0
	}
	return len(g.in[u])
}

// Neighbors returns the distinct nodes adjacent to u through an edge in
// either direction, in ascending order.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if !g.HasNode(u) {
		return nil
	}
	seen := make(map[NodeID]struct{}, len(g.out[u])+len(g.in[u]))
	for _, id := range g.out[u] {
		seen[g.edges[id].To] = struct{}{}
	}
	for _, id := range g.in[u] {
		seen[g.edges[id].From] = struct{}{}
	}
	res := make([]NodeID, 0, len(seen))
	for v := range seen {
		res = append(res, v)
	}
	sortNodeIDs(res)
	return res
}

// HasEdgeBetween reports whether at least one live directed edge from→to
// exists.
func (g *Graph) HasEdgeBetween(from, to NodeID) bool {
	return g.lastEdgeBetween(from, to) != InvalidEdge
}

// EdgesBetween returns the identifiers of all live directed edges from→to.
func (g *Graph) EdgesBetween(from, to NodeID) []EdgeID {
	if !g.HasNode(from) {
		return nil
	}
	var res []EdgeID
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			res = append(res, id)
		}
	}
	return res
}

// Clone returns a deep copy of the graph. Edge identifiers are preserved.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:       make([][]EdgeID, len(g.out)),
		in:        make([][]EdgeID, len(g.in)),
		edges:     append([]Edge(nil), g.edges...),
		alive:     append([]bool(nil), g.alive...),
		numAlive:  g.numAlive,
		markFloor: g.markFloor,
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// MaxEdgeID returns the exclusive upper bound of edge identifiers ever
// handed out. Useful for sizing EdgeID-indexed slices.
func (g *Graph) MaxEdgeID() EdgeID { return EdgeID(len(g.edges)) }

// Mark returns a rollback token capturing the current edge-identifier
// watermark. Additions made after Mark can be undone wholesale with
// Rollback, which is how probe-style workloads (best-response searches
// trying thousands of candidate channel sets) reuse one graph instead of
// cloning per candidate.
func (g *Graph) Mark() EdgeID {
	if g.markFloor < 0 || len(g.edges) < g.markFloor {
		g.markFloor = len(g.edges)
	}
	return EdgeID(len(g.edges))
}

// Rollback removes every edge added since the corresponding Mark and
// truncates the identifier space back to the mark, so the next AddEdge
// hands out the same identifiers again. Edges that existed before the
// mark are untouched; a removal of a pre-mark edge performed after Mark
// is NOT restored. Rollback with a stale or out-of-range mark clamps to
// the valid range.
func (g *Graph) Rollback(mark EdgeID) {
	if mark < 0 {
		mark = 0
	}
	if g.markFloor >= 0 && int(mark) <= g.markFloor {
		g.markFloor = -1 // the outermost probe is over
	}
	if int(mark) >= len(g.edges) {
		return
	}
	for id := EdgeID(len(g.edges)) - 1; id >= mark; id-- {
		if !g.alive[id] {
			continue
		}
		e := g.edges[id]
		g.alive[id] = false
		g.out[e.From] = removeID(g.out[e.From], id)
		g.in[e.To] = removeID(g.in[e.To], id)
		g.csrRemoveEdge(e)
		g.numAlive--
	}
	g.edges = g.edges[:mark]
	g.alive = g.alive[:mark]
}

// ChannelPairs groups the live directed edges into channels: each element
// pairs a forward edge with its reverse counterpart, in insertion order
// (matching greedily, so graphs built through AddChannel reproduce their
// construction exactly). The second return lists directed edges with no
// reverse partner — empty for every channel-built graph.
func (g *Graph) ChannelPairs() (pairs [][2]Edge, unpaired []Edge) {
	waiting := make(map[[2]NodeID][]Edge)
	g.ForEachEdge(func(e Edge) bool {
		key := [2]NodeID{e.To, e.From}
		if list := waiting[key]; len(list) > 0 {
			pairs = append(pairs, [2]Edge{list[0], e})
			waiting[key] = list[1:]
			return true
		}
		own := [2]NodeID{e.From, e.To}
		waiting[own] = append(waiting[own], e)
		return true
	})
	// Collect leftovers in id order for determinism.
	g.ForEachEdge(func(e Edge) bool {
		key := [2]NodeID{e.From, e.To}
		for _, w := range waiting[key] {
			if w.ID == e.ID {
				unpaired = append(unpaired, e)
			}
		}
		return true
	})
	return pairs, unpaired
}

func (g *Graph) lastEdgeBetween(from, to NodeID) EdgeID {
	if !g.HasNode(from) {
		return InvalidEdge
	}
	for i := len(g.out[from]) - 1; i >= 0; i-- {
		id := g.out[from][i]
		if g.edges[id].To == to {
			return id
		}
	}
	return InvalidEdge
}

func removeID(ids []EdgeID, id EdgeID) []EdgeID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func sortNodeIDs(ids []NodeID) {
	// Insertion sort: neighbor lists are short and this avoids importing
	// sort for a single call site.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
